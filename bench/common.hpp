// Shared helpers for the benchmark harness.
//
// Each bench binary reproduces one experiment row of DESIGN.md's
// per-experiment index. Micro per-op costs use google-benchmark; the
// contention/scaling experiments run their own measured thread pools and
// print paper-style tables (plus CSV when MOIR_BENCH_CSV is set).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "platform/features.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_utils.hpp"

namespace moir::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n=================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("%s\n", platform_summary().c_str());
  std::printf("=================================================================\n");
}

inline void maybe_print_csv(const Table& table) {
  if (std::getenv("MOIR_BENCH_CSV") != nullptr) {
    std::printf("-- csv --\n%s-- end csv --\n", table.csv().c_str());
  }
}

// Runs `body(thread_index)` on `threads` threads after a barrier, measuring
// wall time of the parallel section. Returns seconds.
//
// Two barriers, not one: with a single barrier the LAST arriver releases
// everyone, and if that is a worker it starts the workload before the
// coordinator resumes and resets the timer — on a single-core host the
// whole workload can finish inside that gap. The ready-barrier guarantees
// everyone is parked, the coordinator then stamps the start time, and the
// go-barrier releases the workers.
inline double timed_threads(unsigned threads,
                            const std::function<void(std::size_t)>& body) {
  SpinBarrier ready(threads + 1);
  SpinBarrier go(threads + 1);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.arrive_and_wait();
      go.arrive_and_wait();
      body(t);
    });
  }
  ready.arrive_and_wait();
  Stopwatch timer;
  go.arrive_and_wait();
  for (auto& th : pool) th.join();
  return timer.elapsed_s();
}

// ns per op for `ops` total operations over `secs` seconds.
inline double ns_per_op(double secs, std::uint64_t ops) {
  return ops == 0 ? 0.0 : secs * 1e9 / static_cast<double>(ops);
}

inline double mops(double secs, std::uint64_t ops) {
  return secs == 0.0 ? 0.0 : static_cast<double>(ops) / secs / 1e6;
}

// Scale factor so benches finish quickly on slow/emulated hosts:
// MOIR_BENCH_QUICK=1 divides op counts by 10.
inline std::uint64_t scaled(std::uint64_t ops) {
  return std::getenv("MOIR_BENCH_QUICK") != nullptr ? ops / 10 : ops;
}

// Per-thread RNG seed derived from the shared MOIR_SEED base (util/env.hpp),
// so bench runs are reproducible and CI can sweep seeds without recompiling.
// The odd multiplier keeps thread streams decorrelated.
inline std::uint64_t thread_seed(std::uint64_t thread_index) {
  return base_seed() ^ (0x9e3779b97f4a7c15ULL * (thread_index + 1));
}

}  // namespace moir::bench
