// Shared helpers for the benchmark harness.
//
// Each bench binary reproduces one experiment row of DESIGN.md's
// per-experiment index. Micro per-op costs use google-benchmark; the
// contention/scaling experiments run through Harness::run_ops, which owns
// the timing/thread-launch loop once for all benches, samples per-op
// latency into a Histogram, captures the stats-counter delta of each run,
// and emits either the human tables (plus CSV when MOIR_BENCH_CSV is set)
// or a machine-readable JSON report:
//
//   bench_fig4_llsc --json          # JSON document on stdout, nothing else
//   MOIR_BENCH_JSON=out.json ...    # human output on stdout, JSON to file
//   MOIR_BENCH_QUICK=1              # op counts / 10 (slow hosts)
//   MOIR_BENCH_SMOKE=1              # op counts / 100 and no micro section
//                                   #   (the ~100ms CI smoke runs)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "platform/features.hpp"
#include "stats/export.hpp"
#include "stats/stats.hpp"
#include "util/env.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_utils.hpp"

namespace moir::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n=================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("%s\n", platform_summary().c_str());
  std::printf("=================================================================\n");
}

inline void maybe_print_csv(const Table& table) {
  if (std::getenv("MOIR_BENCH_CSV") != nullptr) {
    std::printf("-- csv --\n%s-- end csv --\n", table.csv().c_str());
  }
}

// Runs `body(thread_index)` on `threads` threads after a barrier, measuring
// wall time of the parallel section. Returns seconds.
//
// Two barriers, not one: with a single barrier the LAST arriver releases
// everyone, and if that is a worker it starts the workload before the
// coordinator resumes and resets the timer — on a single-core host the
// whole workload can finish inside that gap. The ready-barrier guarantees
// everyone is parked, the coordinator then stamps the start time, and the
// go-barrier releases the workers.
inline double timed_threads(unsigned threads,
                            const std::function<void(std::size_t)>& body) {
  SpinBarrier ready(threads + 1);
  SpinBarrier go(threads + 1);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.arrive_and_wait();
      go.arrive_and_wait();
      body(t);
    });
  }
  ready.arrive_and_wait();
  Stopwatch timer;
  go.arrive_and_wait();
  for (auto& th : pool) th.join();
  return timer.elapsed_s();
}

// ns per op for `ops` total operations over `secs` seconds.
inline double ns_per_op(double secs, std::uint64_t ops) {
  return ops == 0 ? 0.0 : secs * 1e9 / static_cast<double>(ops);
}

inline double mops(double secs, std::uint64_t ops) {
  return secs == 0.0 ? 0.0 : static_cast<double>(ops) / secs / 1e6;
}

// Scale factor so benches finish quickly on slow/emulated hosts:
// MOIR_BENCH_QUICK=1 divides op counts by 10; MOIR_BENCH_SMOKE=1 (the CI
// bench-smoke tests) by 100. Never returns 0.
inline std::uint64_t scaled(std::uint64_t ops) {
  if (env_flag("MOIR_BENCH_SMOKE", false)) {
    return ops / 100 > 0 ? ops / 100 : 1;
  }
  if (std::getenv("MOIR_BENCH_QUICK") != nullptr) {
    return ops / 10 > 0 ? ops / 10 : 1;
  }
  return ops;
}

// Per-thread RNG seed derived from the shared MOIR_SEED base (util/env.hpp),
// so bench runs are reproducible and CI can sweep seeds without recompiling.
// The odd multiplier keeps thread streams decorrelated.
inline std::uint64_t thread_seed(std::uint64_t thread_index) {
  return base_seed() ^ (0x9e3779b97f4a7c15ULL * (thread_index + 1));
}

// One measured parallel section: identification, throughput, sampled
// per-op latency, and the stats-counter delta the section caused.
struct RunStats {
  std::string name;
  unsigned threads = 0;
  std::uint64_t ops = 0;
  double secs = 0.0;
  Histogram latency_ns;  // sampled (1 op in 64), empty for add_run() runs
  stats::Snapshot counters;

  double ns_op() const { return ns_per_op(secs, ops); }
  double mops_s() const { return mops(secs, ops); }
};

class Harness {
 public:
  // Strips harness flags (--json, --duration-ms=N, --warmup-ms=N) from
  // argv so google-benchmark's own Initialize never sees them.
  Harness(int& argc, char** argv, std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg(argv[i]);
      if (arg == "--json") {
        json_stdout_ = true;
      } else if (arg.rfind("--duration-ms=", 0) == 0) {
        duration_ms_override_ = parse_ms(arg);
      } else if (arg.rfind("--warmup-ms=", 0) == 0) {
        warmup_ms_override_ = parse_ms(arg);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
    if (const char* path = std::getenv("MOIR_BENCH_JSON")) {
      if (*path != '\0') json_path_ = path;
    }
    smoke_ = env_flag("MOIR_BENCH_SMOKE", false);
    quick_ = std::getenv("MOIR_BENCH_QUICK") != nullptr;
  }

  // Whether to run the google-benchmark micro section: skipped when JSON
  // goes to stdout (its human output would corrupt the document) and in
  // smoke mode (it self-times for seconds; smoke budgets ~100ms total).
  bool micro() const { return !json_stdout_ && !smoke_; }

  bool json_to_stdout() const { return json_stdout_; }

  // Time-bounded runs (open/closed-loop benches): the bench passes its
  // defaults, the command line (--duration-ms=N / --warmup-ms=N) wins when
  // present. Smoke/quick scaling applies to the DEFAULT only — an explicit
  // flag is taken literally.
  std::uint64_t duration_ms(std::uint64_t def) const {
    if (duration_ms_override_ != 0) return duration_ms_override_;
    return scale_ms(def);
  }
  std::uint64_t warmup_ms(std::uint64_t def) const {
    if (warmup_ms_override_ != 0) return warmup_ms_override_;
    return scale_ms(def);
  }

  void header(const char* experiment, const char* claim) {
    if (experiment_.empty()) {
      experiment_ = experiment;
      claim_ = claim;
    }
    if (!json_stdout_) print_header(experiment, claim);
  }

  // printf that respects JSON-on-stdout mode; use for the loose notes the
  // benches print around their tables.
  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    if (json_stdout_) return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
  }

  // The one timing/thread-launch loop. `op(thread_index, op_index)` performs
  // a single logical operation (including any retry loop it needs); every
  // 64th op per thread is timed individually into the latency histogram.
  // Per-thread state (Processor, ThreadCtx, ...) must be pre-created by the
  // caller and indexed by thread_index inside `op`.
  template <class Op>
  const RunStats& run_ops(std::string name, unsigned threads,
                          std::uint64_t ops_per_thread, Op&& op) {
    std::vector<Histogram> hists(threads);
    const stats::Snapshot before = stats::snapshot();
    const double secs = timed_threads(threads, [&](std::size_t t) {
      Histogram& h = hists[t];
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        if ((i & 63) == 0) {
          Stopwatch sample;
          op(t, i);
          h.record(sample.elapsed_ns());
        } else {
          op(t, i);
        }
      }
    });
    RunStats run;
    run.name = std::move(name);
    run.threads = threads;
    run.ops = std::uint64_t{threads} * ops_per_thread;
    run.secs = secs;
    for (const Histogram& h : hists) run.latency_ns.merge(h);
    run.counters = stats::snapshot() - before;
    runs_.push_back(std::move(run));
    return runs_.back();
  }

  // Time-bounded variant of run_ops for duration-driven workloads: every
  // thread calls `op(thread_index, op_index)` in a loop until the
  // coordinator flips the stop flag after `duration_ms` of measured time
  // (preceded by `warmup_ms` of executed-but-uncounted warmup). Same 1-in-
  // 64 latency sampling as run_ops. The phase word is checked between ops,
  // so `op` must be an individual operation, not a long batch.
  template <class Op>
  const RunStats& run_timed(std::string name, unsigned threads,
                            std::uint64_t duration_ms,
                            std::uint64_t warmup_ms, Op&& op) {
    // 0=warmup 1=measure 2=stop; workers watch it between operations.
    std::atomic<int> phase{warmup_ms == 0 ? 1 : 0};
    std::vector<Histogram> hists(threads);
    std::vector<std::uint64_t> ops_done(threads, 0);
    const stats::Snapshot before = stats::snapshot();
    double measured_secs = 0.0;
    SpinBarrier ready(threads + 1);
    SpinBarrier go(threads + 1);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        ready.arrive_and_wait();
        go.arrive_and_wait();
        Histogram& h = hists[t];
        std::uint64_t i = 0;
        std::uint64_t counted = 0;
        int p;
        while ((p = phase.load(std::memory_order_acquire)) != 2) {
          const bool measuring = p == 1;
          if ((i & 63) == 0) {
            Stopwatch sample;
            op(t, i);
            if (measuring) h.record(sample.elapsed_ns());
          } else {
            op(t, i);
          }
          ++i;
          counted += measuring ? 1 : 0;
        }
        ops_done[t] = counted;
      });
    }
    ready.arrive_and_wait();
    go.arrive_and_wait();
    if (warmup_ms > 0) {
      sleep_ms(warmup_ms);
      phase.store(1, std::memory_order_release);
    }
    Stopwatch timer;
    sleep_ms(duration_ms);
    measured_secs = timer.elapsed_s();
    phase.store(2, std::memory_order_release);
    for (auto& th : pool) th.join();

    RunStats run;
    run.name = std::move(name);
    run.threads = threads;
    for (const std::uint64_t n : ops_done) run.ops += n;
    run.secs = measured_secs;
    for (const Histogram& h : hists) run.latency_ns.merge(h);
    run.counters = stats::snapshot() - before;
    runs_.push_back(std::move(run));
    return runs_.back();
  }

  // Record a section measured outside run_ops (irregular loops that keep
  // their own timed_threads call). No latency histogram; still captures
  // throughput for the JSON report.
  const RunStats& add_run(std::string name, unsigned threads,
                          std::uint64_t ops, double secs) {
    RunStats run;
    run.name = std::move(name);
    run.threads = threads;
    run.ops = ops;
    run.secs = secs;
    runs_.push_back(std::move(run));
    return runs_.back();
  }

  // add_run variant for self-measured loops that collected their own
  // latency histogram (e.g. open-loop arrival-to-completion latencies,
  // which run_ops' service-time sampling cannot express).
  const RunStats& add_run(std::string name, unsigned threads,
                          std::uint64_t ops, double secs,
                          Histogram latency_ns) {
    RunStats run;
    run.name = std::move(name);
    run.threads = threads;
    run.ops = ops;
    run.secs = secs;
    run.latency_ns = std::move(latency_ns);
    runs_.push_back(std::move(run));
    return runs_.back();
  }

  // Print (human mode) and record (JSON) a result table.
  void table(const Table& t) {
    if (!json_stdout_) {
      t.print();
      maybe_print_csv(t);
    }
    tables_.push_back(t);
  }

  // Loose scalar result worth exporting (space overhead words, ratios...).
  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  // Emit the JSON report (stdout and/or MOIR_BENCH_JSON file). Returns the
  // process exit code.
  int finish() {
    if (!json_stdout_ && json_path_.empty()) return 0;
    const std::string doc = to_json();
    if (json_stdout_) std::printf("%s\n", doc.c_str());
    if (!json_path_.empty()) {
      std::FILE* f = std::fopen(json_path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write MOIR_BENCH_JSON=%s\n",
                     json_path_.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", doc.c_str());
      std::fclose(f);
    }
    return 0;
  }

  std::string to_json() const {
    JsonWriter w;
    w.begin_object()
        .kv("schema", "moir-bench-v1")
        .kv("bench", bench_name_)
        .kv("experiment", experiment_)
        .kv("claim", claim_)
        .kv("platform", platform_summary())
        .kv("stats_compiled_in", stats::kCompiledIn)
        .kv("quick", quick_)
        .kv("smoke", smoke_);
    w.key("runs").begin_array();
    for (const RunStats& r : runs_) {
      w.begin_object()
          .kv("name", r.name)
          .kv("threads", r.threads)
          .kv("ops", r.ops)
          .kv("secs", r.secs)
          .kv("ns_per_op", r.ns_op())
          .kv("mops", r.mops_s());
      w.key("latency_ns").raw(r.latency_ns.to_json());
      w.key("counters");
      stats::counters_json(w, r.counters);
      w.end_object();
    }
    w.end_array();
    w.key("tables").begin_array();
    for (const Table& t : tables_) {
      w.begin_object().kv("title", t.title());
      w.key("columns").begin_array();
      for (const auto& c : t.column_names()) w.value(c);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : t.row_data()) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array().end_object();
    }
    w.end_array();
    w.key("metrics").begin_object();
    for (const auto& [k, v] : metrics_) w.kv(k, v);
    w.end_object();
    w.key("counters");
    stats::counters_json(w, stats::snapshot());
    w.key("histograms");
    stats::histograms_json(w);
    w.end_object();
    return w.str();
  }

 private:
  static std::uint64_t parse_ms(const std::string& arg) {
    const auto eq = arg.find('=');
    const long long v = std::atoll(arg.c_str() + eq + 1);
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  }

  static void sleep_ms(std::uint64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  // Same spirit as scaled(): smoke runs divide durations by 20, quick by
  // 5, floored at 10ms so phases stay observable.
  std::uint64_t scale_ms(std::uint64_t def) const {
    if (def == 0) return 0;
    std::uint64_t v = def;
    if (smoke_) {
      v = def / 20;
    } else if (quick_) {
      v = def / 5;
    }
    return v < 10 ? 10 : v;
  }

  std::string bench_name_;
  std::string experiment_;
  std::string claim_;
  bool json_stdout_ = false;
  std::string json_path_;
  bool quick_ = false;
  bool smoke_ = false;
  std::uint64_t duration_ms_override_ = 0;
  std::uint64_t warmup_ms_override_ = 0;
  std::vector<RunStats> runs_;
  std::vector<Table> tables_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace moir::bench
