// E15 (Blelloch–Wei pointer-width LL/SC): single-cell LL/VL/SC costs for
// the figbw substrate, head-to-head with Figure 4 (CAS + unbounded tag) and
// Figure 7 (bounded tags) on the same contended-increment loop.
//
// What the comparison isolates: figbw pays one seq_cst announcement store
// per LL (the hazard-pointer store-load fence) plus an amortized O(1)
// descriptor allocation per SC, and in exchange keeps all 64 value bits —
// fig4 steals tag bits from the word, fig7 bounds tags with Θ(N(k+T))
// space and a tag-queue recycle protocol. VL is one load for all three.
// The exported counters (bw_announce, bw_help, bw_alloc_reuse) report how
// much announcement and recycling traffic the workload actually generated.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/bw_llsc.hpp"
#include "core/llsc_traits.hpp"

namespace {

using Bw = moir::BwLlsc<>;
using Fig4 = moir::CasBackedLlsc<16>;
using Fig7 = moir::BoundedLlsc<>;

void BM_BwLlScPair(benchmark::State& state) {
  Bw s(1, 1);
  Bw::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  std::uint64_t i = 0;
  for (auto _ : state) {
    Bw::Keep keep;
    const std::uint64_t v = s.ll(ctx, var, keep);
    benchmark::DoNotOptimize(s.sc(ctx, var, keep, v + ++i));
  }
}
BENCHMARK(BM_BwLlScPair);

void BM_BwLlVlScTriple(benchmark::State& state) {
  Bw s(1, 1);
  Bw::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  for (auto _ : state) {
    Bw::Keep keep;
    const std::uint64_t v = s.ll(ctx, var, keep);
    benchmark::DoNotOptimize(s.vl(ctx, var, keep));
    benchmark::DoNotOptimize(s.sc(ctx, var, keep, v + 1));
  }
}
BENCHMARK(BM_BwLlVlScTriple);

void BM_BwVlOnly(benchmark::State& state) {
  Bw s(1, 1);
  Bw::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  Bw::Keep keep;
  s.ll(ctx, var, keep);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.vl(ctx, var, keep));
  }
  s.cl(ctx, keep);
}
BENCHMARK(BM_BwVlOnly);

// The context-free seqlock read: two descriptor loads + two validations.
void BM_BwReadOnly(benchmark::State& state) {
  Bw s(1, 1);
  Bw::Var var;
  s.init_var(var, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.read(var));
  }
}
BENCHMARK(BM_BwReadOnly);

void contention_table(moir::bench::Harness& h) {
  h.header(
      "E15 table: LL;SC increment under contention — figbw vs fig4 vs fig7",
      "pointer-width CAS with announcement-based reuse protection keeps "
      "full 64-bit values at a per-LL announcement cost; tags (fig4/fig7) "
      "pay in value width or bounded-tag space instead");

  const std::uint64_t kOps = moir::bench::scaled(200000);
  moir::Table t("ns/op by substrate and thread count (LL;SC until success)");
  t.columns({"threads", "figbw", "fig4", "fig7"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    // figbw: pointer-width CAS, 64-bit values.
    Bw bw(threads, /*k=*/1);
    Bw::Var bw_var;
    bw.init_var(bw_var, 0);
    std::vector<Bw::ThreadCtx> bw_ctxs;
    bw_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) bw_ctxs.push_back(bw.make_ctx());
    const auto& r_bw = h.run_ops(
        "figbw_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          for (;;) {
            Bw::Keep keep;
            const std::uint64_t v = bw.ll(bw_ctxs[tid], bw_var, keep);
            if (bw.sc(bw_ctxs[tid], bw_var, keep, v + 1)) break;
          }
        });

    // Figure 4: one CAS, 16-bit values (tag steals the rest).
    Fig4 f4;
    Fig4::Var f4_var;
    f4.init_var(f4_var, 0);
    auto f4_ctx = f4.make_ctx();  // stateless; shareable across threads
    const auto& r_f4 = h.run_ops(
        "fig4_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t, std::uint64_t) {
          for (;;) {
            Fig4::Keep keep;
            const std::uint64_t v = f4.ll(f4_ctx, f4_var, keep);
            if (f4.sc(f4_ctx, f4_var, keep, (v + 1) & f4.max_value())) break;
          }
        });

    // Figure 7: bounded tags, per-process announcement + tag queue.
    Fig7 f7(threads, /*k=*/1);
    Fig7::Var f7_var;
    f7.init_var(f7_var, 0);
    std::vector<Fig7::ThreadCtx> f7_ctxs;
    f7_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) f7_ctxs.push_back(f7.make_ctx());
    const auto& r_f7 = h.run_ops(
        "fig7_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          for (;;) {
            Fig7::Keep keep;
            const std::uint64_t v = f7.ll(f7_ctxs[tid], f7_var, keep);
            if (f7.sc(f7_ctxs[tid], f7_var, keep,
                      (v + 1) & f7.max_value())) {
              break;
            }
          }
        });

    t.row({moir::Table::num(threads), moir::Table::num(r_bw.ns_op(), 1),
           moir::Table::num(r_f4.ns_op(), 1),
           moir::Table::num(r_f7.ns_op(), 1)});
  }
  h.table(t);
}

void read_table(moir::bench::Harness& h) {
  const std::uint64_t kOps = moir::bench::scaled(400000);
  moir::Table t("context-free read() under write churn, ns/op (readers = "
                "threads - 1, one LL;SC writer)");
  t.columns({"threads", "figbw_read", "fig4_read"});
  for (unsigned threads : {2u, 4u, 8u}) {
    Bw bw(threads, /*k=*/1);
    Bw::Var bw_var;
    bw.init_var(bw_var, 0);
    std::vector<Bw::ThreadCtx> bw_ctxs;
    bw_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) bw_ctxs.push_back(bw.make_ctx());
    const auto& r_bw = h.run_ops(
        "figbw_read/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          if (tid == 0) {  // writer: keeps descriptors churning
            Bw::Keep keep;
            const std::uint64_t v = bw.ll(bw_ctxs[tid], bw_var, keep);
            (void)bw.sc(bw_ctxs[tid], bw_var, keep, v + 1);
          } else {
            benchmark::DoNotOptimize(bw.read(bw_var));
          }
        });

    Fig4 f4;
    Fig4::Var f4_var;
    f4.init_var(f4_var, 0);
    auto f4_ctx = f4.make_ctx();
    const auto& r_f4 = h.run_ops(
        "fig4_read/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          if (tid == 0) {
            Fig4::Keep keep;
            const std::uint64_t v = f4.ll(f4_ctx, f4_var, keep);
            (void)f4.sc(f4_ctx, f4_var, keep, (v + 1) & f4.max_value());
          } else {
            benchmark::DoNotOptimize(f4.read(f4_var));
          }
        });

    t.row({moir::Table::num(threads), moir::Table::num(r_bw.ns_op(), 1),
           moir::Table::num(r_f4.ns_op(), 1)});
  }
  h.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_bw_llsc");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  contention_table(h);
  read_table(h);

  // Space accounting next to fig4's zero-overhead claim: figbw's Var is one
  // 32-bit word, but the domain carries Nk announcement slots plus the
  // descriptor pool (the price of full-width values without DWCAS).
  Bw probe(8, 2);
  h.metric("sizeof_var_bytes", static_cast<double>(sizeof(Bw::Var)));
  h.metric("shared_overhead_words_n8_k2",
           static_cast<double>(probe.shared_overhead_words(1)));
  h.printf("\nspace: sizeof(Var)=%zu; shared overhead at N=8,k=2: %zu words "
           "(announcements + descriptor pool)\n",
           sizeof(Bw::Var), probe.shared_overhead_words(1));
  return h.finish();
}
