// E1 (Theorem 1 / Figure 3): CAS from RLL/RSC.
//
// Reproduces: (a) per-op cost of the emulated CAS vs native hardware CAS
// (constant, small); (b) retries caused by injected spurious failures —
// the operation completes in constant time after the last spurious
// failure, so retries/op tracks the injection rate and nothing else;
// (c) the versioned vs value-only (weak) RSC emulation ablation.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "bench/common.hpp"
#include "core/cas_from_rllrsc.hpp"
#include "platform/fault.hpp"
#include "util/histogram.hpp"

namespace {

using Cas = moir::CasFromRllRsc<16>;

void BM_NativeCas(benchmark::State& state) {
  std::atomic<std::uint64_t> word{0};
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t expected = v;
    benchmark::DoNotOptimize(
        word.compare_exchange_strong(expected, (v + 1) & 0xffff));
    v = (v + 1) & 0xffff;
  }
}
BENCHMARK(BM_NativeCas);

void BM_EmulatedCas(benchmark::State& state) {
  Cas::Var var(0);
  moir::Processor proc;
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cas::cas(proc, var, v, (v + 1) & 0xffff));
    v = (v + 1) & 0xffff;
  }
}
BENCHMARK(BM_EmulatedCas);

void BM_EmulatedCasFailing(benchmark::State& state) {
  // Failure path (old value mismatch): returns from line 2 without RSC.
  Cas::Var var(7);
  moir::Processor proc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cas::cas(proc, var, 1, 2));
  }
}
BENCHMARK(BM_EmulatedCasFailing);

void BM_EmulatedCasSpurious(benchmark::State& state) {
  // Per-op cost as the spurious-failure probability rises; arg is
  // probability in 1/1000.
  moir::FaultInjector faults;
  faults.set_spurious_probability(state.range(0) / 1000.0);
  Cas::Var var(0);
  moir::Processor proc;
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cas::cas(proc, var, v, (v + 1) & 0xffff));
    v = (v + 1) & 0xffff;
  }
  state.counters["spurious/op"] =
      static_cast<double>(proc.stats().spurious_failures) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_EmulatedCasSpurious)->Arg(0)->Arg(1)->Arg(10)->Arg(100)->Arg(300);

// Ablation: versioned (ABA-detecting) vs weak (value-only) RSC emulation.
// The paper's algorithms are correct on both (their tags handle ABA); the
// versioned flavour costs a 16-byte CAS instead of an 8-byte one.
void BM_RawRllRscVersioned(benchmark::State& state) {
  moir::RllWord word(0);
  moir::Processor proc;
  for (auto _ : state) {
    const std::uint64_t v = proc.rll(word);
    benchmark::DoNotOptimize(proc.rsc(word, v + 1));
  }
}
BENCHMARK(BM_RawRllRscVersioned);

void BM_RawRllRscWeak(benchmark::State& state) {
  moir::RllWord word(0);
  moir::Processor proc;
  for (auto _ : state) {
    const std::uint64_t v = proc.rll(word);
    benchmark::DoNotOptimize(proc.rsc_weak(word, v + 1));
  }
}
BENCHMARK(BM_RawRllRscWeak);

void contention_table(moir::bench::Harness& h) {
  h.header(
      "E1 table: concurrent increment-via-CAS, emulated vs native",
      "wait-free given finitely many spurious failures per op; constant "
      "time after the last spurious failure; zero space overhead");

  moir::Table t("emulated CAS under contention (ns/op; retry = RSC failure)");
  t.columns({"threads", "spurious_p", "ns/op", "rsc_retries/op",
             "spurious/op"});
  const std::uint64_t kOps = moir::bench::scaled(200000);
  for (unsigned threads : {1u, 2u, 4u}) {
    for (double p : {0.0, 0.001, 0.01, 0.1}) {
      moir::FaultInjector faults;
      faults.set_spurious_probability(p);
      Cas::Var var(0);
      std::vector<moir::Processor> procs;
      procs.reserve(threads);
      for (unsigned i = 0; i < threads; ++i) procs.emplace_back(&faults);
      char run_name[64];
      std::snprintf(run_name, sizeof run_name, "emulated_cas/t%u/p%g",
                    threads, p);
      const auto& run = h.run_ops(
          run_name, threads, kOps, [&](std::size_t tid, std::uint64_t) {
            moir::Processor& proc = procs[tid];
            for (;;) {
              const std::uint64_t v = Cas::read(var);
              if (Cas::cas(proc, var, v, (v + 1) & 0xffff)) break;
            }
          });
      std::uint64_t attempts = 0, spurious = 0;
      for (const auto& proc : procs) {
        attempts += proc.stats().attempts;
        spurious += proc.stats().spurious_failures;
      }
      const std::uint64_t ops = run.ops;
      t.row({moir::Table::num(threads), moir::Table::num(p, 3),
             moir::Table::num(run.ns_op(), 1),
             moir::Table::num(static_cast<double>(attempts - ops) / ops, 4),
             moir::Table::num(static_cast<double>(spurious) / ops, 4)});
    }
  }
  h.table(t);

  h.metric("sizeof_var_bytes", static_cast<double>(sizeof(Cas::Var)));
  h.printf("\nspace overhead: 0 words (Theorem 1) — sizeof(Var)=%zu == "
           "sizeof(emulated word)=%zu\n",
           sizeof(Cas::Var), sizeof(moir::RllWord));
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_fig3_cas");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  contention_table(h);
  return h.finish();
}
