// E16 (durable LL/SC + dynamic joining): what durability costs on top of
// the volatile figbw skeleton, and what the elastic pool does under load.
//
// Four sections:
//   * micro: single-thread LL;SC and read() for figdur (compare the figbw
//     numbers in bench_bw_llsc.cpp — the delta is P1+P2 on the SC path and
//     the conditional P3 on the read path).
//   * contended-increment table, figdur vs figbw, with the persist-barrier
//     traffic the workload generated (dur_flush / op): the conditional
//     barriers mean the rate is well below the 3-barriers-per-SC worst
//     case — concurrent readers' P3 persists cover writers' P2s.
//   * crash/recovery cost: snapshot + restore + recover wall time across
//     pool sizes (recovery rebuilds the free list, so it scales with pool
//     capacity, not with how much work crashed).
//   * elastic service: the figdur-backed KvService under a client burst,
//     floor 1 / ceiling 4 — reg_join/reg_leave counters and the workers
//     high-water mark show the pool growing and shrinking.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/bw_llsc.hpp"
#include "dur/dur_llsc.hpp"
#include "reclaim/epoch.hpp"
#include "svc/service.hpp"
#include "util/stopwatch.hpp"

namespace {

using Bw = moir::BwLlsc<>;
using Dur = moir::dur::DurLlsc<>;

void BM_DurLlScPair(benchmark::State& state) {
  Dur s(1, {.max_members = 2});
  Dur::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  std::uint64_t i = 0;
  for (auto _ : state) {
    Dur::Keep keep;
    const std::uint64_t v = s.ll(ctx, var, keep);
    benchmark::DoNotOptimize(s.sc(ctx, var, keep, v + ++i));
  }
}
BENCHMARK(BM_DurLlScPair);

void BM_DurReadOnly(benchmark::State& state) {
  Dur s(1, {.max_members = 2});
  Dur::Var var;
  s.init_var(var, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.read(var));
  }
}
BENCHMARK(BM_DurReadOnly);

void contention_table(moir::bench::Harness& h) {
  h.header(
      "E16 table: LL;SC increment under contention — figdur vs figbw, with "
      "persist-barrier traffic",
      "durable LL/SC (JJJ'23 barriers over the Blelloch-Wei skeleton) adds "
      "P1 on every SC plus conditional P2/P3 var-word persists; link-and-"
      "persist sharing keeps barriers/op near 2 instead of the naive 3");

  const std::uint64_t kOps = moir::bench::scaled(200000);
  moir::Table t(
      "ns/op and persist barriers/op by thread count (LL;SC until success)");
  t.columns({"threads", "figdur", "figbw", "figdur_flush_per_op"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Dur du(1, {.max_members = 2 * threads});
    Dur::Var du_var;
    du.init_var(du_var, 0);
    std::vector<Dur::ThreadCtx> du_ctxs;
    du_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) du_ctxs.push_back(du.make_ctx());
    const auto& r_du = h.run_ops(
        "figdur_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          for (;;) {
            Dur::Keep keep;
            const std::uint64_t v = du.ll(du_ctxs[tid], du_var, keep);
            if (du.sc(du_ctxs[tid], du_var, keep, v + 1)) break;
          }
        });

    Bw bw(threads, /*k=*/1);
    Bw::Var bw_var;
    bw.init_var(bw_var, 0);
    std::vector<Bw::ThreadCtx> bw_ctxs;
    bw_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) bw_ctxs.push_back(bw.make_ctx());
    const auto& r_bw = h.run_ops(
        "figbw_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          for (;;) {
            Bw::Keep keep;
            const std::uint64_t v = bw.ll(bw_ctxs[tid], bw_var, keep);
            if (bw.sc(bw_ctxs[tid], bw_var, keep, v + 1)) break;
          }
        });

    const double flush_per_op =
        r_du.ops == 0 ? 0.0
                      : static_cast<double>(
                            r_du.counters[moir::stats::Id::kDurFlush]) /
                            static_cast<double>(r_du.ops);
    t.row({moir::Table::num(threads), moir::Table::num(r_du.ns_op(), 1),
           moir::Table::num(r_bw.ns_op(), 1),
           moir::Table::num(flush_per_op, 2)});
  }
  h.table(t);
}

void recovery_table(moir::bench::Harness& h) {
  moir::Table t(
      "crash/recovery cost by descriptor-pool size (snapshot; restore + "
      "recover on a fresh instance)");
  t.columns({"pool_descs", "snapshot_us", "recover_us"});
  for (const std::uint32_t reserve : {256u, 1024u, 4096u}) {
    const Dur::Config cfg{.reserve = reserve, .chunk = 16,
                          .scan_threshold = 0, .max_members = 8};
    Dur s(1, cfg);
    Dur::Var var;
    s.init_var(var, 0);
    {
      auto ctx = s.make_ctx();
      for (int i = 0; i < 1000; ++i) {  // leave real churn behind
        Dur::Keep keep;
        const std::uint64_t v = s.ll(ctx, var, keep);
        (void)s.sc(ctx, var, keep, v + 1);
      }
    }
    moir::Stopwatch snap_sw;
    const auto image = s.snapshot();
    const double snap_s = snap_sw.elapsed_s();

    Dur fresh(1, cfg);
    Dur::Var fvar;
    fresh.init_var(fvar, 0);
    moir::Stopwatch rec_sw;
    fresh.restore_and_recover(image);
    const double rec_s = rec_sw.elapsed_s();
    h.add_run("figdur_recover/p" + std::to_string(s.pool_capacity()), 1,
              s.pool_capacity(), rec_s);
    t.row({moir::Table::num(s.pool_capacity()),
           moir::Table::num(snap_s * 1e6, 1),
           moir::Table::num(rec_s * 1e6, 1)});
  }
  h.table(t);
}

void elastic_service_run(moir::bench::Harness& h) {
  using Svc = moir::svc::KvService<Dur, moir::reclaim::EpochReclaimer>;
  // k = 4: the dispatcher's MS queue keeps three LL-SC sequences open.
  Dur sub(4);
  Svc svc(sub, {.queues = 2,
                .workers = 1,
                .max_workers = 4,
                .grow_streak = 2,
                .shrink_idle = 4096,
                .batch = 1,
                .max_sessions = 4,
                .tickets_per_session = 16,
                .use_rings = true,
                .map = {.shards = 4, .buckets_per_shard = 16,
                        .capacity_per_shard = 1024}});

  const unsigned kClients = 3;
  const std::uint64_t kOps = moir::bench::scaled(40000);
  std::vector<Svc::ClientCtx> sessions;
  sessions.reserve(kClients);
  for (unsigned c = 0; c < kClients; ++c) sessions.push_back(svc.connect());
  h.run_ops("figdur_svc_elastic/c" + std::to_string(kClients), kClients, kOps,
            [&](std::size_t tid, std::uint64_t i) {
              auto& sess = sessions[tid];
              const std::uint64_t key = (i % 64) * kClients + tid;
              for (;;) {
                const auto t = svc.submit(sess, moir::svc::Op::kUpsert, key,
                                          key * 3 + i);
                if (!t.has_value()) continue;
                if (svc.wait(sess, *t).status !=
                    moir::svc::Status::kOverload) {
                  break;
                }
              }
            });
  h.metric("svc_worker_high_water",
           static_cast<double>(svc.worker_registry().high_water()));
  h.metric("svc_worker_ceiling", static_cast<double>(svc.worker_ceiling()));
  h.printf("\nelastic pool: floor 1, ceiling %u, high water %u\n",
           svc.worker_ceiling(), svc.worker_registry().high_water());
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_dur");
  h.header(
      "E16: durable LL/SC over simulated pmem + elastic membership",
      "persist barriers price durability at ~2 conditional barriers per "
      "update; recovery is pool-proportional; the worker pool tracks load");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  contention_table(h);
  recovery_table(h);
  elastic_service_run(h);

  Dur probe(2, {.max_members = 8});
  h.metric("sizeof_var_bytes", static_cast<double>(sizeof(Dur::Var)));
  h.metric("pool_capacity_default_m8_k2",
           static_cast<double>(probe.pool_capacity()));
  h.printf("\nspace: sizeof(Var)=%zu (volatile word + durable shadow); "
           "default pool at max_members=8, k=2: %u descriptors\n",
           sizeof(Dur::Var), probe.pool_capacity());
  return h.finish();
}
