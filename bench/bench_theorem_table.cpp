// E10: the theorem summary table — every construction's measured time and
// accounted space, side by side with the paper's claims.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/cas_from_rllrsc.hpp"
#include "core/llsc_from_cas.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "core/wide_llsc.hpp"

namespace {

constexpr std::uint64_t kOpsBase = 500000;

double fig3_ns(moir::bench::Harness& h, std::uint64_t ops) {
  moir::CasFromRllRsc<16>::Var var(0);
  moir::Processor proc;
  std::uint64_t v = 0;
  const auto& run = h.run_ops(
      "fig3_cas/t1", 1, ops, [&](std::size_t, std::uint64_t) {
        moir::CasFromRllRsc<16>::cas(proc, var, v, (v + 1) & 0xffff);
        v = (v + 1) & 0xffff;
      });
  return run.ns_op();
}

double fig4_ns(moir::bench::Harness& h, std::uint64_t ops) {
  moir::LlscFromCas<16>::Var var(0);
  const auto& run = h.run_ops(
      "fig4_llsc/t1", 1, ops, [&](std::size_t, std::uint64_t) {
        moir::LlscFromCas<16>::Keep keep;
        const std::uint64_t v = moir::LlscFromCas<16>::ll(var, keep);
        moir::LlscFromCas<16>::sc(var, keep, (v + 1) & 0xffff);
      });
  return run.ns_op();
}

double fig5_ns(moir::bench::Harness& h, std::uint64_t ops) {
  moir::LlscFromRllRsc<16>::Var var(0);
  moir::Processor proc;
  const auto& run = h.run_ops(
      "fig5_llsc/t1", 1, ops, [&](std::size_t, std::uint64_t) {
        moir::LlscFromRllRsc<16>::Keep keep;
        const std::uint64_t v = moir::LlscFromRllRsc<16>::ll(var, keep);
        moir::LlscFromRllRsc<16>::sc(proc, var, keep, (v + 1) & 0xffff);
      });
  return run.ns_op();
}

double fig6_ns(moir::bench::Harness& h, std::uint64_t ops, unsigned w) {
  moir::WideLlsc<32> dom(2, w);
  moir::WideLlsc<32>::Var var;
  std::vector<std::uint64_t> buf(w, 1);
  dom.init_var(var, buf);
  auto ctx = dom.make_ctx();
  const auto& run = h.run_ops(
      "fig6_wide/t1/w8", 1, ops, [&](std::size_t, std::uint64_t) {
        moir::WideLlsc<32>::Keep keep;
        if (dom.wll(ctx, var, keep, buf).success) {
          dom.sc(ctx, var, keep, buf);
        }
      });
  return run.ns_op();
}

double fig7_ns(moir::bench::Harness& h, std::uint64_t ops) {
  moir::BoundedLlsc<> dom(4, 2);
  moir::BoundedLlsc<>::Var var;
  dom.init_var(var, 0);
  auto ctx = dom.make_ctx();
  const auto& run = h.run_ops(
      "fig7_bounded/t1", 1, ops, [&](std::size_t, std::uint64_t) {
        moir::BoundedLlsc<>::Keep keep;
        const std::uint64_t v = dom.ll(ctx, var, keep);
        dom.sc(ctx, var, keep, (v + 1) & 0xffff);
      });
  return run.ns_op();
}

void table(moir::bench::Harness& h) {
  h.header(
      "E10: Theorems 1-5 — measured LL;SC (or CAS) cost and space overhead",
      "all constructions time-optimal (constant or Θ(W)); space overhead "
      "0 / 0 / 0 / Θ(NW) / Θ(N(k+T))");

  const std::uint64_t ops = moir::bench::scaled(kOpsBase);
  moir::Table t("summary (single-thread; contended numbers in E1-E5 benches)");
  t.columns({"construction", "primitive", "substrate", "ns/op",
             "paper time", "paper space", "accounted space (words)"});
  t.row({"figure 3 / thm 1", "CAS", "RLL/RSC",
         moir::Table::num(fig3_ns(h, ops), 1), "O(1) after spurious", "0",
         "0"});
  t.row({"figure 4 / thm 2", "LL,VL,SC", "CAS",
         moir::Table::num(fig4_ns(h, ops), 1), "O(1)", "0", "0"});
  t.row({"figure 5 / thm 3", "LL,VL,SC", "RLL/RSC",
         moir::Table::num(fig5_ns(h, ops), 1), "O(1) after spurious", "0",
         "0"});
  {
    moir::WideLlsc<32> probe(16, 8);
    t.row({"figure 6 / thm 4 (W=8)", "WLL,VL,SC", "CAS",
           moir::Table::num(fig6_ns(h, ops / 4, 8), 1), "Θ(W)", "Θ(NW)",
           moir::Table::num(probe.shared_overhead_words()) + " (N=16,W=8)"});
  }
  {
    moir::BoundedLlsc<> probe(16, 2);
    t.row({"figure 7 / thm 5", "LL,VL,SC,CL", "CAS",
           moir::Table::num(fig7_ns(h, ops), 1), "O(1)", "Θ(N(k+T))",
           moir::Table::num(probe.shared_overhead_words(100)) +
               " (N=16,k=2,T=100)"});
  }
  h.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_theorem_table");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  table(h);
  return h.finish();
}
