// E7 (Section 5): sensitivity to spurious RSC failures.
//
// The paper argues its RLL/RSC loops have "a very small window between
// each RLL and the subsequent RSC, which makes spurious failures unlikely
// and, accordingly, repeated spurious failures extremely unlikely". We
// reproduce the quantitative shape: with per-RSC spurious probability p,
// retries per operation are geometric — P(k retries) ≈ p^k — so the retry
// histogram's tail decays by a factor ~1/p per bucket, and mean retries
// ≈ p/(1-p). We sweep p far beyond anything hardware exhibits.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "util/histogram.hpp"

namespace {

using L = moir::LlscFromRllRsc<16>;

void retry_tables(moir::bench::Harness& h) {
  h.header(
      "E7: retries per SC vs injected spurious-failure rate",
      "repeated spurious failures are extremely unlikely (geometric tail); "
      "wait-free given finitely many spurious failures per operation");

  moir::Table t("single-thread SC retry statistics");
  t.columns({"p(spurious)", "mean_retries", "p99_retries", "max_retries",
             "predicted_mean p/(1-p)", "ns/op"});
  const std::uint64_t kOps = moir::bench::scaled(300000);
  for (double p : {0.0001, 0.001, 0.01, 0.1, 0.3, 0.5}) {
    moir::FaultInjector faults;
    faults.set_spurious_probability(p);
    L::Var var(0);
    moir::Processor proc(&faults);
    moir::Histogram retries;
    char name[64];
    std::snprintf(name, sizeof name, "llsc_spurious/t1/p%g", p);
    const auto& run =
        h.run_ops(name, 1, kOps, [&](std::size_t, std::uint64_t) {
          L::Keep keep;
          const std::uint64_t v = L::ll(var, keep);
          const std::uint64_t before = proc.stats().attempts;
          L::sc(proc, var, keep, (v + 1) & 0xffff);
          retries.record(proc.stats().attempts - before - 1);
        });
    t.row({moir::Table::num(p, 4), moir::Table::num(retries.mean(), 4),
           moir::Table::num(retries.quantile(0.99)),
           moir::Table::num(retries.max()),
           moir::Table::num(p / (1 - p), 4),
           moir::Table::num(run.ns_op(), 1)});
  }
  h.table(t);

  // Full retry histogram at an extreme rate, to show the geometric tail.
  moir::FaultInjector faults;
  faults.set_spurious_probability(0.3);
  L::Var var(0);
  moir::Processor proc(&faults);
  moir::Histogram retries;
  for (std::uint64_t i = 0; i < moir::bench::scaled(300000); ++i) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    const std::uint64_t before = proc.stats().attempts;
    L::sc(proc, var, keep, (v + 1) & 0xffff);
    retries.record(proc.stats().attempts - before - 1);
  }
  h.metric("retry_mean_p03", retries.mean());
  h.metric("retry_max_p03", static_cast<double>(retries.max()));
  h.printf(
      "\nretry histogram at p=0.3 (log2 buckets — geometric tail):\n%s",
      retries.render().c_str());
}

void BM_ScUnderSpuriousRate(benchmark::State& state) {
  moir::FaultInjector faults;
  faults.set_spurious_probability(state.range(0) / 1000.0);
  L::Var var(0);
  moir::Processor proc(&faults);
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::sc(proc, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_ScUnderSpuriousRate)->Arg(0)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_spurious");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  retry_tables(h);
  return h.finish();
}
