// E6 (Section 1 tag trade-off): wraparound horizons, and the failure mode.
//
// Reproduces the paper's back-of-envelope: "on a 64-bit machine, reserving
// 48 bits for the tag means that an error can occur only if a variable is
// modified 2^48 times during one LL-SC sequence... about nine years" at
// 10^6 writes/s. We measure the *actual* achievable SC rate on this host
// and tabulate the horizon for every tag split, then deliberately provoke
// the wraparound error with an 8-bit tag — and show Figure 7's bounded-tag
// construction surviving the identical schedule.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/llsc_from_cas.hpp"

namespace {

std::string horizon_str(double seconds) {
  char buf[64];
  if (seconds > 3600.0 * 24 * 365 * 1000) {
    std::snprintf(buf, sizeof buf, "%.2e years",
                  seconds / (3600.0 * 24 * 365));
  } else if (seconds > 3600.0 * 24 * 365) {
    std::snprintf(buf, sizeof buf, "%.1f years", seconds / (3600.0 * 24 * 365));
  } else if (seconds > 3600) {
    std::snprintf(buf, sizeof buf, "%.1f hours", seconds / 3600);
  } else if (seconds > 1) {
    std::snprintf(buf, sizeof buf, "%.1f seconds", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  }
  return buf;
}

// Provoke the error: victim LLs, then the adversary performs exactly 2^tag
// SCs that return the word to the same value+tag; the victim's stale SC
// then SUCCEEDS although the spec says it must fail.
template <unsigned ValBits>
bool wraparound_error_occurs() {
  using L = moir::LlscFromCas<ValBits>;
  typename L::Var var(1);
  typename L::Keep victim;
  L::ll(var, victim);
  const std::uint64_t cycle = 1ull << L::Word::kTagBits;
  for (std::uint64_t i = 0; i < cycle; ++i) {
    typename L::Keep k;
    const std::uint64_t v = L::ll(var, k);
    // Alternate 1 -> 2 -> 1 ... ending back at value 1 with the tag having
    // cycled all the way around.
    L::sc(var, k, v == 1 ? 2 : 1);
  }
  // After 2^tagbits SCs the word is (tag 0, value 1) again: identical bits.
  return L::sc(var, victim, 9);  // true = the error happened
}

void tables(moir::bench::Harness& h) {
  h.header(
      "E6: tag wraparound — horizons at measured SC rate, and the failure "
      "mode with tiny tags",
      "48-bit tags -> error needs 2^48 modifications in one LL-SC sequence "
      "(~9 years at 1M/s); trade-off tag bits vs value bits");

  const std::uint64_t kOps = moir::bench::scaled(2000000);
  using L16 = moir::LlscFromCas<16>;
  L16::Var rate_var(0);
  const auto& rate_run = h.run_ops(
      "llsc_from_cas/t1", 1, kOps, [&](std::size_t, std::uint64_t) {
        L16::Keep keep;
        const std::uint64_t v = L16::ll(rate_var, keep);
        L16::sc(rate_var, keep, (v + 1) & L16::Word::kMaxValue);
      });
  const double rate = static_cast<double>(rate_run.ops) / rate_run.secs;
  h.metric("measured_sc_rate_per_s", rate);
  h.printf("\nmeasured single-thread SC rate: %.2f M/s (paper assumed "
           "1 M/s)\n",
           rate / 1e6);

  moir::Table t("wraparound horizon by tag split (at measured rate)");
  t.columns({"tag_bits", "value_bits", "horizon at measured rate",
             "horizon at paper's 1M/s"});
  for (unsigned tag_bits : {8u, 16u, 24u, 32u, 40u, 48u, 56u}) {
    const double states = std::pow(2.0, tag_bits);
    t.row({moir::Table::num(tag_bits), moir::Table::num(64 - tag_bits),
           horizon_str(states / rate), horizon_str(states / 1e6)});
  }
  h.table(t);

  h.printf("\nforced wraparound with an 8-bit tag (2^8 = 256 SCs during "
           "one sequence):\n");
  const bool error8 = wraparound_error_occurs<56>();  // 8-bit tag
  h.metric("wraparound_error_8bit_tag", error8 ? 1.0 : 0.0);
  h.printf("  8-bit tag : stale SC succeeded = %d  (%s)\n", error8,
           error8 ? "error reproduced, as predicted" : "UNEXPECTED");
  const bool error16 = [] {
    // 16-bit tag: the same adversary budget (256 SCs) is NOT enough.
    using L = moir::LlscFromCas<48>;
    L::Var var(1);
    L::Keep victim;
    L::ll(var, victim);
    for (int i = 0; i < 256; ++i) {
      L::Keep k;
      const std::uint64_t v = L::ll(var, k);
      L::sc(var, k, v == 1 ? 2 : 1);
    }
    return L::sc(var, victim, 9);
  }();
  h.metric("wraparound_error_16bit_tag", error16 ? 1.0 : 0.0);
  h.printf("  16-bit tag: stale SC succeeded = %d  (needs 2^16 SCs, got "
           "256)\n",
           error16);

  // Figure 7 under the identical adversary: bounded tags never err.
  moir::BoundedLlsc<> dom(2, 1);
  moir::BoundedLlsc<>::Var var;
  dom.init_var(var, 1);
  auto victim_ctx = dom.make_ctx();
  auto adv_ctx = dom.make_ctx();
  moir::BoundedLlsc<>::Keep victim;
  dom.ll(victim_ctx, var, victim);
  for (int i = 0; i < 100000; ++i) {
    moir::BoundedLlsc<>::Keep k;
    const std::uint64_t v = dom.ll(adv_ctx, var, k);
    dom.sc(adv_ctx, var, k, v == 1 ? 2 : 1);
  }
  const bool fig7_err = dom.sc(victim_ctx, var, victim, 9);
  h.metric("wraparound_error_fig7", fig7_err ? 1.0 : 0.0);
  h.printf("  figure-7  : stale SC succeeded = %d after 100000 SCs "
           "(bounded tags: error impossible)\n",
           fig7_err);
}

void BM_ScRateByValBits16(benchmark::State& state) {
  using L = moir::LlscFromCas<16>;
  L::Var var(0);
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::sc(var, keep, (v + 1) & L::Word::kMaxValue));
  }
}
BENCHMARK(BM_ScRateByValBits16);

void BM_ScRateByValBits48(benchmark::State& state) {
  using L = moir::LlscFromCas<48>;
  L::Var var(0);
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::sc(var, keep, (v + 1) & L::Word::kMaxValue));
  }
}
BENCHMARK(BM_ScRateByValBits48);

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_wraparound");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tables(h);
  return h.finish();
}
