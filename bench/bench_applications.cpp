// E9 (Section 1 applicability + Section 5 STM practicality): the
// previously-inapplicable algorithms, running.
//
// The paper's point is that algorithms published against LL/VL/SC
// ([2,3,4,7,10,14]) become usable on CAS-only or RLL/RSC-only machines via
// its constructions. This bench runs four such consumers — counter, Treiber
// stack, Michael-Scott queue, and a Shavit-Touitou-style STM — over each
// substrate, plus the lock baseline, and reports throughput. The expected
// shape: all non-blocking substrates are within a small constant factor of
// each other and of the lock baseline (which lacks their progress and
// fault-tolerance properties — the reason the paper exists).
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "nonblocking/counter.hpp"
#include "nonblocking/mcas.hpp"
#include "nonblocking/ms_queue.hpp"
#include "nonblocking/stm.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "nonblocking/universal.hpp"
#include "util/rng.hpp"

namespace {

constexpr unsigned kThreads = 4;

template <typename S>
std::vector<decltype(std::declval<S&>().make_ctx())> make_ctxs(S& s,
                                                               unsigned n) {
  std::vector<decltype(s.make_ctx())> ctxs;
  ctxs.reserve(n);
  for (unsigned i = 0; i < n; ++i) ctxs.push_back(s.make_ctx());
  return ctxs;
}

std::vector<moir::Xoshiro256> make_rngs(unsigned n, std::uint64_t salt) {
  std::vector<moir::Xoshiro256> rngs;
  rngs.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    rngs.emplace_back(moir::bench::thread_seed(i + salt));
  }
  return rngs;
}

template <typename S>
double counter_mops(moir::bench::Harness& h, const std::string& name, S& s,
                    std::uint64_t ops_each) {
  moir::LlscCounter<S> c(s, 0);
  auto ctxs = make_ctxs(s, kThreads);
  const auto& run = h.run_ops("counter/" + name, kThreads, ops_each,
                              [&](std::size_t tid, std::uint64_t) {
                                c.increment(ctxs[tid]);
                              });
  return run.mops_s();
}

template <typename S>
double stack_mops(moir::bench::Harness& h, const std::string& name, S& s,
                  std::uint64_t ops_each) {
  auto init_ctx = s.make_ctx();
  moir::TreiberStack<S> st(s, 512, init_ctx);
  auto ctxs = make_ctxs(s, kThreads);
  auto rngs = make_rngs(kThreads, 0);
  const auto& run = h.run_ops("stack/" + name, kThreads, ops_each,
                              [&](std::size_t tid, std::uint64_t i) {
                                if (rngs[tid].chance(1, 2)) {
                                  st.push(ctxs[tid], i & 0xfff);
                                } else {
                                  st.pop(ctxs[tid]);
                                }
                              });
  return run.mops_s();
}

template <typename S>
double queue_mops(moir::bench::Harness& h, const std::string& name, S& s,
                  std::uint64_t ops_each) {
  auto init_ctx = s.make_ctx();
  moir::MsQueue<S> q(s, 512, init_ctx);
  auto ctxs = make_ctxs(s, kThreads);
  auto rngs = make_rngs(kThreads, 0);
  const auto& run = h.run_ops("queue/" + name, kThreads, ops_each,
                              [&](std::size_t tid, std::uint64_t i) {
                                if (rngs[tid].chance(1, 2)) {
                                  q.enqueue(ctxs[tid], i & 0xfff);
                                } else {
                                  q.dequeue(ctxs[tid]);
                                }
                              });
  return run.mops_s();
}

double dcas_mops(moir::bench::Harness& h, std::uint64_t ops_each) {
  // The Greenwald/Cheriton primitive, in software (§5's rebuttal).
  moir::Mcas m(kThreads, 16);
  for (std::size_t i = 0; i < 16; ++i) m.set_initial(i, 0);
  auto ctxs = make_ctxs(m, kThreads);
  auto rngs = make_rngs(kThreads, 4);
  const auto& run = h.run_ops(
      "dcas/mcas", kThreads, ops_each, [&](std::size_t tid, std::uint64_t) {
        auto& rng = rngs[tid];
        std::uint32_t x = static_cast<std::uint32_t>(rng.next_below(16));
        std::uint32_t y = static_cast<std::uint32_t>(rng.next_below(16));
        if (x == y) y = (y + 1) % 16;
        if (x > y) std::swap(x, y);
        const std::uint32_t a[] = {x, y};
        std::uint64_t snap[2];
        m.snapshot(ctxs[tid], a, snap);
        const std::uint64_t e[] = {snap[0], snap[1]};
        const std::uint64_t d[] = {(snap[0] + 1) & moir::Mcas::kMaxValue,
                                   (snap[1] + 1) & moir::Mcas::kMaxValue};
        m.mcas(ctxs[tid], a, e, d);
      });
  return run.mops_s();
}

double stm_mtps(moir::bench::Harness& h, std::uint64_t ops_each) {
  moir::Stm stm(kThreads, 32);
  for (std::size_t a = 0; a < 32; ++a) stm.set_initial(a, 1000);
  auto ctxs = make_ctxs(stm, kThreads);
  auto rngs = make_rngs(kThreads, 8);
  const auto& run = h.run_ops(
      "stm/bank", kThreads, ops_each, [&](std::size_t tid, std::uint64_t) {
        auto& rng = rngs[tid];
        std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(32));
        std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(32));
        if (a == b) b = (b + 1) % 32;
        if (a > b) std::swap(a, b);
        const std::uint32_t addrs[] = {a, b};
        stm.transact(
            ctxs[tid], addrs,
            [](const std::uint64_t* olds, std::uint64_t* news, unsigned,
               std::uint64_t amt) {
              const std::uint64_t m = olds[0] >= amt ? amt : 0;
              news[0] = olds[0] - m;
              news[1] = olds[1] + m;
            },
            1 + rng.next_below(5));
      });
  return run.mops_s();
}

double universal_mops(moir::bench::Harness& h, std::uint64_t ops_each) {
  struct Acc {
    std::uint64_t v[4];
  };
  moir::WideLlsc<32> dom(kThreads,
                         moir::UniversalObject<Acc>::required_width());
  moir::UniversalObject<Acc> obj(dom, Acc{{0, 0, 0, 0}});
  auto ctxs = make_ctxs(dom, kThreads);
  const auto& run = h.run_ops("universal/fig6", kThreads, ops_each,
                              [&](std::size_t tid, std::uint64_t) {
                                obj.apply(ctxs[tid], [tid](Acc a) {
                                  a.v[tid % 4] += 1;
                                  return a;
                                });
                              });
  return run.mops_s();
}

void tables(moir::bench::Harness& h) {
  h.header(
      "E9: previously-inapplicable algorithms over each substrate "
      "(Mops/s, 4 threads)",
      "algorithms based on LL/VL/SC [2,3,4,7,10,14] become applicable; STM "
      "can be implemented in existing systems");

  const std::uint64_t kOps = moir::bench::scaled(50000);

  moir::CasBackedLlsc<16> fig4;
  moir::FaultInjector faults;
  faults.set_spurious_probability(0.001);
  moir::RllBackedLlsc<16> fig5(&faults);
  moir::LockBackedLlsc<16> lock;

  moir::Table t("consumer throughput by substrate (Mops/s)");
  t.columns({"consumer", "fig4(CAS)", "fig5(RLL/RSC)", "fig7(bounded)",
             "lock baseline"});
  {
    moir::BoundedLlsc<> fig7(kThreads, 1);
    t.row({"counter (fetch-and-add)",
           moir::Table::num(counter_mops(h, "fig4", fig4, kOps), 2),
           moir::Table::num(counter_mops(h, "fig5", fig5, kOps), 2),
           moir::Table::num(counter_mops(h, "fig7", fig7, kOps), 2),
           moir::Table::num(counter_mops(h, "lock", lock, kOps), 2)});
  }
  {
    moir::BoundedLlsc<> fig7(kThreads + 1, 2);
    t.row({"treiber stack [CP.100's example]",
           moir::Table::num(stack_mops(h, "fig4", fig4, kOps), 2),
           moir::Table::num(stack_mops(h, "fig5", fig5, kOps), 2),
           moir::Table::num(stack_mops(h, "fig7", fig7, kOps), 2),
           moir::Table::num(stack_mops(h, "lock", lock, kOps), 2)});
  }
  {
    moir::BoundedLlsc<> fig7(kThreads + 1, 3);
    t.row({"michael-scott queue",
           moir::Table::num(queue_mops(h, "fig4", fig4, kOps), 2),
           moir::Table::num(queue_mops(h, "fig5", fig5, kOps), 2),
           moir::Table::num(queue_mops(h, "fig7", fig7, kOps), 2),
           moir::Table::num(queue_mops(h, "lock", lock, kOps), 2)});
  }
  h.table(t);

  moir::Table t2("multi-word consumers (over Figure 6 / Figure 4)");
  t2.columns({"consumer", "Mops/s"});
  t2.row({"universal object [7] (32-byte state, fig6)",
          moir::Table::num(universal_mops(h, kOps), 2)});
  t2.row({"stm bank transfer [14] (2-cell txns, fig4 cells)",
          moir::Table::num(stm_mtps(h, kOps), 2)});
  t2.row({"software DCAS [vs Greenwald-Cheriton hardware DCAS]",
          moir::Table::num(dcas_mops(h, kOps), 2)});
  h.table(t2);
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_applications");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tables(h);
  return h.finish();
}
