// E8 (Section 5): disjoint-access parallelism.
//
// The paper notes Figures 3-5 are disjoint-access parallel: operations on
// different variables touch no common memory, so the implementations
// introduce no contention of their own. On this single-core host raw
// throughput cannot show parallel speedup, so we reproduce the claim by
// its observable proxy: CAS/SC *conflict retries*. Threads hammering one
// shared variable retry heavily; the same threads spread over disjoint
// variables retry (essentially) never — and for Figure 6/7, whose shared
// announcement structures are NOT disjoint-access parallel, we measure how
// much cross-variable interference their sharing actually causes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/llsc_from_cas.hpp"

namespace {

using L = moir::LlscFromCas<16>;

struct Result {
  double ns_per_op;
  double retries_per_op;
};

struct alignas(64) PaddedCount {
  std::uint64_t v = 0;
};

// `window` adds computation (and an occasional yield, standing in for the
// preemption a multicore machine would give for free) between LL and SC,
// widening the vulnerability window so conflicts become visible on a
// single-core host.
Result run_fig4(moir::bench::Harness& h, unsigned threads, bool disjoint,
                std::uint64_t ops_each, unsigned window) {
  std::vector<L::Var> vars(disjoint ? threads : 1);
  std::vector<PaddedCount> retries(threads);
  std::vector<PaddedCount> sinks(threads);
  char name[64];
  std::snprintf(name, sizeof name, "fig4_%s/t%u/w%u",
                disjoint ? "disjoint" : "shared", threads, window);
  const auto& run = h.run_ops(
      name, threads, ops_each, [&](std::size_t tid, std::uint64_t i) {
        L::Var& var = vars[disjoint ? tid : 0];
        for (;;) {
          L::Keep keep;
          const std::uint64_t v = L::ll(var, keep);
          for (unsigned s = 0; s < window; ++s) sinks[tid].v += s * v;
          if (window != 0 && i % 64 == 0) std::this_thread::yield();
          if (L::sc(var, keep, (v + 1) & 0xffff)) break;
          ++retries[tid].v;
        }
      });
  std::uint64_t total_retries = 0;
  for (const auto& r : retries) total_retries += r.v;
  benchmark::DoNotOptimize(sinks.data());
  return {run.ns_op(), static_cast<double>(total_retries) / run.ops};
}

Result run_fig7(moir::bench::Harness& h, unsigned threads, bool disjoint,
                std::uint64_t ops_each) {
  moir::BoundedLlsc<> dom(threads, 1);
  std::vector<moir::BoundedLlsc<>::Var> vars(disjoint ? threads : 1);
  for (auto& v : vars) dom.init_var(v, 0);
  std::vector<decltype(dom.make_ctx())> ctxs;
  ctxs.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) ctxs.push_back(dom.make_ctx());
  std::vector<PaddedCount> retries(threads);
  char name[64];
  std::snprintf(name, sizeof name, "fig7_%s/t%u",
                disjoint ? "disjoint" : "shared", threads);
  const auto& run = h.run_ops(
      name, threads, ops_each, [&](std::size_t tid, std::uint64_t) {
        auto& ctx = ctxs[tid];
        auto& var = vars[disjoint ? tid : 0];
        for (;;) {
          moir::BoundedLlsc<>::Keep keep;
          const std::uint64_t v = dom.ll(ctx, var, keep);
          if (dom.sc(ctx, var, keep, (v + 1) & 0xffff)) break;
          ++retries[tid].v;
        }
      });
  std::uint64_t total_retries = 0;
  for (const auto& r : retries) total_retries += r.v;
  return {run.ns_op(), static_cast<double>(total_retries) / run.ops};
}

void tables(moir::bench::Harness& h) {
  h.header(
      "E8: disjoint-access parallelism — conflict retries, shared vs "
      "disjoint variables",
      "Figures 3-5 are disjoint-access parallel (no contention introduced); "
      "Figures 6-7 share announcement arrays but 'accesses to common "
      "variables are not concentrated in any one area'");

  const std::uint64_t kOps = moir::bench::scaled(100000);
  moir::Table t("retries/op and ns/op, 4 threads");
  t.columns({"impl", "LL-SC window", "access pattern", "ns/op",
             "conflict_retries/op"});
  for (const unsigned window : {0u, 200u}) {
    for (const bool disjoint : {false, true}) {
      const Result r4 = run_fig4(h, 4, disjoint,
                                 window == 0 ? kOps : kOps / 10, window);
      t.row({"fig4 (CAS-backed)", window == 0 ? "tight" : "wide(+work)",
             disjoint ? "disjoint vars" : "one shared var",
             moir::Table::num(r4.ns_per_op, 1),
             moir::Table::num(r4.retries_per_op, 4)});
    }
  }
  for (const bool disjoint : {false, true}) {
    const Result r7 = run_fig7(h, 4, disjoint, kOps);
    t.row({"fig7 (bounded)", "tight",
           disjoint ? "disjoint vars" : "one shared var",
           moir::Table::num(r7.ns_per_op, 1),
           moir::Table::num(r7.retries_per_op, 4)});
  }
  h.table(t);

  h.printf(
      "\nreading: retries/op ~0 on disjoint variables = the implementation "
      "adds no contention of its own (disjoint-access parallelism).\n"
      "Figure 7's announcement array is shared, yet disjoint-variable "
      "retries stay ~0 because A is only CAS-free bookkeeping — the paper's "
      "'not concentrated in any one area' argument.\n");
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_disjoint");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tables(h);
  return h.finish();
}
