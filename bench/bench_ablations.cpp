// E11 (ablations): the design choices DESIGN.md calls out, isolated.
//
//  A. RSC emulation strength: versioned (128-bit, ABA-detecting) vs weak
//     (64-bit, value-only). The paper's algorithms are correct on both;
//     the versioned flavour is what faithful hardware semantics cost.
//  B. Word provider for Figures 6/7: native CAS vs Figure-3-emulated
//     RLL/RSC — the price of running the multi-word/bounded constructions
//     on an LL/SC-only machine.
//  C. Figure 6 tag split: wider tags shrink chunks, so the same payload
//     needs more segments — a time/space/robustness triangle.
//  D. Substrate tax on a real consumer: one Treiber stack, five
//     substrates (incl. the two-tag composition).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "core/value_codec.hpp"
#include "core/wide_llsc.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "util/rng.hpp"

namespace {

// --- A: RSC strength --------------------------------------------------
void BM_AblationRscVersioned(benchmark::State& state) {
  moir::RllWord word(0);
  moir::Processor proc;
  for (auto _ : state) {
    const std::uint64_t v = proc.rll(word);
    benchmark::DoNotOptimize(proc.rsc(word, v + 1));
  }
}
BENCHMARK(BM_AblationRscVersioned);

void BM_AblationRscWeak(benchmark::State& state) {
  moir::RllWord word(0);
  moir::Processor proc;
  for (auto _ : state) {
    const std::uint64_t v = proc.rll(word);
    benchmark::DoNotOptimize(proc.rsc_weak(word, v + 1));
  }
}
BENCHMARK(BM_AblationRscWeak);

// --- B: provider for Figure 6 ------------------------------------------
template <typename Provider>
void wide_provider_bench(benchmark::State& state, Provider provider) {
  using W = moir::WideLlsc<32, Provider>;
  W dom(2, 8, std::move(provider));
  typename W::Var var;
  std::vector<std::uint64_t> buf(8, 1);
  dom.init_var(var, buf);
  auto ctx = dom.make_ctx();
  for (auto _ : state) {
    typename W::Keep keep;
    if (dom.wll(ctx, var, keep, buf).success) {
      buf[0] = (buf[0] + 1) & W::kMaxChunk;
      benchmark::DoNotOptimize(dom.sc(ctx, var, keep, buf));
    }
  }
}

void BM_AblationWideNativeCas(benchmark::State& state) {
  wide_provider_bench(state, moir::NativeWordProvider{});
}
BENCHMARK(BM_AblationWideNativeCas);

void BM_AblationWideRllRsc(benchmark::State& state) {
  wide_provider_bench(state, moir::RllRscWordProvider{});
}
BENCHMARK(BM_AblationWideRllRsc);

// --- B': provider for Figure 7 -----------------------------------------
void BM_AblationBoundedNativeCas(benchmark::State& state) {
  moir::BoundedLlsc<> dom(4, 2);
  moir::BoundedLlsc<>::Var var;
  dom.init_var(var, 0);
  auto ctx = dom.make_ctx();
  for (auto _ : state) {
    moir::BoundedLlsc<>::Keep keep;
    const auto v = dom.ll(ctx, var, keep);
    benchmark::DoNotOptimize(dom.sc(ctx, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_AblationBoundedNativeCas);

void BM_AblationBoundedRllRsc(benchmark::State& state) {
  using B = moir::BoundedLlsc<16, 10, 18, 20, moir::RllRscWordProvider>;
  B dom(4, 2, moir::RllRscWordProvider{});
  B::Var var;
  dom.init_var(var, 0);
  auto ctx = dom.make_ctx();
  for (auto _ : state) {
    B::Keep keep;
    const auto v = dom.ll(ctx, var, keep);
    benchmark::DoNotOptimize(dom.sc(ctx, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_AblationBoundedRllRsc);

// --- C: Figure 6 tag split for a fixed 32-byte payload -------------------
template <unsigned TagBits>
void wide_tag_split_bench(benchmark::State& state) {
  using W = moir::WideLlsc<TagBits>;
  const unsigned width =
      static_cast<unsigned>(moir::chunks_needed(32, W::kChunkBits));
  W dom(2, width);
  typename W::Var var;
  std::vector<std::uint64_t> buf(width, 1);
  dom.init_var(var, buf);
  auto ctx = dom.make_ctx();
  for (auto _ : state) {
    typename W::Keep keep;
    if (dom.wll(ctx, var, keep, buf).success) {
      buf[0] = (buf[0] + 1) & W::kMaxChunk;
      benchmark::DoNotOptimize(dom.sc(ctx, var, keep, buf));
    }
  }
  state.counters["segments"] = width;
}

void BM_AblationWideTag16(benchmark::State& state) {
  wide_tag_split_bench<16>(state);  // 48-bit chunks: 6 segments
}
BENCHMARK(BM_AblationWideTag16);

void BM_AblationWideTag32(benchmark::State& state) {
  wide_tag_split_bench<32>(state);  // 32-bit chunks: 8 segments
}
BENCHMARK(BM_AblationWideTag32);

void BM_AblationWideTag48(benchmark::State& state) {
  wide_tag_split_bench<48>(state);  // 16-bit chunks: 16 segments
}
BENCHMARK(BM_AblationWideTag48);

// --- D: one consumer, five substrates ------------------------------------
void substrate_tax_table(moir::bench::Harness& h) {
  h.header(
      "E11 table: substrate tax on a Treiber stack (4 threads, Mops/s)",
      "design-choice ablations: what each emulation layer costs a consumer");

  const std::uint64_t kOps = moir::bench::scaled(50000);
  moir::Table t("stack throughput by substrate");
  t.columns({"substrate", "Mops/s"});

  auto run_stack = [&](auto& s, const char* run_name) {
    auto init_ctx = s.make_ctx();
    moir::TreiberStack<std::remove_reference_t<decltype(s)>> st(s, 256,
                                                                init_ctx);
    std::vector<decltype(s.make_ctx())> ctxs;
    ctxs.reserve(4);
    for (unsigned i = 0; i < 4; ++i) ctxs.push_back(s.make_ctx());
    std::vector<moir::Xoshiro256> rngs;
    for (unsigned i = 0; i < 4; ++i) {
      rngs.emplace_back(moir::bench::thread_seed(i));
    }
    const auto& run =
        h.run_ops(run_name, 4, kOps, [&](std::size_t tid, std::uint64_t i) {
          if (rngs[tid].chance(1, 2)) {
            st.push(ctxs[tid], i & 0xfff);
          } else {
            st.pop(ctxs[tid]);
          }
        });
    return run.mops_s();
  };

  {
    moir::CasBackedLlsc<16> s;
    t.row({s.name(), moir::Table::num(run_stack(s, "stack/fig4"), 2)});
  }
  {
    moir::RllBackedLlsc<16> s;
    t.row({s.name(), moir::Table::num(run_stack(s, "stack/fig5"), 2)});
  }
  {
    moir::ComposedBackedLlsc<16> s;
    t.row({s.name(), moir::Table::num(run_stack(s, "stack/composed"), 2)});
  }
  {
    moir::BoundedLlsc<> s(6, 2);
    t.row({s.name(), moir::Table::num(run_stack(s, "stack/fig7"), 2)});
  }
  {
    moir::LockBackedLlsc<16> s;
    t.row({s.name(), moir::Table::num(run_stack(s, "stack/lock"), 2)});
  }
  h.table(t);
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_ablations");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  substrate_tax_table(h);
  return h.finish();
}
