// E17 (change-feed fan-out): what broadcast costs the writer, and what
// subscribers see, as fan-out grows 1 -> 64 across the three substrates
// that back the service (fig4 CAS-backed, fig7 bounded-tag, figbw
// constant-time LL/SC).
//
// The claim under test: the seqlock broadcast ring makes fan-out free for
// the writer. Publishing is one slot write + two stamp writes per commit
// regardless of subscriber count, and readers never write shared memory,
// so publish throughput should stay flat (within ~1.5x, scheduling noise)
// from 1 to 64 subscribers while per-subscriber delivery degrades
// gracefully into overrun/resync territory as pollers fall behind.
//
// Sections:
//   * micro: single-thread ring publish and read (the raw primitive cost
//     with no service pipeline around it).
//   * fan-out table per substrate: a closed-loop writer upserts
//     timestamped values through the full service pipeline while S direct
//     subscribers (shard filter, wait-free read path, see
//     KvService::feed()) poll concurrently. Reports writer ns/op,
//     notification latency p50/p99 (publish-to-delivery, timestamps ride
//     in the values), deliveries per publish, and overrun/resync rates.
//   * coherence: every subscriber checks masked versions are monotone per
//     key on every delivered record; the total violation count is exported
//     as the `feed_version_violations` metric and must be zero
//     (tools/check_bench_json.py fails the smoke run otherwise).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/bw_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "feed/feed.hpp"
#include "reclaim/epoch.hpp"
#include "svc/service.hpp"
#include "util/histogram.hpp"

namespace {

using moir::svc::Op;
using moir::svc::Status;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void BM_RingPublish(benchmark::State& state) {
  moir::feed::BroadcastRing<64> ring;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(ring.publish(i & 7, i));
  }
}
BENCHMARK(BM_RingPublish);

void BM_RingRead(benchmark::State& state) {
  moir::feed::BroadcastRing<64> ring;
  for (std::uint64_t i = 0; i < 64; ++i) ring.publish(i & 7, i + 1);
  std::uint64_t cursor = 0;
  moir::feed::Record rec;
  for (auto _ : state) {
    // Stay one lap behind the head so every read validates and succeeds.
    if (cursor == ring.published()) cursor = 0;
    benchmark::DoNotOptimize(ring.read(cursor, rec));
    ++cursor;
  }
}
BENCHMARK(BM_RingRead);

constexpr unsigned kQueues = 2;
constexpr std::uint64_t kKeys = 64;

template <class Svc>
typename Svc::Config feed_bench_config() {
  typename Svc::Config cfg;
  cfg.queues = kQueues;
  cfg.queue_capacity = 1024;
  cfg.workers = 2;
  cfg.max_sessions = 2;
  cfg.tickets_per_session = 16;
  cfg.use_rings = true;
  cfg.feed = true;
  cfg.feed_max_subscribers = 72;
  cfg.map = {.shards = kQueues, .buckets_per_shard = 64,
             .capacity_per_shard = 1024};
  return cfg;
}

// What one polling subscriber accumulates over a run. Subscribers are
// wait-free ring readers; the version check is the bench's coherence
// oracle (FeedChecker's property 2, cheap enough for the hot loop).
struct SubscriberTally {
  moir::Histogram latency_ns;
  std::uint64_t delivered = 0;
  std::uint64_t violations = 0;
};

// One fan-out point: S direct shard subscribers polling while a single
// closed-loop writer drives upserts through the service. Returns the
// total version violations observed (accumulated into the global metric).
template <class Svc>
std::uint64_t fanout_run(moir::bench::Harness& h, const std::string& sub_name,
                         Svc& svc, unsigned fanout, std::uint64_t ops,
                         moir::Table& t) {
  std::atomic<bool> stop{false};
  std::vector<SubscriberTally> tallies(fanout);
  std::vector<std::thread> subs;
  subs.reserve(fanout);
  auto& feed = svc.feed();
  for (unsigned s = 0; s < fanout; ++s) {
    // Subscribe on this thread (before any publish) so every subscriber's
    // cursor starts at sequence 0 and sees the whole run.
    const unsigned shard = s % kQueues;
    const auto id = feed.subscribe(moir::feed::Filter::kShard, shard);
    MOIR_ASSERT(id.has_value());
    subs.emplace_back([&, s, id] {
      SubscriberTally& tally = tallies[s];
      std::map<std::uint64_t, std::uint64_t> last_ver;
      moir::feed::Record buf[32];
      const auto no_resync = [](std::uint64_t) { return std::uint64_t{0}; };
      for (;;) {
        const auto res = feed.poll(*id, buf, 32, no_resync);
        for (unsigned i = 0; i < res.delivered; ++i) {
          const moir::feed::Record& r = buf[i];
          const std::uint64_t ver = r.version & ~moir::feed::kResyncBit;
          if (const auto it = last_ver.find(r.key);
              it != last_ver.end() && ver < it->second) {
            ++tally.violations;
          }
          last_ver[r.key] = ver;
          ++tally.delivered;
          if (r.value != 0 && (r.version & moir::feed::kResyncBit) == 0) {
            const std::uint64_t sent = r.value - 1;  // wire form: v+1
            const std::uint64_t now = now_ns();
            tally.latency_ns.record(now > sent ? now - sent : 0);
          }
        }
        if (res.delivered == 0) {
          if (stop.load(std::memory_order_acquire)) break;
          // Sleep, don't spin — and scale the interval with fan-out so
          // the AGGREGATE poll/wakeup rate stays constant across sweep
          // points. S busy (or fixed-interval) pollers would contend with
          // the writer for cores and the sweep would measure the
          // scheduler, not the ring; coarser per-subscriber polling at
          // high fan-out is also how real watcher deployments batch.
          // Laggards pay in overruns/resyncs and delivery latency — those
          // are the columns that show the trade-off.
          std::this_thread::sleep_for(std::chrono::microseconds(250 * fanout));
        }
      }
      feed.unsubscribe(*id);
    });
  }

  auto session = svc.connect();
  const auto& r = h.run_ops(
      sub_name + "_publish/s" + std::to_string(fanout), 1, ops,
      [&](std::size_t, std::uint64_t i) {
        const std::uint64_t key = i % kKeys;
        for (;;) {
          const auto tk = svc.submit(session, Op::kUpsert, key, now_ns());
          if (!tk.has_value()) continue;  // ticket window full; retry
          if (svc.wait(session, *tk).status != Status::kOverload) break;
        }
      });
  stop.store(true, std::memory_order_release);
  for (auto& th : subs) th.join();

  moir::Histogram lat;
  std::uint64_t delivered = 0;
  std::uint64_t violations = 0;
  for (const SubscriberTally& tally : tallies) {
    lat.merge(tally.latency_ns);
    delivered += tally.delivered;
    violations += tally.violations;
  }
  const auto ctr = [&](moir::stats::Id id) {
    return static_cast<double>(r.counters[id]);
  };
  const double publishes = ctr(moir::stats::Id::kFeedPublish);
  t.row({moir::Table::num(fanout), moir::Table::num(r.ns_op(), 1),
         moir::Table::num(lat.percentile(0.50) / 1e3, 1),
         moir::Table::num(lat.percentile(0.99) / 1e3, 1),
         moir::Table::num(
             publishes == 0 ? 0.0 : static_cast<double>(delivered) / publishes,
             2),
         moir::Table::num(
             publishes == 0 ? 0.0 : ctr(moir::stats::Id::kFeedOverrun) /
                                        publishes,
             3),
         moir::Table::num(
             publishes == 0 ? 0.0 : ctr(moir::stats::Id::kFeedResync) /
                                        publishes,
             3)});
  if (violations != 0) {
    h.printf("!! %s fanout %u: %llu version violations\n", sub_name.c_str(),
             fanout, static_cast<unsigned long long>(violations));
  }
  return violations;
}

// MakeSub builds a FRESH substrate per fan-out point: process slots are
// leased per ThreadCtx and never returned, so one substrate cannot back
// four service lifetimes in a row.
template <class MakeSub>
std::uint64_t fanout_table(moir::bench::Harness& h, const std::string& name,
                           MakeSub make_sub) {
  using Sub = decltype(make_sub());
  // Feed ring sized for interval pollers: subscribers wake every
  // 250us * S and drain in batches, so the ring must hold an interval's
  // worth of publishes (~interval / writer ns_op). 1024 rides out the
  // 4ms interval at S=16; at S=64 the writer laps the 16ms sleepers and
  // the overrun/resync columns show the lossy fallback.
  using Svc =
      moir::svc::KvService<Sub, moir::reclaim::EpochReclaimer, 64, 1024>;
  const std::uint64_t kOps = moir::bench::scaled(20000);
  moir::Table t("E17 " + name +
                ": closed-loop writer vs fan-out (latency in us; rates per "
                "publish)");
  t.columns({"subs", "writer_ns_op", "p50_us", "p99_us", "deliver/pub",
             "overrun/pub", "resync/pub"});
  std::uint64_t violations = 0;
  for (unsigned fanout : {1u, 4u, 16u, 64u}) {
    Sub sub = make_sub();
    Svc svc(sub, feed_bench_config<Svc>());
    violations += fanout_run(h, name, svc, fanout, kOps, t);
    svc.stop();
  }
  h.table(t);
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_feed");
  h.header(
      "E17: change-feed fan-out — publish cost, notification latency, "
      "overrun behavior",
      "the seqlock broadcast ring gives subscribers a write-free read "
      "path, so writer throughput should not move with fan-out; laggards "
      "pay in overruns/resyncs, not in writer stalls");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  std::uint64_t violations = 0;
  violations +=
      fanout_table(h, "fig4", [] { return moir::CasBackedLlsc<16>(); });
  // Pid budget for the tag substrates: sessions x queue ctxs + worker and
  // router map ctxs per service lifetime, never returned — sized with
  // slack for one service each.
  violations +=
      fanout_table(h, "fig7", [] { return moir::BoundedLlsc<>(32, /*k=*/3); });
  violations +=
      fanout_table(h, "figbw", [] { return moir::BwLlsc<>(32, /*k=*/3); });

  // The coherence gate: check_bench_json.py fails the smoke run when this
  // metric is present and nonzero.
  h.metric("feed_version_violations", static_cast<double>(violations));
  h.printf("\ncoherence: %llu per-key version violations across all runs\n",
           static_cast<unsigned long long>(violations));
  return h.finish();
}
