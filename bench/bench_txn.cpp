// E14 (multi-key transactions): the MCAS-backed transaction layer
// (src/txn/) over the sharded map — atomic multi_get snapshots and
// multi_cas transfers, k in {2,4,8}, on both the Figure 4 CAS-backed and
// the Figure 7 bounded-tag substrates at 8 threads.
//
// Workloads per (k, substrate):
//   * read-only: k-key multi_get snapshots over a quiescent store; every
//     returned cell is checked against the reference value — a torn or
//     stale snapshot is an integrity failure;
//   * read-write: snapshot k consecutive accounts, then multi_cas a
//     1-unit transfer from the richest to the poorest, expecting exactly
//     the snapshot (kMiss = lost race = retry next op).
//
// The hard check: transfers CONSERVE the global value checksum. After
// every read-write run the full 256-account sum must equal the preload
// total; any deviation (or read-only snapshot mismatch) exits 2 — the
// same class of seeded-bug tripwire as bench_service's find checksum.
#include <atomic>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/bw_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "txn/txn_kv.hpp"
#include "util/rng.hpp"

namespace {

using moir::reclaim::EpochReclaimer;
using moir::txn::TxnStatus;

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kAccounts = 256;
constexpr std::uint64_t kInitial = 1000;
constexpr std::uint64_t kTotal = kAccounts * kInitial;

std::atomic<std::uint64_t> g_integrity_failures{0};

std::vector<std::pair<std::string, double>> g_results;

double mops_of(const std::string& name) {
  for (const auto& [n, v] : g_results) {
    if (n == name) return v;
  }
  return 0.0;
}

// Lifetime ThreadCtx budget per run: the worker threads plus the
// preloader and the post-run checker (pids are leased per ctx, never
// returned).
constexpr unsigned kCtxBudget = kThreads + 4;

template <class S>
struct Store {
  using Map = moir::ShardedHashMap<S, EpochReclaimer>;
  using Txn = moir::txn::TxnKv<S, EpochReclaimer>;

  Map map;
  Txn txn;

  explicit Store(S& substrate)
      : map(substrate, kCtxBudget,
            {.shards = 4, .buckets_per_shard = 64, .capacity_per_shard = 256}),
        txn(map, kCtxBudget) {}

  void preload() {
    auto ctx = txn.make_ctx();
    for (std::uint64_t k = 0; k < kAccounts; ++k) {
      if (txn.insert(ctx, k, kInitial) != TxnStatus::kOk) {
        std::fprintf(stderr, "preload failed at account %llu\n",
                     static_cast<unsigned long long>(k));
        g_integrity_failures.fetch_add(1);
        return;
      }
    }
  }

  // Quiescent full sum in 8-key snapshots. Run only with no writers.
  std::uint64_t full_sum() {
    auto ctx = txn.make_ctx();
    std::uint64_t sum = 0;
    for (std::uint64_t base = 0; base < kAccounts; base += 8) {
      std::uint64_t keys[8];
      std::uint64_t out[8];
      for (unsigned i = 0; i < 8; ++i) keys[i] = base + i;
      txn.multi_get(ctx, keys, out);
      for (const std::uint64_t c : out) {
        if (c == Txn::kAbsent) {
          g_integrity_failures.fetch_add(1);
          continue;
        }
        sum += c - 1;
      }
    }
    return sum;
  }
};

// k consecutive accounts starting at a random base: distinct by
// construction, and consecutive bases still collide across threads (the
// contention the transfer loop is meant to measure).
inline void pick_keys(moir::Xoshiro256& rng, unsigned k,
                      std::uint64_t* keys) {
  const std::uint64_t base = rng.next_below(kAccounts);
  for (unsigned i = 0; i < k; ++i) keys[i] = (base + i) % kAccounts;
}

template <class S>
void read_only_run(moir::bench::Harness& h, const std::string& name,
                   S& substrate, unsigned k) {
  Store<S> store(substrate);
  store.preload();
  using Txn = typename Store<S>::Txn;

  std::vector<typename Txn::ThreadCtx> ctxs;
  ctxs.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    ctxs.push_back(store.txn.make_ctx());
  }
  std::vector<moir::Xoshiro256> rngs;
  for (unsigned t = 0; t < kThreads; ++t) {
    rngs.emplace_back(moir::bench::thread_seed(t));
  }
  std::vector<std::uint64_t> mismatches(kThreads, 0);

  const auto& stats = h.run_timed(
      name, kThreads, h.duration_ms(300), h.warmup_ms(100),
      [&](std::size_t t, std::uint64_t) {
        std::uint64_t keys[8];
        std::uint64_t out[8];
        pick_keys(rngs[t], k, keys);
        store.txn.multi_get(ctxs[t], {keys, k}, {out, k});
        // Quiescent store: every cell must hold exactly the preload value.
        for (unsigned i = 0; i < k; ++i) {
          if (out[i] != Txn::wire(kInitial)) ++mismatches[t];
        }
      });
  for (const std::uint64_t m : mismatches) g_integrity_failures.fetch_add(m);
  g_results.emplace_back(name, stats.mops_s());
}

template <class S>
void read_write_run(moir::bench::Harness& h, const std::string& name,
                    S& substrate, unsigned k) {
  Store<S> store(substrate);
  store.preload();
  using Txn = typename Store<S>::Txn;

  std::vector<typename Txn::ThreadCtx> ctxs;
  ctxs.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    ctxs.push_back(store.txn.make_ctx());
  }
  std::vector<moir::Xoshiro256> rngs;
  for (unsigned t = 0; t < kThreads; ++t) {
    rngs.emplace_back(moir::bench::thread_seed(t) ^ 0xabcdefULL);
  }

  const auto& stats = h.run_timed(
      name, kThreads, h.duration_ms(300), h.warmup_ms(100),
      [&](std::size_t t, std::uint64_t) {
        std::uint64_t keys[8];
        std::uint64_t snap[8];
        std::uint64_t des[8];
        pick_keys(rngs[t], k, keys);
        store.txn.multi_get(ctxs[t], {keys, k}, {snap, k});
        // Transfer 1 unit richest -> poorest, expecting the snapshot.
        unsigned rich = 0, poor = 0;
        for (unsigned i = 1; i < k; ++i) {
          if (snap[i] > snap[rich]) rich = i;
          if (snap[i] < snap[poor]) poor = i;
        }
        // All equal (the initial state): still transfer, endpoints only.
        if (rich == poor) poor = k - 1;
        if (rich == poor || snap[rich] <= Txn::wire(0)) return;
        for (unsigned i = 0; i < k; ++i) des[i] = snap[i];
        des[rich] -= 1;
        des[poor] += 1;
        store.txn.multi_cas(ctxs[t], {keys, k}, {snap, k}, {des, k});
      });
  g_results.emplace_back(name, stats.mops_s());

  const std::uint64_t sum = store.full_sum();
  if (sum != kTotal) {
    std::fprintf(stderr,
                 "%s: CONSERVATION VIOLATED: sum %llu != %llu\n",
                 name.c_str(), static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(kTotal));
    g_integrity_failures.fetch_add(1);
  }
}

std::string run_name(const char* mode, const char* fig, unsigned k) {
  return std::string(mode) + "/" + fig + "/k" + std::to_string(k) + "/t8";
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_txn");
  h.header(
      "E14: multi-key atomic transactions — k x read-only/read-write x "
      "substrate, conservation hard check",
      "MCAS-backed transactions over the sharded map commit atomic k-key "
      "snapshots and transfers on both Figure 4 and Figure 7 substrates; "
      "value checksums are conserved under 8-thread contention");

  for (const unsigned k : {2u, 4u, 8u}) {
    {
      moir::CasBackedLlsc<16> fig4;
      read_only_run(h, run_name("ro", "fig4", k), fig4, k);
    }
    {
      moir::BoundedLlsc<> fig7(kCtxBudget, /*k=*/3);
      read_only_run(h, run_name("ro", "fig7", k), fig7, k);
    }
    {
      moir::CasBackedLlsc<16> fig4;
      read_write_run(h, run_name("rw", "fig4", k), fig4, k);
    }
    {
      moir::BoundedLlsc<> fig7(kCtxBudget, /*k=*/3);
      read_write_run(h, run_name("rw", "fig7", k), fig7, k);
    }
    {
      moir::BwLlsc<> figbw(kCtxBudget, /*k=*/3);
      read_only_run(h, run_name("ro", "figbw", k), figbw, k);
    }
    {
      moir::BwLlsc<> figbw(kCtxBudget, /*k=*/3);
      read_write_run(h, run_name("rw", "figbw", k), figbw, k);
    }
  }

  {
    moir::Table t("transactions, 8 threads: k x mode x substrate (Mops/s)");
    t.columns({"k", "ro/fig4", "ro/fig7", "ro/figbw", "rw/fig4", "rw/fig7",
               "rw/figbw"});
    for (const unsigned k : {2u, 4u, 8u}) {
      t.row({"k" + std::to_string(k),
             moir::Table::num(mops_of(run_name("ro", "fig4", k)), 3),
             moir::Table::num(mops_of(run_name("ro", "fig7", k)), 3),
             moir::Table::num(mops_of(run_name("ro", "figbw", k)), 3),
             moir::Table::num(mops_of(run_name("rw", "fig4", k)), 3),
             moir::Table::num(mops_of(run_name("rw", "fig7", k)), 3),
             moir::Table::num(mops_of(run_name("rw", "figbw", k)), 3)});
    }
    h.table(t);
  }

  const double ro2 = mops_of(run_name("ro", "fig4", 2));
  const double ro8 = mops_of(run_name("ro", "fig4", 8));
  const double rw2 = mops_of(run_name("rw", "fig4", 2));
  const double rw8 = mops_of(run_name("rw", "fig4", 8));
  h.metric("ro_k8_over_k2_fig4", ro2 > 0 ? ro8 / ro2 : 0.0);
  h.metric("rw_k8_over_k2_fig4", rw2 > 0 ? rw8 / rw2 : 0.0);
  h.metric("integrity_failures",
           static_cast<double>(g_integrity_failures.load()));
  h.printf("snapshot scaling k8/k2 (fig4): ro %.2fx, rw %.2fx\n",
           ro2 > 0 ? ro8 / ro2 : 0.0, rw2 > 0 ? rw8 / rw2 : 0.0);
  h.printf("integrity: %llu failures (conservation + snapshot checks)\n",
           static_cast<unsigned long long>(g_integrity_failures.load()));

  const int rc = h.finish();
  if (g_integrity_failures.load() != 0) return 2;
  return rc;
}
