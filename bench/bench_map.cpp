// E12 (reclamation + map): YCSB-style key-value traffic over the sharded
// non-blocking hash map, sweeping threads x reclaimer policy x LL/SC
// substrate, under uniform and zipfian (theta=0.99) key distributions.
//
// What the sweep shows: (a) the full stack — Moir LL/SC emulation below,
// SMR in the middle, hash map on top — serves a standard workload shape;
// (b) the epoch/hazard trade-off under skew (zipfian concentrates traffic
// on a few chains, so hazard-pointer validation restarts and epoch
// announcement costs both concentrate there too); (c) reclamation really
// happens: the JSON carries node_retire/node_free/epoch_advance/hp_scan
// per run, and the bench hard-fails if any value read mismatches its key's
// checksum (payload reuse under a live reader) or if blocks leak.
//
// Workloads (YCSB A/B/C): 50/50, 95/5, 100/0 read/update mixes over a
// preloaded keyspace; updates are in-place upserts, so steady-state alloc
// traffic comes from the erase/insert churn section at the end of each run.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/bw_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "map/sharded_map.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

constexpr std::uint64_t kKeys = 4096;
constexpr std::uint64_t kValueSalt = 0x5bd1e995u;

std::uint64_t value_of(std::uint64_t key) { return key * 31 + kValueSalt; }

std::atomic<std::uint64_t> g_mismatches{0};
std::atomic<std::uint64_t> g_leaks{0};

// Per-run throughput by run name, for the human result tables.
std::vector<std::pair<std::string, double>> g_results;

double mops_of(const std::string& name) {
  for (const auto& [n, v] : g_results) {
    if (n == name) return v;
  }
  return 0.0;
}

template <class MapT>
typename MapT::Config map_config() {
  return {.shards = 8, .buckets_per_shard = 64, .capacity_per_shard = 1024};
}

// One YCSB run: preload the keyspace, run the read/update mix, then churn
// (erase+insert) a slice, drain, and account every block.
template <class S, class MapT>
void ycsb_run(moir::bench::Harness& h, const std::string& name, S& substrate,
              unsigned threads, unsigned read_pct, bool zipfian,
              std::uint64_t ops_each) {
  MapT map(substrate, threads + 1, map_config<MapT>());
  auto main_ctx = map.make_ctx();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (!map.insert(main_ctx, k, value_of(k))) {
      std::fprintf(stderr, "preload failed at key %llu\n",
                   static_cast<unsigned long long>(k));
      g_leaks.fetch_add(1);
      return;
    }
  }

  std::vector<typename MapT::ThreadCtx> ctxs;
  ctxs.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) ctxs.push_back(map.make_ctx());
  std::vector<moir::Xoshiro256> rngs;
  for (unsigned t = 0; t < threads; ++t) {
    rngs.emplace_back(moir::bench::thread_seed(t));
  }
  const moir::ZipfianGenerator zipf(kKeys);
  const moir::UniformGenerator uni(kKeys);

  const auto& stats =
      h.run_ops(name, threads, ops_each, [&](std::size_t tid, std::uint64_t) {
        auto& rng = rngs[tid];
        const std::uint64_t key =
            zipfian ? zipf.next_scrambled(rng) : uni.next(rng);
        if (rng.next_below(100) < read_pct) {
          if (const auto v = map.find(ctxs[tid], key)) {
            if (*v != value_of(key)) g_mismatches.fetch_add(1);
          } else {
            g_mismatches.fetch_add(1);  // preloaded keys never erased here
          }
        } else {
          (void)map.upsert(ctxs[tid], key, value_of(key));
        }
      });
  g_results.emplace_back(name, stats.mops_s());

  // Churn section (not timed): delete/reinsert so retire->free actually
  // cycles blocks through the reclaimer, then drain and account.
  for (std::uint64_t k = 0; k < kKeys / 4; ++k) {
    (void)map.erase(main_ctx, k);
    (void)map.insert(main_ctx, k, value_of(k));
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) (void)map.erase(main_ctx, k);
  ctxs.clear();  // fold per-thread reclaimer state before the final purge
  map.purge(main_ctx);
  const auto cfg = map.config();
  const std::uint64_t total =
      std::uint64_t{cfg.shards} * cfg.capacity_per_shard;
  if (map.free_blocks_quiescent() != total || map.size_approx() != 0) {
    std::fprintf(stderr, "%s: leak: %llu of %llu blocks free, size=%lld\n",
                 name.c_str(),
                 static_cast<unsigned long long>(map.free_blocks_quiescent()),
                 static_cast<unsigned long long>(total),
                 static_cast<long long>(map.size_approx()));
    g_leaks.fetch_add(1);
  }
}

template <class R>
void sweep_substrates(moir::bench::Harness& h, const char* rec_name,
                      std::uint64_t ops_each) {
  // YCSB-A (50/50, zipfian) across the thread sweep, per substrate.
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    moir::CasBackedLlsc<16> fig4;
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>, R>>(
        h, std::string("ycsb-a/fig4/") + rec_name + "/t" +
               std::to_string(threads),
        fig4, threads, 50, /*zipfian=*/true, ops_each);
  }
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    moir::BoundedLlsc<> fig7(threads + 2, /*k=*/2);
    ycsb_run<moir::BoundedLlsc<>,
             moir::ShardedHashMap<moir::BoundedLlsc<>, R>>(
        h, std::string("ycsb-a/fig7/") + rec_name + "/t" +
               std::to_string(threads),
        fig7, threads, 50, /*zipfian=*/true, ops_each);
  }
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    moir::BwLlsc<> figbw(threads + 2, /*k=*/2);
    ycsb_run<moir::BwLlsc<>, moir::ShardedHashMap<moir::BwLlsc<>, R>>(
        h, std::string("ycsb-a/figbw/") + rec_name + "/t" +
               std::to_string(threads),
        figbw, threads, 50, /*zipfian=*/true, ops_each);
  }
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_map");
  h.header(
      "E12: YCSB A/B/C over the sharded map — reclaimer x substrate x "
      "threads, uniform vs zipfian(0.99)",
      "with SMR layered on the paper's LL/SC emulations, a non-blocking map "
      "serves skewed traffic; epoch vs hazard is a read-cost vs "
      "garbage-bound trade, visible in the exported counters");

  const std::uint64_t kOps = moir::bench::scaled(40000);

  sweep_substrates<moir::reclaim::EpochReclaimer>(h, "epoch", kOps);
  sweep_substrates<moir::reclaim::HazardPointerReclaimer>(h, "hazard", kOps);

  // YCSB-B (95/5) and YCSB-C (read-only) at 4 threads, both reclaimers.
  {
    moir::CasBackedLlsc<16> fig4;
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>,
                                  moir::reclaim::EpochReclaimer>>(
        h, "ycsb-b/fig4/epoch/t4", fig4, 4, 95, true, kOps);
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>,
                                  moir::reclaim::EpochReclaimer>>(
        h, "ycsb-c/fig4/epoch/t4", fig4, 4, 100, true, kOps);
  }
  {
    moir::CasBackedLlsc<16> fig4;
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>,
                                  moir::reclaim::HazardPointerReclaimer>>(
        h, "ycsb-b/fig4/hazard/t4", fig4, 4, 95, true, kOps);
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>,
                                  moir::reclaim::HazardPointerReclaimer>>(
        h, "ycsb-c/fig4/hazard/t4", fig4, 4, 100, true, kOps);
  }

  // Uniform control for the zipfian YCSB-A point (same mix, no skew).
  {
    moir::CasBackedLlsc<16> fig4;
    ycsb_run<moir::CasBackedLlsc<16>,
             moir::ShardedHashMap<moir::CasBackedLlsc<16>,
                                  moir::reclaim::EpochReclaimer>>(
        h, "ycsb-a-uniform/fig4/epoch/t4", fig4, 4, 50, false, kOps);
  }

  {
    moir::Table t("YCSB-A zipfian(0.99) 50/50 read-update (Mops/s)");
    t.columns({"threads", "fig4/epoch", "fig7/epoch", "figbw/epoch",
               "fig4/hazard", "fig7/hazard", "figbw/hazard"});
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const std::string ts = "/t" + std::to_string(threads);
      t.row({moir::Table::num(threads),
             moir::Table::num(mops_of("ycsb-a/fig4/epoch" + ts), 2),
             moir::Table::num(mops_of("ycsb-a/fig7/epoch" + ts), 2),
             moir::Table::num(mops_of("ycsb-a/figbw/epoch" + ts), 2),
             moir::Table::num(mops_of("ycsb-a/fig4/hazard" + ts), 2),
             moir::Table::num(mops_of("ycsb-a/fig7/hazard" + ts), 2),
             moir::Table::num(mops_of("ycsb-a/figbw/hazard" + ts), 2)});
    }
    h.table(t);
  }
  {
    moir::Table t("YCSB mixes, fig4 substrate, 4 threads (Mops/s)");
    t.columns({"mix", "epoch", "hazard"});
    t.row({"A 50/50 zipf",
           moir::Table::num(mops_of("ycsb-a/fig4/epoch/t4"), 2),
           moir::Table::num(mops_of("ycsb-a/fig4/hazard/t4"), 2)});
    t.row({"B 95/5 zipf",
           moir::Table::num(mops_of("ycsb-b/fig4/epoch/t4"), 2),
           moir::Table::num(mops_of("ycsb-b/fig4/hazard/t4"), 2)});
    t.row({"C read-only zipf",
           moir::Table::num(mops_of("ycsb-c/fig4/epoch/t4"), 2),
           moir::Table::num(mops_of("ycsb-c/fig4/hazard/t4"), 2)});
    t.row({"A 50/50 uniform",
           moir::Table::num(mops_of("ycsb-a-uniform/fig4/epoch/t4"), 2),
           "-"});
    h.table(t);
  }

  h.metric("value_mismatches", static_cast<double>(g_mismatches.load()));
  h.metric("leaked_runs", static_cast<double>(g_leaks.load()));
  h.printf("integrity: %llu mismatches, %llu leaking runs\n",
           static_cast<unsigned long long>(g_mismatches.load()),
           static_cast<unsigned long long>(g_leaks.load()));

  const int rc = h.finish();
  if (g_mismatches.load() != 0 || g_leaks.load() != 0) return 2;
  return rc;
}
