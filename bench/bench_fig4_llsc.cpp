// E2 (Theorem 2 / Figure 4): LL/VL/SC from CAS.
//
// Reproduces: constant-time LL, VL, and SC with zero space overhead. The
// emulation's per-op cost should sit within a small constant factor of a
// raw native CAS (it *is* one CAS plus a load), and must not grow with the
// number of concurrent LL-SC sequences a process keeps open — the property
// the keep-word interface buys (no per-variable registry to search).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "bench/common.hpp"
#include "core/llsc_from_cas.hpp"
#include "core/llsc_traits.hpp"

namespace {

using L = moir::LlscFromCas<16>;

void BM_LlScPair(benchmark::State& state) {
  L::Var var(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::sc(var, keep, (v + ++i) & 0xffff));
  }
}
BENCHMARK(BM_LlScPair);

void BM_LlVlScTriple(benchmark::State& state) {
  L::Var var(0);
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::vl(var, keep));
    benchmark::DoNotOptimize(L::sc(var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_LlVlScTriple);

void BM_VlOnly(benchmark::State& state) {
  L::Var var(0);
  L::Keep keep;
  L::ll(var, keep);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L::vl(var, keep));
  }
}
BENCHMARK(BM_VlOnly);

void BM_NativeCasLoopBaseline(benchmark::State& state) {
  std::atomic<std::uint64_t> var{0};
  for (auto _ : state) {
    std::uint64_t v = var.load();
    benchmark::DoNotOptimize(var.compare_exchange_strong(v, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_NativeCasLoopBaseline);

void BM_LockLlScBaseline(benchmark::State& state) {
  moir::LockBackedLlsc<16> s;
  moir::LockBackedLlsc<16>::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  for (auto _ : state) {
    moir::LockBackedLlsc<16>::Keep keep;
    const std::uint64_t v = s.ll(ctx, var, keep);
    benchmark::DoNotOptimize(s.sc(ctx, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_LockLlScBaseline);

// The interface claim: cost is independent of how many LL-SC sequences the
// process holds open (no lookup keyed by variable). arg = open sequences.
void BM_LlScWithOpenSequences(benchmark::State& state) {
  const std::size_t open = static_cast<std::size_t>(state.range(0));
  std::vector<L::Var> others(open);
  std::vector<L::Keep> keeps(open);
  for (std::size_t i = 0; i < open; ++i) L::ll(others[i], keeps[i]);
  L::Var var(0);
  for (auto _ : state) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    benchmark::DoNotOptimize(L::sc(var, keep, (v + 1) & 0xffff));
  }
  // Close the open sequences (SC once each; success irrelevant).
  for (std::size_t i = 0; i < open; ++i) L::sc(others[i], keeps[i], 0);
}
BENCHMARK(BM_LlScWithOpenSequences)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

void contention_table(moir::bench::Harness& h) {
  h.header(
      "E2 table: LL;SC increment under contention (Figure 4 vs baselines)",
      "constant-time LL, VL, SC for small variables with no space overhead");

  moir::Table t("ns/op by substrate and thread count");
  t.columns({"threads", "fig4_llsc", "native_cas_loop", "lock_llsc"});
  const std::uint64_t kOps = moir::bench::scaled(200000);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    // Figure 4.
    L::Var var(0);
    const auto& fig4 = h.run_ops(
        "fig4_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t, std::uint64_t) {
          for (;;) {
            L::Keep keep;
            const std::uint64_t v = L::ll(var, keep);
            if (L::sc(var, keep, (v + 1) & 0xffff)) break;
          }
        });
    // Native CAS loop.
    std::atomic<std::uint64_t> nat{0};
    const auto& native = h.run_ops(
        "native_cas_loop/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t, std::uint64_t) {
          std::uint64_t v = nat.load();
          while (!nat.compare_exchange_strong(v, (v + 1) & 0xffff)) {
          }
        });
    // Lock-based LL/SC (footnote 1). Contexts are pre-created per thread:
    // run_ops bodies are per-op, so make_ctx cannot live inside them.
    moir::LockBackedLlsc<16> lock_s;
    moir::LockBackedLlsc<16>::Var lock_var;
    lock_s.init_var(lock_var, 0);
    std::vector<decltype(lock_s.make_ctx())> lock_ctxs;
    lock_ctxs.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      lock_ctxs.push_back(lock_s.make_ctx());
    }
    const auto& locked = h.run_ops(
        "lock_llsc/t" + std::to_string(threads), threads, kOps,
        [&](std::size_t tid, std::uint64_t) {
          for (;;) {
            moir::LockBackedLlsc<16>::Keep keep;
            const std::uint64_t v = lock_s.ll(lock_ctxs[tid], lock_var, keep);
            if (lock_s.sc(lock_ctxs[tid], lock_var, keep, (v + 1) & 0xffff)) {
              break;
            }
          }
        });
    t.row({moir::Table::num(threads), moir::Table::num(fig4.ns_op(), 1),
           moir::Table::num(native.ns_op(), 1),
           moir::Table::num(locked.ns_op(), 1)});
  }
  h.table(t);

  h.metric("sizeof_var_bytes", static_cast<double>(sizeof(L::Var)));
  h.printf("\nspace overhead: 0 words (Theorem 2) — sizeof(Var)=%zu == one "
           "machine word\n",
           sizeof(L::Var));
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_fig4_llsc");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  contention_table(h);
  return h.finish();
}
