// E4 (Theorem 4 / Figure 6): W-word WLL/VL/SC.
//
// Reproduces the complexity shape: WLL and SC are Θ(W), VL is Θ(1); and the
// space claim: Θ(NW) overall overhead versus Θ(NWT) for the naive
// per-variable generalization — the gap that makes this implementation the
// practical one for many variables.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/wide_llsc.hpp"

namespace {

using Wide = moir::WideLlsc<32>;

void BM_WideWllSc(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  Wide dom(2, w);
  Wide::Var var;
  std::vector<std::uint64_t> init(w, 1);
  dom.init_var(var, init);
  auto ctx = dom.make_ctx();
  std::vector<std::uint64_t> buf(w);
  for (auto _ : state) {
    Wide::Keep keep;
    if (dom.wll(ctx, var, keep, buf).success) {
      buf[0] = (buf[0] + 1) & Wide::kMaxChunk;
      benchmark::DoNotOptimize(dom.sc(ctx, var, keep, buf));
    }
  }
  state.counters["per_word_ns"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * w,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_WideWllSc)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_WideVl(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  Wide dom(2, w);
  Wide::Var var;
  std::vector<std::uint64_t> init(w, 1);
  dom.init_var(var, init);
  auto ctx = dom.make_ctx();
  std::vector<std::uint64_t> buf(w);
  Wide::Keep keep;
  dom.wll(ctx, var, keep, buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dom.vl(ctx, var, keep));
  }
}
BENCHMARK(BM_WideVl)->Arg(1)->Arg(8)->Arg(64);

void shape_and_space_tables(moir::bench::Harness& h) {
  h.header(
      "E4 tables: time vs W (expect linear for WLL/SC, flat for VL) and "
      "space vs T",
      "WLL, VL, SC in Θ(W), Θ(1), Θ(W) with Θ(NW) space overhead");

  moir::Table t("measured ns/op vs W (single thread)");
  t.columns({"W", "wll_ns", "sc_ns", "vl_ns", "wll_ns/W"});
  const std::uint64_t kOps = moir::bench::scaled(100000);
  for (unsigned w : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    Wide dom(2, w);
    Wide::Var var;
    std::vector<std::uint64_t> init(w, 1);
    dom.init_var(var, init);
    auto ctx = dom.make_ctx();
    std::vector<std::uint64_t> buf(w);
    char name[64];

    std::snprintf(name, sizeof name, "wide_wll/w%u", w);
    const auto& wll_run =
        h.run_ops(name, 1, kOps, [&](std::size_t, std::uint64_t) {
          Wide::Keep keep;
          dom.wll(ctx, var, keep, buf);
        });
    const double wll_ns = wll_run.ns_op();

    std::snprintf(name, sizeof name, "wide_wll_sc/w%u", w);
    const auto& pair_run =
        h.run_ops(name, 1, kOps, [&](std::size_t, std::uint64_t) {
          Wide::Keep keep;
          if (dom.wll(ctx, var, keep, buf).success) {
            dom.sc(ctx, var, keep, buf);
          }
        });
    const double pair_ns = pair_run.ns_op();

    Wide::Keep keep;
    dom.wll(ctx, var, keep, buf);
    std::snprintf(name, sizeof name, "wide_vl/w%u", w);
    const auto& vl_run =
        h.run_ops(name, 1, kOps, [&](std::size_t, std::uint64_t) {
          benchmark::DoNotOptimize(dom.vl(ctx, var, keep));
        });
    const double vl_ns = vl_run.ns_op();

    t.row({moir::Table::num(w), moir::Table::num(wll_ns, 1),
           moir::Table::num(pair_ns - wll_ns, 1), moir::Table::num(vl_ns, 1),
           moir::Table::num(wll_ns / w, 1)});
  }
  h.table(t);

  moir::Table s("space overhead in words, N=16 processes, W=8 segments");
  s.columns({"T (variables)", "this impl (NW)", "naive per-var (NWT)",
             "ratio"});
  const std::uint64_t nw = 16 * 8;
  for (std::uint64_t t_vars : {1ull, 100ull, 10000ull, 1000000ull}) {
    s.row({moir::Table::num(t_vars), moir::Table::num(nw),
           moir::Table::num(nw * t_vars),
           moir::Table::num(static_cast<double>(t_vars), 0) + "x"});
  }
  h.table(s);
  h.metric("shared_overhead_words_n16_w8", static_cast<double>(nw));
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_fig6_wide");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  shape_and_space_tables(h);
  return h.finish();
}
