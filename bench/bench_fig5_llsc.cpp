// E3 (Theorem 3 / Figure 5): LL/VL/SC directly from RLL/RSC.
//
// Reproduces two things:
//  (a) per-op cost of the direct single-tag construction vs the layered
//      alternative (Figure 4 stacked on Figure 3), with and without
//      spurious failures;
//  (b) the tag-budget argument for preferring the direct construction:
//      layering needs TWO tags in the word, halving tag bits and shrinking
//      the wraparound horizon from centuries to minutes at memory speed.
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench/common.hpp"
#include "core/cas_from_rllrsc.hpp"
#include "core/llsc_composed.hpp"
#include "core/llsc_from_rllrsc.hpp"

namespace {

using Direct = moir::LlscFromRllRsc<16>;  // 48-bit tag + 16-bit value

// The layered alternative: Figure 4's LL/VL/SC whose CAS is Figure 3's
// emulated CAS, as shipped in the library (core/llsc_composed.hpp). The
// inner CAS word spends 24 bits on its own tag; the outer LL/SC tag and
// the application value share the remaining 40 bits.
using Layered = moir::LlscComposed<16>;

void BM_DirectLlSc(benchmark::State& state) {
  moir::FaultInjector faults;
  faults.set_spurious_probability(state.range(0) / 1000.0);
  Direct::Var var(0);
  moir::Processor proc(&faults);
  for (auto _ : state) {
    Direct::Keep keep;
    const std::uint64_t v = Direct::ll(var, keep);
    benchmark::DoNotOptimize(Direct::sc(proc, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_DirectLlSc)->Arg(0)->Arg(10)->Arg(100);

void BM_LayeredLlSc(benchmark::State& state) {
  moir::FaultInjector faults;
  faults.set_spurious_probability(state.range(0) / 1000.0);
  Layered::Var var(0);
  moir::Processor proc(&faults);
  for (auto _ : state) {
    Layered::Keep keep;
    const std::uint64_t v = Layered::ll(var, keep);
    benchmark::DoNotOptimize(Layered::sc(proc, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_LayeredLlSc)->Arg(0)->Arg(10)->Arg(100);

void tag_budget_table(moir::bench::Harness& h) {
  h.header(
      "E3 table: single-tag (Figure 5) vs two-tag (Figure 4 over Figure 3)",
      "a direct implementation avoids doubling tags, which would "
      "'substantially reduce the time needed for the tags to wrap around'");

  // Measure the achievable SC rate once, then compute wraparound horizons.
  const std::uint64_t kOps = moir::bench::scaled(2000000);
  Direct::Var var(0);
  moir::Processor proc;
  const auto& run = h.run_ops(
      "direct_llsc/t1", 1, kOps, [&](std::size_t, std::uint64_t) {
        Direct::Keep keep;
        const std::uint64_t v = Direct::ll(var, keep);
        Direct::sc(proc, var, keep, (v + 1) & 0xffff);
      });
  const double rate = static_cast<double>(run.ops) / run.secs;  // SC/s

  moir::Table t("wraparound horizon at the measured SC rate");
  t.columns({"construction", "tag_bits", "value_bits", "sc_rate(M/s)",
             "horizon"});
  auto horizon = [&](unsigned bits) {
    const double seconds = std::pow(2.0, bits) / rate;
    char buf[64];
    if (seconds > 3600.0 * 24 * 365) {
      std::snprintf(buf, sizeof buf, "%.1f years",
                    seconds / (3600.0 * 24 * 365));
    } else if (seconds > 3600.0 * 24) {
      std::snprintf(buf, sizeof buf, "%.1f days", seconds / (3600.0 * 24));
    } else if (seconds > 60) {
      std::snprintf(buf, sizeof buf, "%.1f minutes", seconds / 60);
    } else {
      std::snprintf(buf, sizeof buf, "%.2f seconds", seconds);
    }
    return std::string(buf);
  };
  t.row({"figure-5 direct (1 tag)", "48", "16",
         moir::Table::num(rate / 1e6, 2), horizon(48)});
  t.row({"fig4-over-fig3 (2 tags)", "24+24", "16",
         moir::Table::num(rate / 1e6, 2), horizon(24)});
  h.table(t);
  h.metric("direct_sc_rate_per_s", rate);

  h.printf("\nspace overhead: 0 words for both (Theorem 3)\n");
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_fig5_llsc");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tag_budget_table(h);
  return h.finish();
}
