// E5 (Theorem 5 / Figure 7): bounded-tag LL/VL/SC.
//
// Reproduces: constant per-op time regardless of N, k, and the number of
// variables T (the queue/stack machinery is O(1) per SC), and the space
// story: Θ(N(k+T)) here versus Θ(N²T) for the prior bounded construction
// (Anderson–Moir PODC'95) — the paper's headline improvement.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"

namespace {

using B = moir::BoundedLlsc<>;

void BM_BoundedLlSc(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned k = static_cast<unsigned>(state.range(1));
  B dom(n, k);
  B::Var var;
  dom.init_var(var, 0);
  auto ctx = dom.make_ctx();
  for (auto _ : state) {
    B::Keep keep;
    const std::uint64_t v = dom.ll(ctx, var, keep);
    benchmark::DoNotOptimize(dom.sc(ctx, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_BoundedLlSc)
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({4, 2})
    ->Args({4, 8})
    ->Args({4, 32});

void BM_BoundedVl(benchmark::State& state) {
  B dom(4, 2);
  B::Var var;
  dom.init_var(var, 0);
  auto ctx = dom.make_ctx();
  B::Keep keep;
  dom.ll(ctx, var, keep);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dom.vl(ctx, var, keep));
  }
  dom.cl(ctx, keep);
}
BENCHMARK(BM_BoundedVl);

void BM_BoundedManyVars(benchmark::State& state) {
  // Per-op cost must not depend on T: round-robin over T variables.
  const std::size_t t_vars = static_cast<std::size_t>(state.range(0));
  B dom(4, 1);
  std::vector<B::Var> vars(t_vars);
  for (auto& v : vars) dom.init_var(v, 0);
  auto ctx = dom.make_ctx();
  std::size_t i = 0;
  for (auto _ : state) {
    B::Var& var = vars[i++ % t_vars];
    B::Keep keep;
    const std::uint64_t v = dom.ll(ctx, var, keep);
    benchmark::DoNotOptimize(dom.sc(ctx, var, keep, (v + 1) & 0xffff));
  }
}
BENCHMARK(BM_BoundedManyVars)->Arg(1)->Arg(64)->Arg(4096);

void tables(moir::bench::Harness& h) {
  h.header(
      "E5 tables: bounded tags — time flat in N/k/T; space vs the prior art",
      "constant-time LL/VL/SC, k concurrent sequences per process, "
      "Θ(N(k+T)) space overhead (vs Θ(N²T) in Anderson–Moir '95)");

  moir::Table t("contended ns/op (4 threads), sweeping k");
  t.columns({"N", "k", "ns/op", "tag_space(2Nk+1)"});
  const std::uint64_t kOps = moir::bench::scaled(100000);
  for (unsigned k : {1u, 2u, 4u, 8u}) {
    const unsigned n = 4;
    B dom(n, k);
    B::Var var;
    dom.init_var(var, 0);
    std::vector<decltype(dom.make_ctx())> ctxs;
    ctxs.reserve(n);
    for (unsigned i = 0; i < n; ++i) ctxs.push_back(dom.make_ctx());
    char name[64];
    std::snprintf(name, sizeof name, "bounded_llsc/t%u/k%u", n, k);
    const auto& run =
        h.run_ops(name, n, kOps, [&](std::size_t tid, std::uint64_t) {
          auto& ctx = ctxs[tid];
          B::Keep keep;
          const std::uint64_t v = dom.ll(ctx, var, keep);
          dom.sc(ctx, var, keep, (v + 1) & 0xffff);
        });
    t.row({moir::Table::num(n), moir::Table::num(k),
           moir::Table::num(run.ns_op(), 1),
           moir::Table::num(std::uint64_t{2} * n * k + 1)});
  }
  h.table(t);

  moir::Table s("shared space overhead in words (N=16, k=2)");
  s.columns(
      {"T (variables)", "fig7 N(k+T)", "anderson-moir N^2*T", "saving"});
  const std::uint64_t n = 16, k = 2;
  for (std::uint64_t t_vars : {1ull, 100ull, 10000ull, 1000000ull}) {
    const std::uint64_t ours = n * (k + t_vars);
    const std::uint64_t prior = n * n * t_vars;
    s.row({moir::Table::num(t_vars), moir::Table::num(ours),
           moir::Table::num(prior),
           moir::Table::num(static_cast<double>(prior) / ours, 1) + "x"});
  }
  h.table(s);

  B probe(16, 2);
  h.metric("shared_overhead_words_t10000",
           static_cast<double>(probe.shared_overhead_words(10000)));
  h.metric("private_words_per_process",
           static_cast<double>(probe.private_words_per_process()));
  h.printf("\nmeasured from the implementation: shared overhead for "
           "T=10000 vars = %zu words; private per process = %zu words\n",
           probe.shared_overhead_words(10000),
           probe.private_words_per_process());
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_fig7_bounded");
  if (h.micro()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tables(h);
  return h.finish();
}
