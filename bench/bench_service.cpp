// E13 (service pipeline): the wait-free KV request pipeline (src/svc/) —
// SPSC client rings -> router -> per-shard MS-queues (the paper's LL/SC +
// SMR on the serving hot path) -> batching executors over the sharded map.
//
// Sweeps:
//   * executor batch size B in {1,4,16,64} x substrate (fig4 CAS-backed vs
//     fig7 bounded-tag) at 8 closed-loop clients — batching amortizes the
//     queue's reclaimer bracket and the shard rotor, so B=16 should beat
//     B=1;
//   * closed-loop client scaling {1,2,4,8} at B=16;
//   * ingress mode: full ring+router pipeline vs clients enqueueing into
//     the shard queues directly (one hop shorter, one contention point
//     more);
//   * dispatch-queue count {1,4} at 8 clients (the MPMC bottleneck);
//   * open-loop Poisson arrivals at an under-capacity and an over-capacity
//     rate: latency is measured from the SCHEDULED arrival, so queueing
//     delay shows up honestly, and the over-capacity point must shed
//     (nonzero svc_shed) instead of collapsing.
//
// Every find is checksum-verified against its key; any mismatch fails the
// bench with exit code 2.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/bounded_llsc.hpp"
#include "core/bw_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using moir::reclaim::EpochReclaimer;
using moir::svc::Op;
using moir::svc::Status;

constexpr std::uint64_t kKeys = 1024;
constexpr std::uint64_t kValueSalt = 0x5bd1e995u;

std::uint64_t value_of(std::uint64_t key) { return key * 31 + kValueSalt; }

std::atomic<std::uint64_t> g_mismatches{0};

std::vector<std::pair<std::string, double>> g_results;

double mops_of(const std::string& name) {
  for (const auto& [n, v] : g_results) {
    if (n == name) return v;
  }
  return 0.0;
}

template <class Svc>
typename Svc::Config svc_config(unsigned clients, unsigned batch,
                                unsigned queues, bool use_rings) {
  typename Svc::Config cfg;
  cfg.queues = queues;
  cfg.queue_capacity = 1024;
  cfg.workers = 2;
  cfg.batch = batch;
  cfg.max_sessions = clients;
  cfg.tickets_per_session = 64;
  cfg.use_rings = use_rings;
  cfg.map = {.shards = queues, .buckets_per_shard = 64,
             .capacity_per_shard = 4096};
  return cfg;
}

// Substrate process-slot budget for one run: BoundedLlsc pids are leased
// per ThreadCtx and never returned, so size for the lifetime total — each
// session and the router hold one queue-ctx per dispatch queue, each
// worker additionally a map ctx, plus the preloader and slack.
unsigned fig7_processes(unsigned clients, unsigned queues) {
  return clients * queues + 3 * (queues + 1) + 8;
}

// Closed-loop clients pipeline kPipeline requests: submit until the
// window is full, then complete-one/submit-one. Without pipelining an
// executor pop never sees more than one queued request per client and the
// batch-size sweep measures nothing.
constexpr unsigned kPipeline = 8;

// Mixed client op: 60% verified find / 30% upsert / 5% insert / 5% erase
// over the preloaded keyspace. Erase+insert keep the same checksum value,
// so any kOk find either matches value_of(key) or the payload was
// corrupted in flight.
template <class Svc, class Client>
struct PipelinedClient {
  Svc& svc;
  Client& c;
  moir::Xoshiro256 rng;
  std::uint64_t mismatches = 0;
  struct InFlight {
    typename Svc::Ticket ticket;
    std::uint64_t key = 0;
    Op op = Op::kFind;
  };
  std::vector<InFlight> pipe;  // FIFO by index; bounded by kPipeline

  PipelinedClient(Svc& s, Client& cc, std::uint64_t seed)
      : svc(s), c(cc), rng(seed) {
    pipe.reserve(kPipeline);
  }

  bool submit_one() {
    const std::uint64_t key = rng.next_below(kKeys);
    const unsigned dice = static_cast<unsigned>(rng.next_below(100));
    Op op = Op::kFind;
    if (dice >= 60) {
      op = dice < 90 ? Op::kUpsert : (dice < 95 ? Op::kInsert : Op::kErase);
    }
    const auto t = svc.submit(c, op, key, value_of(key));
    if (!t.has_value()) return false;  // shed; counted by the service
    pipe.push_back(InFlight{*t, key, op});
    return true;
  }

  void complete_front() {
    const InFlight f = pipe.front();
    pipe.erase(pipe.begin());
    const auto r = svc.wait(c, f.ticket);
    if (f.op == Op::kFind && r.status == Status::kOk &&
        r.value != value_of(f.key)) {
      ++mismatches;
    }
  }

  // One logical op: keep the pipeline full, account one completion.
  void step() {
    while (pipe.size() < kPipeline && submit_one()) {
    }
    if (!pipe.empty()) complete_front();
  }

  void drain() {
    while (!pipe.empty()) complete_front();
  }
};

template <class S>
void preload(moir::svc::KvService<S, EpochReclaimer>& svc) {
  auto mctx = svc.make_map_ctx();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    if (!svc.map().insert(mctx, k, value_of(k))) {
      std::fprintf(stderr, "preload failed at key %llu\n",
                   static_cast<unsigned long long>(k));
      g_mismatches.fetch_add(1);
      return;
    }
  }
}

// One closed-loop run: each client thread keeps exactly one request in
// flight (submit, spin-wait, repeat) for the harness-timed duration.
template <class S>
void closed_loop_run(moir::bench::Harness& h, const std::string& name,
                     S& substrate, unsigned clients, unsigned batch,
                     unsigned queues, bool use_rings) {
  using Svc = moir::svc::KvService<S, EpochReclaimer>;
  Svc svc(substrate, svc_config<Svc>(clients, batch, queues, use_rings));
  preload(svc);

  using Pipe = PipelinedClient<Svc, typename Svc::ClientCtx>;
  std::vector<typename Svc::ClientCtx> ctxs;
  ctxs.reserve(clients);
  for (unsigned t = 0; t < clients; ++t) ctxs.push_back(svc.connect());
  std::vector<std::unique_ptr<Pipe>> pipes;
  for (unsigned t = 0; t < clients; ++t) {
    pipes.push_back(std::make_unique<Pipe>(svc, ctxs[t],
                                           moir::bench::thread_seed(t)));
  }

  const auto& stats = h.run_timed(
      name, clients, h.duration_ms(300), h.warmup_ms(100),
      [&](std::size_t t, std::uint64_t) { pipes[t]->step(); });
  for (auto& p : pipes) {
    p->drain();
    g_mismatches.fetch_add(p->mismatches);
  }
  g_results.emplace_back(name, stats.mops_s());
  svc.stop();
}

// One open-loop run: each client samples Poisson arrivals (exponential
// interarrival, mean `mean_ns`), submits at the scheduled instant, and
// records completion latency from the SCHEDULED arrival time — a late
// submit therefore pays its queueing delay instead of hiding it
// (coordinated-omission-proof). Overload surfaces as shed submits, never
// as blocking.
template <class S>
void open_loop_run(moir::bench::Harness& h, const std::string& name,
                   S& substrate, unsigned clients, double mean_ns,
                   std::uint64_t* sheds_out) {
  using Svc = moir::svc::KvService<S, EpochReclaimer>;
  Svc svc(substrate, svc_config<Svc>(clients, /*batch=*/16, /*queues=*/4,
                                     /*use_rings=*/true));
  preload(svc);

  std::vector<typename Svc::ClientCtx> ctxs;
  ctxs.reserve(clients);
  for (unsigned t = 0; t < clients; ++t) ctxs.push_back(svc.connect());

  const std::uint64_t dur_ms = h.duration_ms(300);
  const double dur_ns = static_cast<double>(dur_ms) * 1e6;
  std::vector<moir::Histogram> hists(clients);
  std::vector<std::uint64_t> done(clients, 0);
  std::vector<std::uint64_t> sheds(clients, 0);
  std::vector<std::uint64_t> mismatches(clients, 0);

  const double secs = moir::bench::timed_threads(clients, [&](std::size_t t) {
    moir::Xoshiro256 rng(moir::bench::thread_seed(t));
    auto& c = ctxs[t];
    moir::Histogram& hist = hists[t];
    struct InFlight {
      typename Svc::Ticket ticket;
      std::uint64_t sched_ns;
      std::uint64_t key;
      Op op;
    };
    std::vector<InFlight> out;
    const auto interarrival = [&] {
      return -std::log(1.0 - rng.next_double()) * mean_ns;
    };
    const auto poll_once = [&](std::uint64_t now) {
      for (std::size_t i = 0; i < out.size();) {
        if (const auto r = svc.poll(c, out[i].ticket)) {
          hist.record(now > out[i].sched_ns ? now - out[i].sched_ns : 1);
          if (out[i].op == Op::kFind && r->status == Status::kOk &&
              r->value != value_of(out[i].key)) {
            ++mismatches[t];
          }
          ++done[t];
          out[i] = out.back();
          out.pop_back();
        } else {
          ++i;
        }
      }
    };

    moir::Stopwatch clk;
    double next_arrival = interarrival();
    for (;;) {
      const std::uint64_t now = clk.elapsed_ns();
      if (static_cast<double>(now) >= dur_ns) break;
      if (static_cast<double>(now) >= next_arrival) {
        const std::uint64_t key = rng.next_below(kKeys);
        const Op op = rng.next_below(100) < 70 ? Op::kFind : Op::kUpsert;
        const auto tk = svc.submit(c, op, key, value_of(key));
        if (tk.has_value()) {
          out.push_back(InFlight{*tk, static_cast<std::uint64_t>(next_arrival),
                                 key, op});
        } else {
          ++sheds[t];
        }
        next_arrival += interarrival();
        continue;  // catch up on the arrival schedule before polling
      }
      poll_once(now);
      moir::svc::SpinWait::relax();
    }
    // Drain: every accepted ticket completes (workers are still up).
    while (!out.empty()) {
      poll_once(clk.elapsed_ns());
      moir::svc::SpinWait::relax();
    }
  });
  svc.stop();

  moir::Histogram merged;
  std::uint64_t total_done = 0, total_sheds = 0;
  for (unsigned t = 0; t < clients; ++t) {
    merged.merge(hists[t]);
    total_done += done[t];
    total_sheds += sheds[t];
    g_mismatches.fetch_add(mismatches[t]);
  }
  (void)secs;
  const double window_s = static_cast<double>(dur_ms) / 1e3;
  const auto& stats = h.add_run(name, clients, total_done > 0 ? total_done : 1,
                                window_s, std::move(merged));
  g_results.emplace_back(name, stats.mops_s());
  if (sheds_out != nullptr) *sheds_out += total_sheds;
  h.printf("%s: %llu completed, %llu shed, p50 %.0fns p99 %.0fns\n",
           name.c_str(), static_cast<unsigned long long>(total_done),
           static_cast<unsigned long long>(total_sheds),
           stats.latency_ns.percentile(0.50), stats.latency_ns.percentile(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  moir::bench::Harness h(argc, argv, "bench_service");
  h.header(
      "E13: wait-free KV request pipeline — batch size x substrate, client "
      "scaling, ring vs direct ingress, open-loop Poisson latency",
      "a request pipeline built entirely from the paper's primitives (LL/SC "
      "MS-queues + SMR + sharded map) serves closed- and open-loop traffic, "
      "sheds under overload instead of blocking, and batching amortizes the "
      "per-pop reclaimer bracket");

  // Batch-size sweep at 8 closed-loop clients, both substrates.
  for (const unsigned batch : {1u, 4u, 16u, 64u}) {
    moir::CasBackedLlsc<16> fig4;
    closed_loop_run(h, "batch/fig4/B" + std::to_string(batch) + "/t8", fig4,
                    8, batch, 4, /*use_rings=*/true);
  }
  for (const unsigned batch : {1u, 4u, 16u, 64u}) {
    moir::BoundedLlsc<> fig7(fig7_processes(8, 4), /*k=*/3);
    closed_loop_run(h, "batch/fig7/B" + std::to_string(batch) + "/t8", fig7,
                    8, batch, 4, /*use_rings=*/true);
  }
  for (const unsigned batch : {1u, 4u, 16u, 64u}) {
    moir::BwLlsc<> figbw(fig7_processes(8, 4), /*k=*/3);
    closed_loop_run(h, "batch/figbw/B" + std::to_string(batch) + "/t8",
                    figbw, 8, batch, 4, /*use_rings=*/true);
  }

  // Client scaling at B=16 on fig4.
  for (const unsigned clients : {1u, 2u, 4u}) {
    moir::CasBackedLlsc<16> fig4;
    closed_loop_run(h, "clients/fig4/B16/t" + std::to_string(clients), fig4,
                    clients, 16, 4, /*use_rings=*/true);
  }

  // Ingress mode at 4 clients: full pipeline vs direct dispatch.
  {
    moir::CasBackedLlsc<16> fig4;
    closed_loop_run(h, "ingress/rings/t4", fig4, 4, 16, 4, /*use_rings=*/true);
  }
  {
    moir::CasBackedLlsc<16> fig4;
    closed_loop_run(h, "ingress/direct/t4", fig4, 4, 16, 4,
                    /*use_rings=*/false);
  }

  // Dispatch-queue count at 8 clients (shards track queues).
  for (const unsigned queues : {1u, 4u}) {
    moir::CasBackedLlsc<16> fig4;
    closed_loop_run(h, "queues/fig4/q" + std::to_string(queues) + "/t8",
                    fig4, 8, 16, queues, /*use_rings=*/true);
  }

  // Open loop: under capacity (50us mean interarrival per client) and far
  // over capacity (500ns mean — the admission window must shed).
  std::uint64_t over_sheds = 0;
  {
    moir::CasBackedLlsc<16> fig4;
    open_loop_run(h, "open/under/t4", fig4, 4, 50e3, nullptr);
  }
  {
    moir::CasBackedLlsc<16> fig4;
    open_loop_run(h, "open/over/t4", fig4, 4, 500.0, &over_sheds);
  }

  {
    moir::Table t("closed loop, 8 clients: batch size x substrate (Mops/s)");
    t.columns({"batch", "fig4/epoch", "fig7/epoch", "figbw/epoch"});
    for (const unsigned batch : {1u, 4u, 16u, 64u}) {
      const std::string b = "B" + std::to_string(batch);
      t.row({b, moir::Table::num(mops_of("batch/fig4/" + b + "/t8"), 3),
             moir::Table::num(mops_of("batch/fig7/" + b + "/t8"), 3),
             moir::Table::num(mops_of("batch/figbw/" + b + "/t8"), 3)});
    }
    h.table(t);
  }
  {
    moir::Table t("closed loop, fig4, B=16: client scaling (Mops/s)");
    t.columns({"clients", "Mops/s"});
    for (const unsigned clients : {1u, 2u, 4u}) {
      t.row({moir::Table::num(clients),
             moir::Table::num(
                 mops_of("clients/fig4/B16/t" + std::to_string(clients)), 3)});
    }
    t.row({moir::Table::num(8), moir::Table::num(mops_of("batch/fig4/B16/t8"), 3)});
    h.table(t);
  }
  {
    moir::Table t("pipeline shape, 4 clients, B=16 (Mops/s)");
    t.columns({"config", "Mops/s"});
    t.row({"rings+router", moir::Table::num(mops_of("ingress/rings/t4"), 3)});
    t.row({"direct dispatch",
           moir::Table::num(mops_of("ingress/direct/t4"), 3)});
    h.table(t);
  }

  const double b1_fig4 = mops_of("batch/fig4/B1/t8");
  const double b16_fig4 = mops_of("batch/fig4/B16/t8");
  const double b1_fig7 = mops_of("batch/fig7/B1/t8");
  const double b16_fig7 = mops_of("batch/fig7/B16/t8");
  h.metric("b16_over_b1_fig4", b1_fig4 > 0 ? b16_fig4 / b1_fig4 : 0.0);
  h.metric("b16_over_b1_fig7", b1_fig7 > 0 ? b16_fig7 / b1_fig7 : 0.0);
  h.metric("open_over_sheds", static_cast<double>(over_sheds));
  h.metric("value_mismatches", static_cast<double>(g_mismatches.load()));
  h.printf("batching speedup B16/B1: fig4 %.2fx, fig7 %.2fx\n",
           b1_fig4 > 0 ? b16_fig4 / b1_fig4 : 0.0,
           b1_fig7 > 0 ? b16_fig7 / b1_fig7 : 0.0);
  h.printf("integrity: %llu mismatches; overload sheds: %llu\n",
           static_cast<unsigned long long>(g_mismatches.load()),
           static_cast<unsigned long long>(over_sheds));

  const int rc = h.finish();
  if (g_mismatches.load() != 0) return 2;
  return rc;
}
