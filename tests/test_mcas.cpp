// MCAS/DCAS tests: sequential semantics, atomicity (all-or-nothing), and
// the classic two-location invariant stresses that a non-atomic multi-word
// update cannot survive.
#include "nonblocking/mcas.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

TEST(Mcas, SingleWordBehavesLikeCas) {
  Mcas m(2, 4);
  auto ctx = m.make_ctx();
  m.set_initial(0, 5);
  const std::uint32_t a[] = {0};
  const std::uint64_t e[] = {5}, d[] = {6};
  EXPECT_TRUE(m.mcas(ctx, a, e, d));
  EXPECT_EQ(m.read(ctx, 0), 6u);
  EXPECT_FALSE(m.mcas(ctx, a, e, d)) << "stale expected must fail";
  EXPECT_EQ(m.read(ctx, 0), 6u);
}

TEST(Mcas, AllOrNothing) {
  Mcas m(2, 4);
  auto ctx = m.make_ctx();
  m.set_initial(0, 1);
  m.set_initial(1, 2);
  m.set_initial(2, 3);
  const std::uint32_t a[] = {0, 1, 2};
  // One mismatching expected value: NOTHING may change.
  const std::uint64_t e_bad[] = {1, 99, 3}, d[] = {10, 20, 30};
  EXPECT_FALSE(m.mcas(ctx, a, e_bad, d));
  EXPECT_EQ(m.read(ctx, 0), 1u);
  EXPECT_EQ(m.read(ctx, 1), 2u);
  EXPECT_EQ(m.read(ctx, 2), 3u);
  // All matching: everything changes.
  const std::uint64_t e_ok[] = {1, 2, 3};
  EXPECT_TRUE(m.mcas(ctx, a, e_ok, d));
  EXPECT_EQ(m.read(ctx, 0), 10u);
  EXPECT_EQ(m.read(ctx, 1), 20u);
  EXPECT_EQ(m.read(ctx, 2), 30u);
}

TEST(Mcas, DcasConvenience) {
  Mcas m(2, 4);
  auto ctx = m.make_ctx();
  m.set_initial(0, 7);
  m.set_initial(3, 8);
  EXPECT_TRUE(m.dcas(ctx, 0, 7, 70, 3, 8, 80));
  EXPECT_EQ(m.read(ctx, 0), 70u);
  EXPECT_EQ(m.read(ctx, 3), 80u);
  EXPECT_FALSE(m.dcas(ctx, 0, 7, 1, 3, 8, 2));
}

TEST(Mcas, SnapshotIsAtomic) {
  Mcas m(2, 4);
  auto ctx = m.make_ctx();
  m.set_initial(1, 11);
  m.set_initial(2, 22);
  const std::uint32_t a[] = {1, 2};
  std::uint64_t out[2];
  m.snapshot(ctx, a, out);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 22u);
}

TEST(Mcas, MaxWidth) {
  Mcas m(2, Mcas::kMaxWords);
  auto ctx = m.make_ctx();
  std::uint32_t a[Mcas::kMaxWords];
  std::uint64_t e[Mcas::kMaxWords], d[Mcas::kMaxWords];
  for (unsigned i = 0; i < Mcas::kMaxWords; ++i) {
    m.set_initial(i, i);
    a[i] = i;
    e[i] = i;
    d[i] = i + 100;
  }
  EXPECT_TRUE(m.mcas(ctx, a, e, d));
  for (unsigned i = 0; i < Mcas::kMaxWords; ++i) {
    EXPECT_EQ(m.read(ctx, i), i + 100);
  }
}

// Two cells must always hold equal values; every update is a DCAS
// advancing both. Any torn/partial application breaks equality, and
// result-counting catches lost or phantom successes.
TEST(McasStress, PairedCellsStayEqual) {
  constexpr unsigned kThreads = 4;
  Mcas m(kThreads + 1, 2);
  m.set_initial(0, 0);
  m.set_initial(1, 0);

  std::atomic<std::uint64_t> wins{0};
  run_threads(kThreads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.02, 4000 + tid);
#endif
    auto ctx = m.make_ctx();
    std::uint64_t local = 0;
    for (int i = 0; i < 3000; ++i) {
      const std::uint32_t a[] = {0, 1};
      std::uint64_t snap[2];
      m.snapshot(ctx, a, snap);
      ASSERT_EQ(snap[0], snap[1]) << "paired cells diverged";
      const std::uint64_t e[] = {snap[0], snap[1]};
      const std::uint64_t d[] = {snap[0] + 1, snap[1] + 1};
      local += m.mcas(ctx, a, e, d);
    }
    wins.fetch_add(local);
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });

  auto ctx = m.make_ctx();
  EXPECT_EQ(m.read(ctx, 0), wins.load())
      << "each successful DCAS advanced the pair exactly once";
  EXPECT_EQ(m.read(ctx, 1), wins.load());
}

// Disjoint-pair stress: threads DCAS random sorted pairs conserving the
// total sum (move 1 from the lower to the higher cell).
TEST(McasStress, TransfersConserveSum) {
  constexpr unsigned kThreads = 4;
  constexpr std::size_t kCells = 8;
  Mcas m(kThreads + 1, kCells);
  for (std::size_t i = 0; i < kCells; ++i) m.set_initial(i, 100);

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = m.make_ctx();
    Xoshiro256 rng(tid * 3 + 7);
    for (int i = 0; i < 3000; ++i) {
      std::uint32_t x = static_cast<std::uint32_t>(rng.next_below(kCells));
      std::uint32_t y = static_cast<std::uint32_t>(rng.next_below(kCells));
      if (x == y) continue;
      if (x > y) std::swap(x, y);
      const std::uint32_t a[] = {x, y};
      std::uint64_t snap[2];
      m.snapshot(ctx, a, snap);
      if (snap[0] == 0) continue;
      const std::uint64_t e[] = {snap[0], snap[1]};
      const std::uint64_t d[] = {snap[0] - 1, snap[1] + 1};
      m.mcas(ctx, a, e, d);  // failure = someone else moved on; fine
    }
  });

  auto ctx = m.make_ctx();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kCells; ++i) total += m.read(ctx, i);
  EXPECT_EQ(total, kCells * 100u);
}

}  // namespace
}  // namespace moir
