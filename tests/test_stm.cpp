// Static STM tests: sequential semantics, conflict handling, helping, and
// the bank-transfer conservation stress the STM literature uses.
#include "nonblocking/stm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

void tx_increment_all(const std::uint64_t* olds, std::uint64_t* news,
                      unsigned n, std::uint64_t arg) {
  for (unsigned i = 0; i < n; ++i) news[i] = olds[i] + arg;
}

void tx_transfer(const std::uint64_t* olds, std::uint64_t* news, unsigned n,
                 std::uint64_t arg) {
  // Move `arg` units from cell 0 to cell 1 of the set (if funds allow).
  (void)n;
  const std::uint64_t amount = olds[0] >= arg ? arg : 0;
  news[0] = olds[0] - amount;
  news[1] = olds[1] + amount;
}

void tx_rotate(const std::uint64_t* olds, std::uint64_t* news, unsigned n,
               std::uint64_t) {
  for (unsigned i = 0; i < n; ++i) news[i] = olds[(i + 1) % n];
}

TEST(Stm, SingleCellTransaction) {
  Stm stm(2, 4);
  auto ctx = stm.make_ctx();
  stm.set_initial(0, 10);
  const std::uint32_t addrs[] = {0};
  const auto r = stm.transact(ctx, addrs, tx_increment_all, 5);
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.olds[0], 10u);
  EXPECT_EQ(stm.read(ctx, 0), 15u);
}

TEST(Stm, MultiCellTransactionIsAtomic) {
  Stm stm(2, 4);
  auto ctx = stm.make_ctx();
  stm.set_initial(0, 100);
  stm.set_initial(1, 0);
  const std::uint32_t addrs[] = {0, 1};
  stm.transact(ctx, addrs, tx_transfer, 30);
  EXPECT_EQ(stm.read(ctx, 0), 70u);
  EXPECT_EQ(stm.read(ctx, 1), 30u);
}

TEST(Stm, TransferRespectsGuard) {
  Stm stm(2, 2);
  auto ctx = stm.make_ctx();
  stm.set_initial(0, 5);
  const std::uint32_t addrs[] = {0, 1};
  stm.transact(ctx, addrs, tx_transfer, 30);  // insufficient funds
  EXPECT_EQ(stm.read(ctx, 0), 5u);
  EXPECT_EQ(stm.read(ctx, 1), 0u);
}

TEST(Stm, SequentialTransactionsChain) {
  Stm stm(1, 3);
  auto ctx = stm.make_ctx();
  stm.set_initial(0, 1);
  stm.set_initial(1, 2);
  stm.set_initial(2, 3);
  const std::uint32_t addrs[] = {0, 1, 2};
  for (int i = 0; i < 9; ++i) stm.transact(ctx, addrs, tx_rotate, 0);
  // 9 rotations of a 3-cycle = identity.
  EXPECT_EQ(stm.read(ctx, 0), 1u);
  EXPECT_EQ(stm.read(ctx, 1), 2u);
  EXPECT_EQ(stm.read(ctx, 2), 3u);
}

TEST(Stm, NoLocksLeftBehind) {
  Stm stm(2, 8);
  auto ctx = stm.make_ctx();
  const std::uint32_t addrs[] = {1, 3, 5, 7};
  for (int i = 0; i < 100; ++i) stm.transact(ctx, addrs, tx_increment_all, 1);
  EXPECT_FALSE(stm.any_cell_locked());
}

TEST(Stm, ReadSeesCommittedStateOnly) {
  Stm stm(2, 2);
  auto ctx = stm.make_ctx();
  stm.set_initial(0, 7);
  EXPECT_EQ(stm.read(ctx, 0), 7u);
}

// The canonical STM stress: N threads move money between random account
// pairs; the grand total is invariant iff transactions are atomic.
class StmStress : public ::testing::TestWithParam<int> {};

TEST_P(StmStress, BankTransfersConserveTotal) {
  const int threads = GetParam();
  constexpr std::size_t kAccounts = 16;
  constexpr std::uint64_t kInitial = 1000;
  Stm stm(static_cast<unsigned>(threads) + 1, kAccounts);
  {
    for (std::size_t a = 0; a < kAccounts; ++a) stm.set_initial(a, kInitial);
  }

  std::atomic<std::uint64_t> total_aborts{0};
  run_threads(threads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.01, 500 + tid);
#endif
    auto ctx = stm.make_ctx();
    Xoshiro256 rng(tid * 97 + 3);
    std::uint64_t aborts = 0;
    for (int i = 0; i < 2500; ++i) {
      std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      const std::uint32_t addrs[] = {a, b};
      const auto r = stm.transact(ctx, addrs, tx_transfer,
                                  1 + rng.next_below(10));
      aborts += r.aborts;
    }
    total_aborts.fetch_add(aborts);
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });

  auto ctx = stm.make_ctx();
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) total += stm.read(ctx, a);
  EXPECT_EQ(total, kAccounts * kInitial) << "money created or destroyed";
  EXPECT_FALSE(stm.any_cell_locked());
}

INSTANTIATE_TEST_SUITE_P(Threads, StmStress, ::testing::Values(1, 2, 4, 8));

// Wide transactions overlapping heavily: rotate values through overlapping
// windows; the multiset of all cell values is invariant under rotation.
TEST(StmStress, OverlappingRotationsPreserveMultiset) {
  constexpr unsigned kThreads = 4;
  constexpr std::size_t kCells = 12;
  Stm stm(kThreads + 1, kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    stm.set_initial(i, 100 + i);
  }

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = stm.make_ctx();
    Xoshiro256 rng(tid + 11);
    for (int i = 0; i < 2000; ++i) {
      const std::uint32_t base =
          static_cast<std::uint32_t>(rng.next_below(kCells - 3));
      const std::uint32_t addrs[] = {base, base + 1, base + 2, base + 3};
      stm.transact(ctx, addrs, tx_rotate, 0);
    }
  });

  auto ctx = stm.make_ctx();
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < kCells; ++i) values.push_back(stm.read(ctx, i));
  std::sort(values.begin(), values.end());
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < kCells; ++i) expect.push_back(100 + i);
  EXPECT_EQ(values, expect);
}

}  // namespace
}  // namespace moir
