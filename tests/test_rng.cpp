#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace moir {
namespace {

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(1, 10);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace moir
