// UniversalObject (Herlihy-style small-object construction over Figure 6).
#include "nonblocking/universal.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/thread_utils.hpp"

namespace moir {
namespace {

// A sequential object too big for one word: a bank of four accounts plus
// an operation counter, with an invariant (total conserved) that any
// torn/lost update breaks.
struct Bank {
  std::uint64_t accounts[4];
  std::uint64_t ops;
  friend bool operator==(const Bank&, const Bank&) = default;
};

TEST(UniversalObject, RequiredWidthMatchesCodec) {
  EXPECT_EQ((UniversalObject<Bank>::required_width()),
            chunks_needed(sizeof(Bank), WideLlsc<32>::kChunkBits));
}

TEST(UniversalObject, ApplyIsSequentiallyCorrect) {
  WideLlsc<32> dom(2, UniversalObject<Bank>::required_width());
  UniversalObject<Bank> obj(dom, Bank{{100, 0, 0, 0}, 0});
  auto ctx = dom.make_ctx();
  const Bank after = obj.apply(ctx, [](Bank b) {
    b.accounts[0] -= 10;
    b.accounts[1] += 10;
    ++b.ops;
    return b;
  });
  EXPECT_EQ(after, (Bank{{90, 10, 0, 0}, 1}));
  EXPECT_EQ(obj.read(ctx), after);
}

TEST(UniversalObject, ConcurrentTransfersConserveTotal) {
  constexpr unsigned kThreads = 4;
  WideLlsc<32> dom(kThreads + 1, UniversalObject<Bank>::required_width());
  UniversalObject<Bank> obj(dom, Bank{{1000, 1000, 1000, 1000}, 0});

  constexpr int kOpsEach = 3000;
  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = dom.make_ctx();
    for (int i = 0; i < kOpsEach; ++i) {
      const unsigned from = (tid + i) % 4;
      const unsigned to = (tid + i + 1) % 4;
      obj.apply(ctx, [from, to](Bank b) {
        if (b.accounts[from] > 0) {
          b.accounts[from] -= 1;
          b.accounts[to] += 1;
        }
        ++b.ops;
        return b;
      });
    }
  });

  auto ctx = dom.make_ctx();
  const Bank fin = obj.read(ctx);
  EXPECT_EQ(fin.accounts[0] + fin.accounts[1] + fin.accounts[2] +
                fin.accounts[3],
            4000u)
      << "transfers must conserve the total";
  EXPECT_EQ(fin.ops, static_cast<std::uint64_t>(kThreads) * kOpsEach)
      << "every apply() must take effect exactly once";
}

}  // namespace
}  // namespace moir
