// Torture battery: long randomized mixed workloads, swept over substrates,
// seeds, and contention shapes. Each scenario carries an invariant that a
// single lost/duplicated/torn update breaks. These are the "testing —
// often to an extreme extent — is essential" tests of C++ Core Guidelines
// CP.101.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "nonblocking/counter.hpp"
#include "nonblocking/ms_queue.hpp"
#include "nonblocking/stm.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

constexpr unsigned kThreads = 4;

// ---------------------------------------------------------------------
// Scenario 1: many variables, random LL/VL/SC/CL mix, per-variable
// success accounting. Parameterized over seed to diversify schedules.
// ---------------------------------------------------------------------
template <typename S, typename MakeCtx>
void random_multi_var_torture(S& s, MakeCtx make_ctx, std::uint64_t seed) {
  constexpr int kVars = 6;
  constexpr int kOps = 6000;
  std::vector<typename S::Var> vars(kVars);
  for (auto& v : vars) s.init_var(v, 0);
  std::vector<std::atomic<std::uint64_t>> successes(kVars);

  run_threads(kThreads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.01, seed * 131 + tid);
#endif
    auto ctx = make_ctx();
    Xoshiro256 rng(seed * 977 + tid);
    for (int i = 0; i < kOps; ++i) {
      const int vi = static_cast<int>(rng.next_below(kVars));
      typename S::Keep keep;
      const std::uint64_t v = s.ll(ctx, vars[vi], keep);
      switch (rng.next_below(4)) {
        case 0:  // plain LL/SC increment
          if (s.sc(ctx, vars[vi], keep, (v + 1) & s.max_value())) {
            successes[vi].fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case 1: {  // validate first, then SC
          const bool valid = s.vl(ctx, vars[vi], keep);
          const bool ok = s.sc(ctx, vars[vi], keep, (v + 1) & s.max_value());
          // SC success implies the earlier VL was true (no SC can have
          // intervened before a successful SC).
          if (ok) {
            ASSERT_TRUE(valid) << "SC succeeded after VL said invalid";
            successes[vi].fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case 2:  // abandon the sequence
          s.cl(ctx, keep);
          break;
        default:  // read-only probe: VL after nothing should often be true
          s.cl(ctx, keep);
          break;
      }
    }
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });

  for (int vi = 0; vi < kVars; ++vi) {
    EXPECT_EQ(s.read(vars[vi]),
              successes[vi].load() & s.max_value())
        << "variable " << vi << " lost or gained updates";
  }
}

class TortureSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TortureSeed, Fig4MultiVar) {
  CasBackedLlsc<16> s;
  random_multi_var_torture(s, [&] { return s.make_ctx(); }, GetParam());
}

TEST_P(TortureSeed, Fig5MultiVarWithFaults) {
  FaultInjector faults;
  faults.set_spurious_probability(0.05);
  RllBackedLlsc<16> s(&faults);
  random_multi_var_torture(s, [&] { return s.make_ctx(); }, GetParam());
}

TEST_P(TortureSeed, Fig7MultiVar) {
  BoundedLlsc<> s(kThreads, 2);
  random_multi_var_torture(s, [&] { return s.make_ctx(); }, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// Scenario 2: one Figure-7 domain backing a stack, a queue, AND raw
// counters simultaneously — cross-structure interference through the
// shared announcement array and tag space.
// ---------------------------------------------------------------------
TEST(TortureMixed, StackQueueCounterShareOneBoundedDomain) {
  BoundedLlsc<> s(kThreads + 2, 3);  // queue needs k >= 3
  auto init_ctx = s.make_ctx();
  TreiberStack<BoundedLlsc<>> stack(s, 64, init_ctx);
  MsQueue<BoundedLlsc<>> queue(s, 64, init_ctx);
  LlscCounter<BoundedLlsc<>> counter(s, 0);

  std::atomic<std::int64_t> stack_net{0}, queue_net{0};
  std::atomic<std::uint64_t> incs{0};
  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    Xoshiro256 rng(tid * 7 + 1);
    std::int64_t s_net = 0, q_net = 0;
    std::uint64_t my_incs = 0;
    for (int i = 0; i < 6000; ++i) {
      switch (rng.next_below(5)) {
        case 0:
          s_net += stack.push(ctx, i & 0xfff);
          break;
        case 1:
          s_net -= stack.pop(ctx).has_value();
          break;
        case 2:
          q_net += queue.enqueue(ctx, i & 0xfff);
          break;
        case 3:
          q_net -= queue.dequeue(ctx).has_value();
          break;
        default:
          counter.increment(ctx);
          ++my_incs;
          break;
      }
    }
    stack_net.fetch_add(s_net);
    queue_net.fetch_add(q_net);
    incs.fetch_add(my_incs);
  });

  std::int64_t stack_left = 0;
  while (stack.pop(init_ctx)) ++stack_left;
  std::int64_t queue_left = 0;
  while (queue.dequeue(init_ctx)) ++queue_left;
  EXPECT_EQ(stack_left, stack_net.load());
  EXPECT_EQ(queue_left, queue_net.load());
  EXPECT_EQ(counter.read(), incs.load());
}

// ---------------------------------------------------------------------
// Scenario 3: STM with maximum-size transactions over a small cell pool —
// every transaction overlaps every other; permutation invariant.
// ---------------------------------------------------------------------
TEST(TortureMixed, StmMaxSizeTransactions) {
  constexpr std::size_t kCells = Stm::kMaxTxCells;
  Stm stm(kThreads + 1, kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    stm.set_initial(i, 1000 + i);
  }
  std::uint32_t all[kCells];
  for (std::size_t i = 0; i < kCells; ++i) all[i] = static_cast<std::uint32_t>(i);

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = stm.make_ctx();
    for (int i = 0; i < 1500; ++i) {
      stm.transact(
          ctx, std::span<const std::uint32_t>(all, kCells),
          [](const std::uint64_t* olds, std::uint64_t* news, unsigned n,
             std::uint64_t rot) {
            for (unsigned j = 0; j < n; ++j) news[j] = olds[(j + rot) % n];
          },
          1 + (tid % (kCells - 1)));
    }
  });

  auto ctx = stm.make_ctx();
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < kCells; ++i) values.push_back(stm.read(ctx, i));
  std::sort(values.begin(), values.end());
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < kCells; ++i) expect.push_back(1000 + i);
  EXPECT_EQ(values, expect) << "full-width rotations must permute, not mutate";
  EXPECT_FALSE(stm.any_cell_locked());
  const auto st = stm.stats();
  EXPECT_EQ(st.commits, static_cast<std::uint64_t>(kThreads) * 1500);
}

// ---------------------------------------------------------------------
// Scenario 4: adversarial CL storms on Figure 7 — constant abandonment
// must never leak slots or disturb other processes' sequences.
// ---------------------------------------------------------------------
TEST(TortureMixed, Fig7ClStormDoesNotDisturbWriters) {
  BoundedLlsc<> s(kThreads, 1);
  BoundedLlsc<>::Var var;
  s.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    if (tid % 2 == 0) {
      // Writer.
      std::uint64_t local = 0;
      for (int i = 0; i < 8000; ++i) {
        BoundedLlsc<>::Keep keep;
        const auto v = s.ll(ctx, var, keep);
        local += s.sc(ctx, var, keep, (v + 1) & s.max_value());
      }
      successes.fetch_add(local);
    } else {
      // CL storm: open and abandon sequences as fast as possible.
      for (int i = 0; i < 16000; ++i) {
        BoundedLlsc<>::Keep keep;
        s.ll(ctx, var, keep);
        s.cl(ctx, keep);
      }
    }
  });
  EXPECT_EQ(s.read(var), successes.load() & s.max_value());
}

}  // namespace
}  // namespace moir
