#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace moir {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(16), 0xffffu);
  EXPECT_EQ(low_mask(63), 0x7fffffffffffffffULL);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractDepositRoundTrip) {
  const std::uint64_t word = 0xdeadbeefcafebabeULL;
  for (unsigned shift : {0u, 7u, 16u, 48u}) {
    for (unsigned bits : {1u, 8u, 16u}) {
      if (shift + bits > 64) continue;
      const std::uint64_t field = extract_bits(word, shift, bits);
      EXPECT_EQ(extract_bits(deposit_bits(word, shift, bits, field), shift,
                             bits),
                field);
    }
  }
}

TEST(Bits, DepositDoesNotTouchNeighbours) {
  const std::uint64_t w = deposit_bits(~std::uint64_t{0}, 8, 8, 0);
  EXPECT_EQ(w, 0xffffffffffff00ffULL);
}

TEST(Bits, DepositMasksOversizedField) {
  // A field wider than `bits` must be truncated, not smear into neighbours.
  const std::uint64_t w = deposit_bits(0, 4, 4, 0xfff);
  EXPECT_EQ(w, 0xf0u);
}

TEST(Bits, AddSubModPow2) {
  EXPECT_EQ(add_mod_pow2(low_mask(16), 1, 16), 0u);  // wraparound
  EXPECT_EQ(add_mod_pow2(5, 3, 16), 8u);
  EXPECT_EQ(sub_mod_pow2(0, 1, 16), low_mask(16));  // underflow wraps
  EXPECT_EQ(sub_mod_pow2(8, 3, 16), 5u);
}

TEST(Bits, AddSubModPow2AreInverses) {
  for (unsigned bits : {1u, 3u, 16u, 48u}) {
    for (std::uint64_t x : {std::uint64_t{0}, std::uint64_t{1}, low_mask(bits)}) {
      EXPECT_EQ(sub_mod_pow2(add_mod_pow2(x, 1, bits), 1, bits), x)
          << "bits=" << bits << " x=" << x;
    }
  }
}

TEST(Bits, AddModRange) {
  // Figure 7's cnt: 0..Nk arithmetic (bound inclusive, not a power of two).
  EXPECT_EQ(add_mod_range(6, 1, 6), 0u);
  EXPECT_EQ(add_mod_range(5, 1, 6), 6u);
  EXPECT_EQ(add_mod_range(0, 1, 0), 0u);  // degenerate single-value range
}

TEST(Bits, BitsFor) {
  EXPECT_EQ(bits_for(0), 1u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

}  // namespace
}  // namespace moir
