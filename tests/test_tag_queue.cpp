#include "core/tag_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace moir {
namespace {

TEST(TagQueue, InitiallyAscending) {
  TagQueue q(5);
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(TagQueue, RotateCyclesThroughAll) {
  TagQueue q(4);
  for (std::uint32_t expect : {0u, 1u, 2u, 3u, 0u, 1u}) {
    EXPECT_EQ(q.rotate(), expect);
  }
}

TEST(TagQueue, MoveToBackFromFront) {
  TagQueue q(4);
  q.move_to_back(0);
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint32_t>{1, 2, 3, 0}));
}

TEST(TagQueue, MoveToBackFromMiddle) {
  TagQueue q(4);
  q.move_to_back(2);
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint32_t>{0, 1, 3, 2}));
}

TEST(TagQueue, MoveToBackOfTailIsNoop) {
  TagQueue q(4);
  q.move_to_back(3);
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(TagQueue, MembershipIsInvariant) {
  TagQueue q(7);
  Xoshiro256 rng(123);
  for (int i = 0; i < 1000; ++i) {
    if (rng.chance(1, 2)) {
      q.move_to_back(static_cast<std::uint32_t>(rng.next_below(7)));
    } else {
      q.rotate();
    }
    auto snap = q.snapshot();
    ASSERT_EQ(snap.size(), 7u);
    std::sort(snap.begin(), snap.end());
    std::vector<std::uint32_t> expect(7);
    std::iota(expect.begin(), expect.end(), 0);
    ASSERT_EQ(snap, expect) << "queue must remain a permutation of all tags";
  }
}

// The property Figure 7's safety rests on: a value moved to the back cannot
// reach the front again until every other value has been dequeued once.
TEST(TagQueue, MovedTagNeedsFullCycleToResurface) {
  const std::uint32_t n = 9;
  TagQueue q(n);
  q.move_to_back(0);
  int rotations_until_zero = 0;
  while (q.rotate() != 0) ++rotations_until_zero;
  EXPECT_EQ(rotations_until_zero, static_cast<int>(n - 1));
}

TEST(TagQueue, MinimumCapacity) {
  TagQueue q(2);
  EXPECT_EQ(q.rotate(), 0u);
  q.move_to_back(0);
  EXPECT_EQ(q.rotate(), 1u);
}

}  // namespace
}  // namespace moir
