// Systematic (exhaustive, within yield-point granularity) exploration of
// small configurations of the paper's algorithms, plus positive controls:
// the same explorer FINDS the ABA bug in the naive "LL=load, SC=CAS"
// emulation, with and without sleep-set reduction. An explorer that never
// finds planted bugs proves nothing.
//
// Every violation report carries a schedule string ("ms1:...") that
// ScheduleExplorer::replay turns back into the exact interleaving.
#include "sim/explore.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bounded_llsc.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "core/llsc_traits.hpp"
#include "core/wide_llsc.hpp"
#include "sim/schedule.hpp"
#include "util/env.hpp"

namespace moir {
namespace {

using testing::ExploreOptions;
using testing::Schedule;
using testing::ScheduleExplorer;
using testing::StepInfo;

TEST(Schedule, StringRoundTrip) {
  const Schedule s{{0, 1, 1, 0, 2, 17}};
  EXPECT_EQ(s.str(), "ms1:0.1.1.0.2.17");
  const auto parsed = Schedule::parse(s.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);

  const auto empty = Schedule::parse("ms1:");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(Schedule::parse("0.1.2").has_value());
  EXPECT_FALSE(Schedule::parse("ms1:0..1").has_value());
  EXPECT_FALSE(Schedule::parse("ms1:0.x").has_value());
  EXPECT_FALSE(Schedule::parse("ms1:3.").has_value());
}

// ---------------------------------------------------------------------
// Figure 4: two threads, two LL/SC increments each. Every interleaving
// must satisfy: final value == number of successful SCs.
// ---------------------------------------------------------------------
TEST(Exploration, Fig4CounterExhaustive) {
  using L = LlscFromCas<16>;

  auto make_trial = [] {
    struct Shared {
      L::Var var{0};
      std::uint64_t successes[2] = {0, 0};  // per-thread: no hidden conflicts
    };
    auto shared = std::make_shared<Shared>();
    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([shared, t] {
        for (int i = 0; i < 2; ++i) {
          L::Keep keep;
          const std::uint64_t v = L::ll(shared->var, keep);
          shared->successes[t] += L::sc(shared->var, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [shared] {
      return shared->var.read() ==
             shared->successes[0] + shared->successes[1];
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 100000);
  EXPECT_TRUE(r.exhausted) << "schedule tree unexpectedly large";
  EXPECT_FALSE(r.violation_found) << r.schedule_string();
  EXPECT_GT(r.trials, 10u) << "exploration degenerated to one schedule";
}

// ---------------------------------------------------------------------
// Positive control: the ABA-blind strawman. The classic stale-SC
// interleaving slips through and breaks the stack next-pointer invariant.
// `announce_next` declares the test body's own accesses to the shared
// next_of array, so the same trial is also sound under sleep sets.
// ---------------------------------------------------------------------
ScheduleExplorer::Trial make_naive_aba_trial() {
  using S = NaiveCasLlsc<16>;

  struct Shared {
    S s;
    S::Var head;
    // next_of models node links as in the staged ABA test.
    std::uint32_t next_of[3] = {99, 0, 1};
    bool victim_sc_ok = false;
    bool adversary_ok = true;
  };
  auto sh = std::make_shared<Shared>();
  sh->s.init_var(sh->head, 2);  // stack: C(2) -> B(1) -> A(0)

  ScheduleExplorer::Trial trial;
  // Victim: pop prologue (LL head, read next), then SC.
  trial.bodies.push_back([sh] {
    auto ctx = sh->s.make_ctx();
    S::Keep keep;
    const std::uint64_t h = sh->s.ll(ctx, sh->head, keep);
    MOIR_YIELD_STEP(StepInfo::read(&sh->next_of));
    const std::uint32_t next = sh->next_of[h];
    sh->victim_sc_ok = sh->s.sc(ctx, sh->head, keep, next);
  });
  // Adversary: pop C, pop B, push C back (C recycled with next=A).
  trial.bodies.push_back([sh] {
    auto ctx = sh->s.make_ctx();
    for (int step = 0; step < 3; ++step) {
      S::Keep k;
      const std::uint64_t h = sh->s.ll(ctx, sh->head, k);
      MOIR_YIELD_STEP(StepInfo::write(&sh->next_of));
      std::uint64_t target;
      if (step < 2) {
        target = sh->next_of[h];  // pop
      } else {
        sh->next_of[2] = 0;       // recycle C with next = A
        target = 2;               // push C
      }
      sh->adversary_ok &= sh->s.sc(ctx, sh->head, k, target);
    }
  });
  // Violation: the victim's SC succeeded after the full adversary run
  // (head went C -> B -> A -> C), installing a dangling head (B is
  // free). Detect: head == B(1) while the adversary completed.
  trial.check = [sh] {
    const bool aba_corruption = sh->adversary_ok && sh->victim_sc_ok &&
                                sh->s.read(sh->head) == 1;
    return !aba_corruption;
  };
  return trial;
}

TEST(Exploration, ExplorerFindsNaiveCasAba) {
  const auto r = ScheduleExplorer::explore(make_naive_aba_trial, 100000);
  EXPECT_TRUE(r.violation_found)
      << "explorer failed to find the planted ABA bug (positive control)";
  ASSERT_FALSE(r.violating_schedule.empty());

  // The failure report's schedule string deterministically replays the
  // violating interleaving.
  const auto parsed = Schedule::parse(r.schedule_string());
  ASSERT_TRUE(parsed.has_value()) << r.schedule_string();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ScheduleExplorer::replay(make_naive_aba_trial, *parsed))
        << "schedule " << r.schedule_string() << " did not replay the bug";
  }
}

// Sleep-set reduction must not prune the bug away: the reduced search
// still finds the planted ABA, in no more trials than the full search.
TEST(Exploration, SleepSetsStillFindNaiveCasAba) {
  const auto full = ScheduleExplorer::explore(make_naive_aba_trial, 100000);
  const auto reduced = ScheduleExplorer::explore(
      make_naive_aba_trial,
      ExploreOptions{.max_trials = 100000, .sleep_sets = true});
  EXPECT_TRUE(reduced.violation_found)
      << "sleep sets pruned the planted ABA bug (unsound reduction)";
  EXPECT_LE(reduced.trials, full.trials);
}

// The identical scenario on Figure 4 must be violation-free across ALL
// schedules — the tag is what makes the difference.
TEST(Exploration, Fig4SurvivesAbaScenarioExhaustive) {
  using S = CasBackedLlsc<16>;

  auto make_trial = [] {
    struct Shared {
      S s;
      S::Var head;
      std::uint32_t next_of[3] = {99, 0, 1};
      bool victim_sc_ok = false;
      bool adversary_ok = true;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->head, 2);

    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      S::Keep keep;
      const std::uint64_t h = sh->s.ll(ctx, sh->head, keep);
      const std::uint32_t next = sh->next_of[h];
      sh->victim_sc_ok = sh->s.sc(ctx, sh->head, keep, next);
    });
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      for (int step = 0; step < 3; ++step) {
        S::Keep k;
        const std::uint64_t h = sh->s.ll(ctx, sh->head, k);
        std::uint64_t target;
        if (step < 2) {
          target = sh->next_of[h];
        } else {
          sh->next_of[2] = 0;
          target = 2;
        }
        sh->adversary_ok &= sh->s.sc(ctx, sh->head, k, target);
      }
    });
    trial.check = [sh] {
      const bool aba_corruption = sh->adversary_ok && sh->victim_sc_ok &&
                                  sh->s.read(sh->head) == 1;
      return !aba_corruption;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 100000);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.violation_found)
      << "Figure 4 corrupted under schedule " << r.schedule_string();
}

// ---------------------------------------------------------------------
// The acceptance configuration for the sleep-set reduction: THREE threads
// of Figure 4 LL/SC increments (two contending on X, one on a disjoint Y).
// The plain DFS drowns in the ~750k interleavings of the 15-step tree; the
// sleep-set search proves the whole configuration violation-free.
// ---------------------------------------------------------------------
ScheduleExplorer::Trial make_fig4_three_thread_trial() {
  using L = LlscFromCas<16>;

  struct Shared {
    L::Var x{0};
    L::Var y{0};
    std::uint64_t succ[3] = {0, 0, 0};
  };
  auto sh = std::make_shared<Shared>();
  ScheduleExplorer::Trial trial;
  for (int t = 0; t < 2; ++t) {
    trial.bodies.push_back([sh, t] {
      for (int i = 0; i < 2; ++i) {
        L::Keep keep;
        const std::uint64_t v = L::ll(sh->x, keep);
        sh->succ[t] += L::sc(sh->x, keep, (v + 1) & 0xffff);
      }
    });
  }
  trial.bodies.push_back([sh] {
    for (int i = 0; i < 2; ++i) {
      L::Keep keep;
      const std::uint64_t v = L::ll(sh->y, keep);
      sh->succ[2] += L::sc(sh->y, keep, (v + 1) & 0xffff);
    }
  });
  trial.check = [sh] {
    return sh->x.read() == sh->succ[0] + sh->succ[1] &&
           sh->y.read() == sh->succ[2];
  };
  return trial;
}

TEST(Exploration, SleepSetsExhaustThreeThreadFig4) {
  // The seed DFS could not finish this configuration...
  const auto plain = ScheduleExplorer::explore(
      make_fig4_three_thread_trial, ExploreOptions{.max_trials = 3000});
  EXPECT_FALSE(plain.exhausted)
      << "plain DFS finished in " << plain.trials
      << " trials; configuration too small to demonstrate reduction";
  EXPECT_FALSE(plain.violation_found) << plain.schedule_string();

  // ...the sleep-set reduced DFS covers it completely.
  const auto dpor = ScheduleExplorer::explore(
      make_fig4_three_thread_trial,
      ExploreOptions{.max_trials = 100000, .sleep_sets = true});
  EXPECT_TRUE(dpor.exhausted) << "trials=" << dpor.trials;
  EXPECT_FALSE(dpor.violation_found) << dpor.schedule_string();
  EXPECT_GT(dpor.sleep_pruned, 0u);
}

// Same acceptance shape on Figure 5 (RLL/RSC-backed): the SC retry loop
// makes the tree irregular, but with declared footprints the reduced
// search still exhausts it.
TEST(Exploration, SleepSetsExhaustThreeThreadFig5) {
  using L = LlscFromRllRsc<16>;

  auto make_trial = [] {
    struct Shared {
      L::Var x{0};
      L::Var y{0};
      Processor procs[3];  // fault-free: RSC steps have declared footprints
      std::uint64_t succ[3] = {0, 0, 0};
    };
    auto sh = std::make_shared<Shared>();
    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        L::Keep keep;
        const std::uint64_t v = L::ll(sh->x, keep);
        sh->succ[t] += L::sc(sh->procs[t], sh->x, keep, (v + 1) & 0xffff);
      });
    }
    trial.bodies.push_back([sh] {
      for (int i = 0; i < 2; ++i) {
        L::Keep keep;
        const std::uint64_t v = L::ll(sh->y, keep);
        sh->succ[2] += L::sc(sh->procs[2], sh->y, keep, (v + 1) & 0xffff);
      }
    });
    trial.check = [sh] {
      return sh->x.read() == sh->succ[0] + sh->succ[1] &&
             sh->y.read() == sh->succ[2];
    };
    return trial;
  };

  const auto plain =
      ScheduleExplorer::explore(make_trial, ExploreOptions{.max_trials = 3000});
  EXPECT_FALSE(plain.exhausted) << "trials=" << plain.trials;

  const auto dpor = ScheduleExplorer::explore(
      make_trial, ExploreOptions{.max_trials = 100000, .sleep_sets = true});
  EXPECT_TRUE(dpor.exhausted) << "trials=" << dpor.trials;
  EXPECT_FALSE(dpor.violation_found) << dpor.schedule_string();
}

// ---------------------------------------------------------------------
// Figure 7 (bounded tags): exhaustive two-process exploration, checking
// the counter invariant AND the bounded-tag range invariant after every
// schedule. The finer-grained annotated yield points enlarge the tree, so
// the sleep-set reduction is what keeps this exhaustive; contexts are
// created in make_trial (not in the bodies) to keep prologues private.
// ---------------------------------------------------------------------
TEST(Exploration, Fig7CounterExhaustive) {
  using B = BoundedLlsc<>;

  auto make_trial = [] {
    struct Shared {
      B s{2, 1};
      B::Var var;
      std::vector<B::ThreadCtx> ctxs;
      std::uint64_t successes[2] = {0, 0};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(2);
    sh->ctxs.push_back(sh->s.make_ctx());
    sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        for (int i = 0; i < 2; ++i) {
          B::Keep keep;
          const std::uint64_t v = sh->s.ll(sh->ctxs[t], sh->var, keep);
          sh->successes[t] +=
              sh->s.sc(sh->ctxs[t], sh->var, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [sh] {
      const auto w = sh->s.raw_word(sh->var);
      return sh->s.read(sh->var) ==
                 sh->successes[0] + sh->successes[1] &&
             w.tag() <= 2 * 2 * 1 && w.cnt() <= 2 * 1;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(
      make_trial, ExploreOptions{.max_trials = 200000, .sleep_sets = true});
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found) << r.schedule_string();
}

// ---------------------------------------------------------------------
// Figure 6 (W=2): two processes each WLL+SC once; every schedule must
// leave an untorn value and count exactly the successful SCs.
// The schedule tree is larger here (helping paths); a trial budget keeps
// the test fast, and exhaustion is asserted only if reached.
// ---------------------------------------------------------------------
TEST(Exploration, Fig6WideNoTearing) {
  using W = WideLlsc<32>;

  // N=3: two worker processes plus one context for the final check read.
  auto make_trial3 = [] {
    struct Shared {
      W dom{3, 2};
      W::Var var;
      int successes = 0;
      bool torn = false;
    };
    auto sh = std::make_shared<Shared>();
    const std::vector<std::uint64_t> init{1, 101};
    sh->dom.init_var(sh->var, init);

    ScheduleExplorer::Trial trial;
    for (unsigned t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        auto ctx = sh->dom.make_ctx();
        std::vector<std::uint64_t> buf(2);
        W::Keep keep;
        if (sh->dom.wll(ctx, sh->var, keep, buf).success) {
          if (buf[1] != buf[0] + 100) {
            sh->torn = true;
            return;
          }
          const std::vector<std::uint64_t> next{buf[0] + 10 * (t + 1),
                                                buf[0] + 10 * (t + 1) + 100};
          sh->successes += sh->dom.sc(ctx, sh->var, keep, next);
        }
      });
    }
    trial.check = [sh] {
      if (sh->torn) return false;
      auto ctx = sh->dom.make_ctx();
      std::vector<std::uint64_t> fin(2);
      sh->dom.read(ctx, sh->var, fin);
      return fin[1] == fin[0] + 100;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial3, 15000);
  EXPECT_FALSE(r.violation_found)
      << "torn or inconsistent wide value under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 100u);
}

// ---------------------------------------------------------------------
// PCT smoke: a short randomized-priority batch on the 3-thread Figure 4
// configuration. Small enough for the ThreadSanitizer preset (ctest
// --preset tsan-smoke filters on "PctSmoke"), where each serialized run
// still exercises the real cross-thread handoff machinery.
// ---------------------------------------------------------------------
TEST(Exploration, PctSmokeFig4ThreeThreads) {
  const testing::PctOptions opts{
      .runs = scaled_budget(60),
      .depth = 3,
      .change_range = 48,
      .seed = base_seed() + 7,
  };
  const auto r =
      ScheduleExplorer::pct_explore(make_fig4_three_thread_trial, opts);
  EXPECT_FALSE(r.violation_found) << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

}  // namespace
}  // namespace moir
