// Systematic (exhaustive, within yield-point granularity) exploration of
// small configurations of the paper's algorithms, plus a positive control:
// the same explorer FINDS the ABA bug in the naive "LL=load, SC=CAS"
// emulation. An explorer that never finds planted bugs proves nothing.
#include "sim/controlled_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "core/wide_llsc.hpp"

namespace moir {
namespace {

using testing::ScheduleExplorer;

// ---------------------------------------------------------------------
// Figure 4: two threads, two LL/SC increments each. Every interleaving
// must satisfy: final value == number of successful SCs.
// ---------------------------------------------------------------------
TEST(Exploration, Fig4CounterExhaustive) {
  using L = LlscFromCas<16>;

  auto make_trial = [] {
    struct Shared {
      L::Var var{0};
      std::uint64_t successes = 0;  // only mutated while scheduled alone
    };
    auto shared = std::make_shared<Shared>();
    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([shared] {
        for (int i = 0; i < 2; ++i) {
          L::Keep keep;
          const std::uint64_t v = L::ll(shared->var, keep);
          shared->successes += L::sc(shared->var, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [shared] {
      return shared->var.read() == shared->successes;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 100000);
  EXPECT_TRUE(r.exhausted) << "schedule tree unexpectedly large";
  EXPECT_FALSE(r.violation_found);
  EXPECT_GT(r.trials, 10u) << "exploration degenerated to one schedule";
}

// The same harness must CATCH a real bug: with the ABA-blind strawman,
// the classic stale-SC interleaving slips through and breaks the stack
// next-pointer invariant.
TEST(Exploration, ExplorerFindsNaiveCasAba) {
  using S = NaiveCasLlsc<16>;

  auto make_trial = [] {
    struct Shared {
      S s;
      S::Var head;
      // next_of models node links as in the staged ABA test.
      std::uint32_t next_of[3] = {99, 0, 1};
      bool victim_sc_ok = false;
      bool adversary_ok = true;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->head, 2);  // stack: C(2) -> B(1) -> A(0)

    ScheduleExplorer::Trial trial;
    // Victim: pop prologue (LL head, read next), then SC.
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      S::Keep keep;
      const std::uint64_t h = sh->s.ll(ctx, sh->head, keep);
      const std::uint32_t next = sh->next_of[h];
      sh->victim_sc_ok = sh->s.sc(ctx, sh->head, keep, next);
    });
    // Adversary: pop C, pop B, push C back (C recycled with next=A).
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      for (int step = 0; step < 3; ++step) {
        S::Keep k;
        const std::uint64_t h = sh->s.ll(ctx, sh->head, k);
        std::uint64_t target;
        if (step < 2) {
          target = sh->next_of[h];  // pop
        } else {
          sh->next_of[2] = 0;       // recycle C with next = A
          target = 2;               // push C
        }
        sh->adversary_ok &= sh->s.sc(ctx, sh->head, k, target);
      }
    });
    // Violation: the victim's SC succeeded after the full adversary run
    // (head went C -> B -> A -> C), installing a dangling head (B is
    // free). Detect: head == B(1) while the adversary completed.
    trial.check = [sh] {
      const bool aba_corruption = sh->adversary_ok && sh->victim_sc_ok &&
                                  sh->s.read(sh->head) == 1;
      return !aba_corruption;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 100000);
  EXPECT_TRUE(r.violation_found)
      << "explorer failed to find the planted ABA bug (positive control)";
  EXPECT_FALSE(r.violating_schedule.empty());
}

// The identical scenario on Figure 4 must be violation-free across ALL
// schedules — the tag is what makes the difference.
TEST(Exploration, Fig4SurvivesAbaScenarioExhaustive) {
  using S = CasBackedLlsc<16>;

  auto make_trial = [] {
    struct Shared {
      S s;
      S::Var head;
      std::uint32_t next_of[3] = {99, 0, 1};
      bool victim_sc_ok = false;
      bool adversary_ok = true;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->head, 2);

    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      S::Keep keep;
      const std::uint64_t h = sh->s.ll(ctx, sh->head, keep);
      const std::uint32_t next = sh->next_of[h];
      sh->victim_sc_ok = sh->s.sc(ctx, sh->head, keep, next);
    });
    trial.bodies.push_back([sh] {
      auto ctx = sh->s.make_ctx();
      for (int step = 0; step < 3; ++step) {
        S::Keep k;
        const std::uint64_t h = sh->s.ll(ctx, sh->head, k);
        std::uint64_t target;
        if (step < 2) {
          target = sh->next_of[h];
        } else {
          sh->next_of[2] = 0;
          target = 2;
        }
        sh->adversary_ok &= sh->s.sc(ctx, sh->head, k, target);
      }
    });
    trial.check = [sh] {
      const bool aba_corruption = sh->adversary_ok && sh->victim_sc_ok &&
                                  sh->s.read(sh->head) == 1;
      return !aba_corruption;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 100000);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.violation_found)
      << "Figure 4 corrupted under schedule, e.g. choices[0]="
      << (r.violating_schedule.empty() ? 999 : r.violating_schedule[0]);
}

// ---------------------------------------------------------------------
// Figure 7 (bounded tags): exhaustive two-process exploration, checking
// the counter invariant AND the bounded-tag range invariant after every
// schedule.
// ---------------------------------------------------------------------
TEST(Exploration, Fig7CounterExhaustive) {
  using B = BoundedLlsc<>;

  auto make_trial = [] {
    struct Shared {
      B s{2, 1};
      B::Var var;
      std::uint64_t successes = 0;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);

    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh] {
        auto ctx = sh->s.make_ctx();
        for (int i = 0; i < 2; ++i) {
          B::Keep keep;
          const std::uint64_t v = sh->s.ll(ctx, sh->var, keep);
          sh->successes += sh->s.sc(ctx, sh->var, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [sh] {
      const auto w = sh->s.raw_word(sh->var);
      return sh->s.read(sh->var) == sh->successes && w.tag() <= 2 * 2 * 1 &&
             w.cnt() <= 2 * 1;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 200000);
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found);
}

// ---------------------------------------------------------------------
// Figure 6 (W=2): two processes each WLL+SC once; every schedule must
// leave an untorn value and count exactly the successful SCs.
// The schedule tree is larger here (helping paths); a trial budget keeps
// the test fast, and exhaustion is asserted only if reached.
// ---------------------------------------------------------------------
TEST(Exploration, Fig6WideNoTearing) {
  using W = WideLlsc<32>;

  // N=3: two worker processes plus one context for the final check read.
  auto make_trial3 = [] {
    struct Shared {
      W dom{3, 2};
      W::Var var;
      int successes = 0;
      bool torn = false;
    };
    auto sh = std::make_shared<Shared>();
    const std::vector<std::uint64_t> init{1, 101};
    sh->dom.init_var(sh->var, init);

    ScheduleExplorer::Trial trial;
    for (unsigned t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        auto ctx = sh->dom.make_ctx();
        std::vector<std::uint64_t> buf(2);
        W::Keep keep;
        if (sh->dom.wll(ctx, sh->var, keep, buf).success) {
          if (buf[1] != buf[0] + 100) {
            sh->torn = true;
            return;
          }
          const std::vector<std::uint64_t> next{buf[0] + 10 * (t + 1),
                                                buf[0] + 10 * (t + 1) + 100};
          sh->successes += sh->dom.sc(ctx, sh->var, keep, next);
        }
      });
    }
    trial.check = [sh] {
      if (sh->torn) return false;
      auto ctx = sh->dom.make_ctx();
      std::vector<std::uint64_t> fin(2);
      sh->dom.read(ctx, sh->var, fin);
      return fin[1] == fin[0] + 100;
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial3, 30000);
  EXPECT_FALSE(r.violation_found)
      << "torn or inconsistent wide value under exploration";
  EXPECT_GT(r.trials, 100u);
}

}  // namespace
}  // namespace moir
