// Sharded non-blocking hash map: sequential semantics, chain (collision)
// behaviour, pool exhaustion, conservation after churn, multi-threaded
// stress on both reclaimer policies, and a PCT-scheduled linearizability
// check against the sequential MapSpec.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "map/sharded_map.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "sim/explore.hpp"
#include "stats/stats.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using reclaim::EpochReclaimer;
using reclaim::HazardPointerReclaimer;
using Sub = CasBackedLlsc<16>;

template <class R>
using Map = ShardedHashMap<Sub, R>;

template <class R>
void basic_semantics() {
  Sub sub;
  Map<R> map(sub, 2, {.shards = 4, .buckets_per_shard = 8,
                      .capacity_per_shard = 64});
  auto ctx = map.make_ctx();

  EXPECT_EQ(map.size_approx(), 0);
  EXPECT_FALSE(map.find(ctx, 1).has_value());
  EXPECT_FALSE(map.erase(ctx, 1));

  EXPECT_TRUE(map.insert(ctx, 1, 100));
  EXPECT_FALSE(map.insert(ctx, 1, 999)) << "duplicate insert must fail";
  EXPECT_EQ(map.find(ctx, 1), std::optional<std::uint64_t>(100))
      << "failed insert must not clobber";

  EXPECT_FALSE(map.upsert(ctx, 1, 200)) << "upsert on present key = update";
  EXPECT_EQ(map.find(ctx, 1), std::optional<std::uint64_t>(200));
  EXPECT_TRUE(map.upsert(ctx, 2, 300)) << "upsert on absent key = insert";
  EXPECT_EQ(map.size_approx(), 2);

  EXPECT_TRUE(map.erase(ctx, 1));
  EXPECT_FALSE(map.erase(ctx, 1));
  EXPECT_FALSE(map.find(ctx, 1).has_value());
  EXPECT_TRUE(map.contains(ctx, 2));
  EXPECT_EQ(map.size_approx(), 1);
}

TEST(ShardedMap, BasicSemanticsEpoch) { basic_semantics<EpochReclaimer>(); }
TEST(ShardedMap, BasicSemanticsHazard) {
  basic_semantics<HazardPointerReclaimer>();
}

// One shard, one bucket: every key shares a chain, exercising the sorted
// Harris-list insert/erase/help-unlink paths directly.
TEST(ShardedMap, SingleChainCollisions) {
  Sub sub;
  Map<EpochReclaimer> map(sub, 2, {.shards = 1, .buckets_per_shard = 1,
                                   .capacity_per_shard = 64});
  auto ctx = map.make_ctx();
  for (std::uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(map.insert(ctx, k * 7, k));
  }
  // Erase from the middle, front, and back of the (sorted) chain.
  EXPECT_TRUE(map.erase(ctx, 7 * 10));
  EXPECT_TRUE(map.erase(ctx, 0));
  EXPECT_TRUE(map.erase(ctx, 7 * 19));
  for (std::uint64_t k = 0; k < 20; ++k) {
    const bool gone = k == 10 || k == 0 || k == 19;
    EXPECT_EQ(map.find(ctx, k * 7).has_value(), !gone) << "key " << k * 7;
  }
  EXPECT_EQ(map.size_approx(), 17);
}

TEST(ShardedMap, PoolExhaustionSurfacesAsFailedInsert) {
  Sub sub;
  Map<EpochReclaimer> map(sub, 2, {.shards = 1, .buckets_per_shard = 4,
                                   .capacity_per_shard = 8});
  auto ctx = map.make_ctx();
  unsigned inserted = 0;
  for (std::uint64_t k = 0; k < 64 && map.insert(ctx, k, k); ++k) ++inserted;
  EXPECT_EQ(inserted, 8u);
  EXPECT_FALSE(map.insert(ctx, 999, 1));
  EXPECT_TRUE(map.erase(ctx, 0));
  map.purge(ctx);  // retire -> free so the block is reusable
  EXPECT_TRUE(map.insert(ctx, 999, 1));
}

template <class R>
void churn_conservation() {
  Sub sub;
  Map<R> map(sub, 2, {.shards = 2, .buckets_per_shard = 4,
                      .capacity_per_shard = 128});
  auto ctx = map.make_ctx();
  Xoshiro256 rng(base_seed());
  for (std::uint64_t i = 0; i < scaled_budget(20000); ++i) {
    const std::uint64_t k = rng.next_below(64);
    switch (rng.next_below(4)) {
      case 0: (void)map.insert(ctx, k, i); break;
      case 1: (void)map.upsert(ctx, k, i); break;
      case 2: (void)map.erase(ctx, k); break;
      default: (void)map.find(ctx, k); break;
    }
  }
  for (std::uint64_t k = 0; k < 64; ++k) (void)map.erase(ctx, k);
  map.purge(ctx);
  EXPECT_EQ(map.size_approx(), 0);
  EXPECT_EQ(map.free_blocks_quiescent(), 2u * 128u)
      << "blocks leaked through the retire path";
}

TEST(ShardedMap, ChurnConservesBlocksEpoch) {
  churn_conservation<EpochReclaimer>();
}
TEST(ShardedMap, ChurnConservesBlocksHazard) {
  churn_conservation<HazardPointerReclaimer>();
}

// ---------------------------------------------------------------------
// ReclaimStress.Map*: free-running multi-threaded churn (the tsan/asan
// preset filter matches these). Values are derived from keys so any
// cross-key payload corruption — the bug SMR exists to prevent — is
// visible as a checksum mismatch even without a sanitizer.
// ---------------------------------------------------------------------
template <class R>
void map_stress() {
  Sub sub;
  auto map = std::make_unique<Map<R>>(
      sub, 8, typename Map<R>::Config{.shards = 4, .buckets_per_shard = 8,
                                      .capacity_per_shard = 256});
  constexpr std::uint64_t kKeys = 128;
  const std::uint64_t ops = scaled_budget(20000);
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = map->make_ctx();
      Xoshiro256 rng(base_seed() + 97 * t);
      std::uint64_t local_mismatch = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t k = rng.next_below(kKeys);
        switch (rng.next_below(4)) {
          case 0: (void)map->insert(ctx, k, k * 31 + 7); break;
          case 1: (void)map->upsert(ctx, k, k * 31 + 7); break;
          case 2: (void)map->erase(ctx, k); break;
          default:
            if (const auto v = map->find(ctx, k)) {
              local_mismatch += (*v != k * 31 + 7);
            }
        }
      }
      mismatches.fetch_add(local_mismatch);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u)
      << "found a value under the wrong key: use-after-free payload reuse";

  auto ctx = map->make_ctx();
  for (std::uint64_t k = 0; k < kKeys; ++k) (void)map->erase(ctx, k);
  map->purge(ctx);
  EXPECT_EQ(map->size_approx(), 0);
  EXPECT_EQ(map->free_blocks_quiescent(), 4u * 256u);
}

TEST(ReclaimStress, MapEpoch) { map_stress<EpochReclaimer>(); }
TEST(ReclaimStress, MapHazard) { map_stress<HazardPointerReclaimer>(); }

// ---------------------------------------------------------------------
// Linearizability under the PCT scheduler, on the adversarial config (one
// shard, ONE bucket, so every operation contends on a single chain). Three
// threads, nine operations over three keys; every recorded history must
// linearize against MapSpec.
// ---------------------------------------------------------------------
TEST(ShardedMap, PctLinearizable) {
  auto make_trial = [] {
    struct Shared {
      Sub sub;
      Map<EpochReclaimer> map{sub, 4,
                              {.shards = 1, .buckets_per_shard = 1,
                               .capacity_per_shard = 16}};
      HistoryRecorder rec{3};
      std::vector<typename Map<EpochReclaimer>::ThreadCtx> ctxs;
    };
    auto sh = std::make_shared<Shared>();
    sh->ctxs.reserve(3);
    for (int t = 0; t < 3; ++t) sh->ctxs.push_back(sh->map.make_ctx());

    testing::ScheduleExplorer::Trial trial;
    auto run = [sh](unsigned t, OpKind kind, std::uint64_t key,
                    std::uint64_t val) {
      auto& ctx = sh->ctxs[t];
      const auto inv = sh->rec.now();
      std::uint64_t arg = 0, ret = 0;
      switch (kind) {
        case OpKind::kMapInsert:
          arg = MapSpec::pack_args(key, val);
          ret = sh->map.insert(ctx, key, val);
          break;
        case OpKind::kMapUpsert:
          arg = MapSpec::pack_args(key, val);
          ret = sh->map.upsert(ctx, key, val);
          break;
        case OpKind::kMapErase:
          arg = key;
          ret = sh->map.erase(ctx, key);
          break;
        default: {
          arg = key;
          const auto v = sh->map.find(ctx, key);
          ret = v ? *v + 1 : 0;
        }
      }
      sh->rec.add(t, t, kind, arg, ret, inv);
    };
    trial.bodies.push_back([run] {
      run(0, OpKind::kMapInsert, 0, 10);
      run(0, OpKind::kMapFind, 1, 0);
      run(0, OpKind::kMapErase, 0, 0);
    });
    trial.bodies.push_back([run] {
      run(1, OpKind::kMapInsert, 1, 11);
      run(1, OpKind::kMapUpsert, 0, 20);
      run(1, OpKind::kMapFind, 2, 0);
    });
    trial.bodies.push_back([run] {
      run(2, OpKind::kMapInsert, 2, 12);
      run(2, OpKind::kMapErase, 1, 0);
      run(2, OpKind::kMapFind, 0, 0);
    });
    trial.check = [sh] {
      LinearizabilityChecker<MapSpec> checker;
      return checker.check(sh->rec.collect(), MapSpec::State{});
    };
    return trial;
  };

  const testing::PctOptions opts{
      .runs = scaled_budget(40),
      .depth = 3,
      .change_range = 96,
      .seed = base_seed() + 11,
  };
  const auto r = testing::ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable map history under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

}  // namespace
}  // namespace moir
