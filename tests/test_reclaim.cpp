// Safe-memory-reclamation layer: the block allocator, both real reclaimer
// policies, the deliberately broken negative control, and the reclaimed
// stack/queue variants built on them.
//
// The tests are organized around the PR-1 planted-bug principle: a harness
// that cannot distinguish the UnsafeImmediateReclaimer from the real
// policies proves nothing. Deterministic tests pin down the deferral
// semantics (a "protected"/epoch-pinned block is NOT freed under the real
// policies and IS freed under the broken one); under AddressSanitizer the
// broken policy is additionally a hard use-after-poison death.
//
// ReclaimStress.* are the multi-threaded churn tests the tsan/asan presets
// filter on. They end with the conservation check "every block came home"
// (free_count_quiescent == capacity), which is the leak test in every build
// — ASan's leak checker only backstops the backing arrays.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "nonblocking/ms_queue.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "reclaim/block_allocator.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

using reclaim::BlockAllocator;
using reclaim::EpochReclaimer;
using reclaim::HazardPointerReclaimer;
using reclaim::UnsafeImmediateReclaimer;

struct TestNode {
  std::uint64_t value = 0;
};

// ---------------------------------------------------------------------
// Block allocator.
// ---------------------------------------------------------------------

TEST(BlockAllocator, AllocAllThenExhaust) {
  BlockAllocator<TestNode> alloc(4);
  std::set<std::uint32_t> got;
  for (int i = 0; i < 4; ++i) {
    const auto idx = alloc.alloc();
    ASSERT_TRUE(idx.has_value());
    EXPECT_LT(*idx, 4u);
    got.insert(*idx);
  }
  EXPECT_EQ(got.size(), 4u) << "duplicate index handed out";
  EXPECT_FALSE(alloc.alloc().has_value()) << "empty pool must not alloc";
  EXPECT_EQ(alloc.free_count_quiescent(), 0u);
  for (const std::uint32_t idx : got) alloc.free(idx);
  EXPECT_EQ(alloc.free_count_quiescent(), 4u);
  EXPECT_TRUE(alloc.alloc().has_value());
}

TEST(BlockAllocator, InitRunsOnEveryBlock) {
  std::uint32_t inits = 0;
  BlockAllocator<TestNode> alloc(8, [&](TestNode& n) {
    n.value = 42;
    ++inits;
  });
  EXPECT_EQ(inits, 8u);
  const auto idx = alloc.alloc();
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(alloc.node(*idx).value, 42u);
}

TEST(BlockAllocator, ExhaustionIsCounted) {
  if (!stats::kCompiledIn || !stats::counting_enabled()) {
    GTEST_SKIP() << "stats disabled";
  }
  BlockAllocator<TestNode> alloc(1);
  (void)alloc.alloc();
  const auto before = stats::snapshot();
  (void)alloc.alloc();  // fails
  const auto delta = stats::snapshot() - before;
  EXPECT_EQ(delta[stats::Id::kAllocExhaustion], 1u);
}

TEST(BlockAllocator, ConcurrentChurnConservesBlocks) {
  constexpr std::uint32_t kCap = 64;
  constexpr unsigned kThreads = 4;
  BlockAllocator<TestNode> alloc(kCap);
  const std::uint64_t ops = scaled_budget(20000);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(base_seed() + t);
      std::vector<std::uint32_t> held;
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (held.empty() || rng.chance(1, 2)) {
          if (const auto idx = alloc.alloc()) held.push_back(*idx);
        } else {
          const std::size_t k = rng.next_below(held.size());
          alloc.free(held[k]);
          held[k] = held.back();
          held.pop_back();
        }
      }
      for (const std::uint32_t idx : held) alloc.free(idx);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(alloc.free_count_quiescent(), kCap);
}

// ---------------------------------------------------------------------
// Deferral semantics, deterministically. A single test thread plays both
// roles (reader and reclaimer) through two ThreadCtxs, so the outcome is
// schedule-independent.
// ---------------------------------------------------------------------

TEST(EpochReclaimer, ActiveReaderBlocksReclamation) {
  std::vector<std::uint32_t> freed;
  EpochReclaimer r(4, [&](std::uint32_t idx) { freed.push_back(idx); },
                   /*retire_threshold=*/1);
  auto reader = r.make_ctx();
  auto writer = r.make_ctx();

  r.enter(reader);  // reader pinned in the current epoch
  r.enter(writer);
  r.retire(writer, 5);
  r.exit(writer);
  r.flush(writer);
  EXPECT_TRUE(freed.empty())
      << "freed under an active reader pinned in the retire epoch";

  r.exit(reader);  // reader leaves; grace period can now elapse
  r.flush(writer);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 5u);
}

TEST(EpochReclaimer, EpochAdvancesAreCounted) {
  if (!stats::kCompiledIn || !stats::counting_enabled()) {
    GTEST_SKIP() << "stats disabled";
  }
  EpochReclaimer r(2, [](std::uint32_t) {});
  auto ctx = r.make_ctx();
  const auto before = stats::snapshot();
  const std::uint64_t e0 = r.epoch();
  r.flush(ctx);  // 3 advance attempts, all unobstructed
  const auto delta = stats::snapshot() - before;
  EXPECT_GE(r.epoch(), e0 + 3);
  EXPECT_GE(delta[stats::Id::kEpochAdvance], 3u);
}

TEST(EpochReclaimer, ThreadExitFoldsLimboToOrphans) {
  std::vector<std::uint32_t> freed;
  EpochReclaimer r(4, [&](std::uint32_t idx) { freed.push_back(idx); });
  {
    auto dying = r.make_ctx();
    r.enter(dying);
    r.retire(dying, 9);
    r.exit(dying);
  }  // fold: limbo parked as orphans, then advanced/drained
  auto ctx = r.make_ctx();
  r.flush(ctx);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 9u);
}

TEST(HazardPointer, ProtectedBlockSurvivesScan) {
  std::vector<std::uint32_t> freed;
  HazardPointerReclaimer r(4, [&](std::uint32_t idx) { freed.push_back(idx); },
                           /*slots_per_thread=*/2, /*scan_threshold=*/1);
  auto reader = r.make_ctx();
  auto writer = r.make_ctx();

  r.protect(reader, 0, 7);
  r.retire(writer, 7);  // threshold 1: scans immediately
  r.retire(writer, 8);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{8}))
      << "scan must free exactly the unannounced retiree";

  r.clear(reader, 0);
  r.flush(writer);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{8, 7}));
  if (stats::kCompiledIn && stats::counting_enabled()) {
    // At least the two explicit scans above happened.
    EXPECT_GE(stats::snapshot()[stats::Id::kHpScan], 2u);
  }
}

TEST(HazardPointer, ExitClearsAllSlots) {
  std::vector<std::uint32_t> freed;
  HazardPointerReclaimer r(4, [&](std::uint32_t idx) { freed.push_back(idx); },
                           3, 1);
  auto reader = r.make_ctx();
  auto writer = r.make_ctx();
  r.protect(reader, 0, 1);
  r.protect(reader, 1, 2);
  r.protect(reader, 2, 3);
  r.exit(reader);
  r.retire(writer, 1);
  r.retire(writer, 2);
  r.retire(writer, 3);
  r.flush(writer);
  EXPECT_EQ(freed.size(), 3u);
}

TEST(HazardPointer, DyingThreadRetirementsAreAdopted) {
  std::vector<std::uint32_t> freed;
  HazardPointerReclaimer r(4, [&](std::uint32_t idx) { freed.push_back(idx); },
                           2, /*scan_threshold=*/100);
  auto reader = r.make_ctx();
  r.protect(reader, 0, 3);
  {
    auto dying = r.make_ctx();
    r.retire(dying, 3);  // protected: survives the fold's scan, parked
  }
  EXPECT_TRUE(freed.empty());
  r.clear(reader, 0);
  r.flush(reader);  // adopts the orphan and frees it
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{3}));
}

// ---------------------------------------------------------------------
// Negative control. The broken policy ignores protection — the defining
// difference the detectors must be able to see.
// ---------------------------------------------------------------------

TEST(NegativeControl, UnsafeReclaimerFreesWhileProtected) {
  std::vector<std::uint32_t> freed;
  UnsafeImmediateReclaimer r(4,
                             [&](std::uint32_t idx) { freed.push_back(idx); });
  auto reader = r.make_ctx();
  auto writer = r.make_ctx();
  r.enter(reader);
  r.protect(reader, 0, 7);  // the lie: no policy state changes
  r.retire(writer, 7);
  EXPECT_EQ(freed, (std::vector<std::uint32_t>{7}))
      << "the negative control is supposed to free immediately; if this "
         "fails the control is no longer broken and the detector tests "
         "are vacuous";
  r.exit(reader);
}

#if MOIR_ASAN && defined(GTEST_HAS_DEATH_TEST)
// Under ASan the allocator poisons freed blocks, so the exact bug the real
// policies prevent — reading a block after a broken reclaimer freed it —
// is a deterministic use-after-poison abort, not silent reuse.
TEST(NegativeControlDeathTest, UseAfterImmediateFreeTripsAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        BlockAllocator<TestNode> alloc(4);
        UnsafeImmediateReclaimer r(
            2, [&](std::uint32_t idx) { alloc.free(idx); });
        auto reader = r.make_ctx();
        auto writer = r.make_ctx();
        const auto idx = alloc.alloc();
        alloc.node(*idx).value = 1;
        r.enter(reader);
        r.protect(reader, 0, *idx);  // ignored by the broken policy
        r.retire(writer, *idx);      // freed (and poisoned) immediately
        // The "protected" read the reclaimer concept promises is safe:
        volatile std::uint64_t v = alloc.node(*idx).value;
        (void)v;
      },
      "use-after-poison");
}

// Control for the control: the same sequence under a REAL policy must not
// die — protection defers the free past the read.
TEST(NegativeControlDeathTest, HazardPointerKeepsTheSameReadAlive) {
  BlockAllocator<TestNode> alloc(4);
  HazardPointerReclaimer r(2, [&](std::uint32_t idx) { alloc.free(idx); }, 2,
                           1);
  auto reader = r.make_ctx();
  auto writer = r.make_ctx();
  const auto idx = alloc.alloc();
  alloc.node(*idx).value = 1;
  r.enter(reader);
  r.protect(reader, 0, *idx);
  r.retire(writer, *idx);  // scans, sees the announcement, keeps the block
  EXPECT_EQ(alloc.node(*idx).value, 1u);
  r.clear(reader, 0);
  r.exit(reader);
  r.flush(writer);
  EXPECT_EQ(alloc.free_count_quiescent(), 4u);
}
#endif  // MOIR_ASAN && GTEST_HAS_DEATH_TEST

// Opt-in (never run by any preset): free-running concurrent churn on the
// broken reclaimer, for demonstrating that TSan reports the payload race
// and ASan the use-after-poison. MOIR_RUN_BROKEN_RECLAIMER=1 to run; the
// process is EXPECTED to die or report under sanitizers.
TEST(NegativeControl, BrokenReclaimerChurnOptIn) {
  if (!env_flag("MOIR_RUN_BROKEN_RECLAIMER", false)) {
    GTEST_SKIP() << "set MOIR_RUN_BROKEN_RECLAIMER=1 (under a sanitizer) "
                    "to run the broken-reclaimer churn";
  }
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, UnsafeImmediateReclaimer> stack(
      sub, 4, 128);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = stack.make_ctx();
      Xoshiro256 rng(base_seed() + t);
      for (std::uint64_t i = 0; i < scaled_budget(50000); ++i) {
        if (rng.chance(1, 2)) {
          (void)stack.push(ctx, rng.next());
        } else {
          (void)stack.pop(ctx);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
}

// ---------------------------------------------------------------------
// Reclaimed Treiber stack / M&S queue, single-threaded semantics plus the
// conservation (leak) check, on both policies and two substrates.
// ---------------------------------------------------------------------

template <class Stack>
void stack_semantics(Stack& stack) {
  auto ctx = stack.make_ctx();
  EXPECT_TRUE(stack.empty());
  for (std::uint64_t v = 1; v <= 10; ++v) EXPECT_TRUE(stack.push(ctx, v));
  for (std::uint64_t v = 10; v >= 1; --v) {
    const auto got = stack.pop(ctx);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(stack.pop(ctx).has_value());
  EXPECT_TRUE(stack.empty());
  stack.flush(ctx);
  EXPECT_EQ(stack.free_blocks_quiescent(), stack.capacity())
      << "retired nodes did not all come home (leak)";
}

TEST(ReclaimedStack, LifoAndConservationEpoch) {
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, EpochReclaimer> stack(sub, 2, 32);
  stack_semantics(stack);
}

TEST(ReclaimedStack, LifoAndConservationHazard) {
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, HazardPointerReclaimer> stack(
      sub, 2, 32);
  stack_semantics(stack);
}

TEST(ReclaimedStack, WorksOnRllSubstrate) {
  RllBackedLlsc<16> sub;
  ReclaimedTreiberStack<RllBackedLlsc<16>, EpochReclaimer> stack(sub, 2, 32);
  stack_semantics(stack);
}

TEST(ReclaimedStack, ExhaustionIncludesLimbo) {
  // With a high EBR threshold and no flush, popped nodes sit in limbo, so
  // a full push sweep right after popping everything can fail — that is
  // the documented backpressure, not a bug. flush() makes room again.
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, EpochReclaimer> stack(sub, 2, 8);
  auto ctx = stack.make_ctx();
  for (int v = 0; v < 8; ++v) EXPECT_TRUE(stack.push(ctx, v));
  EXPECT_FALSE(stack.push(ctx, 99));
  for (int v = 0; v < 8; ++v) ASSERT_TRUE(stack.pop(ctx).has_value());
  stack.flush(ctx);
  EXPECT_TRUE(stack.push(ctx, 1));
}

template <class Queue>
void queue_semantics(Queue& queue) {
  auto ctx = queue.make_ctx();
  EXPECT_TRUE(queue.empty());
  for (std::uint64_t v = 1; v <= 10; ++v) EXPECT_TRUE(queue.enqueue(ctx, v));
  for (std::uint64_t v = 1; v <= 10; ++v) {
    const auto got = queue.dequeue(ctx);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(queue.dequeue(ctx).has_value());
  queue.flush(ctx);
  // One block is always held as the current dummy.
  EXPECT_EQ(queue.free_blocks_quiescent(), 32u - 1u);
}

TEST(ReclaimedQueue, FifoAndConservationEpoch) {
  CasBackedLlsc<16> sub;
  ReclaimedMsQueue<CasBackedLlsc<16>, EpochReclaimer> queue(sub, 2, 32);
  queue_semantics(queue);
}

TEST(ReclaimedQueue, FifoAndConservationHazard) {
  CasBackedLlsc<16> sub;
  ReclaimedMsQueue<CasBackedLlsc<16>, HazardPointerReclaimer> queue(sub, 2,
                                                                    32);
  queue_semantics(queue);
}

// ---------------------------------------------------------------------
// ReclaimStress: multi-threaded churn. The tsan preset and the asan
// preset both filter on this name. Each run checks (a) per-element
// integrity via a checksum, (b) conservation after draining, and (c) the
// retire-list high-water mark stayed bounded.
// ---------------------------------------------------------------------

// HWM bound rationale: HP keeps at most (announcements possibly missed +
// threshold) entries across a scan, so threshold + N*K + slack is a real
// invariant. EBR's list is only amortized-bounded (an advance can be
// blocked for as long as a thread sits preempted inside a critical
// section, single-core worst case), so its bound is a generous regression
// tripwire, not a theorem.
void check_retire_hwm(std::uint64_t bound) {
  if (!stats::kCompiledIn || !stats::counting_enabled()) return;
  const Histogram h = stats::merged_histogram(stats::HistId::kRetireListLen);
  if (h.count() == 0) return;  // another suite reset stats; nothing to check
  EXPECT_LE(h.max(), bound) << "retire-list high-water mark unbounded?";
}

template <class Stack>
void stack_stress(Stack& stack, unsigned threads, std::uint64_t ops) {
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = stack.make_ctx();
      Xoshiro256 rng(base_seed() + 31 * t);
      std::uint64_t my_pushed = 0, my_popped = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (rng.chance(1, 2)) {
          my_pushed += stack.push(ctx, (std::uint64_t{t} << 32) | i);
        } else {
          my_popped += stack.pop(ctx).has_value();
        }
      }
      pushed.fetch_add(my_pushed);
      popped.fetch_add(my_popped);
    });
  }
  for (auto& th : pool) th.join();

  auto ctx = stack.make_ctx();
  std::uint64_t drained = 0;
  while (stack.pop(ctx).has_value()) ++drained;
  EXPECT_EQ(popped.load() + drained, pushed.load());
  stack.flush(ctx);
  EXPECT_EQ(stack.free_blocks_quiescent(), stack.capacity());
}

TEST(ReclaimStress, StackEpoch) {
  stats::reset();
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, EpochReclaimer> stack(sub, 8, 256);
  const std::uint64_t ops = scaled_budget(20000);
  stack_stress(stack, 4, ops);
  check_retire_hwm(4 * ops);
}

TEST(ReclaimStress, StackHazard) {
  stats::reset();
  CasBackedLlsc<16> sub;
  ReclaimedTreiberStack<CasBackedLlsc<16>, HazardPointerReclaimer> stack(
      sub, 8, 256);
  stack_stress(stack, 4, scaled_budget(20000));
  // threshold(2*8*3+16=64) + N*K(24) + adopted orphans slack
  check_retire_hwm(64 + 24 + 64);
}

TEST(ReclaimStress, QueueEpoch) {
  stats::reset();
  CasBackedLlsc<16> sub;
  ReclaimedMsQueue<CasBackedLlsc<16>, EpochReclaimer> queue(sub, 8, 256);
  const std::uint64_t ops = scaled_budget(20000);
  std::atomic<std::uint64_t> enq{0}, deq{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = queue.make_ctx();
      Xoshiro256 rng(base_seed() + 7 * t);
      std::uint64_t my_enq = 0, my_deq = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (rng.chance(1, 2)) {
          my_enq += queue.enqueue(ctx, i);
        } else {
          my_deq += queue.dequeue(ctx).has_value();
        }
      }
      enq.fetch_add(my_enq);
      deq.fetch_add(my_deq);
    });
  }
  for (auto& th : pool) th.join();
  auto ctx = queue.make_ctx();
  std::uint64_t drained = 0;
  while (queue.dequeue(ctx).has_value()) ++drained;
  EXPECT_EQ(deq.load() + drained, enq.load());
  queue.flush(ctx);
  EXPECT_EQ(queue.free_blocks_quiescent(), 256u - 1u);
  check_retire_hwm(4 * ops);
}

TEST(ReclaimStress, QueueHazard) {
  stats::reset();
  CasBackedLlsc<16> sub;
  ReclaimedMsQueue<CasBackedLlsc<16>, HazardPointerReclaimer> queue(sub, 8,
                                                                    256);
  const std::uint64_t ops = scaled_budget(20000);
  std::vector<std::thread> pool;
  std::atomic<std::uint64_t> enq{0}, deq{0};
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = queue.make_ctx();
      Xoshiro256 rng(base_seed() + 13 * t);
      std::uint64_t my_enq = 0, my_deq = 0;
      for (std::uint64_t i = 0; i < ops; ++i) {
        if (rng.chance(1, 2)) {
          my_enq += queue.enqueue(ctx, i);
        } else {
          my_deq += queue.dequeue(ctx).has_value();
        }
      }
      enq.fetch_add(my_enq);
      deq.fetch_add(my_deq);
    });
  }
  for (auto& th : pool) th.join();
  auto ctx = queue.make_ctx();
  std::uint64_t drained = 0;
  while (queue.dequeue(ctx).has_value()) ++drained;
  EXPECT_EQ(deq.load() + drained, enq.load());
  queue.flush(ctx);
  EXPECT_EQ(queue.free_blocks_quiescent(), 256u - 1u);
  check_retire_hwm(64 + 24 + 64);
}

}  // namespace
}  // namespace moir
