// LlscCounter across all substrates (typed) — the minimal consumer.
#include "nonblocking/counter.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/bounded_llsc.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

template <typename S>
class CounterTest : public ::testing::Test {
 protected:
  S substrate_{};
};

using Substrates =
    ::testing::Types<CasBackedLlsc<16>, RllBackedLlsc<16>,
                     ComposedBackedLlsc<16>, LockBackedLlsc<16>>;
TYPED_TEST_SUITE(CounterTest, Substrates);

TYPED_TEST(CounterTest, SequentialIncrementDecrement) {
  LlscCounter<TypeParam> c(this->substrate_, 10);
  auto ctx = this->substrate_.make_ctx();
  EXPECT_EQ(c.increment(ctx), 11u);
  EXPECT_EQ(c.increment(ctx, 5), 16u);
  EXPECT_EQ(c.decrement(ctx, 6), 10u);
  EXPECT_EQ(c.read(), 10u);
}

TYPED_TEST(CounterTest, FetchModifyReturnsOldAndNew) {
  LlscCounter<TypeParam> c(this->substrate_, 7);
  auto ctx = this->substrate_.make_ctx();
  const auto [old_v, new_v] =
      c.fetch_modify(ctx, [](std::uint64_t v) { return v * 3; });
  EXPECT_EQ(old_v, 7u);
  EXPECT_EQ(new_v, 21u);
}

TYPED_TEST(CounterTest, ValueWrapsAtSubstrateWidth) {
  LlscCounter<TypeParam> c(this->substrate_, this->substrate_.max_value());
  auto ctx = this->substrate_.make_ctx();
  EXPECT_EQ(c.increment(ctx), 0u);
}

TYPED_TEST(CounterTest, ParallelIncrementsAllLand) {
  LlscCounter<TypeParam> c(this->substrate_, 0);
  constexpr int kThreads = 4;
  constexpr int kEach = 10000;
  run_threads(kThreads, [&](std::size_t) {
    auto ctx = this->substrate_.make_ctx();
    for (int i = 0; i < kEach; ++i) c.increment(ctx);
  });
  EXPECT_EQ(c.read(), static_cast<std::uint64_t>(kThreads) * kEach);
}

// Figure 7 needs constructor arguments, so it gets a non-typed variant.
TEST(CounterOnBoundedLlsc, ParallelIncrementsAllLand) {
  constexpr unsigned kThreads = 4;
  BoundedLlsc<> s(kThreads, 1);
  LlscCounter<BoundedLlsc<>> c(s, 0);
  constexpr int kEach = 10000;
  run_threads(kThreads, [&](std::size_t) {
    auto ctx = s.make_ctx();
    for (int i = 0; i < kEach; ++i) c.increment(ctx);
  });
  EXPECT_EQ(c.read(), static_cast<std::uint64_t>(kThreads) * kEach);
}

}  // namespace
}  // namespace moir
