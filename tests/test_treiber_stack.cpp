// TreiberStack across substrates: LIFO semantics, pool recycling, and the
// multiset-conservation stress invariant.
#include "nonblocking/treiber_stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "core/bounded_llsc.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

template <typename S>
class StackTest : public ::testing::Test {
 protected:
  S substrate_{};
};

using Substrates =
    ::testing::Types<CasBackedLlsc<16>, RllBackedLlsc<16>,
                     ComposedBackedLlsc<16>, LockBackedLlsc<16>>;
TYPED_TEST_SUITE(StackTest, Substrates);

TYPED_TEST(StackTest, LifoOrder) {
  auto ctx = this->substrate_.make_ctx();
  TreiberStack<TypeParam> st(this->substrate_, 16, ctx);
  EXPECT_TRUE(st.empty());
  for (std::uint64_t v : {1, 2, 3}) EXPECT_TRUE(st.push(ctx, v));
  EXPECT_EQ(st.pop(ctx), 3u);
  EXPECT_EQ(st.pop(ctx), 2u);
  EXPECT_EQ(st.pop(ctx), 1u);
  EXPECT_EQ(st.pop(ctx), std::nullopt);
  EXPECT_TRUE(st.empty());
}

TYPED_TEST(StackTest, CapacityExhaustionAndRecycling) {
  auto ctx = this->substrate_.make_ctx();
  TreiberStack<TypeParam> st(this->substrate_, 4, ctx);
  for (std::uint64_t v = 0; v < 4; ++v) EXPECT_TRUE(st.push(ctx, v));
  EXPECT_FALSE(st.push(ctx, 99)) << "pool exhausted";
  EXPECT_EQ(st.pop(ctx), 3u);
  EXPECT_TRUE(st.push(ctx, 42)) << "freed node must be reusable";
  EXPECT_EQ(st.pop(ctx), 42u);
}

TYPED_TEST(StackTest, HeavyRecyclingSingleThread) {
  auto ctx = this->substrate_.make_ctx();
  TreiberStack<TypeParam> st(this->substrate_, 2, ctx);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(st.push(ctx, i & 0xfff));
    ASSERT_EQ(st.pop(ctx), i & 0xfff);
  }
}

// Conservation under concurrency: whatever was pushed and not popped must
// equal the final stack contents, as multisets. Every popped value must
// have been pushed. Tiny pool maximizes node recycling (= ABA pressure).
TYPED_TEST(StackTest, ConcurrentConservation) {
  auto& s = this->substrate_;
  auto init_ctx = s.make_ctx();
  TreiberStack<TypeParam> st(s, 8, init_ctx);
  constexpr int kThreads = 4;
  constexpr int kOpsEach = 8000;

  std::mutex m;
  std::map<std::uint64_t, std::int64_t> balance;  // pushed - popped per value

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    Xoshiro256 rng(tid * 101 + 7);
    std::map<std::uint64_t, std::int64_t> local;
    for (int i = 0; i < kOpsEach; ++i) {
      if (rng.chance(1, 2)) {
        const std::uint64_t v = (tid << 12) | (i & 0xfff);
        if (st.push(ctx, v)) local[v] += 1;
      } else {
        if (const auto v = st.pop(ctx)) local[*v] -= 1;
      }
    }
    std::lock_guard<std::mutex> g(m);
    for (const auto& [v, d] : local) balance[v] += d;
  });

  auto ctx = s.make_ctx();
  while (const auto v = st.pop(ctx)) balance[*v] -= 1;
  for (const auto& [v, d] : balance) {
    EXPECT_EQ(d, 0) << "value " << v << " lost or duplicated";
  }
}

// Figure 7 variant with bounded tags: same conservation invariant while
// tags recycle constantly.
TEST(StackOnBoundedLlsc, ConcurrentConservation) {
  constexpr unsigned kThreads = 4;
  BoundedLlsc<> s(kThreads + 2, 1);
  auto init_ctx = s.make_ctx();
  TreiberStack<BoundedLlsc<>> st(s, 8, init_ctx);
  std::atomic<std::int64_t> net{0};

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    Xoshiro256 rng(tid + 1);
    std::int64_t local = 0;
    for (int i = 0; i < 5000; ++i) {
      if (rng.chance(1, 2)) {
        local += st.push(ctx, 1);
      } else {
        local -= st.pop(ctx).has_value();
      }
    }
    net.fetch_add(local);
  });

  auto ctx = s.make_ctx();
  std::int64_t remaining = 0;
  while (st.pop(ctx)) ++remaining;
  EXPECT_EQ(remaining, net.load());
}

}  // namespace
}  // namespace moir
