#include "core/process_registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/thread_utils.hpp"

namespace moir {
namespace {

TEST(ProcessRegistry, DenseIds) {
  ProcessRegistry r(3);
  EXPECT_EQ(r.register_process(), 0u);
  EXPECT_EQ(r.register_process(), 1u);
  EXPECT_EQ(r.register_process(), 2u);
  EXPECT_EQ(r.registered(), 3u);
}

TEST(ProcessRegistry, ConcurrentRegistrationIsRaceFree) {
  ProcessRegistry r(16);
  std::set<unsigned> ids;
  std::mutex m;
  run_threads(16, [&](std::size_t) {
    const unsigned id = r.register_process();
    std::lock_guard<std::mutex> g(m);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate pid " << id;
  });
  EXPECT_EQ(ids.size(), 16u);
}

TEST(ProcessRegistry, ThisProcessIdStableWithinThread) {
  ProcessRegistry r(4);
  const unsigned a = this_process_id(r);
  const unsigned b = this_process_id(r);
  EXPECT_EQ(a, b);
}

TEST(ProcessRegistry, ThisProcessIdRebindsAcrossRegistries) {
  ProcessRegistry r1(4), r2(4);
  const unsigned a = this_process_id(r1);
  const unsigned b = this_process_id(r2);
  // Both are fresh registrations in their own registry.
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0u);
}


TEST(ProcessRegistry, ReleaseRecyclesIds) {
  ProcessRegistry r(2);
  const unsigned a = r.register_process();
  const unsigned b = r.register_process();
  EXPECT_NE(a, b);
  // The pool is full; releasing makes the id available again, so the pool
  // bounds CONCURRENT registrations, not the lifetime count.
  r.release_process(a);
  EXPECT_EQ(r.register_process(), a);
  r.release_process(b);
  r.release_process(a);
  const unsigned c = r.register_process();
  const unsigned d = r.register_process();
  EXPECT_NE(c, d);
  EXPECT_TRUE((c == a || c == b) && (d == a || d == b));
}

TEST(ProcessRegistry, RecyclingSurvivesManyGenerations) {
  // Far more lifetime registrations than the pool size: every generation
  // must see a valid dense id. The versioned free-list head defeats ABA.
  ProcessRegistry r(4);
  for (int gen = 0; gen < 1000; ++gen) {
    unsigned ids[4];
    for (auto& id : ids) {
      id = r.register_process();
      EXPECT_LT(id, 4u);
    }
    EXPECT_NE(ids[0], ids[1]);
    for (const unsigned id : ids) r.release_process(id);
  }
}

TEST(ProcessRegistry, LeaseReuseAfterThreadExit) {
  // A short-lived thread that releases its lease on the way out leaves
  // the pool as it found it: a thread born after the join leases the SAME
  // dense id, so arrays sized for concurrent holders survive unbounded
  // thread churn (the explorer's fresh-threads-per-trial pattern, and the
  // service's session recycling).
  ProcessRegistry r(2);
  const unsigned keeper = r.register_process();  // pin one id for contrast
  unsigned first = 99, second = 99;
  std::thread t1([&] {
    first = r.register_process();
    r.release_process(first);  // released at thread exit
  });
  t1.join();
  std::thread t2([&] {
    second = r.register_process();
    r.release_process(second);
  });
  t2.join();
  EXPECT_EQ(first, second) << "the released lease was not reused";
  EXPECT_NE(first, keeper);
  EXPECT_EQ(r.registered(), 2u)
      << "reuse must come from the free list, not a fresh mint";
}

TEST(ProcessRegistry, ConcurrentRegisterReleaseChurn) {
  ProcessRegistry r(8);
  run_threads(8, [&](std::size_t) {
    for (int i = 0; i < 500; ++i) {
      const unsigned id = r.register_process();
      EXPECT_LT(id, 8u);
      r.release_process(id);
    }
  });
}

}  // namespace
}  // namespace moir
