#include "core/process_registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/thread_utils.hpp"

namespace moir {
namespace {

TEST(ProcessRegistry, DenseIds) {
  ProcessRegistry r(3);
  EXPECT_EQ(r.register_process(), 0u);
  EXPECT_EQ(r.register_process(), 1u);
  EXPECT_EQ(r.register_process(), 2u);
  EXPECT_EQ(r.registered(), 3u);
}

TEST(ProcessRegistry, ConcurrentRegistrationIsRaceFree) {
  ProcessRegistry r(16);
  std::set<unsigned> ids;
  std::mutex m;
  run_threads(16, [&](std::size_t) {
    const unsigned id = r.register_process();
    std::lock_guard<std::mutex> g(m);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate pid " << id;
  });
  EXPECT_EQ(ids.size(), 16u);
}

TEST(ProcessRegistry, ThisProcessIdStableWithinThread) {
  ProcessRegistry r(4);
  const unsigned a = this_process_id(r);
  const unsigned b = this_process_id(r);
  EXPECT_EQ(a, b);
}

TEST(ProcessRegistry, ThisProcessIdRebindsAcrossRegistries) {
  ProcessRegistry r1(4), r2(4);
  const unsigned a = this_process_id(r1);
  const unsigned b = this_process_id(r2);
  // Both are fresh registrations in their own registry.
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0u);
}

}  // namespace
}  // namespace moir
