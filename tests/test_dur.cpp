// Durable LL/SC over simulated pmem (figdur) + dynamic membership:
// pmem barrier semantics (capture-at-commit), substrate conformance,
// concurrent counters with join/leave churn, descriptor conservation
// through crash recovery, exhaustive crash-inject DFS + PCT durable-
// linearizability checks, the missing-persist negative control (DFS and
// PCT, with schedule replay), DynamicRegistry aliasing storms, and the
// elastic worker pool growing/shrinking under offered load.
#include "dur/dur_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/dynamic_registry.hpp"
#include "core/llsc_traits.hpp"
#include "dur/pmem.hpp"
#include "reclaim/epoch.hpp"
#include "sim/crash.hpp"
#include "sim/explore.hpp"
#include "sim/schedule.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "util/env.hpp"
#include "verify/durable.hpp"
#include "verify/history.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using testing::ExploreOptions;
using testing::Schedule;
using testing::ScheduleExplorer;
using testing::with_crash;

using Dur = dur::DurLlsc<>;
using DurBroken = dur::DurLlscNoPersist<>;

static_assert(SmallLlscSubstrate<dur::DurLlsc<>>);
static_assert(SmallLlscSubstrate<dur::DurLlsc<16>>);
static_assert(SmallLlscSubstrate<dur::DurLlscNoPersist<>>);

// ---------------------------------------------------------------------
// Simulated-pmem semantics: the model the barrier proofs lean on.
// ---------------------------------------------------------------------
TEST(Pmem, FlushAloneCommitsNothing) {
  dur::PmemDomain d;
  dur::DurWord w(7);
  d.attach(w);
  dur::PmemDomain::ThreadCtx ctx(d);
  w.store(8);
  d.flush(ctx, w);
  EXPECT_EQ(w.load(), 8u);
  EXPECT_EQ(w.durable(), 7u) << "flush without fence must not commit";
  d.fence(ctx);
  EXPECT_EQ(w.durable(), 8u);
  d.fence(ctx);  // empty fence: no-op
  EXPECT_EQ(w.durable(), 8u);
}

// Write-backs write current line content: a store between flush and fence
// is what becomes durable (durable_ never moves backward to a stale value).
TEST(Pmem, FenceCapturesAtCommitTime) {
  dur::PmemDomain d;
  dur::DurWord w(0);
  d.attach(w);
  dur::PmemDomain::ThreadCtx ctx(d);
  w.store(1);
  d.flush(ctx, w);
  w.store(2);
  d.fence(ctx);
  EXPECT_EQ(w.durable(), 2u) << "fence must commit the value at commit time";
}

TEST(Pmem, PersistAndSnapshotRestoreRoundTrip) {
  dur::PmemDomain d;
  dur::DurWord a(1), b(2);
  d.attach(a);
  d.attach(b);
  a.store(10);
  d.persist(a);
  b.store(20);  // volatile only: a crash loses it
  const auto image = d.snapshot();
  ASSERT_EQ(image.size(), 2u);
  EXPECT_EQ(image[0], 10u);
  EXPECT_EQ(image[1], 2u);

  // "Recovered machine": same attach order, image loaded into both copies.
  dur::PmemDomain d2;
  dur::DurWord a2(0), b2(0);
  d2.attach(a2);
  d2.attach(b2);
  d2.restore(image);
  EXPECT_EQ(a2.load(), 10u);
  EXPECT_EQ(a2.durable(), 10u);
  EXPECT_EQ(b2.load(), 2u);
}

TEST(Pmem, BarrierCountersTick) {
  stats::set_counting(true);
  dur::PmemDomain d;
  dur::DurWord w(0);
  d.attach(w);
  dur::PmemDomain::ThreadCtx ctx(d);
  const stats::Snapshot before = stats::snapshot();
  w.store(1);
  d.flush(ctx, w);
  d.fence(ctx);
  w.store(2);
  d.persist(w);
  if (stats::kCompiledIn) {
    const stats::Snapshot delta = stats::snapshot() - before;
    EXPECT_EQ(delta[stats::Id::kDurFlush], 2u);
    EXPECT_EQ(delta[stats::Id::kDurFence], 2u);
  }
}

// ---------------------------------------------------------------------
// figdur conformance: the same bodies as the figbw suite. Note the
// constructor shape: (k, Config) — membership is dynamic, there is no N.
// ---------------------------------------------------------------------
TEST(DurLlsc, InitAndRead) {
  Dur s(2);
  Dur::Var var;
  s.init_var(var, 37);
  EXPECT_EQ(s.read(var), 37u);
}

TEST(DurLlsc, LlVlScRoundTrip) {
  Dur s(2);
  Dur::Var var;
  s.init_var(var, 5);
  auto ctx = s.make_ctx();
  Dur::Keep keep;
  EXPECT_EQ(s.ll(ctx, var, keep), 5u);
  EXPECT_TRUE(s.vl(ctx, var, keep));
  EXPECT_TRUE(s.sc(ctx, var, keep, 6));
  EXPECT_EQ(s.read(var), 6u);
}

TEST(DurLlsc, ScFailsAfterInterferingSc) {
  Dur s(2);
  Dur::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  Dur::Keep mine, other;
  s.ll(ctx, var, mine);
  s.ll(ctx, var, other);
  EXPECT_TRUE(s.sc(ctx, var, other, 2));
  EXPECT_FALSE(s.sc(ctx, var, mine, 3));
  EXPECT_FALSE(s.vl(ctx, var, mine));
  EXPECT_EQ(s.read(var), 2u);
}

TEST(DurLlsc, ClEndsASequence) {
  Dur s(2);
  Dur::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  for (int i = 0; i < 100; ++i) {
    Dur::Keep keep;
    s.ll(ctx, var, keep);
    s.cl(ctx, keep);
  }
  Dur::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, 2));
}

TEST(DurLlsc, FullWidthValues) {
  Dur s(2);
  EXPECT_EQ(s.max_value(), ~std::uint64_t{0});
  Dur::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  Dur::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, s.max_value()));
  EXPECT_EQ(s.read(var), s.max_value());
}

TEST(DurLlsc, ReInitVarReusesDescriptor) {
  Dur s(1, {.reserve = 2, .chunk = 1, .max_members = 2});
  Dur::Var var;
  s.init_var(var, 3);
  s.init_var(var, 4);
  s.init_var(var, 5);
  EXPECT_EQ(s.read(var), 5u);
}

TEST(DurLlsc, DetectsValueRestorationAba) {
  Dur s(2);
  Dur::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  Dur::Keep victim, k;
  s.ll(ctx, var, victim);
  s.ll(ctx, var, k);
  ASSERT_TRUE(s.sc(ctx, var, k, 2));
  s.ll(ctx, var, k);
  ASSERT_TRUE(s.sc(ctx, var, k, 1));  // value restored: ABA
  EXPECT_FALSE(s.sc(ctx, var, victim, 9));
  EXPECT_EQ(s.read(var), 1u);
}

// Every completed SC ends with the var's durable word covering its install
// (P2), so after any quiescent point a "power cut now" image recovers to
// exactly the current value — the per-op durability the barriers buy.
TEST(DurLlsc, CompletedScIsImmediatelyDurable) {
  stats::set_counting(true);
  const Dur::Config cfg{.reserve = 2, .chunk = 2, .scan_threshold = 4,
                        .max_members = 2};
  Dur s(1, cfg);
  Dur::Var var;
  s.init_var(var, 0);
  const stats::Snapshot before = stats::snapshot();
  {
    auto ctx = s.make_ctx();
    for (int i = 0; i < 10; ++i) {
      Dur::Keep keep;
      const std::uint64_t v = s.ll(ctx, var, keep);
      ASSERT_TRUE(s.sc(ctx, var, keep, v + 1));

      Dur fresh(1, cfg);
      Dur::Var fvar;
      fresh.init_var(fvar, 0);
      fresh.restore_and_recover(s.snapshot());
      EXPECT_EQ(fresh.read(fvar), v + 1)
          << "crash image after a completed SC lost its effect";
    }
  }
  if (stats::kCompiledIn) {
    const stats::Snapshot delta = stats::snapshot() - before;
    EXPECT_GT(delta[stats::Id::kDurFlush], 0u);
    EXPECT_GT(delta[stats::Id::kDurFence], 0u);
    EXPECT_EQ(delta[stats::Id::kDurRecover], 10u);
  }
}

TEST(DurLlsc, ConcurrentCounterInvariant) {
  Dur s(4, {.max_members = 8});
  Dur::Var var;
  s.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  constexpr int kThreads = 4;
  constexpr int kAttempts = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      auto ctx = s.make_ctx();  // joins the dynamic membership
      std::uint64_t local = 0;
      for (int i = 0; i < kAttempts; ++i) {
        Dur::Keep keep;
        const auto v = s.ll(ctx, var, keep);
        local += s.sc(ctx, var, keep, v + 1);
      }
      successes.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(s.read(var), successes.load());
  EXPECT_EQ(s.registry().active(), 0u);
}

// Descriptor conservation through heavy recycling AND through a crash:
// recovery rebuilds the free list from the durable roots, so descriptors
// stranded in (volatile) limbo at the crash return to the pool.
TEST(DurLlsc, RecoveryConservesDescriptors) {
  stats::set_counting(true);
  const Dur::Config cfg{.reserve = 4, .chunk = 2, .scan_threshold = 3,
                        .max_members = 2};
  Dur s(2, cfg);
  Dur::Var var;
  s.init_var(var, 0);
  const stats::Snapshot before = stats::snapshot();
  {
    auto ctx = s.make_ctx();
    for (int i = 0; i < 200; ++i) {
      Dur::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      ASSERT_TRUE(s.sc(ctx, var, keep, v + 1));
    }
  }
  EXPECT_EQ(s.read(var), 200u);
  if (stats::kCompiledIn) {
    const stats::Snapshot delta = stats::snapshot() - before;
    EXPECT_GT(delta[stats::Id::kBwAllocReuse], 0u)
        << "200 SCs in a 4-descriptor reserve never recycled";
    EXPECT_EQ(delta[stats::Id::kScSuccess], 200u);
  }
  EXPECT_EQ(s.pool_free_quiescent() + s.orphans_quiescent() + 1,
            s.pool_capacity())
      << "descriptors leaked through retire/scan";

  // Crash and recover on a fresh instance: ONE descriptor (the installed
  // one) is live; everything else — including anything that was sitting in
  // limbo or on the orphan stack at the crash — is back in the pool.
  Dur fresh(2, cfg);
  Dur::Var fvar;
  fresh.init_var(fvar, 0);
  fresh.restore_and_recover(s.snapshot());
  EXPECT_EQ(fresh.read(fvar), 200u);
  EXPECT_EQ(fresh.pool_free_quiescent() + 1, fresh.pool_capacity())
      << "recovery leaked descriptors that died with the crash";

  // And the recovered instance is fully operational.
  auto ctx = fresh.make_ctx();
  Dur::Keep keep;
  EXPECT_EQ(fresh.ll(ctx, fvar, keep), 200u);
  EXPECT_TRUE(fresh.sc(ctx, fvar, keep, 201));
  EXPECT_EQ(fresh.read(fvar), 201u);
}

// ---------------------------------------------------------------------
// Crash-inject DFS: one writer's SC (its LL pre-opened quiescently, so
// the tree is exactly the durability-critical window: P1, install, P2),
// one context-free reader exercising the conditional P3, and a crash
// thread whose single step the explorer places at every schedule point.
// Every (interleaving, crash point) pair must be durably linearizable:
// the recovered value explained by the completed ops plus some subset of
// the in-flight ones. Plain DFS — the history clock rides between yield
// points, so sleep sets would prune real-time edges (see
// test_bw_llsc.cpp). The full LL+SC tree (~300k schedules) lives in the
// explore shard (test_exploration_deep.cpp).
// ---------------------------------------------------------------------
// Tiny on purpose: the whole pool is constructed TWICE per trial (the
// trial's instance and the recovered one), so capacity is the constant
// factor on every DFS node.
constexpr Dur::Config kCrashCfg{.reserve = 2, .chunk = 1,
                                .scan_threshold = 2, .max_members = 1};

ScheduleExplorer::Trial make_crash_trial() {
  struct Shared {
    Dur s{1, kCrashCfg};
    Dur::Var var;
    std::vector<Dur::ThreadCtx> ctxs;
    HistoryRecorder rec{2};
    std::uint64_t crash_ts = 0;
    std::vector<std::uint64_t> image;
  };
  auto sh = std::make_shared<Shared>();
  sh->s.init_var(sh->var, 0);
  sh->ctxs.push_back(sh->s.make_ctx());

  ScheduleExplorer::Trial trial;
  // The LL runs here, before the scheduler takes over: it completes
  // before every other op and before the crash, which the recorded
  // timestamps encode, so the checker treats it as mandatory history.
  auto keep = std::make_shared<Dur::Keep>();
  {
    const auto inv = sh->rec.now();
    const std::uint64_t v = sh->s.ll(sh->ctxs[0], sh->var, *keep);
    sh->rec.add(0, 0, OpKind::kLl, 0, v, inv);
  }
  trial.bodies.push_back([sh, keep] {  // writer: the SC half only
    const auto inv = sh->rec.now();
    const bool ok = sh->s.sc(sh->ctxs[0], sh->var, *keep, 1);
    sh->rec.add(0, 0, OpKind::kSc, 1, ok, inv);
  });
  trial.bodies.push_back([sh] {  // context-free reader
    const auto inv = sh->rec.now();
    const std::uint64_t v = sh->s.read(sh->var);
    sh->rec.add(1, 1, OpKind::kRead, 0, v, inv);
  });
  trial = with_crash(std::move(trial), [sh] {
    sh->crash_ts = sh->rec.now();
    sh->image = sh->s.snapshot();
  });
  trial.check = [sh] {
    // Recovered machine: identical construction, image restored, recovery
    // run, then one probe read of the (only) variable.
    Dur fresh(1, kCrashCfg);
    Dur::Var fvar;
    fresh.init_var(fvar, 0);
    fresh.restore_and_recover(sh->image);
    Operation probe;
    probe.proc = 2;
    probe.kind = OpKind::kRead;
    probe.ret = fresh.read(fvar);
    DurableLinearizabilityChecker<LlscRegisterSpec> checker;
    return checker.check(sh->rec.collect(), sh->crash_ts, {probe},
                         LlscRegisterSpec::State{});
  };
  return trial;
}

TEST(Exploration, DurCrashRecoverExhaustive) {
  const auto r = ScheduleExplorer::explore(make_crash_trial, 400000);
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-durably-linearizable figdur recovery under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 10u);
}

// PCT over a bigger crash config DFS couldn't exhaust: two writers doing
// two increments each, crash placement sampled like any preemption.
constexpr Dur::Config kPctCrashCfg{.reserve = 2, .chunk = 2,
                                   .scan_threshold = 4, .max_members = 2};

TEST(PctSmoke, DurCrashRecover) {
  auto make_trial = [] {
    struct Shared {
      Dur s{1, kPctCrashCfg};
      Dur::Var var;
      std::vector<Dur::ThreadCtx> ctxs;
      HistoryRecorder rec{2};
      std::uint64_t crash_ts = 0;
      std::vector<std::uint64_t> image;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.push_back(sh->s.make_ctx());
    sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    for (unsigned t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        for (int i = 0; i < 2; ++i) {
          Dur::Keep keep;
          auto inv = sh->rec.now();
          const std::uint64_t v = sh->s.ll(sh->ctxs[t], sh->var, keep);
          sh->rec.add(t, t, OpKind::kLl, 0, v, inv);
          inv = sh->rec.now();
          const bool ok = sh->s.sc(sh->ctxs[t], sh->var, keep, v + 1);
          sh->rec.add(t, t, OpKind::kSc, v + 1, ok, inv);
        }
      });
    }
    trial = with_crash(std::move(trial), [sh] {
      sh->crash_ts = sh->rec.now();
      sh->image = sh->s.snapshot();
    });
    trial.check = [sh] {
      Dur fresh(1, kPctCrashCfg);
      Dur::Var fvar;
      fresh.init_var(fvar, 0);
      fresh.restore_and_recover(sh->image);
      Operation probe;
      probe.proc = 2;
      probe.kind = OpKind::kRead;
      probe.ret = fresh.read(fvar);
      DurableLinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(), sh->crash_ts, {probe},
                           LlscRegisterSpec::State{});
    };
    return trial;
  };

  const testing::PctOptions opts{
      .runs = scaled_budget(60),
      .depth = 3,
      .change_range = 96,
      .seed = base_seed() + 23,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-durably-linearizable figdur recovery under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

// ---------------------------------------------------------------------
// Negative control (planted bug): DurLlscNoPersist elides P2 — a
// successful SC returns without persisting the variable word, so a crash
// scheduled right after the SC completes recovers a state missing a
// completed operation's effect. Both explorers must find it, and the
// ms1: schedule must replay it deterministically.
// ---------------------------------------------------------------------
constexpr DurBroken::Config kBrokenCfg{.reserve = 2, .chunk = 1,
                                       .scan_threshold = 2,
                                       .max_members = 1};

ScheduleExplorer::Trial make_missing_persist_trial() {
  struct Shared {
    DurBroken s{1, kBrokenCfg};
    DurBroken::Var var;
    std::vector<DurBroken::ThreadCtx> ctxs;
    HistoryRecorder rec{1};
    std::uint64_t crash_ts = 0;
    std::vector<std::uint64_t> image;
  };
  auto sh = std::make_shared<Shared>();
  sh->s.init_var(sh->var, 0);
  sh->ctxs.push_back(sh->s.make_ctx());

  ScheduleExplorer::Trial trial;
  trial.bodies.push_back([sh] {
    DurBroken::Keep keep;
    auto inv = sh->rec.now();
    const std::uint64_t v = sh->s.ll(sh->ctxs[0], sh->var, keep);
    sh->rec.add(0, 0, OpKind::kLl, 0, v, inv);
    inv = sh->rec.now();
    const bool ok = sh->s.sc(sh->ctxs[0], sh->var, keep, v + 1);
    sh->rec.add(0, 0, OpKind::kSc, v + 1, ok, inv);
  });
  trial = with_crash(std::move(trial), [sh] {
    sh->crash_ts = sh->rec.now();
    sh->image = sh->s.snapshot();
  });
  trial.check = [sh] {
    DurBroken fresh(1, kBrokenCfg);
    DurBroken::Var fvar;
    fresh.init_var(fvar, 0);
    fresh.restore_and_recover(sh->image);
    Operation probe;
    probe.proc = 2;
    probe.kind = OpKind::kRead;
    probe.ret = fresh.read(fvar);
    DurableLinearizabilityChecker<LlscRegisterSpec> checker;
    return checker.check(sh->rec.collect(), sh->crash_ts, {probe},
                         LlscRegisterSpec::State{});
  };
  return trial;
}

TEST(NegativeControl, DfsCatchesMissingPersist) {
  const auto r = ScheduleExplorer::explore(make_missing_persist_trial, 400000);
  EXPECT_TRUE(r.violation_found)
      << "DFS failed to find the missing-P2 durability hole";
}

TEST(NegativeControl, PctCatchesMissingPersist) {
  const testing::PctOptions opts{
      .runs = scaled_budget(800),
      .depth = 3,
      .change_range = 32,
      .seed = base_seed() + 29,
  };
  const auto r =
      ScheduleExplorer::pct_explore(make_missing_persist_trial, opts);
  ASSERT_TRUE(r.violation_found)
      << "PCT failed to catch the elided persist barrier (positive control "
         "for the P2 placement)";

  const auto parsed = Schedule::parse(r.schedule_string());
  ASSERT_TRUE(parsed.has_value()) << r.schedule_string();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(
        ScheduleExplorer::replay(make_missing_persist_trial, *parsed))
        << "schedule " << r.schedule_string() << " did not replay the bug";
  }
}

// ---------------------------------------------------------------------
// DynamicRegistry: join/leave storms. Each leased id must be exclusive
// (no aliasing) and ids stay dense (< max_members; high_water tracks the
// peak, not the ceiling).
// ---------------------------------------------------------------------
TEST(RegistryChurn, JoinLeaveStormNoAliasing) {
  stats::set_counting(true);
  constexpr unsigned kCeiling = 64;
  constexpr int kThreads = 8;
  DynamicRegistry reg(kCeiling);
  std::vector<std::atomic<int>> claims(kCeiling);
  for (auto& c : claims) c.store(0);
  std::atomic<std::uint64_t> aliased{0};
  const stats::Snapshot before = stats::snapshot();
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < scaled_budget(4000); ++i) {
        const unsigned id = reg.join();
        ASSERT_LT(id, kCeiling);
        if (claims[id].fetch_add(1, std::memory_order_acq_rel) != 0) {
          aliased.fetch_add(1);  // two members holding one lease
        }
        claims[id].fetch_sub(1, std::memory_order_acq_rel);
        reg.leave(id);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(aliased.load(), 0u) << "a member id was leased twice at once";
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_GE(reg.high_water(), 1u);
  EXPECT_LE(reg.high_water(), static_cast<unsigned>(kThreads))
      << "high_water exceeded the true concurrency";
  if (stats::kCompiledIn) {
    const stats::Snapshot delta = stats::snapshot() - before;
    EXPECT_EQ(delta[stats::Id::kRegJoin], delta[stats::Id::kRegLeave]);
    EXPECT_GE(delta[stats::Id::kRegJoin],
              static_cast<std::uint64_t>(kThreads) * scaled_budget(4000));
  }
}

// Membership churn concurrent with figdur traffic: short-lived contexts
// join, increment a few times, and leave (parking limbo on the orphan
// stack) while a stable member hammers the same variable. No update may
// be lost and no descriptor leaked.
TEST(RegistryChurn, FigdurTrafficDuringChurn) {
  Dur s(1, {.reserve = 2, .chunk = 4, .scan_threshold = 0, .max_members = 16});
  Dur::Var var;
  s.init_var(var, 0);
  // Held for the whole episode: every churner's join overlaps this
  // membership, so high_water >= 2 is deterministic, not scheduling luck.
  std::optional<Dur::ThreadCtx> anchor(s.make_ctx());
  std::atomic<std::uint64_t> successes{0};
  std::atomic<bool> stop{false};
  std::thread stable([&] {
    auto ctx = s.make_ctx();
    std::uint64_t local = 0;
    for (std::uint64_t i = 0; i < scaled_budget(20000); ++i) {
      Dur::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      local += s.sc(ctx, var, keep, v + 1);
    }
    successes.fetch_add(local);
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&] {
      std::uint64_t local = 0;
      do {
        auto ctx = s.make_ctx();  // join under load
        for (int i = 0; i < 4; ++i) {
          Dur::Keep keep;
          const auto v = s.ll(ctx, var, keep);
          local += s.sc(ctx, var, keep, v + 1);
        }
        // ctx dtor: leave under load, limbo -> orphans
      } while (!stop.load(std::memory_order_acquire));
      successes.fetch_add(local);
    });
  }
  stable.join();
  for (auto& th : churners) th.join();
  anchor.reset();  // return the anchor lease before the quiescent checks
  EXPECT_EQ(s.read(var), successes.load()) << "updates lost across churn";
  EXPECT_EQ(s.registry().active(), 0u);
  EXPECT_GE(s.registry().high_water(), 2u);
  EXPECT_EQ(s.pool_free_quiescent() + s.orphans_quiescent() + 1,
            s.pool_capacity())
      << "descriptors leaked through departing members";
}

// ---------------------------------------------------------------------
// Elastic worker pool on the figdur-backed service: the pool starts at
// the floor, grows toward the ceiling under sustained offered load
// (every completed request checksum-verified — growth must not lose or
// corrupt completions), and shrinks back to the floor once idle.
// ---------------------------------------------------------------------
TEST(DurElasticService, GrowsUnderLoadThenShrinksToFloor) {
  using Svc = svc::KvService<Dur, reclaim::EpochReclaimer>;
  // k = 4: the dispatcher's MS queue holds three LL-SC sequences open at
  // once (head, tail, next), plus one of slack.
  Dur sub(4);
  Svc svc(sub, {.queues = 2,
                .workers = 1,
                .max_workers = 3,
                .grow_streak = 2,
                .shrink_idle = 512,
                .batch = 1,  // any productive pump is a "full" batch
                .max_sessions = 4,
                .tickets_per_session = 16,
                .use_rings = true,
                .map = {.shards = 2, .buckets_per_shard = 8,
                        .capacity_per_shard = 256}});
  ASSERT_EQ(svc.live_workers(), 1u);
  ASSERT_EQ(svc.worker_ceiling(), 3u);

  constexpr int kClients = 3;
  const std::uint64_t kOpsPerClient = scaled_budget(2000);
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto sess = svc.connect();
      std::uint64_t local_bad = 0;
      // Submit-until-admitted, wait every ticket: zero lost completions by
      // construction; values are checksummed so a misrouted or clobbered
      // completion is visible.
      auto do_op = [&](svc::Op op, std::uint64_t k, std::uint64_t v) {
        for (;;) {
          const auto t = svc.submit(sess, op, k, v);
          if (!t.has_value()) continue;  // window full: retry
          const auto r = svc.wait(sess, *t);
          if (r.status == svc::Status::kOverload) continue;  // shed: retry
          return r;
        }
      };
      for (std::uint64_t i = 0; i < kOpsPerClient; ++i) {
        const std::uint64_t key = (i % 16) * kClients + c;  // per-client keys
        const std::uint64_t val = key * 7 + i;
        do_op(svc::Op::kUpsert, key, val);
        const auto hit = do_op(svc::Op::kFind, key, 0);
        if (hit.status != svc::Status::kOk || hit.value != val) ++local_bad;
      }
      bad.fetch_add(local_bad);
    });
  }
  for (auto& th : clients) th.join();

  EXPECT_EQ(bad.load(), 0u) << "lost or corrupted completions during growth";
  EXPECT_GE(svc.worker_registry().high_water(), 2u)
      << "sustained full batches never grew the pool";
  EXPECT_LE(svc.live_workers(), svc.worker_ceiling());

  // Idle now: above-floor workers must retire back to the floor.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (svc.live_workers() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(svc.live_workers(), 1u) << "pool failed to shrink to the floor";

  // And the service still works at the floor.
  auto sess = svc.connect();
  const auto t = svc.submit(sess, svc::Op::kFind, 0, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(sess, *t).status, svc::Status::kOk);
}

}  // namespace
}  // namespace moir
