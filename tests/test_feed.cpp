// Change-feed subsystem: seqlock broadcast ring unit tests, ChangeFeed
// filter/resync semantics, the FeedChecker itself, service-level
// subscribe/poll round trips, exhaustive DFS + PCT feed-coherence under
// controlled schedules (including the SkipValidation planted torn-read
// bug, which both explorers must catch), and a real-thread torture run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "feed/broadcast_ring.hpp"
#include "feed/feed.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/epoch.hpp"
#include "sim/explore.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "util/env.hpp"
#include "verify/feed.hpp"

namespace moir {
namespace {

using reclaim::EpochReclaimer;
using testing::FeedChecker;
using testing::PctOptions;
using testing::ScheduleExplorer;
using Sub = CasBackedLlsc<16>;
using Svc = svc::KvService<Sub, EpochReclaimer>;
using svc::Op;
using svc::Status;

// Same idiom as test_service.cpp: live counters for a scope, restored on
// exit; every delta assertion is additionally guarded on kCompiledIn.
class CountingScope {
 public:
  CountingScope() : was_(stats::counting_enabled()) {
    stats::set_counting(true);
  }
  ~CountingScope() { stats::set_counting(was_); }

 private:
  bool was_;
};

std::uint64_t no_resync(std::uint64_t) { return 0; }

// ---------------------------------------------------------------------
// BroadcastRing.
// ---------------------------------------------------------------------

TEST(BroadcastRing, PublishReadRoundTrip) {
  CountingScope counting;
  const auto before = stats::snapshot();
  feed::BroadcastRing<4> ring;
  EXPECT_EQ(ring.published(), 0u);

  feed::Record rec;
  EXPECT_EQ(ring.read(0, rec), feed::ReadStatus::kNotReady);

  EXPECT_EQ(ring.publish(10, 101), 0u);
  EXPECT_EQ(ring.publish(11, 102), 1u);
  EXPECT_EQ(ring.published(), 2u);
  EXPECT_EQ(ring.lag(0), 2u);
  EXPECT_EQ(ring.lag(2), 0u);

  ASSERT_EQ(ring.read(0, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.key, 10u);
  EXPECT_EQ(rec.value, 101u);
  EXPECT_EQ(rec.version, 0u);
  ASSERT_EQ(ring.read(1, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.key, 11u);
  EXPECT_EQ(rec.version, 1u);
  EXPECT_EQ(ring.read(2, rec), feed::ReadStatus::kNotReady);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kFeedPublish], 2u);
    EXPECT_EQ(d[stats::Id::kFeedOverrun], 0u);
  }
}

TEST(BroadcastRing, MinimumCapacityOverrun) {
  CountingScope counting;
  const auto before = stats::snapshot();
  feed::BroadcastRing<2> ring;  // smallest legal ring
  ring.publish(1, 11);
  ring.publish(2, 12);
  ring.publish(3, 13);  // recycles slot 0

  feed::Record rec;
  EXPECT_EQ(ring.read(0, rec), feed::ReadStatus::kOverrun);
  ASSERT_EQ(ring.read(1, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.key, 2u);
  ASSERT_EQ(ring.read(2, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.key, 3u);
  EXPECT_EQ(rec.value, 13u);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kFeedOverrun], 1u);
  }
}

// The stamp carries the FULL sequence number, so a slot that has been
// lapped an exact multiple of the capacity still rejects the stale read —
// the classic ring-buffer ABA a modulo-stamp would alias.
TEST(BroadcastRing, StampRejectsExactLapAlias) {
  feed::BroadcastRing<2> ring;
  for (std::uint64_t i = 0; i < 10; ++i) ring.publish(i, 100 + i);
  feed::Record rec;
  // Sequences 0, 2, 4, 6 all mapped to slot 0; only the latest survives.
  for (const std::uint64_t seq : {0u, 2u, 4u, 6u}) {
    EXPECT_EQ(ring.read(seq, rec), feed::ReadStatus::kOverrun) << seq;
  }
  ASSERT_EQ(ring.read(8, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.key, 8u);
  ASSERT_EQ(ring.read(9, rec), feed::ReadStatus::kOk);
  EXPECT_EQ(rec.value, 109u);
}

// ---------------------------------------------------------------------
// ChangeFeed.
// ---------------------------------------------------------------------

TEST(ChangeFeed, KeyFilterDeliversOnlyWatchedKey) {
  CountingScope counting;
  const auto before = stats::snapshot();
  feed::ChangeFeed<8> feed(1, 2);
  const auto id = feed.subscribe(feed::Filter::kKey, 0, 5);
  ASSERT_TRUE(id.has_value());

  feed.publish(0, 5, 51);
  feed.publish(0, 6, 61);
  feed.publish(0, 5, 52);

  feed::Record recs[8];
  const auto pr = feed.poll(*id, recs, 8, no_resync);
  EXPECT_FALSE(pr.overrun);
  EXPECT_FALSE(pr.resynced);
  ASSERT_EQ(pr.delivered, 2u);
  EXPECT_EQ(recs[0].key, 5u);
  EXPECT_EQ(recs[0].value, 51u);
  EXPECT_EQ(recs[0].version, 0u);
  EXPECT_EQ(recs[1].value, 52u);
  EXPECT_EQ(recs[1].version, 2u);

  // Nothing new: an empty poll, not a repeat delivery.
  EXPECT_EQ(feed.poll(*id, recs, 8, no_resync).delivered, 0u);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kFeedPublish], 3u);
    EXPECT_EQ(d[stats::Id::kFeedDeliver], 2u);
    EXPECT_EQ(d[stats::Id::kFeedResync], 0u);
  }
}

TEST(ChangeFeed, ShardFilterDeliversEverything) {
  feed::ChangeFeed<8> feed(2, 2);
  const auto id = feed.subscribe(feed::Filter::kShard, 1);
  ASSERT_TRUE(id.has_value());

  feed.publish(1, 5, 51);
  feed.publish(0, 9, 91);  // other shard: never seen by this subscription
  feed.publish(1, 6, 61);

  feed::Record recs[8];
  const auto pr = feed.poll(*id, recs, 8, no_resync);
  ASSERT_EQ(pr.delivered, 2u);
  EXPECT_EQ(recs[0].key, 5u);
  EXPECT_EQ(recs[1].key, 6u);
}

TEST(ChangeFeed, SubscriberCeilingRefusedAndReleased) {
  feed::ChangeFeed<4> feed(1, 2);
  const auto a = feed.subscribe(feed::Filter::kKey, 0, 1);
  const auto b = feed.subscribe(feed::Filter::kShard, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(feed.active_subscribers(), 2u);
  EXPECT_FALSE(feed.subscribe(feed::Filter::kKey, 0, 2).has_value())
      << "lease ceiling must refuse, not assert";
  feed.unsubscribe(*a);
  EXPECT_EQ(feed.active_subscribers(), 1u);
  const auto c = feed.subscribe(feed::Filter::kKey, 0, 3);
  ASSERT_TRUE(c.has_value()) << "released lease must be reusable";
}

// A new subscription starts at published(): history before subscribe is
// the map's business, not the ring's.
TEST(ChangeFeed, SubscriptionStartsAtSubscribeTime) {
  feed::ChangeFeed<8> feed(1, 1);
  feed.publish(0, 5, 50);
  const auto id = feed.subscribe(feed::Filter::kKey, 0, 5);
  ASSERT_TRUE(id.has_value());
  feed::Record recs[4];
  EXPECT_EQ(feed.poll(*id, recs, 4, no_resync).delivered, 0u);
  feed.publish(0, 5, 51);
  const auto pr = feed.poll(*id, recs, 4, no_resync);
  ASSERT_EQ(pr.delivered, 1u);
  EXPECT_EQ(recs[0].value, 51u);
}

TEST(ChangeFeed, KeyOverrunResyncsFromMap) {
  CountingScope counting;
  const auto before = stats::snapshot();
  feed::ChangeFeed<4> feed(1, 1);
  const auto id = feed.subscribe(feed::Filter::kKey, 0, 7);
  ASSERT_TRUE(id.has_value());

  // Lap the 4-slot ring: 6 commits to the watched key.
  for (std::uint64_t v = 1; v <= 6; ++v) feed.publish(0, 7, v);

  std::uint64_t map_value = 6;  // what the authoritative map now holds
  feed::Record recs[8];
  const auto pr =
      feed.poll(*id, recs, 8, [&](std::uint64_t key) {
        EXPECT_EQ(key, 7u);
        return map_value;
      });
  EXPECT_TRUE(pr.overrun);
  EXPECT_TRUE(pr.resynced);
  ASSERT_EQ(pr.delivered, 1u) << "resync collapses the lost run into one "
                                 "latest-value record";
  EXPECT_EQ(recs[0].key, 7u);
  EXPECT_EQ(recs[0].value, 6u);
  EXPECT_TRUE(recs[0].version & feed::kResyncBit);
  EXPECT_EQ(recs[0].version & ~feed::kResyncBit, 6u)
      << "resync version = published() sampled before the map read";

  // Back in sync: the next commit arrives as a plain ring record.
  feed.publish(0, 7, 9);
  const auto pr2 = feed.poll(*id, recs, 8, no_resync);
  EXPECT_FALSE(pr2.overrun);
  ASSERT_EQ(pr2.delivered, 1u);
  EXPECT_EQ(recs[0].value, 9u);
  EXPECT_EQ(recs[0].version, 6u);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kFeedResync], 1u);
    EXPECT_GE(d[stats::Id::kFeedOverrun], 1u);
  }
}

TEST(ChangeFeed, ShardOverrunRebasesWithoutSyntheticRecord) {
  feed::ChangeFeed<4> feed(1, 1);
  const auto id = feed.subscribe(feed::Filter::kShard, 0);
  ASSERT_TRUE(id.has_value());
  for (std::uint64_t v = 1; v <= 6; ++v) feed.publish(0, v, v);

  feed::Record recs[8];
  const auto pr = feed.poll(*id, recs, 8, no_resync);
  EXPECT_TRUE(pr.overrun);
  EXPECT_TRUE(pr.resynced);
  // The cursor re-based to published(): records 2..5 are simply lost
  // (shard subscribers re-read the map themselves) and polling resumes.
  EXPECT_EQ(pr.delivered, 0u);
  feed.publish(0, 9, 99);
  const auto pr2 = feed.poll(*id, recs, 8, no_resync);
  ASSERT_EQ(pr2.delivered, 1u);
  EXPECT_EQ(recs[0].key, 9u);
}

// Records of other keys are consumed (cursor advances) but not
// delivered; a full ring of misses still completes within the scan
// budget and leaves the subscription positioned for the next match.
TEST(ChangeFeed, PollSkipsFilteredRecords) {
  feed::ChangeFeed<8> feed(1, 1);
  const auto id = feed.subscribe(feed::Filter::kKey, 0, 42);
  ASSERT_TRUE(id.has_value());
  for (std::uint64_t i = 0; i < 8; ++i) feed.publish(0, 1 + (i % 3), i + 1);
  feed::Record recs[4];
  auto pr = feed.poll(*id, recs, 4, no_resync);
  EXPECT_EQ(pr.delivered, 0u);
  EXPECT_FALSE(pr.overrun);
  feed.publish(0, 42, 7);
  pr = feed.poll(*id, recs, 4, no_resync);
  ASSERT_EQ(pr.delivered, 1u);
  EXPECT_EQ(recs[0].value, 7u);
}

// A key subscriber lapped before its key was ever written resyncs to
// "absent": one synthetic record with the wire-form 0.
TEST(ChangeFeed, LappedKeySubscriberResyncsToAbsent) {
  feed::ChangeFeed<8> feed(1, 1);
  const auto id = feed.subscribe(feed::Filter::kKey, 0, 42);
  ASSERT_TRUE(id.has_value());
  for (std::uint64_t i = 0; i < 100; ++i) feed.publish(0, 1 + (i % 3), i + 1);
  feed::Record recs[4];
  const auto pr = feed.poll(*id, recs, 4, no_resync);
  EXPECT_TRUE(pr.overrun);
  ASSERT_EQ(pr.delivered, 1u);
  EXPECT_EQ(recs[0].key, 42u);
  EXPECT_EQ(recs[0].value, 0u);
  EXPECT_TRUE(recs[0].version & feed::kResyncBit);
  EXPECT_EQ(recs[0].version & ~feed::kResyncBit, 100u);
}

// ---------------------------------------------------------------------
// FeedChecker.
// ---------------------------------------------------------------------

TEST(FeedChecker, AcceptsValidStreamAndConvergence) {
  FeedChecker ck;
  ck.commit(1, 11);
  ck.commit(1, 12);
  ck.commit(2, 21);
  ck.commit(1, 13);
  ck.set_final(1, 13);
  ck.set_final(2, 21);

  // A lossy-but-coherent stream: (1,11) was dropped by an overrun, the
  // resync jumped straight to 13; key 2 arrived normally.
  const std::vector<feed::Record> stream = {
      {1, 12, 1},
      {2, 21, 2},
      {1, 13, feed::kResyncBit | 4},
  };
  std::string diag;
  EXPECT_TRUE(ck.check_stream(stream, &diag)) << diag;
  EXPECT_TRUE(ck.check_converged(stream, &diag)) << diag;
}

TEST(FeedChecker, RejectsInventedValue) {
  FeedChecker ck;
  ck.commit(1, 11);
  const std::vector<feed::Record> stream = {{1, 99, 0}};
  std::string diag;
  EXPECT_FALSE(ck.check_stream(stream, &diag));
  EXPECT_NE(diag.find("never committed"), std::string::npos) << diag;
}

TEST(FeedChecker, RejectsTornKeyValuePair) {
  FeedChecker ck;
  ck.commit(1, 11);
  ck.commit(2, 22);
  // The planted bug's signature: key of one commit, value of another.
  const std::vector<feed::Record> stream = {{1, 22, 0}};
  std::string diag;
  EXPECT_FALSE(ck.check_stream(stream, &diag));
}

TEST(FeedChecker, RejectsVersionRegressionAndReplay) {
  FeedChecker ck;
  ck.commit(1, 11);
  ck.commit(1, 12);
  std::string diag;
  const std::vector<feed::Record> regress = {{1, 12, 3}, {1, 11, 1}};
  EXPECT_FALSE(ck.check_stream(regress, &diag));
  EXPECT_NE(diag.find("version"), std::string::npos) << diag;
  // Same version delivered twice (a re-delivered ring record).
  const std::vector<feed::Record> replay = {{1, 11, 0}, {1, 11, 0}};
  EXPECT_FALSE(ck.check_stream(replay, &diag));
}

TEST(FeedChecker, RejectsStaleResyncAndDivergence) {
  FeedChecker ck;
  ck.commit(1, 11);
  ck.commit(1, 12);
  ck.set_final(1, 12);
  std::string diag;
  // A resync may repeat the last delivered value but never an older one.
  const std::vector<feed::Record> stale = {
      {1, 12, 1}, {1, 11, feed::kResyncBit | 2}};
  EXPECT_FALSE(ck.check_stream(stale, &diag));
  const std::vector<feed::Record> repeat = {
      {1, 12, 1}, {1, 12, feed::kResyncBit | 2}};
  EXPECT_TRUE(ck.check_stream(repeat, &diag)) << diag;
  const std::vector<feed::Record> diverged = {{1, 11, 0}};
  EXPECT_FALSE(ck.check_converged(diverged, &diag));
  const std::vector<feed::Record> nothing = {};
  EXPECT_FALSE(ck.check_converged(nothing, &diag))
      << "committed key with no delivery after the final drain";
}

// The resync samples published() before its map read (feed.hpp), so the
// read may observe commits the ring then re-delivers: SEVERAL ring
// records at or before the resync's commit position are legal, as long
// as they advance in commit order among themselves.
TEST(FeedChecker, AcceptsMultipleRedeliveriesAfterResync) {
  FeedChecker ck;
  ck.commit(1, 11);
  ck.commit(1, 12);
  ck.commit(1, 13);
  ck.set_final(1, 13);
  std::string diag;
  // Resync jumped to 13 (map read raced ahead of the sampled cursor 1);
  // the ring then re-walks commits 12 and 13 from the sample point.
  const std::vector<feed::Record> redelivered = {
      {1, 13, feed::kResyncBit | 1}, {1, 12, 1}, {1, 13, 2}};
  EXPECT_TRUE(ck.check_stream(redelivered, &diag)) << diag;
  EXPECT_TRUE(ck.check_converged(redelivered, &diag)) << diag;
  // But re-delivered ring records still advance among themselves.
  const std::vector<feed::Record> shuffled = {
      {1, 13, feed::kResyncBit | 1}, {1, 13, 1}, {1, 12, 2}};
  EXPECT_FALSE(ck.check_stream(shuffled, &diag));
  // And a later resync can never regress behind the furthest position.
  const std::vector<feed::Record> regressed = {
      {1, 13, feed::kResyncBit | 1}, {1, 12, feed::kResyncBit | 2}};
  EXPECT_FALSE(ck.check_stream(regressed, &diag));
}

// ---------------------------------------------------------------------
// Service integration (manual pump, single thread).
// ---------------------------------------------------------------------

Svc::Config feed_config(unsigned max_subscribers) {
  return {.queues = 1,
          .queue_capacity = 32,
          .workers = 0,
          .batch = 8,
          .max_sessions = 2,
          .tickets_per_session = 8,
          .use_rings = false,
          .feed = true,
          .feed_max_subscribers = max_subscribers,
          .map = {.shards = 1, .buckets_per_shard = 4,
                  .capacity_per_shard = 64}};
}

TEST(KvServiceFeed, SubscribePollRoundTrip) {
  CountingScope counting;
  const auto before = stats::snapshot();
  Sub sub;
  Svc svc(sub, feed_config(4));
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();

  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    const auto r = svc.poll(c, *t);
    EXPECT_TRUE(r.has_value());
    return *r;
  };

  const auto s = run(Op::kSubscribe, 42, 0);  // value 0 = key filter
  ASSERT_EQ(s.status, Status::kOk);
  const std::uint64_t id = s.value;
  EXPECT_EQ(svc.feed().active_subscribers(), 1u);

  EXPECT_EQ(run(Op::kInsert, 42, 7).status, Status::kOk);
  EXPECT_EQ(run(Op::kInsert, 43, 1).status, Status::kOk);  // filtered out
  EXPECT_EQ(run(Op::kInsert, 43, 9).status, Status::kNotFound)
      << "failed insert must not publish";
  EXPECT_EQ(run(Op::kUpsert, 42, 8).status, Status::kNotFound);
  EXPECT_EQ(run(Op::kErase, 42).status, Status::kOk);

  const auto tp = svc.submit(c, Op::kPoll, id, 8);
  ASSERT_TRUE(tp.has_value());
  svc.pump(w);
  feed::Record recs[8];
  const auto d = svc.poll_feed(c, *tp, recs, 8);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->status, Status::kOk);
  EXPECT_FALSE(d->overrun);
  ASSERT_EQ(d->delivered, 3u);
  // Wire form: insert 7 -> 8, upsert 8 -> 9, erase -> 0; versions are the
  // shard ring's sequence numbers and skip the key-43 publish.
  EXPECT_EQ(recs[0].key, 42u);
  EXPECT_EQ(recs[0].value, 8u);
  EXPECT_EQ(recs[1].value, 9u);
  EXPECT_EQ(recs[2].value, 0u);
  EXPECT_LT(recs[0].version, recs[1].version);
  EXPECT_LT(recs[1].version, recs[2].version);

  // Drained: the next poll is empty, not a replay.
  const auto tp2 = svc.submit(c, Op::kPoll, id, 8);
  ASSERT_TRUE(tp2.has_value());
  svc.pump(w);
  const auto d2 = svc.poll_feed(c, *tp2, recs, 8);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->delivered, 0u);

  EXPECT_EQ(run(Op::kUnsubscribe, id).status, Status::kOk);
  EXPECT_EQ(svc.feed().active_subscribers(), 0u);

  if constexpr (stats::kCompiledIn) {
    const auto delta = stats::snapshot() - before;
    EXPECT_EQ(delta[stats::Id::kFeedPublish], 4u);
    EXPECT_EQ(delta[stats::Id::kFeedDeliver], 3u);
  }
}

TEST(KvServiceFeed, ShardSubscriptionSeesAllKeys) {
  Sub sub;
  Svc svc(sub, feed_config(4));
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    return *svc.poll(c, *t);
  };

  const auto s = run(Op::kSubscribe, 0, 1);  // value 1 = shard filter
  ASSERT_EQ(s.status, Status::kOk);
  run(Op::kInsert, 10, 1);
  run(Op::kInsert, 11, 2);

  const auto tp = svc.submit(c, Op::kPoll, s.value, 8);
  ASSERT_TRUE(tp.has_value());
  svc.pump(w);
  feed::Record recs[8];
  const auto d = svc.poll_feed(c, *tp, recs, 8);
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->delivered, 2u);
  EXPECT_EQ(recs[0].key, 10u);
  EXPECT_EQ(recs[1].key, 11u);
  run(Op::kUnsubscribe, s.value);
}

TEST(KvServiceFeed, SubscribeShedsAtLeaseCeiling) {
  Sub sub;
  Svc svc(sub, feed_config(1));
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    return *svc.poll(c, *t);
  };

  const auto a = run(Op::kSubscribe, 1, 0);
  ASSERT_EQ(a.status, Status::kOk);
  EXPECT_EQ(run(Op::kSubscribe, 2, 0).status, Status::kOverload)
      << "subscription past the lease ceiling must shed (EBUSY), not block";
  run(Op::kUnsubscribe, a.value);
  EXPECT_EQ(run(Op::kSubscribe, 2, 0).status, Status::kOk)
      << "ceiling reopens after unsubscribe";
}

// The executor must not trust client-supplied subscription tokens: a
// forged or stale kPoll/kUnsubscribe completes kNotFound instead of
// touching the lease gate (a double unsubscribe would underflow it and
// shed every future subscribe) or another subscription's cursor.
TEST(KvServiceFeed, RejectsForgedAndStaleSubscriptionTokens) {
  Sub sub;
  Svc svc(sub, feed_config(2));
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    return *svc.poll(c, *t);
  };

  const auto s = run(Op::kSubscribe, 1, 0);
  ASSERT_EQ(s.status, Status::kOk);
  // Never-issued tokens, including the raw slot index a pre-token client
  // might guess, are refused without touching the registry.
  EXPECT_EQ(run(Op::kPoll, s.value + 1, 4).status, Status::kNotFound);
  EXPECT_EQ(run(Op::kUnsubscribe, 0).status, Status::kNotFound);
  EXPECT_EQ(run(Op::kUnsubscribe, ~std::uint64_t{0}).status,
            Status::kNotFound);
  EXPECT_EQ(svc.feed().active_subscribers(), 1u);

  EXPECT_EQ(run(Op::kUnsubscribe, s.value).status, Status::kOk);
  EXPECT_EQ(run(Op::kUnsubscribe, s.value).status, Status::kNotFound)
      << "double unsubscribe must fail, not underflow the lease gate";
  EXPECT_EQ(svc.feed().active_subscribers(), 0u);

  // The gate survived: the ceiling still admits two fresh subscriptions,
  // and a stale token does not alias the slot its lease recycled into.
  const auto s2 = run(Op::kSubscribe, 2, 0);
  const auto s3 = run(Op::kSubscribe, 3, 0);
  ASSERT_EQ(s2.status, Status::kOk);
  ASSERT_EQ(s3.status, Status::kOk);
  EXPECT_NE(s2.value, s.value);
  EXPECT_EQ(run(Op::kPoll, s.value, 4).status, Status::kNotFound)
      << "stale token for a reused slot must not poll the new cursor";
  run(Op::kUnsubscribe, s2.value);
  run(Op::kUnsubscribe, s3.value);
}

// poll_feed reports only the records it copied: a caller buffer smaller
// than the kPoll's max_records truncates the delivery and `delivered`
// must say so (the executor already advanced the cursor, so the
// truncated tail is lost — but never silently miscounted).
TEST(KvServiceFeed, PollFeedClampsDeliveredToCallerBuffer) {
  Sub sub;
  Svc svc(sub, feed_config(2));
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    return *svc.poll(c, *t);
  };

  const auto s = run(Op::kSubscribe, 5, 0);
  ASSERT_EQ(s.status, Status::kOk);
  for (std::uint64_t v = 1; v <= 3; ++v) run(Op::kUpsert, 5, v);

  const auto tp = svc.submit(c, Op::kPoll, s.value, 8);
  ASSERT_TRUE(tp.has_value());
  svc.pump(w);
  feed::Record recs[2];
  const auto d = svc.poll_feed(c, *tp, recs, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->status, Status::kOk);
  EXPECT_EQ(d->delivered, 2u)
      << "delivered must count copied records, not the executor's total";
  EXPECT_EQ(recs[0].value, 2u);  // wire form: upsert 1 -> 2
  EXPECT_EQ(recs[1].value, 3u);
  run(Op::kUnsubscribe, s.value);
}

TEST(KvServiceFeed, FeedVerbsRequireFeedMode) {
  Sub sub;
  Svc svc(sub, {.queues = 1,
                .queue_capacity = 16,
                .workers = 0,
                .max_sessions = 1,
                .tickets_per_session = 4,
                .use_rings = false,
                .map = {.shards = 1, .buckets_per_shard = 4,
                        .capacity_per_shard = 32}});
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  const auto t = svc.submit(c, Op::kSubscribe, 1, 0);
  ASSERT_TRUE(t.has_value());
  svc.pump(w);
  const auto r = svc.poll(c, *t);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Status::kOverload);
}

TEST(KvServiceFeed, PollResyncAfterRingOverrun) {
  // 4-slot feed rings so six commits lap a parked subscriber.
  using Svc4 = svc::KvService<Sub, EpochReclaimer, 64, 4>;
  Sub sub;
  Svc4 svc(sub, {.queues = 1,
                 .queue_capacity = 32,
                 .workers = 0,
                 .batch = 8,
                 .max_sessions = 1,
                 .tickets_per_session = 8,
                 .use_rings = false,
                 .feed = true,
                 .feed_max_subscribers = 2,
                 .map = {.shards = 1, .buckets_per_shard = 4,
                         .capacity_per_shard = 64}});
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  auto run = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    svc.pump(w);
    return *svc.poll(c, *t);
  };

  const auto s = run(Op::kSubscribe, 7, 0);
  ASSERT_EQ(s.status, Status::kOk);
  for (std::uint64_t v = 1; v <= 6; ++v) run(Op::kUpsert, 7, v);

  const auto tp = svc.submit(c, Op::kPoll, s.value, 8);
  ASSERT_TRUE(tp.has_value());
  svc.pump(w);
  feed::Record recs[8];
  const auto d = svc.poll_feed(c, *tp, recs, 8);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->overrun);
  EXPECT_TRUE(d->resynced);
  ASSERT_EQ(d->delivered, 1u);
  EXPECT_EQ(recs[0].key, 7u);
  EXPECT_EQ(recs[0].value, 7u) << "resync must carry the map's latest (6+1)";
  EXPECT_TRUE(recs[0].version & feed::kResyncBit);
  run(Op::kUnsubscribe, s.value);
}

// ---------------------------------------------------------------------
// Controlled-schedule feed coherence. Two direct-ChangeFeed trials — a
// shard-filter one whose invariant is "delivered streams are torn-free
// subsequences of the commit order" and a key-filter one that adds
// resync convergence — explored exhaustively by DFS and smoked by PCT.
// The SkipValidation instantiation of the SAME shard trial is the
// negative control: both explorers must find the torn read it plants.
// ---------------------------------------------------------------------

template <bool SkipValidation>
struct ShardTrialShared {
  feed::ChangeFeed<2, SkipValidation> feed{1, 1};
  std::uint32_t id = 0;
  std::vector<feed::Record> log;

  // `quiet` suppresses ADD_FAILURE: the negative control EXPECTS
  // violating schedules and must not fail the test on each one.
  bool drain_and_check(bool quiet) {
    feed::Record buf[4];
    for (;;) {
      const auto pr = feed.poll(id, buf, 4, no_resync);
      for (unsigned i = 0; i < pr.delivered; ++i) log.push_back(buf[i]);
      if (pr.delivered == 0 && !pr.resynced) break;
    }
    FeedChecker ck;
    ck.commit(1, 11);
    ck.commit(2, 12);
    ck.commit(3, 13);
    std::string diag;
    const bool ok = ck.check_stream(log, &diag);
    if (!ok && !quiet) ADD_FAILURE() << "feed coherence: " << diag;
    return ok;
  }
};

// 3 commits of distinct keys through a 2-slot ring (so the writer laps a
// slow reader) against one concurrent poll: the adversarial 1-shard
// config from the issue, small enough for exhaustive DFS.
template <bool SkipValidation>
ScheduleExplorer::Trial make_shard_trial(bool quiet = false) {
  auto sh = std::make_shared<ShardTrialShared<SkipValidation>>();
  sh->id = *sh->feed.subscribe(feed::Filter::kShard, 0);
  ScheduleExplorer::Trial trial;
  trial.bodies.push_back([sh] {
    sh->feed.publish(0, 1, 11);
    sh->feed.publish(0, 2, 12);
    sh->feed.publish(0, 3, 13);
  });
  trial.bodies.push_back([sh] {
    feed::Record buf[3];
    const auto pr = sh->feed.poll(sh->id, buf, 3, no_resync);
    for (unsigned i = 0; i < pr.delivered; ++i) sh->log.push_back(buf[i]);
  });
  trial.check = [sh, quiet] { return sh->drain_and_check(quiet); };
  return trial;
}

ScheduleExplorer::Trial make_torn_trial() {
  return make_shard_trial<true>(/*quiet=*/true);
}

struct KeyTrialShared {
  feed::ChangeFeed<2> feed{1, 1};
  std::atomic<std::uint64_t> model{0};  // the "map": key 9's wire value
  std::uint32_t id = 0;
  std::vector<feed::Record> log;

  std::uint64_t read_model() {
    MOIR_YIELD_READ(&model);
    return model.load(std::memory_order_acquire);
  }
  void commit(std::uint64_t wire) {
    MOIR_YIELD_WRITE(&model);
    model.store(wire, std::memory_order_release);
    feed.publish(0, 9, wire);
  }
};

// Key-filter convergence: commits go to a model cell before the ring
// (standing in for the map), the reader's resync reads the model, and
// after the final drain the last delivered value must BE the model's.
// `ncommits` sizes the writer: 3 is the smallest lapping run, 4 is the
// smallest that can interleave a commit INSIDE the resync (between the
// reader's cursor sample and its model read) while the poll still has
// ring records left to mis-skip — the schedule that distinguishes
// sample-before-read from the lossy read-before-sample order.
ScheduleExplorer::Trial make_key_trial(unsigned ncommits) {
  auto sh = std::make_shared<KeyTrialShared>();
  sh->id = *sh->feed.subscribe(feed::Filter::kKey, 0, 9);
  ScheduleExplorer::Trial trial;
  trial.bodies.push_back([sh, ncommits] {
    for (unsigned c = 0; c < ncommits; ++c) sh->commit(11 + c);
  });
  trial.bodies.push_back([sh] {
    feed::Record buf[2];
    const auto pr =
        sh->feed.poll(sh->id, buf, 2, [sh](std::uint64_t) {
          return sh->read_model();
        });
    for (unsigned i = 0; i < pr.delivered; ++i) sh->log.push_back(buf[i]);
  });
  trial.check = [sh, ncommits] {
    feed::Record buf[4];
    for (;;) {
      const auto pr = sh->feed.poll(sh->id, buf, 4, [sh](std::uint64_t) {
        return sh->read_model();
      });
      for (unsigned i = 0; i < pr.delivered; ++i) sh->log.push_back(buf[i]);
      if (pr.delivered == 0 && !pr.resynced) break;
    }
    FeedChecker ck;
    for (unsigned c = 0; c < ncommits; ++c) ck.commit(9, 11 + c);
    ck.set_final(9, 10 + ncommits);
    std::string diag;
    const bool ok =
        ck.check_stream(sh->log, &diag) && ck.check_converged(sh->log, &diag);
    if (!ok) ADD_FAILURE() << "feed convergence: " << diag;
    return ok;
  };
  return trial;
}

TEST(FeedExplore, DfsShardCoherenceExhaustive) {
  const auto r = ScheduleExplorer::explore(
      [] { return make_shard_trial<false>(); },
      testing::ExploreOptions{.max_trials = 400000, .sleep_sets = true});
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "incoherent feed stream under schedule " << r.schedule_string();
  EXPECT_GT(r.trials, 10u);
}

TEST(FeedExplore, DfsKeyConvergenceExhaustive) {
  const auto r = ScheduleExplorer::explore(
      [] { return make_key_trial(3); },
      testing::ExploreOptions{.max_trials = 400000, .sleep_sets = true});
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-convergent key subscription under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 10u);
}

// Four commits through the 2-slot ring: with three, the overrun that
// triggers a resync already requires every publish to have completed, so
// the model is final before any resync runs and the resync's internal
// ordering is unobservable. The fourth commit opens the window — a
// commit can land between the resync's published() sample and its model
// read (or, in the buggy read-then-sample order, between the read and
// the sample, where it was skipped forever).
TEST(FeedExplore, DfsKeyConvergenceExhaustiveFourCommits) {
  const auto r = ScheduleExplorer::explore(
      [] { return make_key_trial(4); },
      testing::ExploreOptions{.max_trials = 2000000, .sleep_sets = true});
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-convergent key subscription under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 10u);
}

TEST(PctSmoke, FeedCoherence) {
  const PctOptions opts{.runs = scaled_budget(60),
                        .depth = 3,
                        .change_range = 64,
                        .seed = base_seed() + 57};
  const auto r = ScheduleExplorer::pct_explore(
      [] { return make_shard_trial<false>(); }, opts);
  EXPECT_EQ(r.trials, opts.runs);
  EXPECT_FALSE(r.violation_found)
      << "incoherent feed stream under schedule " << r.schedule_string();
  const auto r2 = ScheduleExplorer::pct_explore(
      [] { return make_key_trial(4); }, opts);
  EXPECT_FALSE(r2.violation_found)
      << "non-convergent key subscription under schedule "
      << r2.schedule_string();
}

// The planted bug: SkipValidation compiles out the seqlock re-check, so
// a reader overlapped by a writer lap can hand out a torn record. Both
// explorers must find it — if either stops seeing it, the checker (or
// the yield-point instrumentation) has gone blind.
TEST(NegativeControl, FeedTornReadFoundByDfs) {
  const auto r = ScheduleExplorer::explore(
      make_torn_trial,
      testing::ExploreOptions{.max_trials = 400000, .sleep_sets = true});
  EXPECT_TRUE(r.violation_found)
      << "DFS lost the planted missing-validation bug (trials=" << r.trials
      << ", exhausted=" << r.exhausted << ")";
}

TEST(NegativeControl, FeedTornReadFoundByPct) {
  const PctOptions opts{.runs = scaled_budget(2000),
                        .depth = 3,
                        .change_range = 64,
                        .seed = base_seed() + 91};
  const auto r = ScheduleExplorer::pct_explore(make_torn_trial, opts);
  EXPECT_TRUE(r.violation_found)
      << "PCT lost the planted missing-validation bug (runs=" << r.trials
      << ")";
  // The violating schedule replays deterministically.
  EXPECT_FALSE(ScheduleExplorer::replay(make_torn_trial,
                                        r.violating_schedule));
}

// ---------------------------------------------------------------------
// Whole-pipeline PCT smoke: writer client and subscriber client pump the
// executor themselves (workers = 0), so the per-queue claim, the
// executor-side feed verbs, and the ticket handshake all interleave
// under the controlled scheduler.
// ---------------------------------------------------------------------

struct PipelineShared {
  Sub sub;
  Svc svc;
  Svc::ClientCtx cw, cs;
  Svc::WorkerCtx w0, w1;
  std::uint64_t id = 0;
  std::vector<Svc::Ticket> writes;
  std::vector<Svc::Ticket> polls;
  std::vector<feed::Record> log;
  bool submit_failed = false;

  PipelineShared()
      : svc(sub, feed_config(2)),
        cw(svc.connect()),
        cs(svc.connect()),
        w0(svc.make_worker_ctx()),
        w1(svc.make_worker_ctx()) {
    // Subscribe before the scheduled bodies run (shard 0 carries all
    // traffic: feed_config uses one queue).
    const auto t = svc.submit(cs, Op::kSubscribe, 0, 1);
    MOIR_ASSERT(t.has_value());
    svc.pump(w1);
    const auto r = svc.poll(cs, *t);
    MOIR_ASSERT(r.has_value() && r->status == Status::kOk);
    id = r->value;
  }

  void write(Op op, std::uint64_t k, std::uint64_t v) {
    if (const auto t = svc.submit(cw, op, k, v)) {
      writes.push_back(*t);
    } else {
      submit_failed = true;
    }
  }

  void poll_once() {
    if (const auto t = svc.submit(cs, Op::kPoll, id, 8)) {
      polls.push_back(*t);
    } else {
      submit_failed = true;
    }
    svc.pump(w1);
    drain_ready_polls();
  }

  // Consume completed kPoll tickets in issue order; stop at the first
  // still-in-flight one (records must append in delivery order).
  void drain_ready_polls() {
    feed::Record buf[8];
    while (!polls.empty()) {
      const auto d = svc.poll_feed(cs, polls.front(), buf, 8);
      if (!d.has_value()) break;
      for (unsigned i = 0; i < d->delivered; ++i) log.push_back(buf[i]);
      polls.erase(polls.begin());
    }
  }

  bool check() {
    while (svc.pump(w0) > 0) {
    }
    for (const auto& t : writes) {
      if (!svc.poll(cw, t).has_value()) return false;
    }
    feed::Record buf[8];
    for (const auto& t : polls) {
      const auto d = svc.poll_feed(cs, t, buf, 8);
      if (!d.has_value()) return false;
      for (unsigned i = 0; i < d->delivered; ++i) log.push_back(buf[i]);
    }
    polls.clear();
    for (;;) {
      const auto t = svc.submit(cs, Op::kPoll, id, 8);
      if (!t.has_value()) return false;
      svc.pump(w1);
      const auto d = svc.poll_feed(cs, *t, buf, 8);
      if (!d.has_value()) return false;
      for (unsigned i = 0; i < d->delivered; ++i) log.push_back(buf[i]);
      if (d->delivered == 0 && !d->resynced) break;
    }
    if (submit_failed) return false;
    FeedChecker ck;  // upsert v -> wire v+1, in the writer's program order
    ck.commit(1, 6);
    ck.commit(2, 7);
    ck.commit(1, 8);
    std::string diag;
    const bool ok = ck.check_stream(log, &diag);
    if (!ok) ADD_FAILURE() << "pipeline feed coherence: " << diag;
    return ok;
  }
};

TEST(PctSmoke, FeedPipeline) {
  auto make_trial = [] {
    auto sh = std::make_shared<PipelineShared>();
    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      sh->write(Op::kUpsert, 1, 5);
      sh->svc.pump(sh->w0);
      sh->write(Op::kUpsert, 2, 6);
      sh->write(Op::kUpsert, 1, 7);
      while (sh->svc.pump(sh->w0) > 0) {
      }
    });
    trial.bodies.push_back([sh] {
      sh->poll_once();
      sh->poll_once();
    });
    trial.check = [sh] { return sh->check(); };
    return trial;
  };
  const PctOptions opts{.runs = scaled_budget(40),
                        .depth = 3,
                        .change_range = 128,
                        .seed = base_seed() + 23};
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_EQ(r.trials, opts.runs);
  EXPECT_FALSE(r.violation_found)
      << "feed pipeline violation under schedule " << r.schedule_string();
}

// ---------------------------------------------------------------------
// Real-thread torture: one writer streaming upserts over four keys
// through a live service (elastic worker pool), two key subscribers
// polling concurrently; every delivered stream must be coherent and
// converge on the final map state. Runs under the asan-reclaim preset.
// ---------------------------------------------------------------------

TEST(FeedTorture, ServiceFanoutCoherence) {
  constexpr std::uint64_t kOps = 4000;
  constexpr std::uint64_t kKeys = 4;
  Sub sub;
  Svc svc(sub, {.queues = 2,
                .workers = 2,
                .batch = 16,
                .max_sessions = 4,
                .tickets_per_session = 16,
                .use_rings = true,
                .feed = true,
                .feed_max_subscribers = 4,
                .map = {.shards = 2, .buckets_per_shard = 16,
                        .capacity_per_shard = 256}});

  std::atomic<bool> writer_done{false};
  std::vector<std::vector<std::uint64_t>> commits(kKeys);  // wire values
  for (auto& c : commits) c.reserve(kOps / kKeys + 1);

  std::thread writer([&] {
    auto c = svc.connect();
    for (std::uint64_t i = 1; i <= kOps; ++i) {
      const std::uint64_t key = 1 + (i % kKeys);
      for (;;) {
        if (const auto t = svc.submit(c, Op::kUpsert, key, i)) {
          svc.wait(c, *t);
          break;
        }
        std::this_thread::yield();  // ring backlog: retry the submit
      }
      commits[key - 1].push_back(i + 1);
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::vector<feed::Record>> logs(2);
  std::vector<std::thread> subs;
  for (unsigned s = 0; s < 2; ++s) {
    subs.emplace_back([&, s] {
      const std::uint64_t key = 1 + s;  // watch keys 1 and 2
      auto c = svc.connect();
      auto t = svc.submit(c, Op::kSubscribe, key, 0);
      ASSERT_TRUE(t.has_value());
      const auto r = svc.wait(c, *t);
      ASSERT_EQ(r.status, Status::kOk);
      const std::uint64_t id = r.value;
      feed::Record buf[8];
      for (;;) {
        const bool done_before = writer_done.load(std::memory_order_acquire);
        const auto tp = svc.submit(c, Op::kPoll, id, 8);
        if (!tp.has_value()) {
          std::this_thread::yield();
          continue;
        }
        const auto d = svc.wait_feed(c, *tp, buf, 8);
        ASSERT_EQ(d.status, Status::kOk);
        for (unsigned i = 0; i < d.delivered; ++i) logs[s].push_back(buf[i]);
        if (done_before && d.delivered == 0 && !d.resynced) break;
      }
      const auto tu = svc.submit(c, Op::kUnsubscribe, id, 0);
      ASSERT_TRUE(tu.has_value());
      svc.wait(c, *tu);
    });
  }

  writer.join();
  for (auto& th : subs) th.join();
  svc.stop();

  for (unsigned s = 0; s < 2; ++s) {
    const std::uint64_t key = 1 + s;
    FeedChecker ck;
    for (const std::uint64_t wire : commits[key - 1]) ck.commit(key, wire);
    ck.set_final(key, commits[key - 1].back());
    std::string diag;
    EXPECT_TRUE(ck.check_stream(logs[s], &diag))
        << "subscriber " << s << ": " << diag;
    EXPECT_TRUE(ck.check_converged(logs[s], &diag))
        << "subscriber " << s << ": " << diag;
    EXPECT_FALSE(logs[s].empty());
  }
}

}  // namespace
}  // namespace moir
