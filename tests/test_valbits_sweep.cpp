// The tag/value split is the paper's §1 trade-off knob; the algorithms
// must be correct at every split, not just the 48/16 default. This sweep
// runs the counter invariant on Figures 4 and 5 across extreme splits —
// including 1-bit values (tag-dominated) and 63-bit values (a single tag
// bit, wrapping every other SC: correctness must come from the CAS/RSC
// comparing the whole word, with the tag only needed to separate identical
// values, which a 1-bit tag still does for ABA distance 1... it does NOT
// for distance 2, which the dedicated wraparound test in bench/E6 and
// test_rll_backed_wide_bounded.cpp demonstrate; here concurrent increments
// never reproduce a full word, so even tiny tags must never lose updates).
#include <gtest/gtest.h>

#include <atomic>

#include "core/llsc_from_cas.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

template <unsigned ValBits>
void fig4_counter_sweep() {
  using L = LlscFromCas<ValBits>;
  typename L::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(4, [&](std::size_t) {
    std::uint64_t local = 0;
    for (int i = 0; i < 4000; ++i) {
      typename L::Keep keep;
      const std::uint64_t v = L::ll(var, keep);
      local += L::sc(var, keep, (v + 1) & L::Word::kMaxValue);
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(var.read(), successes.load() & L::Word::kMaxValue)
      << "ValBits=" << ValBits;
}

TEST(ValBitsSweep, Fig4AcrossSplits) {
  fig4_counter_sweep<1>();
  fig4_counter_sweep<8>();
  fig4_counter_sweep<16>();
  fig4_counter_sweep<32>();
  fig4_counter_sweep<48>();
  fig4_counter_sweep<56>();
}

template <unsigned ValBits>
void fig5_counter_sweep() {
  using L = LlscFromRllRsc<ValBits>;
  FaultInjector faults;
  faults.set_spurious_probability(0.05);
  typename L::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(4, [&](std::size_t) {
    Processor proc(&faults);
    std::uint64_t local = 0;
    for (int i = 0; i < 3000; ++i) {
      typename L::Keep keep;
      const std::uint64_t v = L::ll(var, keep);
      local += L::sc(proc, var, keep, (v + 1) & L::Word::kMaxValue);
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(var.read(), successes.load() & L::Word::kMaxValue)
      << "ValBits=" << ValBits;
}

TEST(ValBitsSweep, Fig5AcrossSplitsWithFaults) {
  fig5_counter_sweep<1>();
  fig5_counter_sweep<16>();
  fig5_counter_sweep<48>();
  fig5_counter_sweep<56>();
}

// Boundary: a 1-bit value still supports the full LL/VL/SC protocol.
TEST(ValBitsSweep, OneBitValueProtocol) {
  using L = LlscFromCas<1>;
  L::Var var(0);
  L::Keep keep;
  EXPECT_EQ(L::ll(var, keep), 0u);
  EXPECT_TRUE(L::vl(var, keep));
  EXPECT_TRUE(L::sc(var, keep, 1));
  EXPECT_EQ(var.read(), 1u);
  EXPECT_FALSE(L::sc(var, keep, 0)) << "keep is stale after a successful SC";
}

// Boundary: a 63-bit value leaves a 1-bit tag; alternating SCs must still
// never lose an update under contention (full-word compare + 1-bit tag
// distinguishes adjacent generations).
TEST(ValBitsSweep, SixtyThreeBitValues) {
  using L = LlscFromCas<63>;
  L::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(4, [&](std::size_t) {
    std::uint64_t local = 0;
    for (int i = 0; i < 4000; ++i) {
      L::Keep keep;
      const std::uint64_t v = L::ll(var, keep);
      local += L::sc(var, keep, (v + 0x100000001ull) & L::Word::kMaxValue);
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(var.read(),
            (successes.load() * 0x100000001ull) & L::Word::kMaxValue);
}

}  // namespace
}  // namespace moir
