// MsQueue across substrates: FIFO semantics, helping (lagging tail), node
// recycling, and per-producer order preservation under concurrency.
#include "nonblocking/ms_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "core/bounded_llsc.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

template <typename S>
class QueueTest : public ::testing::Test {
 protected:
  S substrate_{};
};

using Substrates =
    ::testing::Types<CasBackedLlsc<16>, RllBackedLlsc<16>,
                     ComposedBackedLlsc<16>, LockBackedLlsc<16>>;
TYPED_TEST_SUITE(QueueTest, Substrates);

TYPED_TEST(QueueTest, FifoOrder) {
  auto ctx = this->substrate_.make_ctx();
  MsQueue<TypeParam> q(this->substrate_, 16, ctx);
  EXPECT_TRUE(q.empty());
  for (std::uint64_t v : {1, 2, 3}) EXPECT_TRUE(q.enqueue(ctx, v));
  EXPECT_EQ(q.dequeue(ctx), 1u);
  EXPECT_EQ(q.dequeue(ctx), 2u);
  EXPECT_EQ(q.dequeue(ctx), 3u);
  EXPECT_EQ(q.dequeue(ctx), std::nullopt);
}

TYPED_TEST(QueueTest, CapacityAndRecycling) {
  auto ctx = this->substrate_.make_ctx();
  MsQueue<TypeParam> q(this->substrate_, 4, ctx);  // 3 usable + dummy
  EXPECT_TRUE(q.enqueue(ctx, 1));
  EXPECT_TRUE(q.enqueue(ctx, 2));
  EXPECT_TRUE(q.enqueue(ctx, 3));
  EXPECT_FALSE(q.enqueue(ctx, 4)) << "pool exhausted";
  EXPECT_EQ(q.dequeue(ctx), 1u);
  EXPECT_TRUE(q.enqueue(ctx, 5)) << "recycled node must be usable";
  EXPECT_EQ(q.dequeue(ctx), 2u);
  EXPECT_EQ(q.dequeue(ctx), 3u);
  EXPECT_EQ(q.dequeue(ctx), 5u);
}

TYPED_TEST(QueueTest, HeavyRecyclingSingleThread) {
  auto ctx = this->substrate_.make_ctx();
  MsQueue<TypeParam> q(this->substrate_, 3, ctx);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(q.enqueue(ctx, i & 0xfff));
    ASSERT_TRUE(q.enqueue(ctx, (i + 1) & 0xfff));
    ASSERT_EQ(q.dequeue(ctx), i & 0xfff);
    ASSERT_EQ(q.dequeue(ctx), (i + 1) & 0xfff);
  }
}

// Linearizability probe for FIFO: with concurrent producers/consumers,
// (a) nothing is lost or duplicated, and (b) each producer's values are
// consumed in the order it produced them (per-producer FIFO is implied by
// queue linearizability).
TYPED_TEST(QueueTest, ConcurrentPerProducerOrder) {
  auto& s = this->substrate_;
  auto init_ctx = s.make_ctx();
  MsQueue<TypeParam> q(s, 32, init_ctx);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 6000;

  std::vector<std::vector<std::uint64_t>> consumed_by(kConsumers);
  std::atomic<std::uint64_t> taken{0};

  run_threads(kProducers + kConsumers, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    if (tid < kProducers) {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (tid << 13) | i;  // 13-bit seq, producer id
        while (!q.enqueue(ctx, v)) std::this_thread::yield();
      }
    } else {
      auto& mine = consumed_by[tid - kProducers];
      for (;;) {
        if (const auto v = q.dequeue(ctx)) {
          mine.push_back(*v);
          taken.fetch_add(1);
        } else if (taken.load() >= kProducers * kPerProducer) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t total = 0;
  // Merge per-consumer streams: within one consumer, one producer's items
  // must appear in increasing sequence order.
  for (const auto& stream : consumed_by) {
    std::vector<std::uint64_t> last_seen(kProducers, 0);
    std::vector<bool> seen_any(kProducers, false);
    for (const std::uint64_t v : stream) {
      const std::size_t p = v >> 13;
      const std::uint64_t seq = v & 0x1fff;
      ASSERT_LT(p, static_cast<std::size_t>(kProducers));
      if (seen_any[p]) {
        EXPECT_GT(seq, last_seen[p])
            << "per-producer FIFO violated in one consumer's stream";
      }
      seen_any[p] = true;
      last_seen[p] = seq;
      ++total;
      ++next_seq[p];
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer) << "producer " << p;
  }
}

// Figure 7 needs k >= 3 concurrent sequences (head, tail, next all live).
TEST(QueueOnBoundedLlsc, ConcurrentConservation) {
  constexpr unsigned kThreads = 4;
  BoundedLlsc<> s(kThreads + 2, 3);
  auto init_ctx = s.make_ctx();
  MsQueue<BoundedLlsc<>> q(s, 16, init_ctx);
  std::atomic<std::int64_t> net{0};

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    Xoshiro256 rng(tid * 13 + 5);
    std::int64_t local = 0;
    for (int i = 0; i < 4000; ++i) {
      if (rng.chance(1, 2)) {
        local += q.enqueue(ctx, i & 0xff);
      } else {
        local -= q.dequeue(ctx).has_value();
      }
    }
    net.fetch_add(local);
  });

  auto ctx = s.make_ctx();
  std::int64_t remaining = 0;
  while (q.dequeue(ctx)) ++remaining;
  EXPECT_EQ(remaining, net.load());
}

}  // namespace
}  // namespace moir
