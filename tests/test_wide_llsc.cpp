// Tests for Figure 6 (W-word WLL/VL/SC, Theorem 4).
//
// The decisive invariant for a multi-word register is atomicity of the full
// value: WLL must never return a "torn" mix of two SCs' values. The stress
// tests write self-describing values (every chunk derived from one seed) so
// tearing is detectable in O(W).
#include "core/wide_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/value_codec.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

using Wide = WideLlsc<32>;

std::vector<std::uint64_t> chunks(std::initializer_list<std::uint64_t> v) {
  return std::vector<std::uint64_t>(v);
}

TEST(WideLlsc, InitAndRead) {
  Wide dom(2, 3);
  Wide::Var var;
  dom.init_var(var, chunks({1, 2, 3}));
  auto ctx = dom.make_ctx();
  std::vector<std::uint64_t> out(3);
  dom.read(ctx, var, out);
  EXPECT_EQ(out, chunks({1, 2, 3}));
}

TEST(WideLlsc, WllSucceedsWhenQuiescent) {
  Wide dom(2, 2);
  Wide::Var var;
  dom.init_var(var, chunks({7, 8}));
  auto ctx = dom.make_ctx();
  Wide::Keep keep;
  std::vector<std::uint64_t> out(2);
  const auto r = dom.wll(ctx, var, keep, out);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(out, chunks({7, 8}));
}

TEST(WideLlsc, ScReplacesWholeValue) {
  Wide dom(2, 4);
  Wide::Var var;
  dom.init_var(var, chunks({0, 0, 0, 0}));
  auto ctx = dom.make_ctx();
  Wide::Keep keep;
  std::vector<std::uint64_t> out(4);
  ASSERT_TRUE(dom.wll(ctx, var, keep, out).success);
  const auto newval = chunks({10, 20, 30, 40});
  EXPECT_TRUE(dom.sc(ctx, var, keep, newval));
  dom.read(ctx, var, out);
  EXPECT_EQ(out, newval);
}

TEST(WideLlsc, ScFailsAfterInterveningSc) {
  Wide dom(2, 2);
  Wide::Var var;
  dom.init_var(var, chunks({1, 1}));
  auto p = dom.make_ctx();
  auto q = dom.make_ctx();
  Wide::Keep kp, kq;
  std::vector<std::uint64_t> out(2);
  ASSERT_TRUE(dom.wll(p, var, kp, out).success);
  ASSERT_TRUE(dom.wll(q, var, kq, out).success);
  EXPECT_TRUE(dom.sc(q, var, kq, chunks({2, 2})));
  EXPECT_FALSE(dom.sc(p, var, kp, chunks({3, 3})));
  dom.read(p, var, out);
  EXPECT_EQ(out, chunks({2, 2}));
}

TEST(WideLlsc, VlSemantics) {
  Wide dom(2, 2);
  Wide::Var var;
  dom.init_var(var, chunks({1, 1}));
  auto p = dom.make_ctx();
  auto q = dom.make_ctx();
  Wide::Keep kp, kq;
  std::vector<std::uint64_t> out(2);
  ASSERT_TRUE(dom.wll(p, var, kp, out).success);
  EXPECT_TRUE(dom.vl(p, var, kp));
  ASSERT_TRUE(dom.wll(q, var, kq, out).success);
  ASSERT_TRUE(dom.sc(q, var, kq, chunks({5, 5})));
  EXPECT_FALSE(dom.vl(p, var, kp));
}

// The WLL weakening: when a SC lands mid-read, WLL may return the winner's
// pid instead of a value. Simulate a stalled helper by driving Copy from a
// second context between header read and completion — here we simply check
// that a failed WLL reports a pid that actually performed a SC.
TEST(WideLlsc, FailedWllReportsWinnerPid) {
  Wide dom(2, 2);
  Wide::Var var;
  dom.init_var(var, chunks({1, 1}));
  auto p = dom.make_ctx();
  auto q = dom.make_ctx();
  // q performs a successful SC...
  Wide::Keep kq;
  std::vector<std::uint64_t> out(2);
  ASSERT_TRUE(dom.wll(q, var, kq, out).success);
  ASSERT_TRUE(dom.sc(q, var, kq, chunks({2, 2})));
  // ...then p's stale-keep SC must fail.
  Wide::Keep kp;
  ASSERT_TRUE(dom.wll(p, var, kp, out).success);
  ASSERT_TRUE(dom.wll(q, var, kq, out).success);
  ASSERT_TRUE(dom.sc(q, var, kq, chunks({3, 3})));
  EXPECT_FALSE(dom.sc(p, var, kp, chunks({4, 4})));
}

TEST(WideLlsc, ManySequentialScsCycleTags) {
  Wide dom(1, 2);
  Wide::Var var;
  dom.init_var(var, chunks({0, 0}));
  auto ctx = dom.make_ctx();
  std::vector<std::uint64_t> out(2);
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    Wide::Keep keep;
    ASSERT_TRUE(dom.wll(ctx, var, keep, out).success);
    ASSERT_TRUE(dom.sc(ctx, var, keep, chunks({i, i * 2 + 1})));
  }
  dom.read(ctx, var, out);
  EXPECT_EQ(out, chunks({2000, 4001}));
}

TEST(WideLlsc, SpaceOverheadIsNW) {
  Wide dom(8, 16);
  EXPECT_EQ(dom.shared_overhead_words(), 8u * 16u);
  EXPECT_EQ(dom.per_variable_overhead_words(), 1u);
}

struct Pair {
  std::uint64_t a, b;
  friend bool operator==(const Pair&, const Pair&) = default;
};

TEST(WideLlsc, StoringStructsViaCodec) {
  const unsigned w =
      static_cast<unsigned>(chunks_needed(sizeof(Pair), Wide::kChunkBits));
  Wide dom(1, w);
  Wide::Var var;
  std::vector<std::uint64_t> buf(w);
  encode_value(Pair{111, 222}, buf, Wide::kChunkBits);
  dom.init_var(var, buf);
  auto ctx = dom.make_ctx();
  Wide::Keep keep;
  ASSERT_TRUE(dom.wll(ctx, var, keep, buf).success);
  EXPECT_EQ((decode_value<Pair>(buf, Wide::kChunkBits)), (Pair{111, 222}));
  encode_value(Pair{333, 444}, buf, Wide::kChunkBits);
  ASSERT_TRUE(dom.sc(ctx, var, keep, buf));
  dom.read(ctx, var, buf);
  EXPECT_EQ((decode_value<Pair>(buf, Wide::kChunkBits)), (Pair{333, 444}));
}

// ---------------------------------------------------------------------------
// Tearing stress: every stored value is (seed, f(seed), f(f(seed)), ...);
// any mix of two SCs' chunks breaks the chain. Sweeps W and thread count.
// ---------------------------------------------------------------------------
struct WideStressParam {
  unsigned threads;
  unsigned width;
};

class WideLlscStress : public ::testing::TestWithParam<WideStressParam> {};

std::uint64_t chain_next(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next() & Wide::kMaxChunk;
}

void fill_chain(std::uint64_t seed, std::vector<std::uint64_t>& out) {
  std::uint64_t x = seed & Wide::kMaxChunk;
  for (auto& c : out) {
    c = x;
    x = chain_next(x);
  }
}

bool is_chain(const std::vector<std::uint64_t>& v) {
  std::uint64_t x = v[0];
  for (const auto c : v) {
    if (c != x) return false;
    x = chain_next(x);
  }
  return true;
}

TEST_P(WideLlscStress, NoTornReadsAndNoLostUpdates) {
  const auto param = GetParam();
  // +1 process slot for the final verification context.
  Wide dom(param.threads + 1, param.width);
  Wide::Var var;
  std::vector<std::uint64_t> init(param.width);
  fill_chain(1, init);
  dom.init_var(var, init);

  std::atomic<std::uint64_t> successes{0};
  run_threads(param.threads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.05, 1000 + tid);
#endif
    auto ctx = dom.make_ctx();
    Xoshiro256 rng(tid * 7919 + 13);
    std::vector<std::uint64_t> buf(param.width);
    std::vector<std::uint64_t> next(param.width);
    std::uint64_t local = 0;
    for (int i = 0; i < 2000; ++i) {
      Wide::Keep keep;
      const auto r = dom.wll(ctx, var, keep, buf);
      if (!r.success) {
        ASSERT_LT(r.winner_pid, param.threads);
        continue;
      }
      ASSERT_TRUE(is_chain(buf)) << "torn WLL read";
      fill_chain(rng.next(), next);
      local += dom.sc(ctx, var, keep, next);
    }
    successes.fetch_add(local);
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });

  EXPECT_GT(successes.load(), 0u);
  auto ctx = dom.make_ctx();
  std::vector<std::uint64_t> fin(param.width);
  dom.read(ctx, var, fin);
  EXPECT_TRUE(is_chain(fin));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WideLlscStress,
    ::testing::Values(WideStressParam{1, 1}, WideStressParam{2, 2},
                      WideStressParam{4, 4}, WideStressParam{4, 16},
                      WideStressParam{8, 8}, WideStressParam{3, 64}));

// read() must be linearizable too: concurrent readers while one writer
// advances a chained value must always observe a coherent chain.
TEST(WideLlscStress, ReadersNeverSeeTornValues) {
  constexpr unsigned kWidth = 8;
  Wide dom(4, kWidth);
  Wide::Var var;
  std::vector<std::uint64_t> init(kWidth);
  fill_chain(5, init);
  dom.init_var(var, init);
  std::atomic<bool> stop{false};

  run_threads(4, [&](std::size_t tid) {
    auto ctx = dom.make_ctx();
    if (tid == 0) {
      std::vector<std::uint64_t> buf(kWidth), next(kWidth);
      Xoshiro256 rng(99);
      for (int i = 0; i < 3000; ++i) {
        Wide::Keep keep;
        if (dom.wll(ctx, var, keep, buf).success) {
          fill_chain(rng.next(), next);
          dom.sc(ctx, var, keep, next);
        }
      }
      stop.store(true);
    } else {
      std::vector<std::uint64_t> buf(kWidth);
      while (!stop.load()) {
        dom.read(ctx, var, buf);
        ASSERT_TRUE(is_chain(buf)) << "torn read";
      }
    }
  });
}

// Registering more contexts than N must abort (shared arrays sized N) —
// checked via the registry's own unit tests; here we check the happy path
// boundary: exactly N contexts work.
TEST(WideLlsc, ExactlyNContexts) {
  Wide dom(3, 1);
  auto a = dom.make_ctx();
  auto b = dom.make_ctx();
  auto c = dom.make_ctx();
  EXPECT_EQ(a.pid, 0u);
  EXPECT_EQ(b.pid, 1u);
  EXPECT_EQ(c.pid, 2u);
}

}  // namespace
}  // namespace moir
