#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <string>

namespace moir {
namespace {

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(Histogram, BucketOf) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, MeanAndMax) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.max(), 8u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.record(v);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
  // p50 of uniform 0..999 lands in the bucket containing ~500.
  EXPECT_GE(h.quantile(0.5), 500u);
}

TEST(Histogram, PercentileEmpty) {
  EXPECT_DOUBLE_EQ(Histogram{}.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h;
  h.record(42);
  // One value: every percentile is that value, not a bucket bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(Histogram, PercentileEndpointsAndBounds) {
  Histogram h;
  for (std::uint64_t v = 100; v <= 200; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 200.0);
  // Interior percentiles stay inside the observed range and inside the
  // bucket containing their rank (values 100..127 are bucket 7,
  // 128..200 bucket 8 clamped to max).
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 128.0);
  EXPECT_LE(p50, 200.0);
  // NaN / out-of-range q clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 200.0);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  Histogram wide;
  for (std::uint64_t v = 0; v < 1000; ++v) h.record(v * 17 % 4096);
  double prev = -1.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  (void)wide;
}

TEST(Histogram, PercentileTwoModes) {
  // 100 values near 10, 100 near 1000: p25 must sit in the low mode's
  // bucket and p75 in the high mode's, with the interpolated values far
  // apart — the separation quantile() can also see, but without the
  // power-of-two rounding.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  const double p25 = h.percentile(0.25);
  EXPECT_GE(p25, 10.0);
  EXPECT_LE(p25, 15.0);  // inside bucket (8..15], clamped below by min
  const double p75 = h.percentile(0.75);
  EXPECT_GE(p75, 512.0);  // inside bucket (511..1023], clamped to max
  EXPECT_LE(p75, 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(Histogram, PercentileOverflowBucketClamps) {
  Histogram h;
  h.record(1);
  h.record(~std::uint64_t{0});
  EXPECT_DOUBLE_EQ(h.percentile(1.0),
                   static_cast<double>(~std::uint64_t{0}));
}

TEST(Histogram, ToJsonHasPercentileFields) {
  Histogram h;
  h.record(7);
  const std::string j = h.to_json();
  EXPECT_NE(j.find("\"p95\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p999\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p50i\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p99i\":"), std::string::npos) << j;
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(1);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
}

TEST(Histogram, RenderMentionsStats) {
  Histogram h;
  h.record(5);
  const std::string r = h.render("ns");
  EXPECT_NE(r.find("n=1"), std::string::npos);
  EXPECT_NE(r.find("max=5ns"), std::string::npos);
}


TEST(Histogram, OverflowBucket) {
  Histogram h;
  const std::uint64_t huge = ~std::uint64_t{0};  // > 2^63-1: overflow bucket
  h.record(huge);
  h.record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), huge);
  // Quantiles landing in the overflow bucket clamp to the max recordable
  // bound rather than inventing an upper edge.
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
  // render() must show the overflow row without a bogus "le" bound.
  const std::string r = h.render("ns");
  EXPECT_NE(r.find("> 9223372036854775807"), std::string::npos) << r;
}

TEST(Histogram, AllZeroValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Histogram, MinSum) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u) << "empty histogram reports min 0, not UINT64_MAX";
  h.record(7);
  h.record(3);
  h.record(12);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.sum(), 22u);
  Histogram other;
  other.record(1);
  h.merge(other);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.sum(), 23u);
  // Merging an EMPTY histogram must not drag min to 0.
  h.merge(Histogram{});
  EXPECT_EQ(h.min(), 1u);
}

TEST(Histogram, ToJson) {
  Histogram h;
  h.record(5);
  h.record(~std::uint64_t{0});
  const std::string j = h.to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"n\":2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"min\":5"), std::string::npos) << j;
  // The overflow bucket exports "le": null — no fake finite bound.
  EXPECT_NE(j.find("\"le\":null"), std::string::npos) << j;
}

TEST(Histogram, ToJsonEmpty) {
  const std::string j = Histogram{}.to_json();
  EXPECT_NE(j.find("\"n\":0"), std::string::npos) << j;
  EXPECT_NE(j.find("\"buckets\":[]"), std::string::npos) << j;
}

TEST(Histogram, MergeParts) {
  // Fold shard-style raw parts (as stats::HistShard keeps them) into a
  // real histogram and check every summary statistic carries over.
  Histogram reference;
  reference.record(3);
  reference.record(300);
  std::uint64_t counts[Histogram::kBuckets + 1] = {};
  counts[Histogram::bucket_of(3)]++;
  counts[Histogram::bucket_of(300)]++;
  Histogram h;
  h.merge_parts(counts, /*total=*/303, /*n=*/2, /*max=*/300, /*min=*/3);
  EXPECT_EQ(h.count(), reference.count());
  EXPECT_EQ(h.sum(), reference.sum());
  EXPECT_EQ(h.min(), reference.min());
  EXPECT_EQ(h.max(), reference.max());
  EXPECT_EQ(h.quantile(0.5), reference.quantile(0.5));
  // n == 0 parts are a no-op, min untouched.
  const std::uint64_t zero[Histogram::kBuckets + 1] = {};
  h.merge_parts(zero, 0, 0, 0, ~std::uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 3u);
}

}  // namespace
}  // namespace moir
