#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace moir {
namespace {

TEST(Histogram, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(Histogram, BucketOf) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, MeanAndMax) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.max(), 8u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.record(v);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
  // p50 of uniform 0..999 lands in the bucket containing ~500.
  EXPECT_GE(h.quantile(0.5), 500u);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(1);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
}

TEST(Histogram, RenderMentionsStats) {
  Histogram h;
  h.record(5);
  const std::string r = h.render("ns");
  EXPECT_NE(r.find("n=1"), std::string::npos);
  EXPECT_NE(r.find("max=5ns"), std::string::npos);
}

}  // namespace
}  // namespace moir
