// Unit and stress tests for Figure 5 (LL/VL/SC direct from RLL/RSC,
// Theorem 3).
#include "core/llsc_from_rllrsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "platform/fault.hpp"

namespace moir {
namespace {

using L = LlscFromRllRsc<16>;

TEST(LlscFromRllRsc, BasicSequence) {
  L::Var var(10);
  L::Keep keep;
  Processor p;
  EXPECT_EQ(L::ll(var, keep), 10u);
  EXPECT_TRUE(L::vl(var, keep));
  EXPECT_TRUE(L::sc(p, var, keep, 11));
  EXPECT_EQ(var.read(), 11u);
}

TEST(LlscFromRllRsc, ScFailsAfterInterveningSc) {
  L::Var var(1);
  Processor p, q;
  L::Keep kp, kq;
  L::ll(var, kp);
  L::ll(var, kq);
  EXPECT_TRUE(L::sc(q, var, kq, 2));
  EXPECT_FALSE(L::sc(p, var, kp, 3));
  EXPECT_EQ(var.read(), 2u);
}

TEST(LlscFromRllRsc, ScDetectsAba) {
  L::Var var(1);
  Processor p, q;
  L::Keep victim, k;
  L::ll(var, victim);
  L::ll(var, k);
  ASSERT_TRUE(L::sc(q, var, k, 2));
  L::ll(var, k);
  ASSERT_TRUE(L::sc(q, var, k, 1));  // restore original value
  EXPECT_FALSE(L::sc(p, var, victim, 9));
}

TEST(LlscFromRllRsc, VlSemantics) {
  L::Var var(5);
  Processor q;
  L::Keep victim, k;
  L::ll(var, victim);
  EXPECT_TRUE(L::vl(var, victim));
  L::ll(var, k);
  ASSERT_TRUE(L::sc(q, var, k, 6));
  EXPECT_FALSE(L::vl(var, victim));
}

TEST(LlscFromRllRsc, RetriesThroughSpuriousFailures) {
  FaultInjector faults;
  L::Var var(0);
  Processor p(&faults);
  L::Keep keep;
  L::ll(var, keep);
  faults.force_failures(3);
  EXPECT_TRUE(L::sc(p, var, keep, 1));
  EXPECT_EQ(p.stats().spurious_failures, 3u);
}

// Unlike RLL/RSC themselves, the implemented LL/VL/SC supports concurrent
// LL-SC sequences — the reservation is only held inside sc()'s retry loop.
TEST(LlscFromRllRsc, ConcurrentSequencesOneProcessor) {
  L::Var x(1), y(2);
  Processor p;
  L::Keep kx, ky;
  L::ll(x, kx);
  L::ll(y, ky);
  EXPECT_TRUE(L::vl(x, kx));
  EXPECT_TRUE(L::sc(p, y, ky, 20));
  EXPECT_TRUE(L::sc(p, x, kx, 10));
  EXPECT_EQ(x.read(), 10u);
  EXPECT_EQ(y.read(), 20u);
}

struct StressParam {
  int threads;
  double spurious;
};

class LlscFromRllRscStress
    : public ::testing::TestWithParam<StressParam> {};

TEST_P(LlscFromRllRscStress, SuccessfulScsMatchFinalValue) {
  const auto param = GetParam();
  FaultInjector faults;
  faults.set_spurious_probability(param.spurious);
  L::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  constexpr int kAttemptsEach = 8000;
  std::vector<std::thread> pool;
  for (int t = 0; t < param.threads; ++t) {
    pool.emplace_back([&] {
      Processor p(&faults);
      std::uint64_t local = 0;
      for (int i = 0; i < kAttemptsEach; ++i) {
        L::Keep keep;
        const std::uint64_t v = L::ll(var, keep);
        local += L::sc(p, var, keep, (v + 1) & L::Word::kMaxValue);
      }
      successes.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(var.read(), successes.load() & L::Word::kMaxValue);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LlscFromRllRscStress,
    ::testing::Values(StressParam{1, 0.0}, StressParam{4, 0.0},
                      StressParam{4, 0.1}, StressParam{8, 0.3}));

}  // namespace
}  // namespace moir
