// Deep exploration shard (ctest label "explore"): PCT randomized schedule
// search over configurations whose trees the DFS budget cannot cover —
// 3-thread bug hunting, wide (Figure 6) linearizability windows, and
// fault-injected Figure 5 runs — all with deterministically replayable
// schedule strings in every failure report.
//
// Budgets scale with MOIR_EXPLORE_SCALE and reseed with MOIR_SEED, so a
// nightly shard can multiply coverage without recompiling.
#include "sim/explore.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <tuple>
#include <vector>

#include "core/bounded_llsc.hpp"
#include "core/llsc_composed.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "core/wide_llsc.hpp"
#include "dur/dur_llsc.hpp"
#include "nonblocking/stm.hpp"
#include "platform/fault.hpp"
#include "sim/crash.hpp"
#include "sim/schedule.hpp"
#include "util/env.hpp"
#include "verify/durable.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using testing::ControlledScheduler;
using testing::PctOptions;
using testing::RunnableThread;
using testing::Schedule;
using testing::ScheduleExplorer;

// Move `arg` units from cell 0 to cell 1 of the set (if funds allow).
void tx_probe_transfer(const std::uint64_t* olds, std::uint64_t* news,
                       unsigned, std::uint64_t arg) {
  const std::uint64_t amount = olds[0] >= arg ? arg : 0;
  news[0] = olds[0] - amount;
  news[1] = olds[1] + amount;
}

// ---------------------------------------------------------------------
// Negative control: the two-tag composition's wraparound hazard, planted.
//
// LlscComposed<16, 2> shrinks the outer tag to 2 bits, so FOUR intervening
// successful SCs return the {outer tag, value} pair to the exact word the
// victim's LL snapshotted — the victim's stale SC then succeeds, violating
// LL/SC semantics (an SC must fail if any SC succeeded since the LL). The
// bug needs one preemption of the victim plus two adversaries running to
// completion: depth-2 territory PCT is built for, far beyond the DFS
// budget's horizon on this tree. A generation counter timestamps the
// victim's LL and SC so check() can tell a legal success (no intervening
// SC) from the wraparound.
// ---------------------------------------------------------------------
template <typename C>
ScheduleExplorer::Trial make_composed_wrap_trial() {
  struct Shared {
    typename C::Var var{5};
    Processor procs[3];  // fault-free
    std::atomic<unsigned> gen{0};  // successful adversary SCs so far
    unsigned gen_at_ll = 0;
    unsigned gen_at_sc = 0;
    bool victim_ok = false;
  };
  auto sh = std::make_shared<Shared>();

  ScheduleExplorer::Trial trial;
  trial.bodies.push_back([sh] {
    typename C::Keep keep;
    const std::uint64_t v = C::ll(sh->var, keep);
    sh->gen_at_ll = sh->gen.load(std::memory_order_relaxed);
    sh->victim_ok = C::sc(sh->procs[0], sh->var, keep, v);
    sh->gen_at_sc = sh->gen.load(std::memory_order_relaxed);
  });
  for (int t = 1; t <= 2; ++t) {
    trial.bodies.push_back([sh, t] {
      for (int j = 0; j < 2; ++j) {
        typename C::Keep keep;
        const std::uint64_t v = C::ll(sh->var, keep);
        if (C::sc(sh->procs[t], sh->var, keep, v)) {
          sh->gen.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  trial.check = [sh] {
    // Stale success: the victim's SC succeeded although at least one full
    // outer-tag cycle (4 SCs) of other processes landed in between.
    return !(sh->victim_ok && sh->gen_at_sc - sh->gen_at_ll >= 4);
  };
  return trial;
}

TEST(ExplorationDeep, PctFindsComposedTagWraparound) {
  using C = LlscComposed<16, 2>;  // 2-bit outer tag: wraps every 4 SCs
  const PctOptions opts{
      .runs = scaled_budget(4000),
      .depth = 2,
      .change_range = 32,
      .seed = base_seed(),
  };
  const auto r =
      ScheduleExplorer::pct_explore(make_composed_wrap_trial<C>, opts);
  ASSERT_TRUE(r.violation_found)
      << "PCT missed the planted outer-tag wraparound in " << r.trials
      << " runs (negative control failed)";

  // The failure report is a schedule string; replaying it reproduces the
  // wraparound deterministically.
  const auto parsed = Schedule::parse(r.schedule_string());
  ASSERT_TRUE(parsed.has_value()) << r.schedule_string();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(
        ScheduleExplorer::replay(make_composed_wrap_trial<C>, *parsed))
        << "schedule " << r.schedule_string() << " did not replay";
  }
}

// The identical trial on the default composition (24-bit outer tag) cannot
// wrap within 4 SCs: the same budget must find nothing.
TEST(ExplorationDeep, PctCleanOnWideOuterTag) {
  using C = LlscComposed<16>;
  const PctOptions opts{
      .runs = scaled_budget(4000),
      .depth = 2,
      .change_range = 32,
      .seed = base_seed(),
  };
  const auto r =
      ScheduleExplorer::pct_explore(make_composed_wrap_trial<C>, opts);
  EXPECT_FALSE(r.violation_found)
      << "24-bit outer tag wrapped?! schedule " << r.schedule_string();
}

// ---------------------------------------------------------------------
// Figure 6, W=3, three writers under PCT; every run's history is checked
// for linearizability against the Figure 2 LL/SC register spec (chunk 0
// stands in for the value; chunks 1..2 must track it exactly, checked as
// tearing). WLL's weakened failure mode — returning the winner's pid
// instead of a value — records no operation, which is trivially allowed.
// ---------------------------------------------------------------------
TEST(ExplorationDeep, PctWideW3Linearizable) {
  using W = WideLlsc<32>;
  constexpr unsigned kW = 3;
  constexpr unsigned kWorkers = 3;

  auto make_trial = [] {
    struct Shared {
      W dom{kWorkers + 1, kW};  // +1 process for the final check read
      W::Var var;
      HistoryRecorder rec{kWorkers + 1};
      bool torn = false;
    };
    auto sh = std::make_shared<Shared>();
    const std::vector<std::uint64_t> init{1, 101, 201};
    sh->dom.init_var(sh->var, init);

    ScheduleExplorer::Trial trial;
    for (unsigned t = 0; t < kWorkers; ++t) {
      trial.bodies.push_back([sh, t] {
        auto ctx = sh->dom.make_ctx();
        std::vector<std::uint64_t> buf(kW);
        for (unsigned iter = 0; iter < 2; ++iter) {
          W::Keep keep;
          const auto inv_ll = sh->rec.now();
          if (!sh->dom.wll(ctx, sh->var, keep, buf).success) continue;
          sh->rec.add(t, t, OpKind::kLl, 0, buf[0], inv_ll);
          if (buf[1] != buf[0] + 100 || buf[2] != buf[0] + 200) {
            sh->torn = true;
            return;
          }
          const std::uint64_t c0 = 10 + 10 * t + iter;
          const std::vector<std::uint64_t> next{c0, c0 + 100, c0 + 200};
          const auto inv_sc = sh->rec.now();
          const bool ok = sh->dom.sc(ctx, sh->var, keep, next);
          sh->rec.add(t, t, OpKind::kSc, c0, ok, inv_sc);
        }
      });
    }
    trial.check = [sh] {
      if (sh->torn) return false;
      auto ctx = sh->dom.make_ctx();
      std::vector<std::uint64_t> fin(kW);
      const auto inv = sh->rec.now();
      sh->dom.read(ctx, sh->var, fin);
      if (fin[1] != fin[0] + 100 || fin[2] != fin[0] + 200) return false;
      sh->rec.add(kWorkers, kWorkers, OpKind::kRead, 0, fin[0], inv);
      LinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(),
                           LlscRegisterSpec::State{1, 0});
    };
    return trial;
  };

  const PctOptions opts{
      .runs = scaled_budget(300),
      .depth = 3,
      .change_range = 128,
      .seed = base_seed() + 1,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable or torn wide history under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

// ---------------------------------------------------------------------
// Spurious RSC failures x Figure 5's single-reservation SC path. The
// injector's forced mode fails the first two RSC attempts (shared counter:
// deterministic under a fixed schedule). Every schedule must (a) keep the
// counter invariant — Figure 5 retries through spurious failures, so they
// are invisible to callers, (b) consume exactly the two forced failures,
// and (c) never trip the no-reservation path. A recorded PCT schedule then
// replays to the identical outcome, spurious failures included.
// ---------------------------------------------------------------------
TEST(ExplorationDeep, PctFig5SpuriousRscReplayDeterminism) {
  using L = LlscFromRllRsc<16>;

  struct Shared {
    FaultInjector faults;
    L::Var x{0};
    std::vector<Processor> procs;
    std::uint64_t succ[2] = {0, 0};
  };
  // `latest` lets the test inspect the Shared of the most recent run.
  auto latest = std::make_shared<std::shared_ptr<Shared>>();

  auto make_trial = [latest] {
    auto sh = std::make_shared<Shared>();
    *latest = sh;
    sh->faults.force_failures(2);
    sh->procs.emplace_back(&sh->faults);
    sh->procs.emplace_back(&sh->faults);

    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        for (int i = 0; i < 2; ++i) {
          L::Keep keep;
          const std::uint64_t v = L::ll(sh->x, keep);
          sh->succ[t] += L::sc(sh->procs[t], sh->x, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [sh] {
      std::uint64_t spurious = 0;
      for (const Processor& p : sh->procs) {
        // SC's exit through the RLL-mismatch path may leave a reservation
        // set (like hardware leaves the LLBit); the next RLL replaces it.
        // What must never happen is an RSC with no matching reservation.
        if (p.stats().no_reservation_failures != 0) return false;
        spurious += p.stats().spurious_failures;
      }
      return sh->x.read() == sh->succ[0] + sh->succ[1] &&
             spurious == 2 && sh->faults.injected_count() == 2;
    };
    return trial;
  };

  // (a)-(c) over a randomized schedule batch.
  const PctOptions opts{
      .runs = scaled_budget(500),
      .depth = 3,
      .change_range = 48,
      .seed = base_seed() + 2,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "forced spurious RSC failures broke Figure 5 under schedule "
      << r.schedule_string();

  // Replay determinism: record one full PCT schedule, then re-run it twice
  // and compare the complete observable outcome.
  using Outcome = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                             std::uint64_t, std::uint64_t>;
  auto outcome_of = [&](const Shared& sh) {
    return Outcome{sh.x.read(), sh.succ[0], sh.succ[1],
                   sh.faults.injected_count(),
                   sh.procs[0].stats().attempts + sh.procs[1].stats().attempts};
  };

  for (std::uint64_t s = 0; s < 5; ++s) {
    auto trial = make_trial();
    ScheduleExplorer::PctScheduler pct(3, 48, base_seed() + 100 + s);
    Schedule taken;
    ControlledScheduler::run(
        std::move(trial.bodies),
        [&](const std::vector<RunnableThread>& runnable, std::size_t d) {
          const unsigned choice = pct.pick(runnable, d);
          taken.threads.push_back(choice);
          return choice;
        });
    EXPECT_TRUE(trial.check()) << "schedule " << taken.str();
    const Outcome first = outcome_of(**latest);

    const auto parsed = Schedule::parse(taken.str());
    ASSERT_TRUE(parsed.has_value());
    for (int rep = 0; rep < 2; ++rep) {
      EXPECT_TRUE(ScheduleExplorer::replay(make_trial, *parsed));
      EXPECT_EQ(outcome_of(**latest), first)
          << "schedule " << taken.str() << " replayed to a different outcome";
    }
  }
}

// ---------------------------------------------------------------------
// Figure 7 at N=3, k=1 — one process more than the tier-1 exhaustive run —
// under PCT: counter invariant plus the bounded-tag range invariants
// (tag <= 2Nk, cnt <= Nk) on every run's final word.
// ---------------------------------------------------------------------
TEST(ExplorationDeep, PctFig7ThreeProcessInvariants) {
  using B = BoundedLlsc<>;

  auto make_trial = [] {
    struct Shared {
      B s{3, 1};
      B::Var var;
      std::vector<B::ThreadCtx> ctxs;
      std::uint64_t successes[3] = {0, 0, 0};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(3);
    for (int t = 0; t < 3; ++t) sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 3; ++t) {
      trial.bodies.push_back([sh, t] {
        for (int i = 0; i < 2; ++i) {
          B::Keep keep;
          const std::uint64_t v = sh->s.ll(sh->ctxs[t], sh->var, keep);
          sh->successes[t] +=
              sh->s.sc(sh->ctxs[t], sh->var, keep, (v + 1) & 0xffff);
        }
      });
    }
    trial.check = [sh] {
      const auto w = sh->s.raw_word(sh->var);
      return sh->s.read(sh->var) == sh->successes[0] + sh->successes[1] +
                                        sh->successes[2] &&
             w.tag() <= 2 * 3 * 1 && w.cnt() <= 3 * 1;
    };
    return trial;
  };

  const PctOptions opts{
      .runs = scaled_budget(500),
      .depth = 3,
      .change_range = 64,
      .seed = base_seed() + 3,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "Figure 7 invariant broken at N=3 under schedule "
      << r.schedule_string();
}

// ---------------------------------------------------------------------
// Regression: the STM's stale write-back race. A transaction owner parked
// in its acquire loop between the status check and the lock SC could — once
// helpers finished its incarnation and unrelated transactions cycled the
// cell back to the claimed value — re-lock the cell for the already
// committed incarnation and re-apply its write-back over newer state
// (value ABA defeats the claim check; the cell tag only guards changes
// since the thread's own LL). This exact trial shape surfaced the bug in
// under 100 depth-2 PCT runs before the pre-SC status revalidation in
// run_phases; the budget below leaves a wide margin for catching a
// reintroduction.
// ---------------------------------------------------------------------
TEST(ExplorationDeep, PctStmRecyclingConservesMoney) {
  auto make_trial = [] {
    struct Shared {
      Stm stm{4, 3};
      std::vector<Stm::ThreadCtx> ctxs;
    };
    auto sh = std::make_shared<Shared>();
    for (int c = 0; c < 3; ++c) sh->stm.set_initial(c, 100);
    for (int t = 0; t < 4; ++t) sh->ctxs.push_back(sh->stm.make_ctx());

    // Two transactors whose second transaction reuses (recycles) their
    // descriptor on cells the other touches, plus a reader exercising the
    // help-on-read path.
    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      const std::uint32_t ab[] = {0, 1};
      const std::uint32_t bc[] = {1, 2};
      sh->stm.transact(sh->ctxs[0], ab, tx_probe_transfer, 3);
      sh->stm.transact(sh->ctxs[0], bc, tx_probe_transfer, 5);
    });
    trial.bodies.push_back([sh] {
      const std::uint32_t ac[] = {0, 2};
      const std::uint32_t ab[] = {0, 1};
      sh->stm.transact(sh->ctxs[1], ac, tx_probe_transfer, 7);
      sh->stm.transact(sh->ctxs[1], ab, tx_probe_transfer, 2);
    });
    trial.bodies.push_back([sh] {
      (void)sh->stm.read(sh->ctxs[2], 0);
      (void)sh->stm.read(sh->ctxs[2], 1);
    });
    trial.check = [sh] {
      std::uint64_t total = 0;
      for (int c = 0; c < 3; ++c) total += sh->stm.read(sh->ctxs[3], c);
      return total == 300 && !sh->stm.any_cell_locked();
    };
    return trial;
  };

  const PctOptions opts{
      .runs = scaled_budget(2000),
      .depth = 2,
      .change_range = 256,
      .seed = base_seed() + 4,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "STM created or destroyed money under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

// ---------------------------------------------------------------------
// Full-depth figdur crash DFS: the tier1 suite pre-opens the writer's LL
// quiescently to keep its tree small (test_dur.cpp); here the LL runs
// under the scheduler too, so every (LL step, SC step, read step, crash
// point) placement — ~300k schedules — is enumerated. Every recovered
// image must be explained by the completed ops plus some subset of the
// in-flight ones. Plain DFS: the history clock rides between yield
// points, so sleep sets would prune real-time edges.
// ---------------------------------------------------------------------
TEST(ExplorationDeep, DurCrashRecoverFullDfs) {
  using Dur = dur::DurLlsc<>;
  static constexpr Dur::Config kCfg{.reserve = 2, .chunk = 1,
                                    .scan_threshold = 2, .max_members = 1};
  auto make_trial = [] {
    struct Shared {
      Dur s{1, kCfg};
      Dur::Var var;
      std::vector<Dur::ThreadCtx> ctxs;
      HistoryRecorder rec{2};
      std::uint64_t crash_ts = 0;
      std::vector<std::uint64_t> image;
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {  // writer: LL and SC both scheduled
      Dur::Keep keep;
      auto inv = sh->rec.now();
      const std::uint64_t v = sh->s.ll(sh->ctxs[0], sh->var, keep);
      sh->rec.add(0, 0, OpKind::kLl, 0, v, inv);
      inv = sh->rec.now();
      const bool ok = sh->s.sc(sh->ctxs[0], sh->var, keep, v + 1);
      sh->rec.add(0, 0, OpKind::kSc, v + 1, ok, inv);
    });
    trial.bodies.push_back([sh] {  // context-free reader
      const auto inv = sh->rec.now();
      const std::uint64_t v = sh->s.read(sh->var);
      sh->rec.add(1, 1, OpKind::kRead, 0, v, inv);
    });
    trial = testing::with_crash(std::move(trial), [sh] {
      sh->crash_ts = sh->rec.now();
      sh->image = sh->s.snapshot();
    });
    trial.check = [sh] {
      Dur fresh(1, kCfg);
      Dur::Var fvar;
      fresh.init_var(fvar, 0);
      fresh.restore_and_recover(sh->image);
      Operation probe;
      probe.proc = 2;
      probe.kind = OpKind::kRead;
      probe.ret = fresh.read(fvar);
      DurableLinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(), sh->crash_ts, {probe},
                           LlscRegisterSpec::State{});
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 400000);
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-durably-linearizable figdur recovery under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 100000u);
}

}  // namespace
}  // namespace moir
