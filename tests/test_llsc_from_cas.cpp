// Unit and stress tests for Figure 4 (LL/VL/SC from CAS, Theorem 2).
#include "core/llsc_from_cas.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace moir {
namespace {

using L = LlscFromCas<16>;

TEST(LlscFromCas, LlReturnsValueAndFillsKeep) {
  L::Var var(42);
  L::Keep keep;
  EXPECT_EQ(L::ll(var, keep), 42u);
  EXPECT_EQ(keep.value(), 42u);
  EXPECT_EQ(keep.tag(), 0u);
}

TEST(LlscFromCas, ScSucceedsWhenUnchanged) {
  L::Var var(1);
  L::Keep keep;
  L::ll(var, keep);
  EXPECT_TRUE(L::sc(var, keep, 2));
  EXPECT_EQ(var.read(), 2u);
}

TEST(LlscFromCas, ScFailsAfterInterveningSc) {
  L::Var var(1);
  L::Keep mine, other;
  L::ll(var, mine);
  L::ll(var, other);
  EXPECT_TRUE(L::sc(var, other, 9));
  EXPECT_FALSE(L::sc(var, mine, 5));
  EXPECT_EQ(var.read(), 9u);
}

// The tag makes SC fail even when the value has been restored (ABA).
TEST(LlscFromCas, ScDetectsAba) {
  L::Var var(1);
  L::Keep victim;
  L::ll(var, victim);
  {
    L::Keep k;
    L::ll(var, k);
    ASSERT_TRUE(L::sc(var, k, 2));
    L::ll(var, k);
    ASSERT_TRUE(L::sc(var, k, 1));  // back to original value
  }
  EXPECT_EQ(var.read(), 1u);
  EXPECT_FALSE(L::sc(var, victim, 7));
}

TEST(LlscFromCas, VlTrueWhileUnchanged) {
  L::Var var(3);
  L::Keep keep;
  L::ll(var, keep);
  EXPECT_TRUE(L::vl(var, keep));
}

TEST(LlscFromCas, VlFalseAfterSuccessfulSc) {
  L::Var var(3);
  L::Keep victim, k;
  L::ll(var, victim);
  L::ll(var, k);
  ASSERT_TRUE(L::sc(var, k, 4));
  EXPECT_FALSE(L::vl(var, victim));
}

TEST(LlscFromCas, VlFalseAfterAba) {
  L::Var var(3);
  L::Keep victim, k;
  L::ll(var, victim);
  L::ll(var, k);
  ASSERT_TRUE(L::sc(var, k, 8));
  L::ll(var, k);
  ASSERT_TRUE(L::sc(var, k, 3));
  EXPECT_FALSE(L::vl(var, victim));
}

// The paper's motivating Figure 1(a): two LL-SC sequences on different
// variables interleaved by one process — impossible with RLL/RSC, and the
// reason for the keep-word interface. Mirrors X/Z/Y from the figure.
TEST(LlscFromCas, ConcurrentSequencesOneProcess) {
  L::Var x(1), y(2);
  std::uint64_t z = 0;  // ordinary variable read/written in between
  L::Keep kx, ky;
  L::ll(x, kx);
  z = 10;
  z += 1;
  L::ll(y, ky);
  EXPECT_TRUE(L::vl(x, kx));
  EXPECT_TRUE(L::sc(y, ky, 20));
  EXPECT_TRUE(L::sc(x, kx, z));
  EXPECT_EQ(x.read(), 11u);
  EXPECT_EQ(y.read(), 20u);
}

// Many interleaved sequences on the same variable from the same process:
// exactly one of the pending SCs can win per generation.
TEST(LlscFromCas, ManyPendingScsOneWinner) {
  L::Var var(0);
  std::vector<L::Keep> keeps(8);
  for (auto& k : keeps) L::ll(var, k);
  int wins = 0;
  for (std::size_t i = 0; i < keeps.size(); ++i) {
    wins += L::sc(var, keeps[i], i + 1);
  }
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(var.read(), 1u);  // the first SC won
}

TEST(LlscFromCas, NoSpaceOverhead) {
  EXPECT_EQ(sizeof(L::Var), sizeof(std::uint64_t));
}

class LlscFromCasStress : public ::testing::TestWithParam<int> {};

// N threads, each repeatedly LL/VL/SC-incrementing a shared counter. The
// final value must equal the number of successful SCs (no lost or phantom
// updates) — the standard linearizability invariant for LL/SC registers.
TEST_P(LlscFromCasStress, SuccessfulScsMatchFinalValue) {
  const int threads = GetParam();
  L::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  constexpr int kAttemptsEach = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      std::uint64_t local = 0;
      for (int i = 0; i < kAttemptsEach; ++i) {
        L::Keep keep;
        const std::uint64_t v = L::ll(var, keep);
        local += L::sc(var, keep, (v + 1) & L::Word::kMaxValue);
      }
      successes.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(var.read(), successes.load() & L::Word::kMaxValue);
  EXPECT_GT(successes.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, LlscFromCasStress,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace moir
