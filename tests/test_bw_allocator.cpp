// BwBlockAllocator (Blelloch–Wei chunked constant-time alloc/free):
// sequential semantics, chunk cache hysteresis, context-free shims, block
// conservation as a hard check, and a multi-thread alloc/free storm that —
// under the asan-reclaim preset — proves poison-on-free catches any use of
// a block the allocator thinks is free. Suite names deliberately contain
// "BlockAllocator" so the existing asan-reclaim ctest filter picks them up.
#include "reclaim/bw_allocator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "stats/stats.hpp"
#include "util/env.hpp"

namespace moir::reclaim {
namespace {

struct Payload {
  std::uint64_t stamp = 0;
};

using Alloc = BwBlockAllocator<Payload>;

TEST(BwBlockAllocator, AllocFreeRoundTrip) {
  Alloc a(8, [](Payload& p) { p.stamp = 7; }, /*chunk=*/4);
  auto ctx = a.make_ctx();
  const auto idx = a.alloc(ctx);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(a.node(*idx).stamp, 7u);
  a.node(*idx).stamp = 42;
  a.free(ctx, *idx);
}

TEST(BwBlockAllocator, AllBlocksDistinctAndInRange) {
  constexpr std::uint32_t kCap = 37;  // not a multiple of chunk: short tail
  Alloc a(kCap, [](Payload&) {}, /*chunk=*/5);
  auto ctx = a.make_ctx();
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < kCap; ++i) {
    const auto idx = a.alloc(ctx);
    ASSERT_TRUE(idx.has_value()) << "pool dry after " << i << " of " << kCap;
    EXPECT_LT(*idx, kCap);
    EXPECT_TRUE(seen.insert(*idx).second) << "index " << *idx << " twice";
  }
  EXPECT_FALSE(a.alloc(ctx).has_value());  // genuinely exhausted
  for (const std::uint32_t idx : seen) a.free(ctx, idx);
}

TEST(BwBlockAllocator, ExhaustionCountsAndRecovers) {
  stats::set_counting(true);
  Alloc a(2, [](Payload&) {}, /*chunk=*/2);
  auto ctx = a.make_ctx();
  const auto x = a.alloc(ctx);
  const auto y = a.alloc(ctx);
  ASSERT_TRUE(x.has_value() && y.has_value());
  const stats::Snapshot before = stats::snapshot();
  EXPECT_FALSE(a.alloc(ctx).has_value());
  if (stats::kCompiledIn) {
    const stats::Snapshot d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kAllocExhaustion], 1u);
  }
  a.free(ctx, *y);
  EXPECT_TRUE(a.alloc(ctx).has_value());  // free makes it allocatable again
}

// The cache hysteresis: frees accumulate privately up to 2C and then spill
// exactly one chunk; allocs drain the cache before touching shared state.
TEST(BwBlockAllocator, CacheSpillsOneChunkPastTwoC) {
  constexpr std::uint32_t kChunk = 4;
  Alloc a(32, [](Payload&) {}, kChunk);
  auto ctx = a.make_ctx();
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 12; ++i) {
    const auto idx = a.alloc(ctx);
    ASSERT_TRUE(idx.has_value());
    held.push_back(*idx);
  }
  // 12 allocs = 3 chunk refills, each drained immediately.
  EXPECT_EQ(ctx.cached(), 0u);
  for (std::size_t i = 0; i < 8; ++i) a.free(ctx, held[i]);
  EXPECT_EQ(ctx.cached(), 8u);  // exactly 2C: no spill yet
  a.free(ctx, held[8]);
  EXPECT_EQ(ctx.cached(), 9u - kChunk);  // crossed 2C: one chunk spilled
  for (std::size_t i = 9; i < held.size(); ++i) a.free(ctx, held[i]);
}

TEST(BwBlockAllocator, ContextFreeShims) {
  Alloc a(6, [](Payload&) {}, /*chunk=*/3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 6; ++i) {
    const auto idx = a.alloc();
    ASSERT_TRUE(idx.has_value());
    EXPECT_TRUE(seen.insert(*idx).second);
  }
  EXPECT_FALSE(a.alloc().has_value());
  for (const std::uint32_t idx : seen) a.free(idx);
  EXPECT_EQ(a.free_count_quiescent(), 6u);
}

// Conservation: after every context spills (destruction), each block is on
// the global chunk stack exactly once, whatever the alloc/free history.
TEST(BwBlockAllocator, ConservationAfterMixedHistory) {
  constexpr std::uint32_t kCap = 26;
  Alloc a(kCap, [](Payload&) {}, /*chunk=*/4);
  {
    auto ctx = a.make_ctx();
    std::vector<std::uint32_t> held;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 5; ++i) {
        if (const auto idx = a.alloc(ctx)) held.push_back(*idx);
      }
      // Free from the middle to shuffle chunk composition.
      while (held.size() > 3) {
        const std::uint32_t idx = held[held.size() / 2];
        held.erase(held.begin() +
                   static_cast<std::ptrdiff_t>(held.size() / 2));
        a.free(ctx, idx);
      }
    }
    for (const std::uint32_t idx : held) a.free(ctx, idx);
  }
  EXPECT_EQ(a.free_count_quiescent(), kCap);
}

// ---------------------------------------------------------------------
// Multi-thread storm. Each thread stamps every block it holds with a
// value unique to (thread, iteration) and re-checks the stamp before
// freeing: if the allocator ever hands one block to two holders, a stamp
// mismatch (or, under ASan, a poison trip at the stamp write) reports it.
// Runs under tier1, the tsan-smoke preset, and asan-reclaim.
// ---------------------------------------------------------------------
TEST(BwBlockAllocatorTorture, ConcurrentStormConservesBlocks) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kCap = 64;  // small: forces chunk-stack contention
  const std::uint64_t iters = scaled_budget(20000);
  Alloc a(kCap, [](Payload&) {}, /*chunk=*/4);
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      auto ctx = a.make_ctx();
      std::vector<std::pair<std::uint32_t, std::uint64_t>> held;
      std::uint64_t local_bad = 0;
      std::uint64_t next_stamp = (std::uint64_t{t} << 32) | 1;
      for (std::uint64_t i = 0; i < iters; ++i) {
        const bool want_alloc = held.size() < 8 && (i % 3 != 0);
        if (want_alloc) {
          if (const auto idx = a.alloc(ctx)) {
            a.node(*idx).stamp = next_stamp;
            held.emplace_back(*idx, next_stamp++);
          }
        } else if (!held.empty()) {
          const auto [idx, stamp] = held.back();
          held.pop_back();
          local_bad += a.node(idx).stamp != stamp;  // double-allocation check
          a.free(ctx, idx);
        }
      }
      for (const auto& [idx, stamp] : held) {
        local_bad += a.node(idx).stamp != stamp;
        a.free(ctx, idx);
      }
      mismatches.fetch_add(local_bad);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u) << "a block was handed out twice";
  EXPECT_EQ(a.free_count_quiescent(), kCap) << "blocks leaked or duplicated";
}

// Context caches spill on destruction even mid-storm: threads churn, die,
// and are replaced; conservation must still hold at the end.
TEST(BwBlockAllocatorTorture, ContextChurnSpillsCaches) {
  constexpr std::uint32_t kCap = 48;
  Alloc a(kCap, [](Payload&) {}, /*chunk=*/4);
  const std::uint64_t generations = scaled_budget(40);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 3; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t g = 0; g < generations; ++g) {
        auto ctx = a.make_ctx();  // fresh context per generation
        std::vector<std::uint32_t> held;
        for (int i = 0; i < 10; ++i) {
          if (const auto idx = a.alloc(ctx)) held.push_back(*idx);
        }
        // The frees land in the private cache; the ctx dtor at the end of
        // this generation must spill them for later generations to refill.
        for (const std::uint32_t idx : held) a.free(ctx, idx);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(a.free_count_quiescent(), kCap);
}

}  // namespace
}  // namespace moir::reclaim
