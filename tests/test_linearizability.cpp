// Checker unit tests (hand-crafted histories) plus end-to-end checking of
// recorded histories from the real implementations.
#include "verify/linearizability.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/bounded_llsc.hpp"
#include "core/cas_from_rllrsc.hpp"
#include "core/llsc_traits.hpp"
#include "util/thread_utils.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

Operation op(unsigned proc, OpKind kind, std::uint64_t arg, std::uint64_t ret,
             std::uint64_t inv, std::uint64_t res) {
  return Operation{proc, kind, arg, ret, inv, res};
}

// ---------- hand-crafted histories ----------

TEST(Checker, EmptyHistoryIsLinearizable) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  EXPECT_TRUE(c.check({}, {}));
}

TEST(Checker, SequentialLlScAccepted) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  std::vector<Operation> h{
      op(0, OpKind::kLl, 0, 5, 0, 1),
      op(0, OpKind::kSc, 6, 1, 2, 3),
      op(0, OpKind::kLl, 0, 6, 4, 5),
  };
  EXPECT_TRUE(c.check(h, {5, 0}));
}

TEST(Checker, WrongLlValueRejected) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  std::vector<Operation> h{op(0, OpKind::kLl, 0, 99, 0, 1)};
  EXPECT_FALSE(c.check(h, {5, 0}));
}

TEST(Checker, ScWithoutLlMustFail) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  // Process 0 never LL'd, so a successful SC is illegal...
  std::vector<Operation> bad{op(0, OpKind::kSc, 9, 1, 0, 1)};
  EXPECT_FALSE(c.check(bad, {5, 0}));
  // ...but a failing SC matches the spec (valid_X[0] is false).
  std::vector<Operation> good{op(0, OpKind::kSc, 9, 0, 0, 1)};
  EXPECT_TRUE(c.check(good, {5, 0}));
}

TEST(Checker, TwoScsAfterSharedGenerationOnlyOneSucceeds) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  // p and q both LL; both SCs report success — impossible.
  std::vector<Operation> h{
      op(0, OpKind::kLl, 0, 5, 0, 1), op(1, OpKind::kLl, 0, 5, 2, 3),
      op(0, OpKind::kSc, 6, 1, 4, 5), op(1, OpKind::kSc, 7, 1, 6, 7)};
  EXPECT_FALSE(c.check(h, {5, 0}));
  // With q's SC failing it is linearizable.
  h[3].ret = 0;
  EXPECT_TRUE(c.check(h, {5, 0}));
}

TEST(Checker, OverlappingOpsUseInterleavingFreedom) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  // p's LL returns the value written by q's SC even though p's LL was
  // invoked first — legal because the two overlap in real time.
  std::vector<Operation> h{
      op(1, OpKind::kLl, 0, 5, 0, 1),
      op(0, OpKind::kLl, 0, 6, 2, 6),  // overlaps q's SC
      op(1, OpKind::kSc, 6, 1, 3, 5),
  };
  EXPECT_TRUE(c.check(h, {5, 0}));
}

TEST(Checker, RealTimeOrderIsEnforced) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  // Same returns, but now p's LL completed BEFORE q's SC was invoked:
  // p's LL cannot see the future value 6.
  std::vector<Operation> h{
      op(1, OpKind::kLl, 0, 5, 0, 1),
      op(0, OpKind::kLl, 0, 6, 2, 3),   // completes first...
      op(1, OpKind::kSc, 6, 1, 4, 5),   // ...then the SC starts
  };
  EXPECT_FALSE(c.check(h, {5, 0}));
}

TEST(Checker, VlSemanticsChecked) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  // VL true after an intervening successful SC is a violation.
  std::vector<Operation> h{
      op(0, OpKind::kLl, 0, 5, 0, 1), op(1, OpKind::kLl, 0, 5, 2, 3),
      op(1, OpKind::kSc, 6, 1, 4, 5), op(0, OpKind::kVl, 0, 1, 6, 7)};
  EXPECT_FALSE(c.check(h, {5, 0}));
  h[3].ret = 0;
  EXPECT_TRUE(c.check(h, {5, 0}));
}

// The ABA history: victim LLs value C; others SC C->B then B->C; victim's
// SC succeeds. Under Figure 2's semantics the victim's valid bit was
// cleared by the first intervening SC, so success is a violation — this is
// the precise sense in which the naive CAS emulation is not a correct
// LL/SC (and the paper's tagged constructions are).
TEST(Checker, AbaHistoryRejected) {
  LinearizabilityChecker<LlscRegisterSpec> c;
  std::vector<Operation> h{
      op(0, OpKind::kLl, 0, 3, 0, 1),
      op(1, OpKind::kLl, 0, 3, 2, 3),
      op(1, OpKind::kSc, 2, 1, 4, 5),
      op(1, OpKind::kLl, 0, 2, 6, 7),
      op(1, OpKind::kSc, 3, 1, 8, 9),   // value back to 3
      op(0, OpKind::kSc, 9, 1, 10, 11),  // victim "succeeds": ABA
  };
  EXPECT_FALSE(c.check(h, {3, 0}));
  h[5].ret = 0;  // correct behaviour: the victim's SC fails
  EXPECT_TRUE(c.check(h, {3, 0}));
}

TEST(Checker, CasSpecSequential) {
  LinearizabilityChecker<CasRegisterSpec> c;
  std::vector<Operation> h{
      op(0, OpKind::kCas, CasRegisterSpec::pack_args(5, 6), 1, 0, 1),
      op(0, OpKind::kRead, 0, 6, 2, 3),
      op(0, OpKind::kCas, CasRegisterSpec::pack_args(5, 7), 0, 4, 5),
  };
  EXPECT_TRUE(c.check(h, {5}));
  h[2].ret = 1;  // stale CAS cannot succeed
  EXPECT_FALSE(c.check(h, {5}));
}

TEST(Checker, ConcurrentCasOnlyOneWinnerPerValue) {
  LinearizabilityChecker<CasRegisterSpec> c;
  // Two fully-overlapping CAS(5->6) and CAS(5->7): both claiming success
  // is impossible...
  std::vector<Operation> h{
      op(0, OpKind::kCas, CasRegisterSpec::pack_args(5, 6), 1, 0, 3),
      op(1, OpKind::kCas, CasRegisterSpec::pack_args(5, 7), 1, 1, 2),
  };
  EXPECT_FALSE(c.check(h, {5}));
  // ...either one failing is fine.
  h[0].ret = 0;
  EXPECT_TRUE(c.check(h, {5}));
}

// ---------- recorded histories from the real implementations ----------

// Record a short window of concurrent LL/VL/SC activity on `substrate` and
// return the history.
template <typename S>
std::vector<Operation> record_window(S& s, unsigned threads, unsigned ops_each,
                                     std::uint64_t initial) {
  typename S::Var var;
  s.init_var(var, initial);
  HistoryRecorder rec(threads);
  SpinBarrier barrier(threads);
  run_threads(threads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.2, 31 * tid + 7);
#endif
    auto ctx = s.make_ctx();
    barrier.arrive_and_wait();
    for (unsigned i = 0; i < ops_each; ++i) {
      typename S::Keep keep;
      auto inv = rec.now();
      const std::uint64_t v = s.ll(ctx, var, keep);
      rec.add(tid, tid, OpKind::kLl, 0, v, inv);

      inv = rec.now();
      const bool valid = s.vl(ctx, var, keep);
      rec.add(tid, tid, OpKind::kVl, 0, valid, inv);

      inv = rec.now();
      const bool ok = s.sc(ctx, var, keep, (v + tid + 1) & s.max_value());
      rec.add(tid, tid, OpKind::kSc, (v + tid + 1) & s.max_value(), ok, inv);
    }
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });
  return rec.collect();
}

template <typename S>
void check_substrate_windows(S& s, unsigned threads) {
  LinearizabilityChecker<LlscRegisterSpec> checker;
  for (int window = 0; window < 40; ++window) {
    const auto h = record_window(s, threads, /*ops_each=*/4, /*initial=*/7);
    ASSERT_LE(h.size(), 64u);
    EXPECT_TRUE(checker.check(h, {7, 0}))
        << "window " << window << " not linearizable";
  }
}

TEST(RecordedHistories, Figure4IsLinearizable) {
  CasBackedLlsc<16> s;
  check_substrate_windows(s, 4);
}

TEST(RecordedHistories, Figure5IsLinearizable) {
  RllBackedLlsc<16> s;
  check_substrate_windows(s, 4);
}

TEST(RecordedHistories, Figure5WithSpuriousFailuresIsLinearizable) {
  FaultInjector faults;
  faults.set_spurious_probability(0.2);
  RllBackedLlsc<16> s(&faults);
  check_substrate_windows(s, 4);
}

TEST(RecordedHistories, Figure7IsLinearizable) {
  LinearizabilityChecker<LlscRegisterSpec> checker;
  for (int window = 0; window < 40; ++window) {
    BoundedLlsc<> s(4, 1);
    const auto h = record_window(s, 4, 4, 7);
    EXPECT_TRUE(checker.check(h, {7, 0})) << "window " << window;
  }
}

TEST(RecordedHistories, Figure3CasIsLinearizable) {
  using Cas = CasFromRllRsc<16>;
  LinearizabilityChecker<CasRegisterSpec> checker;
  FaultInjector faults;
  faults.set_spurious_probability(0.1);
  for (int window = 0; window < 40; ++window) {
    Cas::Var var(5);
    HistoryRecorder rec(4);
    SpinBarrier barrier(4);
    run_threads(4, [&](std::size_t tid) {
      Processor p(&faults);
      barrier.arrive_and_wait();
      for (int i = 0; i < 4; ++i) {
        auto inv = rec.now();
        const std::uint64_t v = Cas::read(var);
        rec.add(tid, tid, OpKind::kRead, 0, v, inv);

        const std::uint64_t new_v = (v + tid + 1) & 0xffff;
        inv = rec.now();
        const bool ok = Cas::cas(p, var, v, new_v);
        rec.add(tid, tid, OpKind::kCas, CasRegisterSpec::pack_args(v, new_v),
                ok, inv);
      }
    });
    EXPECT_TRUE(checker.check(rec.collect(), {5})) << "window " << window;
  }
}

}  // namespace
}  // namespace moir
