#include "core/tagged_word.hpp"

#include <gtest/gtest.h>

namespace moir {
namespace {

TEST(TaggedWord, FieldWidthsFollowTemplateParameter) {
  EXPECT_EQ(TaggedWord<16>::kTagBits, 48u);
  EXPECT_EQ(TaggedWord<16>::kMaxValue, 0xffffu);
  EXPECT_EQ(TaggedWord<32>::kTagBits, 32u);
  EXPECT_EQ(TaggedWord<1>::kMaxValue, 1u);
  EXPECT_EQ(TaggedWord<63>::kMaxTag, 1u);
}

TEST(TaggedWord, MakeRoundTrip) {
  const auto w = TaggedWord<16>::make(0x123456789abcULL, 0xbeef);
  EXPECT_EQ(w.tag(), 0x123456789abcULL);
  EXPECT_EQ(w.value(), 0xbeefu);
}

TEST(TaggedWord, RawRoundTrip) {
  const auto w = TaggedWord<16>::make(7, 9);
  EXPECT_EQ(TaggedWord<16>::from_raw(w.raw()), w);
}

TEST(TaggedWord, SuccessorBumpsTagAndReplacesValue) {
  const auto w = TaggedWord<16>::make(10, 1);
  const auto s = w.successor(2);
  EXPECT_EQ(s.tag(), 11u);
  EXPECT_EQ(s.value(), 2u);
}

TEST(TaggedWord, SuccessorWrapsTag) {
  const auto w = TaggedWord<16>::make(TaggedWord<16>::kMaxTag, 5);
  EXPECT_EQ(w.successor(5).tag(), 0u);
}

TEST(TaggedWord, EqualityComparesBothFields) {
  const auto a = TaggedWord<16>::make(1, 2);
  EXPECT_EQ(a, TaggedWord<16>::make(1, 2));
  EXPECT_NE(a, TaggedWord<16>::make(1, 3));
  EXPECT_NE(a, TaggedWord<16>::make(2, 2));
}

// Property sweep across splits: pack/unpack identity on boundary values.
template <unsigned VB>
void round_trip_boundaries() {
  using W = TaggedWord<VB>;
  for (std::uint64_t tag : {std::uint64_t{0}, std::uint64_t{1}, W::kMaxTag}) {
    for (std::uint64_t val :
         {std::uint64_t{0}, std::uint64_t{1}, W::kMaxValue}) {
      const auto w = W::make(tag, val);
      EXPECT_EQ(w.tag(), tag) << "VB=" << VB;
      EXPECT_EQ(w.value(), val) << "VB=" << VB;
    }
  }
}

TEST(TaggedWord, RoundTripAcrossSplits) {
  round_trip_boundaries<1>();
  round_trip_boundaries<8>();
  round_trip_boundaries<16>();
  round_trip_boundaries<32>();
  round_trip_boundaries<48>();
  round_trip_boundaries<63>();
}

}  // namespace
}  // namespace moir
