// Tests for Figure 7 (bounded-tag LL/VL/SC, Theorem 5).
#include "core/bounded_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "platform/yield_point.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

using B = BoundedLlsc<>;

static_assert(SmallLlscSubstrate<B>);

TEST(BoundedLlsc, PackedFieldsRoundTrip) {
  const auto w = B::Packed::make(1234, 567, 89, 4321);
  EXPECT_EQ(w.tag(), 1234u);
  EXPECT_EQ(w.cnt(), 567u);
  EXPECT_EQ(w.pid(), 89u);
  EXPECT_EQ(w.val(), 4321u);
}

TEST(BoundedLlsc, InitAndRead) {
  B s(2, 2);
  B::Var var;
  s.init_var(var, 99);
  EXPECT_EQ(s.read(var), 99u);
}

TEST(BoundedLlsc, BasicSequence) {
  B s(2, 2);
  B::Var var;
  s.init_var(var, 5);
  auto ctx = s.make_ctx();
  B::Keep keep;
  EXPECT_EQ(s.ll(ctx, var, keep), 5u);
  EXPECT_TRUE(s.vl(ctx, var, keep));
  EXPECT_TRUE(s.sc(ctx, var, keep, 6));
  EXPECT_EQ(s.read(var), 6u);
}

TEST(BoundedLlsc, ScFailsAfterInterveningSc) {
  B s(2, 2);
  B::Var var;
  s.init_var(var, 1);
  auto p = s.make_ctx();
  auto q = s.make_ctx();
  B::Keep kp, kq;
  s.ll(p, var, kp);
  s.ll(q, var, kq);
  EXPECT_TRUE(s.sc(q, var, kq, 2));
  EXPECT_FALSE(s.sc(p, var, kp, 3));
  EXPECT_EQ(s.read(var), 2u);
}

TEST(BoundedLlsc, VlFalseAfterInterveningSc) {
  B s(2, 1);
  B::Var var;
  s.init_var(var, 1);
  auto p = s.make_ctx();
  auto q = s.make_ctx();
  B::Keep kp, kq;
  s.ll(p, var, kp);
  EXPECT_TRUE(s.vl(p, var, kp));
  s.ll(q, var, kq);
  ASSERT_TRUE(s.sc(q, var, kq, 7));
  EXPECT_FALSE(s.vl(p, var, kp));
  s.cl(p, kp);
}

TEST(BoundedLlsc, AbaDetectedDespiteSmallTagSpace) {
  B s(2, 1);
  B::Var var;
  s.init_var(var, 1);
  auto p = s.make_ctx();
  auto q = s.make_ctx();
  B::Keep victim, k;
  s.ll(p, var, victim);
  s.ll(q, var, k);
  ASSERT_TRUE(s.sc(q, var, k, 2));
  s.ll(q, var, k);
  ASSERT_TRUE(s.sc(q, var, k, 1));  // value restored
  EXPECT_FALSE(s.sc(p, var, victim, 9));
}

// k concurrent sequences per process are allowed; k+1 without CL is a
// protocol violation that the slot stack catches (see SlotStack tests).
TEST(BoundedLlsc, KConcurrentSequencesOneProcess) {
  constexpr unsigned k = 3;
  B s(1, k);
  B::Var x, y, z;
  s.init_var(x, 1);
  s.init_var(y, 2);
  s.init_var(z, 3);
  auto ctx = s.make_ctx();
  B::Keep kx, ky, kz;
  s.ll(ctx, x, kx);
  s.ll(ctx, y, ky);
  s.ll(ctx, z, kz);
  EXPECT_TRUE(s.sc(ctx, z, kz, 30));
  EXPECT_TRUE(s.sc(ctx, y, ky, 20));
  EXPECT_TRUE(s.sc(ctx, x, kx, 10));
  EXPECT_EQ(s.read(x), 10u);
  EXPECT_EQ(s.read(y), 20u);
  EXPECT_EQ(s.read(z), 30u);
}

TEST(BoundedLlsc, ClRecyclesSlots) {
  B s(1, 1);  // a single slot: leak detection is immediate
  B::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  for (int i = 0; i < 1000; ++i) {
    B::Keep keep;
    s.ll(ctx, var, keep);
    if (i % 2 == 0) {
      s.cl(ctx, keep);
    } else {
      EXPECT_TRUE(s.sc(ctx, var, keep, i & 0xff));
    }
  }
}

TEST(BoundedLlsc, SpaceAccounting) {
  B s(8, 4);
  // A is Nk words; each variable adds N words of `last`.
  EXPECT_EQ(s.shared_overhead_words(0), 32u);
  EXPECT_EQ(s.shared_overhead_words(10), 32u + 80u);
  // Private: k slots + 2(2Nk+1) queue links + j.
  EXPECT_EQ(s.private_words_per_process(), 4u + 2u * 65u + 1u);
}

// Tags must remain within 0..2Nk forever — the bounded-tag property itself —
// and the cnt field within 0..Nk, even after far more SCs than there are
// tag values.
TEST(BoundedLlsc, TagAndCntStayInBoundedRange) {
  B s(2, 1);
  B::Var var;
  s.init_var(var, 0);
  auto p = s.make_ctx();
  const std::uint64_t tag_bound = 2 * 2 * 1;  // 2Nk
  const std::uint64_t cnt_bound = 2 * 1;      // Nk
  for (int i = 0; i < 500; ++i) {
    B::Keep keep;
    const auto v = s.ll(p, var, keep);
    ASSERT_TRUE(s.sc(p, var, keep, (v + 1) & 0xffff));
    const auto w = s.raw_word(var);
    ASSERT_LE(w.tag(), tag_bound);
    ASSERT_LE(w.cnt(), cnt_bound);
    ASSERT_EQ(w.pid(), p.pid());
  }
}

// The core Theorem 5 story: correctness holds through many times 2Nk+1
// SCs, i.e. across full tag recycling, under contention. With N=4, k=1
// there are only 9 tags; 20000 SCs recycle each tag thousands of times.
class BoundedLlscStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(BoundedLlscStress, CounterInvariantAcrossTagRecycling) {
  const unsigned k = GetParam();
  constexpr unsigned kThreads = 4;
  B s(kThreads, k);
  B::Var var;
  s.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(kThreads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.02, 77 + tid);
#endif
    auto ctx = s.make_ctx();
    std::uint64_t local = 0;
    for (int i = 0; i < 5000; ++i) {
      B::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      local += s.sc(ctx, var, keep, (v + 1) & s.max_value());
    }
    successes.fetch_add(local);
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });
  EXPECT_EQ(s.read(var), successes.load() & s.max_value());
  EXPECT_GT(successes.load(), 4u * 2u * k + 1u)
      << "tags must have been recycled for this test to mean anything";
}

INSTANTIATE_TEST_SUITE_P(KSweep, BoundedLlscStress,
                         ::testing::Values(1u, 2u, 4u));

// Multiple variables sharing one domain: announcements from different
// variables flow through the same A array; per-variable `last` counters
// must keep them independent.
TEST(BoundedLlscStress, ManyVariablesOneDomain) {
  constexpr unsigned kThreads = 4;
  constexpr int kVars = 8;
  B s(kThreads, 2);
  std::vector<B::Var> vars(kVars);
  for (auto& v : vars) s.init_var(v, 0);
  std::vector<std::atomic<std::uint64_t>> succ(kVars);
  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = s.make_ctx();
    Xoshiro256 rng(tid * 31 + 1);
    for (int i = 0; i < 8000; ++i) {
      const int vi = static_cast<int>(rng.next_below(kVars));
      B::Keep keep;
      const auto v = s.ll(ctx, vars[vi], keep);
      if (s.sc(ctx, vars[vi], keep, (v + 1) & s.max_value())) {
        succ[vi].fetch_add(1);
      }
    }
  });
  for (int vi = 0; vi < kVars; ++vi) {
    EXPECT_EQ(s.read(vars[vi]), succ[vi].load() & s.max_value())
        << "variable " << vi;
  }
}

}  // namespace
}  // namespace moir
