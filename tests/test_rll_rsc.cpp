#include "platform/rll_rsc.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace moir {
namespace {

TEST(RllRsc, RllReadsCurrentValue) {
  RllWord w(42);
  Processor p;
  EXPECT_EQ(p.rll(w), 42u);
  EXPECT_EQ(w.read(), 42u);
}

TEST(RllRsc, RscSucceedsWhenUnchanged) {
  RllWord w(1);
  Processor p;
  p.rll(w);
  EXPECT_TRUE(p.rsc(w, 2));
  EXPECT_EQ(w.read(), 2u);
  EXPECT_EQ(w.write_count(), 1u);
}

TEST(RllRsc, RscFailsAfterInterveningWrite) {
  RllWord w(1);
  Processor p, q;
  p.rll(w);
  q.rll(w);
  EXPECT_TRUE(q.rsc(w, 5));
  EXPECT_FALSE(p.rsc(w, 9));
  EXPECT_EQ(w.read(), 5u);
  EXPECT_EQ(p.stats().conflict_failures, 1u);
}

// A reservation must be cleared by ANY intervening write, even one that
// restores the original value (ABA). This is what distinguishes the
// versioned emulation from plain CAS.
TEST(RllRsc, RscDetectsAba) {
  RllWord w(1);
  Processor victim, other;
  victim.rll(w);
  other.rll(w);
  ASSERT_TRUE(other.rsc(w, 2));
  other.rll(w);
  ASSERT_TRUE(other.rsc(w, 1));  // value back to original
  EXPECT_EQ(w.read(), 1u);
  EXPECT_FALSE(victim.rsc(w, 7)) << "versioned RSC must fail on ABA";
}

// The weak (value-only) flavour is ABA-blind by design.
TEST(RllRsc, WeakRscIsAbaBlind) {
  RllWord w(1);
  Processor victim, other;
  victim.rll(w);
  other.rll(w);
  ASSERT_TRUE(other.rsc(w, 2));
  other.rll(w);
  ASSERT_TRUE(other.rsc(w, 1));
  EXPECT_TRUE(victim.rsc_weak(w, 7));
  EXPECT_EQ(w.read(), 7u);
}

TEST(RllRsc, WeakRscStillFailsOnRealChange) {
  RllWord w(1);
  Processor victim, other;
  victim.rll(w);
  other.rll(w);
  ASSERT_TRUE(other.rsc(w, 2));
  EXPECT_FALSE(victim.rsc_weak(w, 7));
}

// Restriction: one reservation per processor. A second RLL replaces the
// first (the R4000 has a single LLBit).
TEST(RllRsc, SecondRllReplacesReservation) {
  RllWord a(1), b(2);
  Processor p;
  p.rll(a);
  p.rll(b);  // reservation now on b
  EXPECT_TRUE(p.rsc(b, 20));
#ifdef MOIR_DISABLE_ASSERTS
  EXPECT_FALSE(p.rsc(a, 10));
#endif
  EXPECT_EQ(a.read(), 1u);
  EXPECT_EQ(b.read(), 20u);
}

TEST(RllRsc, ReservationConsumedByRsc) {
  RllWord w(0);
  Processor p;
  p.rll(w);
  EXPECT_TRUE(p.has_reservation());
  EXPECT_TRUE(p.rsc(w, 1));
  EXPECT_FALSE(p.has_reservation());
}

TEST(RllRsc, SpuriousFailureInjection) {
  RllWord w(0);
  FaultInjector faults;
  Processor p(&faults);
  faults.force_failures(2);
  p.rll(w);
  EXPECT_FALSE(p.rsc(w, 1));  // spurious
  p.rll(w);
  EXPECT_FALSE(p.rsc(w, 1));  // spurious
  p.rll(w);
  EXPECT_TRUE(p.rsc(w, 1));  // forced failures exhausted
  EXPECT_EQ(p.stats().spurious_failures, 2u);
  EXPECT_EQ(p.stats().successes, 1u);
}

TEST(RllRsc, StatsCountAttempts) {
  RllWord w(0);
  Processor p;
  for (int i = 0; i < 5; ++i) {
    p.rll(w);
    ASSERT_TRUE(p.rsc(w, i));
  }
  EXPECT_EQ(p.stats().attempts, 5u);
  EXPECT_EQ(p.stats().successes, 5u);
  p.reset_stats();
  EXPECT_EQ(p.stats().attempts, 0u);
}

// N threads perform RLL/RSC increments; every successful RSC must represent
// exactly one increment (no lost updates), and version equals total writes.
TEST(RllRscStress, NoLostUpdates) {
  RllWord w(0);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrementsEach = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w] {
      Processor p;
      for (std::uint64_t i = 0; i < kIncrementsEach; ++i) {
        for (;;) {
          const std::uint64_t v = p.rll(w);
          if (p.rsc(w, v + 1)) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(w.read(), kThreads * kIncrementsEach);
  EXPECT_EQ(w.write_count(), kThreads * kIncrementsEach);
}

// Same under a high spurious-failure rate: progress and correctness hold
// (wait-freedom is conditional on finitely many spurious failures per op,
// which a 30% Bernoulli rate gives with probability 1).
TEST(RllRscStress, NoLostUpdatesWithSpuriousFailures) {
  RllWord w(0);
  FaultInjector faults;
  faults.set_spurious_probability(0.3);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIncrementsEach = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, &faults] {
      Processor p(&faults);
      for (std::uint64_t i = 0; i < kIncrementsEach; ++i) {
        for (;;) {
          const std::uint64_t v = p.rll(w);
          if (p.rsc(w, v + 1)) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(w.read(), kThreads * kIncrementsEach);
  EXPECT_GT(faults.injected_count(), 0u);
}

}  // namespace
}  // namespace moir
