#include "core/value_codec.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "util/rng.hpp"

namespace moir {
namespace {

TEST(ValueCodec, ChunksNeeded) {
  EXPECT_EQ(chunks_needed(0, 32), 0u);
  EXPECT_EQ(chunks_needed(4, 32), 1u);
  EXPECT_EQ(chunks_needed(5, 32), 2u);
  EXPECT_EQ(chunks_needed(8, 32), 2u);
  EXPECT_EQ(chunks_needed(8, 16), 4u);
  EXPECT_EQ(chunks_needed(3, 24), 1u);
  EXPECT_EQ(chunks_needed(4, 24), 2u);
  EXPECT_EQ(chunks_needed(1, 1), 8u);
}

TEST(ValueCodec, ByteRoundTripAcrossChunkWidths) {
  Xoshiro256 rng(42);
  for (unsigned chunk_bits : {1u, 7u, 8u, 16u, 24u, 32u, 48u, 63u, 64u}) {
    for (std::size_t len : {std::size_t{1}, std::size_t{3}, std::size_t{16},
                            std::size_t{33}}) {
      std::vector<std::byte> in(len);
      for (auto& b : in) b = static_cast<std::byte>(rng.next() & 0xff);
      std::vector<std::uint64_t> chunks(chunks_needed(len, chunk_bits));
      encode_bytes(in, chunks, chunk_bits);
      for (const auto c : chunks) {
        EXPECT_LE(c, low_mask(chunk_bits)) << "chunk overflows payload width";
      }
      std::vector<std::byte> out(len);
      decode_bytes(chunks, out, chunk_bits);
      EXPECT_EQ(in, out) << "chunk_bits=" << chunk_bits << " len=" << len;
    }
  }
}

struct Point {
  double x, y, z;
  std::uint32_t id;
  friend bool operator==(const Point&, const Point&) = default;
};

TEST(ValueCodec, StructRoundTrip) {
  const Point p{1.5, -2.25, 1e300, 0xdeadbeef};
  std::vector<std::uint64_t> chunks(chunks_needed(sizeof(Point), 32));
  encode_value(p, chunks, 32);
  EXPECT_EQ(decode_value<Point>(chunks, 32), p);
}

TEST(ValueCodec, U64RoundTripNarrowChunks) {
  const std::uint64_t v = 0x0123456789abcdefULL;
  std::vector<std::uint64_t> chunks(chunks_needed(sizeof v, 24));
  encode_value(v, chunks, 24);
  EXPECT_EQ(decode_value<std::uint64_t>(chunks, 24), v);
}

TEST(ValueCodec, ZeroPaddingInLastChunk) {
  // 1 byte into 64-bit chunks: the high 56 bits must be zero.
  std::array<std::byte, 1> in{std::byte{0xff}};
  std::vector<std::uint64_t> chunks(1);
  encode_bytes(in, chunks, 64);
  EXPECT_EQ(chunks[0], 0xffu);
}

}  // namespace
}  // namespace moir
