// Multi-key transactions (src/txn/): TxnKv semantics for the single-key
// verbs and multi_get/multi_put/multi_cas, counter accounting, pool
// exhaustion, the txn-mode KvService round trip, linearizability of
// interleaved single/multi-key ops against TxnSpec under DFS and PCT
// controlled schedules, and a transfer-torture conservation check.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "sim/explore.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "txn/txn_kv.hpp"
#include "util/env.hpp"
#include "util/thread_utils.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using reclaim::EpochReclaimer;
using txn::TxnStatus;
using Sub = CasBackedLlsc<16>;
using Map = ShardedHashMap<Sub, EpochReclaimer>;
using Txn = txn::TxnKv<Sub, EpochReclaimer>;
using Svc = svc::KvService<Sub, EpochReclaimer>;
using svc::Op;
using svc::Status;

class CountingScope {
 public:
  CountingScope() : was_(stats::counting_enabled()) {
    stats::set_counting(true);
  }
  ~CountingScope() { stats::set_counting(was_); }

 private:
  bool was_;
};

Map::Config small_map() {
  return {.shards = 2, .buckets_per_shard = 4, .capacity_per_shard = 64};
}

TEST(TxnKv, SingleKeyVerbs) {
  Sub sub;
  Map map(sub, 4, small_map());
  Txn txn(map, 4);
  auto ctx = txn.make_ctx();

  EXPECT_FALSE(txn.get(ctx, 7).has_value());
  EXPECT_EQ(txn.insert(ctx, 7, 100), TxnStatus::kOk);
  EXPECT_EQ(txn.insert(ctx, 7, 200), TxnStatus::kMiss)
      << "duplicate insert reports already-present";
  EXPECT_EQ(txn.get(ctx, 7), std::optional<std::uint64_t>{100});
  EXPECT_EQ(txn.upsert(ctx, 7, 300), TxnStatus::kMiss)
      << "upsert on a present key reports updated-in-place";
  EXPECT_EQ(txn.get(ctx, 7), std::optional<std::uint64_t>{300});
  EXPECT_EQ(txn.upsert(ctx, 8, 1), TxnStatus::kOk) << "upsert inserted";

  EXPECT_TRUE(txn.erase(ctx, 7));
  EXPECT_FALSE(txn.get(ctx, 7).has_value());
  EXPECT_FALSE(txn.erase(ctx, 7)) << "second erase finds nothing";
  // Reinsert after erase: the node survived (insert-only discipline), the
  // cell was 0, so a conditional insert succeeds again.
  EXPECT_EQ(txn.insert(ctx, 7, 42), TxnStatus::kOk);
  EXPECT_EQ(txn.get(ctx, 7), std::optional<std::uint64_t>{42});
  EXPECT_EQ(txn.get(ctx, 8), std::optional<std::uint64_t>{1});
}

TEST(TxnKv, MultiGetPutCas) {
  Sub sub;
  Map map(sub, 4, small_map());
  Txn txn(map, 4);
  auto ctx = txn.make_ctx();

  const std::uint64_t keys[] = {1, 2, 3};
  std::uint64_t out[3];
  txn.multi_get(ctx, keys, out);
  for (const std::uint64_t c : out) EXPECT_EQ(c, Txn::kAbsent);

  const std::uint64_t vals[] = {10, 20, 30};
  EXPECT_EQ(txn.multi_put(ctx, keys, vals), TxnStatus::kOk);
  txn.multi_get(ctx, keys, out);
  EXPECT_EQ(out[0], Txn::wire(10));
  EXPECT_EQ(out[1], Txn::wire(20));
  EXPECT_EQ(out[2], Txn::wire(30));
  EXPECT_EQ(txn.get(ctx, 2), std::optional<std::uint64_t>{20});

  // Matched 3-key CAS (a transfer), witness = the snapshot it read.
  const std::uint64_t exp1[] = {Txn::wire(10), Txn::wire(20), Txn::wire(30)};
  const std::uint64_t des1[] = {Txn::wire(5), Txn::wire(20), Txn::wire(35)};
  std::uint64_t wit[3];
  EXPECT_EQ(txn.multi_cas(ctx, keys, exp1, des1, wit), TxnStatus::kOk);
  EXPECT_EQ(wit[0], Txn::wire(10));
  EXPECT_EQ(wit[2], Txn::wire(30));

  // The same comparison now mismatches; the witness reports the values
  // that refuted it and nothing changed.
  EXPECT_EQ(txn.multi_cas(ctx, keys, exp1, des1, wit), TxnStatus::kMiss);
  EXPECT_EQ(wit[0], Txn::wire(5));
  EXPECT_EQ(wit[2], Txn::wire(35));
  EXPECT_EQ(txn.get(ctx, 1), std::optional<std::uint64_t>{5});

  // Expect-absent insert: fresh keys, expected = 0. Absence is registered
  // on the (pre-created) cells, so it is part of the atomic comparison.
  const std::uint64_t fresh[] = {4, 5};
  const std::uint64_t exp0[] = {Txn::kAbsent, Txn::kAbsent};
  const std::uint64_t desf[] = {Txn::wire(1), Txn::wire(2)};
  EXPECT_EQ(txn.multi_cas(ctx, fresh, exp0, desf), TxnStatus::kOk);
  EXPECT_EQ(txn.multi_cas(ctx, fresh, exp0, desf), TxnStatus::kMiss)
      << "now present: expect-absent must fail";

  // Multi-key erase: desired = 0 writes both keys absent atomically.
  const std::uint64_t dese[] = {Txn::kAbsent, Txn::kAbsent};
  EXPECT_EQ(txn.multi_cas(ctx, fresh, desf, dese), TxnStatus::kOk);
  EXPECT_FALSE(txn.get(ctx, 4).has_value());
  EXPECT_FALSE(txn.get(ctx, 5).has_value());
}

TEST(TxnKv, CountersAccount) {
  CountingScope counting;
  Sub sub;
  Map map(sub, 4, small_map());
  Txn txn(map, 4);
  auto ctx = txn.make_ctx();
  const auto before = stats::snapshot();

  const std::uint64_t keys[] = {1, 2};
  const std::uint64_t vals[] = {10, 20};
  ASSERT_EQ(txn.multi_put(ctx, keys, vals), TxnStatus::kOk);
  std::uint64_t out[2];
  txn.multi_get(ctx, keys, out);
  const std::uint64_t bad[] = {0, 0};  // expects both absent: mismatch
  ASSERT_EQ(txn.multi_cas(ctx, keys, bad, bad), TxnStatus::kMiss);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kTxnStart], 3u);
    EXPECT_EQ(d[stats::Id::kTxnCommit], 2u) << "put + get commit";
    EXPECT_EQ(d[stats::Id::kTxnAbort], 1u) << "the failed comparison";
    // Uncontended single-threaded run: no helping, no revalidation.
    EXPECT_EQ(d[stats::Id::kTxnHelp], 0u);
    EXPECT_EQ(d[stats::Id::kTxnRevalidate], 0u);
  }
}

TEST(TxnKv, NoSpaceLeavesStoreUntouched) {
  Sub sub;
  // One shard with a tiny node pool so it exhausts quickly.
  Map map(sub, 4, {.shards = 1, .buckets_per_shard = 1,
                   .capacity_per_shard = 8});
  Txn txn(map, 4);
  auto ctx = txn.make_ctx();

  ASSERT_EQ(txn.insert(ctx, 0, 5), TxnStatus::kOk);
  // Exhaust the pool with fresh keys (insert-only: erase frees nothing).
  std::uint64_t k = 1;
  while (txn.insert(ctx, k, 1) != TxnStatus::kNoSpace) {
    ASSERT_LT(k, 64u) << "pool never exhausted";
    ++k;
  }
  const std::uint64_t fresh[] = {k + 1, k + 2};
  const std::uint64_t vals[] = {1, 2};
  EXPECT_EQ(txn.multi_put(ctx, fresh, vals), TxnStatus::kNoSpace);
  const std::uint64_t exp0[] = {Txn::kAbsent, Txn::kAbsent};
  EXPECT_EQ(txn.multi_cas(ctx, fresh, exp0, exp0), TxnStatus::kNoSpace);
  // Existing keys are untouched and still transactional.
  EXPECT_EQ(txn.get(ctx, 0), std::optional<std::uint64_t>{5});
  const std::uint64_t present[] = {0, 1};
  std::uint64_t out[2];
  txn.multi_get(ctx, present, out);
  EXPECT_EQ(out[0], Txn::wire(5));
  EXPECT_EQ(out[1], Txn::wire(1));
}

// ---------------------------------------------------------------------
// Txn-mode service: single-key verbs keep their semantics through the
// pipeline, multi ops round-trip through submit_multi/poll with the
// response vector, and a mismatching kMultiCas reports kNotFound plus
// the witness.
// ---------------------------------------------------------------------
TEST(KvServiceTxn, MultiOpRoundTrip) {
  Sub sub;
  Svc svc(sub, {.queues = 2,
                .workers = 2,
                .batch = 4,
                .max_sessions = 2,
                .tickets_per_session = 8,
                .use_rings = true,
                .txn = true,
                .map = small_map()});
  auto c = svc.connect();

  auto do_op = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    return svc.wait(c, *t);
  };

  // Single-key semantics survive the txn routing.
  EXPECT_EQ(do_op(Op::kInsert, 1, 5).status, Status::kOk);
  EXPECT_EQ(do_op(Op::kInsert, 1, 6).status, Status::kNotFound);
  const auto hit = do_op(Op::kFind, 1);
  EXPECT_EQ(hit.status, Status::kOk);
  EXPECT_EQ(hit.value, 5u);
  EXPECT_EQ(do_op(Op::kUpsert, 1, 6).status, Status::kNotFound);
  EXPECT_EQ(do_op(Op::kFind, 1).value, 6u);

  // multi_put then multi_get across shards.
  const std::uint64_t keys[] = {2, 3};
  const std::uint64_t vals[] = {20, 30};
  auto t = svc.submit_multi(c, Op::kMultiPut, keys, vals);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(c, *t).status, Status::kOk);

  const std::uint64_t all[] = {1, 2, 3, 4};
  std::uint64_t got[4];
  t = svc.submit_multi(c, Op::kMultiGet, all);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(c, *t, got).status, Status::kOk);
  EXPECT_EQ(got[0], Txn::wire(6));
  EXPECT_EQ(got[1], Txn::wire(20));
  EXPECT_EQ(got[2], Txn::wire(30));
  EXPECT_EQ(got[3], Txn::kAbsent);

  // Matched transfer via kMultiCas (wire-form desired/expected).
  const std::uint64_t exps[] = {Txn::wire(20), Txn::wire(30)};
  const std::uint64_t dess[] = {Txn::wire(15), Txn::wire(35)};
  std::uint64_t wit[2];
  t = svc.submit_multi(c, Op::kMultiCas, keys, dess, exps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(c, *t, wit).status, Status::kOk);
  EXPECT_EQ(wit[0], Txn::wire(20));
  EXPECT_EQ(wit[1], Txn::wire(30));

  // The stale comparison now misses; witness carries the refuting values.
  t = svc.submit_multi(c, Op::kMultiCas, keys, dess, exps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(c, *t, wit).status, Status::kNotFound);
  EXPECT_EQ(wit[0], Txn::wire(15));
  EXPECT_EQ(wit[1], Txn::wire(35));

  // Erase through the pipeline, observed by a snapshot.
  EXPECT_EQ(do_op(Op::kErase, 2).status, Status::kOk);
  t = svc.submit_multi(c, Op::kMultiGet, keys);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.wait(c, *t, wit).status, Status::kOk);
  EXPECT_EQ(wit[0], Txn::kAbsent);
  EXPECT_EQ(wit[1], Txn::wire(35));
}

// ---------------------------------------------------------------------
// Linearizability of interleaved single- and multi-key operations against
// TxnSpec, DFS-explored on an adversarial 1-shard configuration (every
// key collides on one Harris list, every transaction crosses the same
// cells). Direct TxnKv access; each transact-ful operation runs on a
// FRESH ThreadCtx (fresh STM pid), so the descriptor-drain spin in
// try_transact is structurally unreachable and the DFS tree stays finite.
// ---------------------------------------------------------------------
struct TxnLinShared {
  Sub sub;
  Map map;
  Txn txn;
  HistoryRecorder rec{2};

  TxnLinShared()
      : map(sub, 16,
            {.shards = 1, .buckets_per_shard = 1, .capacity_per_shard = 16}),
        txn(map, 16) {}

  void do_insert(unsigned t, std::uint64_t key, std::uint64_t val) {
    auto ctx = txn.make_ctx();
    const auto inv = rec.now();
    const TxnStatus st = txn.insert(ctx, key, val);
    rec.add(t, t, OpKind::kMapInsert, TxnSpec::pack_args(key, val),
            st == TxnStatus::kOk ? 1 : 0, inv);
  }

  void do_mput(unsigned t, std::uint64_t k1, std::uint64_t k2,
               std::uint64_t v1, std::uint64_t v2) {
    auto ctx = txn.make_ctx();
    const std::uint64_t keys[] = {k1, k2};
    const std::uint64_t vals[] = {v1, v2};
    const auto inv = rec.now();
    const TxnStatus st = txn.multi_put(ctx, keys, vals);
    ASSERT_EQ(st, TxnStatus::kOk);
    rec.add(t, t, OpKind::kTxnMPut, TxnSpec::pack_mput(k1, k2, v1, v2), 1,
            inv);
  }

  void do_mcas(unsigned t, std::uint64_t k1, std::uint64_t k2,
               std::uint64_t e1, std::uint64_t e2, std::uint64_t d1,
               std::uint64_t d2) {
    auto ctx = txn.make_ctx();
    const std::uint64_t keys[] = {k1, k2};
    const std::uint64_t exps[] = {e1, e2};
    const std::uint64_t dess[] = {d1, d2};
    std::uint64_t wit[2];
    const auto inv = rec.now();
    const TxnStatus st = txn.multi_cas(ctx, keys, exps, dess, wit);
    rec.add(t, t, OpKind::kTxnMCas,
            TxnSpec::pack_mcas(k1, k2, e1, e2, d1, d2),
            TxnSpec::mcas_ret(st == TxnStatus::kOk, wit[0], wit[1]), inv);
  }

  // multi_get never transacts (read-only double-collect), so reusing a
  // ctx is fine; a fresh one keeps the pid accounting uniform.
  void do_mget(unsigned t, std::uint64_t k1, std::uint64_t k2) {
    auto ctx = txn.make_ctx();
    const std::uint64_t keys[] = {k1, k2};
    std::uint64_t out[2];
    const auto inv = rec.now();
    txn.multi_get(ctx, keys, out);
    rec.add(t, t, OpKind::kTxnMGet, TxnSpec::pack_mget(k1, k2),
            TxnSpec::mget_ret(out[0], out[1]), inv);
  }

  bool check() {
    LinearizabilityChecker<TxnSpec> checker;
    return checker.check(rec.collect(), TxnSpec::State{});
  }
};

TEST(TxnKv, ExploreLinearizable) {
  auto make_trial = [] {
    auto sh = std::make_shared<TxnLinShared>();
    testing::ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      sh->do_insert(0, 0, 1);
      // Transfer iff key 0 holds 1 and key 1 is absent.
      sh->do_mcas(0, 0, 1, Txn::wire(1), Txn::kAbsent, Txn::kAbsent,
                  Txn::wire(1));
    });
    trial.bodies.push_back([sh] {
      sh->do_mput(1, 0, 1, 3, 4);
      sh->do_mget(1, 0, 1);
    });
    trial.check = [sh] { return sh->check(); };
    return trial;
  };

  const testing::ExploreOptions opts{.max_trials = scaled_budget(150)};
  const auto r = testing::ScheduleExplorer::explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable transaction history under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 0u);
}

// ---------------------------------------------------------------------
// The full txn-mode ring pipeline under PCT schedules: two sessions
// interleave single-key ops and two-key transactions; each body routes
// its own ring (SPSC: unique consumer) and pumps the shared queues; the
// observer reconstructs TxnSpec return values from the slot's response
// vector at completion time.
// ---------------------------------------------------------------------
struct SvcTxnPending {
  OpKind kind = OpKind::kMapFind;
  std::uint64_t arg = 0;
  std::uint64_t inv = 0;
};

struct SvcTxnShared {
  Sub sub;
  Svc svc;
  HistoryRecorder rec{2};
  std::vector<Svc::ClientCtx> clients;
  std::vector<Svc::WorkerCtx> workers;
  std::array<std::array<SvcTxnPending, 8>, 2> pending{};
  std::array<std::uint32_t, 2> next_slot{};
  std::array<std::vector<Svc::Ticket>, 2> issued;

  SvcTxnShared()
      : svc(sub, {.queues = 1,
                  .queue_capacity = 16,
                  .workers = 0,
                  .batch = 4,
                  .max_sessions = 2,
                  .tickets_per_session = 8,
                  .use_rings = true,
                  .txn = true,
                  .map = {.shards = 1, .buckets_per_shard = 1,
                          .capacity_per_shard = 16}}) {
    clients.reserve(2);
    workers.reserve(2);
    for (int t = 0; t < 2; ++t) {
      clients.push_back(svc.connect());
      workers.push_back(svc.make_worker_ctx());
    }
  }

  std::uint64_t ret_of(const SvcTxnPending& p, std::uint64_t handle,
                       const svc::Response& r) {
    if (r.status == Status::kOverload) return TxnSpec::kShed;
    switch (p.kind) {
      case OpKind::kMapFind:
        return r.status == Status::kOk ? r.value + 1 : 0;
      case OpKind::kTxnMGet: {
        const auto& ts = svc.peek_slot(handle);
        return TxnSpec::mget_ret(ts.resp_values[0], ts.resp_values[1]);
      }
      case OpKind::kTxnMPut:
        return 1;
      case OpKind::kTxnMCas: {
        const auto& ts = svc.peek_slot(handle);
        return TxnSpec::mcas_ret(r.status == Status::kOk, ts.resp_values[0],
                                 ts.resp_values[1]);
      }
      default:
        return r.status == Status::kOk ? 1 : 0;
    }
  }

  auto observer() {
    return [this](std::uint64_t handle, const svc::Response& r) {
      const unsigned sid = svc::handle_session(handle);
      const SvcTxnPending& p = pending[sid][svc::handle_slot(handle)];
      rec.add(sid, sid, p.kind, p.arg, ret_of(p, handle, r), p.inv);
    };
  }

  void book(unsigned t, OpKind kind, std::uint64_t arg,
            const std::optional<Svc::Ticket>& ticket) {
    const std::uint32_t slot = next_slot[t];
    if (!ticket.has_value()) {
      rec.add(t, t, kind, arg, TxnSpec::kShed, pending[t][slot].inv);
      return;
    }
    next_slot[t] = slot + 1;
    issued[t].push_back(*ticket);
  }

  void submit_single(unsigned t, OpKind kind, Op op, std::uint64_t key,
                     std::uint64_t val) {
    const std::uint64_t arg = kind == OpKind::kMapErase ||
                                      kind == OpKind::kMapFind
                                  ? key
                                  : TxnSpec::pack_args(key, val);
    pending[t][next_slot[t]] = SvcTxnPending{kind, arg, rec.now()};
    book(t, kind, arg, svc.submit(clients[t], op, key, val));
  }

  void submit_mput(unsigned t, std::uint64_t k1, std::uint64_t k2,
                   std::uint64_t v1, std::uint64_t v2) {
    const std::uint64_t keys[] = {k1, k2};
    const std::uint64_t vals[] = {v1, v2};
    const std::uint64_t arg = TxnSpec::pack_mput(k1, k2, v1, v2);
    pending[t][next_slot[t]] = SvcTxnPending{OpKind::kTxnMPut, arg, rec.now()};
    book(t, OpKind::kTxnMPut, arg,
         svc.submit_multi(clients[t], Op::kMultiPut, keys, vals));
  }

  void submit_mget(unsigned t, std::uint64_t k1, std::uint64_t k2) {
    const std::uint64_t keys[] = {k1, k2};
    const std::uint64_t arg = TxnSpec::pack_mget(k1, k2);
    pending[t][next_slot[t]] = SvcTxnPending{OpKind::kTxnMGet, arg, rec.now()};
    book(t, OpKind::kTxnMGet, arg,
         svc.submit_multi(clients[t], Op::kMultiGet, keys));
  }

  void submit_mcas(unsigned t, std::uint64_t k1, std::uint64_t k2,
                   std::uint64_t e1, std::uint64_t e2, std::uint64_t d1,
                   std::uint64_t d2) {
    const std::uint64_t keys[] = {k1, k2};
    const std::uint64_t exps[] = {e1, e2};
    const std::uint64_t dess[] = {d1, d2};
    const std::uint64_t arg = TxnSpec::pack_mcas(k1, k2, e1, e2, d1, d2);
    pending[t][next_slot[t]] = SvcTxnPending{OpKind::kTxnMCas, arg, rec.now()};
    book(t, OpKind::kTxnMCas, arg,
         svc.submit_multi(clients[t], Op::kMultiCas, keys, dess, exps));
  }

  bool check() {
    for (unsigned t = 0; t < 2; ++t) {
      for (const auto& ticket : issued[t]) {
        if (!svc.poll(clients[t], ticket).has_value()) return false;
      }
    }
    LinearizabilityChecker<TxnSpec> checker;
    return checker.check(rec.collect(), TxnSpec::State{});
  }
};

TEST(PctSmoke, TxnPipeline) {
  auto make_trial = [] {
    auto sh = std::make_shared<SvcTxnShared>();
    testing::ScheduleExplorer::Trial trial;
    auto route_and_pump = [sh](unsigned t) {
      sh->svc.pump_session(sh->workers[t].dctx, sh->clients[t].session(),
                           sh->observer());
      sh->svc.pump(sh->workers[t], sh->observer());
    };
    auto drain = [sh](unsigned t) {
      for (;;) {
        const unsigned moved = sh->svc.pump_session(
            sh->workers[t].dctx, sh->clients[t].session(), sh->observer());
        const unsigned done = sh->svc.pump(sh->workers[t], sh->observer());
        if (moved == 0 && done == 0) break;
      }
    };
    trial.bodies.push_back([sh, route_and_pump, drain] {
      sh->submit_single(0, OpKind::kMapInsert, Op::kInsert, 0, 1);
      route_and_pump(0);
      // Transfer 0 -> 1 iff key 0 holds 1 and key 1 is absent.
      sh->submit_mcas(0, 0, 1, Txn::wire(1), Txn::kAbsent, Txn::kAbsent,
                      Txn::wire(1));
      drain(0);
    });
    trial.bodies.push_back([sh, route_and_pump, drain] {
      sh->submit_mput(1, 0, 1, 3, 4);
      route_and_pump(1);
      sh->submit_mget(1, 0, 1);
      drain(1);
    });
    trial.check = [sh] { return sh->check(); };
    return trial;
  };

  const testing::PctOptions opts{
      .runs = scaled_budget(30),
      .depth = 3,
      .change_range = 128,
      .seed = base_seed() + 41,
  };
  const auto r = testing::ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable txn pipeline history under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

// ---------------------------------------------------------------------
// Transfer torture: concurrent 2-key multi_cas transfers over an 8-key
// account set, with k=8 multi_get snapshots asserting value conservation
// mid-run. This is the asan-reclaim shard's txn entry and the in-tree
// twin of bench_txn's checksum hard check.
// ---------------------------------------------------------------------
TEST(TxnTorture, TransfersConserveSum) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kAccounts = 8;
  constexpr std::uint64_t kInitial = 100;
  constexpr std::uint64_t kTotal = kAccounts * kInitial;
  Sub sub;
  Map map(sub, kThreads + 4, small_map());
  Txn txn(map, kThreads + 4);

  std::uint64_t all_keys[kAccounts];
  for (unsigned i = 0; i < kAccounts; ++i) all_keys[i] = i;
  {
    auto ctx = txn.make_ctx();
    std::uint64_t init[kAccounts];
    std::fill(std::begin(init), std::end(init), kInitial);
    ASSERT_EQ(txn.multi_put(ctx, all_keys, init), TxnStatus::kOk);
  }

  auto snapshot_sum = [&](Txn::ThreadCtx& ctx) {
    std::uint64_t snap[kAccounts];
    txn.multi_get(ctx, all_keys, snap);
    std::uint64_t sum = 0;
    for (const std::uint64_t c : snap) {
      EXPECT_NE(c, Txn::kAbsent) << "account vanished";
      sum += c - 1;
    }
    return sum;
  };

  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = txn.make_ctx();
    std::uint64_t s = tid * 0x9e3779b97f4a7c15ULL + 1;
    auto rnd = [&s] {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      return s >> 33;
    };
    for (unsigned iter = 0; iter < 2000; ++iter) {
      const std::uint64_t i = rnd() % kAccounts;
      std::uint64_t j = rnd() % kAccounts;
      if (j == i) j = (j + 1) % kAccounts;
      const std::uint64_t pair[] = {i, j};
      std::uint64_t snap[2];
      txn.multi_get(ctx, pair, snap);
      ASSERT_NE(snap[0], Txn::kAbsent);
      ASSERT_NE(snap[1], Txn::kAbsent);
      const std::uint64_t vi = snap[0] - 1;
      const std::uint64_t vj = snap[1] - 1;
      const std::uint64_t d = std::min<std::uint64_t>(vi, 1 + rnd() % 10);
      const std::uint64_t des[] = {Txn::wire(vi - d), Txn::wire(vj + d)};
      txn.multi_cas(ctx, pair, snap, des);  // kMiss = lost race, fine
      if (iter % 64 == 0) {
        EXPECT_EQ(snapshot_sum(ctx), kTotal)
            << "snapshot caught a non-conserving interleaving";
      }
    }
  });

  auto ctx = txn.make_ctx();
  EXPECT_EQ(snapshot_sum(ctx), kTotal);
}

}  // namespace
}  // namespace moir
