// KvService pipeline: end-to-end round trips through the full
// ring -> router -> shard-queue -> executor path, shed-on-full admission
// (window, ring, and queue-pool exhaustion), graceful drain, and
// linearizability of the whole pipeline against SvcSpec under both DFS
// and PCT controlled schedules.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "sim/explore.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "util/env.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using reclaim::EpochReclaimer;
using Sub = CasBackedLlsc<16>;
using Svc = svc::KvService<Sub, EpochReclaimer>;
using svc::Op;
using svc::Status;

// Toggles stats counting on for a scope (and restores the previous mode),
// so counter-delta assertions see live counters. All such assertions are
// additionally guarded on stats::kCompiledIn: the tier1-stats-off preset
// runs this suite with MOIR_STATS=0, where every counter reads zero.
class CountingScope {
 public:
  CountingScope() : was_(stats::counting_enabled()) {
    stats::set_counting(true);
  }
  ~CountingScope() { stats::set_counting(was_); }

 private:
  bool was_;
};

TEST(SpscRing, SizeAndCapacityObservers) {
  svc::SpscRing<8> ring;
  static_assert(svc::SpscRing<8>::capacity() == 8);
  static_assert(svc::SpscRing<>::capacity() == 64);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.empty_approx());
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(i));
    EXPECT_EQ(ring.size(), i + 1);
  }
  EXPECT_FALSE(ring.try_push(99)) << "full ring must refuse";
  EXPECT_EQ(ring.size(), ring.capacity());
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
    EXPECT_EQ(ring.size(), 7 - i);
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_TRUE(ring.empty_approx());
  // Free-running indices: size stays exact after wraparound of the mask.
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
    EXPECT_EQ(ring.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(ring.size(), 0u);
  }
}

// Smallest ring with a distinct full and non-empty partial state: one
// free slot after a push, exact full/empty detection, FIFO across reuse.
TEST(SpscRing, MinimumCapacityTwo) {
  svc::SpscRing<2> ring;
  static_assert(svc::SpscRing<2>::capacity() == 2);
  std::uint64_t v = 0;
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(ring.try_push(10 + round));
    EXPECT_TRUE(ring.try_push(20 + round));
    EXPECT_FALSE(ring.try_push(99)) << "2-slot ring full after two pushes";
    EXPECT_EQ(ring.size(), 2u);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 10u + round);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 20u + round);
    EXPECT_FALSE(ring.try_pop(v));
  }
}

// The free-running indices are 64-bit on purpose; this re-bases them just
// below 2^32 and walks traffic across the boundary, where a 32-bit index
// (or a size computed in 32 bits) would wrap to garbage.
TEST(SpscRing, IndexWraparoundAcross32BitBoundary) {
  svc::SpscRing<8> ring;
  ring.reset_indices_for_test((std::uint64_t{1} << 32) - 3);
  std::uint64_t v = 0;
  // Straddle the boundary with a partially-filled ring in flight.
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_TRUE(ring.try_push(100 + i));
  EXPECT_EQ(ring.size(), 6u);
  for (std::uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 100 + i);
  }
  for (std::uint64_t i = 6; i < 10; ++i) EXPECT_TRUE(ring.try_push(100 + i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_FALSE(ring.try_push(999)) << "full at capacity across the boundary";
  for (std::uint64_t i = 2; i < 10; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 100 + i) << "FIFO order broken across the 2^32 boundary";
  }
  EXPECT_FALSE(ring.try_pop(v));
  EXPECT_EQ(ring.size(), 0u);
}

// The ticket seqlock: one slot recycled through many generations. Each
// reuse bumps gen, and done==gen from a STALE generation must never
// complete a newer ticket (the slot's whole completion protocol).
TEST(KvService, TicketGenerationReuseAfterDrain) {
  Sub sub;
  Svc svc(sub, {.queues = 1,
                .queue_capacity = 16,
                .workers = 0,
                .max_sessions = 1,
                .tickets_per_session = 1,  // every request reuses slot 0
                .use_rings = false,
                .map = {.shards = 1, .buckets_per_shard = 4,
                        .capacity_per_shard = 32}});
  auto c = svc.connect();
  auto w = svc.make_worker_ctx();
  std::uint64_t last_gen = 0;
  for (std::uint64_t round = 1; round <= 6; ++round) {
    const auto t = svc.submit(c, Op::kUpsert, 5, round * 11);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->slot, 0u);
    EXPECT_GT(t->gen, last_gen) << "generation must advance on slot reuse";
    last_gen = t->gen;
    EXPECT_FALSE(svc.poll(c, *t).has_value())
        << "stale done word must not satisfy a newer generation";
    EXPECT_EQ(svc.pump(w), 1u);
    const auto r = svc.poll(c, *t);
    ASSERT_TRUE(r.has_value());
    const auto tf = svc.submit(c, Op::kFind, 5, 0);
    ASSERT_TRUE(tf.has_value());
    svc.pump(w);
    const auto rf = svc.poll(c, *tf);
    ASSERT_TRUE(rf.has_value());
    EXPECT_EQ(rf->value, round * 11);
  }
}

// The router's key->queue hash must spread a dense key space evenly:
// chi-squared over 1e5 sequential keys into 4 queues, against a cutoff
// far beyond df=3 noise (p << 1e-4) — catches a route that degenerates
// to low bits or collapses shards, not ordinary variance.
TEST(Dispatcher, KeyHashShardDistribution) {
  Sub sub;
  svc::Dispatcher<Sub, EpochReclaimer> disp(sub, 2, 4, 16);
  constexpr unsigned kKeys = 100000;
  std::array<unsigned, 4> counts{};
  for (std::uint64_t k = 0; k < kKeys; ++k) counts[disp.queue_of(k)]++;
  const double expected = kKeys / 4.0;
  double chi2 = 0;
  for (const unsigned c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 30.0) << counts[0] << " " << counts[1] << " " << counts[2]
                        << " " << counts[3];
  for (const unsigned c : counts) EXPECT_GT(c, 0u);
}

TEST(KvService, EndToEndRoundTrip) {
  Sub sub;
  Svc svc(sub, {.queues = 2,
                .workers = 2,
                .batch = 4,
                .max_sessions = 2,
                .tickets_per_session = 8,
                .use_rings = true,
                .map = {.shards = 2, .buckets_per_shard = 4,
                        .capacity_per_shard = 64}});
  auto c = svc.connect();

  auto do_op = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
    const auto t = svc.submit(c, op, k, v);
    EXPECT_TRUE(t.has_value());
    return svc.wait(c, *t);
  };

  // Insert across several keys (crossing shards), then the full verb set.
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(do_op(Op::kInsert, k, k * 100).status, Status::kOk);
  }
  const auto hit = do_op(Op::kFind, 3);
  EXPECT_EQ(hit.status, Status::kOk);
  EXPECT_EQ(hit.value, 300u);

  EXPECT_EQ(do_op(Op::kInsert, 3, 999).status, Status::kNotFound)
      << "duplicate insert must report already-present";
  EXPECT_EQ(do_op(Op::kUpsert, 3, 333).status, Status::kNotFound)
      << "upsert on a present key reports updated-in-place";
  EXPECT_EQ(do_op(Op::kFind, 3).value, 333u);
  EXPECT_EQ(do_op(Op::kErase, 3).status, Status::kOk);
  EXPECT_EQ(do_op(Op::kFind, 3).status, Status::kNotFound);
  EXPECT_EQ(do_op(Op::kErase, 3).status, Status::kNotFound);

  // A second concurrent session sees the first session's writes.
  auto c2 = svc.connect();
  const auto t2 = svc.submit(c2, Op::kFind, 5);
  ASSERT_TRUE(t2.has_value());
  const auto r2 = svc.wait(c2, *t2);
  EXPECT_EQ(r2.status, Status::kOk);
  EXPECT_EQ(r2.value, 500u);
}

// Admission window: W in-flight tickets, the W+1'th submit sheds (EBUSY),
// and consuming a completion reopens the window. Direct mode with manual
// pumping keeps every step deterministic.
TEST(KvService, ShedOnFullWindow) {
  CountingScope counting;
  Sub sub;
  Svc svc(sub, {.queues = 1,
                .queue_capacity = 64,
                .workers = 0,
                .batch = 16,
                .max_sessions = 1,
                .tickets_per_session = 4,
                .use_rings = false,
                .map = {.shards = 1, .buckets_per_shard = 4,
                        .capacity_per_shard = 32}});
  auto c = svc.connect();
  const auto before = stats::snapshot();

  std::vector<Svc::Ticket> issued;
  for (int i = 0; i < 4; ++i) {
    const auto t = svc.submit(c, Op::kInsert, i, i);
    ASSERT_TRUE(t.has_value()) << "submit " << i << " within the window";
    issued.push_back(*t);
  }
  EXPECT_FALSE(svc.submit(c, Op::kInsert, 99, 99).has_value())
      << "window exhausted: 5th in-flight submit must shed, not block";

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kSvcEnqueue], 4u);
    EXPECT_EQ(d[stats::Id::kSvcShed], 1u);
  }

  // Nothing completed yet: polls are empty and non-blocking.
  for (const auto& t : issued) EXPECT_FALSE(svc.poll(c, t).has_value());

  auto w = svc.make_worker_ctx();
  EXPECT_EQ(svc.pump(w), 4u);
  for (const auto& t : issued) {
    const auto r = svc.poll(c, t);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, Status::kOk);
  }

  // The window reopened.
  const auto t = svc.submit(c, Op::kFind, 2);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(svc.pump(w), 1u);
  const auto r = svc.poll(c, *t);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 2u);

  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_GE(d[stats::Id::kSvcBatch], 2u);
  }
}

// Ring mode back-pressure: a full ring sheds at submit; a full shard-queue
// node pool makes the ROUTER complete the ticket with kOverload instead of
// blocking on the executor.
TEST(KvService, RingAndQueueOverload) {
  // Ring capacity is a compile-time parameter now; this test wants a tiny
  // 4-entry ring, so it instantiates its own service type.
  using Svc4 = svc::KvService<Sub, EpochReclaimer, 4>;
  Sub sub;
  Svc4 svc(sub, {.queues = 1,
                 .queue_capacity = 2,  // dummy node + 1 usable
                 .workers = 0,
                 .batch = 16,
                 .max_sessions = 1,
                 .tickets_per_session = 8,
                 .use_rings = true,
                 .map = {.shards = 1, .buckets_per_shard = 4,
                         .capacity_per_shard = 32}});
  auto c = svc.connect();
  auto rc = svc.make_router_ctx();
  auto w = svc.make_worker_ctx();

  // Phase 1: three requests reach the router, but the shard queue has one
  // free node — the surplus two complete kOverload at the router.
  std::vector<Svc4::Ticket> issued;
  for (int i = 0; i < 3; ++i) {
    const auto t = svc.submit(c, Op::kInsert, i, i);
    ASSERT_TRUE(t.has_value());
    issued.push_back(*t);
  }
  EXPECT_EQ(svc.pump_session(rc, c.session()), 3u);

  const auto r1 = svc.poll(c, issued[1]);
  const auto r2 = svc.poll(c, issued[2]);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->status, Status::kOverload);
  EXPECT_EQ(r2->status, Status::kOverload);
  EXPECT_FALSE(svc.poll(c, issued[0]).has_value())
      << "the enqueued request needs an executor pump";
  EXPECT_EQ(svc.pump(w), 1u);
  const auto r0 = svc.poll(c, issued[0]);
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->status, Status::kOk);

  // Phase 2: with no router pass, the 4-entry ring itself fills and the
  // 5th submit sheds at admission.
  issued.clear();
  for (int i = 0; i < 4; ++i) {
    const auto t = svc.submit(c, Op::kFind, i);
    ASSERT_TRUE(t.has_value());
    issued.push_back(*t);
  }
  EXPECT_FALSE(svc.submit(c, Op::kFind, 0).has_value())
      << "full ring must shed, not block";

  // Drain: one router pass completes-or-enqueues everything it pops, so a
  // bounded number of pump passes finishes all four.
  svc.pump_session(rc, c.session());
  svc.pump(w);
  for (const auto& t : issued) {
    const auto r = svc.poll(c, t);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->status == Status::kOk || r->status == Status::kOverload);
  }
}

// Graceful drain with live workers: every ticket submitted before stop()
// completes by the time stop() returns; submits after stop() shed.
TEST(KvService, DrainCompletesInFlight) {
  Sub sub;
  Svc svc(sub, {.queues = 2,
                .workers = 2,
                .batch = 4,
                .max_sessions = 1,
                .tickets_per_session = 16,
                .use_rings = true,
                .map = {.shards = 2, .buckets_per_shard = 4,
                        .capacity_per_shard = 64}});
  auto c = svc.connect();

  std::vector<Svc::Ticket> issued;
  for (int i = 0; i < 8; ++i) {
    // Under load some submits may shed (ring backlog); every ACCEPTED one
    // must complete across stop().
    if (const auto t = svc.submit(c, Op::kInsert, i, i * 7)) {
      issued.push_back(*t);
    }
  }
  svc.stop();
  for (const auto& t : issued) {
    const auto r = svc.poll(c, t);
    ASSERT_TRUE(r.has_value())
        << "ticket accepted before stop() not completed by drain";
    EXPECT_EQ(r->status, Status::kOk);
  }
  EXPECT_FALSE(svc.submit(c, Op::kFind, 0).has_value())
      << "post-stop submits must shed";
}

// Drain accounting, deterministically: with manual pumping, completions
// that happen after stop() are counted as svc_drain.
TEST(KvService, StopShedsAndCountsDrain) {
  CountingScope counting;
  Sub sub;
  Svc svc(sub, {.queues = 1,
                .queue_capacity = 64,
                .workers = 0,
                .max_sessions = 1,
                .tickets_per_session = 8,
                .use_rings = false,
                .map = {.shards = 1, .buckets_per_shard = 4,
                        .capacity_per_shard = 32}});
  auto c = svc.connect();
  const auto before = stats::snapshot();

  std::vector<Svc::Ticket> issued;
  for (int i = 0; i < 3; ++i) {
    const auto t = svc.submit(c, Op::kUpsert, i, i);
    ASSERT_TRUE(t.has_value());
    issued.push_back(*t);
  }
  svc.stop();
  EXPECT_TRUE(svc.draining());
  EXPECT_FALSE(svc.submit(c, Op::kFind, 0).has_value());

  auto w = svc.make_worker_ctx();
  EXPECT_EQ(svc.pump(w), 3u);
  for (const auto& t : issued) {
    ASSERT_TRUE(svc.poll(c, t).has_value());
  }
  if constexpr (stats::kCompiledIn) {
    const auto d = stats::snapshot() - before;
    EXPECT_EQ(d[stats::Id::kSvcDrain], 3u);
    EXPECT_GE(d[stats::Id::kSvcShed], 1u);
  }
}

// ---------------------------------------------------------------------
// Pipeline linearizability under controlled schedules. Two client
// sessions submit overlapping operations on a 3-key space through the
// service and pump the executor themselves; an observer hook records the
// response at completion time, so each operation's [inv, res] window
// brackets its actual map effect. Histories must linearize against
// SvcSpec (map semantics + shed-as-no-op).
//
// Slot indices are deterministic here — the free-ticket stack pops
// 0,1,2,... and nothing is polled mid-body — so each body can register
// its operation's kind/arg/inv under the predicted slot BEFORE submit,
// and the observer (possibly running on the OTHER body's thread) finds
// them by handle. ControlledScheduler serializes the bodies, so the
// shared pending table needs no further synchronization.
// ---------------------------------------------------------------------
struct PendingOp {
  OpKind kind = OpKind::kMapFind;
  std::uint64_t arg = 0;
  std::uint64_t inv = 0;
};

struct LinTrialShared {
  Sub sub;
  Svc svc;
  HistoryRecorder rec{2};
  std::vector<Svc::ClientCtx> clients;
  std::vector<Svc::WorkerCtx> workers;
  std::array<std::array<PendingOp, 8>, 2> pending{};
  std::array<std::uint32_t, 2> next_slot{};
  std::array<std::vector<Svc::Ticket>, 2> issued;

  explicit LinTrialShared(const Svc::Config& cfg) : svc(sub, cfg) {
    clients.reserve(2);
    workers.reserve(2);
    for (int t = 0; t < 2; ++t) {
      clients.push_back(svc.connect());
      workers.push_back(svc.make_worker_ctx());
    }
  }

  static std::uint64_t ret_of(OpKind kind, const svc::Response& r) {
    if (r.status == Status::kOverload) return SvcSpec::kShed;
    if (kind == OpKind::kMapFind) {
      return r.status == Status::kOk ? r.value + 1 : 0;
    }
    return r.status == Status::kOk ? 1 : 0;
  }

  // Completion hook: fires inside pump/pump_session before publication.
  auto observer() {
    return [this](std::uint64_t handle, const svc::Response& r) {
      const unsigned sid = svc::handle_session(handle);
      const PendingOp& p = pending[sid][svc::handle_slot(handle)];
      rec.add(sid, sid, p.kind, p.arg, ret_of(p.kind, r), p.inv);
    };
  }

  void submit_op(unsigned t, OpKind kind, std::uint64_t key,
                 std::uint64_t val) {
    Op op{};
    std::uint64_t arg = 0;
    switch (kind) {
      case OpKind::kMapInsert: op = Op::kInsert;
        arg = SvcSpec::pack_args(key, val);
        break;
      case OpKind::kMapUpsert: op = Op::kUpsert;
        arg = SvcSpec::pack_args(key, val);
        break;
      case OpKind::kMapErase: op = Op::kErase;
        arg = key;
        break;
      default: op = Op::kFind;
        arg = key;
        break;
    }
    const std::uint32_t slot = next_slot[t];
    pending[t][slot] = PendingOp{kind, arg, rec.now()};
    const auto ticket = svc.submit(clients[t], op, key, val);
    if (!ticket.has_value()) {
      // Client-side shed: a no-op the spec accepts anywhere.
      rec.add(t, t, kind, arg, SvcSpec::kShed, pending[t][slot].inv);
      return;
    }
    next_slot[t] = slot + 1;
    issued[t].push_back(*ticket);
  }

  // Post-join: everything was drained by the bodies, so one poll sweep
  // consumes every ticket (required by the disconnect assertion), then
  // the merged history is checked.
  bool check() {
    for (unsigned t = 0; t < 2; ++t) {
      for (const auto& ticket : issued[t]) {
        const auto r = svc.poll(clients[t], ticket);
        if (!r.has_value()) return false;  // drain failed to complete it
      }
    }
    LinearizabilityChecker<SvcSpec> checker;
    return checker.check(rec.collect(), SvcSpec::State{});
  }
};

Svc::Config lin_config(bool use_rings) {
  return {.queues = 1,
          .queue_capacity = 16,
          .workers = 0,
          .batch = 4,
          .max_sessions = 2,
          .tickets_per_session = 8,
          .use_rings = use_rings,
          .map = {.shards = 1, .buckets_per_shard = 1,
                  .capacity_per_shard = 16}};
}

TEST(KvService, ExploreLinearizable) {
  auto make_trial = [] {
    auto sh = std::make_shared<LinTrialShared>(lin_config(false));
    testing::ScheduleExplorer::Trial trial;
    // Each body drains the shared queues after its own submits, so every
    // enqueued request is executed by SOME body before the trial ends.
    auto drain = [sh](unsigned t) {
      while (sh->svc.pump(sh->workers[t], sh->observer()) > 0) {
      }
    };
    trial.bodies.push_back([sh, drain] {
      sh->submit_op(0, OpKind::kMapInsert, 0, 10);
      sh->svc.pump(sh->workers[0], sh->observer());
      sh->submit_op(0, OpKind::kMapFind, 1, 0);
      sh->submit_op(0, OpKind::kMapErase, 0, 0);
      drain(0);
    });
    trial.bodies.push_back([sh, drain] {
      sh->submit_op(1, OpKind::kMapInsert, 1, 11);
      sh->svc.pump(sh->workers[1], sh->observer());
      sh->submit_op(1, OpKind::kMapUpsert, 0, 20);
      sh->submit_op(1, OpKind::kMapFind, 0, 0);
      drain(1);
    });
    trial.check = [sh] { return sh->check(); };
    return trial;
  };

  const testing::ExploreOptions opts{.max_trials = scaled_budget(120)};
  const auto r = testing::ScheduleExplorer::explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable service history under schedule "
      << r.schedule_string();
  EXPECT_GT(r.trials, 0u);
}

// The full ring pipeline under PCT schedules. Rings are SPSC, so each
// body routes ONLY its own session's ring (pump_session) — it is that
// ring's unique consumer — then pumps the shared shard queues.
TEST(PctSmoke, ServicePipeline) {
  auto make_trial = [] {
    auto sh = std::make_shared<LinTrialShared>(lin_config(true));
    testing::ScheduleExplorer::Trial trial;
    auto route_and_pump = [sh](unsigned t) {
      sh->svc.pump_session(sh->workers[t].dctx, sh->clients[t].session(),
                           sh->observer());
      sh->svc.pump(sh->workers[t], sh->observer());
    };
    auto drain = [sh, route_and_pump](unsigned t) {
      for (;;) {
        const unsigned moved = sh->svc.pump_session(
            sh->workers[t].dctx, sh->clients[t].session(), sh->observer());
        const unsigned done = sh->svc.pump(sh->workers[t], sh->observer());
        if (moved == 0 && done == 0) break;
      }
    };
    trial.bodies.push_back([sh, route_and_pump, drain] {
      sh->submit_op(0, OpKind::kMapInsert, 0, 10);
      route_and_pump(0);
      sh->submit_op(0, OpKind::kMapUpsert, 1, 21);
      sh->submit_op(0, OpKind::kMapErase, 0, 0);
      drain(0);
    });
    trial.bodies.push_back([sh, route_and_pump, drain] {
      sh->submit_op(1, OpKind::kMapInsert, 1, 11);
      route_and_pump(1);
      sh->submit_op(1, OpKind::kMapFind, 0, 0);
      sh->submit_op(1, OpKind::kMapErase, 1, 0);
      drain(1);
    });
    trial.check = [sh] { return sh->check(); };
    return trial;
  };

  const testing::PctOptions opts{
      .runs = scaled_budget(30),
      .depth = 3,
      .change_range = 128,
      .seed = base_seed() + 23,
  };
  const auto r = testing::ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable pipeline history under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

}  // namespace
}  // namespace moir
