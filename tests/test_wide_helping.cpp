// Deterministic test of Figure 6's helping protocol.
//
// The stress tests catch helping races statistically; this file stages the
// critical schedule exactly, using a gating word provider that stalls a
// chosen thread's CASes at a chosen point. The staged scenario is the one
// the paper designs Copy for: "a process may fail or be delayed after
// changing the header word for a variable and before writing all of the
// segments" — readers must then finish the job themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/wide_llsc.hpp"

namespace moir {
namespace {

// Wraps native words; a thread whose Ctx carries a Gate blocks inside
// cas() once fewer than `pass` CASes remain, until the gate is released.
class GateProvider {
 public:
  struct Gate {
    std::atomic<int> pass{0};      // CASes allowed before stalling
    std::atomic<bool> open{true};  // false = stall
    std::atomic<int> stalled{0};   // observers: how many threads stalled
  };

  explicit GateProvider(Gate* gate = nullptr) : gate_(gate) {}

  struct Ctx {
    Gate* gate = nullptr;
  };

  class Word {
   public:
    Word() = default;
    Word(const Word&) = delete;
    Word& operator=(const Word&) = delete;

    std::uint64_t load() const { return w_.load(std::memory_order_seq_cst); }
    void init(std::uint64_t v) { w_.store(v, std::memory_order_seq_cst); }

    bool cas(Ctx& ctx, std::uint64_t& expected, std::uint64_t desired) {
      if (ctx.gate != nullptr &&
          ctx.gate->pass.fetch_sub(1, std::memory_order_seq_cst) <= 0) {
        ctx.gate->stalled.fetch_add(1, std::memory_order_seq_cst);
        while (!ctx.gate->open.load(std::memory_order_seq_cst)) {
          std::this_thread::yield();
        }
        ctx.gate->stalled.fetch_sub(1, std::memory_order_seq_cst);
      }
      return w_.compare_exchange_strong(expected, desired,
                                        std::memory_order_seq_cst);
    }

   private:
    std::atomic<std::uint64_t> w_{0};
  };

  Ctx make_ctx() { return Ctx{gate_}; }
  const char* name() const { return "gated-native-cas"; }

 private:
  Gate* gate_;
};

static_assert(WordProvider<GateProvider>);

using Gated = WideLlsc<32, GateProvider>;

// Writer stalls right after its header CAS (the first CAS of its SC),
// before copying any segment. A concurrent reader must help: its WLL has
// to return the writer's NEW value, fully assembled from the announcement
// array, even though the writer has written no segment itself.
TEST(WideHelping, ReaderCompletesStalledWritersStore) {
  GateProvider::Gate gate;
  Gated dom(2, 4, GateProvider(&gate));
  Gated::Var var;
  const std::vector<std::uint64_t> initial{1, 2, 3, 4};
  dom.init_var(var, initial);

  auto reader_ctx = dom.make_ctx();
  // The reader must never stall: its ctx's gate budget is effectively
  // infinite because reader helping CASes also draw from `gate.pass` —
  // so instead run the writer in a thread and open the gate for everyone
  // except during the staged window. Budget: header CAS passes (1), the
  // first segment CAS stalls.
  const std::vector<std::uint64_t> newval{10, 20, 30, 40};
  std::atomic<bool> writer_done{false};

  gate.pass.store(1);    // allow exactly the header CAS
  gate.open.store(false);
  std::thread writer([&] {
    auto writer_ctx = dom.make_ctx();
    Gated::Keep keep;
    std::vector<std::uint64_t> buf(4);
    ASSERT_TRUE(dom.wll(writer_ctx, var, keep, buf).success);
    ASSERT_EQ(buf, initial);
    ASSERT_TRUE(dom.sc(writer_ctx, var, keep, newval));  // stalls inside
    writer_done.store(true);
  });

  while (gate.stalled.load() == 0) std::this_thread::yield();
  ASSERT_FALSE(writer_done.load());

  // Writer is frozen between header CAS and the first segment CAS. The
  // reader's WLL must help and return the NEW value consistently.
  // (The reader's own helping CASes must not stall: re-open the budget for
  // it by raising pass very high — the stalled writer stays stalled
  // because it is already inside its wait loop on `open`.)
  gate.pass.store(1 << 20);
  Gated::Keep rkeep;
  std::vector<std::uint64_t> out(4);
  const auto r = dom.wll(reader_ctx, var, rkeep, out);
  ASSERT_TRUE(r.success)
      << "nothing else is writing: WLL must complete via helping";
  EXPECT_EQ(out, newval) << "helped read must assemble the writer's value";
  EXPECT_TRUE(dom.vl(reader_ctx, var, rkeep));

  // Release the stalled writer; its lagging segment CASes all fail
  // harmlessly (the reader already installed regime-g values), and its SC
  // still reports success (the header CAS won).
  gate.open.store(true);
  writer.join();
  EXPECT_TRUE(writer_done.load());

  std::vector<std::uint64_t> fin(4);
  dom.read(reader_ctx, var, fin);
  EXPECT_EQ(fin, newval);
}

// Same staging, but the reader then performs an SC of its own on top of
// the helped read — proving a helped WLL yields a usable keep.
TEST(WideHelping, ScAfterHelpedRead) {
  GateProvider::Gate gate;
  Gated dom(2, 2, GateProvider(&gate));
  Gated::Var var;
  dom.init_var(var, std::vector<std::uint64_t>{5, 6});

  gate.pass.store(1);
  gate.open.store(false);
  std::thread writer([&] {
    auto ctx = dom.make_ctx();
    Gated::Keep keep;
    std::vector<std::uint64_t> buf(2);
    ASSERT_TRUE(dom.wll(ctx, var, keep, buf).success);
    ASSERT_TRUE(dom.sc(ctx, var, keep, std::vector<std::uint64_t>{7, 8}));
  });
  while (gate.stalled.load() == 0) std::this_thread::yield();

  gate.pass.store(1 << 20);
  auto reader_ctx = dom.make_ctx();
  Gated::Keep rkeep;
  std::vector<std::uint64_t> out(2);
  ASSERT_TRUE(dom.wll(reader_ctx, var, rkeep, out).success);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 8}));
  // The reader's SC supersedes the (already linearized) stalled SC.
  EXPECT_TRUE(dom.sc(reader_ctx, var, rkeep,
                     std::vector<std::uint64_t>{9, 10}));

  gate.open.store(true);
  writer.join();

  std::vector<std::uint64_t> fin(2);
  dom.read(reader_ctx, var, fin);
  EXPECT_EQ(fin, (std::vector<std::uint64_t>{9, 10}))
      << "the stalled writer's lagging copies must not clobber newer data";
}

// A writer stalled BEFORE its header CAS has not linearized: readers must
// keep returning the old value.
TEST(WideHelping, StallBeforeHeaderCasIsInvisible) {
  GateProvider::Gate gate;
  Gated dom(2, 2, GateProvider(&gate));
  Gated::Var var;
  dom.init_var(var, std::vector<std::uint64_t>{1, 1});

  gate.pass.store(0);  // stall at the very first CAS (the header CAS)
  gate.open.store(false);
  std::thread writer([&] {
    auto ctx = dom.make_ctx();
    Gated::Keep keep;
    std::vector<std::uint64_t> buf(2);
    ASSERT_TRUE(dom.wll(ctx, var, keep, buf).success);
    ASSERT_TRUE(dom.sc(ctx, var, keep, std::vector<std::uint64_t>{2, 2}));
  });
  while (gate.stalled.load() == 0) std::this_thread::yield();

  gate.pass.store(1 << 20);
  auto reader_ctx = dom.make_ctx();
  std::vector<std::uint64_t> out(2);
  dom.read(reader_ctx, var, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 1}))
      << "un-linearized SC must be invisible";

  gate.open.store(true);
  writer.join();
  dom.read(reader_ctx, var, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2, 2}));
}

}  // namespace
}  // namespace moir
