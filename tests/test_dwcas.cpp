#include "platform/dwcas.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace moir {
namespace {

TEST(Dwcas, LoadStoreRoundTrip) {
  VerVal cell{1, 2};
  EXPECT_EQ(dw_load(&cell), (VerVal{1, 2}));
  dw_store(&cell, VerVal{3, 4});
  EXPECT_EQ(dw_load(&cell), (VerVal{3, 4}));
}

TEST(Dwcas, CompareExchangeSucceedsOnMatch) {
  VerVal cell{5, 6};
  VerVal expected{5, 6};
  EXPECT_TRUE(dw_compare_exchange(&cell, expected, VerVal{7, 8}));
  EXPECT_EQ(dw_load(&cell), (VerVal{7, 8}));
}

TEST(Dwcas, CompareExchangeFailsOnMismatchAndReportsObserved) {
  VerVal cell{5, 6};
  VerVal expected{5, 99};
  EXPECT_FALSE(dw_compare_exchange(&cell, expected, VerVal{7, 8}));
  EXPECT_EQ(expected, (VerVal{5, 6}));  // observed value written back
  EXPECT_EQ(dw_load(&cell), (VerVal{5, 6}));
}

TEST(Dwcas, BothHalvesParticipateInComparison) {
  VerVal cell{1, 2};
  VerVal wrong_version{0, 2};
  EXPECT_FALSE(dw_compare_exchange(&cell, wrong_version, VerVal{9, 9}));
  VerVal wrong_value{1, 0};
  EXPECT_FALSE(dw_compare_exchange(&cell, wrong_value, VerVal{9, 9}));
}

// The whole point of DWCAS here: concurrent version-bumping increments never
// lose updates even when the value field cycles through the same values
// (ABA on the value half).
TEST(DwcasStress, ConcurrentVersionedIncrements) {
  VerVal cell{0, 0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cell] {
      for (int i = 0; i < kPerThread; ++i) {
        VerVal cur = dw_load(&cell);
        // value cycles mod 4: plenty of value-ABA, version disambiguates.
        while (!dw_compare_exchange(
            &cell, cur, VerVal{cur.version + 1, (cur.value + 1) % 4})) {
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const VerVal end = dw_load(&cell);
  EXPECT_EQ(end.version, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(end.value, (static_cast<std::uint64_t>(kThreads) * kPerThread) % 4);
}

}  // namespace
}  // namespace moir
