// Wait-free universal construction tests.
//
// The sharpest linearizability probe for fetch-and-add-style objects is
// RESULT UNIQUENESS: if increments return the pre-increment value, every
// returned value must be distinct and the set must be exactly 0..total-1.
// Lost updates, double applies, and stale results all break it.
#include "nonblocking/wait_free_universal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <vector>

#include "util/thread_utils.hpp"

namespace moir {
namespace {

struct CounterState {
  std::uint64_t value = 0;
};

enum : std::uint32_t { kIncr = 1, kAdd = 2, kReadOp = 3 };

struct CounterApplier {
  CounterState operator()(CounterState s, std::uint32_t opid,
                          std::uint64_t arg, std::uint64_t* result) const {
    switch (opid) {
      case kIncr:
        *result = s.value;
        s.value += 1;
        break;
      case kAdd:
        *result = s.value;
        s.value += arg;
        break;
      case kReadOp:
        *result = s.value;
        break;
      default:
        ADD_FAILURE() << "unknown opid " << opid;
    }
    return s;
  }
};

using Wfu = WaitFreeUniversal<CounterState, CounterApplier>;

TEST(WaitFreeUniversal, SequentialSemantics) {
  const unsigned n = 2;
  WideLlsc<32> dom(n, Wfu::required_width(n));
  Wfu obj(dom, n, CounterApplier{}, CounterState{100});
  auto ctx = dom.make_ctx();
  EXPECT_EQ(obj.apply(ctx, kIncr, 0), 100u);
  EXPECT_EQ(obj.apply(ctx, kAdd, 10), 101u);
  EXPECT_EQ(obj.apply(ctx, kReadOp, 0), 111u);
  EXPECT_EQ(obj.read(ctx).value, 111u);
}

TEST(WaitFreeUniversal, RepeatedOpsBySameProcess) {
  const unsigned n = 1;
  WideLlsc<32> dom(n, Wfu::required_width(n));
  Wfu obj(dom, n, CounterApplier{}, CounterState{0});
  auto ctx = dom.make_ctx();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(obj.apply(ctx, kIncr, 0), i);
  }
}

class WfuStress : public ::testing::TestWithParam<unsigned> {};

TEST_P(WfuStress, IncrementResultsAreExactlyUnique) {
  const unsigned threads = GetParam();
  WideLlsc<32> dom(threads + 1, Wfu::required_width(threads + 1));
  Wfu obj(dom, threads + 1, CounterApplier{}, CounterState{0});

  constexpr int kOpsEach = 2000;
  std::mutex m;
  std::vector<std::uint64_t> returned;
  run_threads(threads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.02, 900 + tid);
#endif
    auto ctx = dom.make_ctx();
    std::vector<std::uint64_t> mine;
    mine.reserve(kOpsEach);
    for (int i = 0; i < kOpsEach; ++i) {
      mine.push_back(obj.apply(ctx, kIncr, 0));
    }
    // Per-process results must be strictly increasing (program order).
    for (std::size_t i = 1; i < mine.size(); ++i) {
      ASSERT_LT(mine[i - 1], mine[i]);
    }
    std::lock_guard<std::mutex> g(m);
    returned.insert(returned.end(), mine.begin(), mine.end());
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });

  // Exactly-once semantics: the multiset of returned pre-increment values
  // is exactly {0, 1, ..., threads*kOpsEach-1}.
  std::sort(returned.begin(), returned.end());
  std::vector<std::uint64_t> expect(threads * kOpsEach);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(returned, expect);

  auto ctx = dom.make_ctx();
  EXPECT_EQ(obj.read(ctx).value, threads * static_cast<std::uint64_t>(kOpsEach));
}

INSTANTIATE_TEST_SUITE_P(Threads, WfuStress, ::testing::Values(1u, 2u, 4u, 8u));

TEST(WaitFreeUniversal, MixedOpsConserveSemantics) {
  constexpr unsigned kThreads = 4;
  WideLlsc<32> dom(kThreads + 1, Wfu::required_width(kThreads + 1));
  Wfu obj(dom, kThreads + 1, CounterApplier{}, CounterState{0});

  std::atomic<std::uint64_t> added{0};
  run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = dom.make_ctx();
    std::uint64_t local = 0;
    for (int i = 0; i < 1500; ++i) {
      const std::uint64_t amount = (tid + 1) * (i % 3 + 1);
      obj.apply(ctx, kAdd, amount);
      local += amount;
    }
    added.fetch_add(local);
  });

  auto ctx = dom.make_ctx();
  EXPECT_EQ(obj.read(ctx).value, added.load());
}

}  // namespace
}  // namespace moir
