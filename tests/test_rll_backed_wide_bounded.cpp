// Figures 6 and 7 over the RLL/RSC word provider — the paper's closing
// remark of Section 3/4 ("the technique in Figure 3 can be used to acquire
// the same result using RLL and RSC") under test, including spurious
// failures. The invariants are identical to the native-CAS variants; only
// the substrate differs.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/bounded_llsc.hpp"
#include "core/llsc_composed.hpp"
#include "core/wide_llsc.hpp"
#include "platform/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_utils.hpp"

namespace moir {
namespace {

using WideRll = WideLlsc<32, RllRscWordProvider>;
using BoundedRll = BoundedLlsc<16, 10, 18, 20, RllRscWordProvider>;

// ---------------- Figure 6 over RLL/RSC ----------------

TEST(WideLlscOnRllRsc, BasicRoundTrip) {
  FaultInjector faults;
  WideRll dom(2, 3, RllRscWordProvider(&faults));
  WideRll::Var var;
  const std::vector<std::uint64_t> init{1, 2, 3};
  dom.init_var(var, init);
  auto ctx = dom.make_ctx();
  WideRll::Keep keep;
  std::vector<std::uint64_t> out(3);
  ASSERT_TRUE(dom.wll(ctx, var, keep, out).success);
  EXPECT_EQ(out, init);
  const std::vector<std::uint64_t> next{4, 5, 6};
  EXPECT_TRUE(dom.sc(ctx, var, keep, next));
  dom.read(ctx, var, out);
  EXPECT_EQ(out, next);
  EXPECT_STREQ(dom.provider_name(), "rllrsc-cas(fig3)");
}

TEST(WideLlscOnRllRsc, ScRetriesThroughSpuriousFailures) {
  FaultInjector faults;
  WideRll dom(2, 2, RllRscWordProvider(&faults));
  WideRll::Var var;
  const std::vector<std::uint64_t> init{7, 8};
  dom.init_var(var, init);
  auto ctx = dom.make_ctx();
  WideRll::Keep keep;
  std::vector<std::uint64_t> out(2);
  ASSERT_TRUE(dom.wll(ctx, var, keep, out).success);
  faults.force_failures(5);
  EXPECT_TRUE(dom.sc(ctx, var, keep, std::vector<std::uint64_t>{9, 10}));
  EXPECT_EQ(faults.injected_count(), 5u);
}

std::uint64_t chain_next32(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next() & WideRll::kMaxChunk;
}

TEST(WideLlscOnRllRsc, NoTornReadsUnderContentionAndFaults) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kWidth = 6;
  FaultInjector faults;
  faults.set_spurious_probability(0.05);
  WideRll dom(kThreads, kWidth, RllRscWordProvider(&faults));
  WideRll::Var var;
  std::vector<std::uint64_t> init(kWidth);
  std::uint64_t x = 1;
  for (auto& c : init) {
    c = x;
    x = chain_next32(x);
  }
  dom.init_var(var, init);

  std::atomic<std::uint64_t> successes{0};
  run_threads(kThreads, [&](std::size_t tid) {
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.05, 2000 + tid);
#endif
    auto ctx = dom.make_ctx();
    Xoshiro256 rng(tid * 17 + 3);
    std::vector<std::uint64_t> buf(kWidth);
    std::uint64_t local = 0;
    for (int i = 0; i < 1500; ++i) {
      WideRll::Keep keep;
      if (!dom.wll(ctx, var, keep, buf).success) continue;
      // verify chain
      std::uint64_t expect = buf[0];
      for (const auto c : buf) {
        ASSERT_EQ(c, expect) << "torn WLL read on RLL/RSC substrate";
        expect = chain_next32(expect);
      }
      std::uint64_t seed = rng.next() & WideRll::kMaxChunk;
      for (auto& c : buf) {
        c = seed;
        seed = chain_next32(seed);
      }
      local += dom.sc(ctx, var, keep, buf);
    }
    successes.fetch_add(local);
#ifdef MOIR_ENABLE_YIELD_POINTS
    testing::set_yield_probability(0.0, 0);
#endif
  });
  EXPECT_GT(successes.load(), 0u);
}

// ---------------- Figure 7 over RLL/RSC ----------------

TEST(BoundedLlscOnRllRsc, BasicSequence) {
  FaultInjector faults;
  BoundedRll dom(2, 1, RllRscWordProvider(&faults));
  BoundedRll::Var var;
  dom.init_var(var, 5);
  auto ctx = dom.make_ctx();
  BoundedRll::Keep keep;
  EXPECT_EQ(dom.ll(ctx, var, keep), 5u);
  EXPECT_TRUE(dom.vl(ctx, var, keep));
  EXPECT_TRUE(dom.sc(ctx, var, keep, 6));
  EXPECT_EQ(dom.read(var), 6u);
}

TEST(BoundedLlscOnRllRsc, CounterInvariantUnderFaults) {
  constexpr unsigned kThreads = 4;
  FaultInjector faults;
  faults.set_spurious_probability(0.1);
  BoundedRll dom(kThreads, 2, RllRscWordProvider(&faults));
  BoundedRll::Var var;
  dom.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(kThreads, [&](std::size_t) {
    auto ctx = dom.make_ctx();
    std::uint64_t local = 0;
    for (int i = 0; i < 4000; ++i) {
      BoundedRll::Keep keep;
      const auto v = dom.ll(ctx, var, keep);
      local += dom.sc(ctx, var, keep, (v + 1) & dom.max_value());
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(dom.read(var), successes.load() & dom.max_value());
  EXPECT_GT(faults.injected_count(), 0u);
}

// ---------------- The two-tag composition ----------------

using Comp = LlscComposed<16>;

TEST(LlscComposed, FieldBudget) {
  EXPECT_EQ(Comp::kValBits, 16u);
  EXPECT_EQ(Comp::kOuterTagBits, 24u);
  EXPECT_EQ(Comp::kInnerTagBits, 24u);
}

TEST(LlscComposed, BasicSequence) {
  Comp::Var var(3);
  Processor p;
  Comp::Keep keep;
  EXPECT_EQ(Comp::ll(var, keep), 3u);
  EXPECT_TRUE(Comp::vl(var, keep));
  EXPECT_TRUE(Comp::sc(p, var, keep, 4));
  EXPECT_EQ(Comp::read(var), 4u);
}

TEST(LlscComposed, ScFailsAfterInterveningSc) {
  Comp::Var var(1);
  Processor p, q;
  Comp::Keep kp, kq;
  Comp::ll(var, kp);
  Comp::ll(var, kq);
  EXPECT_TRUE(Comp::sc(q, var, kq, 2));
  EXPECT_FALSE(Comp::sc(p, var, kp, 3));
  EXPECT_FALSE(Comp::vl(var, kp));
}

TEST(LlscComposed, DetectsAbaWithinOuterTagRange) {
  Comp::Var var(1);
  Processor p, q;
  Comp::Keep victim, k;
  Comp::ll(var, victim);
  Comp::ll(var, k);
  ASSERT_TRUE(Comp::sc(q, var, k, 2));
  Comp::ll(var, k);
  ASSERT_TRUE(Comp::sc(q, var, k, 1));
  EXPECT_FALSE(Comp::sc(p, var, victim, 9));
}

TEST(LlscComposed, ConcurrentCounterInvariant) {
  Comp::Var var(0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(4, [&](std::size_t) {
    Processor p;
    std::uint64_t local = 0;
    for (int i = 0; i < 5000; ++i) {
      Comp::Keep keep;
      const auto v = Comp::ll(var, keep);
      local += Comp::sc(p, var, keep, (v + 1) & Comp::kMaxValue);
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(Comp::read(var), successes.load() & Comp::kMaxValue);
}

// The composition's weakness, demonstrated: the outer tag is the ONLY
// protection across an LL-SC sequence — the inner (Figure 3) tag is
// consumed within each single CAS invocation, which re-reads the word
// fresh at its line 1 and so cannot notice history. With a deliberately
// tiny 8-bit outer tag, 2^8 SCs wrap it and a stale SC erroneously
// succeeds. This is the mechanism behind the paper's warning that
// composing "substantially reduces the time needed for the tags to wrap
// around", and the reason Figure 5 exists.
TEST(LlscComposed, TinyOuterTagWrapsAndErrs) {
  using Tiny = LlscComposed<16, 8>;  // 8-bit outer tag, 40-bit inner
  Tiny::Var var(1);
  Processor p, q;
  Tiny::Keep victim;
  Tiny::ll(var, victim);
  for (int i = 0; i < 256; ++i) {
    Tiny::Keep k;
    const auto v = Tiny::ll(var, k);
    ASSERT_TRUE(Tiny::sc(q, var, k, v == 1 ? 2 : 1));
  }
  // Word is bit-identical in [outer tag | value]; the inner CAS cannot
  // help because it reads the inner tag fresh. The error fires:
  EXPECT_TRUE(Tiny::sc(p, var, victim, 9))
      << "expected the composition's wraparound error to reproduce";
  // Figure 5 with a single 48-bit tag would need 2^48 SCs for the same
  // error; LlscComposed<16> (24-bit outer) needs 2^24 — the halved budget.
}

}  // namespace
}  // namespace moir
