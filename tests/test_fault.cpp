#include "platform/fault.hpp"

#include <gtest/gtest.h>

namespace moir {
namespace {

TEST(FaultInjector, DefaultNeverFails) {
  FaultInjector f;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(f.should_fail());
  EXPECT_EQ(f.injected_count(), 0u);
}

TEST(FaultInjector, ForcedFailuresAreExact) {
  FaultInjector f;
  f.force_failures(3);
  int fails = 0;
  for (int i = 0; i < 100; ++i) fails += f.should_fail();
  EXPECT_EQ(fails, 3);
  EXPECT_EQ(f.injected_count(), 3u);
}

TEST(FaultInjector, ProbabilityZeroAndOne) {
  FaultInjector f;
  f.set_spurious_probability(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(f.should_fail());
  f.set_spurious_probability(1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(f.should_fail());
}

TEST(FaultInjector, ProbabilityRoughlyCalibrated) {
  FaultInjector f;
  f.set_spurious_probability(0.25);
  int fails = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) fails += f.should_fail();
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.25, 0.02);
  EXPECT_EQ(f.injected_count(), static_cast<std::uint64_t>(fails));
}

TEST(FaultInjector, ResetCounters) {
  FaultInjector f;
  f.force_failures(5);
  while (f.should_fail()) {
  }
  f.reset_counters();
  EXPECT_EQ(f.injected_count(), 0u);
}

}  // namespace
}  // namespace moir
