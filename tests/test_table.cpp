#include "util/table.hpp"

#include <gtest/gtest.h>

namespace moir {
namespace {

TEST(Table, RenderAligned) {
  Table t("demo");
  t.columns({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "23"});
  const std::string r = t.render();
  EXPECT_NE(r.find("demo"), std::string::npos);
  EXPECT_NE(r.find("| a      | 1     |"), std::string::npos);
  EXPECT_NE(r.find("| longer | 23    |"), std::string::npos);
}

TEST(Table, Csv) {
  Table t("demo");
  t.columns({"x", "y"});
  t.row({"1", "2"});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

TEST(Table, ShortRowsPadded) {
  Table t("demo");
  t.columns({"a", "b", "c"});
  t.row({"1"});
  // Must not crash; missing cells render empty.
  EXPECT_NE(t.render().find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace moir
