#include "core/slot_stack.hpp"

#include <gtest/gtest.h>

#include <set>

namespace moir {
namespace {

TEST(SlotStack, StartsWithAllSlots) {
  SlotStack s(4);
  EXPECT_EQ(s.available(), 4u);
}

TEST(SlotStack, PopYieldsDistinctSlotsInRange) {
  SlotStack s(5);
  std::set<unsigned> seen;
  for (int i = 0; i < 5; ++i) {
    const unsigned slot = s.pop();
    EXPECT_LT(slot, 5u);
    EXPECT_TRUE(seen.insert(slot).second) << "duplicate slot";
  }
  EXPECT_EQ(s.available(), 0u);
}

TEST(SlotStack, PushMakesSlotReusable) {
  SlotStack s(1);
  const unsigned a = s.pop();
  s.push(a);
  EXPECT_EQ(s.pop(), a);
}

TEST(SlotStack, LifoOrder) {
  SlotStack s(3);
  const unsigned a = s.pop();
  const unsigned b = s.pop();
  s.push(a);
  s.push(b);
  EXPECT_EQ(s.pop(), b);
  EXPECT_EQ(s.pop(), a);
}

}  // namespace
}  // namespace moir
