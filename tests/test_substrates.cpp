// Typed tests exercising every SmallLlscSubstrate through the uniform
// interface — the portability claim of the paper made executable: the same
// test body runs on Figure 4, Figure 5, the lock baseline, and the naive
// strawman. (Figure 7 joins in test_bounded_llsc.cpp, which also covers its
// substrate conformance; its constructor needs N and k.)
#include "core/llsc_traits.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace moir {
namespace {

static_assert(SmallLlscSubstrate<CasBackedLlsc<16>>);
static_assert(SmallLlscSubstrate<RllBackedLlsc<16>>);
static_assert(SmallLlscSubstrate<ComposedBackedLlsc<16>>);
static_assert(SmallLlscSubstrate<LockBackedLlsc<16>>);
static_assert(SmallLlscSubstrate<NaiveCasLlsc<16>>);

template <typename S>
class SubstrateTest : public ::testing::Test {
 protected:
  S substrate_{};
};

using Substrates =
    ::testing::Types<CasBackedLlsc<16>, RllBackedLlsc<16>,
                     ComposedBackedLlsc<16>, LockBackedLlsc<16>,
                     NaiveCasLlsc<16>>;
TYPED_TEST_SUITE(SubstrateTest, Substrates);

TYPED_TEST(SubstrateTest, InitAndRead) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 37);
  EXPECT_EQ(s.read(var), 37u);
}

TYPED_TEST(SubstrateTest, LlVlScRoundTrip) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 5);
  auto ctx = s.make_ctx();
  typename TypeParam::Keep keep;
  EXPECT_EQ(s.ll(ctx, var, keep), 5u);
  EXPECT_TRUE(s.vl(ctx, var, keep));
  EXPECT_TRUE(s.sc(ctx, var, keep, 6));
  EXPECT_EQ(s.read(var), 6u);
}

TYPED_TEST(SubstrateTest, ScFailsAfterInterferingSc) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  typename TypeParam::Keep mine, other;
  s.ll(ctx, var, mine);
  s.ll(ctx, var, other);
  EXPECT_TRUE(s.sc(ctx, var, other, 2));
  EXPECT_FALSE(s.sc(ctx, var, mine, 3));
  EXPECT_FALSE(s.vl(ctx, var, mine));
  EXPECT_EQ(s.read(var), 2u);
}

TYPED_TEST(SubstrateTest, ClEndsASequence) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  for (int i = 0; i < 100; ++i) {
    typename TypeParam::Keep keep;
    s.ll(ctx, var, keep);
    s.cl(ctx, keep);  // abandoning must not leak per-sequence resources
  }
  typename TypeParam::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, 2));
}

TYPED_TEST(SubstrateTest, MaxValueStoresAndReads) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  typename TypeParam::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, s.max_value()));
  EXPECT_EQ(s.read(var), s.max_value());
}

TYPED_TEST(SubstrateTest, ConcurrentCounterInvariant) {
  auto& s = this->substrate_;
  typename TypeParam::Var var;
  s.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  constexpr int kThreads = 4;
  constexpr int kAttempts = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      auto ctx = s.make_ctx();
      std::uint64_t local = 0;
      for (int i = 0; i < kAttempts; ++i) {
        typename TypeParam::Keep keep;
        const auto v = s.ll(ctx, var, keep);
        local += s.sc(ctx, var, keep, (v + 1) & s.max_value());
      }
      successes.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(s.read(var), successes.load() & s.max_value());
}

// The ABA demonstration: the paper's tagged constructions detect value
// restoration; the naive strawman does not. This is the concrete failure
// mode that makes "LL = load, SC = CAS" wrong for the algorithms in
// [2,3,4,7,10,14].
template <typename S>
bool sc_succeeds_after_aba(S& s) {
  typename S::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  typename S::Keep victim, k;
  s.ll(ctx, var, victim);
  s.ll(ctx, var, k);
  if (!s.sc(ctx, var, k, 2)) ADD_FAILURE();
  s.ll(ctx, var, k);
  if (!s.sc(ctx, var, k, 1)) ADD_FAILURE();  // value restored: ABA
  return s.sc(ctx, var, victim, 9);
}

TEST(AbaDemonstration, PaperConstructionsDetectAba) {
  CasBackedLlsc<16> fig4;
  EXPECT_FALSE(sc_succeeds_after_aba(fig4));
  RllBackedLlsc<16> fig5;
  EXPECT_FALSE(sc_succeeds_after_aba(fig5));
  LockBackedLlsc<16> lock;
  EXPECT_FALSE(sc_succeeds_after_aba(lock));
}

TEST(AbaDemonstration, NaiveCasIsFooledByAba) {
  NaiveCasLlsc<16> naive;
  EXPECT_TRUE(sc_succeeds_after_aba(naive))
      << "if this fails the strawman stopped being a strawman";
}

}  // namespace
}  // namespace moir
