// Blelloch–Wei pointer-width LL/SC (figbw): substrate conformance, full-
// width values, descriptor recycling/conservation, exhaustive DFS on 2-thread
// configs, Wing-Gong linearizability under DFS and PCT (3 threads), the
// freed-while-announced determinism scenario under a scripted
// ControlledScheduler, and the planted-bug negative control (announcement
// step elided) that PCT must catch.
#include "core/bw_llsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "sim/controlled_scheduler.hpp"
#include "sim/explore.hpp"
#include "sim/schedule.hpp"
#include "stats/stats.hpp"
#include "util/env.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/spec.hpp"

namespace moir {
namespace {

using testing::ControlledScheduler;
using testing::ExploreOptions;
using testing::RunnableThread;
using testing::Schedule;
using testing::ScheduleExplorer;

using Bw = BwLlsc<>;

static_assert(SmallLlscSubstrate<BwLlsc<>>);
static_assert(SmallLlscSubstrate<BwLlsc<16>>);
static_assert(SmallLlscSubstrate<BwLlscNoAnnounce<>>);

// ---------------------------------------------------------------------
// Conformance: the same bodies as the typed suite in test_substrates.cpp
// (figbw joins fig7 in needing a (N, k) constructor, hence its own file).
// ---------------------------------------------------------------------
TEST(BwLlsc, InitAndRead) {
  Bw s(2);
  Bw::Var var;
  s.init_var(var, 37);
  EXPECT_EQ(s.read(var), 37u);
}

TEST(BwLlsc, LlVlScRoundTrip) {
  Bw s(2);
  Bw::Var var;
  s.init_var(var, 5);
  auto ctx = s.make_ctx();
  Bw::Keep keep;
  EXPECT_EQ(s.ll(ctx, var, keep), 5u);
  EXPECT_TRUE(s.vl(ctx, var, keep));
  EXPECT_TRUE(s.sc(ctx, var, keep, 6));
  EXPECT_EQ(s.read(var), 6u);
}

TEST(BwLlsc, ScFailsAfterInterferingSc) {
  Bw s(2);  // default k = 2: two concurrent sequences per context
  Bw::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  Bw::Keep mine, other;
  s.ll(ctx, var, mine);
  s.ll(ctx, var, other);
  EXPECT_TRUE(s.sc(ctx, var, other, 2));
  EXPECT_FALSE(s.sc(ctx, var, mine, 3));
  EXPECT_FALSE(s.vl(ctx, var, mine));
  EXPECT_EQ(s.read(var), 2u);
}

TEST(BwLlsc, ClEndsASequence) {
  Bw s(2);
  Bw::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  for (int i = 0; i < 100; ++i) {
    Bw::Keep keep;
    s.ll(ctx, var, keep);
    s.cl(ctx, keep);  // abandoning must not leak slots or announcements
  }
  Bw::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, 2));
}

// The figbw headline: values keep all 64 bits. No tag field is stolen from
// the word (fig4 defaults to 16-bit values; fig7 to 16 of 64).
TEST(BwLlsc, FullWidthValues) {
  Bw s(2);
  EXPECT_EQ(s.max_value(), ~std::uint64_t{0});
  Bw::Var var;
  s.init_var(var, 0);
  auto ctx = s.make_ctx();
  Bw::Keep keep;
  s.ll(ctx, var, keep);
  EXPECT_TRUE(s.sc(ctx, var, keep, s.max_value()));
  EXPECT_EQ(s.read(var), s.max_value());
}

TEST(BwLlsc, ReInitVarReusesDescriptor) {
  Bw s(1, 1, {.reserve = 2, .chunk = 1});
  Bw::Var var;
  s.init_var(var, 3);
  s.init_var(var, 4);  // re-init must reuse the installed descriptor
  s.init_var(var, 5);
  EXPECT_EQ(s.read(var), 5u);
}

// Value restoration is invisible to figbw by construction: the restored
// value lives in a *different* descriptor, so the victim's pointer compare
// still fails (fig4/5/7 need tags for the same verdict; naive CAS is
// fooled — test_substrates.cpp).
TEST(BwLlsc, DetectsValueRestorationAba) {
  Bw s(2);
  Bw::Var var;
  s.init_var(var, 1);
  auto ctx = s.make_ctx();
  Bw::Keep victim, k;
  s.ll(ctx, var, victim);
  s.ll(ctx, var, k);
  ASSERT_TRUE(s.sc(ctx, var, k, 2));
  s.ll(ctx, var, k);
  ASSERT_TRUE(s.sc(ctx, var, k, 1));  // value restored: ABA
  EXPECT_FALSE(s.sc(ctx, var, victim, 9));
  EXPECT_EQ(s.read(var), 1u);
}

TEST(BwLlsc, ConcurrentCounterInvariant) {
  Bw s(4);
  Bw::Var var;
  s.init_var(var, 0);
  std::atomic<std::uint64_t> successes{0};
  constexpr int kThreads = 4;
  constexpr int kAttempts = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      auto ctx = s.make_ctx();
      std::uint64_t local = 0;
      for (int i = 0; i < kAttempts; ++i) {
        Bw::Keep keep;
        const auto v = s.ll(ctx, var, keep);
        local += s.sc(ctx, var, keep, v + 1);
      }
      successes.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(s.read(var), successes.load());
}

// Concurrent readers against the seqlock'd descriptor path, with heavy
// recycling (tight pool): every read must return some value a successful SC
// actually published (values are derived from a counter so anything else —
// a torn or stale-reused descriptor — is detectable).
TEST(BwLlsc, ReadersSeePublishedValuesUnderChurn) {
  Bw s(3, 2, {.reserve = 2, .chunk = 2, .scan_threshold = 4});
  Bw::Var var;
  s.init_var(var, 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::thread writer([&] {
    auto ctx = s.make_ctx();
    for (std::uint64_t i = 0; i < scaled_budget(50000); ++i) {
      Bw::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      s.sc(ctx, var, keep, v + 2);  // even ladder: odd values are corrupt
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      std::uint64_t local_bad = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t v = s.read(var);
        // Monotone even ladder: any odd or decreasing value is a stale or
        // torn read through a recycled descriptor.
        local_bad += (v % 2 != 0) || (v < last);
        last = v;
      }
      bad.fetch_add(local_bad);
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0u);
}

// Descriptor conservation through heavy recycling: after all contexts die,
// every descriptor is either free in the pool, parked on the orphan stack,
// or installed in the (one) Var.
TEST(BwLlsc, RecyclingConservesDescriptors) {
  stats::set_counting(true);
  Bw s(1, 2, {.reserve = 4, .chunk = 2, .scan_threshold = 3});
  Bw::Var var;
  s.init_var(var, 0);
  const stats::Snapshot before = stats::snapshot();
  {
    auto ctx = s.make_ctx();
    for (int i = 0; i < 200; ++i) {
      Bw::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      ASSERT_TRUE(s.sc(ctx, var, keep, v + 1));
    }
  }
  EXPECT_EQ(s.read(var), 200u);
  if (stats::kCompiledIn) {
    const stats::Snapshot d = stats::snapshot() - before;
    EXPECT_GT(d[stats::Id::kBwAllocReuse], 0u)
        << "200 SCs in a 4-descriptor reserve never recycled";
    EXPECT_EQ(d[stats::Id::kScSuccess], 200u);
  }
  EXPECT_EQ(s.pool_free_quiescent() + s.orphans_quiescent() + 1,
            s.pool_capacity())
      << "descriptors leaked through retire/scan";

  // A later context's scans adopt the orphans and recycle them too.
  {
    auto ctx = s.make_ctx();
    for (std::uint32_t i = 0; i <= s.scan_threshold(); ++i) {
      Bw::Keep keep;
      const auto v = s.ll(ctx, var, keep);
      ASSERT_TRUE(s.sc(ctx, var, keep, v + 1));
    }
  }
  EXPECT_EQ(s.pool_free_quiescent() + s.orphans_quiescent() + 1,
            s.pool_capacity());
}

// ---------------------------------------------------------------------
// Exhaustive DFS, two contexts, one LL/SC increment each: every
// interleaving of the announce handshake, install CAS, and allocator
// refill satisfies the counter invariant.
// ---------------------------------------------------------------------
TEST(Exploration, BwCounterExhaustive) {
  auto make_trial = [] {
    struct Shared {
      Bw s{2, 1, {.reserve = 8, .chunk = 4}};
      Bw::Var var;
      std::vector<Bw::ThreadCtx> ctxs;
      std::uint64_t successes[2] = {0, 0};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(2);
    sh->ctxs.push_back(sh->s.make_ctx());
    sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    for (int t = 0; t < 2; ++t) {
      trial.bodies.push_back([sh, t] {
        Bw::Keep keep;
        const std::uint64_t v = sh->s.ll(sh->ctxs[t], sh->var, keep);
        sh->successes[t] += sh->s.sc(sh->ctxs[t], sh->var, keep, v + 1);
      });
    }
    trial.check = [sh] {
      return sh->s.read(sh->var) == sh->successes[0] + sh->successes[1];
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(
      make_trial, ExploreOptions{.max_trials = 400000, .sleep_sets = true});
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found) << r.schedule_string();
  EXPECT_GT(r.trials, 10u);
}

// ---------------------------------------------------------------------
// DFS linearizability (Wing-Gong) on the two-context config. Plain DFS
// (no sleep sets: the history recorder's clock rides between yield points,
// and real-time edges must not be pruned as "independent").
// ---------------------------------------------------------------------
TEST(Exploration, BwDfsLinearizable) {
  auto make_trial = [] {
    struct Shared {
      Bw s{2, 1, {.reserve = 8, .chunk = 4}};
      Bw::Var var;
      std::vector<Bw::ThreadCtx> ctxs;
      HistoryRecorder rec{2};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(2);
    sh->ctxs.push_back(sh->s.make_ctx());
    sh->ctxs.push_back(sh->s.make_ctx());

    auto ll = [sh](unsigned t, Bw::Keep& keep) {
      const auto inv = sh->rec.now();
      const std::uint64_t v = sh->s.ll(sh->ctxs[t], sh->var, keep);
      sh->rec.add(t, t, OpKind::kLl, 0, v, inv);
    };
    auto sc = [sh](unsigned t, const Bw::Keep& keep, std::uint64_t v) {
      const auto inv = sh->rec.now();
      const bool ok = sh->s.sc(sh->ctxs[t], sh->var, keep, v);
      sh->rec.add(t, t, OpKind::kSc, v, ok, inv);
    };

    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([ll, sc] {
      Bw::Keep keep;
      ll(0, keep);
      sc(0, keep, 7);
    });
    trial.bodies.push_back([ll, sc] {
      Bw::Keep keep;
      ll(1, keep);
      sc(1, keep, 9);
    });
    trial.check = [sh] {
      LinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(), LlscRegisterSpec::State{});
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 400000);
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable figbw history under schedule "
      << r.schedule_string();
}

// The same, for the context-free seqlock read racing an install: one
// writer, one reader doing two reads (the second can observe a recycled-
// and-reinstalled descriptor mid-rewrite and must revalidate).
TEST(Exploration, BwDfsReadLinearizable) {
  auto make_trial = [] {
    struct Shared {
      Bw s{2, 1, {.reserve = 8, .chunk = 4}};
      Bw::Var var;
      std::vector<Bw::ThreadCtx> ctxs;
      HistoryRecorder rec{2};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(1);
    sh->ctxs.push_back(sh->s.make_ctx());

    ScheduleExplorer::Trial trial;
    trial.bodies.push_back([sh] {
      Bw::Keep keep;
      auto inv = sh->rec.now();
      const std::uint64_t v = sh->s.ll(sh->ctxs[0], sh->var, keep);
      sh->rec.add(0, 0, OpKind::kLl, 0, v, inv);
      inv = sh->rec.now();
      const bool ok = sh->s.sc(sh->ctxs[0], sh->var, keep, 7);
      sh->rec.add(0, 0, OpKind::kSc, 7, ok, inv);
    });
    trial.bodies.push_back([sh] {
      for (int i = 0; i < 2; ++i) {
        const auto inv = sh->rec.now();
        const std::uint64_t v = sh->s.read(sh->var);
        sh->rec.add(1, 1, OpKind::kRead, 0, v, inv);
      }
    });
    trial.check = [sh] {
      LinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(), LlscRegisterSpec::State{});
    };
    return trial;
  };

  const auto r = ScheduleExplorer::explore(make_trial, 400000);
  EXPECT_TRUE(r.exhausted) << "trials=" << r.trials;
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable figbw read under schedule "
      << r.schedule_string();
}

// ---------------------------------------------------------------------
// PCT smoke, three contexts, with a pool tight enough that scans and
// descriptor reuse happen inside the window — the adversarial regime the
// announcement protocol exists for. Runs in tier1 and (via the name
// filter) under the ThreadSanitizer preset.
// ---------------------------------------------------------------------
TEST(PctSmoke, BwLlsc) {
  auto make_trial = [] {
    struct Shared {
      Bw s{3, 1, {.reserve = 2, .chunk = 1, .scan_threshold = 2}};
      Bw::Var var;
      std::vector<Bw::ThreadCtx> ctxs;
      HistoryRecorder rec{3};
    };
    auto sh = std::make_shared<Shared>();
    sh->s.init_var(sh->var, 0);
    sh->ctxs.reserve(3);
    for (int t = 0; t < 3; ++t) sh->ctxs.push_back(sh->s.make_ctx());

    auto round = [sh](unsigned t, std::uint64_t v) {
      Bw::Keep keep;
      auto inv = sh->rec.now();
      const std::uint64_t seen = sh->s.ll(sh->ctxs[t], sh->var, keep);
      sh->rec.add(t, t, OpKind::kLl, 0, seen, inv);
      inv = sh->rec.now();
      const bool ok = sh->s.sc(sh->ctxs[t], sh->var, keep, v);
      sh->rec.add(t, t, OpKind::kSc, v, ok, inv);
      inv = sh->rec.now();
      const std::uint64_t r = sh->s.read(sh->var);
      sh->rec.add(t, t, OpKind::kRead, 0, r, inv);
    };
    ScheduleExplorer::Trial trial;
    for (unsigned t = 0; t < 3; ++t) {
      trial.bodies.push_back([round, t] {
        round(t, 10 * (t + 1));
        round(t, 10 * (t + 1) + 1);
      });
    }
    trial.check = [sh] {
      LinearizabilityChecker<LlscRegisterSpec> checker;
      return checker.check(sh->rec.collect(), LlscRegisterSpec::State{});
    };
    return trial;
  };

  const testing::PctOptions opts{
      .runs = scaled_budget(60),
      .depth = 3,
      .change_range = 96,
      .seed = base_seed() + 13,
  };
  const auto r = ScheduleExplorer::pct_explore(make_trial, opts);
  EXPECT_FALSE(r.violation_found)
      << "non-linearizable figbw history under schedule "
      << r.schedule_string();
  EXPECT_EQ(r.trials, opts.runs);
}

// ---------------------------------------------------------------------
// Freed-while-announced, deterministically: a scripted ControlledScheduler
// pins the victim between its (announced) LL and its SC while the
// adversary retires the announced descriptor and scans twice. The scan
// must keep the announced descriptor in limbo (exactly one reuse: the
// adversary's own unannounced retiree) and the victim's SC must fail.
// ---------------------------------------------------------------------
TEST(BwLlsc, AnnouncedDescriptorSurvivesScan) {
  stats::set_counting(true);
  struct Shared {
    Bw s{2, 1, {.reserve = 2, .chunk = 1, .scan_threshold = 1}};
    Bw::Var var;
    std::vector<Bw::ThreadCtx> ctxs;
    std::atomic<int> phase{0};
    std::uint64_t victim_ll = ~std::uint64_t{0};
    bool victim_sc_ok = true;
    bool adversary_ok = true;
  };
  Shared sh;
  sh.s.init_var(sh.var, 0);
  sh.ctxs.reserve(2);
  sh.ctxs.push_back(sh.s.make_ctx());
  sh.ctxs.push_back(sh.s.make_ctx());

  const stats::Snapshot before = stats::snapshot();
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&sh] {  // victim
    Bw::Keep keep;
    sh.victim_ll = sh.s.ll(sh.ctxs[0], sh.var, keep);
    sh.phase.store(1, std::memory_order_seq_cst);
    // The next yield point (inside sc) hands control to the adversary.
    sh.victim_sc_ok = sh.s.sc(sh.ctxs[0], sh.var, keep, 99);
  });
  bodies.push_back([&sh] {  // adversary: two full rounds, two scans
    for (int i = 0; i < 2; ++i) {
      Bw::Keep keep;
      const std::uint64_t v = sh.s.ll(sh.ctxs[1], sh.var, keep);
      sh.adversary_ok &= sh.s.sc(sh.ctxs[1], sh.var, keep, v + 1);
    }
  });
  // Script: run the victim until it finished its LL (phase 1), then the
  // adversary to completion, then the victim's SC.
  ControlledScheduler::run(
      std::move(bodies),
      [&sh](const std::vector<RunnableThread>& runnable, std::size_t) {
        const unsigned want = sh.phase.load(std::memory_order_seq_cst) == 0
                                  ? 0u
                                  : 1u;
        for (const RunnableThread& rt : runnable) {
          if (rt.id == want) return want;
        }
        return runnable.front().id;
      });

  EXPECT_EQ(sh.victim_ll, 0u);
  EXPECT_TRUE(sh.adversary_ok);
  EXPECT_FALSE(sh.victim_sc_ok)
      << "victim SC succeeded against a descriptor retired underneath it — "
         "the announcement failed to pin it";
  EXPECT_EQ(sh.s.read(sh.var), 2u);
  if (stats::kCompiledIn) {
    const stats::Snapshot d = stats::snapshot() - before;
    // Both adversary scans ran (threshold 1), but only the adversary's own
    // unannounced retiree was reclaimed; the victim's announced descriptor
    // stayed in limbo.
    EXPECT_EQ(d[stats::Id::kBwAllocReuse], 1u);
    EXPECT_EQ(d[stats::Id::kBwAnnounce], 3u);  // victim + 2 adversary LLs
  }
  // Conservation across the whole episode, announced limbo included.
  sh.ctxs.clear();
  EXPECT_EQ(sh.s.pool_free_quiescent() + sh.s.orphans_quiescent() + 1,
            sh.s.pool_capacity());
}

// ---------------------------------------------------------------------
// Negative control (planted bug): BwLlscNoAnnounce skips the announcement
// before dereferencing, so a preempted LL-SC sequence can successfully SC
// against a descriptor that was recycled and re-installed underneath it —
// exactly the ABA the real protocol forecloses. PCT must find the
// resulting broken counter, and the schedule string must replay it.
// ---------------------------------------------------------------------
ScheduleExplorer::Trial make_no_announce_trial() {
  using Broken = BwLlscNoAnnounce<>;

  struct Shared {
    Broken s{2, 1, {.reserve = 2, .chunk = 1, .scan_threshold = 1}};
    Broken::Var var;
    std::vector<Broken::ThreadCtx> ctxs;
    std::uint64_t successes[2] = {0, 0};
  };
  auto sh = std::make_shared<Shared>();
  sh->s.init_var(sh->var, 0);
  sh->ctxs.reserve(2);
  sh->ctxs.push_back(sh->s.make_ctx());
  sh->ctxs.push_back(sh->s.make_ctx());

  ScheduleExplorer::Trial trial;
  // Victim: one increment; a preemption between its LL and SC is fatal.
  trial.bodies.push_back([sh] {
    Broken::Keep keep;
    const std::uint64_t v = sh->s.ll(sh->ctxs[0], sh->var, keep);
    sh->successes[0] += sh->s.sc(sh->ctxs[0], sh->var, keep, v + 1);
  });
  // Adversary: two increments. With threshold 1 and chunk 1, the first SC's
  // retiree is scanned, freed (nobody announced it), and handed straight
  // back by the second SC's allocation — same index, re-installed.
  trial.bodies.push_back([sh] {
    for (int i = 0; i < 2; ++i) {
      Broken::Keep keep;
      const std::uint64_t v = sh->s.ll(sh->ctxs[1], sh->var, keep);
      sh->successes[1] += sh->s.sc(sh->ctxs[1], sh->var, keep, v + 1);
    }
  });
  trial.check = [sh] {
    return sh->s.read(sh->var) == sh->successes[0] + sh->successes[1];
  };
  return trial;
}

TEST(NegativeControl, PctCatchesElidedAnnouncement) {
  const testing::PctOptions opts{
      .runs = scaled_budget(800),
      .depth = 3,
      .change_range = 32,
      .seed = base_seed() + 17,
  };
  const auto r = ScheduleExplorer::pct_explore(make_no_announce_trial, opts);
  ASSERT_TRUE(r.violation_found)
      << "PCT failed to catch the elided-announcement ABA (positive "
         "control for the announcement protocol)";

  const auto parsed = Schedule::parse(r.schedule_string());
  ASSERT_TRUE(parsed.has_value()) << r.schedule_string();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ScheduleExplorer::replay(make_no_announce_trial, *parsed))
        << "schedule " << r.schedule_string() << " did not replay the bug";
  }
}

// The DFS explorer finds the same planted bug without randomization.
TEST(NegativeControl, DfsCatchesElidedAnnouncement) {
  const auto r = ScheduleExplorer::explore(make_no_announce_trial, 400000);
  EXPECT_TRUE(r.violation_found)
      << "DFS failed to find the elided-announcement ABA";
}

}  // namespace
}  // namespace moir
