// End-to-end ABA demonstration at the data-structure level.
//
// The paper's introduction says several published non-blocking algorithms
// are "not directly applicable on current multiprocessors". The deepest of
// the reasons is ABA: with LL emulated as a plain load and SC as a plain
// CAS, node recycling corrupts a Treiber stack. Here we stage the classic
// interleaving deterministically: on the paper's substrates the victim's
// SC fails (correct); on the naive strawman it succeeds and corrupts the
// stack.
#include <gtest/gtest.h>

#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "nonblocking/treiber_stack.hpp"

namespace moir {
namespace {

// Stage: stack [C B A] (A bottom). Victim begins pop: reads head=C and
// next(C)=B, then stalls. Adversary pops C, pops B, then pushes C back
// (stack now [C A]; C recycled with next=A). Victim resumes and SCs head
// from C to B — but B is free! A linearizable stack must fail that SC.
template <typename S>
std::optional<std::uint64_t> staged_aba_pop_result(S& s) {
  auto ctx = s.make_ctx();
  TreiberStack<S> st(s, 8, ctx);
  EXPECT_TRUE(st.push(ctx, 100));  // A
  EXPECT_TRUE(st.push(ctx, 200));  // B
  EXPECT_TRUE(st.push(ctx, 300));  // C

  // Victim starts a pop by hand (the stack's pop() is a loop; we need to
  // stall between its LL and SC, so we drive the same protocol manually on
  // a second stack instance... instead, express it through the public
  // stack API is impossible — so this test uses IndexStack directly).
  return st.pop(ctx);
}

// Stage the stall by driving the pop protocol by hand against a variable
// modeling `head` (the stack's own pop() cannot be paused mid-loop).
template <typename S>
bool victim_sc_succeeds(S& s) {
  auto ctx = s.make_ctx();
  typename S::Var head;
  s.init_var(head, 2);  // head = C
  std::uint32_t next_of[3] = {99, 0, 1};  // A->null(99), B->A, C->B

  typename S::Keep vk;
  const std::uint64_t vh = s.ll(ctx, head, vk);  // victim reads C
  const std::uint32_t vnext = next_of[vh];       // victim reads next(C)=B
  // --- victim stalls; adversary runs ---
  {
    typename S::Keep k;
    const std::uint64_t h1 = s.ll(ctx, head, k);  // pop C
    EXPECT_TRUE(s.sc(ctx, head, k, next_of[h1]));
    typename S::Keep k2;
    const std::uint64_t h2 = s.ll(ctx, head, k2);  // pop B
    EXPECT_TRUE(s.sc(ctx, head, k2, next_of[h2]));
    next_of[2] = 0;  // recycle C with next = A
    typename S::Keep k3;
    s.ll(ctx, head, k3);  // push C back
    EXPECT_TRUE(s.sc(ctx, head, k3, 2));
  }
  // --- victim resumes: SC head from C to B (B is free now!) ---
  return s.sc(ctx, head, vk, vnext);
}

TEST(AbaStructures, Figure4StackSurvivesStagedAba) {
  CasBackedLlsc<16> s;
  EXPECT_FALSE(victim_sc_succeeds(s));
}

TEST(AbaStructures, Figure5StackSurvivesStagedAba) {
  RllBackedLlsc<16> s;
  EXPECT_FALSE(victim_sc_succeeds(s));
}

TEST(AbaStructures, Figure7StackSurvivesStagedAba) {
  BoundedLlsc<> s(2, 4);
  EXPECT_FALSE(victim_sc_succeeds(s));
}

TEST(AbaStructures, NaiveCasFallsToStagedAba) {
  NaiveCasLlsc<16> s;
  EXPECT_TRUE(victim_sc_succeeds(s))
      << "the strawman should exhibit exactly the ABA corruption the "
         "paper's tags prevent";
}

TEST(AbaStructures, PopStillWorksAfterStaging) {
  CasBackedLlsc<16> s;
  EXPECT_EQ(staged_aba_pop_result(s), 300u);
}

}  // namespace
}  // namespace moir
