// Unit and stress tests for Figure 3 (CAS from RLL/RSC, Theorem 1).
#include "core/cas_from_rllrsc.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "platform/fault.hpp"

namespace moir {
namespace {

using Cas = CasFromRllRsc<16>;

TEST(CasFromRllRsc, SucceedsOnMatch) {
  Cas::Var var(5);
  Processor p;
  EXPECT_TRUE(Cas::cas(p, var, 5, 7));
  EXPECT_EQ(var.read(), 7u);
}

TEST(CasFromRllRsc, FailsOnMismatch) {
  Cas::Var var(5);
  Processor p;
  EXPECT_FALSE(Cas::cas(p, var, 4, 7));
  EXPECT_EQ(var.read(), 5u);
}

// Line 3: old == new returns true immediately without writing — the CAS is
// linearized at the read, and notably does NOT bump the tag.
TEST(CasFromRllRsc, EqualOldNewIsReadOnly) {
  Cas::Var var(5);
  Processor p;
  EXPECT_TRUE(Cas::cas(p, var, 5, 5));
  EXPECT_EQ(var.read(), 5u);
  EXPECT_EQ(p.stats().attempts, 0u) << "no RSC should have been issued";
}

TEST(CasFromRllRsc, RetriesThroughSpuriousFailures) {
  FaultInjector faults;
  Cas::Var var(1);
  Processor p(&faults);
  faults.force_failures(4);
  EXPECT_TRUE(Cas::cas(p, var, 1, 2));
  EXPECT_EQ(var.read(), 2u);
  EXPECT_EQ(p.stats().spurious_failures, 4u);
  EXPECT_EQ(p.stats().successes, 1u);
}

TEST(CasFromRllRsc, SequentialChain) {
  Cas::Var var(0);
  Processor p;
  for (std::uint64_t v = 0; v < 100; ++v) {
    EXPECT_TRUE(Cas::cas(p, var, v, v + 1));
    EXPECT_FALSE(Cas::cas(p, var, v, v + 2)) << "stale old must fail";
  }
  EXPECT_EQ(var.read(), 100u);
}

// The linearizability workhorse: concurrent increments via CAS must not
// lose updates, with and without spurious failures.
class CasFromRllRscStress : public ::testing::TestWithParam<double> {};

TEST_P(CasFromRllRscStress, ConcurrentIncrements) {
  FaultInjector faults;
  faults.set_spurious_probability(GetParam());
  Cas::Var var(0);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Processor p(&faults);
      for (std::uint64_t i = 0; i < kEach; ++i) {
        for (;;) {
          const std::uint64_t v = Cas::read(var);
          if (Cas::cas(p, var, v, (v + 1) & Cas::Word::kMaxValue)) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(var.read(), (kThreads * kEach) & Cas::Word::kMaxValue);
}

INSTANTIATE_TEST_SUITE_P(SpuriousRates, CasFromRllRscStress,
                         ::testing::Values(0.0, 0.05, 0.3));

// Theorem 1's "no space overhead": the accessed word is the only storage.
TEST(CasFromRllRsc, NoSpaceOverhead) {
  EXPECT_EQ(sizeof(Cas::Var), sizeof(RllWord));
}

}  // namespace
}  // namespace moir
