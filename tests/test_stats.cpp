// Deterministic tests for the stats layer (src/stats/).
//
// The counter catalogue instruments the paper's progress arguments (SC
// failures, Figure 6 helping, Figure 7 tag recycling, spurious RSC
// retries). These tests pin exact counts under scripted schedules: the
// controlled scheduler serializes the threads, a policy picker stages the
// critical interleaving, and the snapshot delta must match the count the
// paper's argument predicts — not approximately, exactly.
//
// When the layer is compiled out (MOIR_STATS=0 preset) the scheduler tests
// skip and the codegen section takes over: the hooks must be usable in
// constant expressions, which only compiles if they are constexpr no-ops
// with zero runtime effects.
#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

#include "core/bounded_llsc.hpp"
#include "core/llsc_from_cas.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "core/wide_llsc.hpp"
#include "nonblocking/stm.hpp"
#include "platform/fault.hpp"
#include "sim/controlled_scheduler.hpp"
#include "stats/export.hpp"
#include "util/json.hpp"

namespace moir {
namespace {

using stats::HistId;
using stats::Id;
using testing::ControlledScheduler;
using testing::RunnableThread;

#if MOIR_STATS

// Enables counting for a test body and restores a clean slate around it.
class StatsGuard {
 public:
  StatsGuard() {
    stats::reset();
    stats::set_counting(true);
  }
  ~StatsGuard() {
    stats::set_tracing(false);
    stats::set_counting(false);
    stats::reset();
  }
};

bool runnable_has(const std::vector<RunnableThread>& runnable, unsigned id) {
  return std::any_of(runnable.begin(), runnable.end(),
                     [id](const RunnableThread& r) { return r.id == id; });
}

// ---------------------------------------------------------------------
// Figure 4, the forced-failure schedule: T0 LLs, T1 runs a complete
// LL;SC (success), then T0's SC must fail. Exactly one success, exactly
// one failure, and no helping (Figure 4 has none to do).
// ---------------------------------------------------------------------
TEST(StatsCounters, Fig4ForcedFailureExactCounts) {
  StatsGuard guard;
  using L = LlscFromCas<16>;

  L::Var var(7);
  std::atomic<bool> t0_ll_done{false};
  bool t0_sc_ok = true, t1_sc_ok = false;

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    t0_ll_done.store(true, std::memory_order_relaxed);
    t0_sc_ok = L::sc(var, keep, (v + 1) & 0xffff);
  });
  bodies.push_back([&] {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    t1_sc_ok = L::sc(var, keep, (v + 2) & 0xffff);
  });

  const stats::Snapshot before = stats::snapshot();
  ControlledScheduler::run(
      std::move(bodies),
      [&](const std::vector<RunnableThread>& runnable, std::size_t) {
        // T0 until its LL returned, then T1 to completion, then drain T0.
        if (!t0_ll_done.load(std::memory_order_relaxed) &&
            runnable_has(runnable, 0)) {
          return 0u;
        }
        return runnable_has(runnable, 1) ? 1u : 0u;
      });
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_TRUE(t1_sc_ok);
  EXPECT_FALSE(t0_sc_ok) << "T0's SC must fail: T1's SC intervened";
  EXPECT_EQ(d[Id::kScSuccess], 1u);
  EXPECT_EQ(d[Id::kScFail], 1u);
  EXPECT_EQ(d[Id::kHelpRounds], 0u);
  EXPECT_EQ(var.read(), 9u);
}

// ---------------------------------------------------------------------
// Figure 7, the tag-recycle schedule: N=2, k=1. T0 runs LL;SC while T1
// runs LL;CL interleaved after T0's LL. T0's single SC performs exactly
// one announcement scan (tag_recycle) and takes exactly one fresh tag
// (tag_alloc); T1's CL touches no tags at all.
// ---------------------------------------------------------------------
TEST(StatsCounters, Fig7TagRecycleTicksExactlyOnce) {
  StatsGuard guard;
  using B = BoundedLlsc<>;

  B dom(2, 1);
  B::Var var;
  dom.init_var(var, 5);
  std::vector<B::ThreadCtx> ctxs;
  ctxs.push_back(dom.make_ctx());
  ctxs.push_back(dom.make_ctx());

  std::atomic<bool> t0_ll_done{false};
  bool t0_sc_ok = false;

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    B::Keep keep;
    const std::uint64_t v = dom.ll(ctxs[0], var, keep);
    t0_ll_done.store(true, std::memory_order_relaxed);
    t0_sc_ok = dom.sc(ctxs[0], var, keep, (v + 1) & 0xffff);
  });
  bodies.push_back([&] {
    B::Keep keep;
    dom.ll(ctxs[1], var, keep);
    dom.cl(ctxs[1], keep);  // abandon: recycles the slot, not a tag
  });

  const stats::Snapshot before = stats::snapshot();
  ControlledScheduler::run(
      std::move(bodies),
      [&](const std::vector<RunnableThread>& runnable, std::size_t) {
        if (!t0_ll_done.load(std::memory_order_relaxed) &&
            runnable_has(runnable, 0)) {
          return 0u;
        }
        return runnable_has(runnable, 1) ? 1u : 0u;
      });
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_TRUE(t0_sc_ok) << "T1 only LL'd and aborted; T0's SC must succeed";
  EXPECT_EQ(d[Id::kTagRecycle], 1u);
  EXPECT_EQ(d[Id::kTagAlloc], 1u);
  EXPECT_EQ(d[Id::kScSuccess], 1u);
  EXPECT_EQ(d[Id::kScFail], 0u);
  EXPECT_EQ(d[Id::kTagExhaustion], 0u);
  EXPECT_EQ(dom.read(var), 6u);
}

// ---------------------------------------------------------------------
// Figure 6 helping: T0's SC installs the header and is parked before it
// copies any segment (the paper's "delayed after changing the header word
// ... before writing all of the segments"). T1's WLL must then finish the
// job: exactly one helping round, exactly W segment copies.
// ---------------------------------------------------------------------
TEST(StatsCounters, Fig6HelpingRoundCountedOnce) {
  StatsGuard guard;
  using W = WideLlsc<32>;
  constexpr unsigned kW = 2;

  W dom(2, kW);
  W::Var var;
  const std::vector<std::uint64_t> init{1, 2};
  dom.init_var(var, init);
  auto ctx0 = dom.make_ctx();
  auto ctx1 = dom.make_ctx();

  bool t0_sc_ok = false, t1_wll_ok = false;
  std::vector<std::uint64_t> buf0(kW), buf1(kW);

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    W::Keep keep;
    if (dom.wll(ctx0, var, keep, buf0).success) {
      t0_sc_ok = dom.sc(ctx0, var, keep, std::vector<std::uint64_t>{10, 20});
    }
  });
  bodies.push_back([&] {
    W::Keep keep;
    t1_wll_ok = dom.wll(ctx1, var, keep, buf1).success;
  });

  const stats::Snapshot before = stats::snapshot();
  ControlledScheduler::run(
      std::move(bodies),
      [&](const std::vector<RunnableThread>& runnable, std::size_t) {
        // sc() counts kScSuccess right after the header CAS and before
        // copy(); the first yield point inside copy() is therefore the
        // first decision at which the delta reads 1 — park T0 exactly
        // there, run T1's helping WLL to completion, then drain T0.
        const stats::Snapshot now = stats::snapshot() - before;
        if (now[Id::kScSuccess] == 0 && runnable_has(runnable, 0)) return 0u;
        return runnable_has(runnable, 1) ? 1u : 0u;
      });
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_TRUE(t0_sc_ok);
  EXPECT_TRUE(t1_wll_ok);
  EXPECT_EQ(buf1[0], 10u);
  EXPECT_EQ(buf1[1], 20u);
  EXPECT_EQ(d[Id::kHelpRounds], 1u) << "T1's WLL pass helped T0's SC once";
  EXPECT_EQ(d[Id::kWordCopies], kW)
      << "T1 copied every segment; T0 resumed to find them done";
  EXPECT_EQ(d[Id::kScSuccess], 1u);
}

// ---------------------------------------------------------------------
// Spurious RSC failures (Figure 5): one forced failure = one spurious
// event and one retry, after which the SC succeeds. No scheduler needed —
// force_failures is deterministic single-threaded.
// ---------------------------------------------------------------------
TEST(StatsCounters, SpuriousRscCountedAndRetried) {
  StatsGuard guard;
  using L = LlscFromRllRsc<16>;

  FaultInjector faults;
  faults.force_failures(1);
  L::Var var(0);
  Processor proc(&faults);

  const stats::Snapshot before = stats::snapshot();
  L::Keep keep;
  const std::uint64_t v = L::ll(var, keep);
  const bool ok = L::sc(proc, var, keep, (v + 1) & 0xffff);
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_TRUE(ok);
  EXPECT_EQ(d[Id::kRscSpurious], 1u);
  EXPECT_EQ(d[Id::kRscRetry], 1u);
  EXPECT_EQ(d[Id::kRscConflict], 0u);
  EXPECT_EQ(d[Id::kScSuccess], 1u);

  // The retry count also lands in the sc_retries histogram.
  const Histogram h = stats::merged_histogram(HistId::kScRetries);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1u);
}

// ---------------------------------------------------------------------
// STM: an uncontended transaction commits first try; the aborts-per-commit
// histogram records a zero.
// ---------------------------------------------------------------------
TEST(StatsCounters, StmCommitCounted) {
  StatsGuard guard;

  Stm stm(2, 4);
  for (int c = 0; c < 4; ++c) stm.set_initial(c, 100);
  auto ctx = stm.make_ctx();

  const stats::Snapshot before = stats::snapshot();
  const std::uint32_t addrs[] = {0, 1};
  stm.transact(
      ctx, addrs,
      [](const std::uint64_t* olds, std::uint64_t* news, unsigned,
         std::uint64_t) {
        news[0] = olds[0] - 5;
        news[1] = olds[1] + 5;
      },
      0);
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_EQ(d[Id::kStmCommit], 1u);
  EXPECT_EQ(d[Id::kStmAbort], 0u);
  EXPECT_EQ(stm.read(ctx, 0), 95u);
  EXPECT_EQ(stm.read(ctx, 1), 105u);

  const Histogram h = stats::merged_histogram(HistId::kStmAbortsPerCommit);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0u);
}

// ---------------------------------------------------------------------
// Runtime kill switch: with counting off, the hooks must not move any
// counter; re-enabling resumes counting.
// ---------------------------------------------------------------------
TEST(StatsCounters, RuntimeToggleStopsCounting) {
  StatsGuard guard;
  using L = LlscFromCas<16>;
  L::Var var(0);

  stats::set_counting(false);
  EXPECT_FALSE(stats::counting_enabled());
  const stats::Snapshot before = stats::snapshot();
  for (int i = 0; i < 10; ++i) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    L::sc(var, keep, (v + 1) & 0xffff);
  }
  stats::Snapshot d = stats::snapshot() - before;
  EXPECT_EQ(d[Id::kScSuccess], 0u);

  stats::set_counting(true);
  EXPECT_TRUE(stats::counting_enabled());
  {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    L::sc(var, keep, (v + 1) & 0xffff);
  }
  d = stats::snapshot() - before;
  EXPECT_EQ(d[Id::kScSuccess], 1u);
}

// ---------------------------------------------------------------------
// Trace ring: with tracing on, events appear in dump_trace() output in
// sequence order with their stable names.
// ---------------------------------------------------------------------
TEST(StatsTrace, DumpContainsRecentEvents) {
  StatsGuard guard;
  stats::set_tracing(true);
  using L = LlscFromCas<16>;
  L::Var var(0);
  for (int i = 0; i < 3; ++i) {
    L::Keep keep;
    const std::uint64_t v = L::ll(var, keep);
    L::sc(var, keep, (v + 1) & 0xffff);
  }

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  stats::dump_trace(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);

  EXPECT_NE(out.find("sc_success"), std::string::npos) << out;
  // Three successes traced; each line carries the variable's address.
  char addr[32];
  std::snprintf(addr, sizeof addr, "%p", static_cast<const void*>(&var));
  EXPECT_NE(out.find(addr), std::string::npos) << out;
}

// Counter snapshots merge across real threads (each gets its own shard)
// and survive thread exit via the retired accumulator.
TEST(StatsCounters, ShardsMergeAcrossThreadExit) {
  StatsGuard guard;
  using L = LlscFromCas<16>;
  L::Var var(0);

  const stats::Snapshot before = stats::snapshot();
  constexpr int kThreads = 4, kOps = 100;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        for (;;) {
          L::Keep keep;
          const std::uint64_t v = L::ll(var, keep);
          if (L::sc(var, keep, (v + 1) & 0xffff)) break;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  const stats::Snapshot d = stats::snapshot() - before;

  EXPECT_EQ(d[Id::kScSuccess], std::uint64_t{kThreads} * kOps);
  EXPECT_EQ(var.read(), std::uint64_t{kThreads} * kOps & 0xffff);
}

#else  // !MOIR_STATS

// ---------------------------------------------------------------------
// Codegen proof for the stats-off preset: the hooks must be callable in
// constant expressions. A hook that touched an atomic, a thread_local, or
// any global would fail to compile here — so these static_asserts are the
// "empty inline" guarantee, checked at compile time rather than by
// eyeballing disassembly.
// ---------------------------------------------------------------------
static_assert((stats::count(Id::kScFail), true));
static_assert((stats::count(Id::kHelpRounds, 3, nullptr), true));
static_assert((stats::record(HistId::kScRetries, 42), true));

TEST(StatsOff, ColdApiIsInert) {
  EXPECT_FALSE(stats::kCompiledIn);
  EXPECT_FALSE(stats::counting_enabled());
  stats::set_counting(true);  // must be accepted and stay off
  EXPECT_FALSE(stats::counting_enabled());
  const stats::Snapshot s = stats::snapshot();
  for (unsigned i = 0; i < stats::kNumCounters; ++i) {
    EXPECT_EQ(s.counts[i], 0u);
  }
  EXPECT_EQ(stats::merged_histogram(HistId::kScRetries).count(), 0u);
  stats::dump_trace(stderr);  // no-op, must not crash
}

#endif  // MOIR_STATS

// ---------------------------------------------------------------------
// The JSON export schema is stable in BOTH modes: every counter name is
// present (zeros when off), so downstream parsers never branch on the
// build flavour.
// ---------------------------------------------------------------------
TEST(StatsExport, CountersJsonHasFullCatalogue) {
  JsonWriter w;
  stats::counters_json(w, stats::snapshot());
  const std::string json = w.str();
  for (unsigned i = 0; i < stats::kNumCounters; ++i) {
    const std::string key =
        std::string("\"") + stats::name(static_cast<Id>(i)) + "\"";
    EXPECT_NE(json.find(key), std::string::npos)
        << "missing counter " << key << " in " << json;
  }
}

TEST(StatsExport, ExportJsonIsBalanced) {
  const std::string doc = stats::export_json();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_NE(doc.find("\"compiled_in\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
}

}  // namespace
}  // namespace moir
