// Death tests: the library's misuse guards must fail loudly, not corrupt.
// (C++ Core Guidelines I.5/I.6: state preconditions and check them —
// lock-free bugs that corrupt silently are unfindable later.)
#include <gtest/gtest.h>

#include "core/bounded_llsc.hpp"
#include "core/process_registry.hpp"
#include "core/slot_stack.hpp"
#include "core/tagged_word.hpp"

namespace moir {
namespace {

class Guardrails : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(Guardrails, RegistryOverflowAborts) {
  ProcessRegistry r(1);
  r.register_process();
  EXPECT_DEATH(r.register_process(), "more threads registered");
}

TEST_F(Guardrails, SlotStackUnderflowAborts) {
  SlotStack s(1);
  s.pop();
  EXPECT_DEATH(s.pop(), "more concurrent LL-SC sequences");
}

TEST_F(Guardrails, OversizedValueAborts) {
  EXPECT_DEATH((void)TaggedWord<16>::make(0, 0x10000), "value does not fit");
}

TEST_F(Guardrails, BoundedLlscFieldWidthChecked) {
  // pid field: 10 bits by default -> N = 1025 must be rejected.
  using B = BoundedLlsc<>;
  EXPECT_DEATH(B(1025, 1), "pid field too narrow");
  // tag field: 20 bits -> 2Nk must fit; N=1000, k=1000 overflows.
  EXPECT_DEATH(B(1000, 1000), "tag field too narrow");
}

TEST_F(Guardrails, BoundedLlscOverlongSequencesAbort) {
  BoundedLlsc<> s(1, 1);
  BoundedLlsc<>::Var var;
  s.init_var(var, 0);
  EXPECT_DEATH(
      ([&] {
        auto ctx = s.make_ctx();
        BoundedLlsc<>::Keep k1, k2;
        s.ll(ctx, var, k1);
        s.ll(ctx, var, k2);  // second concurrent sequence with k=1
      }()),
      "more concurrent LL-SC sequences");
}

}  // namespace
}  // namespace moir
