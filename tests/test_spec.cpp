// Unit tests for the Figure-2 sequential specs and the history recorder —
// the checker's foundations must themselves be trustworthy.
#include "verify/spec.hpp"

#include <gtest/gtest.h>

#include "util/thread_utils.hpp"
#include "verify/history.hpp"

namespace moir {
namespace {

Operation op(unsigned proc, OpKind kind, std::uint64_t arg,
             std::uint64_t ret) {
  return Operation{proc, kind, arg, ret, 0, 0};
}

// ---- LL/VL/SC spec ----

TEST(LlscSpec, LlSetsValidAndReturnsValue) {
  LlscRegisterSpec::State s{7, 0};
  const auto next = LlscRegisterSpec::apply(s, op(2, OpKind::kLl, 0, 7));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->value, 7u);
  EXPECT_EQ(next->valid, 1u << 2);
}

TEST(LlscSpec, LlWithWrongReturnRejected) {
  LlscRegisterSpec::State s{7, 0};
  EXPECT_FALSE(LlscRegisterSpec::apply(s, op(0, OpKind::kLl, 0, 8)));
}

TEST(LlscSpec, VlReflectsValidBit) {
  LlscRegisterSpec::State s{7, 1u << 1};
  EXPECT_TRUE(LlscRegisterSpec::apply(s, op(1, OpKind::kVl, 0, 1)));
  EXPECT_TRUE(LlscRegisterSpec::apply(s, op(0, OpKind::kVl, 0, 0)));
  EXPECT_FALSE(LlscRegisterSpec::apply(s, op(0, OpKind::kVl, 0, 1)));
}

TEST(LlscSpec, SuccessfulScWritesAndClearsAllValidBits) {
  LlscRegisterSpec::State s{7, 0b1011};
  const auto next = LlscRegisterSpec::apply(s, op(0, OpKind::kSc, 9, 1));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->value, 9u);
  EXPECT_EQ(next->valid, 0u) << "every process's valid bit must clear";
}

TEST(LlscSpec, FailedScLeavesStateAlone) {
  LlscRegisterSpec::State s{7, 0b0010};
  const auto next = LlscRegisterSpec::apply(s, op(0, OpKind::kSc, 9, 0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->value, 7u);
  EXPECT_EQ(next->valid, 0b0010u);
}

TEST(LlscSpec, ScReturnMustMatchValidity) {
  LlscRegisterSpec::State s{7, 0b0001};
  // proc 0 is valid: claiming failure is a contradiction.
  EXPECT_FALSE(LlscRegisterSpec::apply(s, op(0, OpKind::kSc, 9, 0)));
  // proc 1 is not valid: claiming success is a contradiction.
  EXPECT_FALSE(LlscRegisterSpec::apply(s, op(1, OpKind::kSc, 9, 1)));
}

TEST(LlscSpec, ReadChecksValue) {
  LlscRegisterSpec::State s{7, 0};
  EXPECT_TRUE(LlscRegisterSpec::apply(s, op(0, OpKind::kRead, 0, 7)));
  EXPECT_FALSE(LlscRegisterSpec::apply(s, op(0, OpKind::kRead, 0, 8)));
}

// ---- CAS spec ----

TEST(CasSpec, SuccessfulCasWrites) {
  CasRegisterSpec::State s{5};
  const auto next = CasRegisterSpec::apply(
      s, op(0, OpKind::kCas, CasRegisterSpec::pack_args(5, 6), 1));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->value, 6u);
}

TEST(CasSpec, FailedCasMustReportFailure) {
  CasRegisterSpec::State s{5};
  EXPECT_TRUE(CasRegisterSpec::apply(
      s, op(0, OpKind::kCas, CasRegisterSpec::pack_args(4, 6), 0)));
  EXPECT_FALSE(CasRegisterSpec::apply(
      s, op(0, OpKind::kCas, CasRegisterSpec::pack_args(4, 6), 1)));
  EXPECT_FALSE(CasRegisterSpec::apply(
      s, op(0, OpKind::kCas, CasRegisterSpec::pack_args(5, 6), 0)));
}

TEST(CasSpec, WrongKindRejected) {
  CasRegisterSpec::State s{5};
  EXPECT_FALSE(CasRegisterSpec::apply(s, op(0, OpKind::kLl, 0, 5)));
}

// ---- history recorder ----

TEST(HistoryRecorder, TimestampsAreUniqueAndOrdered) {
  HistoryRecorder rec(2);
  const auto a = rec.now();
  const auto b = rec.now();
  EXPECT_LT(a, b);
}

TEST(HistoryRecorder, CollectSortsByInvocation) {
  HistoryRecorder rec(2);
  const auto inv0 = rec.now();
  const auto inv1 = rec.now();
  rec.add(1, 1, OpKind::kLl, 0, 5, inv1);  // added out of order
  rec.add(0, 0, OpKind::kLl, 0, 5, inv0);
  const auto h = rec.collect();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].proc, 0u);
  EXPECT_EQ(h[1].proc, 1u);
  EXPECT_LT(h[0].inv_ts, h[0].res_ts);
}

TEST(HistoryRecorder, ConcurrentRecordingIsComplete) {
  HistoryRecorder rec(4);
  run_threads(4, [&](std::size_t tid) {
    for (int i = 0; i < 100; ++i) {
      const auto inv = rec.now();
      rec.add(static_cast<unsigned>(tid), static_cast<unsigned>(tid),
              OpKind::kRead, 0, 0, inv);
    }
  });
  EXPECT_EQ(rec.collect().size(), 400u);
}

}  // namespace
}  // namespace moir
