// A three-stage processing pipeline over Michael-Scott queues, with a
// wait-free statistics object — the kind of system the paper's §1 promises
// to make buildable from published non-blocking algorithms on commodity
// hardware. Stage 1 produces work items, stage 2 transforms them, stage 3
// aggregates; queues between stages are MsQueue over Figure-4 LL/VL/SC,
// and the shared stats object is the wait-free universal construction.
#include <atomic>
#include <cstdio>

#include "core/llsc_traits.hpp"
#include "nonblocking/ms_queue.hpp"
#include "nonblocking/wait_free_universal.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_utils.hpp"

namespace {

struct PipelineStats {
  std::uint64_t produced = 0;
  std::uint64_t transformed = 0;
  std::uint64_t consumed = 0;
  std::uint64_t checksum = 0;
};

enum : std::uint32_t { kProduced = 1, kTransformed = 2, kConsumed = 3 };

struct StatsApplier {
  PipelineStats operator()(PipelineStats s, std::uint32_t opid,
                           std::uint64_t arg, std::uint64_t* result) const {
    switch (opid) {
      case kProduced:
        s.produced += 1;
        break;
      case kTransformed:
        s.transformed += 1;
        break;
      case kConsumed:
        s.consumed += 1;
        s.checksum += arg;
        break;
    }
    *result = 0;
    return s;
  }
};

using Substrate = moir::CasBackedLlsc<16>;
using Stats = moir::WaitFreeUniversal<PipelineStats, StatsApplier>;

constexpr std::uint64_t kItems = 50000;
constexpr unsigned kThreads = 3;  // one per stage

}  // namespace

int main() {
  Substrate substrate;
  auto init_ctx = substrate.make_ctx();
  moir::MsQueue<Substrate> stage1(substrate, 256, init_ctx);
  moir::MsQueue<Substrate> stage2(substrate, 256, init_ctx);

  moir::WideLlsc<32> stats_dom(kThreads + 1,
                               Stats::required_width(kThreads + 1));
  Stats stats(stats_dom, kThreads + 1, StatsApplier{}, PipelineStats{});

  std::printf("pipeline: produce -> transform(x*2+1) -> aggregate, "
              "%llu items\n\n",
              static_cast<unsigned long long>(kItems));

  moir::Stopwatch timer;
  moir::run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = substrate.make_ctx();
    auto sctx = stats_dom.make_ctx();
    if (tid == 0) {
      // Producer: items 1..kItems.
      for (std::uint64_t i = 1; i <= kItems; ++i) {
        while (!stage1.enqueue(ctx, i & 0xfff)) std::this_thread::yield();
        stats.apply(sctx, kProduced, 0);
      }
    } else if (tid == 1) {
      // Transformer: x -> 2x+1 (stays within the 16-bit value field).
      for (std::uint64_t n = 0; n < kItems;) {
        if (const auto v = stage1.dequeue(ctx)) {
          const std::uint64_t out = (*v * 2 + 1) & 0xffff;
          while (!stage2.enqueue(ctx, out)) std::this_thread::yield();
          stats.apply(sctx, kTransformed, 0);
          ++n;
        } else {
          std::this_thread::yield();
        }
      }
    } else {
      // Aggregator.
      for (std::uint64_t n = 0; n < kItems;) {
        if (const auto v = stage2.dequeue(ctx)) {
          stats.apply(sctx, kConsumed, *v);
          ++n;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  const double secs = timer.elapsed_s();

  auto sctx = stats_dom.make_ctx();
  const PipelineStats fin = stats.read(sctx);

  // Independent checksum of what the aggregator must have seen.
  std::uint64_t expect = 0;
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    expect += ((i & 0xfff) * 2 + 1) & 0xffff;
  }

  std::printf("throughput : %.2f K items/s end-to-end\n",
              kItems / secs / 1e3);
  std::printf("produced=%llu transformed=%llu consumed=%llu\n",
              static_cast<unsigned long long>(fin.produced),
              static_cast<unsigned long long>(fin.transformed),
              static_cast<unsigned long long>(fin.consumed));
  std::printf("checksum   : %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(fin.checksum),
              static_cast<unsigned long long>(expect),
              fin.checksum == expect ? "OK" : "BROKEN");
  const bool ok = fin.produced == kItems && fin.transformed == kItems &&
                  fin.consumed == kItems && fin.checksum == expect;
  return ok ? 0 : 1;
}
