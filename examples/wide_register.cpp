// Atomic multi-word snapshots with Figure 6: a "sensor fusion" scenario.
// One writer publishes a 5-field telemetry record; readers take atomic
// snapshots and verify internal consistency (checksum). A torn read would
// fail the checksum — Figure 6's helping protocol guarantees none occur.
#include <atomic>
#include <cstdio>

#include "core/value_codec.hpp"
#include "core/wide_llsc.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_utils.hpp"

namespace {

struct Telemetry {
  std::uint64_t timestamp;
  double lat, lon, altitude;
  std::uint64_t checksum;

  static std::uint64_t compute_checksum(const Telemetry& t) {
    std::uint64_t h = t.timestamp * 0x9e3779b97f4a7c15ULL;
    std::uint64_t bits;
    static_assert(sizeof(double) == 8);
    std::memcpy(&bits, &t.lat, 8);
    h ^= bits;
    std::memcpy(&bits, &t.lon, 8);
    h ^= bits * 3;
    std::memcpy(&bits, &t.altitude, 8);
    h ^= bits * 7;
    return h;
  }
};

using Wide = moir::WideLlsc<32>;

}  // namespace

int main() {
  const unsigned width = static_cast<unsigned>(
      moir::chunks_needed(sizeof(Telemetry), Wide::kChunkBits));
  constexpr unsigned kReaders = 3;
  Wide dom(kReaders + 1, width);
  Wide::Var var;

  Telemetry init{0, 0.0, 0.0, 0.0, 0};
  init.checksum = Telemetry::compute_checksum(init);
  std::vector<std::uint64_t> buf(width);
  moir::encode_value(init, buf, Wide::kChunkBits);
  dom.init_var(var, buf);

  std::printf("wide register: %zu-byte Telemetry = %u segments of %u payload "
              "bits\n\n",
              sizeof(Telemetry), width, Wide::kChunkBits);

  std::atomic<std::uint64_t> snapshots{0}, torn{0};
  constexpr int kWrites = 200000;
  moir::Stopwatch timer;
  moir::run_threads(kReaders + 1, [&](std::size_t tid) {
    auto ctx = dom.make_ctx();
    std::vector<std::uint64_t> local(width);
    if (tid == 0) {
      moir::Xoshiro256 rng(42);
      for (int i = 1; i <= kWrites; ++i) {
        Telemetry t{static_cast<std::uint64_t>(i),
                    rng.next_double() * 180 - 90,
                    rng.next_double() * 360 - 180,
                    rng.next_double() * 12000, 0};
        t.checksum = Telemetry::compute_checksum(t);
        moir::encode_value(t, local, Wide::kChunkBits);
        for (;;) {
          Wide::Keep keep;
          std::vector<std::uint64_t> cur(width);
          if (!dom.wll(ctx, var, keep, cur).success) continue;
          if (dom.sc(ctx, var, keep, local)) break;
        }
      }
    } else {
      std::uint64_t ok = 0, bad = 0, last_ts = 0;
      for (;;) {
        dom.read(ctx, var, local);
        const auto t = moir::decode_value<Telemetry>(local, Wide::kChunkBits);
        if (t.checksum == Telemetry::compute_checksum(t)) {
          ++ok;
          if (t.timestamp < last_ts) ++bad;  // snapshots must be monotone
          last_ts = t.timestamp;
        } else {
          ++bad;
        }
        if (t.timestamp >= kWrites) break;
      }
      snapshots.fetch_add(ok);
      torn.fetch_add(bad);
    }
  });

  std::printf("writer     : %d atomic multi-word publishes in %.2fs\n",
              kWrites, timer.elapsed_s());
  std::printf("readers    : %llu consistent snapshots, %llu torn/stale -> %s\n",
              static_cast<unsigned long long>(snapshots.load()),
              static_cast<unsigned long long>(torn.load()),
              torn.load() == 0 ? "OK" : "BROKEN");
  return torn.load() == 0 ? 0 : 1;
}
