// Change-feed watchers: one writer streams updates through the KV
// service while N watchers follow along via kSubscribe/kPoll, each
// holding a shard subscription (src/feed/feed.hpp). The feed is lossy by
// design — a slow watcher gets lapped and the poll reports `resynced` —
// so each watcher re-reads its shard's keys from the authoritative map
// whenever that happens. At the end every watcher's view must agree with
// the map: the checksum over final values is the convergence proof.
//
// Build & run:  cmake --build build --target kv_watch && ./build/examples/kv_watch
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "feed/feed.hpp"
#include "reclaim/epoch.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"

int main() {
  using Svc = moir::svc::KvService<moir::CasBackedLlsc<16>,
                                   moir::reclaim::EpochReclaimer>;
  using moir::svc::Op;
  using moir::svc::Status;

  constexpr unsigned kQueues = 2;
  constexpr unsigned kWatchers = 4;
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kRounds = 200;

  moir::stats::set_counting(true);

  moir::CasBackedLlsc<16> substrate;
  Svc svc(substrate, {.queues = kQueues,
                      .workers = 2,
                      .max_sessions = 1 + kWatchers,
                      .feed = true,
                      .feed_max_subscribers = kWatchers,
                      .map = {.shards = kQueues, .buckets_per_shard = 32,
                              .capacity_per_shard = 512}});

  std::atomic<bool> done{false};

  // The writer sweeps the keyspace kRounds times; the last round's values
  // are what every watcher must converge to.
  std::thread writer([&] {
    auto c = svc.connect();
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      for (std::uint64_t key = 0; key < kKeys; ++key) {
        const std::uint64_t value = r * kKeys + key + 1;
        for (;;) {
          const auto t = svc.submit(c, Op::kUpsert, key, value);
          if (!t.has_value()) continue;  // ticket window full; retry
          if (svc.wait(c, *t).status != Status::kOverload) break;
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<unsigned> mismatches{0};
  std::vector<std::thread> watchers;
  for (unsigned w = 0; w < kWatchers; ++w) {
    watchers.emplace_back([&, w] {
      auto c = svc.connect();
      const unsigned shard = w % kQueues;
      auto request = [&](Op op, std::uint64_t k, std::uint64_t v = 0) {
        for (;;) {
          const auto t = svc.submit(c, op, k, v);
          if (t.has_value()) return svc.wait(c, *t);
        }
      };

      // arg2 != 0 selects a shard filter; the shard is arg1 % queues.
      const auto s = request(Op::kSubscribe, shard, 1);
      if (s.status != Status::kOk) {
        std::printf("watcher %u: subscribe refused\n", w);
        mismatches.fetch_add(1);
        return;
      }
      const std::uint64_t id = s.value;

      // observed[key] holds the wire form (0 = absent, v+1 = v), exactly
      // what feed records carry.
      std::vector<std::uint64_t> observed(kKeys, 0);
      const auto resync_shard = [&] {
        for (std::uint64_t key = 0; key < kKeys; ++key) {
          if (svc.shard_of(key) != shard) continue;
          const auto r = request(Op::kFind, key);
          observed[key] = r.status == Status::kOk ? r.value + 1 : 0;
        }
      };

      // Watcher 0 dawdles between polls so the writer laps it: its
      // converged checksum demonstrates the lossy feed's recovery story,
      // not just the happy path.
      const bool slow = w == 0;
      std::uint64_t polls = 0, resyncs = 0;
      for (;;) {
        if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(3));
        // Order matters: read `done` BEFORE polling, so an empty poll
        // after the writer finished really means the stream is drained.
        const bool done_before = done.load(std::memory_order_acquire);
        const auto t = svc.submit(c, Op::kPoll, id, 8);
        if (!t.has_value()) continue;
        moir::feed::Record recs[8];
        const auto d = svc.wait_feed(c, *t, recs, 8);
        ++polls;
        for (unsigned i = 0; i < d.delivered; ++i) {
          observed[recs[i].key] = recs[i].value;
        }
        if (d.resynced) {
          // Lapped: the lost records are gone, the map is authoritative.
          ++resyncs;
          resync_shard();
        }
        if (done_before && d.delivered == 0 && !d.resynced) break;
        if (d.delivered == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      request(Op::kUnsubscribe, id);

      // Convergence: checksum the watcher's view of its shard against the
      // values the writer's final round left in the map.
      std::uint64_t got = 0, want = 0;
      for (std::uint64_t key = 0; key < kKeys; ++key) {
        if (svc.shard_of(key) != shard) continue;
        got += key * observed[key];
        want += key * ((kRounds - 1) * kKeys + key + 1 + 1);  // wire: v+1
      }
      if (got != want) mismatches.fetch_add(1);
      std::printf(
          "watcher %u (shard %u): %llu polls, %llu resyncs, checksum %s\n", w,
          shard, static_cast<unsigned long long>(polls),
          static_cast<unsigned long long>(resyncs),
          got == want ? "OK" : "MISMATCH");
    });
  }

  writer.join();
  for (auto& t : watchers) t.join();
  svc.stop();

  const auto snap = moir::stats::snapshot();
  std::printf("feed: %llu published, %llu delivered, %llu overruns, "
              "%llu resyncs\n",
              static_cast<unsigned long long>(
                  snap[moir::stats::Id::kFeedPublish]),
              static_cast<unsigned long long>(
                  snap[moir::stats::Id::kFeedDeliver]),
              static_cast<unsigned long long>(
                  snap[moir::stats::Id::kFeedOverrun]),
              static_cast<unsigned long long>(
                  snap[moir::stats::Id::kFeedResync]));
  const unsigned bad = mismatches.load();
  std::printf("%s\n", bad == 0 ? "all watchers converged"
                               : "CONVERGENCE FAILURE");
  return bad == 0 ? 0 : 1;
}
