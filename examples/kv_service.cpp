// Minimal KV service session: four client threads drive mixed traffic
// through the full wait-free pipeline (SPSC ring -> router -> LL/SC
// MS-queues -> batching executors -> sharded map), then the tail latency
// comes out of the stats layer's svc_latency histogram.
//
// Build & run:  cmake --build build --target kv_service && ./build/examples/kv_service
#include <cstdio>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

int main() {
  using Svc = moir::svc::KvService<moir::CasBackedLlsc<16>,
                                   moir::reclaim::EpochReclaimer>;
  using moir::svc::Op;
  using moir::svc::Status;

  moir::stats::set_counting(true);  // feeds the svc_latency histogram

  moir::CasBackedLlsc<16> substrate;
  Svc svc(substrate, {.queues = 2,
                      .workers = 2,
                      .batch = 16,
                      .max_sessions = 4,
                      .map = {.shards = 2, .buckets_per_shard = 32,
                              .capacity_per_shard = 512}});

  constexpr unsigned kClients = 4;
  constexpr std::uint64_t kOpsEach = 20000;
  constexpr std::uint64_t kKeys = 256;

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kClients; ++t) {
    clients.emplace_back([&svc, t] {
      auto c = svc.connect();  // leases a session + its ring and tickets
      moir::Xoshiro256 rng(0x5eed + t);
      std::uint64_t hits = 0, sheds = 0;
      for (std::uint64_t i = 0; i < kOpsEach; ++i) {
        const std::uint64_t key = rng.next_below(kKeys);
        const Op op = rng.next_below(100) < 50
                          ? Op::kFind
                          : (rng.next_below(2) != 0 ? Op::kUpsert : Op::kErase);
        const auto ticket = svc.submit(c, op, key, key * 3 + 1);
        if (!ticket.has_value()) {
          ++sheds;  // EBUSY: the service refused rather than blocked
          continue;
        }
        const auto r = svc.wait(c, *ticket);
        hits += r.status == Status::kOk ? 1 : 0;
      }
      std::printf("client %u: %llu ok, %llu shed\n", t,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(sheds));
    });
  }
  for (auto& th : clients) th.join();
  svc.stop();

  const auto lat = moir::stats::merged_histogram(moir::stats::HistId::kSvcLatency);
  const auto s = moir::stats::snapshot();
  std::printf("requests: %llu, executor batches: %llu\n",
              static_cast<unsigned long long>(
                  s[moir::stats::Id::kSvcEnqueue]),
              static_cast<unsigned long long>(s[moir::stats::Id::kSvcBatch]));
  std::printf("latency p50 %.1fus  p99 %.1fus  max %.1fus\n",
              lat.percentile(0.50) / 1e3, lat.percentile(0.99) / 1e3,
              static_cast<double>(lat.max()) / 1e3);

  // ----- Part 2: multi-key transactions (txn mode) -------------------------
  // Four tellers make atomic two-key transfers between eight accounts via
  // kMultiCas; the global balance is checked with one atomic 8-key
  // snapshot per teller pass and must come out conserved every time.
  using Txn = Svc::Txn;
  constexpr std::uint64_t kAccounts = 8;
  constexpr std::uint64_t kBalance = 1000;

  moir::CasBackedLlsc<16> substrate2;
  Svc bank(substrate2, {.queues = 2,
                        .workers = 2,
                        .batch = 16,
                        .max_sessions = 4,
                        .txn = true,
                        .map = {.shards = 2, .buckets_per_shard = 32,
                                .capacity_per_shard = 512}});
  {
    auto c = bank.connect();
    std::uint64_t keys[kAccounts], vals[kAccounts];
    for (std::uint64_t k = 0; k < kAccounts; ++k) {
      keys[k] = k;
      vals[k] = kBalance;
    }
    for (;;) {  // an empty fresh service only sheds transiently
      const auto t = bank.submit_multi(c, Op::kMultiPut, keys, vals);
      if (t.has_value()) {
        bank.wait(c, *t);
        break;
      }
    }
  }

  std::vector<std::thread> tellers;
  for (unsigned t = 0; t < kClients; ++t) {
    tellers.emplace_back([&bank, t] {
      auto c = bank.connect();
      moir::Xoshiro256 rng(0xba2d5eedULL + t);
      std::uint64_t commits = 0, retries = 0;
      for (std::uint64_t i = 0; i < 2000; ++i) {
        const std::uint64_t from = rng.next_below(kAccounts);
        std::uint64_t to = rng.next_below(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        const std::uint64_t pair[] = {from, to};
        // Snapshot the pair, then transfer 1 expecting that snapshot.
        std::uint64_t snap[2];
        auto tk = bank.submit_multi(c, Op::kMultiGet, pair);
        if (!tk.has_value()) continue;
        bank.wait(c, *tk, snap);
        const std::uint64_t bal_from = snap[0] - 1;
        if (bal_from == 0) continue;  // overdraft refused
        const std::uint64_t des[] = {snap[0] - 1, snap[1] + 1};
        tk = bank.submit_multi(c, Op::kMultiCas, pair, des, snap);
        if (!tk.has_value()) continue;
        const auto r = bank.wait(c, *tk);
        r.status == Status::kOk ? ++commits : ++retries;
        if (i % 200 == 0) {
          // One atomic 8-key snapshot: the books must balance mid-flight.
          std::uint64_t all[kAccounts], out[kAccounts];
          for (std::uint64_t k = 0; k < kAccounts; ++k) all[k] = k;
          tk = bank.submit_multi(c, Op::kMultiGet, all);
          if (!tk.has_value()) continue;
          bank.wait(c, *tk, out);
          std::uint64_t sum = 0;
          for (const std::uint64_t cell : out) sum += cell - 1;
          if (sum != kAccounts * kBalance) {
            std::printf("teller %u: CONSERVATION VIOLATED (%llu)\n", t,
                        static_cast<unsigned long long>(sum));
          }
        }
      }
      std::printf("teller %u: %llu transfers committed, %llu lost races\n",
                  t, static_cast<unsigned long long>(commits),
                  static_cast<unsigned long long>(retries));
    });
  }
  for (auto& th : tellers) th.join();

  {
    auto c = bank.connect();
    std::uint64_t all[kAccounts], out[kAccounts];
    for (std::uint64_t k = 0; k < kAccounts; ++k) all[k] = k;
    const auto tk = bank.submit_multi(c, Op::kMultiGet, all);
    std::uint64_t sum = 0;
    if (tk.has_value()) {
      bank.wait(c, *tk, out);
      for (const std::uint64_t cell : out) sum += cell - 1;
    }
    std::printf("final balance: %llu (expected %llu) — %s\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(kAccounts * kBalance),
                sum == kAccounts * kBalance ? "conserved" : "VIOLATED");
  }
  bank.stop();
  return 0;
}
