// Minimal KV service session: four client threads drive mixed traffic
// through the full wait-free pipeline (SPSC ring -> router -> LL/SC
// MS-queues -> batching executors -> sharded map), then the tail latency
// comes out of the stats layer's svc_latency histogram.
//
// Build & run:  cmake --build build --target kv_service && ./build/examples/kv_service
#include <cstdio>
#include <thread>
#include <vector>

#include "core/llsc_traits.hpp"
#include "reclaim/epoch.hpp"
#include "stats/stats.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

int main() {
  using Svc = moir::svc::KvService<moir::CasBackedLlsc<16>,
                                   moir::reclaim::EpochReclaimer>;
  using moir::svc::Op;
  using moir::svc::Status;

  moir::stats::set_counting(true);  // feeds the svc_latency histogram

  moir::CasBackedLlsc<16> substrate;
  Svc svc(substrate, {.queues = 2,
                      .workers = 2,
                      .batch = 16,
                      .max_sessions = 4,
                      .map = {.shards = 2, .buckets_per_shard = 32,
                              .capacity_per_shard = 512}});

  constexpr unsigned kClients = 4;
  constexpr std::uint64_t kOpsEach = 20000;
  constexpr std::uint64_t kKeys = 256;

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kClients; ++t) {
    clients.emplace_back([&svc, t] {
      auto c = svc.connect();  // leases a session + its ring and tickets
      moir::Xoshiro256 rng(0x5eed + t);
      std::uint64_t hits = 0, sheds = 0;
      for (std::uint64_t i = 0; i < kOpsEach; ++i) {
        const std::uint64_t key = rng.next_below(kKeys);
        const Op op = rng.next_below(100) < 50
                          ? Op::kFind
                          : (rng.next_below(2) != 0 ? Op::kUpsert : Op::kErase);
        const auto ticket = svc.submit(c, op, key, key * 3 + 1);
        if (!ticket.has_value()) {
          ++sheds;  // EBUSY: the service refused rather than blocked
          continue;
        }
        const auto r = svc.wait(c, *ticket);
        hits += r.status == Status::kOk ? 1 : 0;
      }
      std::printf("client %u: %llu ok, %llu shed\n", t,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(sheds));
    });
  }
  for (auto& th : clients) th.join();
  svc.stop();

  const auto lat = moir::stats::merged_histogram(moir::stats::HistId::kSvcLatency);
  const auto s = moir::stats::snapshot();
  std::printf("requests: %llu, executor batches: %llu\n",
              static_cast<unsigned long long>(
                  s[moir::stats::Id::kSvcEnqueue]),
              static_cast<unsigned long long>(s[moir::stats::Id::kSvcBatch]));
  std::printf("latency p50 %.1fus  p99 %.1fus  max %.1fus\n",
              lat.percentile(0.50) / 1e3, lat.percentile(0.99) / 1e3,
              static_cast<double>(lat.max()) / 1e3);
  return 0;
}
