// Software transactional memory demo — the paper's Section 5 claim that
// STM "can be implemented in existing systems", as a bank: concurrent
// transfers between accounts, atomic multi-account audits, and a final
// conservation check.
#include <atomic>
#include <cstdio>

#include "nonblocking/stm.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_utils.hpp"

namespace {

constexpr unsigned kThreads = 4;
constexpr std::size_t kAccounts = 32;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr int kTransfersEach = 50000;

void tx_transfer(const std::uint64_t* olds, std::uint64_t* news, unsigned,
                 std::uint64_t amount) {
  const std::uint64_t moved = olds[0] >= amount ? amount : 0;
  news[0] = olds[0] - moved;
  news[1] = olds[1] + moved;
}

void tx_audit4(const std::uint64_t* olds, std::uint64_t* news, unsigned n,
               std::uint64_t) {
  // Read-only transaction: an atomic snapshot of four accounts.
  for (unsigned i = 0; i < n; ++i) news[i] = olds[i];
}

}  // namespace

int main() {
  moir::Stm stm(kThreads + 1, kAccounts);
  for (std::size_t a = 0; a < kAccounts; ++a) {
    stm.set_initial(a, kInitialBalance);
  }

  std::printf("stm bank: %zu accounts x %llu, %u threads x %d transfers\n\n",
              kAccounts, static_cast<unsigned long long>(kInitialBalance),
              kThreads, kTransfersEach);

  std::atomic<std::uint64_t> aborts{0}, audits_ok{0};
  moir::Stopwatch timer;
  moir::run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = stm.make_ctx();
    moir::Xoshiro256 rng(tid * 7 + 1);
    std::uint64_t my_aborts = 0, my_audits = 0;
    for (int i = 0; i < kTransfersEach; ++i) {
      if (i % 16 == 0) {
        // Atomic 4-account audit: the snapshot's sum must be stable
        // against concurrent transfers among those four accounts... it
        // isn't in general (transfers in/out of the window), but the
        // snapshot itself must be consistent — exercised by the checker
        // tests; here we just count successful audits.
        const std::uint32_t base =
            static_cast<std::uint32_t>(rng.next_below(kAccounts - 4));
        const std::uint32_t addrs[] = {base, base + 1, base + 2, base + 3};
        my_audits += stm.transact(ctx, addrs, tx_audit4, 0).committed;
        continue;
      }
      std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(kAccounts));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      const std::uint32_t addrs[] = {a, b};
      my_aborts +=
          stm.transact(ctx, addrs, tx_transfer, 1 + rng.next_below(50)).aborts;
    }
    aborts.fetch_add(my_aborts);
    audits_ok.fetch_add(my_audits);
  });
  const double secs = timer.elapsed_s();

  auto ctx = stm.make_ctx();
  std::uint64_t total = 0;
  for (std::size_t a = 0; a < kAccounts; ++a) total += stm.read(ctx, a);

  std::printf("throughput : %.2f M transactions/s\n",
              kThreads * kTransfersEach / secs / 1e6);
  std::printf("aborts     : %llu (retried transparently)\n",
              static_cast<unsigned long long>(aborts.load()));
  std::printf("audits     : %llu atomic 4-account snapshots\n",
              static_cast<unsigned long long>(audits_ok.load()));
  std::printf("total money: %llu (expected %llu) -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              total == kAccounts * kInitialBalance ? "CONSERVED" : "BROKEN");
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
