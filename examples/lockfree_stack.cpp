// A lock-free work-stealing-style scenario: producers push work items,
// consumers pop them, over three interchangeable substrates — the paper's
// portability pitch — with popped nodes *genuinely freed* through the
// safe-memory-reclamation layer (src/reclaim/) instead of recycled in
// place. Run with no arguments; prints a throughput line, a conservation
// check, and a blocks-came-home reclamation check per substrate.
#include <atomic>
#include <cstdio>
#include <string>

#include "core/bounded_llsc.hpp"
#include "core/llsc_traits.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_utils.hpp"

namespace {

constexpr unsigned kThreads = 4;
constexpr int kOpsEach = 100000;
constexpr std::uint32_t kPool = 1024;

template <typename S>
void run_scenario(const char* label, S& substrate) {
  // Swap reclaim::HazardPointerReclaimer in here to trade cheaper reads
  // (epoch) for a bounded garbage pile even under stalled readers (hazard).
  moir::ReclaimedTreiberStack<S, moir::reclaim::EpochReclaimer> stack(
      substrate, kThreads + 1, kPool);

  std::atomic<std::int64_t> pushed{0}, popped{0};
  moir::Stopwatch timer;
  moir::run_threads(kThreads, [&](std::size_t tid) {
    auto ctx = stack.make_ctx();
    moir::Xoshiro256 rng(tid + 1);
    std::int64_t my_pushed = 0, my_popped = 0;
    for (int i = 0; i < kOpsEach; ++i) {
      if (rng.chance(1, 2)) {
        my_pushed += stack.push(ctx, i & 0xfff);
      } else {
        my_popped += stack.pop(ctx).has_value();
      }
    }
    pushed.fetch_add(my_pushed);
    popped.fetch_add(my_popped);
  });
  const double secs = timer.elapsed_s();

  // Conservation: drain and compare; then flush the reclaimer and check
  // that every freed node actually returned to the allocator.
  auto main_ctx = stack.make_ctx();
  std::int64_t remaining = 0;
  while (stack.pop(main_ctx)) ++remaining;
  const bool conserved = pushed.load() - popped.load() == remaining;
  stack.flush(main_ctx);
  const bool reclaimed = stack.free_blocks_quiescent() == kPool;

  std::printf(
      "%-28s %8.2f Mops/s   pushed=%lld popped=%lld left=%lld  %s %s\n",
      label, kThreads * kOpsEach / secs / 1e6,
      static_cast<long long>(pushed.load()),
      static_cast<long long>(popped.load()),
      static_cast<long long>(remaining),
      conserved ? "[conserved]" : "[CORRUPTED]",
      reclaimed ? "[all blocks reclaimed]" : "[LEAK]");
}

}  // namespace

int main() {
  std::printf(
      "lock-free stack with safe memory reclamation, on interchangeable "
      "LL/VL/SC substrates\n");
  std::printf("(%u threads, %d ops each, pool of %u nodes, epoch-based "
              "reclamation)\n\n",
              kThreads, kOpsEach, kPool);

  moir::CasBackedLlsc<16> fig4;
  run_scenario("figure-4 (CAS-backed)", fig4);

  moir::FaultInjector faults;
  faults.set_spurious_probability(0.001);
  moir::RllBackedLlsc<16> fig5(&faults);
  run_scenario("figure-5 (RLL/RSC-backed)", fig5);

  moir::BoundedLlsc<> fig7(kThreads + 2, 2);
  run_scenario("figure-7 (bounded tags)", fig7);

  moir::LockBackedLlsc<16> lock;
  run_scenario("lock baseline (footnote 1)", lock);
  return 0;
}
