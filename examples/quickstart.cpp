// Quickstart: the paper's primitives in five minutes.
//
//   $ ./examples/quickstart
//
// Walks through (1) LL/VL/SC from CAS, (2) CAS from restricted LL/SC,
// (3) why the naive emulation is wrong (ABA), and (4) a multi-word
// variable — mirroring the arc of the paper.
#include <cstdio>

#include "core/cas_from_rllrsc.hpp"
#include "core/llsc_from_cas.hpp"
#include "core/llsc_traits.hpp"
#include "core/value_codec.hpp"
#include "core/wide_llsc.hpp"
#include "platform/features.hpp"

int main() {
  std::printf("moir-llsc quickstart\n%s\n\n", moir::platform_summary().c_str());

  // --- 1. LL/VL/SC from CAS (Figure 4) -----------------------------------
  // The modified interface: LL fills a caller-supplied private `keep` word,
  // which VL and SC take back. Normally `keep` lives on your stack.
  {
    using L = moir::LlscFromCas<16>;  // 48-bit tag, 16-bit values
    L::Var x(41);
    L::Keep keep;
    const auto v = L::ll(x, keep);
    std::printf("fig4: ll(x) = %llu, vl = %d\n",
                static_cast<unsigned long long>(v), L::vl(x, keep));
    const bool ok = L::sc(x, keep, v + 1);
    std::printf("fig4: sc(x, %llu) = %d, x = %llu\n",
                static_cast<unsigned long long>(v + 1), ok,
                static_cast<unsigned long long>(x.read()));
  }

  // --- 2. CAS from restricted LL/SC (Figure 3) ---------------------------
  // The emulated RLL/RSC below has every hardware weakness the paper
  // lists, including injected spurious failures; the CAS retries through
  // them and completes in constant time after the last one.
  {
    using Cas = moir::CasFromRllRsc<16>;
    moir::FaultInjector faults;
    faults.force_failures(3);  // make the next three RSCs fail spuriously
    moir::Processor proc(&faults);
    Cas::Var x(7);
    const bool ok = Cas::cas(proc, x, 7, 8);
    std::printf(
        "\nfig3: cas(x, 7 -> 8) = %d after %llu spurious failures; x = %llu\n",
        ok, static_cast<unsigned long long>(proc.stats().spurious_failures),
        static_cast<unsigned long long>(x.read()));
  }

  // --- 3. Why tags matter: the ABA problem --------------------------------
  {
    moir::NaiveCasLlsc<16> naive;   // LL = load, SC = plain CAS. Wrong!
    moir::CasBackedLlsc<16> fig4;  // the paper's construction

    auto stage = [](auto& s) {
      auto ctx = s.make_ctx();
      typename std::remove_reference_t<decltype(s)>::Var x;
      s.init_var(x, 1);
      typename std::remove_reference_t<decltype(s)>::Keep victim, k;
      s.ll(ctx, x, victim);          // victim reads 1
      s.ll(ctx, x, k);
      s.sc(ctx, x, k, 2);            // someone changes 1 -> 2
      s.ll(ctx, x, k);
      s.sc(ctx, x, k, 1);            // ...and back: 2 -> 1 (ABA!)
      return s.sc(ctx, x, victim, 9);  // victim's SC must fail
    };
    std::printf("\naba: naive emulation sc succeeded = %d   (incorrect!)\n",
                stage(naive));
    std::printf("aba: figure-4 construction sc succeeded = %d (correct)\n",
                stage(fig4));
  }

  // --- 4. Values wider than a word (Figure 6) -----------------------------
  {
    struct Config {
      double threshold;
      std::uint64_t limit;
      std::uint32_t mode;
    };
    using Wide = moir::WideLlsc<32>;
    const unsigned w = static_cast<unsigned>(
        moir::chunks_needed(sizeof(Config), Wide::kChunkBits));
    Wide dom(/*n_processes=*/2, /*width=*/w);
    Wide::Var var;
    std::vector<std::uint64_t> buf(w);
    moir::encode_value(Config{0.75, 1000, 3}, buf, Wide::kChunkBits);
    dom.init_var(var, buf);

    auto ctx = dom.make_ctx();
    Wide::Keep keep;
    if (dom.wll(ctx, var, keep, buf).success) {
      auto cfg = moir::decode_value<Config>(buf, Wide::kChunkBits);
      std::printf("\nfig6: read %u-segment Config{%.2f, %llu, %u}\n", w,
                  cfg.threshold, static_cast<unsigned long long>(cfg.limit),
                  cfg.mode);
      cfg.mode = 4;
      moir::encode_value(cfg, buf, Wide::kChunkBits);
      std::printf("fig6: sc(new config) = %d\n",
                  dom.sc(ctx, var, keep, buf));
    }
  }

  std::printf("\ndone. see examples/lockfree_stack.cpp and "
              "examples/stm_bank.cpp for bigger consumers.\n");
  return 0;
}
