# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_core_small[1]_include.cmake")
include("/root/repo/build/tests/test_core_bounded[1]_include.cmake")
include("/root/repo/build/tests/test_core_wide[1]_include.cmake")
include("/root/repo/build/tests/test_nonblocking[1]_include.cmake")
include("/root/repo/build/tests/test_stm_suite[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_providers[1]_include.cmake")
include("/root/repo/build/tests/test_guardrails[1]_include.cmake")
include("/root/repo/build/tests/test_exploration[1]_include.cmake")
include("/root/repo/build/tests/test_torture[1]_include.cmake")
