# Empty compiler generated dependencies file for test_core_bounded.
# This may be replaced when dependencies are built.
