file(REMOVE_RECURSE
  "CMakeFiles/test_core_bounded.dir/test_bounded_llsc.cpp.o"
  "CMakeFiles/test_core_bounded.dir/test_bounded_llsc.cpp.o.d"
  "CMakeFiles/test_core_bounded.dir/test_slot_stack.cpp.o"
  "CMakeFiles/test_core_bounded.dir/test_slot_stack.cpp.o.d"
  "CMakeFiles/test_core_bounded.dir/test_tag_queue.cpp.o"
  "CMakeFiles/test_core_bounded.dir/test_tag_queue.cpp.o.d"
  "test_core_bounded"
  "test_core_bounded.pdb"
  "test_core_bounded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
