file(REMOVE_RECURSE
  "CMakeFiles/test_core_wide.dir/test_value_codec.cpp.o"
  "CMakeFiles/test_core_wide.dir/test_value_codec.cpp.o.d"
  "CMakeFiles/test_core_wide.dir/test_wide_llsc.cpp.o"
  "CMakeFiles/test_core_wide.dir/test_wide_llsc.cpp.o.d"
  "test_core_wide"
  "test_core_wide.pdb"
  "test_core_wide[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
