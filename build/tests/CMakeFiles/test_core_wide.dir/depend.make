# Empty dependencies file for test_core_wide.
# This may be replaced when dependencies are built.
