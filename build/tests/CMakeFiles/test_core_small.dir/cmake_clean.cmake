file(REMOVE_RECURSE
  "CMakeFiles/test_core_small.dir/test_cas_from_rllrsc.cpp.o"
  "CMakeFiles/test_core_small.dir/test_cas_from_rllrsc.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_llsc_from_cas.cpp.o"
  "CMakeFiles/test_core_small.dir/test_llsc_from_cas.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_llsc_from_rllrsc.cpp.o"
  "CMakeFiles/test_core_small.dir/test_llsc_from_rllrsc.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_process_registry.cpp.o"
  "CMakeFiles/test_core_small.dir/test_process_registry.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_substrates.cpp.o"
  "CMakeFiles/test_core_small.dir/test_substrates.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_tagged_word.cpp.o"
  "CMakeFiles/test_core_small.dir/test_tagged_word.cpp.o.d"
  "CMakeFiles/test_core_small.dir/test_valbits_sweep.cpp.o"
  "CMakeFiles/test_core_small.dir/test_valbits_sweep.cpp.o.d"
  "test_core_small"
  "test_core_small.pdb"
  "test_core_small[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
