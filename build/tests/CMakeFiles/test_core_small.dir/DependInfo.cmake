
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cas_from_rllrsc.cpp" "tests/CMakeFiles/test_core_small.dir/test_cas_from_rllrsc.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_cas_from_rllrsc.cpp.o.d"
  "/root/repo/tests/test_llsc_from_cas.cpp" "tests/CMakeFiles/test_core_small.dir/test_llsc_from_cas.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_llsc_from_cas.cpp.o.d"
  "/root/repo/tests/test_llsc_from_rllrsc.cpp" "tests/CMakeFiles/test_core_small.dir/test_llsc_from_rllrsc.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_llsc_from_rllrsc.cpp.o.d"
  "/root/repo/tests/test_process_registry.cpp" "tests/CMakeFiles/test_core_small.dir/test_process_registry.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_process_registry.cpp.o.d"
  "/root/repo/tests/test_substrates.cpp" "tests/CMakeFiles/test_core_small.dir/test_substrates.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_substrates.cpp.o.d"
  "/root/repo/tests/test_tagged_word.cpp" "tests/CMakeFiles/test_core_small.dir/test_tagged_word.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_tagged_word.cpp.o.d"
  "/root/repo/tests/test_valbits_sweep.cpp" "tests/CMakeFiles/test_core_small.dir/test_valbits_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_core_small.dir/test_valbits_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
