# Empty compiler generated dependencies file for test_core_small.
# This may be replaced when dependencies are built.
