file(REMOVE_RECURSE
  "CMakeFiles/test_nonblocking.dir/test_aba_structures.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_aba_structures.cpp.o.d"
  "CMakeFiles/test_nonblocking.dir/test_counter.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_counter.cpp.o.d"
  "CMakeFiles/test_nonblocking.dir/test_ms_queue.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_ms_queue.cpp.o.d"
  "CMakeFiles/test_nonblocking.dir/test_treiber_stack.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_treiber_stack.cpp.o.d"
  "CMakeFiles/test_nonblocking.dir/test_universal.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_universal.cpp.o.d"
  "CMakeFiles/test_nonblocking.dir/test_wait_free_universal.cpp.o"
  "CMakeFiles/test_nonblocking.dir/test_wait_free_universal.cpp.o.d"
  "test_nonblocking"
  "test_nonblocking.pdb"
  "test_nonblocking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
