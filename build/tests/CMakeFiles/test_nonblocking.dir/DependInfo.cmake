
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aba_structures.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_aba_structures.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_aba_structures.cpp.o.d"
  "/root/repo/tests/test_counter.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_counter.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_counter.cpp.o.d"
  "/root/repo/tests/test_ms_queue.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_ms_queue.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_ms_queue.cpp.o.d"
  "/root/repo/tests/test_treiber_stack.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_treiber_stack.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_treiber_stack.cpp.o.d"
  "/root/repo/tests/test_universal.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_universal.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_universal.cpp.o.d"
  "/root/repo/tests/test_wait_free_universal.cpp" "tests/CMakeFiles/test_nonblocking.dir/test_wait_free_universal.cpp.o" "gcc" "tests/CMakeFiles/test_nonblocking.dir/test_wait_free_universal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
