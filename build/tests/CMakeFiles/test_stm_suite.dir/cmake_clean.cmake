file(REMOVE_RECURSE
  "CMakeFiles/test_stm_suite.dir/test_mcas.cpp.o"
  "CMakeFiles/test_stm_suite.dir/test_mcas.cpp.o.d"
  "CMakeFiles/test_stm_suite.dir/test_stm.cpp.o"
  "CMakeFiles/test_stm_suite.dir/test_stm.cpp.o.d"
  "test_stm_suite"
  "test_stm_suite.pdb"
  "test_stm_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stm_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
