# Empty compiler generated dependencies file for test_stm_suite.
# This may be replaced when dependencies are built.
