# Empty compiler generated dependencies file for test_providers.
# This may be replaced when dependencies are built.
