file(REMOVE_RECURSE
  "CMakeFiles/test_providers.dir/test_rll_backed_wide_bounded.cpp.o"
  "CMakeFiles/test_providers.dir/test_rll_backed_wide_bounded.cpp.o.d"
  "CMakeFiles/test_providers.dir/test_wide_helping.cpp.o"
  "CMakeFiles/test_providers.dir/test_wide_helping.cpp.o.d"
  "test_providers"
  "test_providers.pdb"
  "test_providers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
