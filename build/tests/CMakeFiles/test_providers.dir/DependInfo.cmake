
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rll_backed_wide_bounded.cpp" "tests/CMakeFiles/test_providers.dir/test_rll_backed_wide_bounded.cpp.o" "gcc" "tests/CMakeFiles/test_providers.dir/test_rll_backed_wide_bounded.cpp.o.d"
  "/root/repo/tests/test_wide_helping.cpp" "tests/CMakeFiles/test_providers.dir/test_wide_helping.cpp.o" "gcc" "tests/CMakeFiles/test_providers.dir/test_wide_helping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/moir_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
