file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cas.dir/bench_fig3_cas.cpp.o"
  "CMakeFiles/bench_fig3_cas.dir/bench_fig3_cas.cpp.o.d"
  "bench_fig3_cas"
  "bench_fig3_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
