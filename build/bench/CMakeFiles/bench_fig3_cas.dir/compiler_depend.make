# Empty compiler generated dependencies file for bench_fig3_cas.
# This may be replaced when dependencies are built.
