# Empty compiler generated dependencies file for bench_fig7_bounded.
# This may be replaced when dependencies are built.
