file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_bounded.dir/bench_fig7_bounded.cpp.o"
  "CMakeFiles/bench_fig7_bounded.dir/bench_fig7_bounded.cpp.o.d"
  "bench_fig7_bounded"
  "bench_fig7_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
