# Empty dependencies file for bench_fig6_wide.
# This may be replaced when dependencies are built.
