file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wide.dir/bench_fig6_wide.cpp.o"
  "CMakeFiles/bench_fig6_wide.dir/bench_fig6_wide.cpp.o.d"
  "bench_fig6_wide"
  "bench_fig6_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
