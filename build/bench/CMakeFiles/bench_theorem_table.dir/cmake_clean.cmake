file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem_table.dir/bench_theorem_table.cpp.o"
  "CMakeFiles/bench_theorem_table.dir/bench_theorem_table.cpp.o.d"
  "bench_theorem_table"
  "bench_theorem_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
