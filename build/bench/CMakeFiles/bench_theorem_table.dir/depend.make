# Empty dependencies file for bench_theorem_table.
# This may be replaced when dependencies are built.
