file(REMOVE_RECURSE
  "CMakeFiles/bench_disjoint.dir/bench_disjoint.cpp.o"
  "CMakeFiles/bench_disjoint.dir/bench_disjoint.cpp.o.d"
  "bench_disjoint"
  "bench_disjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
