file(REMOVE_RECURSE
  "CMakeFiles/bench_wraparound.dir/bench_wraparound.cpp.o"
  "CMakeFiles/bench_wraparound.dir/bench_wraparound.cpp.o.d"
  "bench_wraparound"
  "bench_wraparound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wraparound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
