# Empty compiler generated dependencies file for bench_wraparound.
# This may be replaced when dependencies are built.
