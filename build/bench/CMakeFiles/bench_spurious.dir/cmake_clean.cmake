file(REMOVE_RECURSE
  "CMakeFiles/bench_spurious.dir/bench_spurious.cpp.o"
  "CMakeFiles/bench_spurious.dir/bench_spurious.cpp.o.d"
  "bench_spurious"
  "bench_spurious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spurious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
