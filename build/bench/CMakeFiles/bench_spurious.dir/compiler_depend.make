# Empty compiler generated dependencies file for bench_spurious.
# This may be replaced when dependencies are built.
