file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_llsc.dir/bench_fig4_llsc.cpp.o"
  "CMakeFiles/bench_fig4_llsc.dir/bench_fig4_llsc.cpp.o.d"
  "bench_fig4_llsc"
  "bench_fig4_llsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_llsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
