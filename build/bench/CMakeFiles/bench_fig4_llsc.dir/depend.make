# Empty dependencies file for bench_fig4_llsc.
# This may be replaced when dependencies are built.
