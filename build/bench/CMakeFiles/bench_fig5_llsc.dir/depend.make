# Empty dependencies file for bench_fig5_llsc.
# This may be replaced when dependencies are built.
