file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_llsc.dir/bench_fig5_llsc.cpp.o"
  "CMakeFiles/bench_fig5_llsc.dir/bench_fig5_llsc.cpp.o.d"
  "bench_fig5_llsc"
  "bench_fig5_llsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_llsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
