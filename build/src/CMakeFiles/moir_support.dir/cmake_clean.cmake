file(REMOVE_RECURSE
  "CMakeFiles/moir_support.dir/core/process_registry.cpp.o"
  "CMakeFiles/moir_support.dir/core/process_registry.cpp.o.d"
  "CMakeFiles/moir_support.dir/platform/features.cpp.o"
  "CMakeFiles/moir_support.dir/platform/features.cpp.o.d"
  "CMakeFiles/moir_support.dir/util/histogram.cpp.o"
  "CMakeFiles/moir_support.dir/util/histogram.cpp.o.d"
  "CMakeFiles/moir_support.dir/util/table.cpp.o"
  "CMakeFiles/moir_support.dir/util/table.cpp.o.d"
  "libmoir_support.a"
  "libmoir_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moir_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
