file(REMOVE_RECURSE
  "libmoir_support.a"
)
