
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/process_registry.cpp" "src/CMakeFiles/moir_support.dir/core/process_registry.cpp.o" "gcc" "src/CMakeFiles/moir_support.dir/core/process_registry.cpp.o.d"
  "/root/repo/src/platform/features.cpp" "src/CMakeFiles/moir_support.dir/platform/features.cpp.o" "gcc" "src/CMakeFiles/moir_support.dir/platform/features.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/moir_support.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/moir_support.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/moir_support.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/moir_support.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
