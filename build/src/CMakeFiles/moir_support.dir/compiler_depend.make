# Empty compiler generated dependencies file for moir_support.
# This may be replaced when dependencies are built.
