# Empty dependencies file for wide_register.
# This may be replaced when dependencies are built.
