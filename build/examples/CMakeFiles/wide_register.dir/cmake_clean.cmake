file(REMOVE_RECURSE
  "CMakeFiles/wide_register.dir/wide_register.cpp.o"
  "CMakeFiles/wide_register.dir/wide_register.cpp.o.d"
  "wide_register"
  "wide_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
