file(REMOVE_RECURSE
  "CMakeFiles/lockfree_stack.dir/lockfree_stack.cpp.o"
  "CMakeFiles/lockfree_stack.dir/lockfree_stack.cpp.o.d"
  "lockfree_stack"
  "lockfree_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
