# Empty compiler generated dependencies file for lockfree_stack.
# This may be replaced when dependencies are built.
