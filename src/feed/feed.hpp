// ChangeFeed: per-shard broadcast of committed updates with per-key and
// per-shard subscription filters — the pub/sub layer over the KV service.
//
// One BroadcastRing per shard; the shard's executor publishes every
// committed write (insert/upsert/erase) right after the map operation, so
// a ring's record order IS the shard's commit order (the service's
// per-queue executor claim makes the executor the ring's single writer,
// and key-hashed dispatch puts all writes to one key on one ring).
//
// A subscription watches exactly one ring — a key filter watches the ring
// of shard_of(key) and delivers only that key's records; a shard filter
// delivers everything the ring carries — so its progress state is one
// scalar cursor. Polling is wait-free: a poll scans forward from the
// cursor, skipping filtered-out records, and completes in at most
// capacity + max_records slot reads (the cursor can only be within
// capacity of the writer before reads start overrunning).
//
// Overrun recovery ("latest value + at-least-once after resync"): when the
// writer laps a subscriber, the lost records are gone — by design, see
// broadcast_ring.hpp — and the subscriber falls back to the authoritative
// map. A key subscription resyncs INSIDE poll(): it samples the ring's
// published() FIRST, re-bases the cursor there, then reads the key through
// the caller-supplied resync function and delivers the result as a
// synthetic record stamped with the sample and kResyncBit. Sampling
// BEFORE the map read is what makes the resync lossless: the executor
// publishes to the ring after the map commit, so every commit with a
// sequence below the sample happened-before the sample (release publish /
// acquire published()) and is therefore visible to the later map read,
// while every commit the read could still miss has sequence >= the sample
// and is re-delivered from the ring as polling resumes. (Sampling after
// the read looks tempting — the synthetic record would never be stale —
// but it silently SKIPS any write that committed between the read and the
// sample, breaking convergence.) The price is at-least-once: the map read
// may already observe commits at or past the sample, which the following
// ring records then repeat — versions stay monotone (the first repeated
// record carries exactly the sampled sequence), and the repeats re-walk
// the commit order the resync jumped over, which FeedChecker permits
// after a resync record. A shard subscription cannot name "its" keys, so
// poll() only reports `resynced` and jumps the cursor to published(); the
// caller re-reads whatever map state it cares about after the poll
// returns (examples/kv_watch.cpp), the same sample-first order.
//
// Subscriber slots are DynamicRegistry leases gated by an explicit count
// (the registry asserts past its ceiling rather than failing, so the gate
// is what turns "feed full" into a shedding kOverload at the service).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dynamic_registry.hpp"
#include "feed/broadcast_ring.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir::feed {

enum class Filter : std::uint8_t {
  kKey,    // deliver records of one key (ring of shard_of(key))
  kShard,  // deliver every record of one shard's ring
};

struct PollResult {
  unsigned delivered = 0;  // records written to the caller's buffer
  bool overrun = false;    // the writer lapped the cursor during this poll
  bool resynced = false;   // the cursor was re-based on the map/published()
};

template <std::uint32_t RingCap = 64, bool SkipValidation = false>
class ChangeFeed {
 public:
  using Ring = BroadcastRing<RingCap, SkipValidation>;

  ChangeFeed(unsigned shards, unsigned max_subscribers)
      : shards_(shards),
        max_subscribers_(max_subscribers),
        reg_(max_subscribers),
        subs_(std::make_unique<Subscription[]>(max_subscribers)) {
    MOIR_ASSERT(shards >= 1 && max_subscribers >= 1);
    rings_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      rings_.push_back(std::make_unique<Ring>());
    }
  }

  unsigned shards() const { return shards_; }
  unsigned max_subscribers() const { return max_subscribers_; }
  unsigned active_subscribers() const {
    return count_.load(std::memory_order_relaxed);
  }
  Ring& ring(unsigned shard) { return *rings_[shard]; }
  const Ring& ring(unsigned shard) const { return *rings_[shard]; }

  // Writer side: called by shard `shard`'s executor right after a map
  // commit. `wire_value` uses the map wire form (0 = erased, v+1 = v).
  // Returns the record's sequence number on the shard's ring.
  std::uint64_t publish(unsigned shard, std::uint64_t key,
                        std::uint64_t wire_value) {
    return rings_[shard]->publish(key, wire_value);
  }

  // Leases a subscription watching `key` (filter kKey, shard = the key's
  // shard, supplied by the caller since the feed does not own the hash) or
  // a whole shard (filter kShard). The cursor starts at published(): a new
  // subscriber sees updates committed after it subscribed, the snapshot
  // before that is the map itself. Returns nullopt when max_subscribers
  // leases are already out.
  std::optional<std::uint32_t> subscribe(Filter filter, unsigned shard,
                                         std::uint64_t key = 0) {
    MOIR_ASSERT(shard < shards_);
    // Gate before join(): DynamicRegistry asserts past its ceiling, the
    // count turns exhaustion into a recoverable refusal instead.
    unsigned n = count_.load(std::memory_order_relaxed);
    for (;;) {
      if (n >= max_subscribers_) return std::nullopt;
      if (count_.compare_exchange_weak(n, n + 1,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        break;
      }
    }
    const std::uint32_t id = reg_.join();
    Subscription& sub = subs_[id];
    sub.filter = filter;
    sub.shard = shard;
    sub.key = key;
    sub.cursor = rings_[shard]->published();
    return id;
  }

  // Returns the lease. The caller must have consumed every outstanding
  // poll for `id` first — the slot is immediately reusable by the next
  // subscribe (same discipline as ticket slots).
  void unsubscribe(std::uint32_t id) {
    MOIR_ASSERT(id < max_subscribers_);
    reg_.leave(id);
    count_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Reader side. Fills up to `max` records; `resync(key)` must return the
  // key's current wire-form value from the authoritative map. Calls for
  // one subscription must be serialized by the caller (the service's
  // per-queue claim does this; a direct subscriber is naturally its own
  // single poller) — the cursor is deliberately not atomic.
  template <class ResyncFn>
  PollResult poll(std::uint32_t id, Record* out, unsigned max,
                  ResyncFn&& resync) {
    MOIR_ASSERT(id < max_subscribers_);
    Subscription& sub = subs_[id];
    Ring& ring = *rings_[sub.shard];
    PollResult res;
    Record rec;
    // Slot-read budget: without it a writer publishing as fast as a key
    // filter skips could chase the cursor indefinitely. One ring's worth
    // of skips plus the requested records bounds the scan, keeping poll
    // wait-free rather than merely lock-free.
    unsigned budget = RingCap + max;
    while (res.delivered < max && budget-- > 0) {
      const ReadStatus st = ring.read(sub.cursor, rec);
      if (st == ReadStatus::kNotReady) break;
      if (st == ReadStatus::kOverrun) {
        res.overrun = true;
        res.resynced = true;
        stats::count(stats::Id::kFeedResync, 1, this);
        if (sub.filter == Filter::kKey) {
          // published() sample FIRST, map read SECOND: any commit the
          // read misses has seq >= ver and is re-delivered from the
          // ring; see the file comment for why the reverse order loses
          // writes.
          const std::uint64_t ver = ring.published();
          rec.key = sub.key;
          rec.value = resync(sub.key);
          rec.version = ver | kResyncBit;
          sub.cursor = ver;
          out[res.delivered++] = rec;
          stats::count(stats::Id::kFeedDeliver, 1, this);
        } else {
          // A shard subscriber re-reads its own keys; just re-base.
          sub.cursor = ring.published();
        }
        continue;
      }
      sub.cursor += 1;
      if (sub.filter == Filter::kKey && rec.key != sub.key) continue;
      out[res.delivered++] = rec;
      stats::count(stats::Id::kFeedDeliver, 1, this);
    }
    return res;
  }

 private:
  struct Subscription {
    Filter filter = Filter::kKey;
    unsigned shard = 0;
    std::uint64_t key = 0;
    std::uint64_t cursor = 0;
  };

  const unsigned shards_;
  const unsigned max_subscribers_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<unsigned> count_{0};  // gate: leases handed out
  DynamicRegistry reg_;
  std::unique_ptr<Subscription[]> subs_;
};

}  // namespace moir::feed
