// Fixed-size SPMC broadcast ring of committed {key, value, version}
// records: one writer (the shard's executor) appends, any number of
// subscribers read — with ZERO writes on the read path, so fan-out scales
// without cache-line contention between readers.
//
// The publication primitive is the Blelloch–Wei descriptor trick from
// core/bw_llsc.hpp turned inside out: instead of a pointer-width install of
// an immutable descriptor, each slot is a seqlock-stamped record the writer
// rewrites in place. The per-slot stamp carries the FULL sequence number of
// the record occupying the slot (2*seq+1 while the writer is mid-rewrite,
// 2*seq+2 once stable), so a reader that validates the stamp it started
// from learns three things with one extra load: the record was not torn,
// it belongs to exactly the sequence the reader asked for, and — because
// stamps only grow — a mismatch means the writer lapped the reader (an
// overrun), never an ABA alias of an older record.
//
// Lossiness is the design, not a bug: the ring never blocks the writer on
// a slow reader (that would hand subscribers a veto over the service's
// progress). A lapped reader detects the gap from the stamp and resyncs by
// reading the authoritative map — "latest value + at-least-once after
// resync" semantics, the right contract for cache-invalidation and
// watch-style workloads where only the newest value matters.
//
// Memory ordering extends the seqlock in bw_llsc.hpp to a TWO-word
// payload: the writer stores the odd stamp relaxed, then BOTH payload
// words with release, then the even stamp with release; a reader loads
// the stamp with acquire, the payload with acquire (so the relaxed
// re-validation load below cannot be hoisted above the payload reads),
// and re-checks the stamp relaxed. Each payload store must be release —
// not just the last one — because a reader lapped mid-rewrite may observe
// either word's new value first: whichever it is, the acquire load of
// that word synchronizes with its release store and makes the preceding
// odd stamp visible to the re-validation load, which then reports the
// overrun instead of returning a torn {new key, old value} record. (With
// a relaxed key store that torn record is reachable on weakly-ordered
// hardware; DFS/PCT explore SC interleavings only and cannot see it.)
// The reader's entry check on published() gives the acquire edge that
// makes "stamp below 2*seq+2" impossible for any seq < published().
//
// SkipValidation is a PLANTED BUG for the negative-control tests: it
// compiles out the re-validation load, so a reader that overlaps a writer
// lap can return a torn record (this slot's old key with the lapping
// record's value). DFS and PCT must both catch it (tests/test_feed.cpp);
// production code always uses the default.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/cache.hpp"

namespace moir::feed {

// One committed update. `value` is in wire form (0 = key absent/erased,
// v+1 = value v — the map/txn layers' convention); `version` is the
// record's per-shard sequence number, except that resync records carry
// kResyncBit (see ChangeFeed::poll).
struct Record {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
};

// Versions with this bit set were synthesized by a resync (the value came
// from the map, not a ring slot); the low bits still order them against
// ring sequence numbers.
inline constexpr std::uint64_t kResyncBit = std::uint64_t{1} << 63;

enum class ReadStatus : std::uint8_t {
  kOk,        // record copied out
  kNotReady,  // seq not published yet
  kOverrun,   // slot recycled: the writer is >= capacity ahead of seq
};

template <std::uint32_t kCap = 64, bool SkipValidation = false>
class BroadcastRing {
  static_assert(kCap >= 2 && kCap <= (1u << 20),
                "broadcast ring capacity out of range");
  static_assert((kCap & (kCap - 1)) == 0,
                "broadcast ring capacity must be a power of two");

 public:
  BroadcastRing() = default;
  BroadcastRing(const BroadcastRing&) = delete;
  BroadcastRing& operator=(const BroadcastRing&) = delete;

  static constexpr std::uint32_t capacity() { return kCap; }

  // Writer side — single writer per ring (the service enforces this with
  // the per-queue executor claim; see svc/service.hpp). Returns the
  // record's sequence number.
  std::uint64_t publish(std::uint64_t key, std::uint64_t value) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[seq & kMask];
    MOIR_YIELD_WRITE(&s.stamp);
    s.stamp.store(2 * seq + 1, std::memory_order_relaxed);
    MOIR_YIELD_STEP(::moir::testing::StepInfo::write(&s.key)
                        .also_write(&s.value));
    s.key.store(key, std::memory_order_release);
    s.value.store(value, std::memory_order_release);
    MOIR_YIELD_WRITE(&s.stamp);
    s.stamp.store(2 * seq + 2, std::memory_order_release);
    MOIR_YIELD_WRITE(&head_);
    head_.store(seq + 1, std::memory_order_release);
    stats::count(stats::Id::kFeedPublish, 1, this);
    return seq;
  }

  // Sequence numbers [0, published()) have been fully written; the next
  // publish gets sequence published().
  std::uint64_t published() const {
    MOIR_YIELD_READ(&head_);
    return head_.load(std::memory_order_acquire);
  }

  // How far behind `seq` is; a lag > capacity() means read(seq) will
  // overrun. Advisory under concurrency.
  std::uint64_t lag(std::uint64_t seq) const {
    const std::uint64_t p = published();
    return p > seq ? p - seq : 0;
  }

  // Reader side: wait-free, write-free. Copies record `seq` into `out`
  // when the slot still holds it.
  ReadStatus read(std::uint64_t seq, Record& out) const {
    if (seq >= published()) return ReadStatus::kNotReady;
    const Slot& s = slots_[seq & kMask];
    const std::uint64_t want = 2 * seq + 2;
    MOIR_YIELD_READ(&s.stamp);
    const std::uint64_t stamp = s.stamp.load(std::memory_order_acquire);
    // published() > seq already ordered this slot's even stamp for `seq`
    // before our load, and stamps only grow, so stamp < want is impossible;
    // any mismatch is the writer having moved on.
    if (stamp != want) {
      stats::count(stats::Id::kFeedOverrun, 1, this);
      return ReadStatus::kOverrun;
    }
    MOIR_YIELD_STEP(::moir::testing::StepInfo::read(&s.value)
                        .also_read(&s.key));
    // Both payload loads are acquire so the relaxed re-validation below
    // cannot be reordered before either of them.
    const std::uint64_t value = s.value.load(std::memory_order_acquire);
    const std::uint64_t key = s.key.load(std::memory_order_acquire);
    if constexpr (!SkipValidation) {
      // Runs after both payload loads (their acquire ordering pins this
      // load), so stamp == want here proves key/value belong to `seq` and
      // were not torn by a lap.
      MOIR_YIELD_READ(&s.stamp);
      if (s.stamp.load(std::memory_order_relaxed) != want) {
        stats::count(stats::Id::kFeedOverrun, 1, this);
        return ReadStatus::kOverrun;
      }
    }
    out.key = key;
    out.value = value;
    out.version = seq;
    return ReadStatus::kOk;
  }

 private:
  static constexpr std::uint64_t kMask = kCap - 1;

  // stamp and payload share the slot's cache line on purpose: a reader
  // touches one line per record, and only the single writer dirties it.
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> value{0};
  };

  Slot slots_[kCap];
  // Writer-owned; padded so subscriber polls of published() do not share a
  // line with slot rewrites.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
};

}  // namespace moir::feed
