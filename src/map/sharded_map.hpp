// Sharded non-blocking hash map over small LL/VL/SC + pluggable reclamation.
//
// The first end-to-end "serve a key-value workload" structure in this
// repository: a hash table of S shards, each shard an open bucket-chain
// table whose chains are Harris-style sorted lists with a mark bit, linked
// through node *indices* into a per-shard lock-free BlockAllocator. The map
// is templated over
//
//   * the LL/SC substrate (Figure 4 CAS-backed, Figure 5 RLL/RSC-backed,
//     Figure 7 bounded-tag, the lock baseline — anything satisfying
//     SmallLlscSubstrate), which carries every link mutation, and
//   * the Reclaimer policy (epoch, hazard pointer, or the broken negative
//     control), which makes reads of *plain* node payload safe.
//
// Division of labor, and why both layers are needed:
//
//   * The substrate's tags make link CASes ABA-safe: a stale SC against a
//     recycled node's next field fails because every successful SC advanced
//     the tag (Figure 4/5) or the announcement check fails (Figure 7). No
//     reclaimer needed for that.
//   * Nothing in the substrate protects a traverser that READS node n's key
//     after n was unlinked, freed, and re-allocated — the read returns the
//     new occupant's bytes and the traverser reports membership of a key
//     that was never in the bucket. That is the reclaimer's job: between
//     enter() and exit(), a protected (hazard) or epoch-pinned node cannot
//     be handed back to the allocator, so `key` can be an ordinary non-
//     atomic field. (tests/test_reclaim.cpp demonstrates the corruption
//     with the negative-control reclaimer, and ASan catches it as
//     use-after-poison via the allocator's poisoning.)
//
// Chain encoding: a next word is (index << 1) | mark, where index ==
// capacity_per_shard is the null sentinel and the mark bit is Harris's
// logical-deletion flag. erase() marks the victim's next word (the
// linearization point), then unlinks it from its predecessor; traversals
// help-unlink marked nodes they encounter, and whichever SC performs the
// physical unlink retires the node — exactly once, because only one SC on
// the predecessor's next can succeed per tag.
//
// upsert() on an existing key updates the node's value field in place
// (std::atomic store); racing with a concurrent erase of the same key, the
// update linearizes immediately before the erase — the stored value is then
// never observed, which is the standard in-place-update semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/llsc_traits.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/block_allocator.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir {

// SplitMix64 finalizer: full-avalanche 64-bit hash for shard/bucket routing.
inline std::uint64_t hash_mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

template <SmallLlscSubstrate S, reclaim::Reclaimer R>
class ShardedHashMap {
 public:
  struct Config {
    unsigned shards = 8;
    std::uint32_t buckets_per_shard = 64;
    std::uint32_t capacity_per_shard = 1024;
  };

  struct ThreadCtx {
    typename S::ThreadCtx sub;
    typename R::ThreadCtx rec;
  };

  // The reclaimer is owned by the map (its free function must route into
  // the per-shard allocators) and is constructed as R(max_threads, free_fn)
  // — the uniform signature all policies share. `max_threads` bounds
  // *concurrent* ThreadCtx holders, as everywhere in this library.
  ShardedHashMap(S& substrate, unsigned max_threads, Config cfg = {})
      : substrate_(substrate),
        cfg_(cfg),
        null_idx_(cfg.capacity_per_shard),
        reclaimer_(max_threads, [this](std::uint32_t global) {
          shards_[global / cfg_.capacity_per_shard]->alloc.free(
              global % cfg_.capacity_per_shard);
        }) {
    MOIR_ASSERT(cfg.shards >= 1 && cfg.buckets_per_shard >= 1);
    MOIR_ASSERT_MSG(
        (std::uint64_t{cfg.capacity_per_shard} << 1 | 1) <=
            substrate.max_value(),
        "next-word encoding (index<<1 | mark) must fit the substrate's "
        "value field");
    shards_.reserve(cfg.shards);
    for (unsigned s = 0; s < cfg.shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(substrate, cfg, null_idx_, s));
    }
  }

  // All ThreadCtxs must be destroyed before the map (their fold path
  // touches the reclaimer, whose free function touches the shards).
  ThreadCtx make_ctx() {
    return ThreadCtx{substrate_.make_ctx(), reclaimer_.make_ctx()};
  }

  // Inserts key -> value. Returns false if the key is present or the
  // shard's node pool is exhausted (alloc_exhaustion counts the latter).
  bool insert(ThreadCtx& ctx, std::uint64_t key, std::uint64_t value) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    const SlotResult r = insert_impl(ctx, sh, key, value, /*upsert=*/false);
    reclaimer_.exit(ctx.rec);
    return r.ok && r.inserted;
  }

  // Updates in place if present (returns false), inserts otherwise
  // (returns true). YCSB "update" maps here.
  bool upsert(ThreadCtx& ctx, std::uint64_t key, std::uint64_t value) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    const SlotResult r = insert_impl(ctx, sh, key, value, /*upsert=*/true);
    reclaimer_.exit(ctx.rec);
    return r.ok && r.inserted;
  }

  // ----- txn-layer hooks ---------------------------------------------------
  // A handle is a node's GLOBAL index (shard.index * capacity_per_shard +
  // node index within the shard): a dense id into any parallel per-node
  // array, e.g. the txn layer's Mcas cell array (src/txn/txn_kv.hpp). A
  // handle is stable exactly as long as its node stays linked; the txn
  // layer keeps nodes forever (its "erase" writes an absent marker into
  // the value cell instead of unlinking), so under that insert-only
  // discipline handles are stable for the map's lifetime. Mixing direct
  // erase() with handle-based access is not supported.
  std::uint32_t handle_space() const {
    return cfg_.shards * cfg_.capacity_per_shard;
  }

  // Find-or-insert returning a stable handle under the reclaimer bracket:
  // inserts a node carrying `node_value` if the key is absent, else
  // adopts the existing node. nullopt = shard node pool exhausted.
  std::optional<std::uint32_t> find_or_insert_handle(ThreadCtx& ctx,
                                                     std::uint64_t key,
                                                     std::uint64_t node_value) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    const SlotResult r =
        insert_impl(ctx, sh, key, node_value, /*upsert=*/false);
    reclaimer_.exit(ctx.rec);
    if (!r.ok) return std::nullopt;
    return global_idx(sh, r.idx);
  }

  // Handle lookup without insertion; nullopt = key has no node.
  std::optional<std::uint32_t> locate_handle(ThreadCtx& ctx,
                                             std::uint64_t key) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    std::optional<std::uint32_t> out;
    const Window w = search(ctx, sh, bucket_of(key), key);
    if (w.curr != null_idx_ && sh.alloc.node(w.curr).key == key) {
      out = global_idx(sh, w.curr);
    }
    reclaimer_.exit(ctx.rec);
    return out;
  }

  std::optional<std::uint64_t> find(ThreadCtx& ctx, std::uint64_t key) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    std::optional<std::uint64_t> out;
    const Window w = search(ctx, sh, bucket_of(key), key);
    if (w.curr != null_idx_ && sh.alloc.node(w.curr).key == key) {
      MOIR_YIELD_READ(&sh.alloc.node(w.curr).value);
      out = sh.alloc.node(w.curr).value.load(std::memory_order_acquire);
    }
    reclaimer_.exit(ctx.rec);
    return out;
  }

  bool erase(ThreadCtx& ctx, std::uint64_t key) {
    Shard& sh = shard_of(key);
    reclaimer_.enter(ctx.rec);
    bool erased = false;
    for (;;) {
      const Window w = search(ctx, sh, bucket_of(key), key);
      if (w.curr == null_idx_ || sh.alloc.node(w.curr).key != key) break;
      Node& victim = sh.alloc.node(w.curr);
      // Logical deletion: set the mark bit on the victim's next word. This
      // SC is the erase's linearization point.
      typename S::Keep keep;
      const std::uint64_t nw = substrate_.ll(ctx.sub, victim.next, keep);
      if (is_marked(nw)) {
        // Concurrent erase won the mark; retry — the re-search helps
        // unlink and will report the key gone.
        substrate_.cl(ctx.sub, keep);
        continue;
      }
      if (!substrate_.sc(ctx.sub, victim.next, keep, nw | 1)) continue;
      sh.size.fetch_sub(1, std::memory_order_relaxed);
      erased = true;
      // Physical unlink; on failure some traversal will help and retire.
      typename S::Keep kp;
      const std::uint64_t pw = substrate_.ll(ctx.sub, *w.prev, kp);
      if (pw == word_of(w.curr, false)) {
        if (substrate_.sc(ctx.sub, *w.prev, kp, strip_mark(nw))) {
          retire(ctx, sh, w.curr);
        }
      } else {
        substrate_.cl(ctx.sub, kp);
      }
      break;
    }
    reclaimer_.exit(ctx.rec);
    return erased;
  }

  bool contains(ThreadCtx& ctx, std::uint64_t key) {
    return find(ctx, key).has_value();
  }

  // Signed on purpose: transiently negative per-shard counts can occur
  // between an erase's size decrement and a racing reader's sum.
  std::int64_t size_approx() const {
    std::int64_t n = 0;
    for (const auto& sh : shards_) {
      n += sh->size.load(std::memory_order_relaxed);
    }
    return n;
  }

  // Walks every chain, helping any pending unlink, then asks the reclaimer
  // to free everything freeable. After quiescence (no concurrent ops),
  // every erased node is back in its allocator — the leak-test hook.
  void purge(ThreadCtx& ctx) {
    reclaimer_.enter(ctx.rec);
    for (auto& sh : shards_) {
      for (std::uint32_t b = 0; b < cfg_.buckets_per_shard; ++b) {
        search(ctx, *sh, b, ~std::uint64_t{0});
      }
    }
    reclaimer_.exit(ctx.rec);
    reclaimer_.flush(ctx.rec);
  }

  void flush(ThreadCtx& ctx) { reclaimer_.flush(ctx.rec); }

  R& reclaimer() { return reclaimer_; }
  const Config& config() const { return cfg_; }

  // Quiescent-only: total free blocks across shards (see BlockAllocator).
  std::uint64_t free_blocks_quiescent() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) n += sh->alloc.free_count_quiescent();
    return n;
  }

 private:
  struct Node {
    std::uint64_t key = 0;  // plain: immutable from publish to free —
                            // readable without atomics only because the
                            // reclaimer delays free past all readers
    std::atomic<std::uint64_t> value{0};
    typename S::Var next;   // (index << 1) | mark, through the substrate
  };

  struct Shard {
    Shard(S& substrate, const Config& cfg, std::uint32_t null_idx,
          unsigned shard_index)
        : heads(std::make_unique<typename S::Var[]>(cfg.buckets_per_shard)),
          alloc(cfg.capacity_per_shard, [&](Node& n) {
            substrate.init_var(n.next, std::uint64_t{null_idx} << 1);
          }),
          index(shard_index) {
      for (std::uint32_t b = 0; b < cfg.buckets_per_shard; ++b) {
        substrate.init_var(heads[b], std::uint64_t{null_idx} << 1);
      }
    }

    std::unique_ptr<typename S::Var[]> heads;
    reclaim::BlockAllocator<Node> alloc;
    const unsigned index;
    std::atomic<std::int64_t> size{0};
  };

  // The window search() returns: *prev holds (curr << 1) unmarked, curr is
  // the first node with node.key >= the searched key (or null), curr_next
  // is curr's unmarked next word. On return, hazard slot 0 protects curr
  // and slot 1 protects the node containing *prev (when it is not a bucket
  // head) — protection the caller's subsequent LL/SC relies on.
  struct Window {
    typename S::Var* prev;
    std::uint32_t curr;
    std::uint64_t curr_next;
  };

  static bool is_marked(std::uint64_t w) { return (w & 1) != 0; }
  static std::uint64_t strip_mark(std::uint64_t w) { return w & ~1ull; }
  static std::uint32_t idx_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 1);
  }
  static std::uint64_t word_of(std::uint32_t idx, bool mark) {
    return (std::uint64_t{idx} << 1) | (mark ? 1 : 0);
  }

  Shard& shard_of(std::uint64_t key) {
    return *shards_[(hash_mix64(key) >> 32) % cfg_.shards];
  }
  std::uint32_t bucket_of(std::uint64_t key) const {
    return static_cast<std::uint32_t>(hash_mix64(key) & 0xffffffffull) %
           cfg_.buckets_per_shard;
  }

  std::uint32_t global_idx(const Shard& sh, std::uint32_t idx) const {
    return sh.index * cfg_.capacity_per_shard + idx;
  }

  void retire(ThreadCtx& ctx, Shard& sh, std::uint32_t idx) {
    reclaimer_.retire(ctx.rec, global_idx(sh, idx));
  }

  // Harris search with the hazard-pointer handshake folded in. The
  // protect-then-revalidate pair is what makes the subsequent plain key
  // read safe under hazard pointers; under epochs protect() is free and
  // enter() already pinned us, so the revalidation merely restarts a bit
  // more often than strictly needed.
  Window search(ThreadCtx& ctx, Shard& sh, std::uint32_t bucket,
                std::uint64_t key) {
  restart:
    for (;;) {
      typename S::Var* prev = &sh.heads[bucket];
      reclaimer_.clear(ctx.rec, 1);
      MOIR_YIELD_READ(prev);
      std::uint32_t curr = idx_of(substrate_.read(*prev));
      for (;;) {
        if (curr == null_idx_) return Window{prev, null_idx_, 0};
        reclaimer_.protect(ctx.rec, 0, global_idx(sh, curr));
        MOIR_YIELD_READ(prev);
        if (substrate_.read(*prev) != word_of(curr, false)) goto restart;
        Node& cn = sh.alloc.node(curr);
        MOIR_YIELD_READ(&cn);
        const std::uint64_t nw = substrate_.read(cn.next);
        if (is_marked(nw)) {
          // curr is logically deleted: help unlink it, retire on success.
          typename S::Keep keep;
          const std::uint64_t pw = substrate_.ll(ctx.sub, *prev, keep);
          if (pw != word_of(curr, false)) {
            substrate_.cl(ctx.sub, keep);
            goto restart;
          }
          if (!substrate_.sc(ctx.sub, *prev, keep, strip_mark(nw))) {
            goto restart;
          }
          retire(ctx, sh, curr);
          curr = idx_of(nw);
          continue;
        }
        if (cn.key >= key) return Window{prev, curr, nw};
        // Advance. Slot 1 takes over curr (it becomes prev, whose next
        // word we will keep reading); slot 0 moves to the next node on
        // the following iteration.
        reclaimer_.protect(ctx.rec, 1, global_idx(sh, curr));
        prev = &cn.next;
        curr = idx_of(nw);
      }
    }
  }

  // Outcome of the shared find-or-insert walk: ok = false only on pool
  // exhaustion; idx is the surviving node's shard-local index when ok.
  struct SlotResult {
    std::uint32_t idx = 0;
    bool inserted = false;
    bool ok = false;
  };

  SlotResult insert_impl(ThreadCtx& ctx, Shard& sh, std::uint64_t key,
                         std::uint64_t value, bool upsert) {
    const std::uint32_t bucket = bucket_of(key);
    for (;;) {
      const Window w = search(ctx, sh, bucket, key);
      if (w.curr != null_idx_ && sh.alloc.node(w.curr).key == key) {
        if (upsert) {
          MOIR_YIELD_WRITE(&sh.alloc.node(w.curr).value);
          sh.alloc.node(w.curr).value.store(value,
                                            std::memory_order_release);
        }
        return SlotResult{w.curr, false, true};
      }
      const auto n = sh.alloc.alloc();
      if (!n) return SlotResult{};  // pool exhausted (allocator counts it)
      Node& nn = sh.alloc.node(*n);
      nn.key = key;
      nn.value.store(value, std::memory_order_relaxed);
      reset_next(ctx, nn, word_of(w.curr == null_idx_ ? null_idx_ : w.curr,
                                  false));
      typename S::Keep keep;
      const std::uint64_t pw = substrate_.ll(ctx.sub, *w.prev, keep);
      if (pw != word_of(w.curr, false)) {
        substrate_.cl(ctx.sub, keep);
        sh.alloc.free(*n);  // never published: direct free, no grace period
        continue;
      }
      if (substrate_.sc(ctx.sub, *w.prev, keep, word_of(*n, false))) {
        sh.size.fetch_add(1, std::memory_order_relaxed);
        return SlotResult{*n, true, true};
      }
      sh.alloc.free(*n);
    }
  }

  // Point a freshly-allocated node's next THROUGH the LL/SC protocol so
  // its tag keeps advancing across recycles (same reasoning as the M&S
  // queue's reset_next): a plain re-init would rewind the tag and
  // reintroduce exactly the ABA the substrate exists to prevent.
  void reset_next(ThreadCtx& ctx, Node& n, std::uint64_t next_word) {
    for (;;) {
      typename S::Keep keep;
      substrate_.ll(ctx.sub, n.next, keep);
      if (substrate_.sc(ctx.sub, n.next, keep, next_word)) return;
    }
  }

  S& substrate_;
  const Config cfg_;
  const std::uint32_t null_idx_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared last: its destructor frees orphans through the shards above,
  // so it must run first.
  R reclaimer_;
};

}  // namespace moir
