// Exporters for the stats layer: the existing ASCII table format for
// humans, JSON for sweeps and dashboards. Both emit the full counter
// catalogue (zeros included) in catalogue order, so consumers see a stable
// schema whether stats are compiled in or not.
#pragma once

#include <string>

#include "stats/stats.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace moir::stats {

// Two-column table of every counter in the catalogue.
Table counters_table(const Snapshot& snap,
                     const std::string& title = "stats counters");

// Writes {"sc_success": N, ...} as one JSON object value into `w` (the
// caller supplies the surrounding key/document).
void counters_json(JsonWriter& w, const Snapshot& snap);

// Writes {"sc_retries": {...histogram...}, ...} with the merged view of
// every histogram in the catalogue.
void histograms_json(JsonWriter& w);

// Standalone convenience document:
//   {"compiled_in": b, "counters": {...}, "histograms": {...}}
std::string export_json();

}  // namespace moir::stats
