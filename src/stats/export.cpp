#include "stats/export.hpp"

namespace moir::stats {

Table counters_table(const Snapshot& snap, const std::string& title) {
  Table t(title);
  t.columns({"counter", "count"});
  for (unsigned i = 0; i < kNumCounters; ++i) {
    t.row({name(static_cast<Id>(i)), Table::num(snap.counts[i])});
  }
  return t;
}

void counters_json(JsonWriter& w, const Snapshot& snap) {
  w.begin_object();
  for (unsigned i = 0; i < kNumCounters; ++i) {
    w.kv(name(static_cast<Id>(i)), snap.counts[i]);
  }
  w.end_object();
}

void histograms_json(JsonWriter& w) {
  w.begin_object();
  for (unsigned i = 0; i < kNumHists; ++i) {
    const auto id = static_cast<HistId>(i);
    w.key(name(id)).raw(merged_histogram(id).to_json());
  }
  w.end_object();
}

std::string export_json() {
  JsonWriter w;
  w.begin_object().kv("compiled_in", kCompiledIn);
  w.key("counters");
  counters_json(w, snapshot());
  w.key("histograms");
  histograms_json(w);
  w.end_object();
  return w.str();
}

}  // namespace moir::stats
