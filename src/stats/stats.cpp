#include "stats/stats.hpp"

#include <algorithm>
#include <vector>

#include "util/assertion.hpp"
#include "util/env.hpp"

#if MOIR_STATS
#include <mutex>

#include "core/process_registry.hpp"
#endif

namespace moir::stats {

const char* name(Id id) {
  switch (id) {
    case Id::kScSuccess: return "sc_success";
    case Id::kScFail: return "sc_fail";
    case Id::kCasSuccess: return "cas_success";
    case Id::kCasFail: return "cas_fail";
    case Id::kRscRetry: return "rsc_retry";
    case Id::kRscSpurious: return "rsc_spurious";
    case Id::kRscConflict: return "rsc_conflict";
    case Id::kTagAlloc: return "tag_alloc";
    case Id::kTagRecycle: return "tag_recycle";
    case Id::kTagExhaustion: return "tag_exhaustion";
    case Id::kHelpRounds: return "help_rounds";
    case Id::kWordCopies: return "word_copies";
    case Id::kStmCommit: return "stm_commit";
    case Id::kStmAbort: return "stm_abort";
    case Id::kStmHelp: return "stm_help";
    case Id::kEpochAdvance: return "epoch_advance";
    case Id::kHpScan: return "hp_scan";
    case Id::kNodeRetire: return "node_retire";
    case Id::kNodeFree: return "node_free";
    case Id::kAllocExhaustion: return "alloc_exhaustion";
    case Id::kSvcEnqueue: return "svc_enqueue";
    case Id::kSvcBatch: return "svc_batch";
    case Id::kSvcShed: return "svc_shed";
    case Id::kSvcDrain: return "svc_drain";
    case Id::kTxnStart: return "txn_start";
    case Id::kTxnCommit: return "txn_commit";
    case Id::kTxnAbort: return "txn_abort";
    case Id::kTxnHelp: return "txn_help";
    case Id::kTxnRevalidate: return "txn_revalidate";
    case Id::kBwAnnounce: return "bw_announce";
    case Id::kBwHelp: return "bw_help";
    case Id::kBwAllocReuse: return "bw_alloc_reuse";
    case Id::kDurFlush: return "dur_flush";
    case Id::kDurFence: return "dur_fence";
    case Id::kDurRecover: return "dur_recover";
    case Id::kRegJoin: return "reg_join";
    case Id::kRegLeave: return "reg_leave";
    case Id::kFeedPublish: return "feed_publish";
    case Id::kFeedDeliver: return "feed_deliver";
    case Id::kFeedOverrun: return "feed_overrun";
    case Id::kFeedResync: return "feed_resync";
    case Id::kNumIds: break;
  }
  return "unknown";
}

const char* name(HistId id) {
  switch (id) {
    case HistId::kScRetries: return "sc_retries";
    case HistId::kStmAbortsPerCommit: return "stm_aborts_per_commit";
    case HistId::kRetireListLen: return "retire_list_len";
    case HistId::kSvcBatchSize: return "batch_size";
    case HistId::kSvcLatency: return "svc_latency";
    case HistId::kTxnKeys: return "txn_keys";
    case HistId::kNumHistIds: break;
  }
  return "unknown";
}

#if MOIR_STATS

namespace {

// Shard pool. Static storage: zero-initialized before any code runs, so a
// count() from another TU's dynamic initializer at worst sees g_mode==0
// and no-ops.
Shard g_shards[kMaxShards];

// Writes arriving after the owning thread's lease died (thread_local
// destructor ordering) land here. Multiple dying threads may interleave
// load+store increments and lose a few counts — bounded, documented, and
// never undefined behaviour.
Shard g_orphan;

// Guards the retired accumulators and lease release/zeroing, and
// stabilizes snapshots against concurrent releases.
std::mutex g_merge_mutex;

std::uint64_t g_retired_counts[kNumCounters];

struct HistParts {
  std::uint64_t buckets[Histogram::kBuckets + 1] = {};
  std::uint64_t total = 0;
  std::uint64_t n = 0;
  std::uint64_t max = 0;
  std::uint64_t min = ~std::uint64_t{0};
};
HistParts g_retired_hists[kNumHists];

constexpr unsigned kRetiredTraceCap = 1024;
std::vector<TraceEvent> g_retired_trace;

ProcessRegistry& shard_registry() {
  static ProcessRegistry registry{kMaxShards};
  return registry;
}

void fold_hist_shard(HistShard& h, HistParts& into, bool zero) {
  std::uint64_t buckets[Histogram::kBuckets + 1];
  for (unsigned b = 0; b <= Histogram::kBuckets; ++b) {
    buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
    into.buckets[b] += buckets[b];
    if (zero) h.buckets[b].store(0, std::memory_order_relaxed);
  }
  const std::uint64_t n = h.n.load(std::memory_order_relaxed);
  into.total += h.total.load(std::memory_order_relaxed);
  into.n += n;
  if (n > 0) {
    into.max = std::max(into.max, h.max.load(std::memory_order_relaxed));
    into.min = std::min(into.min, h.min.load(std::memory_order_relaxed));
  }
  if (zero) {
    h.total.store(0, std::memory_order_relaxed);
    h.n.store(0, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
    h.min.store(0, std::memory_order_relaxed);
  }
}

void append_ring_events(const Shard& s, std::vector<TraceEvent>& out) {
  const std::uint32_t len = s.ring_len.load(std::memory_order_relaxed);
  const std::uint32_t have = len < kTraceCap ? len : kTraceCap;
  for (std::uint32_t i = 0; i < have; ++i) {
    out.push_back(s.ring[(len - have + i) % kTraceCap]);
  }
}

void zero_shard(Shard& s) {
  for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
  for (auto& h : s.hists) {
    HistParts sink;
    fold_hist_shard(h, sink, /*zero=*/true);
  }
  s.ring_len.store(0, std::memory_order_relaxed);
}

// Folds a dying thread's shard into the retired accumulators and returns
// the shard to the pool. Lives here (not in the header) so the fast path
// never sees a thread_local with a destructor.
struct ShardLease {
  Shard* shard = nullptr;
  unsigned id = 0;
  bool active = false;

  ~ShardLease() {
    if (!active) return;
    std::lock_guard<std::mutex> lock(g_merge_mutex);
    for (unsigned i = 0; i < kNumCounters; ++i) {
      g_retired_counts[i] +=
          shard->counts[i].load(std::memory_order_relaxed);
    }
    for (unsigned h = 0; h < kNumHists; ++h) {
      // fold only; zero_shard below clears
      HistParts& into = g_retired_hists[h];
      fold_hist_shard(shard->hists[h], into, /*zero=*/false);
    }
    if (g_retired_trace.size() < kRetiredTraceCap) {
      append_ring_events(*shard, g_retired_trace);
      if (g_retired_trace.size() > kRetiredTraceCap) {
        g_retired_trace.resize(kRetiredTraceCap);
      }
    }
    zero_shard(*shard);
    shard_registry().release_process(id);
    active = false;
    // Late writes from destructors running after this one go to the
    // orphan shard instead of a recycled (now someone else's) slot.
    tls_shard = &g_orphan;
  }
};

thread_local ShardLease tls_lease;

std::atomic<std::uint64_t> g_trace_seq{0};

void dump_trace_stderr() { dump_trace(stderr); }

}  // namespace

std::atomic<std::uint32_t> g_mode{0};
thread_local Shard* tls_shard = nullptr;

namespace {
// Dynamic initializer: picks up the runtime env toggles once at startup.
// Runs after g_mode's constant initialization, so hooks called earlier
// (other TUs' initializers) safely no-op.
[[maybe_unused]] const bool g_env_initialized = [] {
  std::uint32_t mode = 0;
  if (env_flag("MOIR_STATS", true)) mode |= kCountingBit;
  if (env_flag("MOIR_TRACE", false)) {
    mode |= kTracingBit;
    assertion_hook().store(&dump_trace_stderr, std::memory_order_release);
  }
  g_mode.store(mode, std::memory_order_relaxed);
  return true;
}();
}  // namespace

Shard& acquire_shard() {
  ShardLease& lease = tls_lease;
  MOIR_ASSERT_MSG(!lease.active, "shard lease already active without tls_shard");
  lease.id = shard_registry().register_process();
  lease.shard = &g_shards[lease.id];
  lease.active = true;
  tls_shard = lease.shard;
  return *lease.shard;
}

void trace_event(Shard& s, Id id, const void* obj, std::uint64_t arg) {
  const std::uint64_t seq =
      g_trace_seq.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t len = s.ring_len.load(std::memory_order_relaxed);
  TraceEvent& e = s.ring[len % kTraceCap];
  e.seq = seq;
  e.arg = arg;
  e.obj = obj;
  e.id = id;
  s.ring_len.store(len + 1, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(g_merge_mutex);
  for (unsigned i = 0; i < kNumCounters; ++i) {
    snap.counts[i] = g_retired_counts[i] +
                     g_orphan.counts[i].load(std::memory_order_relaxed);
  }
  const unsigned high_water = shard_registry().registered();
  for (unsigned p = 0; p < high_water && p < kMaxShards; ++p) {
    for (unsigned i = 0; i < kNumCounters; ++i) {
      snap.counts[i] += g_shards[p].counts[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

Histogram merged_histogram(HistId id) {
  Histogram out;
  std::lock_guard<std::mutex> lock(g_merge_mutex);
  const unsigned h = static_cast<unsigned>(id);
  HistParts parts = g_retired_hists[h];
  fold_hist_shard(g_orphan.hists[h], parts, /*zero=*/false);
  const unsigned high_water = shard_registry().registered();
  for (unsigned p = 0; p < high_water && p < kMaxShards; ++p) {
    fold_hist_shard(g_shards[p].hists[h], parts, /*zero=*/false);
  }
  out.merge_parts(parts.buckets, parts.total, parts.n, parts.max, parts.min);
  return out;
}

bool counting_enabled() {
  return (g_mode.load(std::memory_order_relaxed) & kCountingBit) != 0;
}

bool trace_enabled() {
  return (g_mode.load(std::memory_order_relaxed) & kTracingBit) != 0;
}

void set_counting(bool on) {
  if (on) {
    g_mode.fetch_or(kCountingBit, std::memory_order_relaxed);
  } else {
    g_mode.fetch_and(~kCountingBit, std::memory_order_relaxed);
  }
}

void set_tracing(bool on) {
  if (on) {
    g_mode.fetch_or(kTracingBit, std::memory_order_relaxed);
    assertion_hook().store(&dump_trace_stderr, std::memory_order_release);
  } else {
    g_mode.fetch_and(~kTracingBit, std::memory_order_relaxed);
  }
}

void reset() {
  std::lock_guard<std::mutex> lock(g_merge_mutex);
  for (auto& c : g_retired_counts) c = 0;
  for (auto& h : g_retired_hists) h = HistParts{};
  g_retired_trace.clear();
  zero_shard(g_orphan);
  const unsigned high_water = shard_registry().registered();
  for (unsigned p = 0; p < high_water && p < kMaxShards; ++p) {
    zero_shard(g_shards[p]);
  }
}

void dump_trace(std::FILE* out) {
  // Collect without the merge mutex: this runs from the assertion hook,
  // where the failing thread could already hold it (a release racing an
  // assert). Racy reads of a dying process's rings are acceptable.
  std::vector<TraceEvent> events;
  events.reserve(kMaxShards * 8);
  const unsigned high_water = shard_registry().registered();
  for (unsigned p = 0; p < high_water && p < kMaxShards; ++p) {
    append_ring_events(g_shards[p], events);
  }
  append_ring_events(g_orphan, events);
  events.insert(events.end(), g_retired_trace.begin(), g_retired_trace.end());
  if (events.empty()) return;
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  constexpr std::size_t kDumpMax = 128;
  const std::size_t start =
      events.size() > kDumpMax ? events.size() - kDumpMax : 0;
  std::fprintf(out, "moir stats trace (last %zu of %zu events):\n",
               events.size() - start, events.size());
  for (std::size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(out, "  [%8llu] %-14s obj=%p arg=%llu\n",
                 static_cast<unsigned long long>(e.seq), name(e.id), e.obj,
                 static_cast<unsigned long long>(e.arg));
  }
}

#else  // !MOIR_STATS

Snapshot snapshot() { return Snapshot{}; }
Histogram merged_histogram(HistId) { return Histogram{}; }
bool counting_enabled() { return false; }
bool trace_enabled() { return false; }
void set_counting(bool) {}
void set_tracing(bool) {}
void reset() {}
void dump_trace(std::FILE*) {}

#endif  // MOIR_STATS

}  // namespace moir::stats
