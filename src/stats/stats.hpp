// Zero-overhead-when-off statistics layer: sharded event counters, retry
// histograms, and a per-thread event-trace ring buffer.
//
// The paper's claims are about progress under contention — how often SC
// fails, how much helping Figure 6/7 performs, how spurious RSC failures
// propagate (Theorems 1-5). This layer counts exactly those events so
// benchmarks and tests can report them. Design constraints, in order:
//
//  1. When compiled out (MOIR_STATS=0) every hook is a constexpr empty
//     inline — zero code, zero data, verified by a codegen test
//     (tests/test_stats.cpp uses the hooks in constant expressions, which
//     only compiles if they have no runtime effects).
//  2. When compiled in but disabled at runtime (env MOIR_STATS=0 or
//     set_counting(false)), the hot path is one relaxed atomic load and a
//     predictable branch.
//  3. When enabled, each thread owns a cache-line-padded shard leased from
//     a ProcessRegistry, so counting is a thread-local relaxed load+store
//     — no contended fetch_add on the measured path. Counters are
//     single-writer; readers merge shards on demand, so totals are exact
//     once writer threads are quiescent (joined or at a barrier) and a
//     close approximation while they run.
//
// Shards are recycled: a thread's lease is returned on thread exit after
// folding its counts into a retired accumulator, so the shard pool bounds
// *concurrent* threads (kMaxShards), not the lifetime thread count — the
// schedule explorer spawns fresh threads per trial and would exhaust any
// non-recycling pool. Writes that land after a thread's lease is already
// released (other thread_local destructors) go to a shared orphan shard:
// never lost to UB, merely allowed to race with other dying threads.
//
// Tracing (env MOIR_TRACE=1 or set_tracing(true)) timestamps each event
// with a global sequence number into a per-shard ring buffer; dump_trace()
// prints the last events across all shards in sequence order. An assertion
// hook wires this to MOIR_ASSERT, so a failed invariant dumps the events
// leading up to it — composing with the `ms1:` schedule-replay strings
// from sim/explore.hpp for deterministic re-runs.
#pragma once

#include <cstdint>
#include <cstdio>

#include "util/histogram.hpp"

#ifndef MOIR_STATS
#define MOIR_STATS 1
#endif

#if MOIR_STATS
#include <atomic>

#include "util/cache.hpp"
#endif

namespace moir::stats {

// ----- Counter catalogue ---------------------------------------------------
// One entry per event the core emulations emit. docs/OBSERVABILITY.md maps
// each to the paper construction and lemma it instruments; the JSON name is
// name(id).
enum class Id : std::uint8_t {
  kScSuccess,     // SC linearized (Figures 4, 5, 6, 7)
  kScFail,        // SC returned false: lost the race or keep-word said fail
  kCasSuccess,    // Figure 3 Cas succeeded
  kCasFail,       // Figure 3 Cas failed (value mismatch)
  kRscRetry,      // RSC failed spuriously and the loop retried (Figs 3, 5)
  kRscSpurious,   // RSC failure injected/spurious (reservation intact)
  kRscConflict,   // RSC failure due to a real conflicting write
  kTagAlloc,      // Figure 7 took a fresh tag from the queue head
  kTagRecycle,    // Figure 7 re-enqueued a tag proven safe to reuse
  kTagExhaustion, // Figure 7 slot stack found no free slot (bound hit)
  kHelpRounds,    // Figure 6 copy() pass that helped another process's SC
  kWordCopies,    // Figure 6 per-segment copy CAS attempts
  kStmCommit,     // STM transaction committed
  kStmAbort,      // STM transaction aborted and retried
  kStmHelp,       // STM helped another transaction's ownership record
  kEpochAdvance,  // EBR global epoch advanced (all threads caught up)
  kHpScan,        // hazard-pointer scan pass over all announcement slots
  kNodeRetire,    // a node was retired to a reclaimer (unlinked, not freed)
  kNodeFree,      // a retired node's grace period elapsed and it was freed
  kAllocExhaustion,  // block allocator pool empty at alloc()
  kSvcEnqueue,    // service accepted a request into the dispatch pipeline
  kSvcBatch,      // executor batch (>= 1 request) popped and executed
  kSvcShed,       // request refused at admission (EBUSY) instead of blocking
  kSvcDrain,      // request completed during graceful drain (after stop())
  kTxnStart,      // multi-key transaction begun (src/txn/)
  kTxnCommit,     // multi-key transaction applied (incl. validated multi-get)
  kTxnAbort,      // multi-key CAS committed with a comparison mismatch
  kTxnHelp,       // txn read path helped a locked cell's owner to completion
  kTxnRevalidate, // multi-get double-collect retried (tag/handle changed)
  kBwAnnounce,    // Blelloch–Wei LL published a descriptor announcement
  kBwHelp,        // BW LL/read retry round absorbed a concurrent SC's install
  kBwAllocReuse,  // BW scan harvested an unannounced retired descriptor
  kDurFlush,      // simulated pmem write-back scheduled (dur/pmem.hpp flush)
  kDurFence,      // persist fence committed pending write-backs durably
  kDurRecover,    // figdur recovery rebuilt volatile state from durable
  kRegJoin,       // DynamicRegistry membership join (elastic pool, figdur)
  kRegLeave,      // DynamicRegistry membership leave
  kFeedPublish,   // committed update appended to a shard's broadcast ring
  kFeedDeliver,   // record handed to a subscriber (incl. resync records)
  kFeedOverrun,   // subscriber cursor lapped by the writer (slot recycled)
  kFeedResync,    // subscriber recovered from an overrun via a map read
  kNumIds
};

inline constexpr unsigned kNumCounters = static_cast<unsigned>(Id::kNumIds);

// Histograms, for distributions a scalar counter flattens.
enum class HistId : std::uint8_t {
  kScRetries,           // RSC retries per SC/Cas operation (Figs 3, 5)
  kStmAbortsPerCommit,  // aborts a transaction suffered before committing
  kRetireListLen,       // reclaimer retire-list length at each retire();
                        // the merged max is the high-water mark
  kSvcBatchSize,        // requests executed per non-empty executor batch
  kSvcLatency,          // ns from admission to response publication
  kTxnKeys,             // keys per multi-key transaction (k)
  kNumHistIds
};

inline constexpr unsigned kNumHists = static_cast<unsigned>(HistId::kNumHistIds);

// Stable snake_case names used in JSON exports and table rows.
const char* name(Id id);
const char* name(HistId id);

// A merged view of all counters at a point in time. Exact when no thread
// is concurrently recording (tests snapshot around quiesced sections).
struct Snapshot {
  std::uint64_t counts[kNumCounters] = {};

  std::uint64_t operator[](Id id) const {
    return counts[static_cast<unsigned>(id)];
  }

  friend Snapshot operator-(Snapshot a, const Snapshot& b) {
    for (unsigned i = 0; i < kNumCounters; ++i) a.counts[i] -= b.counts[i];
    return a;
  }
};

inline constexpr bool kCompiledIn = MOIR_STATS != 0;

// ----- Cold API (available in both modes; inert when compiled out) --------
Snapshot snapshot();
Histogram merged_histogram(HistId id);
bool counting_enabled();
bool trace_enabled();
void set_counting(bool on);
void set_tracing(bool on);  // also installs the assertion trace-dump hook
// Zeroes all counters, histograms, and trace rings. Only exact when no
// thread is concurrently recording.
void reset();
// Prints the most recent trace events (all shards, merged by sequence
// number) to `out`. No-op when tracing never ran.
void dump_trace(std::FILE* out);

#if MOIR_STATS

// ----- Hot path ------------------------------------------------------------

inline constexpr std::uint32_t kCountingBit = 1;
inline constexpr std::uint32_t kTracingBit = 2;
inline constexpr unsigned kMaxShards = 128;
inline constexpr unsigned kTraceCap = 256;  // events per shard ring

struct TraceEvent {
  std::uint64_t seq = 0;
  std::uint64_t arg = 0;
  const void* obj = nullptr;
  Id id = Id::kNumIds;
};

// Single-writer histogram parts mirroring util::Histogram's buckets; the
// owning thread updates with relaxed load+store, readers fold into a real
// Histogram via merge_parts() once the writer is quiescent.
struct HistShard {
  std::atomic<std::uint64_t> buckets[Histogram::kBuckets + 1];
  std::atomic<std::uint64_t> total;
  std::atomic<std::uint64_t> n;
  std::atomic<std::uint64_t> max;
  std::atomic<std::uint64_t> min;

  void record(std::uint64_t v) {
    auto bump = [](std::atomic<std::uint64_t>& c, std::uint64_t d) {
      c.store(c.load(std::memory_order_relaxed) + d,
              std::memory_order_relaxed);
    };
    bump(buckets[Histogram::bucket_of(v)], 1);
    bump(total, v);
    const std::uint64_t old_n = n.load(std::memory_order_relaxed);
    if (old_n == 0 || v < min.load(std::memory_order_relaxed)) {
      min.store(v, std::memory_order_relaxed);
    }
    if (v > max.load(std::memory_order_relaxed)) {
      max.store(v, std::memory_order_relaxed);
    }
    n.store(old_n + 1, std::memory_order_relaxed);
  }
};

struct alignas(kCacheLine) Shard {
  std::atomic<std::uint64_t> counts[kNumCounters];
  HistShard hists[kNumHists];
  TraceEvent ring[kTraceCap];
  std::atomic<std::uint32_t> ring_len;  // events ever traced; slot = len % cap
};

// Mode word read on every hook: bitwise or of kCountingBit/kTracingBit.
// Zero (the static-init value, and the MOIR_STATS=0 env setting) short-
// circuits every hook to a load+branch.
extern std::atomic<std::uint32_t> g_mode;

// Raw shard pointer, deliberately trivially destructible so the fast path
// carries no thread_local destructor guard. The owning lease object lives
// in stats.cpp and repoints this at the orphan shard on thread exit.
extern thread_local Shard* tls_shard;

Shard& acquire_shard();  // cold: leases a shard for the calling thread
void trace_event(Shard& s, Id id, const void* obj, std::uint64_t arg);

inline Shard& shard() {
  Shard* s = tls_shard;
  return s != nullptr ? *s : acquire_shard();
}

// Count `delta` occurrences of `id`. `obj` is trace-only context (the
// shared variable involved), ignored unless tracing is on.
inline void count(Id id, std::uint64_t delta = 1, const void* obj = nullptr) {
  const std::uint32_t mode = g_mode.load(std::memory_order_relaxed);
  if (mode == 0) return;
  Shard& s = shard();
  if ((mode & kCountingBit) != 0) {
    auto& c = s.counts[static_cast<unsigned>(id)];
    c.store(c.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }
  if ((mode & kTracingBit) != 0) trace_event(s, id, obj, delta);
}

inline void record(HistId h, std::uint64_t value) {
  if ((g_mode.load(std::memory_order_relaxed) & kCountingBit) == 0) return;
  shard().hists[static_cast<unsigned>(h)].record(value);
}

#else  // !MOIR_STATS

// Compiled out: hooks are constexpr no-ops, so they are valid in constant
// expressions — the codegen test's static_asserts prove no runtime code
// can hide behind them.
constexpr void count(Id, std::uint64_t = 1, const void* = nullptr) noexcept {}
constexpr void record(HistId, std::uint64_t) noexcept {}

#endif  // MOIR_STATS

}  // namespace moir::stats
