// Writable durable LL/SC from pointer-width CAS over simulated persistent
// memory (after Jayanti, Jayanti & Joshi, arXiv:2302.00135) — the `figdur`
// family, with dynamic member joining.
//
// Volatile skeleton: Blelloch–Wei weak LL/SC (core/bw_llsc.hpp). Each Var
// is a single word holding the index of an immutable value descriptor; SC
// swings it with one CAS; LL announces the descriptor before dereferencing
// (hazard-pointer handshake); retired descriptors recycle only after a scan
// of all announcements. See bw_llsc.hpp for why pointer identity makes VL a
// load and SC a CAS with no tag bits.
//
// Durability is added with three persist barriers (dur/pmem.hpp):
//
//   (P1) SC persists the NEW descriptor's value before the install CAS.
//        Once the index is visible — volatile or durable — its payload is
//        already on the durable medium, so a crash image can never name a
//        descriptor whose value is garbage.
//   (P2) SC persists the variable word after a successful install, before
//        retiring the displaced descriptor. This yields the recycling
//        invariant recovery depends on: the descriptor named by a var's
//        DURABLE word is never recycled. A descriptor d is retired only by
//        the SC that displaced it, after that SC made the var's durable
//        word name d's successor — and the durable word only ever moves
//        forward (persist commits the CURRENT volatile value), so it never
//        returns to d. The SkipPersist variant elides exactly this barrier;
//        the negative control shows DFS and PCT catching the resulting
//        unrecoverable (and value-corrupting, once d recycles) states.
//   (P3) LL and read() persist the variable word before returning if its
//        durable copy lags the index they observed ("link-and-persist": the
//        flush piggybacks on the read). An operation may only return a
//        value once the install it derives from is durable — otherwise a
//        crash after the return but before the installer's own P2 would
//        recover a state missing an effect some completed operation already
//        exposed. The persist is conditional: if durable already matches,
//        it is skipped with NO yield point, which keeps repeated reads of a
//        quiet variable from inflating the DFS tree.
//
// All three barriers persist a word whose volatile value may have advanced
// past the one the barrier "wanted" to persist. That is always sound here:
// var words and descriptor values only move forward along install order,
// and persisting a later state durably covers every earlier one (the
// skipped states are exactly those a crash immediately after a later SC's
// P2 would also skip).
//
// Dynamic joining: where figbw sizes its announcement array for a fixed N
// at construction, figdur leases member ids from a DynamicRegistry (join/
// leave under load, ids dense and reused) and grows the announcement store
// on demand in segments of kSegMembers members, installed by CAS on a
// segment-pointer table (losing allocators delete their copy). The scan
// walks only [0, high_water) and the retire threshold scales with the
// current high-water mark, so a mostly-idle wide ceiling costs nothing.
//
// Recovery: restore() loads a crash image (durable words only) into an
// identically constructed fresh instance; recover() reads each var's word,
// marks the named descriptors live, and rebuilds the allocator free list
// from scratch (rebuild_free_quiescent), so descriptors lost mid-flight in
// the crash — allocated but never installed, or retired but still in a
// (volatile, now vanished) limbo list — all return to the pool: crashes
// cannot leak descriptors. Announcements, limbo, and membership are
// volatile by design and start empty.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/dynamic_registry.hpp"
#include "core/slot_stack.hpp"
#include "dur/pmem.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/bw_allocator.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/backoff.hpp"
#include "util/bits.hpp"

namespace moir::dur {

template <unsigned ValBits = 64, bool SkipPersist = false>
class DurLlscImpl {
  static_assert(ValBits >= 1 && ValBits <= 64);

 public:
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;
  static constexpr std::uint64_t kNone = 0xffffffffull;
  // Members per on-demand announcement segment.
  static constexpr unsigned kSegMembers = 8;

  // `value` is durable (P1 persists it before install); `seq` is the
  // volatile seqlock generation for context-free readers — recovery resets
  // it (a fresh instance's descriptors start even), which is sound because
  // recovery is quiescent and every post-recovery reader starts fresh.
  struct Descriptor {
    DurWord value;
    std::atomic<std::uint64_t> seq{0};
  };

  using Pool = reclaim::BwBlockAllocator<Descriptor>;

  struct Config {
    // Descriptors reserved for installed values: one per init_var'd Var.
    std::uint32_t reserve = 1u << 10;
    // Allocator chunk size (see reclaim/bw_allocator.hpp).
    std::uint32_t chunk = 16;
    // Retired descriptors a context accumulates before scanning. 0 = auto:
    // high_water*k + chunk, recomputed as members join, so the scan cost
    // tracks the population actually seen rather than the ceiling.
    std::uint32_t scan_threshold = 0;
    // Concurrent-membership ceiling (generous; sizes the segment table and
    // the worst-case descriptor pool, not any per-operation cost).
    std::uint32_t max_members = 64;
  };

  class Var {
   public:
    Var() = default;
    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

   private:
    friend class DurLlscImpl;
    // Durable word holding the current descriptor index. Mutable so the
    // const read path can run its P3 persist — persisting changes no
    // observable (volatile) state.
    mutable DurWord buf_{kNone};
  };

  struct Keep {
    std::uint64_t desc = kNone;
    unsigned slot = 0;
  };

  class ThreadCtx {
   public:
    ThreadCtx(ThreadCtx&& other) noexcept
        : domain_(other.domain_),
          mid_(other.mid_),
          stack_(std::move(other.stack_)),
          alloc_(std::move(other.alloc_)),
          limbo_(std::move(other.limbo_)),
          scratch_(std::move(other.scratch_)) {
      other.domain_ = nullptr;
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;
    ThreadCtx& operator=(ThreadCtx&&) = delete;

    // Leaving members park retired-but-announced descriptors on the orphan
    // stack (a later scan adopts them) and return their membership lease —
    // a joiner may reuse the id, and with it the announcement slots, which
    // is why the dtor clears them first.
    ~ThreadCtx() {
      if (domain_ == nullptr) return;
      MOIR_ASSERT_MSG(stack_.available() == domain_->k_,
                      "ThreadCtx destroyed with an open LL-SC sequence");
      for (unsigned s = 0; s < domain_->k_; ++s) {
        domain_->announce(mid_, s).store(static_cast<std::uint32_t>(kNone),
                                         std::memory_order_seq_cst);
      }
      for (const std::uint32_t d : limbo_) domain_->push_orphan(d);
      limbo_.clear();
      domain_->reg_.leave(mid_);
    }

    unsigned member_id() const { return mid_; }

   private:
    friend class DurLlscImpl;
    ThreadCtx(DurLlscImpl* domain, unsigned mid, unsigned k,
              typename Pool::ThreadCtx alloc)
        : domain_(domain), mid_(mid), stack_(k), alloc_(std::move(alloc)) {}

    DurLlscImpl* domain_;
    unsigned mid_;
    SlotStack stack_;
    typename Pool::ThreadCtx alloc_;
    std::vector<std::uint32_t> limbo_;    // retired, not yet proven safe
    std::vector<std::uint32_t> scratch_;  // scan's announcement snapshot
  };

  // `k` = max concurrent LL-SC sequences per member. Membership itself is
  // dynamic, bounded only by cfg.max_members.
  explicit DurLlscImpl(unsigned k = 2, Config cfg = {})
      : k_(k),
        chunk_(cfg.chunk),
        fixed_threshold_(cfg.scan_threshold),
        reg_(cfg.max_members),
        n_segments_((cfg.max_members + kSegMembers - 1) / kSegMembers),
        segments_(
            std::make_unique<std::atomic<std::atomic<std::uint32_t>*>[]>(
                n_segments_)),
        pool_(cfg.reserve +
                  cfg.max_members *
                      (max_threshold(cfg, k) + 3 * cfg.chunk + k + 1),
              [](Descriptor&) {}, cfg.chunk, /*poison=*/false),
        orphan_links_(std::make_unique<std::atomic<std::uint32_t>[]>(
            pool_.capacity())) {
    MOIR_ASSERT(k >= 1 && cfg.max_members >= 1);
    MOIR_ASSERT_MSG(pool_.capacity() < kNone,
                    "descriptor pool too large for 32-bit indices");
    for (unsigned i = 0; i < n_segments_; ++i) {
      segments_[i].store(nullptr, std::memory_order_relaxed);
    }
    // Attach every descriptor's durable value word, in index order: the
    // crash/recovery protocol needs the crashed and recovered instances to
    // attach identical word sequences (dur/pmem.hpp snapshot contract).
    for (std::uint32_t i = 0; i < pool_.capacity(); ++i) {
      pmem_.attach(pool_.node(i).value);
    }
  }

  ~DurLlscImpl() {
    for (unsigned i = 0; i < n_segments_; ++i) {
      delete[] segments_[i].load(std::memory_order_relaxed);
    }
  }

  DurLlscImpl(const DurLlscImpl&) = delete;
  DurLlscImpl& operator=(const DurLlscImpl&) = delete;

  // Joins the membership (growing the announcement store if this id lands
  // in a segment nobody has touched yet) and leases allocator cache state.
  // Unlike figbw there is no fixed N to outgrow: join under load is the
  // point of the dynamic registry.
  ThreadCtx make_ctx() {
    const unsigned mid = reg_.join();
    MOIR_ASSERT_MSG(mid < reg_.max_members(),
                    "membership ceiling exceeded; raise Config::max_members");
    ensure_segment(mid / kSegMembers);
    return ThreadCtx(this, mid, k_, pool_.make_ctx());
  }

  // Quiescent-only, matching every other substrate's init_var contract.
  // First init of a Var attaches its durable word to the pmem domain —
  // init_var call order therefore defines the tail of the snapshot layout.
  void init_var(Var& var, value_type initial) {
    MOIR_ASSERT(initial <= max_value());
    std::uint64_t d = var.buf_.load(std::memory_order_relaxed);
    const bool fresh_var = (d == kNone);
    if (fresh_var) {
      const auto fresh = pool_.alloc();
      MOIR_ASSERT_MSG(fresh.has_value(),
                      "descriptor pool exhausted in init_var; raise "
                      "Config::reserve above the number of Vars");
      d = *fresh;
    }
    Descriptor& desc = pool_.node(static_cast<std::uint32_t>(d));
    const std::uint64_t s = desc.seq.load(std::memory_order_relaxed);
    desc.seq.store(s + 1, std::memory_order_relaxed);
    desc.value.store(initial, std::memory_order_release);
    desc.seq.store(s + 2, std::memory_order_release);
    pmem_.persist_quiescent(desc.value);
    var.buf_.store(d, std::memory_order_seq_cst);
    pmem_.persist_quiescent(var.buf_);
    if (fresh_var) {
      pmem_.attach(var.buf_);
      vars_.push_back(&var);
    }
  }

  // LL: announce/re-read handshake (see bw_llsc.hpp), then the P3
  // link-and-persist barrier before returning the dereferenced value.
  value_type ll(ThreadCtx& ctx, const Var& var, Keep& keep) {
    keep.slot = ctx.stack_.pop();
    MOIR_YIELD_READ(&var);
    std::uint64_t d = var.buf_.load(std::memory_order_seq_cst);
    std::atomic<std::uint32_t>& ann = announce(ctx.mid_, keep.slot);
    for (;;) {
      MOIR_YIELD_WRITE(&ann);
      ann.store(static_cast<std::uint32_t>(d), std::memory_order_seq_cst);
      stats::count(stats::Id::kBwAnnounce, 1, &var);
      MOIR_YIELD_READ(&var);
      const std::uint64_t cur = var.buf_.load(std::memory_order_seq_cst);
      if (cur == d) break;
      // A retry implies a concurrent SC installed `cur`: lock-free.
      stats::count(stats::Id::kBwHelp, 1, &var);
      d = cur;
    }
    // P3: the install we are about to expose must be durable first. Skipped
    // (no yield point) when a prior P2/P3 already covered it.
    if (var.buf_.durable() != d) pmem_.persist(var.buf_);
    keep.desc = d;
    MOIR_YIELD_READ(&desc_at(d));
    return desc_at(d).value.load(std::memory_order_acquire);
  }

  // VL: one load; the announced descriptor cannot have been recycled, so
  // pointer equality is exactly "no successful SC since my LL".
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    MOIR_YIELD_READ(&var);
    return var.buf_.load(std::memory_order_seq_cst) == keep.desc;
  }

  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep, value_type newval) {
    MOIR_ASSERT(newval <= max_value());
    const std::uint32_t nd = alloc_desc(ctx);
    Descriptor& desc = pool_.node(nd);
    // Seqlock rewrite: odd seq -> value -> even seq (bw_llsc.hpp explains
    // the context-free-reader handshake).
    MOIR_YIELD_WRITE(&desc);
    const std::uint64_t s = desc.seq.load(std::memory_order_relaxed);
    desc.seq.store(s + 1, std::memory_order_relaxed);
    desc.value.store(newval, std::memory_order_release);
    desc.seq.store(s + 2, std::memory_order_release);
    // P1: payload durable before its index can become visible anywhere.
    pmem_.persist(desc.value);

    MOIR_YIELD_STEP(::moir::testing::StepInfo::update(&var).also_write(
        &announce(ctx.mid_, keep.slot)));
    std::uint64_t expected = keep.desc;
    const bool ok = var.buf_.compare_exchange_strong(
        expected, nd, std::memory_order_seq_cst);
    if (ok && !SkipPersist) {
      // P2: durable word must leave keep.desc behind before keep.desc can
      // be retired (and eventually recycled). Conditional like P3: a
      // concurrent reader's persist may have covered us already.
      if (var.buf_.durable() != nd) pmem_.persist(var.buf_);
    }
    // Close the sequence only AFTER the CAS: clearing the announcement
    // first would let a scan recycle keep.desc and a concurrent SC
    // re-install it, making the CAS succeed spuriously (ABA).
    announce(ctx.mid_, keep.slot)
        .store(static_cast<std::uint32_t>(kNone), std::memory_order_release);
    ctx.stack_.push(keep.slot);
    if (ok) {
      retire(ctx, static_cast<std::uint32_t>(keep.desc));
    } else {
      pool_.free(ctx.alloc_, nd);  // never published; nobody saw it
    }
    stats::count(ok ? stats::Id::kScSuccess : stats::Id::kScFail, 1, &var);
    return ok;
  }

  // CL: abandon the sequence, releasing its announcement slot.
  void cl(ThreadCtx& ctx, const Keep& keep) {
    std::atomic<std::uint32_t>& ann = announce(ctx.mid_, keep.slot);
    MOIR_YIELD_WRITE(&ann);
    ann.store(static_cast<std::uint32_t>(kNone), std::memory_order_release);
    ctx.stack_.push(keep.slot);
  }

  // Context-free read: seqlock validation exactly as in bw_llsc.hpp (see
  // its read() for the step-by-step argument), plus the P3 barrier — a
  // value may only be returned once the install it came from is durable.
  value_type read(const Var& var) const {
    for (;;) {
      MOIR_YIELD_READ(&var);
      const std::uint64_t d = var.buf_.load(std::memory_order_seq_cst);
      const Descriptor& desc = desc_at(d);
      MOIR_YIELD_READ(&desc);
      const std::uint64_t s1 = desc.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) {
        stats::count(stats::Id::kBwHelp, 1, &var);
        continue;  // mid-rewrite: d was recycled; re-read the pointer
      }
      const std::uint64_t v = desc.value.load(std::memory_order_acquire);
      MOIR_YIELD_STEP(
          ::moir::testing::StepInfo::read(&desc).also_read(&var));
      if (desc.seq.load(std::memory_order_relaxed) == s1 &&
          var.buf_.load(std::memory_order_seq_cst) == d) {
        if (var.buf_.durable() != d) pmem_.persist(var.buf_);
        return v;
      }
      stats::count(stats::Id::kBwHelp, 1, &var);
    }
  }

  value_type max_value() const { return low_mask(ValBits); }
  const char* name() const {
    return SkipPersist ? "dur-llsc-no-persist(broken)" : "dur-llsc(figdur)";
  }

  unsigned k() const { return k_; }
  DynamicRegistry& registry() { return reg_; }
  PmemDomain& pmem() { return pmem_; }

  // --- crash / recovery ----------------------------------------------------
  // The durable image a crash right now would leave (dur/pmem.hpp layout:
  // all descriptor values in index order, then var words in init order).
  std::vector<std::uint64_t> snapshot() const { return pmem_.snapshot(); }

  // Rebuilds volatile state from the durable words. Quiescent-only: run on
  // a freshly constructed instance (same Config, same init_var sequence)
  // after restore(), before any ThreadCtx exists. Every descriptor not
  // named by some var's durable word returns to the pool — in-flight
  // allocations and volatile limbo lists from before the crash cannot leak.
  void recover() {
    std::vector<char> in_use(pool_.capacity(), 0);
    for (Var* v : vars_) {
      const std::uint64_t d = v->buf_.load(std::memory_order_relaxed);
      MOIR_ASSERT_MSG(d != kNone && d < pool_.capacity(),
                      "durable var word names no valid descriptor — was the "
                      "crash image taken before the var's first init?");
      in_use[static_cast<std::size_t>(d)] = 1;
    }
    pool_.rebuild_free_quiescent(
        [&](std::uint32_t i) { return in_use[i] != 0; });
    stats::count(stats::Id::kDurRecover, 1, this);
  }

  void restore_and_recover(const std::vector<std::uint64_t>& image) {
    pmem_.restore(image);
    recover();
  }

  // --- quiescent diagnostics (conservation tests) --------------------------
  std::uint32_t pool_free_quiescent() const {
    return pool_.free_count_quiescent();
  }
  std::uint32_t orphans_quiescent() const {
    std::uint32_t n = 0;
    std::uint32_t enc = static_cast<std::uint32_t>(
        orphans_.load(std::memory_order_acquire) & 0xffffffffull);
    while (enc != 0 && n <= pool_.capacity()) {
      ++n;
      enc = orphan_links_[enc - 1].load(std::memory_order_relaxed);
    }
    return n;
  }
  std::uint32_t pool_capacity() const { return pool_.capacity(); }

 private:
  // Largest value current_threshold() can reach — high_water is capped by
  // max_members — used to size the pool for the worst case up front.
  static std::uint32_t max_threshold(const Config& cfg, unsigned k) {
    return cfg.scan_threshold != 0 ? cfg.scan_threshold
                                   : cfg.max_members * k + cfg.chunk;
  }

  Descriptor& desc_at(std::uint64_t d) const {
    return const_cast<Pool&>(pool_).node(static_cast<std::uint32_t>(d));
  }

  // Announcement slot for (member, slot). The member's segment is
  // guaranteed installed: join() ensured it before the ctx existed.
  std::atomic<std::uint32_t>& announce(unsigned mid, unsigned slot) {
    MOIR_ASSERT(mid < reg_.max_members() && slot < k_);
    std::atomic<std::uint32_t>* seg =
        segments_[mid / kSegMembers].load(std::memory_order_seq_cst);
    MOIR_ASSERT(seg != nullptr);
    return seg[(mid % kSegMembers) * k_ + slot];
  }

  // Installs segment `s` if absent. Losing allocators delete their copy;
  // seq_cst on the install and on scan's pointer loads makes "scanner saw
  // null" imply "no member of this segment had announced before the scan".
  void ensure_segment(unsigned s) {
    MOIR_ASSERT(s < n_segments_);
    if (segments_[s].load(std::memory_order_seq_cst) != nullptr) return;
    auto* fresh = new std::atomic<std::uint32_t>[kSegMembers * k_];
    for (unsigned i = 0; i < kSegMembers * k_; ++i) {
      fresh[i].store(static_cast<std::uint32_t>(kNone),
                     std::memory_order_relaxed);
    }
    std::atomic<std::uint32_t>* expected = nullptr;
    if (!segments_[s].compare_exchange_strong(expected, fresh,
                                              std::memory_order_seq_cst)) {
      delete[] fresh;
    }
  }

  // Retire threshold: fixed if configured, else scaled to the population
  // actually seen (high_water * k announcement slots can pin at most that
  // many retirees, so every scan still frees >= chunk blocks).
  std::uint32_t current_threshold() const {
    if (fixed_threshold_ != 0) return fixed_threshold_;
    return reg_.high_water() * k_ + chunk_;
  }

  // Rounds of {scan; alloc} a dry allocator retries before declaring the
  // pool undersized. Generous: each round only needs the concurrent
  // scanner it is waiting out (see below) to advance a few steps.
  static constexpr unsigned kDryRetries = 256;

  std::uint32_t alloc_desc(ThreadCtx& ctx) {
    if (const auto d = pool_.alloc(ctx.alloc_)) return *d;
    // Pool dry. Unlike figbw's fixed membership, churn makes this state
    // usually transient rather than a sizing error: every leave parks the
    // leaver's limbo on the orphan stack, the pile between scans is
    // unbounded (it scales with churn rate, which no Config field caps),
    // and a concurrent scanner that adopted the pile holds every
    // reclaimable descriptor in its private limbo until its free loop has
    // spilled them back chunk by chunk. So: scan (harvesting our limbo
    // plus any orphans that have landed since) and retry with backoff
    // while the blocks surface. Backoff only delays the retry — lock
    // freedom is untouched — and the bound keeps genuine exhaustion (more
    // live Vars and in-flight sequences than the pool was provisioned
    // for) a loud, immediate failure instead of a livelock.
    SpinWait backoff;
    for (unsigned round = 0; round < kDryRetries; ++round) {
      scan(ctx);
      if (const auto d = pool_.alloc(ctx.alloc_)) return *d;
      backoff.pause();
    }
    MOIR_ASSERT_MSG(false,
                    "descriptor pool exhausted: more live Vars or in-flight "
                    "sequences than Config::reserve provisioned for");
    return static_cast<std::uint32_t>(kNone);
  }

  void retire(ThreadCtx& ctx, std::uint32_t d) {
    ctx.limbo_.push_back(d);
    if (ctx.limbo_.size() >= current_threshold()) scan(ctx);
  }

  // Frees every limbo descriptor no announcement slot currently names.
  // Walks only the segments of members ever minted ([0, high_water)); a
  // null segment pointer means no member in it ever completed a join, so
  // none can have announced (see ensure_segment).
  void scan(ThreadCtx& ctx) {
    MOIR_YIELD_POINT();  // opaque: touches announcements + orphan stack
    adopt_orphans(ctx);
    ctx.scratch_.clear();
    const unsigned hw = reg_.high_water();
    for (unsigned mid = 0; mid < hw; ++mid) {
      std::atomic<std::uint32_t>* seg =
          segments_[mid / kSegMembers].load(std::memory_order_seq_cst);
      if (seg == nullptr) continue;
      for (unsigned slot = 0; slot < k_; ++slot) {
        const std::uint32_t a = seg[(mid % kSegMembers) * k_ + slot].load(
            std::memory_order_seq_cst);
        if (a != static_cast<std::uint32_t>(kNone)) {
          ctx.scratch_.push_back(a);
        }
      }
    }
    std::sort(ctx.scratch_.begin(), ctx.scratch_.end());
    std::uint64_t freed = 0;
    std::size_t kept = 0;
    for (const std::uint32_t d : ctx.limbo_) {
      if (std::binary_search(ctx.scratch_.begin(), ctx.scratch_.end(), d)) {
        ctx.limbo_[kept++] = d;  // still announced: stays in limbo
      } else {
        pool_.free(ctx.alloc_, d);
        ++freed;
      }
    }
    ctx.limbo_.resize(kept);
    if (freed != 0) stats::count(stats::Id::kBwAllocReuse, freed, this);
  }

  // Orphan stack: limbo of departed members, linked through a side array,
  // {version:32, idx+1:32} head against ABA (same as bw_llsc.hpp).
  void push_orphan(std::uint32_t d) {
    std::uint64_t head = orphans_.load(std::memory_order_relaxed);
    for (;;) {
      orphan_links_[d].store(static_cast<std::uint32_t>(head & 0xffffffffull),
                             std::memory_order_relaxed);
      const std::uint64_t version = (head >> 32) + 1;
      if (orphans_.compare_exchange_weak(head, (version << 32) | (d + 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void adopt_orphans(ThreadCtx& ctx) {
    std::uint64_t head = orphans_.load(std::memory_order_acquire);
    for (;;) {
      if (static_cast<std::uint32_t>(head & 0xffffffffull) == 0) return;
      const std::uint64_t version = (head >> 32) + 1;
      if (orphans_.compare_exchange_weak(head, version << 32,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        break;
      }
    }
    std::uint32_t enc = static_cast<std::uint32_t>(head & 0xffffffffull);
    while (enc != 0) {
      ctx.limbo_.push_back(enc - 1);
      enc = orphan_links_[enc - 1].load(std::memory_order_relaxed);
    }
  }

  const unsigned k_;
  const std::uint32_t chunk_;
  const std::uint32_t fixed_threshold_;
  DynamicRegistry reg_;
  const unsigned n_segments_;
  // Announcement segments, installed on demand (kSegMembers * k slots each).
  std::unique_ptr<std::atomic<std::atomic<std::uint32_t>*>[]> segments_;
  Pool pool_;
  PmemDomain pmem_;
  std::vector<Var*> vars_;  // init order = durable snapshot tail layout
  std::atomic<std::uint64_t> orphans_{0};
  std::unique_ptr<std::atomic<std::uint32_t>[]> orphan_links_;
};

template <unsigned ValBits = 64>
using DurLlsc = DurLlscImpl<ValBits, false>;

// Planted bug (negative control): SC skips the P2 barrier — the install is
// never persisted by its own SC, so a crash can durably miss a completed
// operation, and once the displaced descriptor recycles the durable var
// word names a descriptor now carrying some other var's value.
template <unsigned ValBits = 64>
using DurLlscNoPersist = DurLlscImpl<ValBits, true>;

}  // namespace moir::dur
