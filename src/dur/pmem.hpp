// Simulated persistent memory for crash-recovery testing.
//
// Real persistent memory gives programs a volatile view (caches, store
// buffers) in front of a durable medium; stores reach the medium only after
// an explicit write-back (CLWB/CLFLUSHOPT) ordered by a fence (SFENCE). A
// crash discards the volatile view and recovery sees whatever subset of
// stores had been written back. Durable algorithms (dur/dur_llsc.hpp, after
// arXiv 2302.00135) are correct only if their persist barriers are placed
// so that every reachable durable state is recoverable.
//
// This header simulates that model in ordinary memory so the schedule
// explorer (sim/) can verify barrier placement exhaustively:
//
//   * DurWord is a 64-bit word with a volatile value v_ and a durable
//     shadow durable_. Loads/stores/CAS touch only v_.
//   * flush(w) schedules a write-back: it appends w to the calling
//     thread's pending list. No yield point — a flush instruction alone
//     guarantees nothing about ordering, so giving it a schedule decision
//     would only inflate the DFS tree without adding reachable states.
//   * fence() commits the calling thread's pending write-backs: ONE opaque
//     yield point, then durable_ := current v_ for each pending word. The
//     single yield point means a crash lands before (no pending write-back
//     committed) or after (all committed). Real hardware can commit any
//     subset at a crash, so this is an under-approximation — but every
//     state it produces is a real reachable state, so a violation found
//     here is a real bug, and the missing-persist negative control below
//     shows the approximation still has teeth.
//   * persist(w) = flush + fence for one word: the common "persist this
//     word now" barrier, one yield point (MOIR_YIELD_PERSIST).
//
// Capture-at-commit, not capture-at-flush: fence() copies the word's
// volatile value AT COMMIT TIME, not the value it held when flush() was
// called. A cacheline write-back writes the line's content at write-back
// time; it can never resurrect an older value. Capturing at flush time
// would let a delayed fence overwrite a NEWER durable value with a stale
// snapshot — a rollback no hardware exhibits — and would make correctly
// annotated algorithms fail verification. Under this model durable_ only
// ever moves toward the current volatile value, matching the monotone
// convergence of real write-backs.
//
// Crash protocol (sim/crash.hpp drives it): the crash body snapshot()s the
// domain at a schedule point of the explorer's choosing; after the trial's
// volatile execution completes, the checker builds a fresh, identically
// constructed instance, restore()s the snapshot into it (v_ := durable_ :=
// snapshot value — recovery starts from durable state only), runs the
// algorithm's recovery routine, and probes the result. Identical
// construction order makes attach order deterministic, so snapshot indices
// map 1:1 between the crashed and recovered instances.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir::dur {

class PmemDomain;

// One simulated persistent word. Ordinary atomic operations act on the
// volatile value; only PmemDomain barriers move the durable shadow.
class DurWord {
 public:
  explicit DurWord(std::uint64_t initial = 0)
      : v_(initial), durable_(initial) {}

  DurWord(const DurWord&) = delete;
  DurWord& operator=(const DurWord&) = delete;

  std::uint64_t load(std::memory_order mo = std::memory_order_seq_cst) const {
    return v_.load(mo);
  }
  void store(std::uint64_t value,
             std::memory_order mo = std::memory_order_seq_cst) {
    v_.store(value, mo);
  }
  bool compare_exchange_strong(
      std::uint64_t& expected, std::uint64_t desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    return v_.compare_exchange_strong(expected, desired, mo);
  }

  // What a crash would leave behind. Test/recovery-side accessor.
  std::uint64_t durable() const {
    return durable_.load(std::memory_order_seq_cst);
  }

 private:
  friend class PmemDomain;
  std::atomic<std::uint64_t> v_;
  std::atomic<std::uint64_t> durable_;
};

// The set of DurWords belonging to one durable data structure, plus the
// per-thread pending-write-back state. Snapshot/restore operate on the
// whole domain at once.
class PmemDomain {
 public:
  // Per-thread pending-flush list. Cheap to construct; algorithms embed one
  // in their ThreadCtx. Destroying a ctx with pending flushes is fine —
  // unfenced flushes guarantee nothing, so dropping them loses nothing.
  class ThreadCtx {
   public:
    explicit ThreadCtx(PmemDomain& domain) : domain_(&domain) {}

   private:
    friend class PmemDomain;
    PmemDomain* domain_;
    std::vector<DurWord*> pending_;
  };

  // Registers a word with the domain. Quiescent-only (construction /
  // init_var time): attach order defines the snapshot index order, and the
  // recovery protocol relies on the crashed and recovered instances
  // attaching identical sequences.
  void attach(DurWord& word) {
    std::lock_guard<std::mutex> lock(mu_);
    words_.push_back(&word);
  }

  std::size_t attached() const {
    std::lock_guard<std::mutex> lock(mu_);
    return words_.size();
  }

  // Schedules a write-back of `word` on this thread; commits at the next
  // fence(). Deliberately NOT a yield point (see header comment).
  void flush(ThreadCtx& ctx, DurWord& word) {
    MOIR_ASSERT(ctx.domain_ == this);
    ctx.pending_.push_back(&word);
    stats::count(stats::Id::kDurFlush, 1, this);
  }

  // Commits this thread's pending write-backs. The single opaque yield
  // point BEFORE the commits is the crash window: a crash scheduled there
  // sees none of them durable; once the thread runs again all commit.
  void fence(ThreadCtx& ctx) {
    MOIR_ASSERT(ctx.domain_ == this);
    if (ctx.pending_.empty()) return;
    MOIR_YIELD_POINT();
    for (DurWord* w : ctx.pending_) {
      // Capture at commit time: write-backs write current line content.
      w->durable_.store(w->v_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
    }
    ctx.pending_.clear();
    stats::count(stats::Id::kDurFence, 1, this);
  }

  // flush + fence for a single word: the "persist w before proceeding"
  // barrier the durable LL/SC algorithm uses. One yield point. Const because
  // it mutates only the word's durable shadow, never the domain — so
  // context-free readers may persist through a const substrate.
  void persist(DurWord& word) const {
    MOIR_YIELD_PERSIST(&word);
    word.durable_.store(word.v_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
    stats::count(stats::Id::kDurFlush, 1, this);
    stats::count(stats::Id::kDurFence, 1, this);
  }

  // persist() for quiescent init paths: no yield point (there is no crash
  // window to model before the structure is published) and no counters (so
  // barrier counts in bench JSON measure the algorithm, not its setup).
  void persist_quiescent(DurWord& word) const {
    word.durable_.store(word.v_.load(std::memory_order_seq_cst),
                        std::memory_order_seq_cst);
  }

  // The durable image a crash at this instant would leave. Values are read
  // in attach order; concurrent volatile activity is irrelevant because
  // only durable_ shadows are read and each is a single atomic.
  std::vector<std::uint64_t> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::uint64_t> image;
    image.reserve(words_.size());
    for (const DurWord* w : words_) {
      image.push_back(w->durable_.load(std::memory_order_seq_cst));
    }
    return image;
  }

  // Loads a crash image into this (freshly constructed, quiescent) domain:
  // both volatile and durable values become the image — recovery starts
  // from durable state and nothing else. The domain must have attached
  // exactly the same word sequence as the one that was snapshotted.
  void restore(const std::vector<std::uint64_t>& image) {
    std::lock_guard<std::mutex> lock(mu_);
    MOIR_ASSERT_MSG(image.size() == words_.size(),
                    "crash image does not match this domain's attach order");
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i]->v_.store(image[i], std::memory_order_seq_cst);
      words_[i]->durable_.store(image[i], std::memory_order_seq_cst);
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<DurWord*> words_;
};

}  // namespace moir::dur
