// Concurrent fixed-size allocation and free in (amortized) constant time,
// after Blelloch & Wei, arXiv:2008.04296.
//
// The plain BlockAllocator pushes and pops single blocks on one global
// tagged-CAS free list, so every alloc/free is a contended CAS. This
// allocator moves blocks in *chunks*: each thread keeps a private cache of
// up to 2C free indices and only touches shared state when the cache runs
// dry (pop one whole chunk) or overflows (push one whole chunk). The global
// structure is a Treiber stack of chunks — the same {version:32, idx+1:32}
// single-word tagged head as BlockAllocator, immune to ABA — but a thread
// now performs one CAS per C operations instead of one per operation, which
// is the paper's Θ(1) amortized bound with contention reduced by 1/C.
//
// Block and chunk links live in side arrays (`next_`, `chunk_next_`), never
// in the node storage itself, so freed blocks can stay poisoned under ASan
// while linked (poison-on-free is how tests/test_bw_allocator.cpp proves a
// straggling reader is caught). Poisoning is constructor-selectable because
// the Blelloch–Wei LL/SC substrate deliberately lets readers touch retired
// descriptors (they are type-stable and revalidated); its pool passes
// poison=false.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "platform/yield_point.hpp"
#include "reclaim/block_allocator.hpp"  // for the MOIR_ASAN detection block
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir::reclaim {

template <typename Node>
class BwBlockAllocator {
 public:
  // `capacity` nodes are default-constructed, passed through `init`, then
  // partitioned into free chunks of `chunk` blocks. `poison` selects the
  // ASan poison-on-free behaviour (see header comment).
  template <typename Init>
  BwBlockAllocator(std::uint32_t capacity, Init&& init,
                   std::uint32_t chunk = 16, bool poison = true)
      : capacity_(capacity),
        chunk_(chunk),
        poison_(poison),
        nodes_(std::make_unique<Node[]>(capacity)),
        next_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)),
        chunk_next_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)) {
    MOIR_ASSERT_MSG(capacity >= 1, "allocator needs at least one block");
    MOIR_ASSERT_MSG(chunk >= 1, "chunk size must be at least one block");
    for (std::uint32_t i = 0; i < capacity_; ++i) init(nodes_[i]);
    for (std::uint32_t i = 0; i < capacity_; ++i) poison_block(i);
    // Carve [0, capacity) into chunks of `chunk` blocks (last one may be
    // short) and stack them; the head is the last chunk carved.
    std::uint32_t chead = 0;  // first_idx+1 encoding; 0 = empty stack
    for (std::uint32_t base = 0; base < capacity_; base += chunk_) {
      const std::uint32_t end =
          base + chunk_ < capacity_ ? base + chunk_ : capacity_;
      for (std::uint32_t i = base; i < end; ++i) {
        next_[i].store(i + 1 < end ? i + 2 : 0, std::memory_order_relaxed);
      }
      chunk_next_[base].store(chead, std::memory_order_relaxed);
      chead = base + 1;
    }
    head_.store(chead, std::memory_order_release);
  }

  explicit BwBlockAllocator(std::uint32_t capacity)
      : BwBlockAllocator(capacity, [](Node&) {}) {}

  ~BwBlockAllocator() {
    for (std::uint32_t i = 0; i < capacity_; ++i) unpoison_block(i);
  }

  BwBlockAllocator(const BwBlockAllocator&) = delete;
  BwBlockAllocator& operator=(const BwBlockAllocator&) = delete;

  // Per-thread chunk cache. Destruction (and move-from) spills every cached
  // index back to the global stack, so quiescent accounting holds once all
  // contexts are gone.
  class ThreadCtx {
   public:
    ThreadCtx(ThreadCtx&& other) noexcept
        : owner_(other.owner_), cache_(std::move(other.cache_)) {
      other.owner_ = nullptr;
    }
    ThreadCtx& operator=(ThreadCtx&& other) noexcept {
      if (this != &other) {
        if (owner_ != nullptr) owner_->spill_all(*this);
        owner_ = other.owner_;
        cache_ = std::move(other.cache_);
        other.owner_ = nullptr;
      }
      return *this;
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;

    ~ThreadCtx() {
      if (owner_ != nullptr) owner_->spill_all(*this);
    }

    std::size_t cached() const { return cache_.size(); }

   private:
    friend class BwBlockAllocator;
    explicit ThreadCtx(BwBlockAllocator* owner) : owner_(owner) {
      cache_.reserve(2 * owner->chunk_ + owner->chunk_);
    }

    BwBlockAllocator* owner_;
    std::vector<std::uint32_t> cache_;
  };

  ThreadCtx make_ctx() { return ThreadCtx(this); }

  // Pops a free block, refilling the private cache with one whole chunk
  // when it is dry. Returns nullopt (and counts alloc_exhaustion) only when
  // the global stack is also empty.
  std::optional<std::uint32_t> alloc(ThreadCtx& ctx) {
    MOIR_ASSERT(ctx.owner_ == this);
    if (ctx.cache_.empty() && !refill(ctx)) {
      stats::count(stats::Id::kAllocExhaustion, 1, this);
      return std::nullopt;
    }
    const std::uint32_t idx = ctx.cache_.back();
    ctx.cache_.pop_back();
    unpoison_block(idx);
    return idx;
  }

  // Returns a block to the private cache, spilling the oldest chunk to the
  // global stack when the cache exceeds 2C — the hysteresis that keeps both
  // alloc and free amortized constant time.
  void free(ThreadCtx& ctx, std::uint32_t idx) {
    MOIR_ASSERT(ctx.owner_ == this);
    MOIR_ASSERT_MSG(idx < capacity_, "freeing an index outside the pool");
    poison_block(idx);
    ctx.cache_.push_back(idx);
    if (ctx.cache_.size() > 2 * static_cast<std::size_t>(chunk_)) {
      spill_chunk(ctx, chunk_);
    }
  }

  // Context-free shims (BlockAllocator-compatible), for callers without a
  // per-thread cache — e.g. quiescent init paths. alloc() pops a chunk,
  // takes its first block, and pushes the remainder back.
  std::optional<std::uint32_t> alloc() {
    const auto first = pop_chunk();
    if (!first.has_value()) {
      stats::count(stats::Id::kAllocExhaustion, 1, this);
      return std::nullopt;
    }
    const std::uint32_t rest = next_[*first].load(std::memory_order_relaxed);
    if (rest != 0) push_chunk(rest - 1);
    unpoison_block(*first);
    return *first;
  }

  void free(std::uint32_t idx) {
    MOIR_ASSERT_MSG(idx < capacity_, "freeing an index outside the pool");
    poison_block(idx);
    next_[idx].store(0, std::memory_order_relaxed);
    push_chunk(idx);  // a single-block chunk
  }

  Node& node(std::uint32_t idx) {
    MOIR_ASSERT(idx < capacity_);
    return nodes_[idx];
  }
  const Node& node(std::uint32_t idx) const {
    MOIR_ASSERT(idx < capacity_);
    return nodes_[idx];
  }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t chunk() const { return chunk_; }

  // Recovery bootstrap (src/dur/): discard the entire free-list state and
  // rebuild it so that exactly the blocks for which `in_use(idx)` returns
  // false are free. After a simulated crash the chunk stack, thread caches,
  // and limbo lists are volatile garbage; what survives is the set of
  // blocks the durable data structure still references — the caller derives
  // `in_use` from that and every other block returns to the pool, so a
  // crashed allocation can never leak. Quiescent-only: callable before any
  // ThreadCtx exists on the recovered instance (recovery runs single-
  // threaded, before membership reopens).
  template <typename InUse>
  void rebuild_free_quiescent(InUse&& in_use) {
    std::uint32_t chead = 0;  // first_idx+1 encoding; 0 = empty stack
    std::vector<std::uint32_t> batch;
    batch.reserve(chunk_);
    auto seal_chunk = [&] {
      if (batch.empty()) return;
      for (std::size_t j = 0; j < batch.size(); ++j) {
        next_[batch[j]].store(
            j + 1 < batch.size() ? batch[j + 1] + 1 : 0,
            std::memory_order_relaxed);
      }
      chunk_next_[batch[0]].store(chead, std::memory_order_relaxed);
      chead = batch[0] + 1;
      batch.clear();
    };
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      if (in_use(i)) {
        unpoison_block(i);
        continue;
      }
      poison_block(i);
      batch.push_back(i);
      if (batch.size() == chunk_) seal_chunk();
    }
    seal_chunk();
    head_.store(chead, std::memory_order_release);
  }

  // Walks the chunk stack and every chunk's block list. Only meaningful
  // when no thread is allocating or freeing AND all ThreadCtx caches have
  // been spilled (destroyed); tests use it as the conservation hard check.
  std::uint32_t free_count_quiescent() const {
    std::uint32_t n = 0;
    std::uint32_t cenc = static_cast<std::uint32_t>(
        head_.load(std::memory_order_acquire) & 0xffffffffull);
    while (cenc != 0 && n <= capacity_) {
      std::uint32_t benc = cenc;
      while (benc != 0 && n <= capacity_) {
        ++n;
        benc = next_[benc - 1].load(std::memory_order_relaxed);
      }
      cenc = chunk_next_[cenc - 1].load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  // Links `count` cache entries (oldest first) into a chunk and pushes it.
  void spill_chunk(ThreadCtx& ctx, std::size_t count) {
    if (count > ctx.cache_.size()) count = ctx.cache_.size();
    if (count == 0) return;
    const std::uint32_t first = ctx.cache_[0];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t link =
          i + 1 < count ? ctx.cache_[i + 1] + 1 : 0;
      next_[ctx.cache_[i]].store(link, std::memory_order_relaxed);
    }
    ctx.cache_.erase(ctx.cache_.begin(),
                     ctx.cache_.begin() + static_cast<std::ptrdiff_t>(count));
    push_chunk(first);
  }

  void spill_all(ThreadCtx& ctx) {
    while (!ctx.cache_.empty()) spill_chunk(ctx, chunk_);
  }

  bool refill(ThreadCtx& ctx) {
    const auto first = pop_chunk();
    if (!first.has_value()) return false;
    for (std::uint32_t enc = *first + 1; enc != 0;
         enc = next_[enc - 1].load(std::memory_order_relaxed)) {
      ctx.cache_.push_back(enc - 1);
    }
    return true;
  }

  // Chunk-stack pop/push: the only shared-memory operations, one tagged CAS
  // each. Reading chunk_next_ of a chunk we do not yet own may be stale, but
  // then the head moved and the version tag fails the CAS (same argument as
  // BlockAllocator's per-block list).
  std::optional<std::uint32_t> pop_chunk() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t enc =
          static_cast<std::uint32_t>(head & 0xffffffffull);
      if (enc == 0) return std::nullopt;
      const std::uint32_t first = enc - 1;
      MOIR_YIELD_UPDATE(this);
      const std::uint64_t version = (head >> 32) + 1;
      const std::uint64_t next =
          (version << 32) | chunk_next_[first].load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return first;
      }
    }
  }

  void push_chunk(std::uint32_t first) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      chunk_next_[first].store(static_cast<std::uint32_t>(head & 0xffffffffull),
                               std::memory_order_relaxed);
      MOIR_YIELD_UPDATE(this);
      const std::uint64_t version = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (version << 32) | (first + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void poison_block(std::uint32_t idx) {
#if MOIR_ASAN
    if (poison_) __asan_poison_memory_region(&nodes_[idx], sizeof(Node));
#else
    (void)idx;
#endif
  }
  void unpoison_block(std::uint32_t idx) {
#if MOIR_ASAN
    if (poison_) __asan_unpoison_memory_region(&nodes_[idx], sizeof(Node));
#else
    (void)idx;
#endif
  }

  const std::uint32_t capacity_;
  const std::uint32_t chunk_;
  const bool poison_;
  std::unique_ptr<Node[]> nodes_;
  // Per-block link within a chunk (idx+1 encoding, 0 = chunk end).
  std::unique_ptr<std::atomic<std::uint32_t>[]> next_;
  // Per-chunk link, indexed by the chunk's first block (first+1 encoding).
  std::unique_ptr<std::atomic<std::uint32_t>[]> chunk_next_;
  // Chunk stack head: {version:32, first_idx+1:32}; low half 0 means empty.
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace moir::reclaim
