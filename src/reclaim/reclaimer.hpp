// The Reclaimer concept: pluggable safe-memory-reclamation policies.
//
// The paper's LL/SC emulations make *link mutation* ABA-safe (a stale SC
// fails because the tag advanced), but they do not make *payload reads*
// safe: a traverser holding node index n may read n's key after another
// thread unlinked, freed, and re-allocated n. Tag-protected SC catches the
// stale *write*; nothing catches the stale *read*. That is the gap between
// the bounded always-recycling pools of treiber_stack.hpp and a structure
// whose nodes hold plain (non-atomic) payload and are genuinely freed —
// closing it needs a reclamation policy, and which policy is a workload
// decision. Hence a concept with interchangeable implementations:
//
//   * EpochReclaimer   (epoch.hpp)  — per-thread epoch slots, 3 limbo
//     buckets, amortized O(1); readers pay two stores per operation.
//   * HazardPointerReclaimer (hazard.hpp) — bounded per-thread HP slots,
//     scan-and-free; readers pay a store + validate per node visited, but
//     unreclaimed garbage is bounded even when a reader stalls forever.
//   * UnsafeImmediateReclaimer (below) — the deliberately broken negative
//     control: protect() is a lie and retire() frees immediately. Tests use
//     it to prove the detectors (ASan poisoning, TSan, value checks) catch
//     exactly the bug the real policies prevent. Never use it for real.
//
// Protocol, for a structure templated over Reclaimer R:
//
//   R::ThreadCtx ctx = r.make_ctx();          // one per thread
//   r.enter(ctx);                             // start of every operation
//   r.protect(ctx, slot, idx);                // announce intent to read idx
//   ... re-validate the source pointer ...    // caller's half of the HP
//                                             // handshake (no-op cost under
//                                             // epochs, where protect is a
//                                             // no-op and enter pins)
//   r.retire(ctx, idx);                       // after unlinking idx
//   r.exit(ctx);                              // end of every operation
//   r.flush(ctx);                             // best effort: free whatever
//                                             // is provably safe now
//
// retire() may be called between enter() and exit(). A node must be
// unreachable from the structure before it is retired, and each node is
// retired exactly once (the thread that unlinks it retires it). Reclaimers
// free through the FreeFn they were constructed with — normally
// BlockAllocator::free, which poisons under ASan.
//
// Thread exit: a ThreadCtx folds its un-freed retire list into the
// reclaimer's orphan list on destruction (like the stats shards fold into
// the retired accumulator), so short-lived threads leak nothing.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>

#include "stats/stats.hpp"

namespace moir::reclaim {

// How a reclaimer gives blocks back (normally BlockAllocator::free).
using FreeFn = std::function<void(std::uint32_t)>;

template <typename R>
concept Reclaimer =
    requires(R r, typename R::ThreadCtx& ctx, std::uint32_t idx,
             unsigned slot) {
      { r.make_ctx() } -> std::same_as<typename R::ThreadCtx>;
      { r.enter(ctx) };
      { r.exit(ctx) };
      { r.protect(ctx, slot, idx) };
      { r.clear(ctx, slot) };
      { r.retire(ctx, idx) };
      { r.flush(ctx) };
      { r.name() } -> std::convertible_to<const char*>;
    };

// ---------------------------------------------------------------------------
// Negative control: immediate free, no protection. Mirrors PR 1's
// planted-bug pattern — an SMR test harness that cannot catch THIS reclaimer
// proves nothing about the real ones. Under ASan the very first protected
// read after a concurrent retire trips use-after-poison (the allocator
// poisons on free); under TSan the racing payload write of the block's next
// owner is a report; in plain builds tests observe the torn value directly.
// ---------------------------------------------------------------------------
class UnsafeImmediateReclaimer {
 public:
  struct ThreadCtx {};

  explicit UnsafeImmediateReclaimer(FreeFn free_fn)
      : free_(std::move(free_fn)) {}

  // Uniform (max_threads, free_fn) shape so containers templated over a
  // Reclaimer can construct any policy the same way.
  UnsafeImmediateReclaimer(unsigned /*max_threads*/, FreeFn free_fn)
      : free_(std::move(free_fn)) {}

  ThreadCtx make_ctx() { return {}; }
  void enter(ThreadCtx&) {}
  void exit(ThreadCtx&) {}
  void protect(ThreadCtx&, unsigned, std::uint32_t) {}  // the lie
  void clear(ThreadCtx&, unsigned) {}

  void retire(ThreadCtx&, std::uint32_t idx) {
    stats::count(stats::Id::kNodeRetire, 1, this);
    stats::count(stats::Id::kNodeFree, 1, this);
    free_(idx);  // no grace period: this is the bug
  }

  void flush(ThreadCtx&) {}
  const char* name() const { return "unsafe-immediate(negative-control)"; }

 private:
  FreeFn free_;
};

static_assert(Reclaimer<UnsafeImmediateReclaimer>);

}  // namespace moir::reclaim
