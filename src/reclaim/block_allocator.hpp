// Fixed-size lock-free block allocator (the allocation half of safe memory
// reclamation, in the spirit of Blelloch & Wei's "Concurrent Fixed-Size
// Allocation and Free in Constant Time", arXiv:2008.04296).
//
// All blocks are preallocated; alloc() and free() are a single tagged-CAS
// push/pop on an index free list (the same {version:32, idx+1:32} head word
// the ProcessRegistry uses against ABA), so node allocation on the data
// structure hot path is itself non-blocking and constant time — a retry
// implies another alloc/free made progress. Blocks are addressed by dense
// indices, which is what lets the LL/SC-based structures link them through
// their narrow value fields.
//
// The allocator is reclamation-aware in one deliberate way: under
// AddressSanitizer every free block's storage is *poisoned* and only
// unpoisoned by alloc(). A reader that dereferences a block after it was
// freed — i.e. a broken reclamation policy — trips an ASan use-after-poison
// report even though the pool's backing memory is, strictly speaking, still
// live. tests/test_reclaim.cpp uses this to prove the negative-control
// reclaimer is actually broken and the real ones are not.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

// ASan detection: gcc defines __SANITIZE_ADDRESS__, clang answers
// __has_feature(address_sanitizer).
#ifndef MOIR_ASAN
#if defined(__SANITIZE_ADDRESS__)
#define MOIR_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MOIR_ASAN 1
#else
#define MOIR_ASAN 0
#endif
#else
#define MOIR_ASAN 0
#endif
#endif

#if MOIR_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace moir::reclaim {

template <typename Node>
class BlockAllocator {
 public:
  // Constructs `capacity` default-initialized nodes, runs `init` on each
  // (e.g. to init_var LL/SC fields through their substrate), then marks all
  // of them free. `init` defaults to nothing.
  template <typename Init>
  BlockAllocator(std::uint32_t capacity, Init&& init)
      : capacity_(capacity),
        nodes_(std::make_unique<Node[]>(capacity)),
        next_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)) {
    MOIR_ASSERT_MSG(capacity >= 1, "allocator needs at least one block");
    for (std::uint32_t i = 0; i < capacity_; ++i) init(nodes_[i]);
    // Free list initially holds every block: i -> i+1, head = block 0.
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      next_[i].store(i + 1 < capacity_ ? i + 2 : 0,
                     std::memory_order_relaxed);
      poison(i);
    }
    head_.store(1, std::memory_order_release);  // idx+1 encoding; 0 = empty
  }

  explicit BlockAllocator(std::uint32_t capacity)
      : BlockAllocator(capacity, [](Node&) {}) {}

  ~BlockAllocator() {
    // Node destructors (and delete[]) must not run on poisoned storage.
    for (std::uint32_t i = 0; i < capacity_; ++i) unpoison(i);
  }

  BlockAllocator(const BlockAllocator&) = delete;
  BlockAllocator& operator=(const BlockAllocator&) = delete;

  // Pops a free block. Empty pool returns nullopt (and counts
  // alloc_exhaustion) — callers surface that as backpressure, they do not
  // block. The returned block's storage is unpoisoned and exclusively owned
  // by the caller until it is published.
  std::optional<std::uint32_t> alloc() {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t enc =
          static_cast<std::uint32_t>(head & 0xffffffffull);
      if (enc == 0) {
        stats::count(stats::Id::kAllocExhaustion, 1, this);
        return std::nullopt;
      }
      const std::uint32_t idx = enc - 1;
      MOIR_YIELD_UPDATE(this);
      // Reading the next link of a block we do not yet own: may be stale,
      // but then head changed and the CAS below fails (the version tag in
      // the high half defeats ABA from a concurrent free of `idx`).
      const std::uint64_t version = (head >> 32) + 1;
      const std::uint64_t next =
          (version << 32) | next_[idx].load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        unpoison(idx);
        return idx;
      }
    }
  }

  // Returns a block to the pool. The caller must own it exclusively: either
  // it was never published, or a Reclaimer has proven no thread can still
  // hold a reference. Storage is poisoned first, so any straggling reader
  // is a detectable use-after-poison under ASan rather than silent reuse.
  void free(std::uint32_t idx) {
    MOIR_ASSERT_MSG(idx < capacity_, "freeing an index outside the pool");
    poison(idx);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[idx].store(static_cast<std::uint32_t>(head & 0xffffffffull),
                       std::memory_order_relaxed);
      MOIR_YIELD_UPDATE(this);
      const std::uint64_t version = (head >> 32) + 1;
      if (head_.compare_exchange_weak(head, (version << 32) | (idx + 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  Node& node(std::uint32_t idx) {
    MOIR_ASSERT(idx < capacity_);
    return nodes_[idx];
  }
  const Node& node(std::uint32_t idx) const {
    MOIR_ASSERT(idx < capacity_);
    return nodes_[idx];
  }

  std::uint32_t capacity() const { return capacity_; }

  // Walks the free list and counts its length. Only meaningful when no
  // thread is concurrently allocating or freeing; tests use it as the leak
  // check "every retired block eventually came home".
  std::uint32_t free_count_quiescent() const {
    std::uint32_t n = 0;
    std::uint32_t enc = static_cast<std::uint32_t>(
        head_.load(std::memory_order_acquire) & 0xffffffffull);
    while (enc != 0 && n <= capacity_) {
      ++n;
      enc = next_[enc - 1].load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  void poison(std::uint32_t idx) {
#if MOIR_ASAN
    __asan_poison_memory_region(&nodes_[idx], sizeof(Node));
#else
    (void)idx;
#endif
  }
  void unpoison(std::uint32_t idx) {
#if MOIR_ASAN
    __asan_unpoison_memory_region(&nodes_[idx], sizeof(Node));
#else
    (void)idx;
#endif
  }

  const std::uint32_t capacity_;
  std::unique_ptr<Node[]> nodes_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> next_;
  // Free list head: {version:32, idx+1:32}; low half 0 means empty.
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace moir::reclaim
