// Hazard-pointer reclamation (Michael 2004) over bounded per-thread slots.
//
// Each thread owns K hazard slots; protect(slot, idx) announces "I may
// dereference block idx", and the *caller* completes the handshake by
// re-reading the pointer it followed and restarting if it changed — only
// then is the announcement known to have been visible before any future
// retire. A retire list of size >= threshold triggers a scan: every
// announced index is collected, and exactly the unannounced retirees are
// freed. Unreclaimed garbage is bounded by N*K + threshold per thread even
// if some reader stalls forever — the opposite trade from epoch.hpp, where
// reads are cheaper but one stalled reader stalls all reclamation.
//
// Slot arrays are leased from a ProcessRegistry (dense ids, recycled on
// thread exit); a dying ThreadCtx folds its retire list into a
// mutex-guarded orphan list that later scans drain — the stats-shard
// fold-on-exit pattern.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/process_registry.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir::reclaim {

class HazardPointerReclaimer {
 public:
  class ThreadCtx {
   public:
    ThreadCtx(ThreadCtx&& other) noexcept
        : owner_(std::exchange(other.owner_, nullptr)),
          id_(other.id_),
          retired_(std::move(other.retired_)) {}
    ThreadCtx& operator=(ThreadCtx&&) = delete;
    ThreadCtx(const ThreadCtx&) = delete;

    ~ThreadCtx() {
      if (owner_ != nullptr) owner_->fold(*this);
    }

   private:
    friend class HazardPointerReclaimer;
    ThreadCtx(HazardPointerReclaimer* owner, unsigned id)
        : owner_(owner), id_(id) {}

    HazardPointerReclaimer* owner_;
    unsigned id_;
    std::vector<std::uint32_t> retired_;
  };

  // `slots_per_thread` = K, the most blocks one operation dereferences at
  // once (list traversal needs curr + prev = 2; the M&S queue needs 2; 3
  // leaves a margin). `scan_threshold` 0 picks the standard 2*N*K + 16,
  // which makes scans amortize to O(1) announced-pointer comparisons per
  // retire.
  HazardPointerReclaimer(unsigned max_threads, FreeFn free_fn,
                         unsigned slots_per_thread = 3,
                         std::uint32_t scan_threshold = 0)
      : free_(std::move(free_fn)),
        k_(slots_per_thread),
        threshold_(scan_threshold != 0
                       ? scan_threshold
                       : 2 * max_threads * slots_per_thread + 16),
        registry_(max_threads),
        hazards_(std::make_unique<std::atomic<std::uint64_t>[]>(
            std::size_t{max_threads} * slots_per_thread)) {
    MOIR_ASSERT(slots_per_thread >= 1);
    for (std::size_t i = 0; i < std::size_t{max_threads} * k_; ++i) {
      hazards_[i].store(0, std::memory_order_relaxed);
    }
  }

  ~HazardPointerReclaimer() {
    // All ThreadCtxs are gone by now, so no announcement can be live.
    for (const std::uint32_t idx : orphans_) {
      free_(idx);
      stats::count(stats::Id::kNodeFree, 1, this);
    }
  }

  ThreadCtx make_ctx() {
    return ThreadCtx(this, registry_.register_process());
  }

  void enter(ThreadCtx&) {}

  // Operations end with no live announcements; leaving one set would pin
  // its block (and whatever the scan keeps alongside) indefinitely.
  void exit(ThreadCtx& ctx) {
    for (unsigned s = 0; s < k_; ++s) clear(ctx, s);
  }

  // seq_cst store: the announcement must be globally visible before the
  // caller's validating re-read, or a concurrent scan may miss it.
  void protect(ThreadCtx& ctx, unsigned slot, std::uint32_t idx) {
    MOIR_ASSERT(slot < k_);
    MOIR_YIELD_WRITE(&hazards_[ctx.id_ * k_ + slot]);
    hazards_[ctx.id_ * k_ + slot].store(std::uint64_t{idx} + 1,
                                        std::memory_order_seq_cst);
  }

  void clear(ThreadCtx& ctx, unsigned slot) {
    MOIR_ASSERT(slot < k_);
    hazards_[ctx.id_ * k_ + slot].store(0, std::memory_order_release);
  }

  void retire(ThreadCtx& ctx, std::uint32_t idx) {
    stats::count(stats::Id::kNodeRetire, 1, this);
    ctx.retired_.push_back(idx);
    stats::record(stats::HistId::kRetireListLen, ctx.retired_.size());
    if (ctx.retired_.size() >= threshold_) scan(ctx);
  }

  void flush(ThreadCtx& ctx) { scan(ctx); }

  const char* name() const { return "hazard-pointer"; }

 private:
  // Frees every retiree no thread currently announces. O(N*K) collection +
  // O(R log H) membership tests — amortized O(1) per retire at the default
  // threshold.
  void scan(ThreadCtx& ctx) {
    stats::count(stats::Id::kHpScan, 1, this);
    {
      // Adopt orphaned retirements first so they cannot outlive all ctxs.
      std::lock_guard<std::mutex> lock(orphan_mutex_);
      ctx.retired_.insert(ctx.retired_.end(), orphans_.begin(),
                          orphans_.end());
      orphans_.clear();
    }
    std::vector<std::uint64_t> announced;
    const unsigned high_water = registry_.registered();
    announced.reserve(std::size_t{high_water} * k_);
    for (std::size_t i = 0; i < std::size_t{high_water} * k_; ++i) {
      MOIR_YIELD_READ(&hazards_[i]);
      const std::uint64_t h = hazards_[i].load(std::memory_order_seq_cst);
      if (h != 0) announced.push_back(h - 1);
    }
    std::sort(announced.begin(), announced.end());
    std::size_t kept = 0;
    for (const std::uint32_t idx : ctx.retired_) {
      if (std::binary_search(announced.begin(), announced.end(),
                             std::uint64_t{idx})) {
        ctx.retired_[kept++] = idx;
      } else {
        free_(idx);
        stats::count(stats::Id::kNodeFree, 1, this);
      }
    }
    ctx.retired_.resize(kept);
  }

  // Thread-exit path: clear this thread's slots, park the remaining retire
  // list for other threads' scans, return the id.
  void fold(ThreadCtx& ctx) {
    for (unsigned s = 0; s < k_; ++s) clear(ctx, s);
    scan(ctx);
    if (!ctx.retired_.empty()) {
      std::lock_guard<std::mutex> lock(orphan_mutex_);
      orphans_.insert(orphans_.end(), ctx.retired_.begin(),
                      ctx.retired_.end());
      ctx.retired_.clear();
    }
    registry_.release_process(ctx.id_);
  }

  FreeFn free_;
  const unsigned k_;
  const std::uint32_t threshold_;
  ProcessRegistry registry_;
  // hazards_[id*k + slot] holds idx+1; 0 means no announcement.
  std::unique_ptr<std::atomic<std::uint64_t>[]> hazards_;
  std::mutex orphan_mutex_;
  std::vector<std::uint32_t> orphans_;
};

static_assert(Reclaimer<HazardPointerReclaimer>);

}  // namespace moir::reclaim
