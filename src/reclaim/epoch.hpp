// Epoch-based reclamation (EBR) over per-thread epoch slots.
//
// A global epoch counter advances only when every active thread has
// announced the current epoch. A node retired in epoch e is freed once the
// global epoch reaches e+2: any reader that could still hold a reference
// announced an epoch <= e+1 before the node was unlinked, and its
// announcement blocks the second advance until it exits. Reads inside an
// enter()/exit() section therefore need no per-node protection at all —
// protect() is a no-op — which makes EBR the cheap-read policy; the price
// is that one stalled reader stalls reclamation globally (hazard.hpp makes
// the opposite trade).
//
// Epoch slots are leased from the existing ProcessRegistry (the same dense
// id machinery the stats shards use), so the slot array bounds *concurrent*
// threads, not lifetime threads: a dying ThreadCtx folds its un-freed limbo
// buckets into a mutex-guarded orphan list — exactly the stats-shard
// fold-on-exit pattern — and later advances drain it.
//
// Why the announce-validate loop in enter(): announcing a stale epoch is
// only safe if, at the instant the announcement is visible, the global
// epoch still equals it. Then the invariant "global <= announced+1 while
// active" holds, so buckets from epochs >= announced are never freed under
// a live reader, and every node the reader can reach was linked after its
// announcement (unlink precedes retire precedes free).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/process_registry.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir::reclaim {

class EpochReclaimer {
  static constexpr unsigned kBuckets = 3;  // e, e+1, e+2 limbo generations

 public:
  class ThreadCtx {
   public:
    ThreadCtx(ThreadCtx&& other) noexcept
        : owner_(std::exchange(other.owner_, nullptr)), id_(other.id_) {
      for (unsigned b = 0; b < kBuckets; ++b) {
        limbo_[b] = std::move(other.limbo_[b]);
        limbo_epoch_[b] = other.limbo_epoch_[b];
      }
    }
    ThreadCtx& operator=(ThreadCtx&&) = delete;
    ThreadCtx(const ThreadCtx&) = delete;

    ~ThreadCtx() {
      if (owner_ != nullptr) owner_->fold(*this);
    }

   private:
    friend class EpochReclaimer;
    ThreadCtx(EpochReclaimer* owner, unsigned id) : owner_(owner), id_(id) {}

    EpochReclaimer* owner_;
    unsigned id_;
    std::vector<std::uint32_t> limbo_[kBuckets];
    std::uint64_t limbo_epoch_[kBuckets] = {0, 1, 2};
  };

  // `retire_threshold` is the per-thread limbo size that triggers an
  // advance attempt — the amortization knob, not a hard bound.
  EpochReclaimer(unsigned max_threads, FreeFn free_fn,
                 std::uint32_t retire_threshold = 64)
      : free_(std::move(free_fn)),
        threshold_(retire_threshold),
        registry_(max_threads),
        slots_(std::make_unique<std::atomic<std::uint64_t>[]>(max_threads)) {
    for (unsigned i = 0; i < max_threads; ++i) {
      slots_[i].store(0, std::memory_order_relaxed);
    }
  }

  ~EpochReclaimer() {
    // At destruction all ThreadCtxs are gone (they hold owner_ pointers),
    // so everything left in the orphan list is safe to free.
    for (const auto& [epoch, idx] : orphans_) {
      (void)epoch;
      free_(idx);
      stats::count(stats::Id::kNodeFree, 1, this);
    }
  }

  ThreadCtx make_ctx() {
    return ThreadCtx(this, registry_.register_process());
  }

  void enter(ThreadCtx& ctx) {
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      MOIR_YIELD_WRITE(&slots_[ctx.id_]);
      slots_[ctx.id_].store((e << 1) | 1, std::memory_order_seq_cst);
      const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (now == e) return;  // announcement was current when visible
      e = now;
    }
  }

  void exit(ThreadCtx& ctx) {
    MOIR_YIELD_WRITE(&slots_[ctx.id_]);
    slots_[ctx.id_].store(0, std::memory_order_release);
  }

  // Epochs protect whole critical sections, not single nodes.
  void protect(ThreadCtx&, unsigned, std::uint32_t) {}
  void clear(ThreadCtx&, unsigned) {}

  void retire(ThreadCtx& ctx, std::uint32_t idx) {
    stats::count(stats::Id::kNodeRetire, 1, this);
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    auto& bucket = ctx.limbo_[e % kBuckets];
    if (ctx.limbo_epoch_[e % kBuckets] != e) {
      // Bucket belongs to an epoch <= e-3: its grace period elapsed long
      // ago. Drain it before reusing it for generation e.
      free_bucket(ctx, e % kBuckets);
      ctx.limbo_epoch_[e % kBuckets] = e;
    }
    bucket.push_back(idx);
    const std::size_t pending =
        ctx.limbo_[0].size() + ctx.limbo_[1].size() + ctx.limbo_[2].size();
    stats::record(stats::HistId::kRetireListLen, pending);
    if (pending >= threshold_) {
      try_advance();
      free_expired(ctx);
    }
  }

  // Frees every bucket whose grace period has elapsed; attempts one epoch
  // advance first. Safe to call anytime; cannot force progress while
  // another thread sits in an old epoch.
  void flush(ThreadCtx& ctx) {
    for (unsigned round = 0; round < kBuckets; ++round) {
      try_advance();
      free_expired(ctx);
    }
    drain_orphans();
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  const char* name() const { return "epoch(ebr)"; }

 private:
  // Advances the global epoch iff every active thread announced the
  // current one. Counted so benches can report advance rate vs. retire
  // rate (a stalled reader shows up as a flat epoch line).
  bool try_advance() {
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    const unsigned high_water = registry_.registered();
    for (unsigned p = 0; p < high_water; ++p) {
      MOIR_YIELD_READ(&slots_[p]);
      const std::uint64_t s = slots_[p].load(std::memory_order_seq_cst);
      if ((s & 1) != 0 && (s >> 1) != e) return false;
    }
    std::uint64_t expected = e;
    if (epoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_seq_cst)) {
      stats::count(stats::Id::kEpochAdvance, 1, this);
      drain_orphans();
      return true;
    }
    return false;
  }

  void free_bucket(ThreadCtx& ctx, unsigned b) {
    auto& bucket = ctx.limbo_[b];
    for (const std::uint32_t idx : bucket) {
      free_(idx);
      stats::count(stats::Id::kNodeFree, 1, this);
    }
    bucket.clear();
  }

  void free_expired(ThreadCtx& ctx) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (unsigned b = 0; b < kBuckets; ++b) {
      if (!ctx.limbo_[b].empty() && ctx.limbo_epoch_[b] + 2 <= e) {
        free_bucket(ctx, b);
        ctx.limbo_epoch_[b] = e;  // placeholder; fixed on next retire
      }
    }
  }

  void drain_orphans() {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    std::size_t kept = 0;
    for (auto& entry : orphans_) {
      if (entry.first + 2 <= e) {
        free_(entry.second);
        stats::count(stats::Id::kNodeFree, 1, this);
      } else {
        orphans_[kept++] = entry;
      }
    }
    orphans_.resize(kept);
  }

  // Thread-exit path: park un-freed retirements with their epochs on the
  // orphan list (cold, mutex-guarded — the stats-shard fold pattern) and
  // return the slot id for reuse.
  void fold(ThreadCtx& ctx) {
    {
      std::lock_guard<std::mutex> lock(orphan_mutex_);
      for (unsigned b = 0; b < kBuckets; ++b) {
        for (const std::uint32_t idx : ctx.limbo_[b]) {
          orphans_.emplace_back(ctx.limbo_epoch_[b], idx);
        }
        ctx.limbo_[b].clear();
      }
    }
    slots_[ctx.id_].store(0, std::memory_order_release);
    registry_.release_process(ctx.id_);
    try_advance();
    drain_orphans();
  }

  FreeFn free_;
  const std::uint32_t threshold_;
  ProcessRegistry registry_;
  std::atomic<std::uint64_t> epoch_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;  // (epoch<<1)|active
  std::mutex orphan_mutex_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> orphans_;
};

static_assert(Reclaimer<EpochReclaimer>);

}  // namespace moir::reclaim
