// Process identity. The paper's algorithms are written "for process p" with
// p in 0..N-1; Figures 6 and 7 embed p in shared words and index shared
// arrays with it. A ProcessRegistry hands out dense ids to threads.
//
// Ids are explicit (passed to the algorithms) rather than hidden in
// thread-local state so that a single test thread can play several
// "processes" when exercising interleavings deterministically.
//
// Ids can be returned with release_process() and are then reused, so
// max_processes bounds *concurrent* holders, not the lifetime total. The
// stats layer leans on this: test suites spawn thousands of short-lived
// threads (the schedule explorer creates fresh threads per trial) and each
// briefly leases a stats shard. The free list is a lock-free Treiber stack
// over a preallocated next[] array, with a version tag against ABA.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace moir {

class ProcessRegistry {
 public:
  explicit ProcessRegistry(unsigned max_processes)
      : max_processes_(max_processes),
        free_next_(new std::atomic<std::uint32_t>[max_processes]) {}

  // Assigns a free id, preferring released ones. Aborts if more than
  // max_processes hold ids at once: the shared arrays sized N cannot
  // accommodate an N+1th process, and failing loudly beats corrupting
  // them.
  unsigned register_process();

  // Returns an id to the free pool. The caller must not use the id after
  // this, and must have quiesced any shared state indexed by it.
  void release_process(unsigned id);

  unsigned max_processes() const { return max_processes_; }

  // High-water mark: ids ever minted by fetch-add (released ids stay
  // counted). Shared arrays indexed by process id are live over [0, this).
  unsigned registered() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  const unsigned max_processes_;
  std::atomic<unsigned> next_{0};
  // Free list head: {version:32, id+1:32}; low half 0 means empty.
  std::atomic<std::uint64_t> free_head_{0};
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_next_;
};

// Convenience: a thread-local id bound to a registry on first use.
unsigned this_process_id(ProcessRegistry& registry);

}  // namespace moir
