// Process identity. The paper's algorithms are written "for process p" with
// p in 0..N-1; Figures 6 and 7 embed p in shared words and index shared
// arrays with it. A ProcessRegistry hands out dense ids to threads.
//
// Ids are explicit (passed to the algorithms) rather than hidden in
// thread-local state so that a single test thread can play several
// "processes" when exercising interleavings deterministically.
#pragma once

#include <atomic>
#include <cstdint>

namespace moir {

class ProcessRegistry {
 public:
  explicit ProcessRegistry(unsigned max_processes)
      : max_processes_(max_processes) {}

  // Assigns the next free id. Aborts if more than max_processes register:
  // the shared arrays sized N cannot accommodate an N+1th process, and
  // failing loudly beats corrupting them.
  unsigned register_process();

  unsigned max_processes() const { return max_processes_; }
  unsigned registered() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  const unsigned max_processes_;
  std::atomic<unsigned> next_{0};
};

// Convenience: a thread-local id bound to a registry on first use.
unsigned this_process_id(ProcessRegistry& registry);

}  // namespace moir
