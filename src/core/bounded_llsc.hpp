// Figure 7: constant-time, bounded-tag implementation of LL/VL/SC using CAS
// (Theorem 5).
//
// The unbounded-tag constructions (Figures 3-5) rely on "a tag will not
// wrap around during one LL-SC sequence". This construction removes that
// probabilistic argument entirely: tags are drawn from the bounded range
// 0..2Nk and recycled through a feedback mechanism that guarantees no
// {tag, cnt, pid} triple is reused while any process could still CAS
// against it. The price is space — Θ(N(k+T)) shared words for T variables,
// N processes, and at most k concurrent LL-SC sequences per process — but
// that is far below the Θ(N²T) of the prior bounded construction
// (Anderson–Moir PODC'95), which bench_fig7_bounded tabulates.
//
// Mechanism recap (paper Section 4):
//  * Every LL announces the word it read in the shared array A[p][slot];
//    slots (k per process) are managed by the private SlotStack.
//  * Every SC scans one element of A (round-robin via the private index j)
//    and moves the tag it sees to the back of its private TagQueue of all
//    2Nk+1 tags, then takes the queue front as the new tag. Each SC touches
//    at most two queue positions, and all N·k announcement cells are
//    visited every N·k SCs, so a tag that some process announced cannot
//    reach the queue front — i.e. be reused — before that announcement is
//    overwritten.
//  * The per-variable counter array `last` (one counter per process,
//    incremented mod Nk+1 per SC on that variable) stretches reuse of the
//    pair {tag, cnt} across at least Nk+1 SCs, which is what makes the
//    A-scan frequency sufficient.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/process_registry.hpp"
#include "core/slot_stack.hpp"
#include "core/tag_queue.hpp"
#include "core/word_provider.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/bits.hpp"

namespace moir {

// Field widths are compile-time; the domain constructor checks that the
// runtime N and k fit them. Defaults support N.k up to 2^17 with 16-bit
// values (tag needs 2Nk+1 <= 2^TagBits, cnt needs Nk+1 <= 2^CntBits).
template <unsigned ValBits = 16, unsigned PidBits = 10, unsigned CntBits = 18,
          unsigned TagBits = 64 - ValBits - PidBits - CntBits,
          WordProvider Provider = NativeWordProvider>
class BoundedLlsc {
  static_assert(ValBits + PidBits + CntBits + TagBits == 64,
                "fields must fill exactly one machine word");
  static_assert(ValBits >= 1 && PidBits >= 1 && CntBits >= 2 && TagBits >= 2);

 public:
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;

  // wordtype = record tag, cnt, pid, val end — packed into 64 bits.
  struct Packed {
    std::uint64_t raw = 0;

    static Packed make(std::uint64_t tag, std::uint64_t cnt, std::uint64_t pid,
                       std::uint64_t val) {
      std::uint64_t r = 0;
      r = deposit_bits(r, 0, ValBits, val);
      r = deposit_bits(r, ValBits, PidBits, pid);
      r = deposit_bits(r, ValBits + PidBits, CntBits, cnt);
      r = deposit_bits(r, ValBits + PidBits + CntBits, TagBits, tag);
      return Packed{r};
    }

    std::uint64_t val() const { return extract_bits(raw, 0, ValBits); }
    std::uint64_t pid() const { return extract_bits(raw, ValBits, PidBits); }
    std::uint64_t cnt() const {
      return extract_bits(raw, ValBits + PidBits, CntBits);
    }
    std::uint64_t tag() const {
      return extract_bits(raw, ValBits + PidBits + CntBits, TagBits);
    }
  };

  // keeptype = record slot, fail end.
  struct Keep {
    unsigned slot = 0;
    bool fail = false;
  };

  // llsctype = record word; last: array[0..N-1] end.
  class Var {
   public:
    Var() = default;
    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

   private:
    friend class BoundedLlsc;
    typename Provider::Word word_;
    // last[i]: the counter most recently written to this word by process i.
    // Only process i ever touches last[i]; atomic (relaxed) keeps the
    // accesses race-free in the C++ memory model without ordering cost.
    std::vector<std::atomic<std::uint32_t>> last_;
  };

  // Private per-process state: the slot stack S, the tag queue Q, and the
  // round-robin announcement scan index j.
  class ThreadCtx {
   public:
    ThreadCtx(unsigned pid, unsigned k, std::uint32_t tag_count,
              unsigned scan_range, typename Provider::Ctx words)
        : pid_(pid),
          stack_(k),
          queue_(tag_count),
          scan_range_(scan_range),
          words_(std::move(words)) {}

    unsigned pid() const { return pid_; }

   private:
    friend class BoundedLlsc;
    unsigned pid_;
    SlotStack stack_;
    TagQueue queue_;
    unsigned scan_range_;  // N*k
    unsigned j_ = 0;       // 0..Nk-1
    typename Provider::Ctx words_;
  };

  // `n_processes` = N, `k` = max concurrent LL-SC sequences per process.
  BoundedLlsc(unsigned n_processes, unsigned k,
              Provider provider = Provider())
      : provider_(std::move(provider)),
        n_(n_processes),
        k_(k),
        nk_(n_processes * k),
        tag_count_(2 * n_processes * k + 1),
        registry_(n_processes),
        announce_(std::make_unique<std::atomic<std::uint64_t>[]>(nk_)) {
    MOIR_ASSERT(n_processes >= 1 && k >= 1);
    MOIR_ASSERT_MSG(2ULL * nk_ <= low_mask(TagBits),
                    "tag field too narrow for 2Nk+1 tags");
    MOIR_ASSERT_MSG(nk_ <= low_mask(CntBits),
                    "cnt field too narrow for Nk+1 counter values");
    MOIR_ASSERT_MSG(n_processes - 1 <= low_mask(PidBits),
                    "pid field too narrow for N processes");
    for (unsigned i = 0; i < nk_; ++i) {
      announce_[i].store(0, std::memory_order_relaxed);
    }
  }

  ThreadCtx make_ctx() {
    return ThreadCtx(registry_.register_process(), k_, tag_count_, nk_,
                     provider_.make_ctx());
  }

  // initially X.word = (0, 0, 0, initial) and X.last[i] = 0 for all i.
  void init_var(Var& var, value_type initial) {
    MOIR_ASSERT(initial <= max_value());
    var.word_.init(Packed::make(0, 0, 0, initial).raw);
    var.last_ = std::vector<std::atomic<std::uint32_t>>(n_);
    for (auto& c : var.last_) c.store(0, std::memory_order_relaxed);
  }

  // Yield points precede the accesses they announce; the exploration
  // identities are the variable's word and the individual announcement
  // cells. The per-process counters last_[pid] are owner-only (no other
  // process touches them) and therefore omitted from the footprints.
  value_type ll(ThreadCtx& ctx, const Var& var, Keep& keep) {
    if (ctx.stack_.available() == 0) {
      // Counted before the pop() assertion fires so the exhaustion shows
      // up in counters/trace even though the process is about to die.
      stats::count(stats::Id::kTagExhaustion, 1, &var);
    }
    keep.slot = ctx.stack_.pop();                                   // line 1
    MOIR_YIELD_READ(&var.word_);
    const std::uint64_t old = var.word_.load();                     // line 2
    MOIR_YIELD_WRITE(&announce(ctx.pid_, keep.slot));
    announce(ctx.pid_, keep.slot)
        .store(old, std::memory_order_seq_cst);                     // line 3
    MOIR_YIELD_READ(&var.word_);
    keep.fail = var.word_.load() != old;                            // line 4
    return Packed{old}.val();                                       // line 5
  }

  bool vl(ThreadCtx& ctx, const Var& var, const Keep& keep) {
    MOIR_YIELD_STEP(::moir::testing::StepInfo::read(&var.word_)
                        .also_read(&announce(ctx.pid_, keep.slot)));
    return !keep.fail &&                                            // line 6
           var.word_.load() == announce(ctx.pid_, keep.slot)
                                   .load(std::memory_order_seq_cst);
  }

  // CL: abort the current LL-SC sequence, recycling its slot.
  void cl(ThreadCtx& ctx, const Keep& keep) {
    ctx.stack_.push(keep.slot);                                     // line 7
  }

  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep, value_type newval) {
    MOIR_ASSERT(newval <= max_value());
    ctx.stack_.push(keep.slot);                                     // line 8
    if (keep.fail) {                                                // line 9
      stats::count(stats::Id::kScFail, 1, &var);
      return false;
    }

    // line 10: read one announcement; retire its tag to the queue back.
    MOIR_YIELD_READ(&announce(ctx.j_ / k_, ctx.j_ % k_));
    const std::uint64_t announced =
        announce(ctx.j_ / k_, ctx.j_ % k_).load(std::memory_order_seq_cst);
    ctx.queue_.move_to_back(
        static_cast<std::uint32_t>(Packed{announced}.tag()));
    stats::count(stats::Id::kTagRecycle, 1, &var);
    ctx.j_ = (ctx.j_ + 1) % ctx.scan_range_;                        // line 11
    const std::uint32_t t = ctx.queue_.rotate();                    // line 12
    stats::count(stats::Id::kTagAlloc, 1, &var);

    // lines 13-14: next counter for (this variable, this process).
    const std::uint32_t cnt = static_cast<std::uint32_t>(add_mod_range(
        var.last_[ctx.pid_].load(std::memory_order_relaxed), 1, nk_));
    var.last_[ctx.pid_].store(cnt, std::memory_order_relaxed);

    MOIR_YIELD_STEP(::moir::testing::StepInfo::read(
                        &announce(ctx.pid_, keep.slot))
                        .also_update(&var.word_));
    // line 15: CAS from the announced old word to the freshly-tagged new.
    std::uint64_t expected =
        announce(ctx.pid_, keep.slot).load(std::memory_order_seq_cst);
    const bool ok = var.word_.cas(ctx.words_, expected,
                                  Packed::make(t, cnt, ctx.pid_, newval).raw);
    stats::count(ok ? stats::Id::kScSuccess : stats::Id::kScFail, 1, &var);
    return ok;
  }

  value_type read(const Var& var) const {
    return Packed{var.word_.load()}.val();
  }

  // Diagnostic: the variable's full packed word (tag/cnt/pid/val). Tests
  // use it to check the bounded-tag invariant; benches to report tag churn.
  Packed raw_word(const Var& var) const {
    return Packed{var.word_.load()};
  }

  value_type max_value() const { return low_mask(ValBits); }
  const char* name() const { return "bounded-tag(fig7)"; }
  const char* provider_name() const { return provider_.name(); }

  unsigned n_processes() const { return n_; }
  unsigned k() const { return k_; }

  // --- space accounting (for bench_fig7_bounded / EXPERIMENTS.md) --------
  // Shared overhead: the announcement array (Nk words) plus, per variable,
  // the `last` array (N words). The paper's measure excludes private
  // variables; we also report them for completeness.
  std::size_t shared_overhead_words(std::size_t n_vars) const {
    return std::size_t{nk_} + n_vars * n_;
  }
  std::size_t private_words_per_process() const {
    // slot stack (k) + tag queue next/prev (2(2Nk+1)) + j.
    return k_ + 2 * tag_count_ + 1;
  }

 private:
  std::atomic<std::uint64_t>& announce(unsigned pid, unsigned slot) {
    MOIR_ASSERT(pid < n_ && slot < k_);
    return announce_[pid * k_ + slot];
  }

  Provider provider_;
  const unsigned n_;
  const unsigned k_;
  const unsigned nk_;
  const std::uint32_t tag_count_;  // 2Nk+1
  ProcessRegistry registry_;
  // A: array[0..N-1][0..k-1] of wordtype (row-major).
  std::unique_ptr<std::atomic<std::uint64_t>[]> announce_;
};

}  // namespace moir
