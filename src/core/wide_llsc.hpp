// Figure 6: Θ(W)-time, unbounded-tag implementation of W-word WLL/VL/SC
// (Theorem 4).
//
// A W-word variable is a header word {tag, pid} plus W segment words
// {tag, chunk}. A SC installs a new header (tag+1, p) with one CAS and then
// copies its announced value from the shared array A[p] into the segments,
// one CAS each. Any process can help finish an in-flight SC — WLL's Copy
// pass does — so a stalled writer never blocks readers: the construction is
// non-blocking even though a value spans many words.
//
// WLL is the paper's weakened LL (from Anderson–Moir [3]): when a competing
// SC succeeds mid-read, WLL may give up and return the winner's pid instead
// of a value, because the caller's own SC is then certain to fail anyway.
//
// Space overhead is Θ(NW) — one announcement row per process, shared by ALL
// variables of the domain — not Θ(NWT) as a per-variable generalization
// would need. That reuse is safe because a process's row is only live
// between its SC's announcement and that same SC's Copy completion, and a
// process runs one SC at a time; helpers that read a row late can only CAS
// against segments whose expected old tag has already been overtaken, so
// their stale values never land (the CAS expected-value includes the tag).
//
// The paper presents the algorithm over CAS "for simplicity" and notes the
// Figure-3 technique transfers it to RLL/RSC machines; the WordProvider
// parameter realizes both: NativeWordProvider (default) uses hardware CAS,
// RllRscWordProvider runs every header/segment CAS through the emulated
// restricted LL/SC.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "core/process_registry.hpp"
#include "core/word_provider.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/bits.hpp"

namespace moir {

template <unsigned TagBits = 32, WordProvider Provider = NativeWordProvider>
class WideLlsc {
  static_assert(TagBits >= 8 && TagBits <= 56,
                "tag must leave room for a pid / data chunk");

 public:
  // Payload bits carried by each segment word alongside its tag.
  static constexpr unsigned kChunkBits = 64 - TagBits;
  static constexpr std::uint64_t kMaxChunk = low_mask(kChunkBits);
  static constexpr unsigned kTagBits = TagBits;

  using value_type = std::uint64_t;  // one chunk; full values are spans

  struct Keep {
    std::uint64_t tag = 0;
  };

  // Result of WLL: either success (a consistent value was stored in the
  // caller's buffer) or the pid of a process whose SC succeeded during the
  // WLL — in which case the caller's subsequent SC is certain to fail.
  struct WllResult {
    bool success = false;
    unsigned winner_pid = 0;
  };

  class Var {
   public:
    Var() = default;
    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

   private:
    friend class WideLlsc;
    typename Provider::Word header_;
    std::unique_ptr<typename Provider::Word[]> data_;
  };

  struct ThreadCtx {
    unsigned pid;
    typename Provider::Ctx words;
  };

  WideLlsc(unsigned n_processes, unsigned width,
           Provider provider = Provider())
      : provider_(std::move(provider)),
        n_(n_processes),
        w_(width),
        registry_(n_processes),
        announce_(
            std::make_unique<std::atomic<std::uint64_t>[]>(std::size_t{n_} *
                                                           w_)) {
    MOIR_ASSERT(n_processes >= 1 && width >= 1);
    MOIR_ASSERT_MSG(n_processes - 1 <= low_mask(64 - TagBits),
                    "pid does not fit the header's pid field");
    for (std::size_t i = 0; i < std::size_t{n_} * w_; ++i) {
      announce_[i].store(0, std::memory_order_relaxed);
    }
  }

  ThreadCtx make_ctx() {
    return ThreadCtx{registry_.register_process(), provider_.make_ctx()};
  }

  unsigned width() const { return w_; }
  unsigned n_processes() const { return n_; }

  // Initializes a variable to hold `initial` (W chunks, each < 2^kChunkBits).
  void init_var(Var& var, std::span<const std::uint64_t> initial) {
    MOIR_ASSERT(initial.size() == w_);
    var.header_.init(pack_header(0, 0));
    var.data_ = std::make_unique<typename Provider::Word[]>(w_);
    for (unsigned i = 0; i < w_; ++i) {
      MOIR_ASSERT(initial[i] <= kMaxChunk);
      // Segment tags start equal to the header tag: "already copied".
      var.data_[i].init(pack_segment(0, initial[i]));
    }
  }

  // WLL (lines 10-12): read the header, remember its tag, and run Copy to
  // both finish any in-flight SC and collect a consistent value into `out`.
  // Yield points precede the accesses they announce; exploration
  // identities are the header word, the individual segment words, and the
  // individual announcement cells. Footprints over-approximate (a declared
  // access that a branch skips only costs reduction, never soundness).
  WllResult wll(ThreadCtx& ctx, const Var& var, Keep& keep,
                std::span<std::uint64_t> out) {
    MOIR_ASSERT(out.size() == w_);
    MOIR_YIELD_READ(&var.header_);
    const std::uint64_t x = var.header_.load();                     // line 10
    keep.tag = header_tag(x);                                       // line 11
    return copy(ctx, var, x, out.data());                           // line 12
  }

  // VL (line 13): has a successful SC been linearized since our WLL?
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) {
    MOIR_YIELD_READ(&var.header_);
    return header_tag(var.header_.load()) == keep.tag;
  }

  // SC (lines 14-21).
  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep,
          std::span<const std::uint64_t> newval) {
    MOIR_ASSERT(newval.size() == w_);
    MOIR_YIELD_READ(&var.header_);
    const std::uint64_t oldhdr = var.header_.load();                // line 14
    if (header_tag(oldhdr) != keep.tag) {                           // line 15
      stats::count(stats::Id::kScFail, 1, &var);
      return false;
    }
    MOIR_YIELD_STEP([&] {
      auto s = ::moir::testing::StepInfo::none();
      for (unsigned i = 0; i < w_; ++i) s.also_write(&announce(ctx.pid, i));
      return s;
    }());
    for (unsigned i = 0; i < w_; ++i) {                             // line 16
      MOIR_ASSERT(newval[i] <= kMaxChunk);
      announce(ctx.pid, i).store(newval[i],
                                 std::memory_order_seq_cst);        // line 17
    }
    const std::uint64_t newhdr = pack_header(
        add_mod_pow2(header_tag(oldhdr), 1, TagBits), ctx.pid);     // line 18
    MOIR_YIELD_UPDATE(&var.header_);
    std::uint64_t expected = oldhdr;
    if (!var.header_.cas(ctx.words, expected, newhdr)) {            // line 19
      stats::count(stats::Id::kScFail, 1, &var);
      return false;
    }
    stats::count(stats::Id::kScSuccess, 1, &var);
    copy(ctx, var, newhdr, nullptr);                                // line 20
    return true;                                                    // line 21
  }

  // Convenience read: WLL retried until success. Lock-free (each retry is
  // caused by a successful SC).
  void read(ThreadCtx& ctx, const Var& var, std::span<std::uint64_t> out) {
    Keep keep;
    SpinWait backoff;
    while (!wll(ctx, var, keep, out).success) {
      // Each retry means a competing SC landed mid-read; under a write
      // burst, backing off lets the burst finish instead of re-scanning
      // W segments against a moving tag (same policy as the Figure 3
      // retry loops, util/backoff.hpp).
      backoff.pause();
    }
  }

  // --- space accounting ----------------------------------------------------
  // Shared overhead: announcement array only — N*W words regardless of the
  // number of variables (Theorem 4). Per variable: the header word (the W
  // segment words hold the data itself and are "the words to be accessed").
  std::size_t shared_overhead_words() const { return std::size_t{n_} * w_; }
  std::size_t per_variable_overhead_words() const { return 1; }
  const char* name() const { return "wide-llsc(fig6)"; }
  const char* provider_name() const { return provider_.name(); }

 private:
  static constexpr std::uint64_t header_tag(std::uint64_t h) {
    return extract_bits(h, 64 - TagBits, TagBits);
  }
  static constexpr std::uint64_t header_pid(std::uint64_t h) {
    return extract_bits(h, 0, 64 - TagBits);
  }
  static constexpr std::uint64_t pack_header(std::uint64_t tag,
                                             std::uint64_t pid) {
    return deposit_bits(deposit_bits(0, 0, 64 - TagBits, pid), 64 - TagBits,
                        TagBits, tag);
  }
  static constexpr std::uint64_t segment_tag(std::uint64_t s) {
    return extract_bits(s, kChunkBits, TagBits);
  }
  static constexpr std::uint64_t segment_chunk(std::uint64_t s) {
    return extract_bits(s, 0, kChunkBits);
  }
  static constexpr std::uint64_t pack_segment(std::uint64_t tag,
                                              std::uint64_t chunk) {
    return deposit_bits(deposit_bits(0, 0, kChunkBits, chunk), kChunkBits,
                        TagBits, tag);
  }

  std::atomic<std::uint64_t>& announce(unsigned pid, unsigned i) const {
    return announce_[std::size_t{pid} * w_ + i];
  }

  // Copy (lines 1-9): ensure every segment carries the value of the SC that
  // installed header `hdr`; optionally save the collected chunks.
  WllResult copy(ThreadCtx& ctx, const Var& var, std::uint64_t hdr,
                 std::uint64_t* save) {
    const std::uint64_t want_tag = header_tag(hdr);
    const std::uint64_t prev_tag = sub_mod_pow2(want_tag, 1, TagBits);
    const unsigned src_pid = static_cast<unsigned>(header_pid(hdr));
    // A helping round is a Copy pass that does real work (>= 1 segment CAS
    // attempt) on behalf of ANOTHER process's in-flight SC. A pass over
    // fully-copied segments, or over our own SC's header, does not count.
    bool helped = false;
    for (unsigned i = 0; i < w_; ++i) {                             // line 1
      MOIR_YIELD_STEP(::moir::testing::StepInfo::read(&var.data_[i])
                          .also_read(&var.header_));
      std::uint64_t y = var.data_[i].load();                        // line 2
      if (segment_tag(y) == prev_tag) {                             // line 3
        MOIR_YIELD_STEP(::moir::testing::StepInfo::read(&announce(src_pid, i))
                            .also_update(&var.data_[i])
                            .also_read(&var.header_));
        const std::uint64_t z = pack_segment(
            want_tag,
            announce(src_pid, i).load(std::memory_order_seq_cst));  // line 4
        stats::count(stats::Id::kWordCopies, 1, &var);
        if (!helped && src_pid != ctx.pid) {
          helped = true;
          stats::count(stats::Id::kHelpRounds, 1, &var);
        }
        std::uint64_t expected = y;
        if (var.data_[i].cas(ctx.words, expected, z)) {             // line 5
          y = z;                                                    // line 6
        } else {
          // Deviation from the paper's pseudocode, which sets y := z even
          // when the CAS fails. z is only trustworthy when our CAS wins:
          // a successful CAS proves the segment was still at the previous
          // regime when we read A[hdr.pid][i], hence that row had not yet
          // been recycled by its owner's NEXT SC (possibly on a different
          // variable — the announcement row is shared across all variables;
          // that sharing is exactly footnote 2's Θ(NW) space optimization).
          // When the CAS fails, the segment already holds a value some
          // winning CAS installed — provably correct for its regime — so we
          // take the observed value; if it belongs to a later regime, the
          // header check below rejects the whole pass.
          y = expected;
        }
      }
      const std::uint64_t h = var.header_.load();                   // line 7
      if (h != hdr) {
        return WllResult{false, static_cast<unsigned>(header_pid(h))};
      }
      if (save != nullptr) save[i] = segment_chunk(y);              // line 8
    }
    return WllResult{true, 0};                                      // line 9
  }

  Provider provider_;
  const unsigned n_;
  const unsigned w_;
  ProcessRegistry registry_;
  // A: array[0..N-1][0..W-1] of valtype (chunk values), row-major.
  std::unique_ptr<std::atomic<std::uint64_t>[]> announce_;
};

}  // namespace moir
