// Blelloch–Wei weak LL/SC from single pointer-width CAS (arXiv:1911.09671),
// as a SmallLlscSubstrate — the `figbw` family.
//
// The paper's Figures 4/5/7 defeat CAS's ABA problem by *tagging* the word:
// every SC writes a value+tag pair, so a recycled value still compares
// unequal. That costs value width (Figure 4 steals tag bits), DWCAS (wide
// variants), or Θ(N(k+T)) bounded-tag machinery (Figure 7). Blelloch & Wei
// instead make the word a *pointer* to an immutable value descriptor and
// guarantee the pointer itself is never recycled while any LL-SC sequence
// could still CAS against it:
//
//   * SC allocates a fresh descriptor, publishes the new value in it, and
//     swings the variable's single pointer-width word with one CAS. The old
//     descriptor is retired, not freed.
//   * LL announces the descriptor it read in a shared announcement array
//     (hazard-pointer style: announce, then re-read the variable to close
//     the window) before dereferencing it.
//   * A retired descriptor returns to the pool only after a scan of all
//     N*k announcement slots finds nobody announcing it. Scans run every
//     Θ(N*k) retirements, so their cost amortizes to O(1) per SC (the
//     paper's worst-case-constant version staggers the scan; we keep the
//     amortized form, which is what the allocator's chunking already is).
//
// Pointer equality therefore implies "no successful SC since my LL": VL is
// a single load, SC a single CAS, and values keep their full 64 bits — no
// tag field, no wraparound assumption, no DWCAS. The cost moves to LL's one
// seq_cst announcement store (the same store-load fence hazard pointers
// pay) and the amortized scan.
//
// The context-free read() cannot announce (it has no slot), so it runs a
// seqlock over the descriptor: each (re)allocation of a descriptor bumps
// its `seq` to odd before rewriting `value` and back to even before the
// descriptor can be re-installed. A reader that saw a stable even seq AND
// re-reads the same descriptor pointer from the variable is guaranteed the
// value belongs to a tenure of *this* variable inside the read's window —
// see read() for the step-by-step argument. Descriptors are type-stable
// (the pool never poisons them), so touching a retired one is safe; it is
// merely revalidated away.
//
// The SkipAnnounce template parameter is a planted bug for the negative
// control (ISSUE 6): it elides the announce/re-read step, so a preempted LL
// can dereference — and later successfully SC against — a descriptor that
// was recycled underneath it. tests/test_bw_llsc.cpp demonstrates PCT
// catching the resulting non-linearizable history.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/process_registry.hpp"
#include "core/slot_stack.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/bw_allocator.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/bits.hpp"

namespace moir {

template <unsigned ValBits = 64, bool SkipAnnounce = false>
class BwLlscImpl {
  static_assert(ValBits >= 1 && ValBits <= 64);

 public:
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;
  static constexpr std::uint32_t kNone = 0xffffffffu;

  // Immutable while installed: `value` is written only by the descriptor's
  // exclusive owner between allocation and the install CAS. `seq` is the
  // per-slot seqlock generation for context-free readers; it is bumped to
  // odd before each rewrite and back to even after, and only ever grows.
  struct Descriptor {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> seq{0};
  };

  using Pool = reclaim::BwBlockAllocator<Descriptor>;

  struct Config {
    // Descriptors reserved for installed values: one per init_var'd Var.
    std::uint32_t reserve = 1u << 16;
    // Allocator chunk size (see reclaim/bw_allocator.hpp).
    std::uint32_t chunk = 16;
    // Retired descriptors a context accumulates before scanning the
    // announcement array. 0 = auto (N*k + chunk, which both amortizes the
    // Θ(Nk) scan and guarantees every scan frees at least `chunk` blocks,
    // since at most Nk retirees can be announced). Tests shrink it to force
    // recycling under the model checker.
    std::uint32_t scan_threshold = 0;
  };

  class Var {
   public:
    Var() = default;
    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

   private:
    friend class BwLlscImpl;
    std::atomic<std::uint32_t> buf_{kNone};  // current descriptor index
  };

  struct Keep {
    std::uint32_t desc = kNone;
    unsigned slot = 0;
  };

  class ThreadCtx {
   public:
    ThreadCtx(ThreadCtx&& other) noexcept
        : domain_(other.domain_),
          pid_(other.pid_),
          stack_(std::move(other.stack_)),
          alloc_(std::move(other.alloc_)),
          limbo_(std::move(other.limbo_)),
          scratch_(std::move(other.scratch_)) {
      other.domain_ = nullptr;
    }
    ThreadCtx(const ThreadCtx&) = delete;
    ThreadCtx& operator=(const ThreadCtx&) = delete;
    ThreadCtx& operator=(ThreadCtx&&) = delete;

    // A context may die with retired-but-announced descriptors in limbo
    // (another process's LL may still hold them). They are parked on the
    // domain's orphan stack; any later scan adopts and retires them.
    ~ThreadCtx() {
      if (domain_ == nullptr) return;
      MOIR_ASSERT_MSG(stack_.available() == domain_->k_,
                      "ThreadCtx destroyed with an open LL-SC sequence");
      for (unsigned s = 0; s < domain_->k_; ++s) {
        domain_->announce(pid_, s).store(kNone, std::memory_order_seq_cst);
      }
      for (const std::uint32_t d : limbo_) domain_->push_orphan(d);
      limbo_.clear();
      domain_->registry_.release_process(pid_);
    }

    unsigned pid() const { return pid_; }

   private:
    friend class BwLlscImpl;
    ThreadCtx(BwLlscImpl* domain, unsigned pid, unsigned k,
              typename Pool::ThreadCtx alloc)
        : domain_(domain), pid_(pid), stack_(k), alloc_(std::move(alloc)) {}

    BwLlscImpl* domain_;
    unsigned pid_;
    SlotStack stack_;
    typename Pool::ThreadCtx alloc_;
    std::vector<std::uint32_t> limbo_;    // retired, not yet proven safe
    std::vector<std::uint32_t> scratch_;  // scan's announcement snapshot
  };

  // `n_processes` = N concurrent contexts, `k` = max concurrent LL-SC
  // sequences per context (each needs an announcement slot).
  explicit BwLlscImpl(unsigned n_processes, unsigned k = 2, Config cfg = {})
      : n_(n_processes),
        k_(k),
        nk_(n_processes * k),
        threshold_(cfg.scan_threshold != 0 ? cfg.scan_threshold
                                           : nk_ + cfg.chunk),
        registry_(n_processes),
        ann_(std::make_unique<std::atomic<std::uint32_t>[]>(nk_)),
        // Worst case per context: a full limbo, a full allocator cache, one
        // in-flight descriptor per sequence — on top of one installed
        // descriptor per reserved Var.
        pool_(cfg.reserve + n_processes * (threshold_ + 3 * cfg.chunk + k + 1),
              [](Descriptor&) {}, cfg.chunk, /*poison=*/false),
        orphan_links_(std::make_unique<std::atomic<std::uint32_t>[]>(
            pool_.capacity())) {
    MOIR_ASSERT(n_processes >= 1 && k >= 1);
    MOIR_ASSERT_MSG(pool_.capacity() < kNone,
                    "descriptor pool too large for 32-bit indices");
    for (unsigned i = 0; i < nk_; ++i) {
      ann_[i].store(kNone, std::memory_order_relaxed);
    }
  }

  ThreadCtx make_ctx() {
    return ThreadCtx(this, registry_.register_process(), k_, pool_.make_ctx());
  }

  // Quiescent-only, matching every other substrate's init_var contract. A
  // re-init reuses the installed descriptor in place (bumping its seq so
  // any straggling context-free reader revalidates).
  void init_var(Var& var, value_type initial) {
    MOIR_ASSERT(initial <= max_value());
    std::uint32_t d = var.buf_.load(std::memory_order_relaxed);
    if (d == kNone) {
      const auto fresh = pool_.alloc();
      MOIR_ASSERT_MSG(fresh.has_value(),
                      "descriptor pool exhausted in init_var; raise "
                      "Config::reserve above the number of Vars");
      d = *fresh;
    }
    Descriptor& desc = pool_.node(d);
    const std::uint64_t s = desc.seq.load(std::memory_order_relaxed);
    desc.seq.store(s + 1, std::memory_order_relaxed);
    desc.value.store(initial, std::memory_order_release);
    desc.seq.store(s + 2, std::memory_order_release);
    var.buf_.store(d, std::memory_order_seq_cst);
  }

  // LL: read the descriptor pointer, announce it, and re-read the pointer
  // to close the window (the hazard-pointer handshake). Once the re-read
  // confirms the announcement, the descriptor cannot be recycled until this
  // sequence ends, so the dereference — and every later pointer comparison
  // in vl()/sc() — is ABA-free.
  value_type ll(ThreadCtx& ctx, const Var& var, Keep& keep) {
    keep.slot = ctx.stack_.pop();
    MOIR_YIELD_READ(&var);
    std::uint32_t d = var.buf_.load(std::memory_order_seq_cst);
    if constexpr (!SkipAnnounce) {
      std::atomic<std::uint32_t>& ann = announce(ctx.pid_, keep.slot);
      for (;;) {
        MOIR_YIELD_WRITE(&ann);
        ann.store(d, std::memory_order_seq_cst);
        stats::count(stats::Id::kBwAnnounce, 1, &var);
        MOIR_YIELD_READ(&var);
        const std::uint32_t cur = var.buf_.load(std::memory_order_seq_cst);
        if (cur == d) break;
        // A retry implies a concurrent SC installed `cur`: lock-free.
        stats::count(stats::Id::kBwHelp, 1, &var);
        d = cur;
      }
    }
    keep.desc = d;
    MOIR_YIELD_READ(&pool_.node(d));
    return pool_.node(d).value.load(std::memory_order_acquire);
  }

  // VL: one load. The announced descriptor cannot have been recycled, so
  // pointer equality is exactly "no successful SC since my LL". Must not
  // touch the slot or announcement: callers may vl() a closed sequence.
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    MOIR_YIELD_READ(&var);
    return var.buf_.load(std::memory_order_seq_cst) == keep.desc;
  }

  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep, value_type newval) {
    MOIR_ASSERT(newval <= max_value());
    const std::uint32_t nd = alloc_desc(ctx);
    Descriptor& desc = pool_.node(nd);
    // Seqlock rewrite: odd seq -> value -> even seq. `value` is a release
    // store so a context-free reader that sees the new value also sees the
    // odd seq (and therefore revalidates); the even store releases the
    // value to readers that first see the new seq.
    MOIR_YIELD_WRITE(&desc);
    const std::uint64_t s = desc.seq.load(std::memory_order_relaxed);
    desc.seq.store(s + 1, std::memory_order_relaxed);
    desc.value.store(newval, std::memory_order_release);
    desc.seq.store(s + 2, std::memory_order_release);

    MOIR_YIELD_STEP(::moir::testing::StepInfo::update(&var).also_write(
        &announce(ctx.pid_, keep.slot)));
    std::uint32_t expected = keep.desc;
    const bool ok = var.buf_.compare_exchange_strong(
        expected, nd, std::memory_order_seq_cst, std::memory_order_seq_cst);
    // Close the sequence only AFTER the CAS: clearing the announcement
    // first would let a scan recycle keep.desc and a concurrent SC
    // re-install it, making the CAS succeed spuriously (ABA).
    announce(ctx.pid_, keep.slot).store(kNone, std::memory_order_release);
    ctx.stack_.push(keep.slot);
    if (ok) {
      retire(ctx, keep.desc);
    } else {
      pool_.free(ctx.alloc_, nd);  // never published; nobody saw it
    }
    stats::count(ok ? stats::Id::kScSuccess : stats::Id::kScFail, 1, &var);
    return ok;
  }

  // CL: abandon the sequence, releasing its announcement slot.
  void cl(ThreadCtx& ctx, const Keep& keep) {
    std::atomic<std::uint32_t>& ann = announce(ctx.pid_, keep.slot);
    MOIR_YIELD_WRITE(&ann);
    ann.store(kNone, std::memory_order_release);
    ctx.stack_.push(keep.slot);
  }

  // Context-free read: no announcement slot, so no protection against the
  // descriptor being recycled mid-read — instead, validate. The value is
  // correct if (a) seq was even and unchanged around the value load: no
  // rewrite raced us, so `v` is the value some tenure of descriptor `d`
  // published; and (b) the variable still holds `d` afterwards: because the
  // buf re-read is seq_cst-after the install CAS it observes, every rewrite
  // that install released happens-before our seq/value loads — a *stale*
  // seq/value pair with a *fresh* install is impossible, so the stable pair
  // we read is the installed tenure's, and `v` was this variable's value at
  // the re-read. Returning first-iteration values when run solo keeps the
  // DFS explorer loop-free: every retry implies another thread's install or
  // rewrite step in between.
  value_type read(const Var& var) const {
    for (;;) {
      MOIR_YIELD_READ(&var);
      const std::uint32_t d = var.buf_.load(std::memory_order_seq_cst);
      const Descriptor& desc = pool_.node(d);
      MOIR_YIELD_READ(&desc);
      const std::uint64_t s1 = desc.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) {
        stats::count(stats::Id::kBwHelp, 1, &var);
        continue;  // mid-rewrite: d was recycled; re-read the pointer
      }
      const std::uint64_t v = desc.value.load(std::memory_order_acquire);
      MOIR_YIELD_STEP(
          ::moir::testing::StepInfo::read(&desc).also_read(&var));
      if (desc.seq.load(std::memory_order_relaxed) == s1 &&
          var.buf_.load(std::memory_order_seq_cst) == d) {
        return v;
      }
      stats::count(stats::Id::kBwHelp, 1, &var);
    }
  }

  value_type max_value() const { return low_mask(ValBits); }
  const char* name() const {
    return SkipAnnounce ? "bw-llsc-no-announce(broken)" : "bw-llsc(figbw)";
  }

  unsigned n_processes() const { return n_; }
  unsigned k() const { return k_; }
  std::uint32_t scan_threshold() const { return threshold_; }

  // --- space accounting (EXPERIMENTS.md E15) ------------------------------
  // Shared overhead: Nk announcement words plus the descriptor pool (two
  // words per descriptor, plus the allocator's two link words per block).
  std::size_t shared_overhead_words(std::size_t /*n_vars*/) const {
    return std::size_t{nk_} + std::size_t{pool_.capacity()} * 4;
  }

  // Quiescent diagnostics for conservation tests: descriptors neither free
  // in the pool nor parked on the orphan stack are installed or in limbo.
  std::uint32_t pool_free_quiescent() const {
    return pool_.free_count_quiescent();
  }
  std::uint32_t orphans_quiescent() const {
    std::uint32_t n = 0;
    std::uint32_t enc = static_cast<std::uint32_t>(
        orphans_.load(std::memory_order_acquire) & 0xffffffffull);
    while (enc != 0 && n <= pool_.capacity()) {
      ++n;
      enc = orphan_next_(enc - 1).load(std::memory_order_relaxed);
    }
    return n;
  }
  std::uint32_t pool_capacity() const { return pool_.capacity(); }

 private:
  std::atomic<std::uint32_t>& announce(unsigned pid, unsigned slot) {
    MOIR_ASSERT(pid < n_ && slot < k_);
    return ann_[pid * k_ + slot];
  }

  std::uint32_t alloc_desc(ThreadCtx& ctx) {
    if (const auto d = pool_.alloc(ctx.alloc_)) return *d;
    // Pool dry: harvest limbo and orphans immediately, then retry.
    scan(ctx);
    if (const auto d = pool_.alloc(ctx.alloc_)) return *d;
    MOIR_ASSERT_MSG(false,
                    "descriptor pool exhausted: more live Vars or in-flight "
                    "sequences than Config::reserve provisioned for");
    return kNone;
  }

  void retire(ThreadCtx& ctx, std::uint32_t d) {
    ctx.limbo_.push_back(d);
    if (ctx.limbo_.size() >= threshold_) scan(ctx);
  }

  // Frees every limbo descriptor no announcement slot currently names.
  // Runs every >= threshold_ retirements; since at most Nk retirees can be
  // announced, each scan frees >= threshold_ - Nk blocks, amortizing its
  // Θ(Nk + |limbo|) cost to O(1) per SC with the default threshold.
  void scan(ThreadCtx& ctx) {
    // Touches the whole announcement array and the orphan stack: declare it
    // opaque rather than enumerate an unbounded footprint.
    MOIR_YIELD_POINT();
    adopt_orphans(ctx);
    ctx.scratch_.clear();
    for (unsigned i = 0; i < nk_; ++i) {
      const std::uint32_t a = ann_[i].load(std::memory_order_seq_cst);
      if (a != kNone) ctx.scratch_.push_back(a);
    }
    std::sort(ctx.scratch_.begin(), ctx.scratch_.end());
    std::uint64_t freed = 0;
    std::size_t kept = 0;
    for (const std::uint32_t d : ctx.limbo_) {
      if (std::binary_search(ctx.scratch_.begin(), ctx.scratch_.end(), d)) {
        ctx.limbo_[kept++] = d;  // still announced: stays in limbo
      } else {
        pool_.free(ctx.alloc_, d);
        ++freed;
      }
    }
    ctx.limbo_.resize(kept);
    if (freed != 0) stats::count(stats::Id::kBwAllocReuse, freed, this);
  }

  // Orphan stack: limbo of destroyed contexts, linked through a side array
  // (descriptors stay untouched), {version:32, idx+1:32} head against ABA.
  std::atomic<std::uint32_t>& orphan_next_(std::uint32_t idx) const {
    return orphan_links_[idx];
  }

  void push_orphan(std::uint32_t d) {
    std::uint64_t head = orphans_.load(std::memory_order_relaxed);
    for (;;) {
      orphan_next_(d).store(static_cast<std::uint32_t>(head & 0xffffffffull),
                            std::memory_order_relaxed);
      const std::uint64_t version = (head >> 32) + 1;
      if (orphans_.compare_exchange_weak(head, (version << 32) | (d + 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void adopt_orphans(ThreadCtx& ctx) {
    std::uint64_t head = orphans_.load(std::memory_order_acquire);
    for (;;) {
      if (static_cast<std::uint32_t>(head & 0xffffffffull) == 0) return;
      const std::uint64_t version = (head >> 32) + 1;
      if (orphans_.compare_exchange_weak(head, version << 32,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        break;
      }
    }
    std::uint32_t enc = static_cast<std::uint32_t>(head & 0xffffffffull);
    while (enc != 0) {
      ctx.limbo_.push_back(enc - 1);
      enc = orphan_next_(enc - 1).load(std::memory_order_relaxed);
    }
  }

  const unsigned n_;
  const unsigned k_;
  const unsigned nk_;
  const std::uint32_t threshold_;
  ProcessRegistry registry_;
  // A: array[0..N-1][0..k-1] of descriptor indices (kNone = empty).
  std::unique_ptr<std::atomic<std::uint32_t>[]> ann_;
  Pool pool_;
  std::atomic<std::uint64_t> orphans_{0};
  // Per-descriptor orphan-stack link (idx+1 encoding), sized with the pool.
  std::unique_ptr<std::atomic<std::uint32_t>[]> orphan_links_;
};

template <unsigned ValBits = 64>
using BwLlsc = BwLlscImpl<ValBits, false>;

// Planted bug (negative control): LL dereferences without announcing.
template <unsigned ValBits = 64>
using BwLlscNoAnnounce = BwLlscImpl<ValBits, true>;

}  // namespace moir
