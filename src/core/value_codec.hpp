// Encoding arbitrary values into the chunk arrays used by WideLlsc.
//
// A W-segment variable carries kChunkBits of payload per segment (the rest
// of each word is tag). This codec treats the payload as a little-endian
// bit stream: chunk i holds bits [i*C, (i+1)*C) of the byte image of the
// value. That lets callers pick W = chunks_needed(sizeof(T), C) and store
// any trivially-copyable T — the paper's answer to "some applications may
// need to store data values that exceed the size of one machine word".
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/assertion.hpp"
#include "util/bits.hpp"

namespace moir {

// Number of chunks of `chunk_bits` needed to carry `bytes` bytes.
constexpr std::size_t chunks_needed(std::size_t bytes, unsigned chunk_bits) {
  return (bytes * 8 + chunk_bits - 1) / chunk_bits;
}

// Encode `bytes` into `chunks` (each receiving `chunk_bits` payload bits).
inline void encode_bytes(std::span<const std::byte> bytes,
                         std::span<std::uint64_t> chunks,
                         unsigned chunk_bits) {
  MOIR_ASSERT(chunk_bits >= 1 && chunk_bits <= 64);
  MOIR_ASSERT(chunks.size() >= chunks_needed(bytes.size(), chunk_bits));
  for (auto& c : chunks) c = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto b = static_cast<std::uint64_t>(bytes[i]);
    for (unsigned bit = 0; bit < 8; ++bit) {
      if ((b >> bit & 1) == 0) continue;
      const std::size_t pos = i * 8 + bit;
      chunks[pos / chunk_bits] |= std::uint64_t{1} << (pos % chunk_bits);
    }
  }
}

// Decode `chunks` back into `bytes` (inverse of encode_bytes).
inline void decode_bytes(std::span<const std::uint64_t> chunks,
                         std::span<std::byte> bytes, unsigned chunk_bits) {
  MOIR_ASSERT(chunk_bits >= 1 && chunk_bits <= 64);
  MOIR_ASSERT(chunks.size() >= chunks_needed(bytes.size(), chunk_bits));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint64_t b = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      const std::size_t pos = i * 8 + bit;
      if ((chunks[pos / chunk_bits] >> (pos % chunk_bits) & 1) != 0) {
        b |= std::uint64_t{1} << bit;
      }
    }
    bytes[i] = static_cast<std::byte>(b);
  }
}

template <typename T>
concept WideStorable = std::is_trivially_copyable_v<T>;

// Encode a trivially-copyable value; `chunks` must have at least
// chunks_needed(sizeof(T), chunk_bits) elements.
template <WideStorable T>
void encode_value(const T& value, std::span<std::uint64_t> chunks,
                  unsigned chunk_bits) {
  std::byte image[sizeof(T)];
  std::memcpy(image, &value, sizeof(T));
  encode_bytes(std::span<const std::byte>(image, sizeof(T)), chunks,
               chunk_bits);
}

template <WideStorable T>
T decode_value(std::span<const std::uint64_t> chunks, unsigned chunk_bits) {
  std::byte image[sizeof(T)];
  decode_bytes(chunks, std::span<std::byte>(image, sizeof(T)), chunk_bits);
  T value;
  std::memcpy(&value, image, sizeof(T));
  return value;
}

}  // namespace moir
