// Figure 3: constant-time, low-overhead, unbounded-tag implementation of
// CAS using RLL and RSC (Theorem 1).
//
// Each word accessed by this CAS holds a {tag, value} pair; the tag detects
// changes to the value field so that the algorithm never depends on RSC
// succeeding — only on RSC *failing* when the word changed, which even the
// weakest hardware LL/SC guarantees. The operation is wait-free provided
// only finitely many spurious failures occur during one invocation, and
// completes in constant time after the last spurious failure (assuming, as
// the paper does, that the tag does not wrap around within one operation).
#pragma once

#include <cstdint>

#include "platform/rll_rsc.hpp"
#include "platform/yield_point.hpp"
#include "core/tagged_word.hpp"
#include "stats/stats.hpp"
#include "util/backoff.hpp"

namespace moir {

template <unsigned ValBits = kDefaultValBits>
class CasFromRllRsc {
 public:
  using Word = TaggedWord<ValBits>;
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;

  // A word accessible by the emulated CAS. Zero space overhead (Theorem 1):
  // this is exactly the one word the application wants, with the tag packed
  // inside it.
  class Var {
   public:
    explicit Var(value_type initial = 0)
        : word_(Word::make(0, initial).raw()) {}

    value_type read() const { return Word::from_raw(word_.read()).value(); }

   private:
    friend class CasFromRllRsc;
    RllWord word_;
  };

  // CAS(addr, old, new) executed by the processor `proc`. Figure 3 verbatim;
  // line numbers in comments refer to the paper.
  static bool cas(Processor& proc, Var& var, value_type old_value,
                  value_type new_value) {
    MOIR_YIELD_READ(&var.word_);
    const Word oldword = Word::from_raw(var.word_.read());       // line 1
    if (oldword.value() != old_value) {                          // line 2
      stats::count(stats::Id::kCasFail, 1, &var);
      return false;
    }
    if (old_value == new_value) {                                // line 3
      stats::count(stats::Id::kCasSuccess, 1, &var);
      return true;
    }
    const Word newword = oldword.successor(new_value);           // line 4
    std::uint64_t retries = 0;
    SpinWait backoff;
    for (;;) {
      // rll/rsc announce their own accesses; no extra yield point needed.
      if (proc.rll(var.word_) != oldword.raw()) {                // line 5
        stats::count(stats::Id::kCasFail, 1, &var);
        stats::record(stats::HistId::kScRetries, retries);
        return false;
      }
      if (proc.rsc(var.word_, newword.raw())) {                  // line 6
        stats::count(stats::Id::kCasSuccess, 1, &var);
        stats::record(stats::HistId::kScRetries, retries);
        return true;
      }
      ++retries;
      stats::count(stats::Id::kRscRetry, 1, &var);
      // Spurious RSC failures cluster under contention (a neighbour's
      // reservation-clearing write): shed it instead of hammering the line.
      backoff.pause();
    }
  }

  static value_type read(const Var& var) {
    MOIR_YIELD_READ(&var.word_);
    return var.read();
  }
};

}  // namespace moir
