// Dynamic membership: join/leave leases for algorithms and pools whose
// population changes while they run.
//
// ProcessRegistry hands out dense ids against a fixed N chosen at
// construction, which matches the paper's "for process p in 0..N-1" framing
// but forces every client to know its peak concurrency up front. The
// dur/ subsystem and the elastic service pool cannot: workers join and
// leave under load, and the figdur substrate sizes its announcement array
// on demand as the high-water mark grows. DynamicRegistry keeps the same
// lock-free versioned-Treiber free list (ids are dense and reused, so
// per-member shared arrays stay small), but treats max_members as a
// generous ceiling rather than a tight bound, exposes the current active
// count alongside the high-water mark, and counts joins/leaves through the
// stats layer so membership churn is observable in bench JSON.
//
// Deliberately a separate type from ProcessRegistry: the stats layer leases
// its shards through ProcessRegistry, so counting inside ProcessRegistry
// itself would recurse. DynamicRegistry is never used by stats, which makes
// the kRegJoin/kRegLeave counts here safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "stats/stats.hpp"
#include "util/assertion.hpp"

namespace moir {

class DynamicRegistry {
 public:
  explicit DynamicRegistry(unsigned max_members = 1024)
      : max_members_(max_members),
        free_next_(new std::atomic<std::uint32_t>[max_members]) {}

  // Leases a dense member id, preferring ones released by leave(). Ids are
  // stable while held; per-member shared state may be indexed by them.
  unsigned join() {
    std::uint64_t head = free_head_.load(std::memory_order_acquire);
    while ((head & 0xffffffffull) != 0) {
      const unsigned id = static_cast<unsigned>(head & 0xffffffffull) - 1;
      const std::uint64_t version = (head >> 32) + 1;
      const std::uint64_t next =
          (version << 32) | free_next_[id].load(std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(head, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        active_.fetch_add(1, std::memory_order_relaxed);
        stats::count(stats::Id::kRegJoin, 1, this);
        return id;
      }
    }
    const unsigned id = next_.fetch_add(1, std::memory_order_relaxed);
    MOIR_ASSERT_MSG(id < max_members_,
                    "more members joined than the registry ceiling allows");
    active_.fetch_add(1, std::memory_order_relaxed);
    stats::count(stats::Id::kRegJoin, 1, this);
    return id;
  }

  // Returns a lease. The member must have quiesced any shared state indexed
  // by the id before leaving; the id is immediately reusable by a joiner.
  void leave(unsigned id) {
    MOIR_ASSERT_MSG(id < next_.load(std::memory_order_relaxed),
                    "leaving with an id this registry never assigned");
    std::uint64_t head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      free_next_[id].store(static_cast<std::uint32_t>(head & 0xffffffffull),
                           std::memory_order_relaxed);
      const std::uint64_t version = (head >> 32) + 1;
      if (free_head_.compare_exchange_weak(head, (version << 32) | (id + 1),
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        active_.fetch_sub(1, std::memory_order_relaxed);
        stats::count(stats::Id::kRegLeave, 1, this);
        return;
      }
    }
  }

  // Members currently holding a lease. Advisory under concurrency (a join
  // racing the load may or may not be counted) but exact at quiescence;
  // the elastic pool uses it for scaling decisions, tests for invariants.
  unsigned active() const { return active_.load(std::memory_order_relaxed); }

  // High-water mark: ids ever minted (leaves don't lower it). Per-member
  // shared arrays must be valid over [0, high_water()).
  unsigned high_water() const {
    return next_.load(std::memory_order_relaxed);
  }

  unsigned max_members() const { return max_members_; }

 private:
  const unsigned max_members_;
  std::atomic<unsigned> next_{0};
  std::atomic<unsigned> active_{0};
  // Free list head: {version:32, id+1:32}; low half 0 means empty.
  std::atomic<std::uint64_t> free_head_{0};
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_next_;
};

}  // namespace moir
