// Figure 4: constant-time, low-overhead, unbounded-tag implementation of
// LL/VL/SC using CAS (Theorem 2).
//
// This is the paper's key interface move: LL receives a pointer to a
// private `keep` word, stores the {tag, value} it read there, and VL/SC
// receive that word back. Because the caller supplies the storage (normally
// on its stack), the implementation needs no per-variable or per-process
// bookkeeping — zero reserved space — and any number of LL-SC sequences may
// run concurrently, including several in one process.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/tagged_word.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"

namespace moir {

template <unsigned ValBits = kDefaultValBits>
class LlscFromCas {
 public:
  using Word = TaggedWord<ValBits>;
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;

  // The private word the caller passes to ll() and back to vl()/sc().
  using Keep = Word;

  class Var {
   public:
    explicit Var(value_type initial = 0)
        : word_(Word::make(0, initial).raw()) {}

    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

    value_type read() const {
      return Word::from_raw(word_.load(std::memory_order_seq_cst)).value();
    }

   private:
    friend class LlscFromCas;
    std::atomic<std::uint64_t> word_;
  };

  // LL(addr, keep): *keep := *addr; return keep->val   (lines 1-2)
  // Yield points precede the accesses they announce (see yield_point.hpp);
  // &var is the exploration identity of this variable's word.
  static value_type ll(const Var& var, Keep& keep) {
    MOIR_YIELD_READ(&var);
    keep = Word::from_raw(var.word_.load(std::memory_order_seq_cst));
    return keep.value();
  }

  // VL(addr, keep): return keep = *addr                (line 3)
  static bool vl(const Var& var, const Keep& keep) {
    MOIR_YIELD_READ(&var);
    return var.word_.load(std::memory_order_seq_cst) == keep.raw();
  }

  // SC(addr, keep, new): return CAS(addr, keep, (keep.tag+1, new)) (line 4)
  static bool sc(Var& var, const Keep& keep, value_type new_value) {
    MOIR_YIELD_UPDATE(&var);
    std::uint64_t expected = keep.raw();
    const bool ok = var.word_.compare_exchange_strong(
        expected, keep.successor(new_value).raw(), std::memory_order_seq_cst);
    stats::count(ok ? stats::Id::kScSuccess : stats::Id::kScFail, 1, &var);
    return ok;
  }
};

}  // namespace moir
