#include "core/process_registry.hpp"

#include "util/assertion.hpp"

namespace moir {

unsigned ProcessRegistry::register_process() {
  const unsigned id = next_.fetch_add(1, std::memory_order_relaxed);
  MOIR_ASSERT_MSG(id < max_processes_,
                  "more threads registered than the registry was sized for");
  return id;
}

unsigned this_process_id(ProcessRegistry& registry) {
  thread_local ProcessRegistry* bound = nullptr;
  thread_local unsigned id = 0;
  if (bound != &registry) {
    bound = &registry;
    id = registry.register_process();
  }
  return id;
}

}  // namespace moir
