#include "core/process_registry.hpp"

#include "util/assertion.hpp"

namespace moir {

unsigned ProcessRegistry::register_process() {
  // Pop a released id first. The version tag in the head word makes the
  // CAS immune to ABA from concurrent pop/push/pop of the same id.
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  while ((head & 0xffffffffull) != 0) {
    const unsigned id = static_cast<unsigned>(head & 0xffffffffull) - 1;
    const std::uint64_t version = (head >> 32) + 1;
    const std::uint64_t next =
        (version << 32) | free_next_[id].load(std::memory_order_relaxed);
    if (free_head_.compare_exchange_weak(head, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return id;
    }
  }
  const unsigned id = next_.fetch_add(1, std::memory_order_relaxed);
  MOIR_ASSERT_MSG(id < max_processes_,
                  "more threads registered than the registry was sized for");
  return id;
}

void ProcessRegistry::release_process(unsigned id) {
  MOIR_ASSERT_MSG(id < next_.load(std::memory_order_relaxed),
                  "releasing an id this registry never assigned");
  std::uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    free_next_[id].store(static_cast<std::uint32_t>(head & 0xffffffffull),
                         std::memory_order_relaxed);
    const std::uint64_t version = (head >> 32) + 1;
    if (free_head_.compare_exchange_weak(head, (version << 32) | (id + 1),
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

unsigned this_process_id(ProcessRegistry& registry) {
  thread_local ProcessRegistry* bound = nullptr;
  thread_local unsigned id = 0;
  if (bound != &registry) {
    bound = &registry;
    id = registry.register_process();
  }
  return id;
}

}  // namespace moir
