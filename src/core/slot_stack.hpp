// Figure 7's private stack S of announcement slots.
//
// Each process may run up to k concurrent LL-SC sequences; each active
// sequence occupies one of the k slots of the process's row of the shared
// announcement array A. The stack hands slots out (LL pops) and takes them
// back (SC/CL push). It is strictly private to one process, so it needs no
// synchronization — just bounds discipline, which we assert.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assertion.hpp"

namespace moir {

class SlotStack {
 public:
  explicit SlotStack(unsigned k) : slots_(k) {
    // initially {0, ..., k-1}; pop order is irrelevant to correctness.
    for (unsigned i = 0; i < k; ++i) slots_[i] = k - 1 - i;
  }

  unsigned pop() {
    MOIR_ASSERT_MSG(!slots_.empty(),
                    "more concurrent LL-SC sequences than the bound k; "
                    "increase k or CL abandoned sequences");
    const unsigned s = slots_.back();
    slots_.pop_back();
    return s;
  }

  void push(unsigned slot) {
    MOIR_ASSERT_MSG(slots_.size() < slots_.capacity() ||
                        slots_.size() < slots_.capacity() + 1,
                    "slot pushed twice");
    slots_.push_back(slot);
  }

  std::size_t available() const { return slots_.size(); }

 private:
  std::vector<unsigned> slots_;
};

}  // namespace moir
