// TaggedWord: the paper's `wordtype = record tag: tagtype; val: valtype end`.
//
// The one-word algorithms (Figures 3-5) store a modification tag and the
// application value together in one machine word. The split is the
// trade-off the paper discusses in Section 1: more tag bits push the
// wraparound horizon out (48 tag bits ~= nine years at 10^6 writes/s), fewer
// tag bits leave more room for data. ValBits is a template parameter so the
// whole library — and bench_wraparound, which deliberately provokes
// wraparound with tiny tags — can explore the trade-off.
#pragma once

#include <compare>
#include <cstdint>

#include "util/assertion.hpp"
#include "util/bits.hpp"

namespace moir {

template <unsigned ValBits>
class TaggedWord {
  static_assert(ValBits >= 1 && ValBits <= 63,
                "value field must leave at least one tag bit");

 public:
  static constexpr unsigned kValBits = ValBits;
  static constexpr unsigned kTagBits = 64 - ValBits;
  static constexpr std::uint64_t kMaxValue = low_mask(ValBits);
  static constexpr std::uint64_t kMaxTag = low_mask(kTagBits);

  using value_type = std::uint64_t;

  constexpr TaggedWord() = default;

  static constexpr TaggedWord make(std::uint64_t tag, std::uint64_t val) {
    MOIR_ASSERT_MSG(val <= kMaxValue, "value does not fit the value field");
    return TaggedWord((((tag & kMaxTag) << ValBits) | val));
  }

  static constexpr TaggedWord from_raw(std::uint64_t raw) {
    return TaggedWord(raw);
  }

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr std::uint64_t tag() const { return raw_ >> ValBits; }
  constexpr std::uint64_t value() const { return raw_ & kMaxValue; }

  // (tag oplus 1, newval) — the word every successful SC/CAS installs.
  constexpr TaggedWord successor(std::uint64_t newval) const {
    return make(add_mod_pow2(tag(), 1, kTagBits), newval);
  }

  friend constexpr bool operator==(TaggedWord, TaggedWord) = default;

 private:
  explicit constexpr TaggedWord(std::uint64_t raw) : raw_(raw) {}

  std::uint64_t raw_ = 0;
};

// The library-wide default split, following the paper's 64-bit example:
// 48-bit tag, 16-bit value.
inline constexpr unsigned kDefaultValBits = 16;

}  // namespace moir
