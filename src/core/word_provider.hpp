// Word providers: the CAS-able machine word abstracted.
//
// Figures 6 and 7 are presented in the paper in terms of CAS "for
// simplicity of presentation", with the remark that "in each case, the
// technique in Figure 3 can be used to acquire the same result using RLL
// and RSC". This header makes that remark executable: WideLlsc and
// BoundedLlsc are templated over a WordProvider, and instantiating them
// with RllRscWordProvider yields the Theorem 4/5 constructions for
// machines that have only restricted LL/SC.
//
// The RLL/RSC-backed CAS here is Figure 3's retry loop WITHOUT the extra
// tag of Figure 3 proper: those algorithms' words already embed their own
// freshness information (Figure 6's header/segment tags, Figure 7's
// {tag, cnt, pid} triple), so equality of the full word already implies
// "unchanged" to exactly the degree each proof requires.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "platform/dwcas.hpp"
#include "platform/fault.hpp"
#include "platform/rll_rsc.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/backoff.hpp"

namespace moir {

template <typename P>
concept WordProvider =
    requires(P p, typename P::Word& w, typename P::Ctx& ctx,
             std::uint64_t v, std::uint64_t& expected) {
      { w.load() } -> std::same_as<std::uint64_t>;
      { w.init(v) };
      { w.cas(ctx, expected, v) } -> std::same_as<bool>;
      { p.make_ctx() } -> std::same_as<typename P::Ctx>;
      { p.name() } -> std::convertible_to<const char*>;
    };

// Hardware CAS (std::atomic). The default provider.
class NativeWordProvider {
 public:
  struct Ctx {};

  class Word {
   public:
    Word() = default;
    Word(const Word&) = delete;
    Word& operator=(const Word&) = delete;

    std::uint64_t load() const {
      return word_.load(std::memory_order_seq_cst);
    }

    // Initialization only: not atomic with respect to concurrent CASes.
    void init(std::uint64_t v) {
      word_.store(v, std::memory_order_seq_cst);
    }

    // On failure, `expected` receives the observed value (as std::atomic).
    bool cas(Ctx&, std::uint64_t& expected, std::uint64_t desired) {
      return word_.compare_exchange_strong(expected, desired,
                                           std::memory_order_seq_cst);
    }

   private:
    std::atomic<std::uint64_t> word_{0};
  };

  Ctx make_ctx() { return {}; }
  const char* name() const { return "native-cas"; }
};

// CAS emulated from RLL/RSC via Figure 3's loop. Wait-free provided only
// finitely many spurious failures occur during one CAS.
class RllRscWordProvider {
 public:
  explicit RllRscWordProvider(FaultInjector* faults = nullptr)
      : faults_(faults) {}

  struct Ctx {
    explicit Ctx(FaultInjector* faults) : proc(faults) {}
    Processor proc;
  };

  class Word {
   public:
    Word() = default;
    Word(const Word&) = delete;
    Word& operator=(const Word&) = delete;

    std::uint64_t load() const { return word_.read(); }

    void init(std::uint64_t v) { word_.reset_for_init(v); }

    bool cas(Ctx& ctx, std::uint64_t& expected, std::uint64_t desired) {
      SpinWait backoff;
      for (;;) {
        // rll/rsc announce their own accesses; no extra yield point needed.
        const std::uint64_t cur = ctx.proc.rll(word_);   // Figure 3 line 5
        if (cur != expected) {
          expected = cur;
          return false;
        }
        if (ctx.proc.rsc(word_, desired)) return true;   // Figure 3 line 6
        // Spurious RSC failures cluster under contention (a neighbour's
        // reservation-clearing write): shed it instead of hammering the
        // line — same policy as CasFromRllRsc's Figure 3 loop.
        stats::count(stats::Id::kRscRetry, 1, &word_);
        backoff.pause();
      }
    }

   private:
    RllWord word_;
  };

  Ctx make_ctx() { return Ctx(faults_); }
  const char* name() const { return "rllrsc-cas(fig3)"; }

 private:
  FaultInjector* faults_;
};

static_assert(WordProvider<NativeWordProvider>);
static_assert(WordProvider<RllRscWordProvider>);

}  // namespace moir
