// Figure 5: constant-time, low-overhead, unbounded-tag implementation of
// LL/VL/SC directly from the restricted RLL/RSC (Theorem 3).
//
// Composing Figure 4 over Figure 3 would also work, but each layer would
// need its own tag in the word, halving the bits available and therefore
// drastically shortening the wraparound horizon. The direct construction
// uses a single tag: LL snapshots the whole {tag, value} word into `keep`,
// VL re-reads and compares, and SC runs Figure 3's RLL/RSC retry loop from
// the snapshot. bench_fig5_llsc quantifies the tag-budget difference.
#pragma once

#include <cstdint>

#include "core/tagged_word.hpp"
#include "platform/rll_rsc.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/backoff.hpp"

namespace moir {

template <unsigned ValBits = kDefaultValBits>
class LlscFromRllRsc {
 public:
  using Word = TaggedWord<ValBits>;
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;

  using Keep = Word;

  class Var {
   public:
    explicit Var(value_type initial = 0)
        : word_(Word::make(0, initial).raw()) {}

    value_type read() const { return Word::from_raw(word_.read()).value(); }

   private:
    friend class LlscFromRllRsc;
    RllWord word_;
  };

  // LL(addr, keep): *keep := *addr; return keep->val   (lines 1-2)
  // The exploration identity of this variable is its RllWord, matching the
  // announcements rll()/rsc() make internally.
  static value_type ll(const Var& var, Keep& keep) {
    MOIR_YIELD_READ(&var.word_);
    keep = Word::from_raw(var.word_.read());
    return keep.value();
  }

  // VL(addr, keep): return keep = *addr                (line 3)
  static bool vl(const Var& var, const Keep& keep) {
    MOIR_YIELD_READ(&var.word_);
    return var.word_.read() == keep.raw();
  }

  // SC(addr, keep, newval)                             (lines 4-7)
  static bool sc(Processor& proc, Var& var, const Keep& keep,
                 value_type new_value) {
    const Word oldword = keep;                                   // line 4
    const Word newword = keep.successor(new_value);              // line 5
    std::uint64_t retries = 0;
    SpinWait backoff;
    for (;;) {
      // rll/rsc announce their own accesses; no extra yield point needed.
      if (proc.rll(var.word_) != oldword.raw()) {                // line 6
        stats::count(stats::Id::kScFail, 1, &var);
        stats::record(stats::HistId::kScRetries, retries);
        return false;
      }
      if (proc.rsc(var.word_, newword.raw())) {                  // line 7
        stats::count(stats::Id::kScSuccess, 1, &var);
        stats::record(stats::HistId::kScRetries, retries);
        return true;
      }
      // Only spurious RSC failures reach here: a genuine change to the
      // word makes the next rll() miss oldword and return false above.
      ++retries;
      stats::count(stats::Id::kRscRetry, 1, &var);
      backoff.pause();
    }
  }
};

}  // namespace moir
