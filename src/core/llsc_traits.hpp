// Uniform substrate interface for small (one-word) LL/VL/SC.
//
// The paper's point is that algorithm designers should be able to write
// against LL/VL/SC and run on whatever a machine provides. We encode that as
// a concept: every consumer in src/nonblocking is templated over a
// SmallLlscSubstrate and runs unchanged on Figure 4 (CAS-backed), Figure 5
// (RLL/RSC-backed), Figure 7 (bounded tags), the lock-based baseline of the
// paper's footnote 1, or the deliberately ABA-broken naive-CAS strawman.
//
// Protocol: for every ll() the caller must eventually call exactly one of
// sc() or cl() with the same keep. cl() ("cancel LL", Figure 7's CL) is a
// no-op for the substrates that need no per-sequence resources; Figure 7
// uses it to recycle the announcement slot of an abandoned sequence.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>

#include "core/llsc_composed.hpp"
#include "core/llsc_from_cas.hpp"
#include "core/llsc_from_rllrsc.hpp"
#include "platform/fault.hpp"
#include "platform/rll_rsc.hpp"
#include "platform/yield_point.hpp"

namespace moir {

template <typename S>
concept SmallLlscSubstrate =
    requires(S s, typename S::ThreadCtx& ctx, typename S::Var& var,
             typename S::Keep& keep, const typename S::Keep& ckeep,
             std::uint64_t val) {
      { s.ll(ctx, var, keep) } -> std::same_as<std::uint64_t>;
      { s.vl(ctx, var, ckeep) } -> std::same_as<bool>;
      { s.sc(ctx, var, ckeep, val) } -> std::same_as<bool>;
      { s.cl(ctx, ckeep) };
      { s.read(var) } -> std::same_as<std::uint64_t>;
      { s.init_var(var, val) };
      { s.max_value() } -> std::convertible_to<std::uint64_t>;
      { s.name() } -> std::convertible_to<const char*>;
    };

// ---------------------------------------------------------------------------
// Figure 4 as a substrate (CAS-backed, unbounded tag).
// ---------------------------------------------------------------------------
template <unsigned ValBits = kDefaultValBits>
class CasBackedLlsc {
  using Impl = LlscFromCas<ValBits>;

 public:
  using value_type = std::uint64_t;
  using Var = typename Impl::Var;
  using Keep = typename Impl::Keep;
  struct ThreadCtx {};  // stateless: any number of concurrent sequences

  static constexpr unsigned kValBits = ValBits;

  ThreadCtx make_ctx() { return {}; }

  void init_var(Var& var, value_type initial) {
    var.~Var();
    new (&var) Var(initial);
  }

  value_type ll(ThreadCtx&, const Var& var, Keep& keep) const {
    return Impl::ll(var, keep);
  }
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    return Impl::vl(var, keep);
  }
  bool sc(ThreadCtx&, Var& var, const Keep& keep, value_type v) const {
    return Impl::sc(var, keep, v);
  }
  void cl(ThreadCtx&, const Keep&) const {}

  value_type read(const Var& var) const { return var.read(); }
  value_type max_value() const { return Impl::Word::kMaxValue; }
  const char* name() const { return "llsc-from-cas(fig4)"; }
};

// ---------------------------------------------------------------------------
// Figure 5 as a substrate (RLL/RSC-backed, single tag).
// ---------------------------------------------------------------------------
template <unsigned ValBits = kDefaultValBits>
class RllBackedLlsc {
  using Impl = LlscFromRllRsc<ValBits>;

 public:
  using value_type = std::uint64_t;
  using Var = typename Impl::Var;
  using Keep = typename Impl::Keep;

  // Each thread is one "processor" with a single hardware reservation. The
  // algorithm still supports any number of concurrent LL-SC *sequences* per
  // thread, because the reservation is only held inside sc()'s retry loop.
  struct ThreadCtx {
    explicit ThreadCtx(FaultInjector* faults) : proc(faults) {}
    Processor proc;
  };

  static constexpr unsigned kValBits = ValBits;

  explicit RllBackedLlsc(FaultInjector* faults = nullptr) : faults_(faults) {}

  ThreadCtx make_ctx() { return ThreadCtx(faults_); }

  void init_var(Var& var, value_type initial) {
    var.~Var();
    new (&var) Var(initial);
  }

  value_type ll(ThreadCtx&, const Var& var, Keep& keep) const {
    return Impl::ll(var, keep);
  }
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    return Impl::vl(var, keep);
  }
  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep, value_type v) const {
    return Impl::sc(ctx.proc, var, keep, v);
  }
  void cl(ThreadCtx&, const Keep&) const {}

  value_type read(const Var& var) const { return var.read(); }
  value_type max_value() const { return Impl::Word::kMaxValue; }
  const char* name() const { return "llsc-from-rllrsc(fig5)"; }

 private:
  FaultInjector* faults_;
};

// ---------------------------------------------------------------------------
// The two-tag composition (Figure 4 over Figure 3) as a substrate — correct
// but with a halved tag budget; see core/llsc_composed.hpp.
// ---------------------------------------------------------------------------
template <unsigned ValBits = kDefaultValBits>
class ComposedBackedLlsc {
  using Impl = LlscComposed<ValBits>;

 public:
  using value_type = std::uint64_t;
  using Var = typename Impl::Var;
  using Keep = typename Impl::Keep;

  struct ThreadCtx {
    explicit ThreadCtx(FaultInjector* faults) : proc(faults) {}
    Processor proc;
  };

  static constexpr unsigned kValBits = ValBits;

  explicit ComposedBackedLlsc(FaultInjector* faults = nullptr)
      : faults_(faults) {}

  ThreadCtx make_ctx() { return ThreadCtx(faults_); }

  void init_var(Var& var, value_type initial) {
    var.~Var();
    new (&var) Var(initial);
  }

  value_type ll(ThreadCtx&, const Var& var, Keep& keep) const {
    return Impl::ll(var, keep);
  }
  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    return Impl::vl(var, keep);
  }
  bool sc(ThreadCtx& ctx, Var& var, const Keep& keep, value_type v) const {
    return Impl::sc(ctx.proc, var, keep, v);
  }
  void cl(ThreadCtx&, const Keep&) const {}

  value_type read(const Var& var) const { return Impl::read(var); }
  value_type max_value() const { return Impl::kMaxValue; }
  const char* name() const { return "llsc-composed(fig4-over-fig3)"; }

 private:
  FaultInjector* faults_;
};

// ---------------------------------------------------------------------------
// Baseline: LL/SC from a per-variable lock (the paper's footnote 1 — "this
// defeats the purpose of the non-blocking algorithms that use them").
// Benchmarks use it to show what the emulations buy.
// ---------------------------------------------------------------------------
template <unsigned ValBits = kDefaultValBits>
class LockBackedLlsc {
 public:
  using value_type = std::uint64_t;

  struct Keep {
    std::uint64_t seq = 0;
  };

  class Var {
   public:
    Var() = default;

   private:
    friend class LockBackedLlsc;
    mutable std::mutex mutex_;
    std::uint64_t value_ = 0;
    std::uint64_t seq_ = 0;  // bumped by every successful SC
  };

  struct ThreadCtx {};

  static constexpr unsigned kValBits = ValBits;

  ThreadCtx make_ctx() { return {}; }

  void init_var(Var& var, value_type initial) {
    std::lock_guard<std::mutex> g(var.mutex_);
    var.value_ = initial;
    var.seq_ = 0;
  }

  value_type ll(ThreadCtx&, const Var& var, Keep& keep) const {
    std::lock_guard<std::mutex> g(var.mutex_);
    keep.seq = var.seq_;
    return var.value_;
  }

  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    std::lock_guard<std::mutex> g(var.mutex_);
    return var.seq_ == keep.seq;
  }

  bool sc(ThreadCtx&, Var& var, const Keep& keep, value_type v) const {
    std::lock_guard<std::mutex> g(var.mutex_);
    if (var.seq_ != keep.seq) return false;
    var.value_ = v;
    ++var.seq_;
    return true;
  }

  void cl(ThreadCtx&, const Keep&) const {}

  value_type read(const Var& var) const {
    std::lock_guard<std::mutex> g(var.mutex_);
    return var.value_;
  }

  value_type max_value() const { return low_mask(ValBits); }
  const char* name() const { return "llsc-from-lock(baseline)"; }
};

// ---------------------------------------------------------------------------
// Strawman: LL = load, SC = one value-only CAS, no tag. This is what a
// designer might naively write; it is ABA-unsafe, and
// tests/test_aba.cpp demonstrates the resulting lost-update on it while the
// paper's constructions pass. Useful in benches as the "raw CAS cost" floor.
// ---------------------------------------------------------------------------
template <unsigned ValBits = kDefaultValBits>
class NaiveCasLlsc {
 public:
  using value_type = std::uint64_t;

  struct Keep {
    std::uint64_t value = 0;
  };

  class Var {
   public:
    Var() : word_(0) {}

   private:
    friend class NaiveCasLlsc;
    std::atomic<std::uint64_t> word_;
  };

  struct ThreadCtx {};

  static constexpr unsigned kValBits = ValBits;

  ThreadCtx make_ctx() { return {}; }

  void init_var(Var& var, value_type initial) {
    var.word_.store(initial, std::memory_order_seq_cst);
  }

  value_type ll(ThreadCtx&, const Var& var, Keep& keep) const {
    MOIR_YIELD_READ(&var);
    keep.value = var.word_.load(std::memory_order_seq_cst);
    return keep.value;
  }

  bool vl(ThreadCtx&, const Var& var, const Keep& keep) const {
    MOIR_YIELD_READ(&var);
    return var.word_.load(std::memory_order_seq_cst) == keep.value;
  }

  bool sc(ThreadCtx&, Var& var, const Keep& keep, value_type v) const {
    MOIR_YIELD_UPDATE(&var);
    std::uint64_t expected = keep.value;
    return var.word_.compare_exchange_strong(expected, v,
                                             std::memory_order_seq_cst);
  }

  void cl(ThreadCtx&, const Keep&) const {}

  value_type read(const Var& var) const {
    return var.word_.load(std::memory_order_seq_cst);
  }

  value_type max_value() const { return low_mask(ValBits); }
  const char* name() const { return "naive-cas(aba-unsafe)"; }
};

}  // namespace moir
