// Figure 7's private tag queue Q.
//
// Each process owns a queue that always contains a permutation of all
// 2Nk+1 tag values. The algorithm performs three queue operations per SC,
// all of which must be O(1) for Theorem 5's constant-time claim:
//   * delete(Q, t) + enqueue(Q, t)  — move an announced tag to the back;
//   * dequeue(Q) + enqueue(Q, t)    — rotate, yielding the next tag to use.
// As the paper notes, a doubly-linked list plus a static index table giving
// each tag's node makes delete-by-value constant time. Since the value set
// is exactly 0..capacity-1 and membership is invariant, the "nodes" are two
// plain arrays (next/prev indexed by tag) — no allocation, no pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assertion.hpp"

namespace moir {

class TagQueue {
 public:
  // Queue over values 0..capacity-1, initially in ascending order.
  explicit TagQueue(std::uint32_t capacity)
      : next_(capacity), prev_(capacity), head_(0), tail_(capacity - 1) {
    MOIR_ASSERT(capacity >= 2);
    for (std::uint32_t t = 0; t < capacity; ++t) {
      next_[t] = t + 1 == capacity ? kNil : t + 1;
      prev_[t] = t == 0 ? kNil : t - 1;
    }
  }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(next_.size());
  }

  std::uint32_t front() const { return head_; }

  // delete(Q, t); enqueue(Q, t) — move t to the back. O(1).
  void move_to_back(std::uint32_t t) {
    MOIR_ASSERT(t < capacity());
    if (tail_ == t) return;
    // unlink
    const std::uint32_t p = prev_[t];
    const std::uint32_t n = next_[t];
    if (p == kNil) {
      head_ = n;
    } else {
      next_[p] = n;
    }
    prev_[n] = p;  // n != kNil because t != tail_
    // append
    next_[tail_] = t;
    prev_[t] = tail_;
    next_[t] = kNil;
    tail_ = t;
  }

  // t := dequeue(Q); enqueue(Q, t); return t — rotate. O(1).
  std::uint32_t rotate() {
    const std::uint32_t t = head_;
    move_to_back(t);
    return t;
  }

  // Test support: the queue contents front-to-back. O(capacity).
  std::vector<std::uint32_t> snapshot() const {
    std::vector<std::uint32_t> out;
    out.reserve(capacity());
    for (std::uint32_t t = head_; t != kNil; t = next_[t]) out.push_back(t);
    return out;
  }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::uint32_t head_;
  std::uint32_t tail_;
};

}  // namespace moir
