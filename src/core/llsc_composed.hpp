// The layered construction the paper argues AGAINST: Figure 4's LL/VL/SC
// stacked on Figure 3's CAS-from-RLL/RSC.
//
// It is correct (Theorems 1+2 compose), but the word must carry TWO tags —
// one consumed by each layer — so the tag-bits budget halves and the
// wraparound horizon collapses (bench_fig5_llsc quantifies this: at memory
// speed, from centuries to under a second). Figure 5 exists precisely to
// avoid this; the composed construction is provided for completeness and
// as the experimental baseline for E3.
//
// Word layout: [inner tag: InnerTagBits | outer tag: OuterTagBits | value].
// The inner tag belongs to the Figure-3 CAS; the outer tag to the
// Figure-4 LL/SC on top of it.
#pragma once

#include <cstdint>

#include "core/cas_from_rllrsc.hpp"
#include "core/tagged_word.hpp"
#include "platform/rll_rsc.hpp"
#include "platform/yield_point.hpp"
#include "util/bits.hpp"

namespace moir {

template <unsigned ValBits = 16, unsigned OuterTagBits = (64 - ValBits) / 2>
class LlscComposed {
  static_assert(ValBits + OuterTagBits < 64,
                "must leave at least one bit for the inner tag");

 public:
  // Inner CAS treats [outer tag | value] as its opaque "value".
  using Inner = CasFromRllRsc<ValBits + OuterTagBits>;
  using value_type = std::uint64_t;

  static constexpr unsigned kValBits = ValBits;
  static constexpr unsigned kOuterTagBits = OuterTagBits;
  static constexpr unsigned kInnerTagBits = 64 - ValBits - OuterTagBits;
  static constexpr std::uint64_t kMaxValue = low_mask(ValBits);

  struct Keep {
    std::uint64_t packed = 0;  // outer tag || value
  };

  using Var = typename Inner::Var;

  // LL: read the inner word's value field = [outer tag | value].
  // Inner::read announces its own access; no extra yield point needed.
  static value_type ll(const Var& var, Keep& keep) {
    keep.packed = Inner::read(var);
    return keep.packed & kMaxValue;
  }

  static bool vl(const Var& var, const Keep& keep) {
    return Inner::read(var) == keep.packed;
  }

  // SC: Figure 4's single CAS, provided by Figure 3.
  static bool sc(Processor& proc, Var& var, const Keep& keep,
                 value_type newval) {
    const std::uint64_t outer_tag = keep.packed >> ValBits;
    const std::uint64_t next =
        (add_mod_pow2(outer_tag, 1, OuterTagBits) << ValBits) |
        (newval & kMaxValue);
    return Inner::cas(proc, var, keep.packed, next);
  }

  static value_type read(const Var& var) {
    return Inner::read(var) & kMaxValue;
  }
};

}  // namespace moir
