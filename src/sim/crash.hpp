// Crash injection for the schedule explorer: crash points are yield points.
//
// A full-system crash in the simulated-pmem model (dur/pmem.hpp) has a
// simple operational meaning: at some instant, the durable shadow words are
// all that survives. Instead of teaching the ControlledScheduler a new kind
// of event, the crash is modeled as ONE MORE TRIAL THREAD whose body is a
// single opaque step that captures the crash: it stamps crash_ts from the
// trial's history clock and snapshots the durable image. Because the
// explorer already places every thread's next step at every schedule
// decision, DFS exhaustively tries the crash at every point of every
// interleaving, and PCT samples crash placements exactly like it samples
// preemptions — no new machinery, and the resulting Schedule strings (ms1:)
// replay crash placements byte-for-byte like any other violation.
//
// After the capture the OTHER threads keep running in the volatile world.
// That is deliberate: the volatile continuation never touches the captured
// image, and letting every operation complete gives the durable checker
// (verify/durable.hpp) a response for every operation, which it needs to
// partition the history at crash_ts. The post-crash part of the run is
// simply ignored by the checker (ops invoked after crash_ts are dropped).
//
// check() then: constructs a FRESH instance with the same Config and the
// same init_var sequence (the pmem snapshot contract requires identical
// attach order), restores the image, runs recovery, probes the recovered
// state, and asks DurableLinearizabilityChecker whether the pre-crash
// history explains the probes. One trial therefore verifies one (schedule,
// crash point) pair end to end; the explorer's tree walks all of them.
#pragma once

#include <functional>
#include <utility>

#include "platform/yield_point.hpp"
#include "sim/explore.hpp"

namespace moir::testing {

// Appends a crash thread to `trial`. `capture` runs as one opaque step (no
// other thread runs inside it): stamp the clock, snapshot durable state.
// The explorer decides where that step lands; bodies added earlier keep
// their thread ids, so existing ms1: schedules for the crash-free trial
// stay meaningful.
inline ScheduleExplorer::Trial with_crash(ScheduleExplorer::Trial trial,
                                          std::function<void()> capture) {
  trial.bodies.push_back([capture = std::move(capture)] {
    // Opaque on purpose: the capture reads every durable word, which
    // conflicts with all persist steps — and must, or sleep-set reduction
    // would prune crash placements that differ durably.
    MOIR_YIELD_POINT();
    capture();
  });
  return trial;
}

}  // namespace moir::testing
