// Schedule exploration policies over the ControlledScheduler.
//
// Three ways to walk the schedule tree of a deterministic multi-threaded
// trial, all producing replayable Schedules (sim/schedule.hpp):
//
//  * ScheduleExplorer::explore — stateless depth-first search, optionally
//    with SLEEP-SET partial-order reduction. Sleep sets (Godefroid) prune a
//    branch when the step it would explore was already explored from an
//    earlier sibling and commutes with everything executed since: the
//    pruned interleaving is Mazurkiewicz-equivalent to one already covered.
//    With a valid dependence relation (steps_dependent over the declared
//    yield-point footprints — conservative: any opaque step conflicts with
//    everything), every reachable final state is still visited, so checking
//    a predicate over the final state loses nothing. Reduction soundness
//    additionally requires the instrumentation contract of
//    platform/yield_point.hpp: every shared access covered by the footprint
//    of the yield point that precedes it, thread-private prologues, and
//    accesses whose order is invisible to check() (e.g. per-thread result
//    slots) may be omitted. Enable via ExploreOptions::sleep_sets only for
//    trials that honor the contract.
//
//  * ScheduleExplorer::pct_explore — PCT randomized priority scheduling
//    (Burckhardt et al., ASPLOS'10): each run draws random thread
//    priorities plus d-1 priority-change points; the highest-priority
//    runnable thread always runs. A bug of preemption depth d is found with
//    probability >= 1/(n * k^(d-1)) per run, independent of how deep the
//    schedule tree is — this is what reaches the 3+ thread bugs the DFS
//    budget cannot.
//
//  * ScheduleExplorer::replay — deterministically re-executes one recorded
//    Schedule (e.g. from a failure report).
//
// Requires MOIR_ENABLE_YIELD_POINTS (defined by all test targets).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "sim/controlled_scheduler.hpp"
#include "sim/schedule.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/rng.hpp"

namespace moir::testing {

// On a check() violation, dump the stats event-trace rings (if tracing is
// on) next to the replayable schedule string: the schedule says which
// interleaving failed, the trace says what the algorithms did along it.
inline void on_violation_found(const Schedule& schedule) {
  if (!stats::trace_enabled()) return;
  std::fprintf(stderr, "moir explore: violation on schedule %s\n",
               schedule.str().c_str());
  stats::dump_trace(stderr);
}

struct ExploreOptions {
  std::size_t max_trials = 100000;
  // Enable sleep-set partial-order reduction. The trial must honor the
  // instrumentation contract (see file comment); when in doubt leave off —
  // plain DFS is always sound.
  bool sleep_sets = false;
  // Keep exploring after the first violation (the last one found is kept).
  bool keep_going = false;
};

struct PctOptions {
  std::size_t runs = 1000;
  unsigned depth = 3;             // d: bug depth targeted (d-1 change points)
  std::size_t change_range = 64;  // k: estimated schedule length
  std::uint64_t seed = 0x9e3779b9u;
};

class ScheduleExplorer {
 public:
  struct Result {
    std::size_t trials = 0;
    std::size_t sleep_pruned = 0;  // trials cut short by sleep-set pruning
    bool exhausted = false;        // full (reduced) tree covered in budget
    bool violation_found = false;
    Schedule violating_schedule;   // replayable decision sequence

    std::string schedule_string() const { return violating_schedule.str(); }
  };

  // `make_trial` builds a fresh trial: it returns the worker bodies and a
  // `check` functor run after the trial; check() returning false marks the
  // schedule as violating. Trials must be deterministic functions of the
  // decision sequence (fresh state each call, no wall-clock or global RNG).
  struct Trial {
    std::vector<std::function<void()>> bodies;
    std::function<bool()> check;
  };
  using MakeTrial = std::function<Trial()>;

  // Depth-first search over the schedule tree, optionally sleep-set
  // reduced. Stops early at the first violation unless keep_going.
  static Result explore(const MakeTrial& make_trial,
                        const ExploreOptions& options) {
    Result result;
    std::vector<Node> stack;

    for (;;) {
      if (result.trials >= options.max_trials) return result;
      ++result.trials;

      Trial trial = make_trial();
      Schedule taken;
      bool pruned_mode = false;
      ControlledScheduler::run(
          std::move(trial.bodies),
          [&](const std::vector<RunnableThread>& runnable, std::size_t d) {
            unsigned choice;
            if (d < stack.size()) {
              // Replaying the prefix of the previous trial.
              const Node& node = stack[d];
              MOIR_ASSERT_MSG(same_threads(node.runnable, runnable),
                              "nondeterministic trial: schedule replay "
                              "diverged (runnable set changed)");
              choice = node.chosen;
            } else {
              Node node;
              node.runnable = runnable;
              node.tail = pruned_mode;
              if (options.sleep_sets && !pruned_mode) {
                node.sleep = child_sleep(stack, d);
                choice = first_not_in(runnable, node.sleep, node.done);
                if (choice == kNone) {
                  // Every continuation from here is trace-equivalent to one
                  // explored from an earlier sibling: finish the run without
                  // creating branch points.
                  ++result.sleep_pruned;
                  pruned_mode = true;
                  node.tail = true;
                  choice = runnable.front().id;
                }
              } else {
                choice = runnable.front().id;
              }
              node.chosen = choice;
              stack.push_back(std::move(node));
            }
            taken.threads.push_back(choice);
            return choice;
          });

      if (!trial.check()) {
        result.violation_found = true;
        result.violating_schedule = taken;
        on_violation_found(taken);
        if (!options.keep_going) return result;
      }

      // Backtrack: drop forced tail nodes, then advance the deepest node
      // with an unexplored, non-sleeping alternative.
      while (!stack.empty()) {
        Node& node = stack.back();
        if (node.tail) {
          stack.pop_back();
          continue;
        }
        node.done.push_back(node.chosen);
        const unsigned next =
            first_not_in(node.runnable, node.sleep, node.done);
        if (next != kNone) {
          node.chosen = next;
          break;
        }
        stack.pop_back();
      }
      if (stack.empty()) {
        result.exhausted = true;
        return result;
      }
    }
  }

  // Legacy convenience signature.
  static Result explore(const MakeTrial& make_trial, std::size_t max_trials,
                        bool keep_going = false) {
    return explore(make_trial,
                   ExploreOptions{max_trials, /*sleep_sets=*/false, keep_going});
  }

  // PCT randomized exploration: `runs` independent runs, each under fresh
  // random priorities derived from options.seed + run index.
  static Result pct_explore(const MakeTrial& make_trial,
                            const PctOptions& options) {
    Result result;
    for (std::size_t run = 0; run < options.runs; ++run) {
      ++result.trials;
      Trial trial = make_trial();
      PctScheduler pct(options.depth, options.change_range,
                       options.seed + run);
      Schedule taken;
      ControlledScheduler::run(
          std::move(trial.bodies),
          [&](const std::vector<RunnableThread>& runnable, std::size_t d) {
            const unsigned choice = pct.pick(runnable, d);
            taken.threads.push_back(choice);
            return choice;
          });
      if (!trial.check()) {
        result.violation_found = true;
        result.violating_schedule = taken;
        on_violation_found(taken);
        return result;
      }
    }
    return result;
  }

  // Replays one schedule (e.g. a violating one) and returns check()'s
  // verdict. Decisions beyond the schedule's end (or naming threads that
  // are not runnable, which indicates the schedule is for a different
  // trial) fall back to the first runnable thread.
  static bool replay(const MakeTrial& make_trial, const Schedule& schedule) {
    Trial trial = make_trial();
    ControlledScheduler::run(
        std::move(trial.bodies),
        [&](const std::vector<RunnableThread>& runnable, std::size_t d) {
          if (d < schedule.threads.size()) {
            const unsigned want = schedule.threads[d];
            for (const RunnableThread& rt : runnable) {
              if (rt.id == want) return want;
            }
          }
          return runnable.front().id;
        });
    return trial.check();
  }

  // PCT priority scheduler, usable directly as a ControlledScheduler pick
  // policy. Priorities are assigned lazily from a per-run RNG; at each of
  // the d-1 pre-drawn change points the currently-leading thread drops to
  // the lowest priority seen so far.
  class PctScheduler {
   public:
    PctScheduler(unsigned depth, std::size_t change_range, std::uint64_t seed)
        : rng_(seed) {
      const unsigned changes = depth > 0 ? depth - 1 : 0;
      for (unsigned i = 0; i < changes; ++i) {
        change_points_.push_back(
            rng_.next_below(change_range == 0 ? 1 : change_range));
      }
    }

    unsigned pick(const std::vector<RunnableThread>& runnable,
                  std::size_t decision_index) {
      const RunnableThread* best = nullptr;
      std::uint64_t best_prio = 0;
      for (const RunnableThread& rt : runnable) {
        const std::uint64_t p = priority(rt.id);
        if (best == nullptr || p > best_prio) {
          best = &rt;
          best_prio = p;
        }
      }
      if (std::count(change_points_.begin(), change_points_.end(),
                     decision_index) > 0) {
        // Demote the leader below everything assigned so far and re-pick.
        priorities_[best->id] = floor_--;
        return pick_highest(runnable);
      }
      return best->id;
    }

   private:
    unsigned pick_highest(const std::vector<RunnableThread>& runnable) {
      const RunnableThread* best = nullptr;
      std::uint64_t best_prio = 0;
      for (const RunnableThread& rt : runnable) {
        const std::uint64_t p = priority(rt.id);
        if (best == nullptr || p > best_prio) {
          best = &rt;
          best_prio = p;
        }
      }
      return best->id;
    }

    std::uint64_t priority(unsigned id) {
      if (id >= priorities_.size()) priorities_.resize(id + 1, 0);
      if (priorities_[id] == 0) {
        // Random priorities live in the upper half; demotions count down
        // from just below them, so a demoted thread ranks under every
        // undemoted one but demotions stay mutually ordered.
        priorities_[id] = (1ULL << 63) | rng_.next();
      }
      return priorities_[id];
    }

    Xoshiro256 rng_;
    std::vector<std::uint64_t> change_points_;
    std::vector<std::uint64_t> priorities_;
    std::uint64_t floor_ = (1ULL << 62);
  };

 private:
  static constexpr unsigned kNone = ~0u;

  struct Node {
    std::vector<RunnableThread> runnable;
    std::vector<unsigned> sleep;  // thread ids asleep on entry to this node
    std::vector<unsigned> done;   // alternatives already fully explored
    unsigned chosen = 0;
    bool tail = false;  // forced continuation of a pruned run; not a branch
  };

  static bool contains(const std::vector<unsigned>& v, unsigned id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  }

  static bool same_threads(const std::vector<RunnableThread>& a,
                           const std::vector<RunnableThread>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id) return false;
    }
    return true;
  }

  static unsigned first_not_in(const std::vector<RunnableThread>& runnable,
                               const std::vector<unsigned>& sleep,
                               const std::vector<unsigned>& done) {
    for (const RunnableThread& rt : runnable) {
      if (!contains(sleep, rt.id) && !contains(done, rt.id)) return rt.id;
    }
    return kNone;
  }

  // Sleep set inherited by the node at depth d: the parent's sleeping and
  // already-explored threads whose pending steps are independent of the
  // step the parent chose (Godefroid's inheritance rule).
  static std::vector<unsigned> child_sleep(const std::vector<Node>& stack,
                                           std::size_t d) {
    std::vector<unsigned> sleep;
    if (d == 0) return sleep;
    const Node& parent = stack[d - 1];
    const StepInfo* chosen_step = nullptr;
    for (const RunnableThread& rt : parent.runnable) {
      if (rt.id == parent.chosen) chosen_step = &rt.step;
    }
    MOIR_ASSERT(chosen_step != nullptr);
    auto consider = [&](unsigned id) {
      if (id == parent.chosen || contains(sleep, id)) return;
      for (const RunnableThread& rt : parent.runnable) {
        if (rt.id == id && !steps_dependent(rt.step, *chosen_step)) {
          sleep.push_back(id);
          return;
        }
      }
    };
    for (const unsigned id : parent.sleep) consider(id);
    for (const unsigned id : parent.done) consider(id);
    return sleep;
  }
};

}  // namespace moir::testing
