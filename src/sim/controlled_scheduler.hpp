// Systematic concurrency testing (CHESS-style) for the paper's algorithms.
//
// The production algorithms mark their shared-memory interleaving points
// with the MOIR_YIELD_* macros. Under the ControlledScheduler exactly one
// worker runs at a time and each yield point hands control back to the
// scheduler, which consults a caller-provided policy (exhaustive DFS, PCT
// randomized priorities, or a fixed replay schedule — see sim/explore.hpp).
//
// Each yield point also announces the declared footprint (StepInfo) of the
// step the thread will execute when next resumed; the scheduler surfaces
// those footprints to the policy so partial-order reduction can recognize
// independent steps. A thread that has not yet reached its first yield
// point has the empty footprint: the instrumentation contract (see
// platform/yield_point.hpp) requires bodies to do only thread-private work
// before their first annotated access.
//
// Exhaustiveness is relative to yield-point granularity: code between two
// yield points executes atomically with respect to exploration (all shared
// accesses are std::atomic, so this coarsening is sound — it only reduces
// the number of distinct schedules examined).
//
// Requires MOIR_ENABLE_YIELD_POINTS (defined by all test targets).
#pragma once

#ifndef MOIR_ENABLE_YIELD_POINTS
#error "controlled_scheduler.hpp requires MOIR_ENABLE_YIELD_POINTS"
#endif

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/yield_point.hpp"
#include "util/assertion.hpp"

namespace moir::testing {

// One thread eligible to run at a decision point, together with the
// declared footprint of the step it would execute.
struct RunnableThread {
  unsigned id = 0;
  StepInfo step;
};

// Serializes a set of worker bodies: one runs at a time; every yield point
// is a scheduling decision delegated to `pick`.
class ControlledScheduler {
 public:
  // pick(runnable, decision_index) returns the id of the thread to run
  // next; it must be the id of one of the `runnable` entries.
  using PickFn = std::function<unsigned(
      const std::vector<RunnableThread>& runnable, std::size_t decision_index)>;

  // Runs all bodies to completion under the schedule that `pick` dictates.
  // Returns the number of scheduling decisions taken.
  static std::size_t run(std::vector<std::function<void()>> bodies,
                         const PickFn& pick) {
    ControlledScheduler sched(static_cast<unsigned>(bodies.size()));
    std::vector<std::thread> threads;
    threads.reserve(bodies.size());
    for (unsigned i = 0; i < bodies.size(); ++i) {
      threads.emplace_back([&sched, &bodies, i] {
        Interceptor interceptor{&sched, i};
        set_yield_interceptor(&interceptor);
        sched.wait_for_turn(i);   // initial decision point
        bodies[i]();
        set_yield_interceptor(nullptr);
        sched.finish(i);
      });
    }
    const std::size_t decisions = sched.drive(pick);
    for (auto& t : threads) t.join();
    return decisions;
  }

 private:
  enum class State : std::uint8_t { kWaiting, kRunning, kDone };
  static constexpr unsigned kNone = ~0u;

  explicit ControlledScheduler(unsigned n)
      : states_(n, State::kWaiting), steps_(n, StepInfo::none()) {}

  struct Interceptor final : YieldInterceptor {
    Interceptor(ControlledScheduler* s, unsigned i) : sched(s), id(i) {}
    ControlledScheduler* sched;
    unsigned id;
    void on_yield_point(const StepInfo& next_step) override {
      sched->yield_point(id, next_step);
    }
  };

  void yield_point(unsigned self, const StepInfo& next_step) {
    std::unique_lock<std::mutex> lock(mutex_);
    states_[self] = State::kWaiting;
    steps_[self] = next_step;
    current_ = kNone;
    cv_.notify_all();
    cv_.wait(lock, [&] { return current_ == self; });
    states_[self] = State::kRunning;
  }

  void wait_for_turn(unsigned self) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return current_ == self; });
    states_[self] = State::kRunning;
  }

  void finish(unsigned self) {
    std::unique_lock<std::mutex> lock(mutex_);
    states_[self] = State::kDone;
    current_ = kNone;
    cv_.notify_all();
  }

  std::size_t drive(const PickFn& pick) {
    std::size_t decisions = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        if (current_ != kNone) return false;
        for (const State s : states_) {
          if (s == State::kRunning) return false;
        }
        return true;
      });
      std::vector<RunnableThread> runnable;
      for (unsigned i = 0; i < states_.size(); ++i) {
        if (states_[i] == State::kWaiting) {
          runnable.push_back(RunnableThread{i, steps_[i]});
        }
      }
      if (runnable.empty()) return decisions;  // all done
      const unsigned choice = pick(runnable, decisions);
      MOIR_ASSERT_MSG(choice < states_.size() &&
                          states_[choice] == State::kWaiting,
                      "pick() returned a thread that is not runnable");
      ++decisions;
      current_ = choice;
      cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<State> states_;
  std::vector<StepInfo> steps_;
  unsigned current_ = kNone;
};

}  // namespace moir::testing
