// Systematic concurrency testing (CHESS-style) for the paper's algorithms.
//
// The production algorithms mark their shared-memory interleaving points
// with MOIR_YIELD_POINT(). Under the ControlledScheduler exactly one
// worker runs at a time and each yield point hands control back to the
// scheduler, which consults an Explorer-provided schedule. The Explorer
// performs stateless depth-first search over the schedule tree: it re-runs
// the (deterministic, freshly-constructed) test body once per schedule
// until the tree is exhausted or a trial budget is hit.
//
// A violation found this way is a real interleaving bug, reproducible from
// its schedule. Exhaustiveness is relative to yield-point granularity:
// code between two yield points executes atomically with respect to
// exploration (all shared accesses are std::atomic, so this coarsening is
// sound — it only reduces the number of distinct schedules examined).
//
// Requires MOIR_ENABLE_YIELD_POINTS (defined by all test targets).
#pragma once

#ifndef MOIR_ENABLE_YIELD_POINTS
#error "controlled_scheduler.hpp requires MOIR_ENABLE_YIELD_POINTS"
#endif

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/yield_point.hpp"
#include "util/assertion.hpp"

namespace moir::testing {

// Serializes a set of worker bodies: one runs at a time; every yield point
// is a scheduling decision delegated to `pick`.
class ControlledScheduler {
 public:
  // pick(runnable, decision_index) returns an index into `runnable`.
  using PickFn =
      std::function<std::size_t(const std::vector<unsigned>& runnable,
                                std::size_t decision_index)>;

  // Runs all bodies to completion under the schedule that `pick` dictates.
  // Returns the number of scheduling decisions taken.
  static std::size_t run(std::vector<std::function<void()>> bodies,
                         const PickFn& pick) {
    ControlledScheduler sched(static_cast<unsigned>(bodies.size()));
    std::vector<std::thread> threads;
    threads.reserve(bodies.size());
    for (unsigned i = 0; i < bodies.size(); ++i) {
      threads.emplace_back([&sched, &bodies, i] {
        Interceptor interceptor{&sched, i};
        set_yield_interceptor(&interceptor);
        sched.wait_for_turn(i);   // initial decision point
        bodies[i]();
        set_yield_interceptor(nullptr);
        sched.finish(i);
      });
    }
    const std::size_t decisions = sched.drive(pick);
    for (auto& t : threads) t.join();
    return decisions;
  }

 private:
  enum class State : std::uint8_t { kWaiting, kRunning, kDone };
  static constexpr unsigned kNone = ~0u;

  explicit ControlledScheduler(unsigned n) : states_(n, State::kWaiting) {}

  struct Interceptor final : YieldInterceptor {
    Interceptor(ControlledScheduler* s, unsigned i) : sched(s), id(i) {}
    ControlledScheduler* sched;
    unsigned id;
    void on_yield_point() override { sched->yield_point(id); }
  };

  void yield_point(unsigned self) {
    std::unique_lock<std::mutex> lock(mutex_);
    states_[self] = State::kWaiting;
    current_ = kNone;
    cv_.notify_all();
    cv_.wait(lock, [&] { return current_ == self; });
    states_[self] = State::kRunning;
  }

  void wait_for_turn(unsigned self) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return current_ == self; });
    states_[self] = State::kRunning;
  }

  void finish(unsigned self) {
    std::unique_lock<std::mutex> lock(mutex_);
    states_[self] = State::kDone;
    current_ = kNone;
    cv_.notify_all();
  }

  std::size_t drive(const PickFn& pick) {
    std::size_t decisions = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        if (current_ != kNone) return false;
        for (const State s : states_) {
          if (s == State::kRunning) return false;
        }
        return true;
      });
      std::vector<unsigned> runnable;
      for (unsigned i = 0; i < states_.size(); ++i) {
        if (states_[i] == State::kWaiting) runnable.push_back(i);
      }
      if (runnable.empty()) return decisions;  // all done
      const std::size_t choice = pick(runnable, decisions);
      MOIR_ASSERT(choice < runnable.size());
      ++decisions;
      current_ = runnable[choice];
      cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<State> states_;
  unsigned current_ = kNone;
};

// Stateless DFS over the schedule tree.
class ScheduleExplorer {
 public:
  struct Result {
    std::size_t trials = 0;
    bool exhausted = false;      // full tree covered within the budget
    bool violation_found = false;
    std::vector<std::size_t> violating_schedule;  // replayable choices
  };

  // `make_trial` builds a fresh trial: it returns the worker bodies and an
  // `check` functor run after the trial; check() returning false marks the
  // schedule as violating.
  struct Trial {
    std::vector<std::function<void()>> bodies;
    std::function<bool()> check;
  };

  // Explores until the tree is exhausted or max_trials is reached. Stops
  // early at the first violation unless keep_going.
  static Result explore(const std::function<Trial()>& make_trial,
                        std::size_t max_trials, bool keep_going = false) {
    Result result;
    struct Decision {
      std::size_t choice;
      std::size_t options;
    };
    std::vector<Decision> prefix;

    for (;;) {
      if (result.trials >= max_trials) return result;
      ++result.trials;

      Trial trial = make_trial();
      std::vector<Decision> taken;
      ControlledScheduler::run(
          std::move(trial.bodies),
          [&](const std::vector<unsigned>& runnable, std::size_t d) {
            std::size_t choice = 0;
            if (d < prefix.size()) {
              choice = prefix[d].choice;
              // The tree shape must be deterministic for replay to work.
              MOIR_ASSERT_MSG(choice < runnable.size(),
                              "nondeterministic trial: schedule replay "
                              "diverged (fewer runnable threads)");
            }
            taken.push_back(Decision{choice, runnable.size()});
            return choice;
          });

      if (!trial.check()) {
        result.violation_found = true;
        result.violating_schedule.clear();
        for (const auto& d : taken) {
          result.violating_schedule.push_back(d.choice);
        }
        if (!keep_going) return result;
      }

      // Backtrack: advance the deepest decision with remaining options.
      prefix = std::move(taken);
      while (!prefix.empty() &&
             prefix.back().choice + 1 >= prefix.back().options) {
        prefix.pop_back();
      }
      if (prefix.empty()) {
        result.exhausted = true;
        return result;
      }
      ++prefix.back().choice;
    }
  }

  // Replays one schedule (e.g. a violating one) for debugging.
  static void replay(const std::function<Trial()>& make_trial,
                     const std::vector<std::size_t>& schedule) {
    Trial trial = make_trial();
    ControlledScheduler::run(
        std::move(trial.bodies),
        [&](const std::vector<unsigned>& runnable, std::size_t d) {
          const std::size_t choice =
              d < schedule.size() ? schedule[d] : 0;
          return choice < runnable.size() ? choice : 0;
        });
    (void)trial.check();
  }
};

}  // namespace moir::testing
