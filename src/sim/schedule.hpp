// Replayable schedules for systematic concurrency testing.
//
// A Schedule is the complete sequence of scheduling decisions of one run
// under the ControlledScheduler, recorded as thread indices (the index of
// the worker body picked at each decision point). Because trials are
// deterministic given the decision sequence, a Schedule is a portable,
// copy-pasteable reproduction of an interleaving: every failure report in
// the exploration tests prints one, and ScheduleExplorer::replay() turns it
// back into the exact same run.
//
// Wire format: "ms1:" followed by dot-separated decimal thread indices,
// e.g. "ms1:0.1.1.0.2". An empty schedule is "ms1:".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace moir::testing {

struct Schedule {
  std::vector<unsigned> threads;

  bool empty() const { return threads.empty(); }
  std::size_t size() const { return threads.size(); }

  std::string str() const {
    std::string out = "ms1:";
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (i != 0) out += '.';
      out += std::to_string(threads[i]);
    }
    return out;
  }

  // Parses the wire format back; nullopt on any malformed input.
  static std::optional<Schedule> parse(std::string_view s) {
    constexpr std::string_view kPrefix = "ms1:";
    if (s.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
    s.remove_prefix(kPrefix.size());
    Schedule sched;
    if (s.empty()) return sched;
    unsigned cur = 0;
    bool have_digit = false;
    for (const char c : s) {
      if (c == '.') {
        if (!have_digit) return std::nullopt;
        sched.threads.push_back(cur);
        cur = 0;
        have_digit = false;
      } else if (c >= '0' && c <= '9') {
        // No real trial has thread ids anywhere near this bound; rejecting
        // here keeps overlong ids from silently wrapping to valid ones.
        if (cur > (~0u - 9) / 10) return std::nullopt;
        cur = cur * 10 + static_cast<unsigned>(c - '0');
        have_digit = true;
      } else {
        return std::nullopt;
      }
    }
    if (!have_digit) return std::nullopt;
    sched.threads.push_back(cur);
    return sched;
  }

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

}  // namespace moir::testing
