// Feed-coherence checker: validates a subscriber's delivered stream
// against the writer's committed history.
//
// The feed's contract ("latest value + at-least-once after resync",
// src/feed/feed.hpp) is weaker than linearizability — records may be LOST
// on overrun — so the Wing–Gong checker does not apply. What must still
// hold, and what this checker enforces per key over one subscription's
// stream, is:
//
//  1. No invention: every delivered ring record carries a (key, value)
//     pair the writer actually committed, and the RING records form a
//     strictly increasing subsequence of the commit sequence among
//     themselves. This is the property the planted SkipValidation bug
//     breaks: a torn record pairs one commit's key with a later commit's
//     value, which (with per-key-unique values, the trials' discipline)
//     appears in no key's commit sequence. Ring records are ordered only
//     against each other, not against resync records: a resync samples
//     published() before its map read (feed.hpp), so the read may observe
//     commits the ring then re-delivers — the "at-least-once after
//     resync" in the contract — and those repeats legitimately sit at or
//     before the resync's commit position.
//  2. Versions monotone: the masked versions never decrease per key, and
//     strictly increase between consecutive ring records (each ring
//     record has a distinct sequence number; the first ring record after
//     a resync may carry exactly the resync's sampled sequence).
//  3. Resync coherence: a resync record's value is a commit at or after
//     the FURTHEST commit position any earlier record (ring or resync)
//     reached — the ring-publish happens-before chain plus the map's
//     per-key write order make older map states impossible to read — or
//     the initial absence when nothing was delivered yet.
//  4. Convergence: after the writer quiesced and a final poll ran, the
//     last delivered value per key equals the key's final map value.
//
// Trials feed commits in per-key program order (the single-writer-per-
// shard discipline the service enforces) with values UNIQUE per key;
// check() is single-threaded (run in the trial's post-join check phase).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "feed/broadcast_ring.hpp"

namespace moir::testing {

class FeedChecker {
 public:
  // Record a committed write in per-key commit order (wire form: 0 =
  // erased, v+1 = v). Values must be unique within a key.
  void commit(std::uint64_t key, std::uint64_t wire_value) {
    committed_[key].push_back(wire_value);
  }

  // The key's wire-form map value after the writer quiesced.
  void set_final(std::uint64_t key, std::uint64_t wire_value) {
    final_[key] = wire_value;
  }

  const std::vector<std::uint64_t>& committed(std::uint64_t key) const {
    static const std::vector<std::uint64_t> kEmpty;
    const auto it = committed_.find(key);
    return it == committed_.end() ? kEmpty : it->second;
  }

  // Properties 1-3 over one subscription's delivered stream, in delivery
  // order. On failure fills `diag` and returns false.
  bool check_stream(std::span<const feed::Record> stream,
                    std::string* diag) const {
    struct KeyState {
      long ring_pos = -1;  // last RING record's commit index
      long max_pos = -1;   // furthest commit index any record reached
      std::uint64_t last_ver = 0;
      bool seen = false;
      bool last_was_resync = false;
    };
    std::map<std::uint64_t, KeyState> st;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const feed::Record& r = stream[i];
      const bool resync = (r.version & feed::kResyncBit) != 0;
      const std::uint64_t ver = r.version & ~feed::kResyncBit;
      KeyState& k = st[r.key];
      if (k.seen) {
        const bool strict = !resync && !k.last_was_resync;
        if (ver < k.last_ver || (strict && ver == k.last_ver)) {
          return explain(diag, i, r, "version not monotone");
        }
      }
      k.seen = true;
      k.last_ver = ver;
      k.last_was_resync = resync;

      const auto cit = committed_.find(r.key);
      if (resync && r.value == 0 && k.max_pos < 0) {
        continue;  // resync before any delivery observed initial absence
      }
      if (cit == committed_.end()) {
        return explain(diag, i, r, "delivered for a never-committed key");
      }
      long found = -1;
      for (std::size_t j = 0; j < cit->second.size(); ++j) {
        if (cit->second[j] == r.value) {
          found = static_cast<long>(j);
          break;
        }
      }
      if (found < 0) {
        return explain(diag, i, r, "value never committed for this key");
      }
      if (resync) {
        // Property 3: the map read happens after every earlier delivery's
        // publish, so a resync can repeat the furthest position but never
        // regress behind it.
        if (found < k.max_pos) {
          return explain(diag, i, r, "value out of commit order");
        }
      } else {
        // Property 1: ring records advance strictly among THEMSELVES (the
        // cursor only moves forward and per-key seq order is commit
        // order). Against a preceding resync they may lag: the resync's
        // map read can observe commits at or past its sampled cursor,
        // which the ring then re-delivers ("at-least-once after resync").
        if (found <= k.ring_pos) {
          return explain(diag, i, r, "value out of commit order");
        }
        k.ring_pos = found;
      }
      k.max_pos = std::max(k.max_pos, found);
    }
    return true;
  }

  // Property 4. Call only after the writer quiesced AND a final drain
  // poll completed: the last delivered value of every committed key must
  // be that key's final value (an overrun on the final poll still
  // delivers a resync record carrying it).
  bool check_converged(std::span<const feed::Record> stream,
                       std::string* diag) const {
    std::map<std::uint64_t, std::uint64_t> last;
    for (const feed::Record& r : stream) last[r.key] = r.value;
    for (const auto& [key, fin] : final_) {
      const auto it = last.find(key);
      if (it == last.end()) {
        if (committed_.count(key) != 0 && !committed_.at(key).empty()) {
          if (diag != nullptr) {
            std::ostringstream os;
            os << "key " << key << ": committed but nothing delivered "
               << "after final drain";
            *diag = os.str();
          }
          return false;
        }
        continue;
      }
      if (it->second != fin) {
        if (diag != nullptr) {
          std::ostringstream os;
          os << "key " << key << ": last delivered " << it->second
             << " != final map value " << fin;
          *diag = os.str();
        }
        return false;
      }
    }
    return true;
  }

 private:
  static bool explain(std::string* diag, std::size_t i,
                      const feed::Record& r, const char* what) {
    if (diag != nullptr) {
      std::ostringstream os;
      os << "record " << i << " {key=" << r.key << " value=" << r.value
         << " version=" << (r.version & ~feed::kResyncBit)
         << (r.version & feed::kResyncBit ? " resync" : "") << "}: " << what;
      *diag = os.str();
    }
    return false;
  }

  std::map<std::uint64_t, std::vector<std::uint64_t>> committed_;
  std::map<std::uint64_t, std::uint64_t> final_;
};

}  // namespace moir::testing
