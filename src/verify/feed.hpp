// Feed-coherence checker: validates a subscriber's delivered stream
// against the writer's committed history.
//
// The feed's contract ("latest value + at-least-once after resync",
// src/feed/feed.hpp) is weaker than linearizability — records may be LOST
// on overrun — so the Wing–Gong checker does not apply. What must still
// hold, and what this checker enforces per key over one subscription's
// stream, is:
//
//  1. No invention: every delivered ring record carries a (key, value)
//     pair the writer actually committed, and in commit order — the
//     delivered values form a subsequence of the commit sequence. This is
//     the property the planted SkipValidation bug breaks: a torn record
//     pairs one commit's key with a later commit's value, which (with
//     per-key-unique values, the trials' discipline) appears in no key's
//     commit sequence.
//  2. Versions monotone: the masked versions never decrease per key, and
//     strictly increase between ring records (each ring record has a
//     distinct sequence number).
//  3. Resync coherence: a resync record's value is a commit the writer
//     could have been at — at or after the last delivered one (the
//     ring-publish happens-before chain makes older map states impossible
//     to read; see feed.hpp), or the initial absence when nothing was
//     delivered yet.
//  4. Convergence: after the writer quiesced and a final poll ran, the
//     last delivered value per key equals the key's final map value.
//
// Trials feed commits in per-key program order (the single-writer-per-
// shard discipline the service enforces) with values UNIQUE per key;
// check() is single-threaded (run in the trial's post-join check phase).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "feed/broadcast_ring.hpp"

namespace moir::testing {

class FeedChecker {
 public:
  // Record a committed write in per-key commit order (wire form: 0 =
  // erased, v+1 = v). Values must be unique within a key.
  void commit(std::uint64_t key, std::uint64_t wire_value) {
    committed_[key].push_back(wire_value);
  }

  // The key's wire-form map value after the writer quiesced.
  void set_final(std::uint64_t key, std::uint64_t wire_value) {
    final_[key] = wire_value;
  }

  const std::vector<std::uint64_t>& committed(std::uint64_t key) const {
    static const std::vector<std::uint64_t> kEmpty;
    const auto it = committed_.find(key);
    return it == committed_.end() ? kEmpty : it->second;
  }

  // Properties 1-3 over one subscription's delivered stream, in delivery
  // order. On failure fills `diag` and returns false.
  bool check_stream(std::span<const feed::Record> stream,
                    std::string* diag) const {
    std::map<std::uint64_t, long> pos;        // last matched commit index
    std::map<std::uint64_t, std::uint64_t> last_ver;
    std::map<std::uint64_t, bool> last_was_resync;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const feed::Record& r = stream[i];
      const bool resync = (r.version & feed::kResyncBit) != 0;
      const std::uint64_t ver = r.version & ~feed::kResyncBit;
      const bool prev_resync = last_was_resync[r.key];
      if (const auto it = last_ver.find(r.key); it != last_ver.end()) {
        const bool strict = !resync && !prev_resync;
        if (ver < it->second || (strict && ver == it->second)) {
          return explain(diag, i, r, "version not monotone");
        }
      }
      last_ver[r.key] = ver;
      last_was_resync[r.key] = resync;

      const auto cit = committed_.find(r.key);
      long& p = pos.try_emplace(r.key, -1).first->second;
      if (resync && r.value == 0 && p < 0) {
        continue;  // resync before any delivery observed initial absence
      }
      if (cit == committed_.end()) {
        return explain(diag, i, r, "delivered for a never-committed key");
      }
      long found = -1;
      for (std::size_t j = 0; j < cit->second.size(); ++j) {
        if (cit->second[j] == r.value) {
          found = static_cast<long>(j);
          break;
        }
      }
      if (found < 0) {
        return explain(diag, i, r, "value never committed for this key");
      }
      // A ring record normally advances strictly past the last position;
      // two legal exceptions repeat it: a resync may re-read the value it
      // (or a delivered record) already carried, and the FIRST ring
      // record after a resync may re-deliver the commit the resync's map
      // read had already jumped to — that's the "at-least-once after
      // resync" in the contract, not a duplicate.
      const bool repeat_ok = resync || prev_resync;
      if (repeat_ok ? found < p : found <= p) {
        return explain(diag, i, r, "value out of commit order");
      }
      p = found;
    }
    return true;
  }

  // Property 4. Call only after the writer quiesced AND a final drain
  // poll completed: the last delivered value of every committed key must
  // be that key's final value (an overrun on the final poll still
  // delivers a resync record carrying it).
  bool check_converged(std::span<const feed::Record> stream,
                       std::string* diag) const {
    std::map<std::uint64_t, std::uint64_t> last;
    for (const feed::Record& r : stream) last[r.key] = r.value;
    for (const auto& [key, fin] : final_) {
      const auto it = last.find(key);
      if (it == last.end()) {
        if (committed_.count(key) != 0 && !committed_.at(key).empty()) {
          if (diag != nullptr) {
            std::ostringstream os;
            os << "key " << key << ": committed but nothing delivered "
               << "after final drain";
            *diag = os.str();
          }
          return false;
        }
        continue;
      }
      if (it->second != fin) {
        if (diag != nullptr) {
          std::ostringstream os;
          os << "key " << key << ": last delivered " << it->second
             << " != final map value " << fin;
          *diag = os.str();
        }
        return false;
      }
    }
    return true;
  }

 private:
  static bool explain(std::string* diag, std::size_t i,
                      const feed::Record& r, const char* what) {
    if (diag != nullptr) {
      std::ostringstream os;
      os << "record " << i << " {key=" << r.key << " value=" << r.value
         << " version=" << (r.version & ~feed::kResyncBit)
         << (r.version & feed::kResyncBit ? " resync" : "") << "}: " << what;
      *diag = os.str();
    }
    return false;
  }

  std::map<std::uint64_t, std::vector<std::uint64_t>> committed_;
  std::map<std::uint64_t, std::uint64_t> final_;
};

}  // namespace moir::testing
