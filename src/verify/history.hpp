// Operation recording for linearizability checking.
//
// Each operation gets invocation/response timestamps from a shared atomic
// counter. Timestamps give the real-time partial order that linearizability
// must respect: if res(a) < inv(b) then a must take effect before b.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace moir {

enum class OpKind : std::uint8_t {
  kLl,    // arg: unused       ret: value read
  kVl,    // arg: unused       ret: 0/1
  kSc,    // arg: new value    ret: 0/1
  kCas,   // arg: packed old/new (see CasRegisterSpec)  ret: 0/1
  kRead,  // arg: unused       ret: value read
  // Map operations (see MapSpec for the arg/ret packing).
  kMapInsert,  // arg: key<<32|value  ret: 1 inserted / 0 already present
  kMapErase,   // arg: key            ret: 1 erased / 0 absent
  kMapFind,    // arg: key            ret: value+1 found / 0 absent
  kMapUpsert,  // arg: key<<32|value  ret: 1 inserted / 0 updated in place
  // Two-key transactions over the map (see TxnSpec for the packings;
  // c/e/d/w below are WIRE-FORM cell values: 0 = absent, v+1 = value v).
  kTxnMGet,  // arg: k1<<8|k2                          ret: c1<<16|c2
  kTxnMPut,  // arg: k1<<48|k2<<32|v1<<16|v2           ret: 1
  kTxnMCas,  // arg: k1<<56|k2<<48|e1<<36|e2<<24|d1<<12|d2
             // ret: matched<<24|w1<<12|w2
};

struct Operation {
  unsigned proc = 0;
  OpKind kind = OpKind::kRead;
  std::uint64_t arg = 0;
  std::uint64_t ret = 0;
  std::uint64_t inv_ts = 0;
  std::uint64_t res_ts = 0;
};

// One recorder shared by all threads of an experiment. record() is called
// around each operation:
//   const auto inv = rec.now();
//   ... perform op ...
//   rec.add(proc, kind, arg, ret, inv);
class HistoryRecorder {
 public:
  explicit HistoryRecorder(unsigned n_threads) : per_thread_(n_threads) {}

  std::uint64_t now() { return clock_.fetch_add(1, std::memory_order_seq_cst); }

  void add(unsigned thread, unsigned proc, OpKind kind, std::uint64_t arg,
           std::uint64_t ret, std::uint64_t inv_ts) {
    per_thread_[thread].push_back(
        Operation{proc, kind, arg, ret, inv_ts, now()});
  }

  // Merge all threads' logs (stable by invocation time).
  std::vector<Operation> collect() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<Operation>> per_thread_;
};

inline std::vector<Operation> HistoryRecorder::collect() const {
  std::vector<Operation> all;
  for (const auto& v : per_thread_) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Operation& a, const Operation& b) {
              return a.inv_ts < b.inv_ts;
            });
  return all;
}

}  // namespace moir
