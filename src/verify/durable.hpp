// Durable linearizability checking (Izraelevitz et al.'s criterion, applied
// to the simulated-pmem crash protocol of dur/ and sim/crash.hpp).
//
// A crashed-and-recovered object is durably linearizable iff the operations
// that survive the crash — every operation that COMPLETED before the crash,
// plus some subset of the operations in flight at the crash instant — form
// a linearizable history whose final state is what recovery actually
// produced. The three pieces map onto the harness like this:
//
//   * The volatile run records a normal history (verify/history.hpp); the
//     crash body (an extra trial thread) stamps `crash_ts` from the same
//     clock at a schedule point of the explorer's choosing, then snapshots
//     durable state. The other threads run on to completion in the volatile
//     world, so every operation has a response — but responses after
//     crash_ts never durably happened.
//   * Recovery runs on a fresh instance restored from the snapshot;
//     `probes` are the operations the test then performs against it (reads
//     of every variable, typically). They observe the recovered state.
//   * check() partitions the history at crash_ts: operations invoked after
//     the crash are discarded; operations completed before it are
//     mandatory (dur/dur_llsc.hpp's P3 barrier guarantees any value an
//     operation returned was durable at the return, so a completed
//     operation's effect may not vanish); operations spanning the crash
//     may or may not have taken durable effect, so every subset of them is
//     tried. For each subset the candidate history is: mandatory ops
//     unchanged, included in-flight ops with res_ts clamped to crash_ts,
//     probes re-stamped after every other timestamp — then handed to the
//     standard Wing–Gong checker. Durably linearizable iff some subset
//     passes.
//
// The res_ts clamp is what makes the encoding sound: an included in-flight
// operation is being asserted to have taken effect BEFORE the crash, so it
// must be real-time-ordered before every probe (a pre-crash thread cannot
// take effect after recovery — it no longer exists). Clamping only ADDS
// ordering constraints (every other surviving operation was invoked before
// crash_ts, so no new op-vs-op edge appears), hence no false rejects; and
// without it an "included" in-flight op could float between two probes,
// which no real execution exhibits. Excluding an in-flight op entirely is
// already covered by the subset enumeration, so nothing is lost.
//
// Cost: 2^|in-flight| inner checks. In-flight ops are at most one per
// running thread, and crash-exploration configs keep thread counts tiny;
// the hard assert at 16 turns an accidental quadratic-scale misuse into a
// loud failure instead of a hang.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assertion.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"

namespace moir {

template <typename Spec>
class DurableLinearizabilityChecker {
 public:
  using State = typename Spec::State;

  // `history`: the full volatile-run history. `crash_ts`: the crash body's
  // clock stamp. `probes`: operations observed on the recovered instance
  // (their timestamps are ignored and re-stamped sequentially after all
  // surviving operations — callers may leave them zero).
  bool check(const std::vector<Operation>& history, std::uint64_t crash_ts,
             const std::vector<Operation>& probes, State initial) {
    std::vector<Operation> mandatory;
    std::vector<Operation> in_flight;
    std::uint64_t max_ts = crash_ts;
    for (const Operation& op : history) {
      if (op.inv_ts > crash_ts) continue;  // post-crash: durably never ran
      if (op.res_ts <= crash_ts) {
        mandatory.push_back(op);
      } else {
        in_flight.push_back(op);
      }
      max_ts = std::max(max_ts, op.res_ts);
    }
    MOIR_ASSERT_MSG(in_flight.size() <= 16,
                    "2^|in-flight| subset enumeration needs a small config");

    // Ascending masks try the empty subset first — the cheapest and, for
    // crashes early in the schedule, the most likely linearization.
    const std::uint64_t n_subsets = std::uint64_t{1} << in_flight.size();
    for (std::uint64_t mask = 0; mask < n_subsets; ++mask) {
      std::vector<Operation> candidate = mandatory;
      for (std::size_t i = 0; i < in_flight.size(); ++i) {
        if ((mask >> i & 1) == 0) continue;
        Operation op = in_flight[i];
        op.res_ts = crash_ts;  // asserted to have taken effect pre-crash
        candidate.push_back(op);
      }
      std::uint64_t ts = max_ts + 1;
      for (Operation probe : probes) {
        probe.inv_ts = ts++;
        probe.res_ts = ts++;
        candidate.push_back(probe);
      }
      if (checker_.check(candidate, initial)) return true;
    }
    return false;
  }

 private:
  LinearizabilityChecker<Spec> checker_;
};

}  // namespace moir
