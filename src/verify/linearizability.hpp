// Wing–Gong-style linearizability checker.
//
// Given a history of timestamped operations and a sequential spec, search
// for a linearization: a total order of the operations that (a) respects
// real time (if res(a) < inv(b), a precedes b) and (b) replays correctly
// through the spec. The search is a DFS over "minimal" operations —
// operations whose invocation precedes every unlinearized operation's
// response — with memoization on (linearized-set, spec-state), which is the
// standard exponential-worst-case but fast-in-practice algorithm.
//
// Histories are limited to 64 operations (a bitmask); tests check many
// short windows rather than one long history, which is standard practice —
// a linearizability violation, if present under a given schedule, already
// appears in a short window around the violating operations.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/assertion.hpp"
#include "verify/history.hpp"

namespace moir {

template <typename Spec>
class LinearizabilityChecker {
 public:
  using State = typename Spec::State;

  // Returns true iff `history` is linearizable starting from `initial`.
  bool check(const std::vector<Operation>& history, State initial) {
    MOIR_ASSERT_MSG(history.size() <= 64,
                    "checker windows are limited to 64 operations");
    ops_ = &history;
    n_ = history.size();
    memo_.clear();
    return dfs(0, initial);
  }

 private:
  bool dfs(std::uint64_t done_mask, const State& state) {
    if (__builtin_popcountll(done_mask) == static_cast<int>(n_)) return true;
    const std::uint64_t key =
        done_mask * 0x2545f4914f6cdd1dULL ^ Spec::hash(state);
    if (!memo_.insert(key).second) return false;

    // Find the earliest response among unlinearized ops: any op whose
    // invocation follows it cannot be linearized next.
    std::uint64_t min_res = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n_; ++i) {
      if ((done_mask >> i & 1) == 0 && (*ops_)[i].res_ts < min_res) {
        min_res = (*ops_)[i].res_ts;
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if ((done_mask >> i & 1) != 0) continue;
      const Operation& op = (*ops_)[i];
      if (op.inv_ts > min_res) continue;  // not minimal
      const auto next = Spec::apply(state, op);
      if (!next) continue;  // return value contradicts the spec here
      if (dfs(done_mask | (std::uint64_t{1} << i), *next)) return true;
    }
    return false;
  }

  const std::vector<Operation>* ops_ = nullptr;
  std::size_t n_ = 0;
  std::unordered_set<std::uint64_t> memo_;
};

}  // namespace moir
