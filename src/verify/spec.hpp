// Sequential specifications — Figure 2 of the paper, executable.
//
// The paper defines the "normal" semantics of CAS and LL/VL/SC as atomic
// code fragments over a value and a per-process valid array. These specs
// replay a candidate linearization and accept iff every operation's
// recorded return value matches what the atomic fragment would produce.
#pragma once

#include <cstdint>
#include <optional>

#include "verify/history.hpp"

namespace moir {

// State and transition function for an LL/VL/SC register (Figure 2 right).
struct LlscRegisterSpec {
  struct State {
    std::uint64_t value = 0;
    std::uint32_t valid = 0;  // bit p = valid_X[p]

    friend bool operator==(const State&, const State&) = default;
  };

  static std::uint64_t hash(const State& s) {
    return s.value * 0x9e3779b97f4a7c15ULL ^ s.valid;
  }

  // Applies `op`; returns the next state, or nullopt if the recorded return
  // value contradicts the spec.
  static std::optional<State> apply(const State& s, const Operation& op) {
    State next = s;
    switch (op.kind) {
      case OpKind::kLl:
        if (op.ret != s.value) return std::nullopt;
        next.valid |= 1u << op.proc;
        return next;
      case OpKind::kVl: {
        const bool valid = (s.valid >> op.proc & 1) != 0;
        if (op.ret != static_cast<std::uint64_t>(valid)) return std::nullopt;
        return next;
      }
      case OpKind::kSc: {
        const bool valid = (s.valid >> op.proc & 1) != 0;
        if (op.ret != static_cast<std::uint64_t>(valid)) return std::nullopt;
        if (valid) {
          next.value = op.arg;
          next.valid = 0;
        }
        return next;
      }
      case OpKind::kRead:
        if (op.ret != s.value) return std::nullopt;
        return next;
      default:
        return std::nullopt;
    }
  }
};

// CAS register (Figure 2 left) plus plain reads. CAS args are packed as
// old<<32 | new (32-bit values suffice for checking).
struct CasRegisterSpec {
  struct State {
    std::uint64_t value = 0;

    friend bool operator==(const State&, const State&) = default;
  };

  static std::uint64_t pack_args(std::uint64_t old_v, std::uint64_t new_v) {
    return old_v << 32 | new_v;
  }

  static std::uint64_t hash(const State& s) {
    return s.value * 0x9e3779b97f4a7c15ULL;
  }

  static std::optional<State> apply(const State& s, const Operation& op) {
    State next = s;
    switch (op.kind) {
      case OpKind::kCas: {
        const std::uint64_t old_v = op.arg >> 32;
        const std::uint64_t new_v = op.arg & 0xffffffffu;
        const bool should_succeed = s.value == old_v;
        if (op.ret != static_cast<std::uint64_t>(should_succeed)) {
          return std::nullopt;
        }
        if (should_succeed) next.value = new_v;
        return next;
      }
      case OpKind::kRead:
        if (op.ret != s.value) return std::nullopt;
        return next;
      default:
        return std::nullopt;
    }
  }
};

// Sequential map over a tiny fixed key universe, for checking the sharded
// hash map's histories. Keys are 0..kMaxKeys-1 and values fit 32 bits —
// exploration trials use single-digit key spaces, where the fixed array
// keeps State copies (which the checker makes per DFS node) trivially
// cheap. Packing matches the OpKind comments in history.hpp: find's ret is
// value+1 so 0 can mean "absent" unambiguously.
struct MapSpec {
  static constexpr unsigned kMaxKeys = 8;

  struct State {
    // slot k = value+1 of key k; 0 = absent.
    std::uint64_t v[kMaxKeys] = {};

    friend bool operator==(const State&, const State&) = default;
  };

  static std::uint64_t pack_args(std::uint64_t key, std::uint64_t value) {
    return key << 32 | value;
  }

  static std::uint64_t hash(const State& s) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t x : s.v) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  static std::optional<State> apply(const State& s, const Operation& op) {
    State next = s;
    switch (op.kind) {
      case OpKind::kMapInsert: {
        const std::uint64_t key = op.arg >> 32;
        if (key >= kMaxKeys) return std::nullopt;
        const bool absent = s.v[key] == 0;
        if (op.ret != static_cast<std::uint64_t>(absent)) return std::nullopt;
        if (absent) next.v[key] = (op.arg & 0xffffffffu) + 1;
        return next;
      }
      case OpKind::kMapUpsert: {
        const std::uint64_t key = op.arg >> 32;
        if (key >= kMaxKeys) return std::nullopt;
        const bool absent = s.v[key] == 0;
        if (op.ret != static_cast<std::uint64_t>(absent)) return std::nullopt;
        next.v[key] = (op.arg & 0xffffffffu) + 1;
        return next;
      }
      case OpKind::kMapErase: {
        if (op.arg >= kMaxKeys) return std::nullopt;
        const bool present = s.v[op.arg] != 0;
        if (op.ret != static_cast<std::uint64_t>(present)) {
          return std::nullopt;
        }
        next.v[op.arg] = 0;
        return next;
      }
      case OpKind::kMapFind: {
        if (op.arg >= kMaxKeys) return std::nullopt;
        if (op.ret != s.v[op.arg]) return std::nullopt;
        return next;
      }
      default:
        return std::nullopt;
    }
  }
};

// Service-level spec: the KV pipeline (src/svc/) completes each request
// with map semantics, EXCEPT that admission/overload shedding may complete
// a request with EBUSY — which must linearize as a no-op (the map is
// untouched). A shed operation records ret == kShed regardless of kind;
// everything else follows MapSpec's encodings (the service's Status maps
// to them: insert/upsert/erase Ok=1 NotFound=0, find ret=value+1 or 0).
struct SvcSpec {
  static constexpr std::uint64_t kShed = ~std::uint64_t{0};
  static constexpr unsigned kMaxKeys = MapSpec::kMaxKeys;

  using State = MapSpec::State;

  static std::uint64_t pack_args(std::uint64_t key, std::uint64_t value) {
    return MapSpec::pack_args(key, value);
  }

  static std::uint64_t hash(const State& s) { return MapSpec::hash(s); }

  static std::optional<State> apply(const State& s, const Operation& op) {
    if (op.ret == kShed) return s;  // shed: no effect, any position legal
    return MapSpec::apply(s, op);
  }
};

// Transactional KV spec: the txn-mode service interleaves single-key map
// ops with two-key transactions on ONE store. State is MapSpec's — the
// map's v[k] (value+1, 0 = absent) is exactly the txn layer's wire form,
// so transactional cells need no second encoding. Sheds (and kNoSpace
// completions, which the service reports as kOverload) are no-ops, same
// as SvcSpec. Packings hold two keys < kMaxKeys and small values; the
// kTxnMCas expected/desired/witness fields are 12-bit WIRE-FORM words.
struct TxnSpec {
  static constexpr std::uint64_t kShed = SvcSpec::kShed;
  static constexpr unsigned kMaxKeys = MapSpec::kMaxKeys;

  using State = MapSpec::State;

  static std::uint64_t pack_args(std::uint64_t key, std::uint64_t value) {
    return MapSpec::pack_args(key, value);
  }

  static std::uint64_t pack_mget(std::uint64_t k1, std::uint64_t k2) {
    return k1 << 8 | k2;
  }
  static std::uint64_t mget_ret(std::uint64_t c1, std::uint64_t c2) {
    return c1 << 16 | c2;
  }
  static std::uint64_t pack_mput(std::uint64_t k1, std::uint64_t k2,
                                 std::uint64_t v1, std::uint64_t v2) {
    return k1 << 48 | k2 << 32 | v1 << 16 | v2;
  }
  static std::uint64_t pack_mcas(std::uint64_t k1, std::uint64_t k2,
                                 std::uint64_t e1, std::uint64_t e2,
                                 std::uint64_t d1, std::uint64_t d2) {
    return k1 << 56 | k2 << 48 | e1 << 36 | e2 << 24 | d1 << 12 | d2;
  }
  static std::uint64_t mcas_ret(bool matched, std::uint64_t w1,
                                std::uint64_t w2) {
    return static_cast<std::uint64_t>(matched) << 24 | w1 << 12 | w2;
  }

  static std::uint64_t hash(const State& s) { return MapSpec::hash(s); }

  static std::optional<State> apply(const State& s, const Operation& op) {
    if (op.ret == kShed) return s;  // no effect, any position legal
    State next = s;
    switch (op.kind) {
      case OpKind::kTxnMGet: {
        const std::uint64_t k1 = op.arg >> 8 & 0xff;
        const std::uint64_t k2 = op.arg & 0xff;
        if (k1 >= kMaxKeys || k2 >= kMaxKeys) return std::nullopt;
        if (op.ret != mget_ret(s.v[k1], s.v[k2])) return std::nullopt;
        return next;
      }
      case OpKind::kTxnMPut: {
        const std::uint64_t k1 = op.arg >> 48 & 0xffff;
        const std::uint64_t k2 = op.arg >> 32 & 0xffff;
        if (k1 >= kMaxKeys || k2 >= kMaxKeys) return std::nullopt;
        if (op.ret != 1) return std::nullopt;
        next.v[k1] = (op.arg >> 16 & 0xffff) + 1;
        next.v[k2] = (op.arg & 0xffff) + 1;
        return next;
      }
      case OpKind::kTxnMCas: {
        const std::uint64_t k1 = op.arg >> 56 & 0xff;
        const std::uint64_t k2 = op.arg >> 48 & 0xff;
        if (k1 >= kMaxKeys || k2 >= kMaxKeys) return std::nullopt;
        const std::uint64_t e1 = op.arg >> 36 & 0xfff;
        const std::uint64_t e2 = op.arg >> 24 & 0xfff;
        const std::uint64_t d1 = op.arg >> 12 & 0xfff;
        const std::uint64_t d2 = op.arg & 0xfff;
        const bool matched = s.v[k1] == e1 && s.v[k2] == e2;
        // The witness is the snapshot the transaction read: always the
        // current state, whether or not the comparison matched.
        if (op.ret != mcas_ret(matched, s.v[k1], s.v[k2])) {
          return std::nullopt;
        }
        if (matched) {
          next.v[k1] = d1;
          next.v[k2] = d2;
        }
        return next;
      }
      default:
        return MapSpec::apply(s, op);
    }
  }
};

}  // namespace moir
