// Spurious-failure injection for the RLL/RSC emulator.
//
// Hardware RSC may fail even when no conflicting write occurred (the paper's
// third RLL/RSC restriction): on the R4000 any cache invalidation — an
// unrelated line eviction, an interrupt, a context switch — clears the
// LLBit. We model this as a Bernoulli failure with configurable probability
// per RSC, plus a deterministic "fail the next n attempts" mode that tests
// use to drive specific retry paths. Counters let benches report how many
// failures were spurious vs. caused by real conflicts.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/rng.hpp"

namespace moir {

class FaultInjector {
 public:
  FaultInjector() = default;

  // probability in [0,1] of an injected spurious RSC failure.
  void set_spurious_probability(double probability) {
    prob_num_.store(static_cast<std::uint32_t>(probability * kDen),
                    std::memory_order_relaxed);
  }

  // Force the next `n` RSCs (across all threads) to fail spuriously.
  // Deterministic; used by unit tests to exercise retry loops.
  void force_failures(std::uint64_t n) {
    forced_.store(n, std::memory_order_relaxed);
  }

  // Called by the emulator. Returns true if this RSC should fail spuriously.
  bool should_fail() {
    std::uint64_t f = forced_.load(std::memory_order_relaxed);
    while (f > 0) {
      if (forced_.compare_exchange_weak(f, f - 1, std::memory_order_relaxed)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    const std::uint32_t p = prob_num_.load(std::memory_order_relaxed);
    if (p != 0 && tls_rng().chance(p, kDen)) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  std::uint64_t injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

  void reset_counters() { injected_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr std::uint32_t kDen = 1u << 24;

  static Xoshiro256& tls_rng() {
    thread_local Xoshiro256 rng{
        0x9e3779b97f4a7c15ULL ^
        reinterpret_cast<std::uintptr_t>(&rng)};  // distinct per thread
    return rng;
  }

  std::atomic<std::uint32_t> prob_num_{0};
  std::atomic<std::uint64_t> forced_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace moir
