// Yield-point injection for interleaving coverage on few-core hosts.
//
// The algorithms in src/core mark their interesting intermediate steps with
// MOIR_YIELD_POINT(). In normal builds this compiles to nothing. Test
// binaries define MOIR_ENABLE_YIELD_POINTS, which makes each marked step
// call std::this_thread::yield() with a per-thread-configurable probability.
// On this project's single-core CI host, preemption alone rarely lands
// between two adjacent instructions; randomized yields at algorithm steps
// recover the schedule diversity a multicore run would give.
//
// The hooks live only in headers (the core library is header-only), so a TU
// compiled with the macro and one without never share a definition.
#pragma once

#include <cstdint>

#ifdef MOIR_ENABLE_YIELD_POINTS
#include <thread>

#include "util/rng.hpp"

namespace moir::testing {

// Hook for the controlled scheduler (sim/controlled_scheduler.hpp): when a
// thread runs under systematic exploration, every yield point becomes a
// scheduling decision instead of a random yield.
class YieldInterceptor {
 public:
  virtual ~YieldInterceptor() = default;
  virtual void on_yield_point() = 0;
};

struct YieldState {
  // Probability of yielding at a marked point, as numerator/2^20.
  std::uint32_t yield_num = 0;
  Xoshiro256 rng{0xfeedface};
  YieldInterceptor* interceptor = nullptr;
};

inline thread_local YieldState tls_yield_state;

// Enables randomized yields on the calling thread. probability in [0,1].
inline void set_yield_probability(double probability, std::uint64_t seed) {
  tls_yield_state.yield_num =
      static_cast<std::uint32_t>(probability * (1u << 20));
  tls_yield_state.rng = Xoshiro256(seed);
}

// Routes this thread's yield points to `interceptor` (nullptr to restore
// random-yield behaviour).
inline void set_yield_interceptor(YieldInterceptor* interceptor) {
  tls_yield_state.interceptor = interceptor;
}

inline void maybe_yield() {
  auto& st = tls_yield_state;
  if (st.interceptor != nullptr) {
    st.interceptor->on_yield_point();
    return;
  }
  if (st.yield_num != 0 && st.rng.next_below(1u << 20) < st.yield_num) {
    std::this_thread::yield();
  }
}

}  // namespace moir::testing

#define MOIR_YIELD_POINT() ::moir::testing::maybe_yield()
#else
#define MOIR_YIELD_POINT() ((void)0)
#endif
