// Yield-point injection for interleaving coverage on few-core hosts.
//
// The algorithms in src/core mark their interesting intermediate steps with
// the MOIR_YIELD_* macros. In normal builds they compile to nothing. Test
// binaries define MOIR_ENABLE_YIELD_POINTS, which makes each marked step
// call std::this_thread::yield() with a per-thread-configurable probability.
// On this project's single-core CI host, preemption alone rarely lands
// between two adjacent instructions; randomized yields at algorithm steps
// recover the schedule diversity a multicore run would give.
//
// Under systematic exploration (sim/controlled_scheduler.hpp) every yield
// point is a scheduling decision instead. Yield points additionally carry
// *access metadata* — a StepInfo declaring which shared objects the step
// starting at this point will touch, and whether it reads or writes them.
// The sleep-set partial-order reduction in sim/explore.hpp uses that
// footprint to avoid permuting independent steps (different variables,
// read/read pairs). The contract for annotated code:
//
//   * a yield point is placed BEFORE the access(es) it covers, and its
//     StepInfo over-approximates every shared access performed from this
//     point up to the next yield point (or thread exit);
//   * code that cannot state its footprint uses the plain MOIR_YIELD_POINT,
//     whose StepInfo is opaque — treated as conflicting with everything,
//     which is always sound and merely forfeits reduction.
//
// The hooks live only in headers (the core library is header-only), so a TU
// compiled with the macro and one without never share a definition.
#pragma once

#include <cstdint>

#ifdef MOIR_ENABLE_YIELD_POINTS
#include <thread>

#include "util/rng.hpp"

namespace moir::testing {

// What a step does to one shared object. kUpdate is a read-modify-write
// (CAS); it conflicts like a write.
enum class AccessKind : std::uint8_t { kRead, kWrite, kUpdate };

struct Access {
  const void* obj = nullptr;
  AccessKind kind = AccessKind::kRead;
};

// Declared footprint of the step beginning at a yield point. A step with
// `opaque` set has an unknown footprint and is dependent with every other
// step. More accesses than kMaxAccesses degrade to opaque (never dropped).
struct StepInfo {
  static constexpr unsigned kMaxAccesses = 4;

  Access accesses[kMaxAccesses] = {};
  std::uint8_t count = 0;
  bool opaque = true;

  static StepInfo unknown() {
    StepInfo s;
    return s;
  }

  // A step with no shared accesses (thread-private work only).
  static StepInfo none() {
    StepInfo s;
    s.opaque = false;
    return s;
  }

  static StepInfo read(const void* obj) {
    return none().also(AccessKind::kRead, obj);
  }
  static StepInfo write(const void* obj) {
    return none().also(AccessKind::kWrite, obj);
  }
  static StepInfo update(const void* obj) {
    return none().also(AccessKind::kUpdate, obj);
  }

  StepInfo& also(AccessKind kind, const void* obj) {
    if (count >= kMaxAccesses) {
      opaque = true;  // footprint overflow: stay sound, lose reduction
      return *this;
    }
    accesses[count++] = Access{obj, kind};
    return *this;
  }
  StepInfo& also_read(const void* obj) { return also(AccessKind::kRead, obj); }
  StepInfo& also_write(const void* obj) {
    return also(AccessKind::kWrite, obj);
  }
  StepInfo& also_update(const void* obj) {
    return also(AccessKind::kUpdate, obj);
  }
};

// Valid (conservative) dependence relation: two steps of different threads
// are independent only if both footprints are declared and no object is
// shared with at least one side writing it.
inline bool steps_dependent(const StepInfo& a, const StepInfo& b) {
  if (a.opaque || b.opaque) return true;
  for (unsigned i = 0; i < a.count; ++i) {
    for (unsigned j = 0; j < b.count; ++j) {
      if (a.accesses[i].obj != b.accesses[j].obj) continue;
      if (a.accesses[i].kind != AccessKind::kRead ||
          b.accesses[j].kind != AccessKind::kRead) {
        return true;
      }
    }
  }
  return false;
}

// Hook for the controlled scheduler (sim/controlled_scheduler.hpp): when a
// thread runs under systematic exploration, every yield point becomes a
// scheduling decision instead of a random yield. `next_step` is the
// declared footprint of the step the thread will run when rescheduled.
class YieldInterceptor {
 public:
  virtual ~YieldInterceptor() = default;
  virtual void on_yield_point(const StepInfo& next_step) = 0;
};

struct YieldState {
  // Probability of yielding at a marked point, as numerator/2^20.
  std::uint32_t yield_num = 0;
  Xoshiro256 rng{0xfeedface};
  YieldInterceptor* interceptor = nullptr;
};

inline thread_local YieldState tls_yield_state;

// Enables randomized yields on the calling thread. probability in [0,1].
inline void set_yield_probability(double probability, std::uint64_t seed) {
  tls_yield_state.yield_num =
      static_cast<std::uint32_t>(probability * (1u << 20));
  tls_yield_state.rng = Xoshiro256(seed);
}

// Routes this thread's yield points to `interceptor` (nullptr to restore
// random-yield behaviour).
inline void set_yield_interceptor(YieldInterceptor* interceptor) {
  tls_yield_state.interceptor = interceptor;
}

inline void maybe_yield(const StepInfo& info) {
  auto& st = tls_yield_state;
  if (st.interceptor != nullptr) {
    st.interceptor->on_yield_point(info);
    return;
  }
  if (st.yield_num != 0 && st.rng.next_below(1u << 20) < st.yield_num) {
    std::this_thread::yield();
  }
}

}  // namespace moir::testing

#define MOIR_YIELD_POINT() \
  ::moir::testing::maybe_yield(::moir::testing::StepInfo::unknown())
#define MOIR_YIELD_READ(obj) \
  ::moir::testing::maybe_yield(::moir::testing::StepInfo::read(obj))
#define MOIR_YIELD_WRITE(obj) \
  ::moir::testing::maybe_yield(::moir::testing::StepInfo::write(obj))
#define MOIR_YIELD_UPDATE(obj) \
  ::moir::testing::maybe_yield(::moir::testing::StepInfo::update(obj))
// Arbitrary footprint: MOIR_YIELD_STEP(StepInfo::read(a).also_update(b)).
#define MOIR_YIELD_STEP(...) ::moir::testing::maybe_yield(__VA_ARGS__)
// Persist barrier (dur/pmem.hpp): the step beginning here commits `obj`'s
// durable shadow copy. It is a write access for dependence purposes — and,
// crucially, a scheduling decision point, which is what turns crash points
// into yield points: the crash-injection body (sim/crash.hpp) snapshots
// durable state at ITS decision points, so the DFS/PCT explorers place the
// crash before or after every persist commit.
#define MOIR_YIELD_PERSIST(obj) \
  ::moir::testing::maybe_yield(::moir::testing::StepInfo::write(obj))
#else
#define MOIR_YIELD_POINT() ((void)0)
#define MOIR_YIELD_READ(obj) ((void)0)
#define MOIR_YIELD_WRITE(obj) ((void)0)
#define MOIR_YIELD_UPDATE(obj) ((void)0)
#define MOIR_YIELD_STEP(...) ((void)0)
#define MOIR_YIELD_PERSIST(obj) ((void)0)
#endif
