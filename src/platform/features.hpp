// Runtime platform feature probes, reported by benches and the quickstart
// example so results are interpretable (C++ Core Guidelines CP.101:
// "distrust your hardware/compiler combination" — so we print it).
#pragma once

#include <cstddef>
#include <string>

namespace moir {

struct PlatformInfo {
  std::size_t hardware_threads = 0;
  bool atomic16_reports_lock_free = false;  // what std::atomic claims
  bool has_cx16_cpu_flag = false;           // what the CPU actually has
  std::string compiler;
};

PlatformInfo probe_platform();

// One-line summary suitable for bench headers.
std::string platform_summary();

}  // namespace moir
