// Software emulation of the restricted LL/SC (RLL/RSC) instructions.
//
// The paper defines RLL/RSC as the weakest common denominator of the
// hardware LL/SC implementations of its era (MIPS R4000, DEC Alpha,
// PowerPC):
//   1. no memory access is allowed between an RLL and the subsequent RSC;
//   2. no validate (VL) instruction exists;
//   3. RSC may fail spuriously; and
//   4. operands are a single machine word.
//
// This emulator reproduces those semantics on a machine that has only CAS:
//
//   * Each emulated word (`RllWord`) is physically a 128-bit
//     {version, value} pair. RLL records both halves; RSC performs a
//     double-width CAS that bumps the version. Any intervening successful
//     RSC — even one that wrote the same value back (ABA) — changes the
//     version and makes the reservation-holder's RSC fail, exactly like a
//     hardware reservation cleared by any store to the watched line.
//   * A `Processor` holds a single reservation (the R4000's one LLBit per
//     processor): a second RLL silently replaces the first, and an RSC whose
//     target does not match the current reservation fails (in debug builds
//     it additionally asserts, because it indicates misuse of the
//     restricted pair, i.e. a violation of restriction 1).
//   * Spurious failures (restriction 3) are injected by a FaultInjector
//     shared across processors, modelling cache-invalidation-induced
//     LLBit clears.
//
// A second RSC flavour, `rsc_weak`, implements value-only comparison (plain
// CAS semantics, ABA-blind). The paper's algorithms never rely on RSC for
// ABA protection — their tags do that — so they are correct on either
// flavour; bench_fig3_cas compares the cost of the two as an ablation.
#pragma once

#include <cstdint>

#include "platform/dwcas.hpp"
#include "platform/fault.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/cache.hpp"

namespace moir {

// One word of memory accessible through RLL/RSC (and plain reads — the
// paper's Figure 3 reads *addr directly at line 1). The paper assumes such
// words are not modified by any means other than (R)SC; this type enforces
// that by construction: there is no plain store.
class RllWord {
 public:
  explicit RllWord(std::uint64_t initial = 0) : cell_{0, initial} {}

  RllWord(const RllWord&) = delete;
  RllWord& operator=(const RllWord&) = delete;

  // Plain atomic read of the value (not a reservation).
  std::uint64_t read() const { return dw_load(&cell_).value; }

  // Number of successful RSCs ever applied; used by tests to observe ABA
  // writes that a value-only read cannot distinguish.
  std::uint64_t write_count() const { return dw_load(&cell_).version; }

  // Initialization only: resets the word before it is shared. NOT an
  // ordinary store — the paper's model has no plain stores to RLL/RSC
  // words, and using this concurrently with RSCs would break reservations.
  void reset_for_init(std::uint64_t value) { dw_store(&cell_, {0, value}); }

 private:
  friend class Processor;
  mutable VerVal cell_;
};

// Per-"processor" RLL/RSC execution context. In this library a processor is
// a thread; each thread owns one Processor (they are cheap).
class Processor {
 public:
  // `faults` may be null for a fault-free processor (useful in unit tests
  // that want deterministic success).
  explicit Processor(FaultInjector* faults = nullptr) : faults_(faults) {}

  // Copying a reservation makes no sense; moving one (e.g. when a thread
  // context is returned from a factory) is harmless.
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;
  Processor(Processor&&) = default;
  Processor& operator=(Processor&&) = default;

  // RLL: load the word and set the (single) reservation. The yield point
  // precedes the load it announces; &word identifies the cell to the
  // exploration engine.
  std::uint64_t rll(const RllWord& word) {
    reserved_word_ = &word;
    MOIR_YIELD_READ(&word);
    snapshot_ = dw_load(&word.cell_);
    return snapshot_.value;
  }

  // RSC: store `desired` iff the word is unchanged since the matching RLL
  // and no spurious failure is injected. Clears the reservation either way
  // (hardware SC also clears the LLBit on failure).
  bool rsc(RllWord& word, std::uint64_t desired) {
    ++stats_.attempts;
    if (reserved_word_ != &word) {
      // Restriction 1/2 violation or reservation lost to an intervening
      // RLL. Hardware would simply fail the SC; we do the same, but flag it
      // in debug builds because the paper's algorithms never do this.
      MOIR_ASSERT_MSG(reserved_word_ == &word,
                      "RSC without matching RLL reservation");
      ++stats_.no_reservation_failures;
      return false;
    }
    // With a fault injector attached, the step also touches the injector's
    // shared counters — declare it opaque so exploration never treats two
    // fault-consulting RSCs as independent.
    MOIR_YIELD_STEP(faults_ == nullptr
                        ? ::moir::testing::StepInfo::update(&word)
                        : ::moir::testing::StepInfo::unknown());
    reserved_word_ = nullptr;
    if (faults_ != nullptr && faults_->should_fail()) {
      ++stats_.spurious_failures;
      stats::count(stats::Id::kRscSpurious, 1, &word);
      return false;
    }
    VerVal expected = snapshot_;
    const VerVal next{snapshot_.version + 1, desired};
    if (dw_compare_exchange(&word.cell_, expected, next)) {
      ++stats_.successes;
      return true;
    }
    ++stats_.conflict_failures;
    stats::count(stats::Id::kRscConflict, 1, &word);
    return false;
  }

  // Value-only RSC (ABA-blind): succeeds if the *value* still matches the
  // one read by RLL, even if other writes happened in between.
  bool rsc_weak(RllWord& word, std::uint64_t desired) {
    ++stats_.attempts;
    if (reserved_word_ != &word) {
      MOIR_ASSERT_MSG(reserved_word_ == &word,
                      "RSC without matching RLL reservation");
      ++stats_.no_reservation_failures;
      return false;
    }
    MOIR_YIELD_STEP(faults_ == nullptr
                        ? ::moir::testing::StepInfo::update(&word)
                        : ::moir::testing::StepInfo::unknown());
    reserved_word_ = nullptr;
    if (faults_ != nullptr && faults_->should_fail()) {
      ++stats_.spurious_failures;
      stats::count(stats::Id::kRscSpurious, 1, &word);
      return false;
    }
    VerVal cur = dw_load(&word.cell_);
    while (cur.value == snapshot_.value) {
      VerVal expected = cur;
      if (dw_compare_exchange(&word.cell_, expected,
                              VerVal{cur.version + 1, desired})) {
        ++stats_.successes;
        return true;
      }
      cur = expected;  // compare_exchange wrote back the observed pair
    }
    ++stats_.conflict_failures;
    stats::count(stats::Id::kRscConflict, 1, &word);
    return false;
  }

  bool has_reservation() const { return reserved_word_ != nullptr; }

  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t conflict_failures = 0;
    std::uint64_t spurious_failures = 0;
    std::uint64_t no_reservation_failures = 0;
  };

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  FaultInjector* faults_;
  const RllWord* reserved_word_ = nullptr;
  VerVal snapshot_{};
  Stats stats_;
};

}  // namespace moir
