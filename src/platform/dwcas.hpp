// Double-width (128-bit) atomic operations.
//
// The RLL/RSC emulator stores each emulated word as a {version, value} pair
// so that an emulated RSC fails on *any* intervening write, including ABA
// writes — matching a hardware reservation, which is cleared by any store to
// the watched line regardless of the stored value.
//
// GCC on x86-64 routes 16-byte __atomic builtins through libatomic, which
// dispatches to cmpxchg16b at runtime when the CPU supports it (it does on
// every x86-64 made since 2006). std::atomic<16-byte struct> reports
// !is_lock_free() for ABI reasons even then, so we use the builtins
// directly. Correctness never depends on the dispatch: a mutex-backed
// fallback still gives atomicity, only weaker progress for the *emulator*
// (never for the paper's algorithms, whose progress claims we restate
// relative to the substrate).
#pragma once

#include <cstdint>

namespace moir {

struct alignas(16) VerVal {
  std::uint64_t version = 0;
  std::uint64_t value = 0;

  friend bool operator==(const VerVal&, const VerVal&) = default;
};

static_assert(sizeof(VerVal) == 16);

inline VerVal dw_load(const VerVal* addr) {
  VerVal out;
  __atomic_load(const_cast<VerVal*>(addr), &out, __ATOMIC_SEQ_CST);
  return out;
}

inline void dw_store(VerVal* addr, VerVal desired) {
  __atomic_store(addr, &desired, __ATOMIC_SEQ_CST);
}

// Strong compare-exchange; on failure `expected` is updated to the observed
// value, mirroring std::atomic::compare_exchange_strong.
inline bool dw_compare_exchange(VerVal* addr, VerVal& expected,
                                VerVal desired) {
  return __atomic_compare_exchange(addr, &expected, &desired,
                                   /*weak=*/false, __ATOMIC_SEQ_CST,
                                   __ATOMIC_SEQ_CST);
}

}  // namespace moir
