#include "platform/features.hpp"

#include <atomic>
#include <cstdio>
#include <thread>

#if defined(__x86_64__)
#include <cpuid.h>
#endif

#include "platform/dwcas.hpp"

namespace moir {

PlatformInfo probe_platform() {
  PlatformInfo info;
  info.hardware_threads = std::thread::hardware_concurrency();

  std::atomic<VerVal> probe{};
  info.atomic16_reports_lock_free = probe.is_lock_free();

#if defined(__x86_64__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    info.has_cx16_cpu_flag = (ecx & (1u << 13)) != 0;
  }
#endif

#if defined(__clang__)
  info.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  info.compiler = "gcc " __VERSION__;
#else
  info.compiler = "unknown";
#endif
  return info;
}

std::string platform_summary() {
  const PlatformInfo info = probe_platform();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "platform: %zu hw threads, cmpxchg16b=%s "
                "(std::atomic<16B>.is_lock_free=%s), %s",
                info.hardware_threads, info.has_cx16_cpu_flag ? "yes" : "no",
                info.atomic16_reports_lock_free ? "yes" : "no",
                info.compiler.c_str());
  return buf;
}

}  // namespace moir
