// Michael–Scott-style lock-free FIFO queue over small LL/VL/SC.
//
// This is the kind of published algorithm the paper's introduction is
// about: it needs LL/SC on *several* variables with sequences interleaved
// (head, tail, and a node's next link are live at once), which RLL/RSC
// cannot express — and which the paper's constructions restore.
//
// Nodes live in a bounded pool and are recycled through a lock-free free
// list. Recycling is safe without hazard pointers or epochs precisely
// because every link mutation goes through SC: a stale SC against a
// recycled node's next field fails (the field's tag advanced when the new
// owner reset it). On Figure 7 the announcement check plays the same role
// with bounded tags. Each operation keeps up to three LL-SC sequences
// alive, so Figure 7 substrates need k >= 3.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/llsc_traits.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "util/assertion.hpp"

namespace moir {

template <SmallLlscSubstrate S>
class MsQueue {
 public:
  using ThreadCtx = typename S::ThreadCtx;

  // Capacity is the number of pool nodes; one is permanently consumed as
  // the dummy, so at most capacity-1 values can be queued. `init_ctx` seeds
  // the free list and dummy (see TreiberStack for why it is a parameter).
  MsQueue(S& substrate, std::uint32_t capacity, ThreadCtx& init_ctx)
      : substrate_(substrate),
        capacity_(capacity),
        null_(capacity),
        next_(std::make_unique<typename S::Var[]>(capacity)),
        payload_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)),
        free_links_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)),
        free_(substrate, free_links_.get(), capacity) {
    MOIR_ASSERT_MSG(capacity >= 2, "need at least a dummy and one value");
    MOIR_ASSERT_MSG(capacity < substrate.max_value(),
                    "node indices must fit the substrate's value field");
    for (std::uint32_t i = 0; i < capacity; ++i) {
      substrate_.init_var(next_[i], null_);
    }
    // Node 0 is the initial dummy; the rest seed the free list.
    substrate_.init_var(head_, 0);
    substrate_.init_var(tail_, 0);
    for (std::uint32_t i = 1; i < capacity; ++i) free_.push(init_ctx, i);
  }

  // Returns false when the node pool is exhausted.
  bool enqueue(ThreadCtx& ctx, std::uint64_t value) {
    const auto node = free_.pop(ctx);
    if (!node) return false;
    payload_[*node].store(value, std::memory_order_relaxed);
    reset_next(ctx, *node);

    for (;;) {
      typename S::Keep kt, kn;
      const std::uint64_t t = substrate_.ll(ctx, tail_, kt);
      const std::uint64_t n = substrate_.ll(ctx, next_[t], kn);
      if (!substrate_.vl(ctx, tail_, kt)) {
        // t may no longer be the tail (and may even be recycled); the next
        // we read is then meaningless.
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        continue;
      }
      if (n != null_) {
        // Tail is lagging: help swing it, then retry.
        substrate_.sc(ctx, tail_, kt, n);
        substrate_.cl(ctx, kn);
        continue;
      }
      if (substrate_.sc(ctx, next_[t], kn, *node)) {  // linearization point
        substrate_.sc(ctx, tail_, kt, *node);  // swing; failure is benign
        return true;
      }
      substrate_.cl(ctx, kt);
    }
  }

  std::optional<std::uint64_t> dequeue(ThreadCtx& ctx) {
    for (;;) {
      typename S::Keep kh, kt, kn;
      const std::uint64_t h = substrate_.ll(ctx, head_, kh);
      const std::uint64_t t = substrate_.ll(ctx, tail_, kt);
      const std::uint64_t n = substrate_.ll(ctx, next_[h], kn);
      if (!substrate_.vl(ctx, head_, kh)) {
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kh);
        continue;
      }
      if (h == t) {
        if (n == null_) {
          substrate_.cl(ctx, kn);
          substrate_.cl(ctx, kt);
          substrate_.cl(ctx, kh);
          return std::nullopt;  // empty
        }
        // Tail lags behind an in-flight enqueue: help swing it.
        substrate_.sc(ctx, tail_, kt, n);
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kh);
        continue;
      }
      if (n == null_) {
        // Transient inconsistency (h moved between our loads); retry.
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kh);
        continue;
      }
      // Read the value before the SC: after it, n is the new dummy and h
      // may be recycled by another dequeuer at any time.
      const std::uint64_t value =
          payload_[n].load(std::memory_order_relaxed);
      if (substrate_.sc(ctx, head_, kh, n)) {
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kn);
        free_.push(ctx, static_cast<std::uint32_t>(h));
        return value;
      }
      substrate_.cl(ctx, kt);
      substrate_.cl(ctx, kn);
    }
  }

  bool empty() const {
    return substrate_.read(head_) == substrate_.read(tail_);
  }

 private:
  // Re-initialize a freshly-allocated node's next to null THROUGH the LL/SC
  // protocol, so its tag keeps advancing across recycles; a plain reset
  // would reintroduce ABA.
  void reset_next(ThreadCtx& ctx, std::uint32_t node) {
    for (;;) {
      typename S::Keep keep;
      substrate_.ll(ctx, next_[node], keep);
      if (substrate_.sc(ctx, next_[node], keep, null_)) return;
    }
  }

  S& substrate_;
  const std::uint32_t capacity_;
  const std::uint64_t null_;
  typename S::Var head_;
  typename S::Var tail_;
  std::unique_ptr<typename S::Var[]> next_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> payload_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_links_;
  IndexStack<S> free_;
};

}  // namespace moir
