// Michael–Scott-style lock-free FIFO queue over small LL/VL/SC.
//
// This is the kind of published algorithm the paper's introduction is
// about: it needs LL/SC on *several* variables with sequences interleaved
// (head, tail, and a node's next link are live at once), which RLL/RSC
// cannot express — and which the paper's constructions restore.
//
// Nodes live in a bounded pool and are recycled through a lock-free free
// list. Recycling is safe without hazard pointers or epochs precisely
// because every link mutation goes through SC: a stale SC against a
// recycled node's next field fails (the field's tag advanced when the new
// owner reset it). On Figure 7 the announcement check plays the same role
// with bounded tags. Each operation keeps up to three LL-SC sequences
// alive, so Figure 7 substrates need k >= 3.
// ReclaimedMsQueue at the bottom of this file is the same algorithm with
// nodes drawn from a lock-free allocator and *retired* through a pluggable
// Reclaimer (src/reclaim/) instead of recycled in place — the variant whose
// payload reads are made safe by SMR rather than by atomic payload slots.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/llsc_traits.hpp"
#include "nonblocking/treiber_stack.hpp"
#include "reclaim/block_allocator.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assertion.hpp"

namespace moir {

template <SmallLlscSubstrate S>
class MsQueue {
 public:
  using ThreadCtx = typename S::ThreadCtx;

  // Capacity is the number of pool nodes; one is permanently consumed as
  // the dummy, so at most capacity-1 values can be queued. `init_ctx` seeds
  // the free list and dummy (see TreiberStack for why it is a parameter).
  MsQueue(S& substrate, std::uint32_t capacity, ThreadCtx& init_ctx)
      : substrate_(substrate),
        capacity_(capacity),
        null_(capacity),
        next_(std::make_unique<typename S::Var[]>(capacity)),
        payload_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)),
        free_links_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)),
        free_(substrate, free_links_.get(), capacity) {
    MOIR_ASSERT_MSG(capacity >= 2, "need at least a dummy and one value");
    MOIR_ASSERT_MSG(capacity < substrate.max_value(),
                    "node indices must fit the substrate's value field");
    for (std::uint32_t i = 0; i < capacity; ++i) {
      substrate_.init_var(next_[i], null_);
    }
    // Node 0 is the initial dummy; the rest seed the free list.
    substrate_.init_var(head_, 0);
    substrate_.init_var(tail_, 0);
    for (std::uint32_t i = 1; i < capacity; ++i) free_.push(init_ctx, i);
  }

  // Returns false when the node pool is exhausted.
  bool enqueue(ThreadCtx& ctx, std::uint64_t value) {
    const auto node = free_.pop(ctx);
    if (!node) return false;
    payload_[*node].store(value, std::memory_order_relaxed);
    reset_next(ctx, *node);

    for (;;) {
      typename S::Keep kt, kn;
      const std::uint64_t t = substrate_.ll(ctx, tail_, kt);
      const std::uint64_t n = substrate_.ll(ctx, next_[t], kn);
      if (!substrate_.vl(ctx, tail_, kt)) {
        // t may no longer be the tail (and may even be recycled); the next
        // we read is then meaningless.
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        continue;
      }
      if (n != null_) {
        // Tail is lagging: help swing it, then retry.
        substrate_.sc(ctx, tail_, kt, n);
        substrate_.cl(ctx, kn);
        continue;
      }
      if (substrate_.sc(ctx, next_[t], kn, *node)) {  // linearization point
        substrate_.sc(ctx, tail_, kt, *node);  // swing; failure is benign
        return true;
      }
      substrate_.cl(ctx, kt);
    }
  }

  std::optional<std::uint64_t> dequeue(ThreadCtx& ctx) {
    for (;;) {
      typename S::Keep kh, kt, kn;
      const std::uint64_t h = substrate_.ll(ctx, head_, kh);
      const std::uint64_t t = substrate_.ll(ctx, tail_, kt);
      const std::uint64_t n = substrate_.ll(ctx, next_[h], kn);
      if (!substrate_.vl(ctx, head_, kh)) {
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kh);
        continue;
      }
      if (h == t) {
        if (n == null_) {
          substrate_.cl(ctx, kn);
          substrate_.cl(ctx, kt);
          substrate_.cl(ctx, kh);
          return std::nullopt;  // empty
        }
        // Tail lags behind an in-flight enqueue: help swing it.
        substrate_.sc(ctx, tail_, kt, n);
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kh);
        continue;
      }
      if (n == null_) {
        // Transient inconsistency (h moved between our loads); retry.
        substrate_.cl(ctx, kn);
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kh);
        continue;
      }
      // Read the value before the SC: after it, n is the new dummy and h
      // may be recycled by another dequeuer at any time.
      const std::uint64_t value =
          payload_[n].load(std::memory_order_relaxed);
      if (substrate_.sc(ctx, head_, kh, n)) {
        substrate_.cl(ctx, kt);
        substrate_.cl(ctx, kn);
        free_.push(ctx, static_cast<std::uint32_t>(h));
        return value;
      }
      substrate_.cl(ctx, kt);
      substrate_.cl(ctx, kn);
    }
  }

  bool empty() const {
    return substrate_.read(head_) == substrate_.read(tail_);
  }

 private:
  // Re-initialize a freshly-allocated node's next to null THROUGH the LL/SC
  // protocol, so its tag keeps advancing across recycles; a plain reset
  // would reintroduce ABA.
  void reset_next(ThreadCtx& ctx, std::uint32_t node) {
    for (;;) {
      typename S::Keep keep;
      substrate_.ll(ctx, next_[node], keep);
      if (substrate_.sc(ctx, next_[node], keep, null_)) return;
    }
  }

  S& substrate_;
  const std::uint32_t capacity_;
  const std::uint64_t null_;
  typename S::Var head_;
  typename S::Var tail_;
  std::unique_ptr<typename S::Var[]> next_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> payload_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_links_;
  IndexStack<S> free_;
};

// ---------------------------------------------------------------------------
// M&S queue over a Reclaimer: dequeued dummies are retired, not recycled in
// place. Michael's two-hazard protocol: a dequeuer protects the head h
// (slot 0) and then h's successor n (slot 1), each validated by re-checking
// that head is unchanged — while head == h, h is not yet retired (retire
// follows the head-swinging SC) and n is not either (n can only be retired
// after it has itself been the head and been swung past, which requires
// head to move to n first). The enqueuer needs only slot 0, for the tail
// node whose next link it is about to SC. Payloads are plain fields; the
// reclaimer is exactly what makes reading them safe.
// ---------------------------------------------------------------------------
template <SmallLlscSubstrate S, reclaim::Reclaimer R>
class ReclaimedMsQueue {
 public:
  struct ThreadCtx {
    typename S::ThreadCtx sub;
    typename R::ThreadCtx rec;
  };

  // One block is consumed immediately as the initial dummy, so at most
  // capacity-1 values are in the queue at once — less while retired dummies
  // sit in reclaimer limbo.
  ReclaimedMsQueue(S& substrate, unsigned max_threads, std::uint32_t capacity)
      : substrate_(substrate),
        capacity_(capacity),
        alloc_(capacity,
               [&](Node& n) { substrate.init_var(n.next, capacity); }),
        reclaimer_(max_threads,
                   [this](std::uint32_t idx) { alloc_.free(idx); }) {
    MOIR_ASSERT_MSG(capacity >= 2, "need at least a dummy and one value");
    MOIR_ASSERT_MSG(capacity < substrate.max_value(),
                    "node indices must fit the substrate's value field");
    const auto dummy = alloc_.alloc();
    MOIR_ASSERT(dummy.has_value());
    substrate_.init_var(head_, *dummy);
    substrate_.init_var(tail_, *dummy);
  }

  ThreadCtx make_ctx() {
    return ThreadCtx{substrate_.make_ctx(), reclaimer_.make_ctx()};
  }

  bool enqueue(ThreadCtx& ctx, std::uint64_t value) {
    reclaimer_.enter(ctx.rec);
    const auto node = alloc_.alloc();
    if (!node) {
      reclaimer_.exit(ctx.rec);
      return false;
    }
    Node& nn = alloc_.node(*node);
    nn.value = value;
    set_next(ctx, nn, capacity_);

    for (;;) {
      typename S::Keep kt, kn;
      const std::uint64_t t = substrate_.ll(ctx.sub, tail_, kt);
      reclaimer_.protect(ctx.rec, 0, static_cast<std::uint32_t>(t));
      if (!substrate_.vl(ctx.sub, tail_, kt)) {
        // Tail moved before our announcement was provably visible; t may
        // be anywhere in its lifecycle by now.
        substrate_.cl(ctx.sub, kt);
        continue;
      }
      Node& tn = alloc_.node(static_cast<std::uint32_t>(t));
      const std::uint64_t n = substrate_.ll(ctx.sub, tn.next, kn);
      if (n != capacity_) {
        // Tail is lagging: help swing it, then retry.
        substrate_.sc(ctx.sub, tail_, kt, n);
        substrate_.cl(ctx.sub, kn);
        continue;
      }
      if (substrate_.sc(ctx.sub, tn.next, kn, *node)) {  // linearization
        substrate_.sc(ctx.sub, tail_, kt, *node);  // swing; failure benign
        break;
      }
      substrate_.cl(ctx.sub, kt);
    }
    reclaimer_.clear(ctx.rec, 0);
    reclaimer_.exit(ctx.rec);
    return true;
  }

  std::optional<std::uint64_t> dequeue(ThreadCtx& ctx) {
    reclaimer_.enter(ctx.rec);
    const std::optional<std::uint64_t> out = dequeue_entered(ctx);
    reclaimer_.clear(ctx.rec, 0);
    reclaimer_.clear(ctx.rec, 1);
    reclaimer_.exit(ctx.rec);
    return out;
  }

  // Pops up to `max` values into `out` under a SINGLE reclaimer
  // enter/exit — the announcement (hazard publication or epoch pin) is
  // amortized over the whole batch, which is the batching executor's main
  // per-request saving. Returns the number popped (0 = empty). Holding the
  // epoch pin across the batch delays reclamation by at most `max`
  // dequeues, a bound the caller picks.
  unsigned dequeue_batch(ThreadCtx& ctx, std::uint64_t* out, unsigned max) {
    if (max == 0) return 0;
    reclaimer_.enter(ctx.rec);
    unsigned n = 0;
    while (n < max) {
      const auto v = dequeue_entered(ctx);
      if (!v) break;
      out[n++] = *v;
    }
    reclaimer_.clear(ctx.rec, 0);
    reclaimer_.clear(ctx.rec, 1);
    reclaimer_.exit(ctx.rec);
    return n;
  }

 private:
  // One dequeue attempt loop, assuming the caller already entered the
  // reclaimer. Leaves hazard slots 0/1 dirty; the caller clears them once
  // per enter/exit bracket.
  std::optional<std::uint64_t> dequeue_entered(ThreadCtx& ctx) {
    std::optional<std::uint64_t> out;
    for (;;) {
      typename S::Keep kh, kt, kn;
      const std::uint64_t h = substrate_.ll(ctx.sub, head_, kh);
      reclaimer_.protect(ctx.rec, 0, static_cast<std::uint32_t>(h));
      if (!substrate_.vl(ctx.sub, head_, kh)) {
        substrate_.cl(ctx.sub, kh);
        continue;
      }
      // h is protected and was head when the announcement was visible.
      const std::uint64_t t = substrate_.ll(ctx.sub, tail_, kt);
      Node& hn = alloc_.node(static_cast<std::uint32_t>(h));
      const std::uint64_t n = substrate_.ll(ctx.sub, hn.next, kn);
      if (!substrate_.vl(ctx.sub, head_, kh)) {
        substrate_.cl(ctx.sub, kn);
        substrate_.cl(ctx.sub, kt);
        substrate_.cl(ctx.sub, kh);
        continue;
      }
      if (h == t) {
        if (n == capacity_) {
          substrate_.cl(ctx.sub, kn);
          substrate_.cl(ctx.sub, kt);
          substrate_.cl(ctx.sub, kh);
          break;  // empty
        }
        substrate_.sc(ctx.sub, tail_, kt, n);  // help the lagging tail
        substrate_.cl(ctx.sub, kn);
        substrate_.cl(ctx.sub, kh);
        continue;
      }
      if (n == capacity_) {
        // Transient inconsistency; retry.
        substrate_.cl(ctx.sub, kn);
        substrate_.cl(ctx.sub, kt);
        substrate_.cl(ctx.sub, kh);
        continue;
      }
      // Protect the successor before reading its payload. While head == h
      // (validated below through the head SC's own tag check), n cannot
      // have been retired, so the announcement is in time.
      reclaimer_.protect(ctx.rec, 1, static_cast<std::uint32_t>(n));
      if (!substrate_.vl(ctx.sub, head_, kh)) {
        substrate_.cl(ctx.sub, kn);
        substrate_.cl(ctx.sub, kt);
        substrate_.cl(ctx.sub, kh);
        continue;
      }
      const std::uint64_t value =
          alloc_.node(static_cast<std::uint32_t>(n)).value;
      if (substrate_.sc(ctx.sub, head_, kh, n)) {
        substrate_.cl(ctx.sub, kt);
        substrate_.cl(ctx.sub, kn);
        reclaimer_.retire(ctx.rec, static_cast<std::uint32_t>(h));
        out = value;
        break;
      }
      substrate_.cl(ctx.sub, kt);
      substrate_.cl(ctx.sub, kn);
    }
    return out;
  }

 public:
  bool empty() const {
    return substrate_.read(head_) == substrate_.read(tail_);
  }

  R& reclaimer() { return reclaimer_; }
  std::uint32_t capacity() const { return capacity_; }
  void flush(ThreadCtx& ctx) { reclaimer_.flush(ctx.rec); }

  std::uint64_t free_blocks_quiescent() const {
    return alloc_.free_count_quiescent();
  }

 private:
  struct Node {
    std::uint64_t value = 0;  // plain: SMR-protected, not atomic
    typename S::Var next;
  };

  void set_next(ThreadCtx& ctx, Node& n, std::uint64_t next) {
    for (;;) {
      typename S::Keep keep;
      substrate_.ll(ctx.sub, n.next, keep);
      if (substrate_.sc(ctx.sub, n.next, keep, next)) return;
    }
  }

  S& substrate_;
  const std::uint32_t capacity_;
  typename S::Var head_;
  typename S::Var tail_;
  reclaim::BlockAllocator<Node> alloc_;
  R reclaimer_;  // declared last: frees through alloc_ on destruction
};

}  // namespace moir
