// Wait-free small-object universal construction (Herlihy [7], announce
// style) over the W-word WLL/VL/SC of Figure 6.
//
// UniversalObject (universal.hpp) is lock-free: an unlucky process can
// retry forever while others win. This construction is wait-free: each
// process announces its operation, and every successful SC applies ALL
// pending announced operations (its own and everyone else's) in one shot.
// A process completes as soon as it observes its announcement applied —
// whether by its own SC or a helper's — so a bounded number of other
// processes' successes suffices to finish any operation.
//
// The shared state therefore carries, besides the user object, one
// {applied_seq, result} pair per process, so that results of helped
// operations survive until their owner collects them. Everything lives in
// one wide variable; the announcement array is separate ordinary memory,
// exactly like Figure 6's own A array.
//
// Operations must be encodable as (op id, argument) and applied by a
// deterministic user-supplied functor: helpers re-execute them, so they
// must be pure.
//
// Progress note: completion needs one successful WLL after the operation
// is applied. WLL itself can be starved by a continuous stream of SCs, so
// formally this is wait-free relative to WLL's progress (Herlihy's
// original pays extra machinery to close that gap); in every schedule a
// scheduler actually produces, the op is applied by the FIRST successful
// SC after announcement and collected shortly after.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/value_codec.hpp"
#include "core/wide_llsc.hpp"
#include "util/assertion.hpp"
#include "util/cache.hpp"

namespace moir {

// Applier: State apply(State, opid, arg, result_out) — deterministic.
template <WideStorable State, typename Applier, unsigned TagBits = 32>
class WaitFreeUniversal {
 public:
  using Domain = WideLlsc<TagBits>;
  using ThreadCtx = typename Domain::ThreadCtx;
  static constexpr unsigned kChunkBits = Domain::kChunkBits;

  struct OpResult {
    std::uint64_t value = 0;
  };

 private:
  // Per-process bookkeeping embedded in the shared wide variable.
  struct Cell {
    std::uint32_t applied_seq = 0;
    std::uint64_t result = 0;
  };

 public:
  static unsigned required_width(unsigned n_processes) {
    return static_cast<unsigned>(
        chunks_needed(image_bytes(n_processes), kChunkBits));
  }

  WaitFreeUniversal(Domain& domain, unsigned n_processes, Applier applier,
                    const State& initial)
      : domain_(domain),
        n_(n_processes),
        applier_(std::move(applier)),
        announce_(n_processes) {
    MOIR_ASSERT_MSG(domain.width() == required_width(n_processes),
                    "domain width must match state + per-process cells");
    std::vector<std::byte> image(image_bytes(n_));
    encode_state(image, initial);
    std::vector<std::uint64_t> chunks(domain_.width());
    encode_bytes(image, chunks, kChunkBits);
    domain_.init_var(var_, chunks);
  }

  // Applies (opid, arg) atomically; wait-free: returns after at most a
  // bounded number of other processes' successful SCs. Returns the
  // operation's result as computed by the applier.
  std::uint64_t apply(ThreadCtx& ctx, std::uint32_t opid, std::uint64_t arg) {
    const unsigned p = ctx.pid;
    Announcement& ann = *announce_[p];
    const std::uint32_t my_seq = ann.seq.load(std::memory_order_relaxed) + 1;
    ann.opid.store(opid, std::memory_order_relaxed);
    ann.arg.store(arg, std::memory_order_relaxed);
    // Publishing the seq makes the announcement visible to helpers; the
    // seq is written last (release) so helpers never apply a half-written
    // announcement.
    ann.seq.store(my_seq, std::memory_order_release);

    std::vector<std::uint64_t> chunks(domain_.width());
    std::vector<std::byte> image(image_bytes(n_));
    for (;;) {
      typename Domain::Keep keep;
      if (!domain_.wll(ctx, var_, keep, chunks).success) continue;
      decode_bytes(chunks, image, kChunkBits);

      // Done already? (A helper applied us.)
      if (load_cell(image, p).applied_seq == my_seq) {
        return load_cell(image, p).result;
      }

      // Apply every pending announced operation, own included. A torn
      // read of a neighbour's announcement (seq from one incarnation,
      // arg from the next) is possible only if a successful SC intervened
      // since our WLL — in which case our own SC below fails and the
      // mixed batch is discarded, never committed.
      State state = decode_state(image);
      for (unsigned q = 0; q < n_; ++q) {
        Announcement& a = *announce_[q];
        const std::uint32_t seq = a.seq.load(std::memory_order_acquire);
        Cell cell = load_cell(image, q);
        if (seq == cell.applied_seq) continue;  // nothing pending
        std::uint64_t result = 0;
        state = applier_(state, a.opid.load(std::memory_order_relaxed),
                         a.arg.load(std::memory_order_relaxed), &result);
        cell.applied_seq = seq;
        cell.result = result;
        store_cell(image, q, cell);
      }
      encode_state(image, state);
      encode_bytes(image, chunks, kChunkBits);
      if (domain_.sc(ctx, var_, keep, chunks)) {
        // Our batch committed; it included our own operation.
        decode_bytes(chunks, image, kChunkBits);
        MOIR_ASSERT(load_cell(image, p).applied_seq == my_seq);
        return load_cell(image, p).result;
      }
      // SC failed => someone else's batch committed; it may have included
      // us. Loop re-reads and checks.
    }
  }

  State read(ThreadCtx& ctx) const {
    std::vector<std::uint64_t> chunks(domain_.width());
    std::vector<std::byte> image(image_bytes(n_));
    domain_.read(ctx, var_, chunks);
    decode_bytes(chunks, image, kChunkBits);
    return decode_state(image);
  }

 private:
  struct Announcement {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> opid{0};
    std::atomic<std::uint64_t> arg{0};
  };

  static std::size_t image_bytes(unsigned n) {
    return sizeof(State) + n * sizeof(Cell);
  }

  // memcpy-based cell access: the byte image has no alignment guarantees.
  static Cell load_cell(const std::vector<std::byte>& image, unsigned q) {
    Cell c;
    std::memcpy(&c, image.data() + sizeof(State) + q * sizeof(Cell),
                sizeof(Cell));
    return c;
  }
  static void store_cell(std::vector<std::byte>& image, unsigned q,
                         const Cell& c) {
    std::memcpy(image.data() + sizeof(State) + q * sizeof(Cell), &c,
                sizeof(Cell));
  }

  static void encode_state(std::vector<std::byte>& image, const State& s) {
    std::memcpy(image.data(), &s, sizeof(State));
  }
  static State decode_state(const std::vector<std::byte>& image) {
    State s;
    std::memcpy(&s, image.data(), sizeof(State));
    return s;
  }

  Domain& domain_;
  const unsigned n_;
  Applier applier_;
  mutable typename Domain::Var var_;
  std::vector<Padded<Announcement>> announce_;
};

}  // namespace moir
