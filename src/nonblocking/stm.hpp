// Static software transactional memory over the paper's LL/VL/SC.
//
// Section 5 of the paper argues, against Greenwald & Cheriton, that
// software transactional memory [Shavit–Touitou, PODC'95] *can* be hosted
// on existing machines because the primitives it needs can be emulated —
// this module is that claim made executable. It is a static STM in the
// ST sense: a transaction declares its (sorted) data set up front and its
// body is a deterministic function of the values read, so any process can
// re-execute it on the owner's behalf.
//
// Design (ST/Barnes-style cooperative two-phase locking with helping):
//  * Memory is an array of cells, each a Figure-4 LL/VL/SC variable whose
//    31-bit payload is either a value or a lock record {owner pid, seq}.
//  * Each process owns one transaction descriptor, reused across
//    transactions and versioned by `seq`. All mutations of cells are SCs
//    whose expected word embeds the substrate tag, so stale helpers can
//    never corrupt a cell (their SCs fail).
//  * Acquisition is in ascending address order, which rules out help
//    cycles; a process blocked by a lock helps the lock's owner to
//    completion, making the construction lock-free: every retry or abort
//    is caused by another transaction's successful step.
//  * Each cell's pre-lock value is recorded in the descriptor by a
//    seq-tagged claim-once slot BEFORE the lock is taken, so all helpers
//    agree on the read set and an orphaned lock can never be created.
//  * Descriptor reuse is made safe by a helper count: help() registers
//    itself and revalidates seq, and a process starting a new transaction
//    first bumps seq (turning away new helpers) and waits for registered
//    helpers to drain. This wait is bounded — a registered helper finishes
//    its sweep in O(set size) of its own steps — and is the one place the
//    construction trades pure lock-freedom for descriptor reuse, as
//    documented in DESIGN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "core/llsc_from_cas.hpp"
#include "core/process_registry.hpp"
#include "platform/yield_point.hpp"
#include "stats/stats.hpp"
#include "util/assertion.hpp"
#include "util/backoff.hpp"
#include "util/cache.hpp"

namespace moir {

class Stm {
 public:
  // Transaction body: news[i] := f(olds) for each declared cell, computed
  // deterministically from olds and arg only. Values are 31-bit.
  using TxOp = void (*)(const std::uint64_t* olds, std::uint64_t* news,
                        unsigned n, std::uint64_t arg);

  static constexpr unsigned kMaxTxCells = 8;
  static constexpr std::uint64_t kMaxValue = (1u << 31) - 1;

  struct ThreadCtx {
    unsigned pid = 0;
  };

  Stm(unsigned n_processes, std::size_t n_cells)
      : n_(n_processes), cells_(n_cells), desc_(n_processes),
        registry_(n_processes) {
    MOIR_ASSERT(n_processes >= 1 && n_processes <= 256);
    // cells_ value-initialized all cells to 0 already.
  }

  ThreadCtx make_ctx() { return ThreadCtx{registry_.register_process()}; }

  std::size_t size() const { return cells_.size(); }

  // Non-transactional initialization (before concurrent use only).
  void set_initial(std::size_t cell, std::uint64_t value) {
    MOIR_ASSERT(value <= kMaxValue);
    Cells::Var tmp(value);
    // Vars are not assignable; re-init in place through the substrate.
    cells_[cell].~Var();
    new (&cells_[cell]) Cells::Var(value);
  }

  struct TxResult {
    bool committed = false;
    unsigned aborts = 0;  // failed attempts before the commit
    std::uint64_t olds[kMaxTxCells] = {};
  };

  // Runs the transaction to commitment, retrying aborted attempts.
  // `addrs` must be sorted, duplicate-free cell indices.
  TxResult transact(ThreadCtx& ctx, std::span<const std::uint32_t> addrs,
                    TxOp op, std::uint64_t arg) {
    TxResult result;
    SpinWait backoff;
    while (!try_transact(ctx, addrs, op, arg, result)) {
      ++result.aborts;
      MOIR_YIELD_POINT();
      // An abort means a conflicting transaction won the cells: back off
      // before re-acquiring so repeated losers desynchronize (aborts stay
      // visible through stm_abort / the aborts-per-commit histogram).
      backoff.pause();
    }
    result.committed = true;
    stats::record(stats::HistId::kStmAbortsPerCommit, result.aborts);
    return result;
  }

  // Single attempt; returns false on abort (a concurrent conflict).
  bool try_transact(ThreadCtx& ctx, std::span<const std::uint32_t> addrs,
                    TxOp op, std::uint64_t arg, TxResult& result) {
    MOIR_ASSERT(addrs.size() >= 1 && addrs.size() <= kMaxTxCells);
    for (std::size_t i = 0; i + 1 < addrs.size(); ++i) {
      MOIR_ASSERT_MSG(addrs[i] < addrs[i + 1],
                      "transaction data set must be sorted and unique");
    }
    MOIR_ASSERT(addrs.back() < cells_.size());

    Descriptor& d = *desc_[ctx.pid];
    // Turn away new helpers, then wait for registered ones to drain.
    const std::uint32_t seq =
        d.seq.fetch_add(1, std::memory_order_seq_cst) + 1;
    while (d.helpers.load(std::memory_order_seq_cst) != 0) {
      // Under the ControlledScheduler this spin cannot make solo progress
      // (the registered helper needs to run), so expose a decision point —
      // a no-op in production builds.
      MOIR_YIELD_POINT();
      std::this_thread::yield();
    }
    // Reset the descriptor for this incarnation. Safe: no helper is
    // registered and none can register for the old seq anymore.
    d.n.store(static_cast<std::uint32_t>(addrs.size()),
              std::memory_order_relaxed);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      d.addrs[i].store(addrs[i], std::memory_order_relaxed);
      d.old[i].store(OldSlot::unset(seq), std::memory_order_relaxed);
    }
    d.op.store(op, std::memory_order_relaxed);
    d.arg.store(arg, std::memory_order_relaxed);
    d.status.store(Status::make(seq, Status::kActive),
                   std::memory_order_seq_cst);

    run_phases(d, ctx.pid, seq, /*depth=*/0);

    const std::uint64_t st = d.status.load(std::memory_order_seq_cst);
    if (Status::state(st) != Status::kCommitted) {
      aborts_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Id::kStmAbort, 1, this);
      return false;
    }
    commits_.fetch_add(1, std::memory_order_relaxed);
    stats::count(stats::Id::kStmCommit, 1, this);
    const unsigned n = d.n.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < n; ++i) {
      result.olds[i] =
          OldSlot::value(d.old[i].load(std::memory_order_relaxed));
    }
    return true;
  }

  // Transactional read of one cell (helps out in-flight writers).
  std::uint64_t read(ThreadCtx&, std::size_t cell) {
    SpinWait backoff;
    for (;;) {
      Cells::Keep keep;
      const std::uint64_t v = Cells::ll(cells_[cell], keep);
      if (!is_locked(v)) return v;
      help(lock_pid(v), lock_seq23(v), /*depth=*/0);
      // The owner may immediately relock for its next transaction; backing
      // off between helping rounds keeps the reader from racing it for the
      // cell line every iteration.
      backoff.pause();
    }
  }

  // One tagged observation of a cell, no helping. The tag is the
  // substrate's modification counter: every successful SC on the cell
  // (lock install, write-back, release) advances it, so two peeks
  // returning equal {tag, unlocked} bracket an interval in which the cell
  // was not written — the double-collect validation the txn layer's
  // multi-get builds on (docs/ALGORITHMS.md "tags as version counters").
  struct CellView {
    std::uint64_t value = 0;
    std::uint64_t tag = 0;
    bool locked = false;
    unsigned owner = 0;        // meaningful iff locked
    std::uint32_t owner_seq23 = 0;
  };

  CellView peek(std::size_t cell) {
    Cells::Keep keep;
    const std::uint64_t v = Cells::ll(cells_[cell], keep);
    CellView view;
    view.tag = keep.tag();
    view.locked = is_locked(v);
    if (view.locked) {
      view.owner = lock_pid(v);
      view.owner_seq23 = lock_seq23(v);
    } else {
      view.value = v;
    }
    return view;
  }

  // Drive the owner of a locked CellView to completion (public entry for
  // readers that observed the lock via peek() and want to clear it).
  void help_locked(const CellView& view) {
    MOIR_ASSERT(view.locked);
    help(view.owner, view.owner_seq23, /*depth=*/0);
  }

  // Diagnostics for tests: true if any cell is currently locked.
  bool any_cell_locked() {
    for (auto& c : cells_) {
      Cells::Keep keep;
      if (is_locked(Cells::ll(c, keep))) return true;
    }
    return false;
  }

  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t helps = 0;  // times one process drove another's txn
  };

  Stats stats() const {
    return Stats{commits_.load(std::memory_order_relaxed),
                 aborts_.load(std::memory_order_relaxed),
                 helps_.load(std::memory_order_relaxed)};
  }

 private:
  using Cells = LlscFromCas<32>;

  // --- cell payload encoding (31-bit values / lock records) --------------
  static constexpr std::uint64_t kLockBit = 1u << 31;
  static bool is_locked(std::uint64_t v) { return (v & kLockBit) != 0; }
  static std::uint64_t lock_word(unsigned pid, std::uint32_t seq) {
    return kLockBit | (static_cast<std::uint64_t>(pid & 0xff) << 23) |
           (seq & ((1u << 23) - 1));
  }
  static unsigned lock_pid(std::uint64_t v) {
    return static_cast<unsigned>((v >> 23) & 0xff);
  }
  static std::uint32_t lock_seq23(std::uint64_t v) {
    return static_cast<std::uint32_t>(v & ((1u << 23) - 1));
  }

  // --- descriptor field encodings ----------------------------------------
  struct Status {
    static constexpr std::uint64_t kActive = 0;
    static constexpr std::uint64_t kCommitted = 1;
    static constexpr std::uint64_t kAborted = 2;
    static std::uint64_t make(std::uint32_t seq, std::uint64_t state) {
      return (static_cast<std::uint64_t>(seq) << 2) | state;
    }
    static std::uint32_t seq(std::uint64_t w) {
      return static_cast<std::uint32_t>(w >> 2);
    }
    static std::uint64_t state(std::uint64_t w) { return w & 3; }
  };

  struct OldSlot {
    static std::uint64_t unset(std::uint32_t seq) {
      return static_cast<std::uint64_t>(seq) << 32;
    }
    static std::uint64_t set(std::uint32_t seq, std::uint64_t value) {
      return (static_cast<std::uint64_t>(seq) << 32) | (1u << 31) | value;
    }
    static bool is_set(std::uint64_t w) { return (w & (1u << 31)) != 0; }
    static std::uint32_t seq(std::uint64_t w) {
      return static_cast<std::uint32_t>(w >> 32);
    }
    static std::uint64_t value(std::uint64_t w) { return w & kMaxValue; }
  };

  struct Descriptor {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> helpers{0};
    std::atomic<std::uint64_t> status{Status::make(0, Status::kCommitted)};
    std::atomic<std::uint32_t> n{0};
    std::atomic<std::uint32_t> addrs[kMaxTxCells] = {};
    std::atomic<std::uint64_t> old[kMaxTxCells] = {};
    std::atomic<TxOp> op{nullptr};
    std::atomic<std::uint64_t> arg{0};
  };

  // Register as a helper of {pid, seq23} and run its phases. The counter +
  // revalidation handshake makes descriptor reuse safe (see header note).
  void help(unsigned pid, std::uint32_t seq23, unsigned depth) {
    MOIR_ASSERT_MSG(depth <= n_, "help chain longer than process count");
    Descriptor& d = *desc_[pid];
    d.helpers.fetch_add(1, std::memory_order_seq_cst);
    const std::uint32_t seq = d.seq.load(std::memory_order_seq_cst);
    if ((seq & ((1u << 23) - 1)) == seq23) {
      helps_.fetch_add(1, std::memory_order_relaxed);
      stats::count(stats::Id::kStmHelp, 1, this);
      run_phases(d, pid, seq, depth);
    }
    d.helpers.fetch_sub(1, std::memory_order_seq_cst);
  }

  // Drive descriptor `d` (incarnation `seq`, owner `pid`) to a terminal,
  // fully-released state. Runs identically for the owner and helpers.
  void run_phases(Descriptor& d, unsigned pid, std::uint32_t seq,
                  unsigned depth) {
    const unsigned n = d.n.load(std::memory_order_seq_cst);
    if (n == 0 || n > kMaxTxCells) return;  // stale/torn read; effects are
                                            // seq-guarded anyway

    // ---- acquire phase (ascending address order) ----
    for (unsigned i = 0; i < n; ++i) {
      const std::uint32_t a = d.addrs[i].load(std::memory_order_seq_cst);
      if (a >= cells_.size()) return;  // stale read of a recycled slot
      for (;;) {
        MOIR_YIELD_POINT();
        const std::uint64_t st = d.status.load(std::memory_order_seq_cst);
        if (Status::seq(st) != seq) return;
        if (Status::state(st) != Status::kActive) goto sweep;

        Cells::Keep keep;
        const std::uint64_t cur = Cells::ll(cells_[a], keep);
        if (is_locked(cur)) {
          if (lock_pid(cur) == pid && lock_seq23(cur) == seq_to_23(seq)) {
            break;  // already locked for this incarnation (by a helper)
          }
          help(lock_pid(cur), lock_seq23(cur), depth + 1);
          continue;
        }
        // Claim the pre-lock value. claim-once: the first CAS wins; all
        // others adopt the recorded value.
        std::uint64_t slot = OldSlot::unset(seq);
        d.old[i].compare_exchange_strong(slot, OldSlot::set(seq, cur),
                                         std::memory_order_seq_cst);
        slot = d.old[i].load(std::memory_order_seq_cst);
        if (OldSlot::seq(slot) != seq) return;  // descriptor recycled
        if (!OldSlot::is_set(slot) || OldSlot::value(slot) != cur) {
          // The cell changed between the recorded read and now: this
          // incarnation's snapshot is stale. Abort (someone else made
          // progress, so system-wide this is still lock-free).
          try_abort(d, seq);
          goto sweep;
        }
        // Re-validate the incarnation immediately before installing the
        // lock. The iteration-top status check is not atomic with the SC:
        // if this incarnation reached a terminal state in between (helpers
        // finished it, wrote back, and released), unrelated transactions
        // may have cycled the cell back to the claimed value, so neither
        // the claim check nor the cell tag (which only guards changes
        // since OUR ll, not since the claim) stops a late lock — and a
        // late lock makes the sweep re-apply this incarnation's write-back
        // over newer committed state. Checking status after our ll closes
        // the hole: while Active no write-set cell is ever released, so a
        // commit landing after this check requires an intervening lock SC
        // on this cell, which bumps the tag and fails our SC; an abort
        // landing here leaves only a benign lock whose release restores
        // exactly the value the lock replaced.
        {
          const std::uint64_t st2 = d.status.load(std::memory_order_seq_cst);
          if (Status::seq(st2) != seq) return;
          if (Status::state(st2) != Status::kActive) goto sweep;
        }
        if (Cells::sc(cells_[a], keep, lock_word(pid, seq))) break;
      }
    }
    // ---- commit ----
    {
      std::uint64_t expect = Status::make(seq, Status::kActive);
      d.status.compare_exchange_strong(expect,
                                       Status::make(seq, Status::kCommitted),
                                       std::memory_order_seq_cst);
    }

  sweep:
    // ---- write-back / release phase ----
    const std::uint64_t st = d.status.load(std::memory_order_seq_cst);
    if (Status::seq(st) != seq) return;
    const bool committed = Status::state(st) == Status::kCommitted;

    std::uint64_t olds[kMaxTxCells];
    std::uint64_t news[kMaxTxCells];
    bool have_news = false;
    if (committed) {
      for (unsigned i = 0; i < n; ++i) {
        const std::uint64_t slot = d.old[i].load(std::memory_order_seq_cst);
        if (OldSlot::seq(slot) != seq || !OldSlot::is_set(slot)) return;
        olds[i] = OldSlot::value(slot);
      }
      const TxOp op = d.op.load(std::memory_order_seq_cst);
      if (op == nullptr) return;
      op(olds, news, n, d.arg.load(std::memory_order_seq_cst));
      have_news = true;
    }

    for (unsigned i = 0; i < n; ++i) {
      const std::uint64_t slot = d.old[i].load(std::memory_order_seq_cst);
      if (OldSlot::seq(slot) != seq) return;
      if (!OldSlot::is_set(slot)) continue;  // never claimed => never locked
      const std::uint32_t a = d.addrs[i].load(std::memory_order_seq_cst);
      if (a >= cells_.size()) return;
      const std::uint64_t target =
          committed && have_news ? (news[i] & kMaxValue)
                                 : OldSlot::value(slot);
      for (;;) {
        Cells::Keep keep;
        const std::uint64_t cur = Cells::ll(cells_[a], keep);
        if (!is_locked(cur) || lock_pid(cur) != pid ||
            lock_seq23(cur) != seq_to_23(seq)) {
          break;  // already released (or re-locked by a later incarnation)
        }
        if (Cells::sc(cells_[a], keep, target)) break;
        MOIR_YIELD_POINT();
      }
    }
  }

  void try_abort(Descriptor& d, std::uint32_t seq) {
    std::uint64_t expect = Status::make(seq, Status::kActive);
    d.status.compare_exchange_strong(expect,
                                     Status::make(seq, Status::kAborted),
                                     std::memory_order_seq_cst);
  }

  // Truncate a full sequence number to the 23 bits a lock word carries.
  static std::uint32_t seq_to_23(std::uint32_t seq) {
    return seq & ((1u << 23) - 1);
  }

  const unsigned n_;
  std::vector<Cells::Var> cells_;
  std::vector<Padded<Descriptor>> desc_;
  ProcessRegistry registry_;
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> helps_{0};
};

}  // namespace moir
