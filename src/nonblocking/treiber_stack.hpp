// Treiber-style lock-free stack over small LL/VL/SC, with a node pool.
//
// Head and free-list are LL/SC variables holding node *indices* (they must
// fit the substrate's value field alongside its tag). Node reuse is exactly
// the ABA scenario of C++ Core Guidelines CP.100's "spot the bug" example:
// pop reads head=A and A.next=B; A is popped, recycled, and pushed back
// while we sleep; a plain CAS would then install a stale B. Here the SC
// fails because every successful SC on head changed the tag (Figures 4/5)
// or the announcement no longer matches (Figure 7) — the stack is correct
// on every conforming substrate, and tests prove it stays correct under
// aggressive recycling. On the NaiveCasLlsc strawman the same code corrupts
// itself, which test_aba_structures.cpp demonstrates.
// Two variants live here. TreiberStack recycles nodes through a bounded
// free list and never frees: safe against ABA purely by tags, but its
// payloads must be atomics (a popped node's slot is re-written immediately)
// and its footprint is the peak forever. ReclaimedTreiberStack at the
// bottom of this file instead retires popped nodes through a pluggable
// Reclaimer (src/reclaim/), which is what lets nodes be *genuinely freed*
// back to an allocator while concurrent poppers may still be reading them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/llsc_traits.hpp"
#include "reclaim/block_allocator.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assertion.hpp"

namespace moir {

// A stack of node indices with links held in a shared array. Building block
// for the value stack below (which uses one IndexStack for live nodes and
// one for the free list, sharing the link array: a node is always in
// exactly one of the two).
template <SmallLlscSubstrate S>
class IndexStack {
 public:
  using ThreadCtx = typename S::ThreadCtx;

  // `links` is shared between all stacks that exchange the same nodes.
  IndexStack(S& substrate, std::atomic<std::uint32_t>* links,
             std::uint64_t null_index)
      : substrate_(substrate), links_(links), null_(null_index) {
    substrate_.init_var(head_, null_);
  }

  // Pushes node `idx`; the caller must own the node exclusively.
  void push(ThreadCtx& ctx, std::uint32_t idx) {
    for (;;) {
      typename S::Keep keep;
      const std::uint64_t head = substrate_.ll(ctx, head_, keep);
      links_[idx].store(static_cast<std::uint32_t>(head),
                        std::memory_order_relaxed);
      if (substrate_.sc(ctx, head_, keep, idx)) return;
    }
  }

  // Pops a node; returns nothing if the stack is empty. The returned node
  // is exclusively owned by the caller.
  std::optional<std::uint32_t> pop(ThreadCtx& ctx) {
    for (;;) {
      typename S::Keep keep;
      const std::uint64_t head = substrate_.ll(ctx, head_, keep);
      if (head == null_) {
        substrate_.cl(ctx, keep);
        return std::nullopt;
      }
      // Reading the link of a node we do not own: may be stale, but then
      // head changed and the SC below fails (this is the ABA-critical
      // step).
      const std::uint32_t next =
          links_[head].load(std::memory_order_relaxed);
      if (substrate_.sc(ctx, head_, keep, next)) {
        return static_cast<std::uint32_t>(head);
      }
    }
  }

  bool empty() const { return substrate_.read(head_) == null_; }

 private:
  S& substrate_;
  typename S::Var head_;
  std::atomic<std::uint32_t>* links_;
  const std::uint64_t null_;
};

// Bounded lock-free stack of 64-bit payloads.
template <SmallLlscSubstrate S>
class TreiberStack {
 public:
  using ThreadCtx = typename S::ThreadCtx;

  // `init_ctx` is any thread context of the constructing thread; it is
  // only used to seed the free list (the constructor deliberately does not
  // mint its own context, which would consume a process slot on
  // pid-tracked substrates such as Figure 7's).
  TreiberStack(S& substrate, std::uint32_t capacity, ThreadCtx& init_ctx)
      : substrate_(substrate),
        capacity_(capacity),
        links_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)),
        payload_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)),
        live_(substrate, links_.get(), capacity),
        free_(substrate, links_.get(), capacity) {
    MOIR_ASSERT_MSG(capacity < substrate.max_value(),
                    "node indices (plus the null sentinel) must fit the "
                    "substrate's value field");
    for (std::uint32_t i = 0; i < capacity; ++i) free_.push(init_ctx, i);
  }

  // Returns false when the pool is exhausted.
  bool push(ThreadCtx& ctx, std::uint64_t value) {
    const auto idx = free_.pop(ctx);
    if (!idx) return false;
    payload_[*idx].store(value, std::memory_order_relaxed);
    live_.push(ctx, *idx);
    return true;
  }

  std::optional<std::uint64_t> pop(ThreadCtx& ctx) {
    const auto idx = live_.pop(ctx);
    if (!idx) return std::nullopt;
    const std::uint64_t value = payload_[*idx].load(std::memory_order_relaxed);
    free_.push(ctx, *idx);
    return value;
  }

  bool empty() const { return live_.empty(); }
  std::uint32_t capacity() const { return capacity_; }

 private:
  S& substrate_;
  const std::uint32_t capacity_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> links_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> payload_;
  IndexStack<S> live_;
  IndexStack<S> free_;
};

// ---------------------------------------------------------------------------
// Treiber stack whose popped nodes are RETIRED through a Reclaimer instead
// of recycled in place. The substrate's tags still make the head SC
// ABA-safe on their own; what the reclaimer adds is that a node's payload
// is not re-written (by the allocator's next customer) while a slow popper
// that already read `head = A` is still reading A's fields. pop() completes
// the hazard-pointer handshake with vl(): validating the LL's tag after
// protect() proves the head did not change — a fortiori A was not popped,
// so A was announced before any possible retire. Under EBR both protect()
// and the extra vl() cost nothing beyond the vl itself.
// ---------------------------------------------------------------------------
template <SmallLlscSubstrate S, reclaim::Reclaimer R>
class ReclaimedTreiberStack {
 public:
  struct ThreadCtx {
    typename S::ThreadCtx sub;
    typename R::ThreadCtx rec;
  };

  ReclaimedTreiberStack(S& substrate, unsigned max_threads,
                        std::uint32_t capacity)
      : substrate_(substrate),
        capacity_(capacity),
        alloc_(capacity,
               [&](Node& n) { substrate.init_var(n.next, capacity); }),
        reclaimer_(max_threads,
                   [this](std::uint32_t idx) { alloc_.free(idx); }) {
    MOIR_ASSERT_MSG(capacity < substrate.max_value(),
                    "node indices (plus the null sentinel) must fit the "
                    "substrate's value field");
    substrate_.init_var(head_, capacity_);
  }

  // ThreadCtxs must not outlive the stack.
  ThreadCtx make_ctx() {
    return ThreadCtx{substrate_.make_ctx(), reclaimer_.make_ctx()};
  }

  // Returns false when the allocator pool is exhausted — which, unlike the
  // bounded TreiberStack, includes nodes still in reclaimer limbo.
  bool push(ThreadCtx& ctx, std::uint64_t value) {
    reclaimer_.enter(ctx.rec);
    const auto idx = alloc_.alloc();
    if (!idx) {
      reclaimer_.exit(ctx.rec);
      return false;
    }
    Node& n = alloc_.node(*idx);
    n.value = value;
    for (;;) {
      typename S::Keep keep;
      const std::uint64_t head = substrate_.ll(ctx.sub, head_, keep);
      set_next(ctx, n, head);
      if (substrate_.sc(ctx.sub, head_, keep, *idx)) break;
    }
    reclaimer_.exit(ctx.rec);
    return true;
  }

  std::optional<std::uint64_t> pop(ThreadCtx& ctx) {
    reclaimer_.enter(ctx.rec);
    std::optional<std::uint64_t> out;
    for (;;) {
      typename S::Keep keep;
      const std::uint64_t head = substrate_.ll(ctx.sub, head_, keep);
      if (head == capacity_) {
        substrate_.cl(ctx.sub, keep);
        break;
      }
      const std::uint32_t h = static_cast<std::uint32_t>(head);
      reclaimer_.protect(ctx.rec, 0, h);
      if (!substrate_.vl(ctx.sub, head_, keep)) {
        // Head moved before the announcement was provably visible; the
        // node may already be retired (or freed). Restart.
        substrate_.cl(ctx.sub, keep);
        continue;
      }
      Node& n = alloc_.node(h);
      // Plain (non-atomic under EBR/HP semantics) payload read, made safe
      // purely by the protection above — THE point of this variant.
      const std::uint64_t value = n.value;
      const std::uint64_t next = substrate_.read(n.next);
      if (substrate_.sc(ctx.sub, head_, keep, next)) {
        reclaimer_.retire(ctx.rec, h);
        out = value;
        break;
      }
    }
    reclaimer_.clear(ctx.rec, 0);
    reclaimer_.exit(ctx.rec);
    return out;
  }

  bool empty() const { return substrate_.read(head_) == capacity_; }
  std::uint32_t capacity() const { return capacity_; }

  R& reclaimer() { return reclaimer_; }
  void flush(ThreadCtx& ctx) { reclaimer_.flush(ctx.rec); }

  // Quiescent-only leak probe: blocks currently in the allocator free list.
  std::uint64_t free_blocks_quiescent() const {
    return alloc_.free_count_quiescent();
  }

 private:
  struct Node {
    std::uint64_t value = 0;  // plain on purpose: the reclaimer makes it safe
    typename S::Var next;
  };

  // Owned-node link write still goes THROUGH the protocol so the tag keeps
  // advancing across alloc/free cycles (ms_queue.hpp's reset_next idiom).
  void set_next(ThreadCtx& ctx, Node& n, std::uint64_t next) {
    for (;;) {
      typename S::Keep keep;
      substrate_.ll(ctx.sub, n.next, keep);
      if (substrate_.sc(ctx.sub, n.next, keep, next)) return;
    }
  }

  S& substrate_;
  const std::uint32_t capacity_;
  typename S::Var head_;
  reclaim::BlockAllocator<Node> alloc_;
  R reclaimer_;  // last: its dtor frees through alloc_
};

}  // namespace moir
