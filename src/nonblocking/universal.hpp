// Small-object universal construction over W-word WLL/VL/SC (Figure 6).
//
// Herlihy's methodology [7] and Anderson–Moir's universal constructions
// [2,3] — both on the paper's list of algorithms that hardware LL/SC cannot
// host — turn any sequential object into a lock-free concurrent one: read
// the whole state, apply the operation to a private copy, and SC the new
// state in; retry on failure. With the paper's W-word primitive the state
// lives inline in the variable, and WLL's early-failure return means a
// doomed attempt skips the (wasted) local computation — the exact
// motivation the paper gives for the WLL weakening.
#pragma once

#include <cstdint>
#include <vector>

#include "core/value_codec.hpp"
#include "core/wide_llsc.hpp"
#include "util/assertion.hpp"

namespace moir {

template <WideStorable State, unsigned TagBits = 32>
class UniversalObject {
 public:
  using Domain = WideLlsc<TagBits>;
  using ThreadCtx = typename Domain::ThreadCtx;

  static constexpr unsigned kChunkBits = Domain::kChunkBits;

  // Number of segments a domain must have to host this object.
  static unsigned required_width() {
    return static_cast<unsigned>(chunks_needed(sizeof(State), kChunkBits));
  }

  UniversalObject(Domain& domain, const State& initial) : domain_(domain) {
    MOIR_ASSERT_MSG(domain.width() == required_width(),
                    "domain width must match the object's state size");
    std::vector<std::uint64_t> buf(domain.width());
    encode_value(initial, buf, kChunkBits);
    domain_.init_var(var_, buf);
  }

  // Applies `op` (State -> State, deterministic, side-effect free)
  // atomically; returns the state it installed. Lock-free: a retry implies
  // another operation was installed.
  template <typename Op>
  State apply(ThreadCtx& ctx, Op&& op) {
    std::vector<std::uint64_t> buf(domain_.width());
    for (;;) {
      typename Domain::Keep keep;
      if (!domain_.wll(ctx, var_, keep, buf).success) {
        // A competing SC succeeded mid-read; ours would fail — skip the
        // decode/compute work entirely (the WLL weakening's payoff).
        continue;
      }
      const State next = op(decode_value<State>(buf, kChunkBits));
      encode_value(next, buf, kChunkBits);
      if (domain_.sc(ctx, var_, keep, buf)) return next;
    }
  }

  State read(ThreadCtx& ctx) const {
    std::vector<std::uint64_t> buf(domain_.width());
    domain_.read(ctx, var_, buf);
    return decode_value<State>(buf, kChunkBits);
  }

 private:
  Domain& domain_;
  mutable typename Domain::Var var_;
};

}  // namespace moir
