// Lock-free fetch-and-Φ over any small LL/VL/SC substrate.
//
// The simplest consumer of the paper's primitives: read-modify-write of one
// word. The LL/SC retry loop is lock-free (an SC fails only because another
// SC succeeded), and the same code runs on every substrate — which is the
// paper's portability thesis in one screen of code.
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>

#include "core/llsc_traits.hpp"

namespace moir {

template <SmallLlscSubstrate S>
class LlscCounter {
 public:
  using value_type = typename S::value_type;
  using ThreadCtx = typename S::ThreadCtx;

  explicit LlscCounter(S& substrate, value_type initial = 0)
      : substrate_(substrate) {
    substrate_.init_var(var_, initial);
  }

  // Applies `f` to the current value atomically; returns {old, new}.
  // `f` may run several times under contention and must be side-effect
  // free. Values are truncated to the substrate's value width.
  template <std::invocable<value_type> F>
  std::pair<value_type, value_type> fetch_modify(ThreadCtx& ctx, F&& f) {
    for (;;) {
      typename S::Keep keep;
      const value_type old = substrate_.ll(ctx, var_, keep);
      const value_type next = f(old) & substrate_.max_value();
      if (substrate_.sc(ctx, var_, keep, next)) return {old, next};
    }
  }

  value_type increment(ThreadCtx& ctx, value_type by = 1) {
    return fetch_modify(ctx, [by](value_type v) { return v + by; }).second;
  }

  value_type decrement(ThreadCtx& ctx, value_type by = 1) {
    return fetch_modify(ctx, [by](value_type v) { return v - by; }).second;
  }

  value_type read() const { return substrate_.read(var_); }

 private:
  S& substrate_;
  typename S::Var var_;
};

}  // namespace moir
