// Multi-word compare-and-swap (MCAS / DCAS) from the paper's primitives.
//
// Section 5 takes aim at Greenwald & Cheriton's conclusion that double-word
// CAS should be provided in hardware: the paper argues software multi-word
// synchronization is implementable on existing machines. This module makes
// the argument concrete: an N-word MCAS with the standard semantics —
// atomically, if every cell holds its expected value, write all desired
// values and return true, else change nothing and return false — built on
// the static STM (itself built on Figure 4's LL/VL/SC).
//
// Encoding trick: the STM's transaction body receives only (olds, arg).
// MCAS needs the expected/desired vectors in the body, and helpers may run
// the body on the owner's behalf, so the vectors must live in memory that
// is stable for the transaction's entire lifetime including stragglers.
// The STM's descriptor-quiescence protocol gives exactly that lifetime: a
// process's next transaction begins only after all helpers of its previous
// one have drained. So each process owns one Spec slot here, rewritten
// only between its own transactions, and `arg` carries a pointer to it.
//
// An MCAS whose comparison fails still COMMITS as a transaction — it just
// writes back the old values (a no-op). The boolean MCAS result is derived
// from the committed transaction's read set. This keeps the STM's
// lock-free progress: an MCAS attempt never retries at this layer.
#pragma once

#include <cstdint>
#include <span>

#include "nonblocking/stm.hpp"
#include "util/assertion.hpp"
#include "util/cache.hpp"

namespace moir {

class Mcas {
 public:
  static constexpr unsigned kMaxWords = Stm::kMaxTxCells;
  static constexpr std::uint64_t kMaxValue = Stm::kMaxValue;

  using ThreadCtx = Stm::ThreadCtx;

  Mcas(unsigned n_processes, std::size_t n_cells)
      : stm_(n_processes, n_cells), specs_(n_processes) {}

  ThreadCtx make_ctx() { return stm_.make_ctx(); }

  std::size_t size() const { return stm_.size(); }

  void set_initial(std::size_t cell, std::uint64_t value) {
    stm_.set_initial(cell, value);
  }

  std::uint64_t read(ThreadCtx& ctx, std::size_t cell) {
    return stm_.read(ctx, cell);
  }

  // N-word CAS. `addrs` must be sorted and unique; expected/desired are
  // parallel arrays. Atomic and linearizable: true iff all cells matched
  // and all were replaced. When `witnessed` is non-empty it receives the
  // values the committed transaction read — on failure, the consistent
  // snapshot that refuted the comparison (the txn layer's multi_cas
  // returns it to clients).
  bool mcas(ThreadCtx& ctx, std::span<const std::uint32_t> addrs,
            std::span<const std::uint64_t> expected,
            std::span<const std::uint64_t> desired,
            std::span<std::uint64_t> witnessed = {}) {
    const unsigned n = static_cast<unsigned>(addrs.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxWords);
    MOIR_ASSERT(expected.size() == n && desired.size() == n);
    MOIR_ASSERT(witnessed.empty() || witnessed.size() == n);

    Spec& spec = *specs_[ctx.pid];
    for (unsigned i = 0; i < n; ++i) {
      MOIR_ASSERT(expected[i] <= kMaxValue && desired[i] <= kMaxValue);
      spec.expected[i] = expected[i];
      spec.desired[i] = desired[i];
    }

    Stm::TxResult result;
    // transact() retries only on STM-level conflicts; each attempt
    // re-reads the cells, so the comparison always uses fresh values.
    result = stm_.transact(ctx, addrs, &apply_spec,
                           reinterpret_cast<std::uint64_t>(&spec));
    bool match = true;
    for (unsigned i = 0; i < n; ++i) {
      if (!witnessed.empty()) witnessed[i] = result.olds[i];
      if (result.olds[i] != expected[i]) match = false;
    }
    return match;
  }

  // Unconditional atomic multi-write (an MCAS with no comparison): writes
  // all desired values and reports the replaced ones through `olds`. Same
  // sorted-unique addrs contract as mcas().
  void mset(ThreadCtx& ctx, std::span<const std::uint32_t> addrs,
            std::span<const std::uint64_t> desired,
            std::span<std::uint64_t> olds = {}) {
    const unsigned n = static_cast<unsigned>(addrs.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxWords && desired.size() == n);
    MOIR_ASSERT(olds.empty() || olds.size() == n);

    Spec& spec = *specs_[ctx.pid];
    for (unsigned i = 0; i < n; ++i) {
      MOIR_ASSERT(desired[i] <= kMaxValue);
      spec.desired[i] = desired[i];
    }
    const auto result = stm_.transact(ctx, addrs, &apply_put,
                                      reinterpret_cast<std::uint64_t>(&spec));
    for (unsigned i = 0; i < n && !olds.empty(); ++i) {
      olds[i] = result.olds[i];
    }
  }

  // Tagged no-help observation of one cell (see Stm::peek): the building
  // block of the txn layer's double-collect multi-get.
  Stm::CellView peek(std::size_t cell) { return stm_.peek(cell); }
  void help_locked(const Stm::CellView& view) { stm_.help_locked(view); }

  // Double-word CAS — the Greenwald/Cheriton primitive. a1 < a2 required.
  bool dcas(ThreadCtx& ctx, std::uint32_t a1, std::uint64_t e1,
            std::uint64_t d1, std::uint32_t a2, std::uint64_t e2,
            std::uint64_t d2) {
    MOIR_ASSERT(a1 < a2);
    const std::uint32_t addrs[] = {a1, a2};
    const std::uint64_t exp[] = {e1, e2};
    const std::uint64_t des[] = {d1, d2};
    return mcas(ctx, addrs, exp, des);
  }

  // Atomic multi-word read (a degenerate MCAS that writes nothing).
  void snapshot(ThreadCtx& ctx, std::span<const std::uint32_t> addrs,
                std::span<std::uint64_t> out) {
    const unsigned n = static_cast<unsigned>(addrs.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxWords && out.size() == n);
    const auto result = stm_.transact(ctx, addrs, &apply_identity, 0);
    for (unsigned i = 0; i < n; ++i) out[i] = result.olds[i];
  }

  Stm::Stats stats() const { return stm_.stats(); }

 private:
  struct Spec {
    std::uint64_t expected[kMaxWords];
    std::uint64_t desired[kMaxWords];
  };

  // Runs inside the STM (including on helpers): write desired iff every
  // old matches expected, else write back the olds (no-op commit).
  static void apply_spec(const std::uint64_t* olds, std::uint64_t* news,
                         unsigned n, std::uint64_t arg) {
    const Spec* spec = reinterpret_cast<const Spec*>(arg);
    bool match = true;
    for (unsigned i = 0; i < n; ++i) {
      if (olds[i] != spec->expected[i]) {
        match = false;
        break;
      }
    }
    for (unsigned i = 0; i < n; ++i) {
      news[i] = match ? spec->desired[i] : olds[i];
    }
  }

  static void apply_identity(const std::uint64_t* olds, std::uint64_t* news,
                             unsigned n, std::uint64_t) {
    for (unsigned i = 0; i < n; ++i) news[i] = olds[i];
  }

  // Unconditional write: ignore olds, install desired.
  static void apply_put(const std::uint64_t* /*olds*/, std::uint64_t* news,
                        unsigned n, std::uint64_t arg) {
    const Spec* spec = reinterpret_cast<const Spec*>(arg);
    for (unsigned i = 0; i < n; ++i) news[i] = spec->desired[i];
  }

  Stm stm_;
  std::vector<Padded<Spec>> specs_;
};

}  // namespace moir
