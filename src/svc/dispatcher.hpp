// Request/ticket types and the sharded MPMC dispatch stage.
//
// The dispatch queue is the paper's own machinery on the serving hot path:
// each shard queue is a ReclaimedMsQueue — the Michael–Scott queue spelled
// in LL/VL/SC over any SmallLlscSubstrate (Figure 4 CAS-backed, Figure 7
// bounded-tag, ...) with nodes recycled through a PR-3 Reclaimer. The
// queue carries only a 64-bit ticket HANDLE (session << 32 | slot); the
// request payload itself lives in the session's fixed TicketSlot array, so
// payload size never collides with the substrate's bounded value field
// (only node indices must fit ValBits; the payload word is unconstrained).
//
// Ticket completion is a seqlock-style generation handshake, not a lock:
// the executor writes the response fields with plain stores and then
// publishes done=gen with release; the client polls done==gen with acquire
// and only then reads the response. A slot is reused only after its owner
// consumed the response, so a slow executor from a previous generation can
// never be mid-write when the slot is resubmitted (the previous response
// must have been published AND consumed first), and the single done word
// is both the sequence and the ready flag.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/llsc_traits.hpp"
#include "map/sharded_map.hpp"  // hash_mix64
#include "nonblocking/ms_queue.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "util/cache.hpp"

namespace moir::svc {

enum class Op : std::uint8_t {
  kFind,
  kInsert,
  kUpsert,
  kErase,
  // Multi-key transactions (txn mode only; see src/txn/txn_kv.hpp). The
  // keys/args/exps arrays of the TicketSlot carry the payload; responses
  // come back through resp_values in wire form (0 = absent, v+1 = v).
  kMultiGet,
  kMultiPut,
  kMultiCas,
  // Change-feed verbs (feed mode only; see src/feed/feed.hpp and the
  // service's execute_feed). kSubscribe: key = watched key (value == 0)
  // or shard index (value == 1), resp_value = the subscription id.
  // kUnsubscribe: key = the id. kPoll: key = the id, value = max records
  // (<= kMaxTxnKeys); the executor returns delivered records through the
  // keys/args/exps arrays (key/value/version per record — safe to reuse
  // because the done==gen handshake means the client is not reading them)
  // and packs count + overrun/resync flags into resp_value.
  kSubscribe,
  kUnsubscribe,
  kPoll,
};

enum class Status : std::uint8_t {
  kOk,        // operation applied; value meaningful for kFind hits
  kNotFound,  // kFind/kErase on an absent key, kUpsert updated in place,
              // kInsert on a present key, kMultiCas comparison mismatch:
              // the "false/absent" return
  kOverload,  // completed WITH an error before reaching the map: shard
              // queue full at the router, or a txn key's node pool
              // exhausted (either way the request had no effect — EBUSY)
};

// Keys per multi-key transaction request (mirrors txn::TxnKv::kMaxTxnKeys
// == Mcas::kMaxWords; the service static_asserts they agree).
inline constexpr unsigned kMaxTxnKeys = 8;

struct Response {
  Status status = Status::kOk;
  std::uint64_t value = 0;
};

// One in-flight request slot, owned by a session. Written by the client
// before the handle is enqueued (the queue's release/acquire ordering
// publishes the plain fields to the executor), completed by the executor
// through the done word.
struct alignas(kCacheLine) TicketSlot {
  // Request, client-written, stable from enqueue to completion.
  std::uint64_t key = 0;  // multi ops route by keys[0], mirrored here
  std::uint64_t value = 0;
  std::uint64_t gen = 0;        // client-owned reuse counter
  std::uint64_t submit_ns = 0;  // stats-only latency origin (0 = untimed)
  Op op = Op::kFind;
  std::uint8_t nkeys = 0;  // multi ops: number of keys (2..kMaxTxnKeys)
  // Multi-key payload (txn mode): args = plain values for kMultiPut /
  // wire-form desired for kMultiCas; exps = wire-form expected (kMultiCas).
  std::uint64_t keys[kMaxTxnKeys] = {};
  std::uint64_t args[kMaxTxnKeys] = {};
  std::uint64_t exps[kMaxTxnKeys] = {};
  // Response, executor-written before the done publication. resp_values:
  // kMultiGet snapshot / kMultiCas witness, wire form, user key order.
  std::uint64_t resp_value = 0;
  std::uint64_t resp_values[kMaxTxnKeys] = {};
  Status resp_status = Status::kOk;
  // Seqlock word: last generation whose response is published.
  std::atomic<std::uint64_t> done{0};
};

// Ticket handles: session index in the high half, slot index in the low.
inline std::uint64_t make_handle(std::uint32_t session, std::uint32_t slot) {
  return std::uint64_t{session} << 32 | slot;
}
inline std::uint32_t handle_session(std::uint64_t h) {
  return static_cast<std::uint32_t>(h >> 32);
}
inline std::uint32_t handle_slot(std::uint64_t h) {
  return static_cast<std::uint32_t>(h);
}

// Sharded MPMC dispatch stage: routes a key to one of `queues` MS-queues
// (same SplitMix64 route as the map's shard_of, so with equal counts a
// dispatch queue feeds exactly one map shard) and pops handles in batches.
template <SmallLlscSubstrate S, reclaim::Reclaimer R>
class Dispatcher {
 public:
  using Queue = ReclaimedMsQueue<S, R>;

  // A thread's contexts, one per shard queue (each queue owns its own
  // reclaimer instance). Destroy before the dispatcher.
  struct ThreadCtx {
    std::vector<typename Queue::ThreadCtx> q;
  };

  Dispatcher(S& substrate, unsigned max_threads, unsigned queues,
             std::uint32_t queue_capacity) {
    queues_.reserve(queues);
    for (unsigned i = 0; i < queues; ++i) {
      queues_.push_back(
          std::make_unique<Queue>(substrate, max_threads, queue_capacity));
    }
  }

  unsigned queue_count() const {
    return static_cast<unsigned>(queues_.size());
  }

  ThreadCtx make_ctx() {
    ThreadCtx ctx;
    ctx.q.reserve(queues_.size());
    for (auto& q : queues_) ctx.q.push_back(q->make_ctx());
    return ctx;
  }

  unsigned queue_of(std::uint64_t key) const {
    return static_cast<unsigned>((hash_mix64(key) >> 32) % queues_.size());
  }

  // Returns false when the target shard queue's node pool is exhausted
  // (the shed signal — never blocks).
  bool enqueue(ThreadCtx& ctx, std::uint64_t key, std::uint64_t handle) {
    const unsigned q = queue_of(key);
    return queues_[q]->enqueue(ctx.q[q], handle);
  }

  // Pops up to `max` handles from shard queue `q` under one reclaimer
  // bracket. Returns the number popped.
  unsigned pop_batch(ThreadCtx& ctx, unsigned q, std::uint64_t* out,
                     unsigned max) {
    return queues_[q]->dequeue_batch(ctx.q[q], out, max);
  }

  bool all_empty() const {
    for (const auto& q : queues_) {
      if (!q->empty()) return false;
    }
    return true;
  }

  Queue& queue(unsigned i) { return *queues_[i]; }

 private:
  std::vector<std::unique_ptr<Queue>> queues_;
};

}  // namespace moir::svc
