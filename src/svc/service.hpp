// KvService: the wait-free request pipeline over the sharded map.
//
//   client --(SPSC ring, 1 per session)--> router --+
//   client --------(direct dispatch)----------------+--> per-shard MPMC
//                                                        MS-queues (LL/SC
//                                                        + Reclaimer)
//                                                   workers pop batches of
//                                                   <= B, execute on the
//                                                   ShardedHashMap, publish
//                                                   seqlock responses the
//                                                   clients poll
//
// End-to-end progress argument (docs/SERVICE.md has the long form): no
// stage ever waits for another stage inside an operation. Admission either
// takes a free ticket or returns EBUSY (shed) immediately; ring push either
// succeeds or sheds; the router either enqueues or completes the ticket
// with kOverload; queue and map operations are lock-free through the
// paper's LL/SC; response publication is a single release store. The only
// waiting in the subsystem is *voluntary* (wait() spinning on a ticket the
// caller chose to block on, idle workers between pumps), through the
// futex-free SpinWait.
//
// Sessions reuse the ProcessRegistry slot discipline: connect() leases a
// dense session id whose preallocated SessionState (ticket slots + ring)
// is recycled across connects; ticket-slot generations are monotonic per
// slot across reuse, so a stale done word can never match a fresh ticket.
//
// Shutdown contract: stop() flips draining (subsequent submits shed), then
// drains rings and queues so every ALREADY-SUBMITTED ticket completes
// (counted as svc_drain), then joins. Callers must stop submitting before
// calling stop() concurrently with in-flight submits — the graceful-drain
// guarantee covers requests, not racing admission calls.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/dynamic_registry.hpp"
#include "core/llsc_traits.hpp"
#include "core/process_registry.hpp"
#include "feed/feed.hpp"
#include "map/sharded_map.hpp"
#include "platform/yield_point.hpp"
#include "reclaim/reclaimer.hpp"
#include "stats/stats.hpp"
#include "svc/dispatcher.hpp"
#include "svc/spsc_ring.hpp"
#include "txn/txn_kv.hpp"
#include "util/assertion.hpp"
#include "util/stopwatch.hpp"

namespace moir::svc {

// RingCap: per-session SPSC ring capacity (compile-time power of two).
// FeedRingCap: per-shard broadcast-ring capacity in feed mode (tiny in the
// adversarial exploration tests, 64 for real deployments).
template <SmallLlscSubstrate S, reclaim::Reclaimer R,
          std::uint32_t RingCap = 64, std::uint32_t FeedRingCap = 64>
class KvService {
 public:
  using Map = ShardedHashMap<S, R>;
  using Disp = Dispatcher<S, R>;
  using Txn = txn::TxnKv<S, R>;
  using Ring = SpscRing<RingCap>;
  using Feed = feed::ChangeFeed<FeedRingCap>;

  static_assert(kMaxTxnKeys == Txn::kMaxTxnKeys,
                "dispatcher slot arrays must fit a full transaction");

  struct Config {
    unsigned queues = 4;                 // dispatch shards
    std::uint32_t queue_capacity = 1024; // nodes per shard queue
    unsigned workers = 2;                // floor; 0 = manual pump (tests)
    // Elastic pool ceiling: 0 (default) pins the pool at `workers`; > 0
    // lets the pool grow itself up to this many workers under load and
    // shrink back to the floor when idle (see worker_main / SERVICE.md).
    unsigned max_workers = 0;
    // A worker that drains this many CONSECUTIVE full batches concludes
    // the offered load exceeds the pool's capacity and spawns a peer.
    unsigned grow_streak = 4;
    // A worker above the floor that sees this many consecutive empty pump
    // passes retires. Large by design: retiring is cheap to get wrong in
    // neither direction, but thrashing join/leave on a bursty load is
    // pure overhead.
    unsigned shrink_idle = 4096;
    unsigned batch = 16;                 // B: max requests per executor pop
    unsigned max_sessions = 8;           // concurrent clients
    std::uint32_t tickets_per_session = 64;  // in-flight window W
    // Ingress mode: true = client -> ring -> router -> shard queue (the
    // full pipeline), false = client enqueues into the shard queue itself.
    bool use_rings = true;
    // Transaction mode: values live in the txn layer's per-node Mcas
    // cells (insert-only map discipline) and the kMulti* ops are
    // accepted. Single-key semantics are unchanged; off (the default)
    // keeps the plain map path and rejects multi-key submits.
    bool txn = false;
    // Change-feed mode: every committed write is broadcast on the key's
    // shard ring and the kSubscribe/kUnsubscribe/kPoll verbs are accepted
    // (src/feed/feed.hpp). Feed mode serializes each dispatch queue's
    // execution through a try-claim so the queue's ring has a single
    // writer (see pump()); mutually exclusive with txn mode, whose
    // authoritative values live in Mcas cells the plain commit path never
    // sees.
    bool feed = false;
    // Subscription-lease ceiling; a kSubscribe past it completes with
    // kOverload (shedding, never blocking).
    unsigned feed_max_subscribers = 8;
    typename Map::Config map{};
  };

  struct Ticket {
    std::uint32_t slot = 0;
    std::uint64_t gen = 0;
  };

  // Move-only session handle; destruction disconnects. One per client
  // thread — submit/poll on a ClientCtx are single-threaded.
  class ClientCtx {
   public:
    ClientCtx(ClientCtx&& o) noexcept : svc_(o.svc_), sid_(o.sid_) {
      o.svc_ = nullptr;
    }
    ClientCtx& operator=(ClientCtx&& o) noexcept {
      if (this != &o) {
        release();
        svc_ = o.svc_;
        sid_ = o.sid_;
        o.svc_ = nullptr;
      }
      return *this;
    }
    ClientCtx(const ClientCtx&) = delete;
    ClientCtx& operator=(const ClientCtx&) = delete;
    ~ClientCtx() { release(); }

    unsigned session() const { return sid_; }

   private:
    friend class KvService;
    ClientCtx(KvService* svc, unsigned sid) : svc_(svc), sid_(sid) {}
    void release() {
      if (svc_ != nullptr) svc_->disconnect(sid_);
      svc_ = nullptr;
    }

    KvService* svc_ = nullptr;
    unsigned sid_ = 0;
  };

  // Executor-side contexts; one per worker (or per manual pumper).
  struct WorkerCtx {
    typename Disp::ThreadCtx dctx;
    typename Map::ThreadCtx mctx;
    std::vector<std::uint64_t> buf;  // batch buffer, cfg.batch entries
    unsigned rotor = 0;              // round-robin start shard
    // Txn mode only: the txn-layer context (its embedded map ctx is a
    // second reclaimer lease, hence the doubled worker term below).
    std::unique_ptr<typename Txn::ThreadCtx> tctx;
  };

  explicit KvService(S& substrate, Config cfg = {})
      : cfg_(cfg),
        worker_ceiling_(std::max(cfg.workers, cfg.max_workers)),
        // Concurrent ThreadCtx holders across the shard-queue reclaimers
        // and the map reclaimer: one per session, one per worker at the
        // elastic ceiling, the router, and slack for a manual pumper /
        // preloader. The ceiling term is doubled: a retiring worker still
        // holds its ctx while its replacement may already be spinning up.
        // Txn mode doubles the worker/pumper terms again (WorkerCtx
        // carries both a plain map ctx and the txn ctx's embedded one).
        max_threads_(cfg.max_sessions + (cfg.txn ? 4 * worker_ceiling_ + 4
                                                 : 2 * worker_ceiling_ + 2)),
        disp_(substrate, max_threads_, cfg.queues, cfg.queue_capacity),
        map_(substrate, max_threads_, cfg.map),
        session_reg_(cfg.max_sessions),
        worker_reg_(2 * worker_ceiling_ + 2) {
    MOIR_ASSERT(cfg_.batch >= 1 && cfg_.queues >= 1);
    MOIR_ASSERT(cfg_.tickets_per_session >= 1 && cfg_.max_sessions >= 1);
    MOIR_ASSERT(cfg_.grow_streak >= 1 && cfg_.shrink_idle >= 1);
    MOIR_ASSERT_MSG(!(cfg_.feed && cfg_.txn),
                    "feed mode broadcasts plain-map commits; txn values "
                    "live in Mcas cells the feed hook cannot see");
    if (cfg_.txn) txn_ = std::make_unique<Txn>(map_, max_threads_);
    if (cfg_.feed) {
      feed_ = std::make_unique<Feed>(cfg_.queues, cfg_.feed_max_subscribers);
      queue_claims_ =
          std::make_unique<std::atomic<bool>[]>(cfg_.queues);
      for (unsigned q = 0; q < cfg_.queues; ++q) {
        queue_claims_[q].store(false, std::memory_order_relaxed);
      }
      sub_tokens_ = std::make_unique<std::atomic<std::uint64_t>[]>(
          cfg_.feed_max_subscribers);
      for (unsigned i = 0; i < cfg_.feed_max_subscribers; ++i) {
        sub_tokens_[i].store(0, std::memory_order_relaxed);
      }
    }
    sessions_.reserve(cfg_.max_sessions);
    for (unsigned i = 0; i < cfg_.max_sessions; ++i) {
      sessions_.push_back(std::make_unique<SessionState>(cfg_));
    }
    if (cfg_.workers > 0) {
      if (cfg_.use_rings) {
        router_ = std::thread([this] { router_main(); });
      }
      std::lock_guard<std::mutex> g(pool_mu_);
      threads_.reserve(worker_ceiling_);
      for (unsigned w = 0; w < cfg_.workers; ++w) {
        ++live_workers_;
        threads_.emplace_back([this] { worker_main(); });
      }
    }
  }

  ~KvService() { stop(); }

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  const Config& config() const { return cfg_; }

  // ----- Client API --------------------------------------------------------

  ClientCtx connect() {
    const unsigned sid = session_reg_.register_process();
    SessionState& ss = *sessions_[sid];
    ss.free.clear();
    for (std::uint32_t i = cfg_.tickets_per_session; i > 0; --i) {
      ss.free.push_back(i - 1);
    }
    ss.dctx = disp_.make_ctx();
    ss.live.store(true, std::memory_order_release);
    return ClientCtx(this, sid);
  }

  // Admission + enqueue. Returns the ticket to poll, or nullopt (EBUSY)
  // when the request is shed: service draining, the per-session in-flight
  // window is exhausted, the session ring is full, or (direct mode) the
  // shard queue's node pool is exhausted. Never blocks.
  std::optional<Ticket> submit(ClientCtx& c, Op op, std::uint64_t key,
                               std::uint64_t value = 0) {
    SessionState& ss = *sessions_[c.sid_];
    if (draining_.load(std::memory_order_acquire) || ss.free.empty()) {
      stats::count(stats::Id::kSvcShed);
      return std::nullopt;
    }
    const std::uint32_t slot = ss.free.back();
    TicketSlot& ts = ss.slots[slot];
    ts.key = key;
    ts.value = value;
    ts.op = op;
    ts.gen += 1;
    ts.submit_ns = stats::counting_enabled() ? clock_.elapsed_ns() : 0;
    const std::uint64_t handle = make_handle(c.sid_, slot);
    const bool ok = cfg_.use_rings ? ss.ring.try_push(handle)
                                   : disp_.enqueue(ss.dctx, key, handle);
    if (!ok) {
      // The slot was never published; the gen bump is harmless and the
      // ticket stays free.
      stats::count(stats::Id::kSvcShed);
      return std::nullopt;
    }
    ss.free.pop_back();
    stats::count(stats::Id::kSvcEnqueue);
    return Ticket{slot, ts.gen};
  }

  // Multi-key admission (txn mode only). `keys` are the transaction's
  // distinct keys in user order; `values` are plain values for kMultiPut
  // and WIRE-FORM desired words for kMultiCas (0 = erase, v+1 = v);
  // `expected` is the wire-form comparison vector for kMultiCas. Same
  // shed discipline as submit(): the whole transaction is admitted or
  // refused atomically — a shed here (or a kOverload later) means NO key
  // was touched, so a shed can never strand a partial transaction.
  std::optional<Ticket> submit_multi(
      ClientCtx& c, Op op, std::span<const std::uint64_t> keys,
      std::span<const std::uint64_t> values = {},
      std::span<const std::uint64_t> expected = {}) {
    MOIR_ASSERT_MSG(cfg_.txn, "multi-key ops require Config::txn");
    const auto n = static_cast<std::uint8_t>(keys.size());
    MOIR_ASSERT(n >= 1 && n <= kMaxTxnKeys);
    MOIR_ASSERT(op == Op::kMultiGet || op == Op::kMultiPut ||
                op == Op::kMultiCas);
    MOIR_ASSERT(op == Op::kMultiGet || values.size() == keys.size());
    MOIR_ASSERT(op != Op::kMultiCas || expected.size() == keys.size());
    SessionState& ss = *sessions_[c.sid_];
    if (draining_.load(std::memory_order_acquire) || ss.free.empty()) {
      stats::count(stats::Id::kSvcShed);
      return std::nullopt;
    }
    const std::uint32_t slot = ss.free.back();
    TicketSlot& ts = ss.slots[slot];
    ts.key = keys[0];  // the routing key; see pump_session
    ts.value = 0;
    ts.op = op;
    ts.nkeys = n;
    for (std::uint8_t i = 0; i < n; ++i) {
      ts.keys[i] = keys[i];
      ts.args[i] = i < values.size() ? values[i] : 0;
      ts.exps[i] = i < expected.size() ? expected[i] : 0;
    }
    ts.gen += 1;
    ts.submit_ns = stats::counting_enabled() ? clock_.elapsed_ns() : 0;
    const std::uint64_t handle = make_handle(c.sid_, slot);
    const bool ok = cfg_.use_rings ? ss.ring.try_push(handle)
                                   : disp_.enqueue(ss.dctx, ts.key, handle);
    if (!ok) {
      stats::count(stats::Id::kSvcShed);
      return std::nullopt;
    }
    ss.free.pop_back();
    stats::count(stats::Id::kSvcEnqueue);
    return Ticket{slot, ts.gen};
  }

  // Non-blocking completion check. Consumes the ticket on success: the
  // slot returns to the window and the Ticket must not be reused.
  std::optional<Response> poll(ClientCtx& c, const Ticket& t) {
    SessionState& ss = *sessions_[c.sid_];
    TicketSlot& ts = ss.slots[t.slot];
    MOIR_YIELD_READ(&ts.done);
    if (ts.done.load(std::memory_order_acquire) != t.gen) {
      return std::nullopt;
    }
    const Response r{ts.resp_status, ts.resp_value};
    ss.free.push_back(t.slot);
    return r;
  }

  // Multi-value poll: additionally copies the per-key response vector
  // (kMultiGet snapshot / kMultiCas witness, wire form, user key order)
  // into values_out before the slot is released.
  std::optional<Response> poll(ClientCtx& c, const Ticket& t,
                               std::span<std::uint64_t> values_out) {
    SessionState& ss = *sessions_[c.sid_];
    TicketSlot& ts = ss.slots[t.slot];
    MOIR_YIELD_READ(&ts.done);
    if (ts.done.load(std::memory_order_acquire) != t.gen) {
      return std::nullopt;
    }
    const std::size_t n =
        std::min<std::size_t>(ts.nkeys, values_out.size());
    for (std::size_t i = 0; i < n; ++i) values_out[i] = ts.resp_values[i];
    const Response r{ts.resp_status, ts.resp_value};
    ss.free.push_back(t.slot);
    return r;
  }

  // Voluntary blocking on one ticket: spin-then-yield until complete. Only
  // meaningful while workers (or a manual pumper on another thread) run.
  Response wait(ClientCtx& c, const Ticket& t) {
    SpinWait sw;
    for (;;) {
      if (auto r = poll(c, t)) return *r;
      sw.pause();
    }
  }

  Response wait(ClientCtx& c, const Ticket& t,
                std::span<std::uint64_t> values_out) {
    SpinWait sw;
    for (;;) {
      if (auto r = poll(c, t, values_out)) return *r;
      sw.pause();
    }
  }

  // ----- Feed client API (feed mode; see src/feed/feed.hpp) ----------------
  //
  // Submit side reuses submit(): kSubscribe with (key, 0) / (shard, 1)
  // completes with the subscription token in resp_value; kUnsubscribe
  // with (token), kPoll with (token, max_records). poll_feed decodes a
  // kPoll completion.

  // Flag bits packed next to the record count in a kPoll resp_value.
  static constexpr std::uint64_t kPollOverrun = std::uint64_t{1} << 8;
  static constexpr std::uint64_t kPollResynced = std::uint64_t{1} << 9;

  struct FeedDelivery {
    Status status = Status::kOk;  // kOverload: feed off / subscriber limit
    unsigned delivered = 0;
    bool overrun = false;   // the writer lapped this subscription's cursor
    bool resynced = false;  // cursor re-based (key: resync record included)
  };

  // Non-blocking completion check for a kPoll ticket: copies up to `max`
  // delivered records into `out` and consumes the ticket. nullopt while
  // the request is still in flight. `delivered` reports only what was
  // copied: a `max` smaller than the kPoll's max_records truncates the
  // delivery, and the truncated records are gone (the executor already
  // advanced the cursor past them) — size `out` to the kPoll request.
  std::optional<FeedDelivery> poll_feed(ClientCtx& c, const Ticket& t,
                                        feed::Record* out, unsigned max) {
    SessionState& ss = *sessions_[c.sid_];
    TicketSlot& ts = ss.slots[t.slot];
    MOIR_YIELD_READ(&ts.done);
    if (ts.done.load(std::memory_order_acquire) != t.gen) {
      return std::nullopt;
    }
    FeedDelivery d;
    d.status = ts.resp_status;
    if (d.status == Status::kOk) {
      d.delivered = std::min(static_cast<unsigned>(ts.resp_value & 0xff), max);
      d.overrun = (ts.resp_value & kPollOverrun) != 0;
      d.resynced = (ts.resp_value & kPollResynced) != 0;
      for (unsigned i = 0; i < d.delivered; ++i) {
        out[i] = feed::Record{ts.keys[i], ts.args[i], ts.exps[i]};
      }
    }
    ss.free.push_back(t.slot);
    return d;
  }

  FeedDelivery wait_feed(ClientCtx& c, const Ticket& t, feed::Record* out,
                         unsigned max) {
    SpinWait sw;
    for (;;) {
      if (auto d = poll_feed(c, t, out, max)) return *d;
      sw.pause();
    }
  }

  // ----- Executor API (workers call these; tests/benches may pump
  // manually when cfg.workers == 0) ----------------------------------------

  WorkerCtx make_worker_ctx() {
    WorkerCtx w{disp_.make_ctx(), map_.make_ctx(),
                std::vector<std::uint64_t>(cfg_.batch), 0, nullptr};
    if (cfg_.txn) {
      w.tctx = std::make_unique<typename Txn::ThreadCtx>(txn_->make_ctx());
    }
    return w;
  }

  typename Disp::ThreadCtx make_router_ctx() { return disp_.make_ctx(); }

  // Instrumentation: the slot behind a handle. Race-free only where the
  // completion handshake already orders the reads — inside a pump
  // observer (after execution, before publication), where test harnesses
  // read the multi-key response vector at completion time.
  const TicketSlot& peek_slot(std::uint64_t handle) const {
    return sessions_[handle_session(handle)]->slots[handle_slot(handle)];
  }

  // One pass over the shard queues: pops up to B handles per queue under a
  // single reclaimer bracket each, executes them against the map, and
  // publishes responses. Returns requests completed. `obs(handle,
  // response)` fires after the map operation and before the publication —
  // the test harness's completion timestamp hook.
  //
  // Feed mode additionally wraps each queue's batch in a TRY-claim: the
  // broadcast ring wants one writer per shard, and the claim makes queue
  // execution exclusive without blocking — a worker that loses the race
  // just moves to the next queue (the holder is executing the very batch
  // the loser wanted, so system-wide progress is unchanged; a parked
  // holder stalls only its own queue, the same degradation the SPSC
  // router already accepts). The release/acquire pair on the claim word
  // also carries the happens-before edge that hands the ring's writer
  // role — and the feed-op subscription cursors, which ride the same
  // key-hashed routing — from one worker to the next.
  template <class Observer>
  unsigned pump(WorkerCtx& w, Observer&& obs) {
    unsigned total = 0;
    const unsigned nq = disp_.queue_count();
    for (unsigned i = 0; i < nq; ++i) {
      const unsigned q = (w.rotor + i) % nq;
      if (feed_ && !claim_queue(q)) continue;
      const unsigned k = disp_.pop_batch(w.dctx, q, w.buf.data(), cfg_.batch);
      if (k != 0) {
        stats::count(stats::Id::kSvcBatch);
        stats::record(stats::HistId::kSvcBatchSize, k);
        for (unsigned j = 0; j < k; ++j) execute(w, w.buf[j], obs);
        total += k;
      }
      if (feed_) release_queue(q);
    }
    w.rotor = nq == 0 ? 0 : (w.rotor + 1) % nq;
    return total;
  }

  unsigned pump(WorkerCtx& w) {
    return pump(w, [](std::uint64_t, const Response&) {});
  }

  // Route one session's ring into the shard queues. The ring is SPSC —
  // its consumer must be unique, which the service's own router thread
  // guarantees; manual pumpers (tests with cfg.workers == 0) must likewise
  // dedicate one pumper per session. A full shard queue completes the
  // ticket with kOverload right here — shedding, not blocking, so a
  // stalled executor cannot wedge the router. At most one ring's capacity
  // is moved per call.
  template <class Observer>
  unsigned pump_session(typename Disp::ThreadCtx& rc, unsigned sid,
                        Observer&& obs) {
    SessionState& ss = *sessions_[sid];
    constexpr std::uint32_t burst = Ring::capacity();
    unsigned moved = 0;
    for (std::uint32_t i = 0; i < burst; ++i) {
      std::uint64_t handle;
      if (!ss.ring.try_pop(handle)) break;
      TicketSlot& ts = ss.slots[handle_slot(handle)];
      if (!disp_.enqueue(rc, ts.key, handle)) {
        stats::count(stats::Id::kSvcShed);
        complete(ts, Response{Status::kOverload, 0}, handle, obs);
      }
      ++moved;
    }
    return moved;
  }

  unsigned pump_session(typename Disp::ThreadCtx& rc, unsigned sid) {
    return pump_session(rc, sid, [](std::uint64_t, const Response&) {});
  }

  // One pass over all live session rings (the router thread's loop body).
  template <class Observer>
  unsigned pump_router(typename Disp::ThreadCtx& rc, Observer&& obs) {
    unsigned moved = 0;
    for (unsigned sid = 0; sid < cfg_.max_sessions; ++sid) {
      if (!sessions_[sid]->live.load(std::memory_order_acquire)) continue;
      moved += pump_session(rc, sid, obs);
    }
    return moved;
  }

  unsigned pump_router(typename Disp::ThreadCtx& rc) {
    return pump_router(rc, [](std::uint64_t, const Response&) {});
  }

  bool queues_empty() const { return disp_.all_empty(); }

  // Direct map access for preload and post-run inspection AROUND measured
  // sections — not a bypass of the pipeline during one. In txn mode use
  // txn() for the same purposes (the map's node values are not the
  // authoritative store there).
  Map& map() { return map_; }
  typename Map::ThreadCtx make_map_ctx() { return map_.make_ctx(); }

  Txn& txn() {
    MOIR_ASSERT(cfg_.txn);
    return *txn_;
  }
  typename Txn::ThreadCtx make_txn_ctx() { return txn().make_ctx(); }

  // Feed-mode introspection and the direct-subscriber path: bench/example
  // threads may subscribe and poll the ChangeFeed in-process (each such
  // subscriber is its own single poller), bypassing the kPoll verb — the
  // ring read path is write-free, so out-of-band readers cost the
  // pipeline nothing.
  bool feed_enabled() const { return feed_ != nullptr; }
  Feed& feed() {
    MOIR_ASSERT(cfg_.feed);
    return *feed_;
  }
  // The feed shard a key's commits are broadcast on (== dispatch queue).
  unsigned shard_of(std::uint64_t key) const { return disp_.queue_of(key); }

  // ----- Shutdown ----------------------------------------------------------

  // Graceful drain: refuse new admissions, finish every submitted request,
  // stop the threads. Idempotent. See the shutdown contract above.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    draining_.store(true, std::memory_order_release);
    stop_router_.store(true, std::memory_order_release);
    if (router_.joinable()) router_.join();
    stop_workers_.store(true, std::memory_order_release);
    {
      // Barrier against in-flight growth: any spawn_worker() that slipped
      // past the flag holds pool_mu_ while emplacing, so once we acquire
      // and release it, threads_ is final (later spawn attempts re-check
      // stop_workers_ under the same lock and bail).
      std::lock_guard<std::mutex> g(pool_mu_);
    }
    for (auto& t : threads_) t.join();
    threads_.clear();
    std::lock_guard<std::mutex> g(pool_mu_);
    live_workers_ = 0;
  }

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  // ----- Elastic pool introspection ---------------------------------------

  // Workers currently counted toward the pool (spawned and not retired).
  // Advisory under churn; exact at quiescence.
  unsigned live_workers() const {
    std::lock_guard<std::mutex> g(pool_mu_);
    return live_workers_;
  }
  unsigned worker_ceiling() const { return worker_ceiling_; }
  // join/leave lease bookkeeping for the elastic pool; high_water() bounds
  // how wide the pool ever got, active() how wide it is now.
  DynamicRegistry& worker_registry() { return worker_reg_; }

 private:
  struct SessionState {
    explicit SessionState(const Config& cfg)
        : slots(std::make_unique<TicketSlot[]>(cfg.tickets_per_session)) {
      free.reserve(cfg.tickets_per_session);
    }

    std::unique_ptr<TicketSlot[]> slots;
    Ring ring;
    std::vector<std::uint32_t> free;  // client-thread-private ticket stack
    typename Disp::ThreadCtx dctx;    // client-thread-only (direct mode)
    std::atomic<bool> live{false};
  };

  void disconnect(unsigned sid) {
    SessionState& ss = *sessions_[sid];
    MOIR_ASSERT_MSG(ss.free.size() == cfg_.tickets_per_session,
                    "disconnect with in-flight or unconsumed tickets");
    ss.live.store(false, std::memory_order_release);
    ss.dctx = typename Disp::ThreadCtx{};  // fold queue reclaimer state
    session_reg_.release_process(sid);
  }

  // Map a txn-layer status onto the wire Status. kNoSpace (node pool
  // exhausted before any cell was written) is an EBUSY-class outcome: the
  // request completed WITH an error and had no effect, same contract as a
  // router-side shed.
  static Status to_status(txn::TxnStatus s) {
    switch (s) {
      case txn::TxnStatus::kOk:
        return Status::kOk;
      case txn::TxnStatus::kMiss:
        return Status::kNotFound;
      case txn::TxnStatus::kNoSpace:
        return Status::kOverload;
    }
    return Status::kOverload;
  }

  template <class Observer>
  void execute(WorkerCtx& w, std::uint64_t handle, Observer&& obs) {
    SessionState& ss = *sessions_[handle_session(handle)];
    TicketSlot& ts = ss.slots[handle_slot(handle)];
    Response r;
    if (cfg_.txn) {
      execute_txn(*w.tctx, ts, r);
      complete(ts, r, handle, obs);
      return;
    }
    switch (ts.op) {
      case Op::kFind: {
        const auto v = map_.find(w.mctx, ts.key);
        r.status = v ? Status::kOk : Status::kNotFound;
        r.value = v.value_or(0);
        break;
      }
      case Op::kInsert: {
        const bool ok = map_.insert(w.mctx, ts.key, ts.value);
        r.status = ok ? Status::kOk : Status::kNotFound;
        if (ok) publish_commit(ts.key, ts.value + 1);
        break;
      }
      case Op::kUpsert:
        // Both outcomes (inserted / updated in place) committed a write.
        r.status = map_.upsert(w.mctx, ts.key, ts.value) ? Status::kOk
                                                         : Status::kNotFound;
        publish_commit(ts.key, ts.value + 1);
        break;
      case Op::kErase: {
        const bool ok = map_.erase(w.mctx, ts.key);
        r.status = ok ? Status::kOk : Status::kNotFound;
        if (ok) publish_commit(ts.key, 0);
        break;
      }
      case Op::kMultiGet:
      case Op::kMultiPut:
      case Op::kMultiCas:
        // Unreachable: submit_multi asserts cfg_.txn. Complete defensively
        // rather than corrupt state.
        r.status = Status::kOverload;
        break;
      case Op::kSubscribe:
      case Op::kUnsubscribe:
      case Op::kPoll:
        execute_feed(w, ts, r);
        break;
    }
    complete(ts, r, handle, obs);
  }

  // Broadcast a committed write on its shard's ring (feed mode only).
  // Called after the map operation and before the response publication,
  // from inside the queue claim: the ring's single-writer requirement is
  // exactly "one claim holder per queue", and dispatch queue == feed shard
  // (both are queue_of(key)), so every write to a key lands on one ring
  // in its commit order.
  void publish_commit(std::uint64_t key, std::uint64_t wire_value) {
    if (feed_) feed_->publish(disp_.queue_of(key), key, wire_value);
  }

  // Feed verbs run executor-side, which keeps the admission path free of
  // registration: a shed request (EBUSY at submit) provably never touched
  // a subscription lease. kSubscribe routes by the watched key, kPoll and
  // kUnsubscribe by the subscription token — constant per subscription, so
  // all polls of one subscription land on one queue and the claim
  // serializes its cursor (and, with the token check below, every verb
  // that could free or reuse this subscription's slot).
  //
  // The executor does NOT trust a client-supplied token: kSubscribe hands
  // out an opaque generation-stamped token rather than the raw registry
  // slot, and kPoll/kUnsubscribe validate it against the slot's live
  // token first. A never-issued, stale, or double-freed token completes
  // kNotFound instead of underflowing the lease gate (unsigned wrap would
  // shed every future subscribe), over-freeing the registry, or polling a
  // reused slot's cursor.
  void execute_feed(WorkerCtx& w, TicketSlot& ts, Response& r) {
    if (feed_ == nullptr) {
      r.status = Status::kOverload;  // feed verbs need Config::feed
      return;
    }
    switch (ts.op) {
      case Op::kSubscribe: {
        const bool shard_filter = ts.value != 0;
        const unsigned shard =
            shard_filter ? static_cast<unsigned>(ts.key % cfg_.queues)
                         : disp_.queue_of(ts.key);
        const auto id =
            shard_filter ? feed_->subscribe(feed::Filter::kShard, shard)
                         : feed_->subscribe(feed::Filter::kKey, shard, ts.key);
        if (!id.has_value()) {
          r.status = Status::kOverload;
          r.value = 0;
          break;
        }
        const std::uint64_t token = make_sub_token(*id);
        sub_tokens_[*id].store(token, std::memory_order_release);
        r.status = Status::kOk;
        r.value = token;
        break;
      }
      case Op::kUnsubscribe: {
        const auto id = check_sub_token(ts.key);
        if (!id.has_value()) {
          r.status = Status::kNotFound;  // no such (live) subscription
          break;
        }
        // Invalidate before releasing the lease: every verb carrying this
        // token routes to this queue, so the claim keeps a concurrent
        // poll from slipping between the two stores, and a second
        // unsubscribe of the same token fails the check above.
        sub_tokens_[*id].store(0, std::memory_order_release);
        feed_->unsubscribe(*id);
        r.status = Status::kOk;
        break;
      }
      case Op::kPoll: {
        const auto id = check_sub_token(ts.key);
        if (!id.has_value()) {
          r.status = Status::kNotFound;  // no such (live) subscription
          break;
        }
        const unsigned max = static_cast<unsigned>(std::min<std::uint64_t>(
            ts.value == 0 ? kMaxTxnKeys : ts.value, kMaxTxnKeys));
        feed::Record recs[kMaxTxnKeys];
        const feed::PollResult pr =
            feed_->poll(*id, recs, max, [&](std::uint64_t key) {
              const auto v = map_.find(w.mctx, key);
              return v.has_value() ? *v + 1 : 0;
            });
        // Reuse the multi-key arrays as the delivery vector; the client
        // reads them back through poll_feed after done==gen.
        for (unsigned i = 0; i < pr.delivered; ++i) {
          ts.keys[i] = recs[i].key;
          ts.args[i] = recs[i].value;
          ts.exps[i] = recs[i].version;
        }
        r.status = Status::kOk;
        r.value = pr.delivered | (pr.overrun ? kPollOverrun : 0) |
                  (pr.resynced ? kPollResynced : 0);
        break;
      }
      default:
        r.status = Status::kOverload;
        break;
    }
  }

  // Txn-mode execution: single-key verbs keep their map semantics but run
  // through the txn layer (the Mcas cells are the authoritative store);
  // multi-key ops are the new atomic transactions.
  void execute_txn(typename Txn::ThreadCtx& tctx, TicketSlot& ts,
                   Response& r) {
    switch (ts.op) {
      case Op::kFind: {
        const auto v = txn_->get(tctx, ts.key);
        r.status = v ? Status::kOk : Status::kNotFound;
        r.value = v.value_or(0);
        break;
      }
      case Op::kInsert:
        r.status = to_status(txn_->insert(tctx, ts.key, ts.value));
        break;
      case Op::kUpsert:
        r.status = to_status(txn_->upsert(tctx, ts.key, ts.value));
        break;
      case Op::kErase:
        r.status =
            txn_->erase(tctx, ts.key) ? Status::kOk : Status::kNotFound;
        break;
      case Op::kMultiGet:
        txn_->multi_get(tctx, std::span(ts.keys, ts.nkeys),
                        std::span(ts.resp_values, ts.nkeys));
        r.status = Status::kOk;
        break;
      case Op::kMultiPut:
        r.status = to_status(txn_->multi_put(
            tctx, std::span(ts.keys, ts.nkeys), std::span(ts.args, ts.nkeys)));
        break;
      case Op::kMultiCas:
        r.status = to_status(txn_->multi_cas(
            tctx, std::span(ts.keys, ts.nkeys), std::span(ts.exps, ts.nkeys),
            std::span(ts.args, ts.nkeys), std::span(ts.resp_values, ts.nkeys)));
        break;
      case Op::kSubscribe:
      case Op::kUnsubscribe:
      case Op::kPoll:
        // Feed mode and txn mode are mutually exclusive (ctor assert).
        r.status = Status::kOverload;
        break;
    }
  }

  template <class Observer>
  void complete(TicketSlot& ts, const Response& r, std::uint64_t handle,
                Observer&& obs) {
    ts.resp_value = r.value;
    ts.resp_status = r.status;
    if (ts.submit_ns != 0 && stats::counting_enabled()) {
      stats::record(stats::HistId::kSvcLatency,
                    clock_.elapsed_ns() - ts.submit_ns);
    }
    if (draining_.load(std::memory_order_relaxed)) {
      stats::count(stats::Id::kSvcDrain);
    }
    // The observer runs before the publication: once done==gen the client
    // may consume and resubmit the slot, so nothing reads ts afterwards.
    obs(handle, r);
    MOIR_YIELD_WRITE(&ts.done);
    ts.done.store(ts.gen, std::memory_order_release);
  }

  // Elastic worker loop. Each worker leases a membership id for its whole
  // life (reg_join/reg_leave counters make churn observable) and scales
  // the pool from inside: a sustained run of FULL batches means requests
  // are arriving at least as fast as this worker drains them, so it
  // spawns a peer (up to the ceiling); a long run of empty passes on a
  // worker above the floor means the pool is overprovisioned, so it
  // retires. Decisions are local — no coordinator thread — and the floor
  // workers never retire, so the drain guarantee of stop() is unchanged.
  void worker_main() {
    const unsigned wid = worker_reg_.join();
    {
      WorkerCtx w = make_worker_ctx();
      SpinWait sw;
      unsigned full_streak = 0;
      std::uint64_t idle_streak = 0;
      for (;;) {
        const unsigned done = pump(w);
        if (done > 0) {
          sw.reset();
          idle_streak = 0;
          if (done >= cfg_.batch) {
            if (++full_streak >= cfg_.grow_streak) {
              full_streak = 0;
              spawn_worker();
            }
          } else {
            full_streak = 0;
          }
          continue;
        }
        full_streak = 0;
        if (stop_workers_.load(std::memory_order_acquire) &&
            disp_.all_empty()) {
          std::lock_guard<std::mutex> g(pool_mu_);
          --live_workers_;
          break;
        }
        if (++idle_streak >= cfg_.shrink_idle && try_retire()) break;
        sw.pause();
      }
    }
    worker_reg_.leave(wid);
  }

  // Adds a worker if the pool is below the ceiling and not stopping. The
  // re-check of stop_workers_ under pool_mu_ pairs with the lock barrier
  // in stop(): either the spawn lands in threads_ before stop() walks it,
  // or it is refused here.
  void spawn_worker() {
    if (worker_ceiling_ <= cfg_.workers) return;  // pool is fixed-size
    std::lock_guard<std::mutex> g(pool_mu_);
    if (stop_workers_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      return;
    }
    if (live_workers_ >= worker_ceiling_) return;
    ++live_workers_;
    threads_.emplace_back([this] { worker_main(); });
  }

  // A worker above the floor may leave; the floor stays to honor the
  // drain guarantee. The retiring thread stays in threads_ (joined at
  // stop()), but releases its reclaimer/membership leases immediately.
  bool try_retire() {
    std::lock_guard<std::mutex> g(pool_mu_);
    if (live_workers_ <= cfg_.workers) return false;
    if (stop_workers_.load(std::memory_order_acquire)) return false;
    --live_workers_;
    return true;
  }

  // Subscription tokens (feed mode): high half a generation drawn from
  // sub_gen_, low half the registry slot + 1 — never 0, so 0 can mean
  // "slot free". The generation makes a token unique across slot reuse
  // (modulo 2^32 subscribes, far past any deployment's churn), so a
  // stale token for a recycled slot mismatches instead of aliasing the
  // new subscription.
  std::uint64_t make_sub_token(std::uint32_t id) {
    const std::uint64_t gen =
        sub_gen_.fetch_add(1, std::memory_order_relaxed);
    return ((gen & 0xffffffffu) << 32) | (id + 1);
  }

  // Decodes and validates a client-supplied token against the slot's live
  // token; nullopt = not a live subscription. The acquire pairs with the
  // release in kSubscribe, ordering the feed's subscription-slot writes
  // before any use of the decoded id (the claim covers the same-queue
  // verbs; this covers a forged token arriving on another queue, which
  // must fail without touching feed state).
  std::optional<std::uint32_t> check_sub_token(std::uint64_t token) const {
    const std::uint64_t low = token & 0xffffffffu;
    if (low == 0 || low > cfg_.feed_max_subscribers) return std::nullopt;
    const auto id = static_cast<std::uint32_t>(low - 1);
    if (sub_tokens_[id].load(std::memory_order_acquire) != token) {
      return std::nullopt;
    }
    return id;
  }

  // Feed-mode queue exclusivity: acquire on the winning exchange pairs
  // with the release store in release_queue, ordering the previous
  // holder's ring publishes and cursor updates before ours.
  bool claim_queue(unsigned q) {
    MOIR_YIELD_UPDATE(&queue_claims_[q]);
    return !queue_claims_[q].exchange(true, std::memory_order_acquire);
  }

  void release_queue(unsigned q) {
    MOIR_YIELD_WRITE(&queue_claims_[q]);
    queue_claims_[q].store(false, std::memory_order_release);
  }

  void router_main() {
    auto rc = disp_.make_ctx();
    SpinWait sw;
    for (;;) {
      if (pump_router(rc) > 0) {
        sw.reset();
        continue;
      }
      // stop_router_ is set after draining_, so once it is visible no new
      // ring entries can appear (submits shed) and an empty pass is final.
      if (stop_router_.load(std::memory_order_acquire)) break;
      sw.pause();
    }
  }

  const Config cfg_;
  const unsigned worker_ceiling_;
  const unsigned max_threads_;
  Stopwatch clock_;  // latency origin for the svc_latency histogram
  // Declaration order is destruction-critical: sessions_ (whose dctx folds
  // into the queue reclaimers) must die before disp_, and every ThreadCtx
  // (worker ctxs die at thread exit, before the joins in stop()) before
  // disp_/map_.
  Disp disp_;
  Map map_;
  // Declared after map_ (hence destroyed first): TxnKv holds Map& plus
  // the cell store; its per-worker ctxs die with the worker threads.
  std::unique_ptr<Txn> txn_;
  // Feed mode only (both null otherwise). The claims serialize queue
  // execution so each broadcast ring keeps a single writer; see pump().
  std::unique_ptr<Feed> feed_;
  std::unique_ptr<std::atomic<bool>[]> queue_claims_;
  // Live subscription token per feed slot (0 = free) and the generation
  // source behind make_sub_token; see execute_feed.
  std::unique_ptr<std::atomic<std::uint64_t>[]> sub_tokens_;
  std::atomic<std::uint64_t> sub_gen_{1};
  ProcessRegistry session_reg_;
  // Membership leases for the elastic pool (2x ceiling: a retiree's lease
  // may overlap its replacement's). Never used by the stats layer, so the
  // reg_join/reg_leave counts inside it cannot recurse.
  DynamicRegistry worker_reg_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
  std::thread router_;
  // Guards live_workers_ and threads_ growth against stop(); workers take
  // it only on scaling decisions, never per request.
  mutable std::mutex pool_mu_;
  unsigned live_workers_ = 0;
  std::vector<std::thread> threads_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_router_{false};
  std::atomic<bool> stop_workers_{false};
  bool stopped_ = false;
};

}  // namespace moir::svc
