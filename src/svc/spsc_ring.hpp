// Cache-line-padded fixed-capacity SPSC ring + futex-free waiting.
//
// One ring per client session carries request handles from the client
// (single producer) to the service's router (single consumer). The
// single-producer/single-consumer discipline makes the ring wait-free with
// plain acquire/release atomics: each side owns its index, only reads the
// other's, and caches the remote index to avoid touching the shared line
// on most operations (the Lamport ring with index caching, in the spirit
// of the fixed-size slot structures of Blelloch & Wei's constant-time
// LL/SC constructions — no allocation, no unbounded tags).
//
// Nothing ever blocks in here: try_push/try_pop fail immediately when
// full/empty and the caller decides (the service sheds, the router moves
// to the next session). SpinWait (util/backoff.hpp, re-exported below) is
// the one waiting policy the subsystem uses when a caller *chooses* to
// wait (client wait(), idle workers): bounded exponential spinning with a
// CPU relax hint, then std::this_thread::yield() — never a futex or mutex,
// so a preempted peer can always be scheduled and progress remains a
// scheduler property, not a lock-holder property.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/yield_point.hpp"
#include "util/backoff.hpp"
#include "util/cache.hpp"

namespace moir::svc {

// Backoff policy shared with the core retry loops; see util/backoff.hpp.
using ::moir::SpinWait;

// Fixed-capacity single-producer/single-consumer ring of uint64 handles.
// Capacity is a compile-time power of two (enforced by static_assert, not
// a runtime round-up); indices are free-running and masked, so full/empty
// never needs a spare slot or a separate count.
template <std::uint32_t kCap = 64>
class SpscRing {
  static_assert(kCap >= 1 && kCap <= (1u << 30),
                "ring capacity out of range");
  static_assert((kCap & (kCap - 1)) == 0,
                "ring capacity must be a power of two");

 public:
  SpscRing() = default;

  static constexpr std::uint32_t capacity() { return kCap; }

  // Occupancy estimate: exact for the consumer when the producer is quiet
  // and vice versa, a snapshot otherwise (each index is read once).
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(
        tail_.idx.load(std::memory_order_acquire) -
        head_.idx.load(std::memory_order_acquire));
  }

  // Producer side. Returns false when the ring is full.
  bool try_push(std::uint64_t v) {
    const std::uint64_t tail = tail_.idx.load(std::memory_order_relaxed);
    if (tail - tail_.cached_other > mask_) {
      // Looks full: refresh the cached head and re-check.
      MOIR_YIELD_READ(&head_.idx);
      tail_.cached_other = head_.idx.load(std::memory_order_acquire);
      if (tail - tail_.cached_other > mask_) return false;
    }
    slots_[tail & mask_] = v;
    MOIR_YIELD_STEP(::moir::testing::StepInfo::write(&tail_.idx)
                        .also_write(&slots_[tail & mask_]));
    tail_.idx.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(std::uint64_t& out) {
    const std::uint64_t head = head_.idx.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      MOIR_YIELD_READ(&tail_.idx);
      head_.cached_other = tail_.idx.load(std::memory_order_acquire);
      if (head == head_.cached_other) return false;
    }
    out = slots_[head & mask_];
    MOIR_YIELD_STEP(::moir::testing::StepInfo::write(&head_.idx)
                        .also_read(&slots_[head & mask_]));
    head_.idx.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty_approx() const { return size() == 0; }

  // TEST ONLY: re-bases both free-running indices on an empty ring so
  // tests can place them just below an arithmetic boundary (e.g. 2^32)
  // without pushing four billion elements. Never call with traffic in
  // flight — both ends' views are rewritten non-atomically.
  void reset_indices_for_test(std::uint64_t start) {
    head_.idx.store(start, std::memory_order_relaxed);
    head_.cached_other = start;
    tail_.idx.store(start, std::memory_order_relaxed);
    tail_.cached_other = start;
  }

 private:
  static constexpr std::uint32_t mask_ = kCap - 1;

  // Each end gets its own cache line: the free-running index it owns plus
  // its private cache of the other end's index. The producer therefore
  // dirties only the tail line, the consumer only the head line.
  struct alignas(kCacheLine) End {
    std::atomic<std::uint64_t> idx{0};
    std::uint64_t cached_other = 0;
  };

  std::uint64_t slots_[kCap];
  End head_;  // consumer-owned
  End tail_;  // producer-owned
};

}  // namespace moir::svc
